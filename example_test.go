package tdram_test

import (
	"fmt"

	"tdram"
)

// ExampleRun simulates one workload on TDRAM and inspects the
// measurements a downstream user typically wants.
func ExampleRun() {
	cfg := tdram.NewSystemConfig(tdram.TDRAM, tdram.MustWorkload("bt.C"), 8<<20)
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 300
	res, err := tdram.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("design:", res.Design)
	fmt.Println("low-miss band:", res.Cache.Outcomes.MissRatio() < 0.30)
	fmt.Println("unloaded-or-better tag check:", res.Cache.TagCheck.Value() >= 15)
	// Output:
	// design: tdram
	// low-miss band: true
	// unloaded-or-better tag check: true
}

// ExampleParseDesign resolves design names used by the CLIs.
func ExampleParseDesign() {
	d, err := tdram.ParseDesign("cascade-lake")
	fmt.Println(d, err)
	// Output:
	// cascade-lake <nil>
}

// ExampleWorkloadByName shows the workload roster lookup.
func ExampleWorkloadByName() {
	wl, _ := tdram.WorkloadByName("pr.25")
	fmt.Println(wl.Name, wl.Suite, wl.Band)
	// Output:
	// pr.25 gapbs high
}
