// Setassoc reproduces the §V-F study: TDRAM's in-DRAM comparators work
// for set-associative caches too (each way of a set gets its own
// comparator), but the paper's HPC workloads have so few conflict
// misses that 1/2/4/8/16 ways perform alike. A synthetic conflict-heavy
// workload is included to show associativity *can* matter when the
// access pattern calls for it.
package main

import (
	"fmt"
	"log"

	"tdram"
)

func main() {
	const capacity = 16 << 20
	ways := []int{1, 2, 4, 8, 16}

	for _, wl := range []tdram.Workload{
		tdram.MustWorkload("bt.C"),
		tdram.MustWorkload("cg.D"),
		{
			// A same-set conflict pattern — the classic case associativity
			// rescues: 1024 rings of 4 lines spaced one cache capacity
			// apart, so a direct-mapped cache thrashes while >= 4 ways
			// hold every ring.
			Name: "conflict-heavy", Suite: "synthetic",
			FootprintRatio: 0.5, WriteFrac: 0.2, ScanFrac: 0.2,
			HotFrac: 0.2, HotRatio: 0.05, ThinkNS: 7.5,
			ConflictFrac: 0.6, ConflictSets: 1024, ConflictDepth: 4,
		},
	} {
		fmt.Printf("workload %s:\n", wl.Name)
		fmt.Printf("  %-6s %-12s %-12s\n", "ways", "miss-ratio", "runtime")
		for _, w := range ways {
			cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, capacity)
			cfg.RequestsPerCore = 5000
			cfg.Cache.Ways = w
			res, err := tdram.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6d %-12.3f %-12v\n", w, res.Cache.Outcomes.MissRatio(), res.Runtime)
		}
		fmt.Println()
	}
	fmt.Println("paper: the HPC workloads gain nothing from associativity (negligible conflict misses)")
}
