// Missratio sweeps a workload's footprint against a fixed cache
// capacity and shows the paper's central crossover (Fig. 12): as the
// miss ratio climbs, conventional DRAM caching (Cascade Lake) slides
// from speedup into slowdown versus a main-memory-only system, while
// TDRAM keeps a net win far longer.
package main

import (
	"fmt"
	"log"

	"tdram"
)

func main() {
	const capacity = 16 << 20
	ratios := []float64{0.25, 0.5, 1.0, 2.0, 4.0, 8.0}

	fmt.Printf("%-10s %-10s %-14s %-14s %-14s\n",
		"footprint", "missratio", "cl-vs-nocache", "td-vs-nocache", "td-vs-cl")

	for _, ratio := range ratios {
		// A synthetic pointer-chase-plus-scan workload at this footprint.
		wl := tdram.Workload{
			Name: fmt.Sprintf("sweep-%.2fx", ratio), Suite: "synthetic",
			FootprintRatio: ratio, WriteFrac: 0.3, ScanFrac: 0.3,
			HotFrac: 0.3, HotRatio: 0.1, ThinkNS: 1.5,
		}
		run := func(d tdram.Design) *tdram.Result {
			cfg := tdram.NewSystemConfig(d, wl, capacity)
			cfg.RequestsPerCore = 5000
			res, err := tdram.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			return res
		}
		base := run(tdram.NoCache)
		cl := run(tdram.CascadeLake)
		td := run(tdram.TDRAM)
		fmt.Printf("%-10.2f %-10.2f %-14.2f %-14.2f %-14.2f\n",
			ratio,
			cl.Cache.Outcomes.MissRatio(),
			float64(base.Runtime)/float64(cl.Runtime),
			float64(base.Runtime)/float64(td.Runtime),
			float64(cl.Runtime)/float64(td.Runtime))
	}
	fmt.Println("\nvalues > 1.00 are speedups; watch cascade-lake cross below 1.0 as misses grow")
}
