// Timing renders ASCII timing diagrams of TDRAM transactions straight
// from the device engine — the reproduction's equivalent of the paper's
// Figs. 5-7: a pipelined read burst (with the HM results landing well
// before the data), a write, and early tag probes squeezed into unused
// command-bus slots. The same transactions are also recorded through
// internal/obs and written to timing_trace.json, which loads at
// https://ui.perfetto.dev as interactive versions of the same diagrams.
package main

import (
	"fmt"
	"os"
	"strings"

	"tdram/internal/dram"
	"tdram/internal/obs"
	"tdram/internal/sim"
)

func main() {
	s := sim.New()
	p := dram.CacheDeviceParams(16 << 20)
	p.TREFI = 0 // keep the diagram clean
	ch := dram.NewChannel(s, &p, 0)
	o := obs.New(s, obs.Config{Trace: true})
	ch.SetObserver(o)

	fmt.Println("TDRAM pipelined reads (paper Fig. 5): ActRd on four banks")
	fmt.Print("HM results arrive at cmd+15ns; data at cmd+30..32ns\n\n")
	var rows []row
	for bank := 0; bank < 4; bank++ {
		op := dram.Op{Kind: dram.OpRead, Bank: bank, Tag: true}
		iss := ch.Commit(op, ch.Earliest(op, 0))
		rows = append(rows, row{fmt.Sprintf("ActRd b%d", bank), iss})
	}
	draw(rows, 40)

	fmt.Println("\nTDRAM write (paper Fig. 6): ActWr, data at cmd+13ns")
	op := dram.Op{Kind: dram.OpWrite, Bank: 8, Tag: true}
	iss := ch.Commit(op, ch.Earliest(op, 0))
	draw([]row{{"ActWr b8", iss}}, 40)

	fmt.Println("\nEarly tag probing (paper Fig. 7): probes in spare CA slots")
	fmt.Print("while the data banks of b0..b3 are still busy\n\n")
	var prows []row
	for bank := 12; bank < 15; bank++ {
		op := dram.Op{Kind: dram.OpProbe, Bank: bank}
		iss := ch.Commit(op, ch.Earliest(op, 0))
		prows = append(prows, row{fmt.Sprintf("Probe b%d", bank), iss})
	}
	draw(prows, 40)

	f, err := os.Create("timing_trace.json")
	if err != nil {
		fmt.Fprintln(os.Stderr, "timing:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := o.WriteTrace(f); err != nil {
		fmt.Fprintln(os.Stderr, "timing:", err)
		os.Exit(1)
	}
	n, _ := o.TraceEvents()
	fmt.Printf("\nwrote timing_trace.json (%d events) — load at https://ui.perfetto.dev\n", n)
}

type row struct {
	label string
	iss   dram.Issue
}

// draw renders one character per nanosecond: C command, H hit-miss
// result at the controller, = data on the DQ bus.
func draw(rows []row, ns int) {
	fmt.Printf("%-10s %s\n", "", ruler(ns))
	for _, r := range rows {
		lane := []byte(strings.Repeat(".", ns))
		put := func(at sim.Tick, c byte) {
			i := int(at / sim.Nanosecond)
			if i >= 0 && i < ns {
				lane[i] = c
			}
		}
		put(r.iss.At, 'C')
		if r.iss.HMAt > 0 {
			put(r.iss.HMAt, 'H')
		}
		for t := r.iss.DataStart; t < r.iss.DataEnd; t += sim.Nanosecond {
			put(t, '=')
		}
		fmt.Printf("%-10s %s\n", r.label, lane)
	}
}

func ruler(ns int) string {
	b := []byte(strings.Repeat(" ", ns))
	for i := 0; i < ns; i += 10 {
		s := fmt.Sprintf("%d", i)
		copy(b[i:], s)
	}
	return string(b)
}
