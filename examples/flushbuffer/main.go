// Flushbuffer reproduces the §V-E study interactively: it sweeps
// TDRAM's flush buffer across 1/8/16/32/64 entries on a write-heavy
// workload and reports occupancy, drain channels, and forced stalls —
// showing why 16 entries suffice and which opportunistic paths
// (read-miss-clean DQ slots, refresh windows) do the draining.
package main

import (
	"fmt"
	"log"

	"tdram"
)

func main() {
	wl := tdram.MustWorkload("is.D") // 50% writes, high miss: write-miss-dirty stress
	const capacity = 16 << 20

	fmt.Printf("workload %s on TDRAM, %d MiB cache\n\n", wl.Name, capacity>>20)
	fmt.Printf("%-8s %-10s %-8s %-8s %-14s %-14s %-14s %-12s\n",
		"entries", "avg-occ", "max-occ", "stalls", "drain-refresh", "drain-idleslot", "drain-explicit", "runtime")

	for _, size := range []int{1, 8, 16, 32, 64} {
		cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, capacity)
		cfg.RequestsPerCore = 5000
		cfg.Cache.FlushEntries = size
		res, err := tdram.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		c := res.Cache
		fmt.Printf("%-8d %-10.1f %-8d %-8d %-14d %-14d %-14d %-12v\n",
			size, c.FlushOccupancy.Value(), c.FlushMax, c.FlushStalls,
			c.FlushDrainRefresh, c.FlushDrainIdleSlot, c.FlushDrainExplicit, res.Runtime)
	}
	fmt.Println("\npaper: 16 entries avoid stalls; most draining rides read-miss-clean slots and refresh windows")
}
