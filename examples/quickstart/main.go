// Quickstart: run one workload on TDRAM and on the Cascade Lake
// baseline, and print the paper's headline comparison — tag-check
// latency, runtime, bandwidth bloat and energy.
package main

import (
	"fmt"
	"log"

	"tdram"
)

func main() {
	const capacity = 16 << 20 // scaled-down stand-in for the paper's 8 GiB
	wl := tdram.MustWorkload("ft.C")

	fmt.Printf("workload %s: footprint %.1fx the %d MiB cache, %d%% writes\n\n",
		wl.Name, wl.FootprintRatio, capacity>>20, int(wl.WriteFrac*100))

	run := func(d tdram.Design) *tdram.Result {
		cfg := tdram.NewSystemConfig(d, wl, capacity)
		cfg.RequestsPerCore = 6000
		res, err := tdram.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	cl := run(tdram.CascadeLake)
	td := run(tdram.TDRAM)

	fmt.Printf("%-22s %14s %14s\n", "", "cascade-lake", "tdram")
	fmt.Printf("%-22s %12.1fns %12.1fns\n", "avg tag check", cl.Cache.TagCheck.Value(), td.Cache.TagCheck.Value())
	fmt.Printf("%-22s %12.1fns %12.1fns\n", "avg read queueing", cl.Cache.ReadQueueing.Value(), td.Cache.ReadQueueing.Value())
	fmt.Printf("%-22s %12.1fns %12.1fns\n", "avg read latency", cl.Cache.ReadLatency.Value(), td.Cache.ReadLatency.Value())
	fmt.Printf("%-22s %14v %14v\n", "runtime", cl.Runtime, td.Runtime)
	fmt.Printf("%-22s %14.2f %14.2f\n", "bandwidth bloat", cl.Cache.BloatFactor(), td.Cache.BloatFactor())
	fmt.Printf("%-22s %12.3fmJ %12.3fmJ\n", "cache-device energy", cl.Energy.Cache.Total()*1e3, td.Energy.Cache.Total()*1e3)
	fmt.Printf("%-22s %12.3fmJ %12.3fmJ\n", "total memory energy", cl.Energy.Total()*1e3, td.Energy.Total()*1e3)

	fmt.Printf("\nTDRAM: %.2fx faster tag check, %.2fx speedup, %.0f%% less cache energy\n",
		cl.Cache.TagCheck.Value()/td.Cache.TagCheck.Value(),
		float64(cl.Runtime)/float64(td.Runtime),
		(1-td.Energy.Cache.Total()/cl.Energy.Cache.Total())*100)
	fmt.Printf("TDRAM probes: %d early tag checks, %d misses retired from the read queue early\n",
		td.Cache.Probes, td.Cache.ProbeMissClean)
}
