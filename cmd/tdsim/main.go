// Command tdsim runs one full-system DRAM-cache simulation and prints
// its measurements: outcome breakdown, tag-check latency, queueing
// delay, bandwidth and energy.
//
// Usage:
//
//	tdsim -design tdram -workload ft.C
//	tdsim -design cascade-lake -workload pr.25 -capacity 33554432
//	tdsim -design tdram -workload ft.C -trace out.json -metrics out.csv
//	tdsim -experiments -scale quick -jobs 4
//	tdsim -show-config
//
// With -experiments, tdsim runs the full (design x workload) evaluation
// matrix at -scale instead of one simulation, fanning cells out across
// -jobs workers (default GOMAXPROCS), and prints every matrix-derived
// figure and table. A failed cell is reported and skipped, not fatal.
// By default the matrix shares one warmup image per workload across the
// designs (bit-identical to a full replay; -snapshot-warmup=false
// replays warmup per cell instead).
//
// With -trace, the run records every committed DRAM command, tag-check
// result, probe and flush-buffer event as Chrome trace-event JSON; load
// the file at https://ui.perfetto.dev to see per-channel CA/DQ/HM-bus
// and bank timelines in the style of the paper's Fig. 5-7. With
// -metrics, queue depths, bus utilization and miss ratio are sampled
// every -metrics-interval of simulated time into CSV (or JSON if the
// file name ends in .json).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdram"
	"tdram/internal/dram"
	"tdram/internal/mem"
	"tdram/internal/overhead"
	"tdram/internal/sim"
)

func main() {
	var (
		designName    = flag.String("design", "tdram", "cache design: cascade-lake, alloy, bear, ndc, tdram, ideal, no-cache")
		wlName        = flag.String("workload", "ft.C", "workload name (see -list)")
		capacity      = flag.Uint64("capacity", 16<<20, "DRAM cache capacity in bytes")
		requests      = flag.Int("requests", 10000, "measured accesses per core")
		warmup        = flag.Int("warmup", 1000, "timed warmup accesses per core")
		ways          = flag.Int("ways", 1, "cache associativity (1 = direct-mapped)")
		probe         = flag.Bool("probe", true, "TDRAM early tag probing")
		predictor     = flag.Bool("predictor", false, "MAP-I predictor (cascade-lake/alloy only)")
		flushSize     = flag.Int("flush", 16, "flush/victim buffer entries (tdram/ndc)")
		seed          = flag.Uint64("seed", 1, "workload PRNG seed")
		faultRate     = flag.Float64("fault-rate", 0, "per-access fault-injection probability (0 disables)")
		faultSeed     = flag.Uint64("fault-seed", 1, "fault-injection PRNG seed")
		watchdog      = flag.String("watchdog", "10ms", "no-progress watchdog window of simulated time (0 disables)")
		tracePath     = flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file")
		metricsPath   = flag.String("metrics", "", "write sampled time-series metrics (.csv or .json)")
		metricsEvery  = flag.String("metrics-interval", "1us", "metrics sampling period of simulated time (e.g. 500ns, 1us)")
		latency       = flag.Bool("latency", false, "attribute per-request latency and print the journey breakdown")
		flightDepth   = flag.Int("flight-recorder", 0, "keep a flight recorder of the last N request journeys (0 disables)")
		experiments   = flag.Bool("experiments", false, "run the evaluation matrix and print every figure/table")
		scaleName     = flag.String("scale", "quick", "matrix scale for -experiments: quick or full")
		jobs          = flag.Int("jobs", 0, "matrix cells simulated concurrently for -experiments (0 = GOMAXPROCS)")
		snapWarmup    = flag.Bool("snapshot-warmup", true, "share one warmup image per workload across matrix designs (false replays warmup per cell)")
		list          = flag.Bool("list", false, "list workloads and exit")
		showConfig    = flag.Bool("show-config", false, "print the Table III device timing and exit")
		showOverheads = flag.Bool("show-overheads", false, "print the paper's analytical area/pin overheads and exit")
	)
	flag.Parse()

	if *list {
		for _, wl := range tdram.Workloads() {
			fmt.Printf("%-9s suite=%-6s footprint=%.2fx band=%s writes=%.0f%%\n",
				wl.Name, wl.Suite, wl.FootprintRatio, wl.Band, wl.WriteFrac*100)
		}
		return
	}
	if *showConfig {
		printDeviceConfig(*capacity)
		return
	}
	if *showOverheads {
		printOverheads()
		return
	}
	if *experiments {
		if err := runExperiments(*scaleName, *jobs, *snapWarmup); err != nil {
			fatal(err)
		}
		return
	}

	design, err := tdram.ParseDesign(*designName)
	if err != nil {
		fatal(err)
	}
	wl, err := tdram.WorkloadByName(*wlName)
	if err != nil {
		fatal(err)
	}

	cfg := tdram.NewSystemConfig(design, wl, *capacity)
	cfg.RequestsPerCore = *requests
	cfg.WarmupPerCore = *warmup
	cfg.Seed = *seed
	if design != tdram.NoCache {
		cfg.Cache.Ways = *ways
		cfg.Cache.FlushEntries = *flushSize
		if design == tdram.TDRAM {
			cfg.Cache.ProbeEnabled = *probe
		}
		if *predictor {
			cfg.Cache.UsePredictor = true
		}
		if *faultRate > 0 {
			cfg.Cache.Fault = tdram.FaultConfig{Rate: *faultRate, Seed: *faultSeed}
		}
	}
	if *watchdog != "0" {
		w, err := tdram.ParseTick(*watchdog)
		if err != nil {
			fatal(fmt.Errorf("bad -watchdog %q: %v", *watchdog, err))
		}
		cfg.Watchdog = w
	}

	if *tracePath != "" {
		cfg.Obs.Trace = true
	}
	if *metricsPath != "" {
		iv, err := tdram.ParseTick(*metricsEvery)
		if err != nil || iv <= 0 {
			fatal(fmt.Errorf("bad -metrics-interval %q", *metricsEvery))
		}
		cfg.Obs.MetricsInterval = iv
	}
	cfg.Obs.Journeys = *latency
	cfg.Obs.FlightRecorder = *flightDepth

	sys, err := tdram.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		fatal(err)
	}
	printResult(res)
	if *latency {
		printJourneys(sys.Observer())
	}
	if err := writeObservations(sys.Observer(), *tracePath, *metricsPath); err != nil {
		fatal(err)
	}
}

// printJourneys renders the per-class journey attribution: counts,
// tail percentiles and the phase breakdown in mean ns per request.
func printJourneys(o *tdram.Observer) {
	fmt.Println("request journeys:")
	for c := mem.JourneyClass(0); c < mem.JourneyClass(mem.NumJourneyClasses); c++ {
		n := o.JourneyClassCount(c)
		if n == 0 {
			continue
		}
		h := o.JourneyClassHist(c)
		fmt.Printf("  %-11s %7d  mean %8.1fns  p50 %8.0f  p90 %8.0f  p99 %8.0f  p99.9 %8.0f\n",
			c, n, h.MeanNS(), h.PercentileNS(0.50), h.PercentileNS(0.90),
			h.PercentileNS(0.99), h.PercentileNS(0.999))
		for p := mem.Phase(0); p < mem.Phase(mem.NumPhases); p++ {
			sum := o.JourneyPhaseSum(c, p)
			if sum == 0 {
				continue
			}
			fmt.Printf("      %-14s %8.1fns/req\n", p, sum.Nanoseconds()/float64(n))
		}
	}
}

// runExperiments executes the evaluation matrix with a bounded worker
// pool and renders every matrix-derived figure/table. Per-cell failures
// are reported on stderr; completed cells still render, and the error
// return (nonzero exit) records that the sweep was partial.
func runExperiments(scaleName string, jobs int, snapshotWarmup bool) error {
	var scale tdram.Scale
	switch scaleName {
	case "quick":
		scale = tdram.QuickScale()
	case "full":
		scale = tdram.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (quick or full)", scaleName)
	}
	progress := func(s string) { fmt.Fprintln(os.Stderr, s) }
	m, err := tdram.RunMatrixOpts(scale, tdram.MatrixOptions{
		Jobs: jobs, Progress: progress, ReplayWarmup: !snapshotWarmup,
	})
	if err != nil && len(m.Results) == 0 {
		return err
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdsim: WARNING: %d matrix cell(s) failed; rendering the %d completed cells\n",
			len(m.MissingCells()), len(m.Results))
	}
	for _, rep := range tdram.ReproduceFigures(m) {
		fmt.Println(rep)
	}
	if err != nil {
		return fmt.Errorf("%d matrix cell(s) failed", len(m.MissingCells()))
	}
	return nil
}

// writeObservations saves the run's trace and metrics files and prints
// the observer's run-summary counters.
func writeObservations(o *tdram.Observer, tracePath, metricsPath string) error {
	if o == nil {
		return nil
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := o.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		n, dropped := o.TraceEvents()
		fmt.Printf("trace         %s (%d events", tracePath, n)
		if dropped > 0 {
			fmt.Printf(", %d dropped", dropped)
		}
		fmt.Printf(") — load at https://ui.perfetto.dev\n")
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		write := o.WriteMetricsCSV
		if strings.HasSuffix(metricsPath, ".json") {
			write = o.WriteMetricsJSON
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics       %s (%d samples, %d series)\n",
			metricsPath, o.Samples(), len(o.MetricNames()))
	}
	if cs := o.Counters(); len(cs) > 0 {
		fmt.Println("observer counters:")
		for _, c := range cs {
			fmt.Printf("  %-28s %d\n", c.Name, c.Value)
		}
	}
	if _, dropped := o.TraceEvents(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "tdsim: WARNING: %d trace event(s) dropped (buffer cap); the trace is incomplete\n", dropped)
	}
	if dropped := o.SamplesDropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "tdsim: WARNING: %d metric sample(s) dropped (budget cap); the series is incomplete\n", dropped)
	}
	for _, snap := range o.FlightSnapshots() {
		fmt.Println(snap)
	}
	return nil
}

func printResult(r *tdram.Result) {
	fmt.Printf("design        %v\n", r.Design)
	fmt.Printf("workload      %s\n", r.Workload)
	fmt.Printf("runtime       %v\n", r.Runtime)
	fmt.Printf("throughput    %.1f accesses/us\n", r.Throughput())
	fmt.Printf("l2 miss rate  %.3f\n", r.L2MissRate)
	if r.Design == tdram.NoCache {
		fmt.Printf("ddr5 reads    %d (queueing %.1fns, latency %.1fns)\n",
			r.MM.Reads, r.MM.ReadQueueing.Value(), r.MM.ReadLatency.Value())
		return
	}
	o := &r.Cache.Outcomes
	fmt.Printf("demands       %d reads, %d writes\n", r.Cache.DemandReads, r.Cache.DemandWrites)
	fmt.Printf("miss ratio    %.3f\n", o.MissRatio())
	fmt.Println("outcomes:")
	for out := mem.ReadHit; out < mem.Outcome(mem.NumOutcomes); out++ {
		fmt.Printf("  %-17s %d\n", out, o.Count(out))
	}
	fmt.Printf("tag check     %.2f ns avg (p95 %.0f, p99 %.0f)\n", r.Cache.TagCheck.Value(),
		r.Cache.TagCheckHist.PercentileNS(0.95), r.Cache.TagCheckHist.PercentileNS(0.99))
	fmt.Printf("read queueing %.2f ns avg\n", r.Cache.ReadQueueing.Value())
	fmt.Printf("read latency  %.2f ns avg (p95 %.0f, p99 %.0f)\n", r.Cache.ReadLatency.Value(),
		r.Cache.ReadLatencyHist.PercentileNS(0.95), r.Cache.ReadLatencyHist.PercentileNS(0.99))
	tr := &r.Cache.Traffic
	fmt.Printf("traffic       cache %.1f MiB (demand %.1f, fill %.1f, victim %.1f, discard %.1f, overfetch %.1f), mm %.1f MiB\n",
		mib(tr.CacheTotal()), mib(tr.DemandBytes), mib(tr.FillBytes), mib(tr.VictimBytes),
		mib(tr.DiscardBytes), mib(tr.OverheadBytes), mib(tr.MMDemandBytes+tr.MMWritebackBytes))
	fmt.Printf("bloat factor  %.2f\n", r.Cache.BloatFactor())
	if r.Design == tdram.TDRAM {
		fmt.Printf("probes        %d (miss-clean %d, hit %d, miss-dirty %d)\n",
			r.Cache.Probes, r.Cache.ProbeMissClean, r.Cache.ProbeHits, r.Cache.ProbeMissDirty)
		fmt.Printf("flush buffer  avg %.1f, max %d, stalls %d (drains: refresh %d, idle-slot %d, explicit %d)\n",
			r.Cache.FlushOccupancy.Value(), r.Cache.FlushMax, r.Cache.FlushStalls,
			r.Cache.FlushDrainRefresh, r.Cache.FlushDrainIdleSlot, r.Cache.FlushDrainExplicit)
	}
	if r.Cache.PredictorMissStarts > 0 {
		fmt.Printf("predictor     %d early fetches, accuracy %.2f\n",
			r.Cache.PredictorMissStarts, r.Cache.PredictorAccuracy)
	}
	if f := r.Cache.Fault; f != (tdram.FaultCounters{}) {
		fmt.Printf("fault         injected=%d corrected=%d detected=%d retried=%d exhausted=%d sets-retired=%d bypassed=%d victims-lost=%d\n",
			f.Injected, f.Corrected, f.Detected, f.Retries, f.Exhausted, f.SetsRetired, f.Bypasses, f.VictimsLost)
	}
	fmt.Printf("energy        cache %.3f mJ + main %.3f mJ = %.3f mJ\n",
		r.Energy.Cache.Total()*1e3, r.Energy.Main.Total()*1e3, r.Energy.Total()*1e3)
}

func mib(b uint64) float64 { return float64(b) / (1 << 20) }

func printDeviceConfig(capacity uint64) {
	p := dram.CacheDeviceParams(capacity)
	fmt.Printf("cache device (%s), %d channels x %d banks, capacity %d MiB\n",
		p.Name, p.Channels, p.Banks, capacity>>20)
	rows := []struct {
		name string
		v    sim.Tick
	}{
		{"tBURST", p.TBURST}, {"tRCD", p.TRCD}, {"tRCD_WR", p.TRCDWR},
		{"tRP", p.TRP}, {"tRAS", p.TRAS}, {"tCL", p.TCL}, {"tCWL", p.TCWL},
		{"tWR", p.TWR}, {"tRRD", p.TRRD}, {"tXAW", p.TFAW},
		{"tREFI", p.TREFI}, {"tRFC", p.TRFC},
		{"tRCD_TAG", p.TRCDTag}, {"tHM_int", p.THMInt}, {"tHM", p.THM},
		{"tRC_TAG", p.TRCTag}, {"tRRD_TAG", p.TRRDTag},
	}
	for _, r := range rows {
		fmt.Printf("  %-9s %v\n", r.name, r.v)
	}
	d := dram.DDR5Params()
	fmt.Printf("main memory (%s), %d channels x %d banks\n", d.Name, d.Channels, d.Banks)
}

func printOverheads() {
	area := overhead.PaperAreaModel()
	sig := overhead.PaperSignalModel()
	tag := overhead.PaperTagStorage()
	fmt.Printf("die area impact      %.2f%% (paper: 8.24%%)\n", area.DieAreaImpact()*100)
	fmt.Printf("interface signals    %d total, +%d vs HBM3 (+%.1f%%); fits spare bumps: %v\n",
		sig.TDRAMSignals(), sig.ExtraSignals(), sig.SignalOverhead()*100, sig.FitsInPackage())
	fmt.Printf("tag storage          %d-bit tag, %d GiB of tag+metadata for a %d GiB cache over 1 PB\n",
		tag.TagBits(), tag.StorageBytes()>>30, tag.CacheBytes>>30)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdsim:", err)
	os.Exit(1)
}
