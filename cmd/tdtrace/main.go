// Command tdtrace records, inspects and replays DRAM-cache demand
// traces. Replaying one design's recorded stream against another is
// trace-driven simulation — the methodology the paper's §IV-A argues
// against — so `tdtrace replay` also prints the execution-driven result
// for the same design+workload, making the feedback error visible.
//
// Usage:
//
//	tdtrace record -workload ft.C -design cascade-lake -out ft.trace
//	tdtrace info   -in ft.trace
//	tdtrace replay -in ft.trace -design tdram -workload ft.C
package main

import (
	"flag"
	"fmt"
	"os"

	"tdram/internal/backing"
	"tdram/internal/dram"
	"tdram/internal/dramcache"
	"tdram/internal/sim"
	"tdram/internal/system"
	"tdram/internal/trace"
	"tdram/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fatal(fmt.Errorf("usage: tdtrace record|info|replay [flags]"))
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "replay":
		err = replay(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fatal(err)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	wlName := fs.String("workload", "ft.C", "workload to run")
	designName := fs.String("design", "cascade-lake", "design whose execution generates the trace")
	capacity := fs.Uint64("capacity", 16<<20, "cache capacity in bytes")
	requests := fs.Int("requests", 5000, "measured accesses per core")
	out := fs.String("out", "demands.trace", "output trace file")
	fs.Parse(args)

	design, err := dramcache.ParseDesign(*designName)
	if err != nil {
		return err
	}
	wl, err := workload.ByName(*wlName)
	if err != nil {
		return err
	}
	cfg := system.DefaultConfig(design, wl, *capacity)
	cfg.RequestsPerCore = *requests
	sys, err := system.New(cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := trace.NewRecorder(sys.Controller(), f)
	res, err := sys.Run()
	if err != nil {
		return err
	}
	if err := rec.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d demands from %v on %s (runtime %v) to %s\n",
		rec.Events(), design, wl.Name, res.Runtime, *out)
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "demands.trace", "trace file")
	fs.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Summarize(f)
	if err != nil {
		return err
	}
	span := s.Last - s.First
	fmt.Printf("events    %d (%d reads, %d writes)\n", s.Events, s.Reads, s.Writes)
	fmt.Printf("cores     %d\n", s.Cores)
	fmt.Printf("lines     %d distinct (%d MiB footprint touched)\n", s.Lines, s.Lines*64>>20)
	fmt.Printf("span      %v", span)
	if span > 0 {
		bw := float64(s.Events*64) / span.Nanoseconds()
		fmt.Printf("  (%.1f GB/s demand bandwidth)", bw)
	}
	fmt.Println()
	return nil
}

func replay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "demands.trace", "trace file")
	designName := fs.String("design", "tdram", "design to replay against")
	capacity := fs.Uint64("capacity", 16<<20, "cache capacity in bytes")
	warmFrac := fs.Float64("warmup-frac", 0.3, "leading fraction of the trace used as functional cache warmup")
	wlName := fs.String("workload", "", "if set, also run this workload execution-driven on the same design for comparison")
	fs.Parse(args)

	design, err := dramcache.ParseDesign(*designName)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	events, err := trace.ReadAll(f)
	f.Close()
	if err != nil {
		return err
	}

	s := sim.New()
	mm, err := backing.New(s, dram.DDR5Params())
	if err != nil {
		return err
	}
	ctl, err := dramcache.New(s, dramcache.DefaultConfig(design, *capacity), mm)
	if err != nil {
		return err
	}
	player := trace.NewPlayer(s, ctl, events)
	player.Prewarm(*warmFrac)
	runtime, err := player.Run()
	if err != nil {
		return err
	}
	st := ctl.Stats()
	fmt.Printf("trace-driven replay on %v: runtime %v, miss ratio %.3f, tag check %.1fns\n",
		design, runtime, st.Outcomes.MissRatio(), st.TagCheck.Value())

	if *wlName != "" {
		wl, err := workload.ByName(*wlName)
		if err != nil {
			return err
		}
		cfg := system.DefaultConfig(design, wl, *capacity)
		cfg.RequestsPerCore = len(events) / cfg.Cores
		res, err := system.Run(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("execution-driven %v on %s: runtime %v, miss ratio %.3f, tag check %.1fns\n",
			design, wl.Name, res.Runtime, res.Cache.Outcomes.MissRatio(), res.Cache.TagCheck.Value())
		fmt.Println("(the difference is the feedback trace-driven simulation cannot see — §IV-A)")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdtrace:", err)
	os.Exit(1)
}
