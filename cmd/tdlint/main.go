// Command tdlint is the repository's static-analysis multichecker. It
// enforces, mechanically, the invariants the simulator's results rest
// on: allocation-free event scheduling in hot packages (schedcapture),
// bit-identical output across runs (determinism), the nil-checked
// observe-hook pattern (hookguard), and timing values flowing from
// named parameters (tickconv).
//
// Usage:
//
//	go run ./cmd/tdlint ./...
//	go run ./cmd/tdlint -list
//	go run ./cmd/tdlint -only determinism,hookguard ./internal/...
//
// Findings print as file:line:col: message (analyzer), one per line,
// followed by indented remediation hints. The exit status is 0 when the
// tree is clean, 1 when there are findings, 2 on load errors. A finding
// is suppressed by an in-source directive on the flagged line or the
// line above it:
//
//	//tdlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The reason is mandatory; malformed directives are themselves
// findings. Test files are never analyzed — the enforced invariants
// bind the simulator, not its tests.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdram/internal/analysis"
	"tdram/internal/analysis/determinism"
	"tdram/internal/analysis/hookguard"
	"tdram/internal/analysis/schedcapture"
	"tdram/internal/analysis/tickconv"
)

// analyzers returns the full tdlint suite. main_test.go pins this
// registry: exactly these four, in this order.
func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		schedcapture.Analyzer,
		determinism.Analyzer,
		hookguard.Analyzer,
		tickconv.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("tdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdlint [-only names] [-C dir] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the tdram static-analysis suite over the packages (default ./...).\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tdlint: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tdlint: %v\n", err)
		return 2
	}
	nfindings := 0
	for _, pkg := range pkgs {
		findings, err := pkg.Run(suite...)
		if err != nil {
			fmt.Fprintf(stderr, "tdlint: %v\n", err)
			return 2
		}
		findings = append(findings, pkg.Allow.Malformed...)
		for _, f := range findings {
			nfindings++
			fmt.Fprintln(stdout, f)
			for _, fix := range f.Fixes {
				fmt.Fprintf(stdout, "\t%s\n", fix)
			}
		}
	}
	if nfindings > 0 {
		fmt.Fprintf(stderr, "tdlint: %d finding(s)\n", nfindings)
		return 1
	}
	return 0
}
