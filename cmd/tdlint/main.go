// Command tdlint is the repository's static-analysis multichecker. It
// enforces, mechanically, the invariants the simulator's results rest
// on: allocation-free event scheduling in hot packages (schedcapture),
// bit-identical output across runs (determinism), the nil-checked
// observe-hook pattern (hookguard), timing values flowing from named
// parameters (tickconv), complete snapshot/fork copiers (copydrift),
// pooled-record lifecycles (poollife), and the serving tier's lock
// discipline (locksafe).
//
// Usage:
//
//	go run ./cmd/tdlint ./...
//	go run ./cmd/tdlint -list
//	go run ./cmd/tdlint -only determinism,hookguard ./internal/...
//	go run ./cmd/tdlint -json ./... > findings.json
//	go run ./cmd/tdlint -sarif ./... > findings.sarif
//
// Findings print as file:line:col: message (analyzer), one per line,
// followed by indented remediation hints. -json emits them as a single
// machine-readable document instead, and -sarif as a SARIF 2.1.0 log;
// both use module-relative paths and the same stable ordering (file,
// line, column, analyzer), so two runs over the same tree are
// byte-identical. The exit status is 0 when the tree is clean, 1 when
// there are findings, 2 on load errors. A finding is suppressed by an
// in-source directive on the flagged line or the line above it:
//
//	//tdlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The reason is mandatory; malformed directives are themselves
// findings, and — when the full suite runs — so are directives that no
// longer suppress anything, so stale exemptions rot loudly. Test files
// are never analyzed — the enforced invariants bind the simulator, not
// its tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tdram/internal/analysis"
	"tdram/internal/analysis/copydrift"
	"tdram/internal/analysis/determinism"
	"tdram/internal/analysis/hookguard"
	"tdram/internal/analysis/locksafe"
	"tdram/internal/analysis/poollife"
	"tdram/internal/analysis/schedcapture"
	"tdram/internal/analysis/tickconv"
)

// analyzers returns the full tdlint suite. main_test.go pins this
// registry: exactly these seven, in this order.
func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		schedcapture.Analyzer,
		determinism.Analyzer,
		hookguard.Analyzer,
		tickconv.Analyzer,
		copydrift.Analyzer,
		poollife.Analyzer,
		locksafe.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("tdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	dir := fs.String("C", ".", "change to `dir` before resolving package patterns")
	asJSON := fs.Bool("json", false, "emit findings as a JSON document on stdout")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: tdlint [-only names] [-C dir] [-json|-sarif] [packages]\n\n")
		fmt.Fprintf(stderr, "Runs the tdram static-analysis suite over the packages (default ./...).\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *asJSON && *asSARIF {
		fmt.Fprintf(stderr, "tdlint: -json and -sarif are mutually exclusive\n")
		return 2
	}
	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, strings.SplitN(a.Doc, "\n", 2)[0])
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		suite = suite[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "tdlint: unknown analyzer %q\n", name)
				return 2
			}
			suite = append(suite, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "tdlint: %v\n", err)
		return 2
	}
	suiteNames := make(map[string]bool, len(suite))
	for _, a := range suite {
		suiteNames[a.Name] = true
	}
	var all []analysis.Finding
	for _, pkg := range pkgs {
		findings, err := pkg.Run(suite...)
		if err != nil {
			fmt.Fprintf(stderr, "tdlint: %v\n", err)
			return 2
		}
		all = append(all, findings...)
		all = append(all, pkg.Allow.Malformed...)
		if *only == "" {
			// Unused-allow auditing needs the full suite: a directive for
			// an analyzer that did not run is not stale, just unexercised.
			all = append(all, pkg.Allow.Unused(suiteNames)...)
		}
	}
	sortFindings(all)
	relativizeFindings(all, *dir)

	switch {
	case *asJSON:
		if err := writeJSON(stdout, all); err != nil {
			fmt.Fprintf(stderr, "tdlint: %v\n", err)
			return 2
		}
	case *asSARIF:
		if err := writeSARIF(stdout, suite, all); err != nil {
			fmt.Fprintf(stderr, "tdlint: %v\n", err)
			return 2
		}
	default:
		for _, f := range all {
			fmt.Fprintln(stdout, f)
			for _, fix := range f.Fixes {
				fmt.Fprintf(stdout, "\t%s\n", fix)
			}
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "tdlint: %d finding(s)\n", len(all))
		return 1
	}
	return 0
}

// sortFindings orders findings by (file, line, column, analyzer,
// message) so every output mode is stable across runs.
func sortFindings(fs []analysis.Finding) {
	sort.Slice(fs, func(i, j int) bool {
		pi, pj := fs[i].Pos, fs[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if fs[i].Analyzer != fs[j].Analyzer {
			return fs[i].Analyzer < fs[j].Analyzer
		}
		return fs[i].Message < fs[j].Message
	})
}

// relativizeFindings rewrites absolute file paths relative to the run
// directory (forward slashes), so the machine-readable outputs do not
// leak the checkout location and diff cleanly across machines.
func relativizeFindings(fs []analysis.Finding, dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for i := range fs {
		if rel, err := filepath.Rel(abs, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			fs[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}
}

// jsonFinding is one row of the -json document.
type jsonFinding struct {
	Analyzer string   `json:"analyzer"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Column   int      `json:"column"`
	Message  string   `json:"message"`
	Fixes    []string `json:"fixes,omitempty"`
}

func writeJSON(w *os.File, fs []analysis.Finding) error {
	doc := struct {
		Count    int           `json:"count"`
		Findings []jsonFinding `json:"findings"`
	}{Count: len(fs), Findings: make([]jsonFinding, 0, len(fs))}
	for _, f := range fs {
		doc.Findings = append(doc.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Message:  f.Message,
			Fixes:    f.Fixes,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Minimal SARIF 2.1.0 shapes — one run, one rule per analyzer, one
// result per finding.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}
type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}
type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}
type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}
type sarifRule struct {
	ID        string    `json:"id"`
	ShortDesc sarifText `json:"shortDescription"`
}
type sarifText struct {
	Text string `json:"text"`
}
type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}
type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}
type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}
type sarifArtifact struct {
	URI string `json:"uri"`
}
type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func writeSARIF(w *os.File, suite []*analysis.Analyzer, fs []analysis.Finding) error {
	rules := make([]sarifRule, 0, len(suite)+1)
	for _, a := range suite {
		rules = append(rules, sarifRule{
			ID:        a.Name,
			ShortDesc: sarifText{Text: strings.SplitN(a.Doc, "\n", 2)[0]},
		})
	}
	// Directive-hygiene findings (malformed or unused tdlint:allow) are
	// attributed to the driver itself.
	rules = append(rules, sarifRule{ID: "tdlint", ShortDesc: sarifText{Text: "tdlint directive hygiene"}})
	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "tdlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
