package main

import (
	"encoding/json"
	"os"
	"testing"
)

// TestRegistry pins the multichecker's registry: exactly the seven
// domain analyzers, in a stable order, each documented and runnable.
func TestRegistry(t *testing.T) {
	want := []string{"schedcapture", "determinism", "hookguard", "tickconv", "copydrift", "poollife", "locksafe"}
	got := analyzers()
	if len(got) != len(want) {
		t.Fatalf("analyzers() registered %d analyzers, want exactly %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no documentation", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run function", a.Name)
		}
	}
}

// TestTreeIsClean is the acceptance gate: the committed tree must pass
// the full suite — including the unused-allow audit. Equivalent to
// `go run ./cmd/tdlint ./...` from the module root.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check; skipped in -short runs")
	}
	if code := run([]string{"-C", "../..", "./..."}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("tdlint ./... exited %d on the committed tree; run `go run ./cmd/tdlint ./...` for the findings", code)
	}
}

// TestUnknownAnalyzerRejected covers the -only selection path.
func TestUnknownAnalyzerRejected(t *testing.T) {
	if code := run([]string{"-only", "nosuch"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
}

// TestOutputModesExclusive rejects -json together with -sarif.
func TestOutputModesExclusive(t *testing.T) {
	if code := run([]string{"-json", "-sarif", "./..."}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("run(-json -sarif) = %d, want 2", code)
	}
}

// TestJSONOutput checks the machine-readable document parses and
// reports a clean package as zero findings.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a real package; skipped in -short runs")
	}
	out, err := os.CreateTemp(t.TempDir(), "findings-*.json")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if code := run([]string{"-C", "../..", "-json", "./internal/stats"}, out, os.Stderr); code != 0 {
		t.Fatalf("tdlint -json ./internal/stats exited %d", code)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Count    int           `json:"count"`
		Findings []jsonFinding `json:"findings"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, data)
	}
	if doc.Count != 0 || len(doc.Findings) != 0 {
		t.Fatalf("expected a clean package, got %d finding(s):\n%s", doc.Count, data)
	}
}
