package main

import (
	"os"
	"testing"
)

// TestRegistry pins the multichecker's registry: exactly the four
// domain analyzers, in a stable order, each documented and runnable.
func TestRegistry(t *testing.T) {
	want := []string{"schedcapture", "determinism", "hookguard", "tickconv"}
	got := analyzers()
	if len(got) != len(want) {
		t.Fatalf("analyzers() registered %d analyzers, want exactly %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzers()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no documentation", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run function", a.Name)
		}
	}
}

// TestTreeIsClean is the acceptance gate: the committed tree must pass
// the full suite. Equivalent to `go run ./cmd/tdlint ./...` from the
// module root.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree type-check; skipped in -short runs")
	}
	if code := run([]string{"-C", "../..", "./..."}, os.Stdout, os.Stderr); code != 0 {
		t.Fatalf("tdlint ./... exited %d on the committed tree; run `go run ./cmd/tdlint ./...` for the findings", code)
	}
}

// TestUnknownAnalyzerRejected covers the -only selection path.
func TestUnknownAnalyzerRejected(t *testing.T) {
	if code := run([]string{"-only", "nosuch"}, os.Stdout, os.Stderr); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
}
