// Command tdserve runs the fault-tolerant simulation service: an
// HTTP/JSON API where a job is a canonicalized simulation configuration
// served from a content-addressed result store, simulated at most once
// per code version, and resumed from its per-cell checkpoint after a
// crash or restart.
//
// Usage:
//
//	tdserve serve -addr :8344 -dir ./tdserve-store
//	tdserve loadtest -url http://localhost:8344 -n 200 -ramp 1,4,16,64
//
// serve runs until SIGINT/SIGTERM, then shuts down gracefully: stop
// accepting, cancel running jobs at their next cell boundary (finished
// cells are already checkpointed), flush, exit.
//
// loadtest drives a hit/miss request mix at one or more concurrency
// levels and reports wall-clock latency percentiles per level. Hits
// repeat one configuration (after the first fill, every request is a
// cache hit, so the latency measures the serving tier, not the
// simulator); misses perturb the configuration's fault seed — a field
// that changes the content address without changing the simulation's
// cost — so each miss pays for exactly one fresh tiny simulation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tdram/internal/serve"
	"tdram/internal/sim"
	"tdram/internal/stats"
)

// wallNow and wallSince isolate the harness's legitimate wall-clock
// reads — request latency measurement, never simulated time — behind
// one annotated seam so the determinism analyzer covers the rest of the
// command (the same pattern as tdbench).
func wallNow() time.Time {
	return time.Now() //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "loadtest":
		err = runLoadtest(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tdserve: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdserve: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tdserve serve    [-addr :8344] [-dir DIR] [-queue N] [-workers N]
                   [-sim-jobs N] [-sim-tokens N] [-mem-cache BYTES]
                   [-deadline DUR] [-metrics DUR]
  tdserve loadtest [-url URL] [-n N] [-c N | -ramp N,N,...]
                   [-miss-frac F] [-body JSON] [-json FILE]
`)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	dir := fs.String("dir", "tdserve-store", "result store directory")
	queue := fs.Int("queue", 8, "admission queue depth")
	workers := fs.Int("workers", 0, "job worker-pool size (0 = max(2, GOMAXPROCS))")
	simJobs := fs.Int("sim-jobs", 0, "matrix fan-out ceiling per job (0 = GOMAXPROCS)")
	simTokens := fs.Int("sim-tokens", 0, "shared CPU-token budget across jobs (0 = GOMAXPROCS)")
	memCache := fs.Int64("mem-cache", 64<<20, "in-memory result cache bound in bytes (0 = disabled)")
	deadline := fs.Duration("deadline", 10*time.Minute, "per-job deadline")
	metrics := fs.Duration("metrics", 0, "sampler period of simulated time streamed to /jobs/{id}/events (0 = off)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	fs.Parse(args)

	// The CLI's "0 disables the cache" maps to the Config convention
	// where zero selects the default and negative disables.
	memBytes := *memCache
	if memBytes == 0 {
		memBytes = -1
	}
	s, err := serve.NewServer(serve.Config{
		Dir:             *dir,
		QueueDepth:      *queue,
		Workers:         *workers,
		SimJobs:         *simJobs,
		SimTokens:       *simTokens,
		MemCacheBytes:   memBytes,
		JobDeadline:     *deadline,
		MetricsInterval: sim.NS(float64(metrics.Nanoseconds())),
	})
	if err != nil {
		return err
	}
	fmt.Printf("tdserve: code version %s, store %s, %d workers / %d CPU tokens, listening on %s\n",
		s.Version(), *dir, s.Workers(), s.Budget().Total(), *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("tdserve: shutting down (checkpointing in-flight work)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no request lands after the server
	// stops admitting, then drain the job workers within the budget.
	httpErr := httpSrv.Shutdown(shutdownCtx)
	if err := s.Close(shutdownCtx); err != nil {
		return err
	}
	return httpErr
}

// stageReport is one concurrency level's outcome in the loadtest report.
type stageReport struct {
	Concurrency int `json:"concurrency"`
	Requests    int `json:"requests"`
	MemHits     int `json:"mem_hits"`
	DiskHits    int `json:"disk_hits"`
	Misses      int `json:"misses"`
	Errors      int `json:"errors"`

	P50NS float64 `json:"p50_ns"`
	P90NS float64 `json:"p90_ns"`
	P99NS float64 `json:"p99_ns"`
	MaxNS float64 `json:"max_ns"`
}

// loadReport is the -json output: the parameters plus one stageReport
// per ramp level.
type loadReport struct {
	URL       string        `json:"url"`
	PerStage  int           `json:"requests_per_stage"`
	MissFrac  float64       `json:"miss_frac"`
	Stages    []stageReport `json:"stages"`
	TotalErrs int           `json:"total_errors"`
}

func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8344", "tdserve base URL")
	n := fs.Int("n", 50, "requests per stage")
	c := fs.Int("c", 4, "concurrent clients (ignored when -ramp is set)")
	ramp := fs.String("ramp", "", "comma-separated concurrency levels, e.g. 1,4,16,64")
	missFrac := fs.Float64("miss-frac", 0, "fraction of requests that are unique-configuration misses [0,1]")
	body := fs.String("body", `{"workloads":["bt.C"],"cache_mb":1,"requests_per_core":50,"warmup_per_core":10}`,
		"request body (a serve.Request)")
	jsonPath := fs.String("json", "", "write the per-stage report to this file as JSON")
	fs.Parse(args)
	if *n <= 0 {
		return fmt.Errorf("loadtest: -n must be positive")
	}
	if *missFrac < 0 || *missFrac > 1 {
		return fmt.Errorf("loadtest: -miss-frac %g is not in [0,1]", *missFrac)
	}
	var base serve.Request
	if err := json.Unmarshal([]byte(*body), &base); err != nil {
		return fmt.Errorf("loadtest: -body does not parse as a serve.Request: %v", err)
	}
	levels := []int{*c}
	if *ramp != "" {
		levels = levels[:0]
		for _, part := range strings.Split(*ramp, ",") {
			lv, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || lv <= 0 {
				return fmt.Errorf("loadtest: bad -ramp level %q", part)
			}
			levels = append(levels, lv)
		}
	}

	// Misses must be unique across the whole run (a repeated "miss" is a
	// hit); the seed base keys them away from any previous run against
	// the same store.
	var seed atomic.Uint64
	seed.Store(uint64(wallNow().UnixNano()))

	report := loadReport{URL: *url, PerStage: *n, MissFrac: *missFrac}
	for _, level := range levels {
		st := runStage(*url, *n, level, *missFrac, base, &seed)
		report.Stages = append(report.Stages, st)
		report.TotalErrs += st.Errors
		fmt.Printf("c=%-3d requests: %d  mem: %d  disk: %d  simulated: %d  errors: %d\n",
			level, st.Requests, st.MemHits, st.DiskHits, st.Misses, st.Errors)
		fmt.Printf("      latency: p50 %s  p90 %s  p99 %s  max %s\n",
			fmtDur(st.P50NS), fmtDur(st.P90NS), fmtDur(st.P99NS), fmtDur(st.MaxNS))
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report: %s\n", *jsonPath)
	}
	if report.TotalErrs > 0 {
		return fmt.Errorf("loadtest: %d request(s) failed", report.TotalErrs)
	}
	return nil
}

// runStage fires n requests at the service from `level` concurrent
// clients. missFrac of them (interleaved evenly by accumulator, not
// front-loaded) carry a fresh fault seed — a new content address at
// unchanged simulation cost — so they exercise the full miss path.
func runStage(url string, n, level int, missFrac float64, base serve.Request, seed *atomic.Uint64) stageReport {
	work := make(chan bool, n) // true = this request is a miss
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += missFrac
		miss := acc >= 1
		if miss {
			acc--
		}
		work <- miss
	}
	close(work)

	var (
		mu   sync.Mutex
		hist = stats.NewLogHist()
		st   = stageReport{Concurrency: level, Requests: n}
	)
	var wg sync.WaitGroup
	for i := 0; i < level; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 15 * time.Minute}
			for miss := range work {
				req := base
				if miss {
					req.FaultSeed = seed.Add(1)
				}
				payload, err := json.Marshal(req)
				if err != nil {
					mu.Lock()
					st.Errors++
					mu.Unlock()
					continue
				}
				start := wallNow()
				resp, err := client.Post(url+"/jobs?wait=1", "application/json", bytes.NewReader(payload))
				if err != nil {
					mu.Lock()
					st.Errors++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := wallSince(start)
				mu.Lock()
				hist.AddTick(sim.Tick(d.Nanoseconds()) * sim.Nanosecond)
				switch {
				case resp.StatusCode != http.StatusOK:
					st.Errors++
				default:
					switch resp.Header.Get("Tdserve-Cache") {
					case "mem":
						st.MemHits++
					case "disk":
						st.DiskHits++
					default:
						st.Misses++
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if hist.N() > 0 {
		st.P50NS = hist.PercentileNS(0.50)
		st.P90NS = hist.PercentileNS(0.90)
		st.P99NS = hist.PercentileNS(0.99)
		st.MaxNS = float64(hist.Max().Nanoseconds())
	}
	return st
}

func fmtDur(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
