// Command tdserve runs the fault-tolerant simulation service: an
// HTTP/JSON API where a job is a canonicalized simulation configuration
// served from a content-addressed result store, simulated at most once
// per code version, and resumed from its per-cell checkpoint after a
// crash or restart.
//
// Usage:
//
//	tdserve serve -addr :8344 -dir ./tdserve-store
//	tdserve loadtest -url http://localhost:8344 -n 50 -c 4
//
// serve runs until SIGINT/SIGTERM, then shuts down gracefully: stop
// accepting, cancel the running job at its next cell boundary (finished
// cells are already checkpointed), flush, exit. loadtest submits the
// same configuration repeatedly and reports wall-clock latency
// percentiles — after the first miss fills the store, every request is
// a cache hit and the p50 measures the service tier, not the simulator.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"tdram/internal/serve"
	"tdram/internal/sim"
	"tdram/internal/stats"
)

// wallNow and wallSince isolate the harness's legitimate wall-clock
// reads — request latency measurement, never simulated time — behind
// one annotated seam so the determinism analyzer covers the rest of the
// command (the same pattern as tdbench).
func wallNow() time.Time {
	return time.Now() //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "loadtest":
		err = runLoadtest(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "tdserve: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tdserve: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  tdserve serve    [-addr :8344] [-dir DIR] [-queue N] [-sim-jobs N]
                   [-deadline DUR] [-metrics DUR]
  tdserve loadtest [-url URL] [-n N] [-c N] [-body JSON]
`)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8344", "listen address")
	dir := fs.String("dir", "tdserve-store", "result store directory")
	queue := fs.Int("queue", 8, "admission queue depth")
	simJobs := fs.Int("sim-jobs", 0, "matrix workers per job (0 = GOMAXPROCS)")
	deadline := fs.Duration("deadline", 10*time.Minute, "per-job deadline")
	metrics := fs.Duration("metrics", 0, "sampler period of simulated time streamed to /jobs/{id}/events (0 = off)")
	drain := fs.Duration("drain", 30*time.Second, "graceful-shutdown budget")
	fs.Parse(args)

	s, err := serve.NewServer(serve.Config{
		Dir:             *dir,
		QueueDepth:      *queue,
		SimJobs:         *simJobs,
		JobDeadline:     *deadline,
		MetricsInterval: sim.NS(float64(metrics.Nanoseconds())),
	})
	if err != nil {
		return err
	}
	fmt.Printf("tdserve: code version %s, store %s, listening on %s\n", s.Version(), *dir, *addr)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("tdserve: shutting down (checkpointing in-flight work)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no request lands after the server
	// stops admitting, then drain the job worker within the budget.
	httpErr := httpSrv.Shutdown(shutdownCtx)
	if err := s.Close(shutdownCtx); err != nil {
		return err
	}
	return httpErr
}

func runLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	url := fs.String("url", "http://localhost:8344", "tdserve base URL")
	n := fs.Int("n", 50, "total requests")
	c := fs.Int("c", 4, "concurrent clients")
	body := fs.String("body", `{"workloads":["bt.C"],"cache_mb":1,"requests_per_core":50,"warmup_per_core":10}`,
		"request body (a serve.Request)")
	fs.Parse(args)
	if *n <= 0 || *c <= 0 {
		return fmt.Errorf("loadtest: -n and -c must be positive")
	}

	payload := []byte(*body)
	var (
		mu     sync.Mutex
		hist   = stats.NewLogHist()
		hits   int
		errs   int
		firsts int
	)
	work := make(chan struct{}, *n)
	for i := 0; i < *n; i++ {
		work <- struct{}{}
	}
	close(work)

	var wg sync.WaitGroup
	for i := 0; i < *c; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 15 * time.Minute}
			for range work {
				start := wallNow()
				resp, err := client.Post(*url+"/jobs?wait=1", "application/json", bytes.NewReader(payload))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := wallSince(start)
				mu.Lock()
				hist.AddTick(sim.Tick(d.Nanoseconds()) * sim.Nanosecond)
				switch {
				case resp.StatusCode != http.StatusOK:
					errs++
				case resp.Header.Get("Tdserve-Cache") == "hit":
					hits++
				default:
					firsts++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("requests: %d  store hits: %d  simulated: %d  errors: %d\n",
		*n, hits, firsts, errs)
	if hist.N() > 0 {
		fmt.Printf("latency: p50 %s  p90 %s  p99 %s  max %s\n",
			fmtDur(hist.PercentileNS(0.50)), fmtDur(hist.PercentileNS(0.90)),
			fmtDur(hist.PercentileNS(0.99)), fmtDur(hist.Max().Nanoseconds()))
	}
	if errs > 0 {
		return fmt.Errorf("loadtest: %d request(s) failed", errs)
	}
	return nil
}

func fmtDur(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
