//go:build serve_e2e

package main

// This file is the out-of-process crash test: it builds the real
// tdserve binary, SIGKILLs it mid-job — no graceful handler, no
// in-process cooperation — restarts it over the same store directory,
// and requires the resumed result to be byte-identical to an
// uninterrupted run. It is build-tagged so the ordinary (race-budgeted)
// test run skips it; CI runs it as its own job via
// `go test -tags serve_e2e ./cmd/tdserve`.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// bigJob is sized so that even a fast machine cannot finish all 28
// cells before the test observes a checkpoint and kills the server.
const bigJob = `{"workloads":["bt.C","lu.C","ft.C","is.D"],"cache_mb":1,"requests_per_core":100000,"warmup_per_core":1000}`

func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tdserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startServer(t *testing.T, bin, addr, dir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", addr, "-dir", dir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	t.Fatal("server did not come up")
	return nil
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// checkpointCells counts completed cells in the job's checkpoint file.
func checkpointCells(dir, id string) int {
	matches, _ := filepath.Glob(filepath.Join(dir, "v-*", id+".ckpt"))
	if len(matches) != 1 {
		return 0
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		return 0
	}
	return bytes.Count(data, []byte(`"design"`))
}

func TestKillAndRestartResumesByteIdentical(t *testing.T) {
	bin := buildBinary(t)

	// Phase 1: start, submit, wait for the first checkpointed cell,
	// SIGKILL — the hardest crash there is.
	dir := t.TempDir()
	addr := freePort(t)
	srv := startServer(t, bin, addr, dir)
	code, ack := post(t, "http://"+addr+"/jobs", bigJob)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, ack)
	}
	id := extractID(t, ack)
	deadline := time.Now().Add(60 * time.Second)
	for checkpointCells(dir, id) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no cell checkpointed in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := srv.Process.Kill(); err != nil { // SIGKILL, not SIGTERM
		t.Fatal(err)
	}
	srv.Wait()
	if m, _ := filepath.Glob(filepath.Join(dir, "v-*", id+".res")); len(m) != 0 {
		t.Skip("job finished before the kill landed; machine too fast for a mid-job crash")
	}
	ckAtKill := checkpointCells(dir, id)
	t.Logf("killed mid-job with %d cells checkpointed", ckAtKill)

	// Phase 2: restart over the same store; recovery must resume the
	// job from its checkpoint and complete it.
	addr2 := freePort(t)
	srv2 := startServer(t, bin, addr2, dir)
	resumed := waitResult(t, addr2, id, 5*time.Minute)

	// The restarted server must have started from the checkpoint, not
	// tick 0: its status right after boot already showed progress.
	// (Asserted indirectly: the resumed run only simulated the missing
	// cells, which the byte-identity check below would catch if the
	// checkpointed cells had been recomputed differently.)

	// Graceful path on the way out: SIGTERM must drain and exit 0.
	srv2.Process.Signal(syscall.SIGTERM)
	if err := srv2.Wait(); err != nil {
		t.Errorf("graceful shutdown after SIGTERM: %v", err)
	}

	// Phase 3: the same configuration, uninterrupted, in a fresh store.
	dir3 := t.TempDir()
	addr3 := freePort(t)
	srv3 := startServer(t, bin, addr3, dir3)
	code, fresh := post(t, "http://"+addr3+"/jobs?wait=1", bigJob)
	if code != http.StatusOK {
		t.Fatalf("uninterrupted run: %d %s", code, fresh)
	}
	srv3.Process.Signal(syscall.SIGTERM)
	srv3.Wait()

	if !bytes.Equal(resumed, fresh) {
		t.Errorf("resumed result differs from uninterrupted run:\n%.400s\nvs\n%.400s", resumed, fresh)
	}
}

func waitResult(t *testing.T, addr, id string, timeout time.Duration) []byte {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/jobs/" + id + "/result")
		if err != nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return b
		}
		if resp.StatusCode == http.StatusConflict {
			t.Fatalf("job failed after restart: %s", b)
		}
		time.Sleep(500 * time.Millisecond)
	}
	t.Fatal("resumed job did not finish in time")
	return nil
}

func extractID(t *testing.T, ack []byte) string {
	t.Helper()
	var id string
	if _, err := fmt.Sscanf(string(ack), `{"id":%q`, &id); err == nil && id != "" {
		return id
	}
	// Fallback: crude scan for the id field.
	const key = `"id":"`
	i := bytes.Index(ack, []byte(key))
	if i < 0 {
		t.Fatalf("no id in ack: %s", ack)
	}
	rest := ack[i+len(key):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		t.Fatalf("unterminated id in ack: %s", ack)
	}
	return string(rest[:j])
}
