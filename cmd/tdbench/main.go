// Command tdbench regenerates the paper's evaluation artifacts: every
// matrix-derived figure (Figs. 1-3, 9-13, Table IV) and the standalone
// studies (§V-D predictor, §V-E flush buffer, §V-F set associativity)
// plus the TDRAM design-choice ablations.
//
// Usage:
//
//	tdbench                          # all matrix figures, quick scale
//	tdbench -scale full              # all 28 workloads (several minutes)
//	tdbench -exp fig9,tab4           # selected experiments
//	tdbench -exp flushbuf,setassoc   # standalone studies
//	tdbench -jobs 4                  # bound the matrix worker pool
//	tdbench -v                       # per-run progress lines
//
// The matrix fans its (design, workload) cells out across -jobs workers
// (default: GOMAXPROCS); results are bit-identical to a serial run. By
// default one warmup image is built per workload and every design cell
// forks from it instead of replaying the design-independent prewarm
// (-snapshot-warmup=false restores per-cell replay; results are
// bit-identical either way). A
// failed cell does not abort the sweep: the finished cells still render
// (reports note the skipped workloads) and tdbench exits nonzero.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tdram"
	"tdram/internal/stats"
)

// wallNow and wallSince isolate tdbench's legitimate wall-clock reads —
// harness throughput measurement and report timestamps, never simulated
// time — behind one annotated seam so the determinism analyzer covers
// the rest of the command.
func wallNow() time.Time {
	return time.Now() //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) //tdlint:allow determinism — harness wall-clock timing, not simulated time
}

// matrixExps are the experiments derived from the shared run matrix.
var matrixExps = map[string]func(*tdram.Matrix) *tdram.Report{
	"fig1":  tdram.Fig1,
	"fig2":  tdram.Fig2,
	"fig3":  tdram.Fig3,
	"fig9":  tdram.Fig9,
	"fig10": tdram.Fig10,
	"fig11": tdram.Fig11,
	"fig12": tdram.Fig12,
	"tab4":  tdram.Tab4,
	"fig13": tdram.Fig13,
}

// standaloneExps run their own parameter sweeps.
var standaloneExps = map[string]func(tdram.Scale) (*tdram.Report, error){
	"predictor":        tdram.PredictorStudy,
	"prefetcher":       tdram.PrefetcherStudy,
	"flushbuf":         tdram.FlushBufferStudy,
	"setassoc":         tdram.SetAssocStudy,
	"abl-probing":      tdram.AblationProbing,
	"abl-probe-policy": tdram.AblationProbePolicy,
	"abl-flush":        tdram.AblationFlushBuffer,
	"abl-condcol":      tdram.AblationCondColumn,
	"abl-pagepolicy":   tdram.AblationPagePolicy,
	"resilience":       tdram.Resilience,
	"latency":          tdram.LatencyStudy,
}

var matrixOrder = []string{"fig1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "tab4", "fig13"}
var standaloneOrder = []string{"predictor", "prefetcher", "flushbuf", "setassoc", "abl-probing", "abl-probe-policy", "abl-flush", "abl-condcol", "abl-pagepolicy", "resilience", "latency"}

func main() {
	if err := run(); err != nil {
		fatal(err)
	}
}

func run() error {
	var (
		scaleName  = flag.String("scale", "quick", "quick (6 workloads) or full (all 28)")
		expList    = flag.String("exp", "matrix", "comma-separated experiment ids, 'matrix', 'studies', or 'all'")
		csvDir     = flag.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
		jsonOut    = flag.Bool("json", false, "write a machine-readable run summary to BENCH_<timestamp>.json")
		jobs       = flag.Int("jobs", 0, "matrix cells simulated concurrently (0 = GOMAXPROCS)")
		snapWarmup = flag.Bool("snapshot-warmup", true, "share one warmup image per workload across matrix designs (false replays warmup per cell)")
		faultRate  = flag.Float64("fault-rate", 0, "per-access fault-injection probability applied to every cache run (0 disables)")
		faultSeed  = flag.Uint64("fault-seed", 1, "fault-injection PRNG seed")
		watchdog   = flag.String("watchdog", "", "override the scale's no-progress watchdog window (e.g. 10ms; 0 disables)")
		latency    = flag.Bool("latency", false, "shorthand for adding the 'latency' attribution study to -exp")
		flightReq  = flag.Int("flight-recorder", 0, "arm a flight recorder of the last N request journeys in every run (0 disables)")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		verbose    = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}()
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	var scale tdram.Scale
	switch *scaleName {
	case "quick":
		scale = tdram.QuickScale()
	case "full":
		scale = tdram.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	scale.FaultRate = *faultRate
	scale.FaultSeed = *faultSeed
	scale.FlightDepth = *flightReq
	if *watchdog != "" {
		if *watchdog == "0" {
			scale.Watchdog = 0
		} else {
			w, err := tdram.ParseTick(*watchdog)
			if err != nil {
				return fmt.Errorf("bad -watchdog %q: %v", *watchdog, err)
			}
			scale.Watchdog = w
		}
	}

	var ids []string
	switch *expList {
	case "matrix":
		ids = matrixOrder
	case "studies":
		ids = standaloneOrder
	case "all":
		ids = append(append([]string{}, matrixOrder...), standaloneOrder...)
	default:
		ids = strings.Split(*expList, ",")
	}
	if *latency && !contains(ids, "latency") {
		ids = append(ids, "latency")
	}

	needMatrix := false
	for _, id := range ids {
		if _, ok := matrixExps[id]; ok {
			needMatrix = true
		} else if _, ok := standaloneExps[id]; !ok {
			return fmt.Errorf("unknown experiment %q (known: %s / %s)",
				id, strings.Join(matrixOrder, ","), strings.Join(standaloneOrder, ","))
		}
	}

	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	summary := &benchSummary{
		Timestamp: wallNow().Format(time.RFC3339),
		Scale:     scale.Name,
	}

	var m *tdram.Matrix
	var sweepErr error
	if needMatrix {
		// Ctrl-C cancels the sweep between cells: in-flight cells finish,
		// the rest fail with context.Canceled, and the completed part of
		// the matrix still renders below instead of the pool silently
		// running the whole sweep to the end.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		start := wallNow()
		njobs := *jobs
		if njobs <= 0 {
			njobs = runtime.GOMAXPROCS(0)
		}
		fmt.Fprintf(os.Stderr, "tdbench: running %d x %d matrix at scale %q with %d jobs...\n",
			len(scale.Workloads), 7, scale.Name, njobs)
		var err error
		m, err = tdram.RunMatrixOpts(scale, tdram.MatrixOptions{
			Jobs: *jobs, Progress: progress, ReplayWarmup: !*snapWarmup, Context: ctx,
		})
		if err != nil {
			// Per-cell failures: render whatever completed, exit nonzero.
			if len(m.Results) == 0 {
				return err
			}
			failed := m.MissingCells()
			fmt.Fprintf(os.Stderr, "tdbench: WARNING: %d matrix cell(s) failed; rendering the %d completed cells\n",
				len(failed), len(m.Results))
			for _, e := range cellErrors(err) {
				fmt.Fprintf(os.Stderr, "tdbench:   %s\n", firstLine(e.Error()))
			}
			sweepErr = fmt.Errorf("%d matrix cell(s) failed", len(failed))
		}
		wall := wallSince(start)
		cellsPerSec := 0.0
		if secs := wall.Seconds(); secs > 0 {
			cellsPerSec = float64(len(m.Results)) / secs
		}
		fmt.Fprintf(os.Stderr, "tdbench: matrix done in %v: %d cells, %.2f cells/sec\n",
			wall.Round(time.Second), len(m.Results), cellsPerSec)
		summary.Matrix = matrixSummary(m, wall)
	}

	emit := func(rep *tdram.Report, wall time.Duration) error {
		fmt.Println(rep)
		summary.Experiments = append(summary.Experiments, experimentSummary{
			ID: rep.ID, Title: rep.Title, WallSeconds: wall.Seconds(),
			Summary: rep.Summary, PaperClaim: rep.PaperClaim,
		})
		if *csvDir == "" {
			return nil
		}
		if csv := rep.CSV(); csv != "" {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				return err
			}
		}
		for i := range rep.Artifacts {
			a := &rep.Artifacts[i]
			if csv := a.CSV(); csv != "" {
				path := filepath.Join(*csvDir, rep.ID+"_"+a.Name+".csv")
				if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
					return err
				}
			}
		}
		return nil
	}

	for _, id := range ids {
		if f, ok := matrixExps[id]; ok {
			start := wallNow()
			rep := f(m)
			if err := emit(rep, wallSince(start)); err != nil {
				return err
			}
			continue
		}
		start := wallNow()
		rep, err := standaloneExps[id](scale)
		if err != nil {
			return err
		}
		if err := emit(rep, wallSince(start)); err != nil {
			return err
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "tdbench: %s done in %v\n", id, wallSince(start).Round(time.Second))
		}
	}

	if *jsonOut {
		path := fmt.Sprintf("BENCH_%s.json", wallNow().Format("20060102T150405"))
		if err := writeSummary(path, summary); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tdbench: wrote %s\n", path)
	}
	return sweepErr
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// cellErrors unpacks an errors.Join aggregate into its parts.
func cellErrors(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// benchSummary is the -json output: what ran, how long it took, and the
// headline numbers, machine-readable for regression tracking.
type benchSummary struct {
	Timestamp   string              `json:"timestamp"`
	Scale       string              `json:"scale"`
	Matrix      *matrixJSON         `json:"matrix,omitempty"`
	Experiments []experimentSummary `json:"experiments"`
}

type experimentSummary struct {
	ID          string   `json:"id"`
	Title       string   `json:"title"`
	WallSeconds float64  `json:"wall_seconds"`
	Summary     []string `json:"summary,omitempty"`
	PaperClaim  string   `json:"paper_claim,omitempty"`
}

type matrixJSON struct {
	Workloads   []string `json:"workloads"`
	Runs        int      `json:"runs"`
	WallSeconds float64  `json:"wall_seconds"`
	// SimulatedNS totals the measured-phase simulated time over all runs;
	// NSPerSecond is the simulation throughput the matrix achieved.
	SimulatedNS float64 `json:"simulated_ns"`
	NSPerSecond float64 `json:"simulated_ns_per_wall_second"`
	// Per-design aggregates over the matrix workloads.
	GeomeanSpeedupVsBaseline map[string]float64 `json:"geomean_speedup_vs_cascade_lake"`
	GeomeanMissRatio         map[string]float64 `json:"geomean_miss_ratio"`
	// FailedCells lists "workload/design" for cells that error'd or
	// panicked; the aggregates above cover only completed workloads.
	FailedCells []string `json:"failed_cells,omitempty"`
}

func matrixSummary(m *tdram.Matrix, wall time.Duration) *matrixJSON {
	mj := &matrixJSON{
		WallSeconds:              wall.Seconds(),
		GeomeanSpeedupVsBaseline: map[string]float64{},
		GeomeanMissRatio:         map[string]float64{},
	}
	for _, wl := range m.Scale.Workloads {
		mj.Workloads = append(mj.Workloads, wl.Name)
	}
	for _, k := range m.MissingCells() {
		mj.FailedCells = append(mj.FailedCells, fmt.Sprintf("%s/%v", k.Workload, k.Design))
	}
	// Sum in fixed (workload, design) order: ranging over the Results map
	// would accumulate the float total in a randomized order and perturb
	// simulated_ns's low bits from run to run.
	for _, wl := range m.Scale.Workloads {
		for _, d := range append(tdram.Designs(), tdram.NoCache) {
			if res := m.Get(d, wl.Name); res != nil {
				mj.Runs++
				mj.SimulatedNS += float64(res.Runtime) / 1e3 // ticks are ps
			}
		}
	}
	if s := wall.Seconds(); s > 0 {
		mj.NSPerSecond = mj.SimulatedNS / s
	}
	for _, d := range append(tdram.Designs(), tdram.NoCache) {
		var speedups, missRatios []float64
		for _, wl := range m.Scale.Workloads {
			res := m.Get(d, wl.Name)
			base := m.Get(tdram.CascadeLake, wl.Name)
			if res == nil || base == nil {
				continue
			}
			speedups = append(speedups, float64(base.Runtime)/float64(res.Runtime))
			if d != tdram.NoCache {
				missRatios = append(missRatios, res.Cache.Outcomes.MissRatio())
			}
		}
		mj.GeomeanSpeedupVsBaseline[d.String()] = stats.GeoMean(speedups)
		if d != tdram.NoCache {
			mj.GeomeanMissRatio[d.String()] = stats.GeoMean(missRatios)
		}
	}
	return mj
}

func writeSummary(path string, s *benchSummary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdbench:", err)
	os.Exit(1)
}
