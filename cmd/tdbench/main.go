// Command tdbench regenerates the paper's evaluation artifacts: every
// matrix-derived figure (Figs. 1-3, 9-13, Table IV) and the standalone
// studies (§V-D predictor, §V-E flush buffer, §V-F set associativity)
// plus the TDRAM design-choice ablations.
//
// Usage:
//
//	tdbench                          # all matrix figures, quick scale
//	tdbench -scale full              # all 28 workloads (several minutes)
//	tdbench -exp fig9,tab4           # selected experiments
//	tdbench -exp flushbuf,setassoc   # standalone studies
//	tdbench -v                       # per-run progress lines
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tdram"
)

// matrixExps are the experiments derived from the shared run matrix.
var matrixExps = map[string]func(*tdram.Matrix) *tdram.Report{
	"fig1":  tdram.Fig1,
	"fig2":  tdram.Fig2,
	"fig3":  tdram.Fig3,
	"fig9":  tdram.Fig9,
	"fig10": tdram.Fig10,
	"fig11": tdram.Fig11,
	"fig12": tdram.Fig12,
	"tab4":  tdram.Tab4,
	"fig13": tdram.Fig13,
}

// standaloneExps run their own parameter sweeps.
var standaloneExps = map[string]func(tdram.Scale) (*tdram.Report, error){
	"predictor":        tdram.PredictorStudy,
	"prefetcher":       tdram.PrefetcherStudy,
	"flushbuf":         tdram.FlushBufferStudy,
	"setassoc":         tdram.SetAssocStudy,
	"abl-probing":      tdram.AblationProbing,
	"abl-probe-policy": tdram.AblationProbePolicy,
	"abl-flush":        tdram.AblationFlushBuffer,
	"abl-condcol":      tdram.AblationCondColumn,
	"abl-pagepolicy":   tdram.AblationPagePolicy,
}

var matrixOrder = []string{"fig1", "fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "tab4", "fig13"}
var standaloneOrder = []string{"predictor", "prefetcher", "flushbuf", "setassoc", "abl-probing", "abl-probe-policy", "abl-flush", "abl-condcol", "abl-pagepolicy"}

func main() {
	var (
		scaleName = flag.String("scale", "quick", "quick (6 workloads) or full (all 28)")
		expList   = flag.String("exp", "matrix", "comma-separated experiment ids, 'matrix', 'studies', or 'all'")
		csvDir    = flag.String("csv", "", "also write each experiment's table as <dir>/<id>.csv")
		verbose   = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}

	var scale tdram.Scale
	switch *scaleName {
	case "quick":
		scale = tdram.QuickScale()
	case "full":
		scale = tdram.FullScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	var ids []string
	switch *expList {
	case "matrix":
		ids = matrixOrder
	case "studies":
		ids = standaloneOrder
	case "all":
		ids = append(append([]string{}, matrixOrder...), standaloneOrder...)
	default:
		ids = strings.Split(*expList, ",")
	}

	needMatrix := false
	for _, id := range ids {
		if _, ok := matrixExps[id]; ok {
			needMatrix = true
		} else if _, ok := standaloneExps[id]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (known: %s / %s)",
				id, strings.Join(matrixOrder, ","), strings.Join(standaloneOrder, ",")))
		}
	}

	progress := func(string) {}
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	var m *tdram.Matrix
	if needMatrix {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "tdbench: running %d x %d matrix at scale %q...\n",
			len(scale.Workloads), 7, scale.Name)
		var err error
		m, err = tdram.RunMatrix(scale, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tdbench: matrix done in %v\n", time.Since(start).Round(time.Second))
	}

	emit := func(rep *tdram.Report) {
		fmt.Println(rep)
		if *csvDir == "" {
			return
		}
		if csv := rep.CSV(); csv != "" {
			path := filepath.Join(*csvDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
				fatal(err)
			}
		}
	}

	for _, id := range ids {
		if f, ok := matrixExps[id]; ok {
			emit(f(m))
			continue
		}
		start := time.Now()
		rep, err := standaloneExps[id](scale)
		if err != nil {
			fatal(err)
		}
		emit(rep)
		if *verbose {
			fmt.Fprintf(os.Stderr, "tdbench: %s done in %v\n", id, time.Since(start).Round(time.Second))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdbench:", err)
	os.Exit(1)
}
