package main

import (
	"encoding/json"
	"testing"
	"time"

	"tdram"
	"tdram/internal/experiments"
	"tdram/internal/sim"
	"tdram/internal/system"
)

// TestMatrixJSONByteIdentical pins the -json summary's determinism: the
// same matrix must serialize to the same bytes on every call. The
// aggregates are accumulated by ranging over maps keyed on (design,
// workload); matrixSummary must visit them in the fixed sweep order or
// the float totals (and so the emitted low bits) shift run to run.
func TestMatrixJSONByteIdentical(t *testing.T) {
	build := func() *tdram.Matrix {
		sc := tdram.QuickScale()
		m := &experiments.Matrix{
			Scale:   sc,
			Results: make(map[experiments.Key]*system.Result),
		}
		for i, wl := range sc.Workloads {
			for j, d := range append(tdram.Designs(), tdram.NoCache) {
				m.Results[experiments.Key{Design: d, Workload: wl.Name}] = &system.Result{
					Design:   d,
					Workload: wl.Name,
					// Spread the runtimes so a reordered float sum
					// actually perturbs the total's low bits.
					Runtime:  sim.Tick(1) << (uint(i+j) % 50),
					Accesses: 1000,
				}
			}
		}
		return m
	}
	enc := func(m *tdram.Matrix) string {
		b, err := json.MarshalIndent(matrixSummary(m, 3*time.Second), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	first := enc(build())
	for i := 0; i < 8; i++ {
		if again := enc(build()); again != first {
			t.Fatalf("matrix JSON summary differs between identical matrices:\n--- first\n%s\n--- again\n%s", first, again)
		}
	}
}
