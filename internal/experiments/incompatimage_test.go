package experiments

import (
	"reflect"
	"strings"
	"testing"

	"tdram/internal/system"
)

// TestMatrixIncompatibleImageFallsBackToReplay pins the per-cell
// degradation contract of the shared-warmup fork: when one workload's
// image cannot seed its cells (here: built under a different stream
// seed, so CompatibleWith fails with ErrIncompatibleImage), exactly
// that workload falls back to a full warmup replay — per cell, without
// failing the sweep or touching any other workload's fork path — and
// every result is still bit-identical to an all-replay run.
func TestMatrixIncompatibleImageFallsBackToReplay(t *testing.T) {
	sc := Quick()
	sc.Workloads = sc.studySubset(2)
	sc.RequestsPerCore = 1000
	sc.WarmupPerCore = 200
	target := sc.Workloads[0].Name
	other := sc.Workloads[1].Name

	// Sabotage exactly one workload's image: building it under a
	// different seed makes every cell's CompatibleWith check fail.
	oldBuild := buildImage
	buildImage = func(cfg system.Config) (*system.WarmupImage, error) {
		if cfg.Workload.Name == target {
			cfg.Seed++
		}
		return oldBuild(cfg)
	}
	t.Cleanup(func() { buildImage = oldBuild })

	var lines []string
	m, err := RunMatrixOpts(sc, MatrixOptions{
		Jobs:     2,
		Progress: func(s string) { lines = append(lines, s) },
	})
	if err != nil {
		t.Fatalf("sweep with sabotaged image: %v", err)
	}

	// Each progress line names its warmup path: replay for every cell
	// of the sabotaged workload, fork for every other cell.
	sawReplay, sawFork := 0, 0
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, target):
			if !strings.HasSuffix(line, "warmup=replay") {
				t.Errorf("sabotaged workload cell did not replay: %q", line)
			}
			sawReplay++
		case strings.HasPrefix(line, other):
			if !strings.HasSuffix(line, "warmup=fork") {
				t.Errorf("healthy workload cell did not fork: %q", line)
			}
			sawFork++
		default:
			t.Errorf("progress line for unexpected workload: %q", line)
		}
	}
	designs := len(MatrixDesigns())
	if sawReplay != designs || sawFork != designs {
		t.Errorf("saw %d replay and %d fork lines, want %d each", sawReplay, sawFork, designs)
	}

	// The fallback is invisible in the results: bit-identical to a
	// sweep that replays every cell's warmup.
	buildImage = oldBuild
	ref, err := RunMatrixOpts(sc, MatrixOptions{Jobs: 2, ReplayWarmup: true})
	if err != nil {
		t.Fatalf("reference replay sweep: %v", err)
	}
	if len(m.Results) != len(ref.Results) {
		t.Fatalf("cell count: sabotaged %d, reference %d", len(m.Results), len(ref.Results))
	}
	for k, want := range ref.Results {
		got := m.Results[k]
		if got == nil {
			t.Fatalf("%s/%v: missing from sabotaged matrix", k.Workload, k.Design)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s/%v: fallback result differs from replay:\nfallback %+v\nreplay   %+v",
				k.Workload, k.Design, got, want)
		}
	}
}
