package experiments

import (
	"strings"
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/workload"
)

// TestScaleFaultWiring: Scale's fault knobs reach the cell configs (but
// never the no-cache reference, which has no controller to inject into),
// and the stock scales arm the watchdog.
func TestScaleFaultWiring(t *testing.T) {
	sc := tinyScale(t)
	sc.FaultRate = 1e-3
	sc.FaultSeed = 42
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(dramcache.TDRAM, wl)
	if cfg.Cache.Fault.Rate != 1e-3 || cfg.Cache.Fault.Seed != 42 {
		t.Errorf("fault config not wired: %+v", cfg.Cache.Fault)
	}
	if nc := sc.Config(dramcache.NoCache, wl); nc.Cache.Fault.Enabled() {
		t.Error("no-cache cell got a fault injector")
	}
	if Quick().Watchdog <= 0 || Full().Watchdog <= 0 {
		t.Error("stock scales leave the watchdog unarmed")
	}
	if cfg.Watchdog != sc.Watchdog {
		t.Errorf("watchdog not wired: %v != %v", cfg.Watchdog, sc.Watchdog)
	}
}

// TestResilience runs the fault-injection sweep at the tiny scale and
// checks it reports injection activity. Under the race detector the
// sweep is trimmed to stay inside the package's test budget.
func TestResilience(t *testing.T) {
	sc := tinyScale(t)
	if raceEnabled || testing.Short() {
		sc.Workloads = sc.studySubset(2)
		sc.RequestsPerCore = 600
		sc.WarmupPerCore = 100
	}
	rep, err := Resilience(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if rep.ID != "resilience" || !strings.Contains(s, "injected") {
		t.Fatalf("report malformed:\n%s", s)
	}
	if len(rep.Summary) == 0 || !strings.Contains(rep.Summary[0], "worst-case slowdown") {
		t.Errorf("summary missing: %v", rep.Summary)
	}
	// The highest-rate rows must actually inject: every data row carries
	// the injected count in column 4; at rate 1e-2 it cannot be zero.
	csv := rep.CSV()
	if csv == "" {
		t.Fatal("no CSV")
	}
	for _, line := range strings.Split(strings.TrimSpace(csv), "\n")[1:] {
		cols := strings.Split(line, ",")
		if len(cols) < 4 {
			t.Fatalf("short CSV row: %q", line)
		}
		if cols[1] == "0.01" && cols[3] == "0" {
			t.Errorf("rate-0.01 row injected nothing: %q", line)
		}
	}
}
