package experiments

import (
	"strings"
	"sync"
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/workload"
)

// The quick matrix takes a while to compute; share it across tests. It
// runs with an 8-wide worker pool: every figure test then doubles as a
// check of the parallel runner, and the determinism test in
// runner_test.go compares it cell-for-cell against a serial sweep.
var (
	matrixOnce sync.Once
	matrix     *Matrix
	matrixErr  error
)

func quickMatrix(t *testing.T) *Matrix {
	t.Helper()
	matrixOnce.Do(func() {
		matrix, matrixErr = RunMatrixOpts(Quick(), MatrixOptions{Jobs: 8})
	})
	if matrixErr != nil {
		t.Fatal(matrixErr)
	}
	return matrix
}

func TestMatrixComplete(t *testing.T) {
	m := quickMatrix(t)
	want := len(Quick().Workloads) * len(MatrixDesigns())
	if len(m.Results) != want {
		t.Fatalf("matrix cells = %d, want %d", len(m.Results), want)
	}
	for k, r := range m.Results {
		if r.Runtime <= 0 {
			t.Errorf("%v/%s: runtime %v", k.Design, k.Workload, r.Runtime)
		}
	}
}

func TestFig1Bands(t *testing.T) {
	m := quickMatrix(t)
	for _, wl := range m.Scale.Workloads {
		mr := m.Get(dramcache.CascadeLake, wl.Name).Cache.Outcomes.MissRatio()
		if wl.Band == workload.LowMiss && mr >= 0.30 {
			t.Errorf("%s: miss ratio %.2f outside low band", wl.Name, mr)
		}
		if wl.Band == workload.HighMiss && mr <= 0.50 {
			t.Errorf("%s: miss ratio %.2f outside high band", wl.Name, mr)
		}
	}
	rep := Fig1(m)
	if !strings.Contains(rep.String(), "band") {
		t.Error("fig1 report malformed")
	}
}

func TestFig9TagCheckOrdering(t *testing.T) {
	m := quickMatrix(t)
	// TDRAM must have the fastest tag check of the non-ideal designs on
	// every workload; geomean ratios must be materially above 1.
	for _, wl := range m.Scale.Workloads {
		td := m.Get(dramcache.TDRAM, wl.Name).Cache.TagCheck.Value()
		for _, d := range []dramcache.Design{dramcache.CascadeLake, dramcache.Alloy, dramcache.BEAR, dramcache.NDC} {
			v := m.Get(d, wl.Name).Cache.TagCheck.Value()
			if td > v {
				t.Errorf("%s: TDRAM tag check %.1fns above %v's %.1fns", wl.Name, td, d, v)
			}
		}
	}
	rep := Fig9(m)
	if len(rep.Summary) == 0 {
		t.Error("fig9 missing summary")
	}
}

func TestFig11SpeedupOrdering(t *testing.T) {
	m := quickMatrix(t)
	// Headline: TDRAM beats CL/Alloy/BEAR/NDC in geomean; Ideal is an
	// upper bound (within noise).
	geo := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			return float64(m.Get(d, wl).Runtime) / float64(m.Get(dramcache.TDRAM, wl).Runtime)
		})
	}
	for _, d := range []dramcache.Design{dramcache.CascadeLake, dramcache.Alloy, dramcache.BEAR, dramcache.NDC} {
		if g := geo(d); g <= 1.0 {
			t.Errorf("TDRAM geomean speedup vs %v = %.3f, want > 1", d, g)
		}
	}
	if g := geo(dramcache.Ideal); g > 1.01 {
		t.Errorf("Ideal slower than TDRAM by %.3fx", g)
	}
}

func TestFig12CrossoverShape(t *testing.T) {
	m := quickMatrix(t)
	// The paper's motivation: existing designs can slow systems down
	// (esp. high-miss workloads) while TDRAM provides a net speedup.
	geo := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			return float64(m.Get(dramcache.NoCache, wl).Runtime) / float64(m.Get(d, wl).Runtime)
		})
	}
	td, cl := geo(dramcache.TDRAM), geo(dramcache.CascadeLake)
	if td <= cl {
		t.Errorf("TDRAM vs-no-cache geomean %.3f not above CascadeLake %.3f", td, cl)
	}
	if td <= 1.0 {
		t.Errorf("TDRAM does not beat the no-cache system: %.3f", td)
	}
	// On low-miss workloads every cache design should win big.
	for _, wl := range m.Scale.Workloads {
		if wl.Band != workload.LowMiss {
			continue
		}
		sp := float64(m.Get(dramcache.NoCache, wl.Name).Runtime) /
			float64(m.Get(dramcache.TDRAM, wl.Name).Runtime)
		if sp < 1.0 {
			t.Errorf("%s (low miss): TDRAM speedup vs no-cache %.2f < 1", wl.Name, sp)
		}
	}
}

func TestTab4BloatShape(t *testing.T) {
	m := quickMatrix(t)
	band := func(d dramcache.Design, b workload.Band) float64 {
		var sum float64
		n := 0
		for _, wl := range m.Scale.Workloads {
			if wl.Band != b {
				continue
			}
			sum += m.Get(d, wl.Name).Cache.BloatFactor()
			n++
		}
		return sum / float64(n)
	}
	for _, d := range compared {
		lo, hi := band(d, workload.LowMiss), band(d, workload.HighMiss)
		if hi <= lo {
			t.Errorf("%v: high-band bloat %.2f not above low-band %.2f", d, hi, lo)
		}
	}
	// Ordering within the high band.
	hi := func(d dramcache.Design) float64 { return band(d, workload.HighMiss) }
	if !(hi(dramcache.Alloy) > hi(dramcache.CascadeLake)) {
		t.Error("Alloy bloat not above CascadeLake")
	}
	if !(hi(dramcache.CascadeLake) > hi(dramcache.TDRAM)) {
		t.Error("CascadeLake bloat not above TDRAM")
	}
	if d := hi(dramcache.NDC) - hi(dramcache.TDRAM); d < -0.3 || d > 0.3 {
		t.Errorf("NDC bloat %.2f far from TDRAM %.2f", hi(dramcache.NDC), hi(dramcache.TDRAM))
	}
}

func TestFig13EnergyShape(t *testing.T) {
	m := quickMatrix(t)
	rel := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			return m.Get(d, wl).Energy.Cache.Total() / m.Get(dramcache.CascadeLake, wl).Energy.Cache.Total()
		})
	}
	td, al, nd := rel(dramcache.TDRAM), rel(dramcache.Alloy), rel(dramcache.NDC)
	if td >= 1.0 {
		t.Errorf("TDRAM relative energy %.2f not below Cascade Lake", td)
	}
	if al <= 1.0 {
		t.Errorf("Alloy relative energy %.2f not above Cascade Lake", al)
	}
	if diff := nd - td; diff < -0.1 || diff > 0.1 {
		t.Errorf("NDC energy %.2f not comparable to TDRAM %.2f", nd, td)
	}
}

func TestAllReportsRender(t *testing.T) {
	m := quickMatrix(t)
	reports := AllFromMatrix(m)
	if len(reports) != 9 {
		t.Fatalf("report count = %d, want 9", len(reports))
	}
	seen := map[string]bool{}
	for _, r := range reports {
		s := r.String()
		if len(s) < 50 || !strings.Contains(s, r.ID) {
			t.Errorf("%s: report too thin:\n%s", r.ID, s)
		}
		if seen[r.ID] {
			t.Errorf("duplicate report id %s", r.ID)
		}
		seen[r.ID] = true
	}
}
