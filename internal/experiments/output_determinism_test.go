package experiments

import (
	"strings"
	"testing"

	"tdram/internal/system"
)

// TestRenderedOutputByteIdentical is the regression test for the
// map-iteration findings tdlint's determinism analyzer polices: every
// rendered figure/table — both the aligned text form and the CSV the
// results_csv/ artifacts are built from — must be byte-identical across
// two independently built matrices. Cells are stubbed (a pure function
// of the cell key), so the only nondeterminism left to catch is the
// emission path itself: a `for k := range m.Results` feeding a table
// would fail this test roughly every run.
func TestRenderedOutputByteIdentical(t *testing.T) {
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		return fakeResult(cfg), nil
	})
	build := func() *Matrix {
		// Jobs > 1 so completion (and Results-map insertion) order
		// differs between the two builds.
		m, err := RunMatrixOpts(Quick(), MatrixOptions{Jobs: 4})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	render := func(m *Matrix) string {
		var b strings.Builder
		for _, r := range AllFromMatrix(m) {
			b.WriteString(r.String())
			b.WriteString(r.CSV())
		}
		return b.String()
	}
	first, second := render(build()), render(build())
	if first == second {
		return
	}
	fl, sl := strings.Split(first, "\n"), strings.Split(second, "\n")
	for i := range fl {
		if i >= len(sl) || fl[i] != sl[i] {
			t.Fatalf("rendered output differs between two identical runs, first at line %d:\nrun 1: %s\nrun 2: %s",
				i+1, fl[i], sl[min(i, len(sl)-1)])
		}
	}
	t.Fatal("rendered output differs between two identical runs (length mismatch)")
}
