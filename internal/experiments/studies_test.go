package experiments

import (
	"strings"
	"testing"

	"tdram/internal/workload"
)

// tinyScale keeps the standalone-study tests fast.
func tinyScale(t *testing.T) Scale {
	t.Helper()
	var wls []workload.Spec
	for _, n := range []string{"lu.C", "is.D", "bt.C", "pr.25"} {
		wl, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		wls = append(wls, wl)
	}
	return Scale{
		Name:            "tiny",
		CacheBytes:      8 << 20,
		RequestsPerCore: 1200,
		WarmupPerCore:   200,
		Workloads:       wls,
	}
}

func TestStudySubsetBalanced(t *testing.T) {
	sc := tinyScale(t)
	sub := sc.studySubset(2)
	if len(sub) != 2 {
		t.Fatalf("subset size = %d", len(sub))
	}
	if sub[0].Band == sub[1].Band {
		t.Error("subset of 2 not band-balanced")
	}
	all := sc.studySubset(100)
	if len(all) != len(sc.Workloads) {
		t.Errorf("oversized subset = %d", len(all))
	}
}

func TestSecVD(t *testing.T) {
	rep, err := SecVD(tinyScale(t))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "map-i") {
		t.Errorf("report:\n%s", s)
	}
	if len(rep.Summary) == 0 {
		t.Error("no summary")
	}
}

func TestSecVE(t *testing.T) {
	rep, err := SecVE(tinyScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "16") {
		t.Error("size sweep missing 16-entry row")
	}
}

func TestSecVF(t *testing.T) {
	rep, err := SecVF(tinyScale(t))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, w := range []string{" 1 ", " 16 "} {
		if !strings.Contains(s, w) {
			t.Errorf("ways sweep missing %q:\n%s", w, s)
		}
	}
}

func TestAblations(t *testing.T) {
	sc := tinyScale(t)
	for _, f := range []func(Scale) (*Report, error){
		AblationProbing, AblationProbePolicy, AblationFlushBuffer, AblationCondColumn,
	} {
		rep, err := f(sc)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.String()) < 60 {
			t.Errorf("%s: report too thin", rep.ID)
		}
	}
}

func TestAblationProbingHelps(t *testing.T) {
	// On a high-miss-only subset, probing must improve tag-check latency.
	sc := tinyScale(t)
	var high []workload.Spec
	for _, wl := range sc.Workloads {
		if wl.Band == workload.HighMiss {
			high = append(high, wl)
		}
	}
	sc.Workloads = high
	rep, err := AblationProbing(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Summary[0], "probing improves") {
		t.Fatalf("summary: %v", rep.Summary)
	}
	// Extract the geomean: must be > 1.0 (the string has "%.2fx").
	if strings.Contains(rep.Summary[0], "geomean 0.") {
		t.Errorf("probing did not help: %s", rep.Summary[0])
	}
}
