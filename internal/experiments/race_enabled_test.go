//go:build race

package experiments

// raceEnabled reports whether the race detector instruments this build;
// the determinism test trims its matrix under race so the package fits
// the go test timeout (instrumented simulations run ~10x slower).
const raceEnabled = true
