package experiments

import (
	"fmt"

	"tdram/internal/dramcache"
	"tdram/internal/mem"
	"tdram/internal/sim"
	"tdram/internal/stats"
	"tdram/internal/system"
)

// Latency runs every design with journey attribution enabled and reports
// where each request class spends its time: a per-(design, class)
// percentile table (p50/p90/p99/p99.9 from the log-bucketed histograms),
// a stacked phase-breakdown artifact (mean ns per journey phase), and a
// CDF artifact (one row per occupied histogram bucket). The sweep runs
// serially over a band-balanced workload subset and merges the per-class
// aggregates across workloads, so the output is deterministic regardless
// of the -jobs setting.
func Latency(sc Scale) (*Report, error) {
	subset := sc.studySubset(3)
	designs := MatrixDesigns()

	// Merged per-(design, class) aggregates across the workload subset.
	type agg struct {
		hist   *stats.LogHist
		phases [mem.NumPhases]float64 // summed ns
		count  uint64
	}
	merged := make(map[dramcache.Design]*[mem.NumJourneyClasses]agg)
	var traceDropped, samplesDropped uint64
	for _, d := range designs {
		classes := &[mem.NumJourneyClasses]agg{}
		for i := range classes {
			classes[i].hist = stats.NewLogHist()
		}
		merged[d] = classes
		for _, wl := range subset {
			cfg := sc.Config(d, wl)
			cfg.Obs.Journeys = true
			sys, err := system.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := sys.Run(); err != nil {
				return nil, err
			}
			o := sys.Observer()
			for c := 0; c < mem.NumJourneyClasses; c++ {
				jc := mem.JourneyClass(c)
				classes[c].count += o.JourneyClassCount(jc)
				classes[c].hist.Merge(o.JourneyClassHist(jc))
				for p := 0; p < mem.NumPhases; p++ {
					classes[c].phases[p] += o.JourneyPhaseSum(jc, mem.Phase(p)).Nanoseconds()
				}
			}
			_, td := o.TraceEvents()
			traceDropped += td
			samplesDropped += o.SamplesDropped()
		}
	}

	pct := stats.NewTable("design", "class", "count", "mean-ns",
		"p50-ns", "p90-ns", "p99-ns", "p99.9-ns")
	phaseCols := []string{"design", "class"}
	for p := 0; p < mem.NumPhases; p++ {
		phaseCols = append(phaseCols, mem.Phase(p).String()+"-ns")
	}
	breakdown := stats.NewTable(phaseCols...)
	cdf := stats.NewTable("design", "class", "latency-ns", "cum-frac")
	for _, d := range designs {
		classes := merged[d]
		for c := 0; c < mem.NumJourneyClasses; c++ {
			a := &classes[c]
			if a.count == 0 {
				continue
			}
			name := mem.JourneyClass(c).String()
			h := a.hist
			pct.AddRow(d.String(), name, a.count, h.MeanNS(),
				h.PercentileNS(0.50), h.PercentileNS(0.90),
				h.PercentileNS(0.99), h.PercentileNS(0.999))
			row := []any{d.String(), name}
			for p := 0; p < mem.NumPhases; p++ {
				row = append(row, a.phases[p]/float64(a.count))
			}
			breakdown.AddRow(row...)
			var cum uint64
			h.Each(func(_, hi sim.Tick, count uint64) {
				cum += count
				cdf.AddRow(d.String(), name, hi.Nanoseconds(),
					float64(cum)/float64(h.N()))
			})
		}
	}

	summary := []string{
		fmt.Sprintf("%d designs x %d workloads, %d request classes attributed over %d phases",
			len(designs), len(subset), mem.NumJourneyClasses, mem.NumPhases),
	}
	if tdr := merged[dramcache.TDRAM]; tdr != nil && tdr[mem.ClassReadHit].count > 0 {
		summary = append(summary, fmt.Sprintf("TDRAM read-hit p50 %.0f ns, p99 %.0f ns over %d hits",
			tdr[mem.ClassReadHit].hist.PercentileNS(0.50),
			tdr[mem.ClassReadHit].hist.PercentileNS(0.99),
			tdr[mem.ClassReadHit].count))
	}
	if traceDropped > 0 || samplesDropped > 0 {
		summary = append(summary, fmt.Sprintf(
			"WARNING: observability data dropped (trace events %d, metric samples %d) — percentiles unaffected, traces/series incomplete",
			traceDropped, samplesDropped))
	}
	return &Report{
		ID:    "latency",
		Title: "per-request latency attribution: class percentiles, phase breakdown, CDFs",
		Table: pct,
		Artifacts: []Artifact{
			{Name: "breakdown", Title: "mean ns per journey phase (stacked breakdown)", Table: breakdown},
			{Name: "cdf", Title: "latency CDF (per occupied histogram bucket)", Table: cdf, CSVOnly: true},
		},
		Summary:    summary,
		PaperClaim: "TDRAM's single-access hit path yields the lowest loaded hit latency of the tag-check schemes (Fig. 9, §V-B)",
	}, nil
}
