package experiments

import (
	"fmt"

	"tdram/internal/dramcache"
	"tdram/internal/stats"
	"tdram/internal/system"
	"tdram/internal/workload"
)

// studySubset picks a small band-balanced workload set for the
// single-design studies.
func (sc Scale) studySubset(n int) []workload.Spec {
	if n >= len(sc.Workloads) {
		return sc.Workloads
	}
	// Alternate bands for balance.
	var low, high []workload.Spec
	for _, wl := range sc.Workloads {
		if wl.Band == workload.LowMiss {
			low = append(low, wl)
		} else {
			high = append(high, wl)
		}
	}
	var out []workload.Spec
	for i := 0; len(out) < n; i++ {
		if i < len(low) {
			out = append(out, low[i])
		}
		if len(out) < n && i < len(high) {
			out = append(out, high[i])
		}
		if i >= len(low) && i >= len(high) {
			break
		}
	}
	return out
}

// SecVD reproduces the §V-D predictor study: a MAP-I predictor on the
// tags-with-data designs gains only a few percent.
func SecVD(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "cl", "cl+map-i", "speedup", "alloy", "alloy+map-i", "speedup", "map-i-acc")
	var clGains, alGains []float64
	for _, wl := range subset {
		row := []any{wl.Name}
		var acc float64
		for _, d := range []dramcache.Design{dramcache.CascadeLake, dramcache.Alloy} {
			base, err := system.Run(sc.Config(d, wl))
			if err != nil {
				return nil, err
			}
			cfg := sc.Config(d, wl)
			cfg.Cache.UsePredictor = true
			pred, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			gain := float64(base.Runtime) / float64(pred.Runtime)
			row = append(row, base.Runtime.Nanoseconds(), pred.Runtime.Nanoseconds(), gain)
			if d == dramcache.CascadeLake {
				clGains = append(clGains, gain)
			} else {
				alGains = append(alGains, gain)
			}
			acc = pred.Cache.PredictorAccuracy
		}
		row = append(row, acc)
		t.AddRow(row...)
	}
	return &Report{
		ID:    "secVD",
		Title: "MAP-I predictor impact (runtime ns without/with, and speedup)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("geomean predictor speedup: cascade-lake %.3fx, alloy %.3fx",
				stats.GeoMean(clGains), stats.GeoMean(alGains)),
		},
		PaperClaim: "predictors have a minor impact: 1.03-1.04x overall",
	}, nil
}

// Prefetcher reproduces the second half of §V-D: a stride prefetcher at
// the DRAM cache gains little — prefetch fills interfere with demands
// and consume bandwidth.
func Prefetcher(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "design", "speedup", "issued", "useful", "accuracy", "bloat-delta")
	var gains []float64
	for _, wl := range subset {
		for _, d := range []dramcache.Design{dramcache.CascadeLake, dramcache.TDRAM} {
			base, err := system.Run(sc.Config(d, wl))
			if err != nil {
				return nil, err
			}
			cfg := sc.Config(d, wl)
			cfg.Cache.UsePrefetcher = true
			cfg.Cache.PrefetchDegree = 2
			pf, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			gain := float64(base.Runtime) / float64(pf.Runtime)
			gains = append(gains, gain)
			acc := 0.0
			if pf.Cache.PrefetchesIssued > 0 {
				acc = float64(pf.Cache.PrefetchesUseful) / float64(pf.Cache.PrefetchesIssued)
			}
			t.AddRow(wl.Name, d.String(), gain, pf.Cache.PrefetchesIssued,
				pf.Cache.PrefetchesUseful, acc, pf.Cache.BloatFactor()-base.Cache.BloatFactor())
		}
	}
	return &Report{
		ID:    "prefetcher",
		Title: "Stride prefetcher at the DRAM cache (speedup vs no prefetcher)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("geomean prefetcher speedup: %.3fx (bandwidth bloat rises with every issued prefetch)",
				stats.GeoMean(gains)),
		},
		PaperClaim: "prefetchers show incremental gains: interference with demands, extra bandwidth, tail latency",
	}, nil
}

// SecVE reproduces the §V-E flush-buffer sensitivity sweep.
func SecVE(sc Scale) (*Report, error) {
	// Write-heavy high-miss workloads exercise write-miss-dirty.
	subset := sc.studySubset(8)
	sizes := []int{8, 16, 32, 64}
	t := stats.NewTable("workload", "size", "avg-occupancy", "max-occupancy", "stalls",
		"drain-refresh", "drain-idle-slot", "drain-explicit")
	worstMax := 0
	stallsAt16 := uint64(0)
	for _, wl := range subset {
		for _, size := range sizes {
			cfg := sc.Config(dramcache.TDRAM, wl)
			cfg.Cache.FlushEntries = size
			res, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			st := res.Cache
			t.AddRow(wl.Name, size, st.FlushOccupancy.Value(), st.FlushMax, st.FlushStalls,
				st.FlushDrainRefresh, st.FlushDrainIdleSlot, st.FlushDrainExplicit)
			if size == 16 {
				if st.FlushMax > worstMax {
					worstMax = st.FlushMax
				}
				stallsAt16 += st.FlushStalls
			}
		}
	}
	return &Report{
		ID:    "secVE",
		Title: "Flush buffer size sensitivity (TDRAM)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("at 16 entries: max occupancy %d, total forced stalls %d", worstMax, stallsAt16),
		},
		PaperClaim: "16 entries avoid stalls; average occupancy ~5, maximum ~12; miss-clean slots and refresh windows do the draining",
	}, nil
}

// SecVF reproduces the §V-F set-associativity study.
func SecVF(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	ways := []int{1, 2, 4, 8, 16}
	t := stats.NewTable("workload", "ways", "speedup-vs-no-cache", "miss-ratio")
	var spread []float64
	for _, wl := range subset {
		base, err := system.Run(sc.Config(dramcache.NoCache, wl))
		if err != nil {
			return nil, err
		}
		var speedups []float64
		for _, w := range ways {
			cfg := sc.Config(dramcache.TDRAM, wl)
			cfg.Cache.Ways = w
			res, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			sp := float64(base.Runtime) / float64(res.Runtime)
			speedups = append(speedups, sp)
			t.AddRow(wl.Name, w, sp, res.Cache.Outcomes.MissRatio())
		}
		min, max := speedups[0], speedups[0]
		for _, s := range speedups {
			if s < min {
				min = s
			}
			if s > max {
				max = s
			}
		}
		spread = append(spread, max/min)
	}
	return &Report{
		ID:    "secVF",
		Title: "Direct-mapped vs set-associative TDRAM (speedup over main-memory-only)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("worst-case speedup spread across 1..16 ways: %.3fx (1.0 = identical)",
				maxOf(spread)),
		},
		PaperClaim: "direct-mapped and 2/4/8/16-way caches show similar speedups; HPC workloads have negligible conflict misses",
	}, nil
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// AblationProbing quantifies early tag probing: TDRAM without probing
// should behave like NDC (§V-A).
func AblationProbing(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "tagcheck-probe", "tagcheck-noprobe", "tagcheck-ndc",
		"runtime-probe", "runtime-noprobe")
	var gains []float64
	for _, wl := range subset {
		on, err := system.Run(sc.Config(dramcache.TDRAM, wl))
		if err != nil {
			return nil, err
		}
		cfg := sc.Config(dramcache.TDRAM, wl)
		cfg.Cache.ProbeEnabled = false
		off, err := system.Run(cfg)
		if err != nil {
			return nil, err
		}
		ndc, err := system.Run(sc.Config(dramcache.NDC, wl))
		if err != nil {
			return nil, err
		}
		t.AddRow(wl.Name, on.Cache.TagCheck.Value(), off.Cache.TagCheck.Value(),
			ndc.Cache.TagCheck.Value(), on.Runtime.Nanoseconds(), off.Runtime.Nanoseconds())
		if on.Cache.TagCheck.Value() > 0 {
			gains = append(gains, off.Cache.TagCheck.Value()/on.Cache.TagCheck.Value())
		}
	}
	return &Report{
		ID:    "abl-probing",
		Title: "Ablation: early tag probing on/off",
		Table: t,
		Summary: []string{
			fmt.Sprintf("probing improves tag-check latency by geomean %.2fx; TDRAM-without-probing tracks NDC",
				stats.GeoMean(gains)),
		},
		PaperClaim: "TDRAM without early tag probing performs similarly to NDC; probing improves tag checks up to 70% on large high-miss workloads",
	}, nil
}

// AblationProbePolicy compares the paper's youngest-first probe selection
// with oldest-first (§III-E2).
func AblationProbePolicy(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "queueing-youngest", "queueing-oldest", "runtime-youngest", "runtime-oldest")
	for _, wl := range subset {
		young, err := system.Run(sc.Config(dramcache.TDRAM, wl))
		if err != nil {
			return nil, err
		}
		cfg := sc.Config(dramcache.TDRAM, wl)
		cfg.Cache.ProbeOldest = true
		old, err := system.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(wl.Name, young.Cache.ReadQueueing.Value(), old.Cache.ReadQueueing.Value(),
			young.Runtime.Nanoseconds(), old.Runtime.Nanoseconds())
	}
	return &Report{
		ID:         "abl-probe-policy",
		Title:      "Ablation: probe selection policy (youngest vs oldest)",
		Table:      t,
		PaperClaim: "the controller picks the youngest request to minimize average queueing delay",
	}, nil
}

// AblationFlushBuffer shrinks the flush buffer to one entry, forcing
// explicit drains (with their DQ turnarounds) on nearly every
// write-miss-dirty — approximating a TDRAM without the buffer.
func AblationFlushBuffer(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "runtime-16", "runtime-1", "slowdown", "stalls-1")
	for _, wl := range subset {
		full, err := system.Run(sc.Config(dramcache.TDRAM, wl))
		if err != nil {
			return nil, err
		}
		cfg := sc.Config(dramcache.TDRAM, wl)
		cfg.Cache.FlushEntries = 1
		tiny, err := system.Run(cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(wl.Name, full.Runtime.Nanoseconds(), tiny.Runtime.Nanoseconds(),
			float64(tiny.Runtime)/float64(full.Runtime), tiny.Cache.FlushStalls)
	}
	return &Report{
		ID:         "abl-flush",
		Title:      "Ablation: flush buffer 16 entries vs 1 entry (forced explicit drains)",
		Table:      t,
		PaperClaim: "the flush buffer eliminates data-bus turnarounds on write-miss-dirty; a modest 16 entries suffices",
	}, nil
}

// AblationPagePolicy compares the paper's close-page policy against an
// open-page row-buffer policy for the tags-with-data designs. Scan-heavy
// workloads have row locality an open-page Cascade Lake can harvest;
// TDRAM's lockstep commands are defined with auto-precharge, so it runs
// close-page by construction.
func AblationPagePolicy(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "design", "runtime-close", "runtime-open", "open-speedup", "row-hit-frac")
	for _, wl := range subset {
		for _, d := range []dramcache.Design{dramcache.CascadeLake, dramcache.Alloy} {
			closed, err := system.Run(sc.Config(d, wl))
			if err != nil {
				return nil, err
			}
			cfg := sc.Config(d, wl)
			cfg.Cache.OpenPage = true
			open, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			hitFrac := 0.0
			if acts := open.CacheRowHits + open.CacheActivates; acts > 0 {
				hitFrac = float64(open.CacheRowHits) / float64(acts)
			}
			t.AddRow(wl.Name, d.String(), closed.Runtime.Nanoseconds(), open.Runtime.Nanoseconds(),
				float64(closed.Runtime)/float64(open.Runtime), hitFrac)
		}
	}
	return &Report{
		ID:         "abl-pagepolicy",
		Title:      "Ablation: close-page (paper) vs open-page row policy for tags-with-data designs",
		Table:      t,
		PaperClaim: "the paper's devices run close-page with auto-precharge; open-page is the classic alternative row policy",
	}, nil
}

// AblationCondColumn quantifies the conditional column operation's
// energy effect by comparing TDRAM against NDC (which always performs the
// column op) on miss-heavy workloads.
func AblationCondColumn(sc Scale) (*Report, error) {
	subset := sc.studySubset(6)
	t := stats.NewTable("workload", "tdram-colJ", "ndc-colJ", "ndc-extra", "tdram-totalJ", "ndc-totalJ")
	for _, wl := range subset {
		td, err := system.Run(sc.Config(dramcache.TDRAM, wl))
		if err != nil {
			return nil, err
		}
		nd, err := system.Run(sc.Config(dramcache.NDC, wl))
		if err != nil {
			return nil, err
		}
		extra := 0.0
		if td.Energy.Cache.Col > 0 {
			extra = nd.Energy.Cache.Col/td.Energy.Cache.Col - 1
		}
		t.AddRow(wl.Name, td.Energy.Cache.Col, nd.Energy.Cache.Col, extra,
			td.Energy.Cache.Total(), nd.Energy.Cache.Total())
	}
	return &Report{
		ID:         "abl-condcol",
		Title:      "Ablation: conditional column operation (TDRAM skips, NDC always performs)",
		Table:      t,
		PaperClaim: "NDC's extra column operations on miss-cleans add slightly to energy; data transfer dominates",
	}, nil
}
