package experiments

import (
	"strings"
	"testing"
)

func TestPrefetcherStudy(t *testing.T) {
	rep, err := Prefetcher(tinyScale(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.String(), "prefetcher") {
		t.Error("malformed report")
	}
}
