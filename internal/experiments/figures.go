package experiments

import (
	"fmt"

	"tdram/internal/dramcache"
	"tdram/internal/mem"
	"tdram/internal/stats"
)

// compared lists the designs the headline figures sweep, in paper order.
var compared = []dramcache.Design{
	dramcache.CascadeLake, dramcache.Alloy, dramcache.BEAR,
	dramcache.NDC, dramcache.TDRAM,
}

// Fig1 reproduces the DRAM-cache access breakdown: per-workload hit/miss
// composition and the low/high miss-ratio banding.
func Fig1(m *Matrix) *Report {
	t := stats.NewTable("workload", "rd-hit", "rd-miss-cln", "rd-miss-dty",
		"wr-hit", "wr-miss-cln", "wr-miss-dty", "miss-ratio", "band", "band-ok")
	bandsOK := true
	for _, wl := range m.CompleteWorkloads() {
		r := m.Get(dramcache.CascadeLake, wl.Name)
		fr := r.Cache.Outcomes.Fractions()
		mr := r.Cache.Outcomes.MissRatio()
		ok := (wl.Band.String() == "low" && mr < 0.30) || (wl.Band.String() == "high" && mr > 0.50)
		if !ok {
			bandsOK = false
		}
		t.AddRow(wl.Name, fr[mem.ReadHit], fr[mem.ReadMissClean], fr[mem.ReadMissDirty],
			fr[mem.WriteHit], fr[mem.WriteMissClean], fr[mem.WriteMissDirty], mr,
			wl.Band.String(), ok)
	}
	return m.report(&Report{
		ID:    "fig1",
		Title: "DRAM cache hit/miss breakdown per workload",
		Table: t,
		Summary: []string{
			fmt.Sprintf("all workloads in their Fig.1 band: %v", bandsOK),
		},
		PaperClaim: "workloads split into a <30% and a >50% miss-ratio group, nothing in between",
	})
}

// Fig2 reproduces the read queueing delay of the tags-with-data designs
// against the main-memory-only system.
func Fig2(m *Matrix) *Report {
	t := stats.NewTable("workload", "no-cache(ddr5)", "cascade-lake", "alloy", "bear")
	designs := []dramcache.Design{dramcache.CascadeLake, dramcache.Alloy, dramcache.BEAR}
	higher := 0
	for _, wl := range m.CompleteWorkloads() {
		base := m.Get(dramcache.NoCache, wl.Name).MM.ReadQueueing.Value()
		row := []any{wl.Name, base}
		for _, d := range designs {
			q := m.Get(d, wl.Name).Cache.ReadQueueing.Value()
			row = append(row, q)
			if q > base {
				higher++
			}
		}
		t.AddRow(row...)
	}
	frac := 0.0
	if n := len(m.CompleteWorkloads()) * len(designs); n > 0 {
		frac = float64(higher) / float64(n)
	}
	return m.report(&Report{
		ID:    "fig2",
		Title: "Average queueing delay of DRAM reads (ns), cache designs vs main-memory-only",
		Table: t,
		Summary: []string{
			fmt.Sprintf("cache-design queueing above no-cache baseline in %.0f%% of cells", frac*100),
			"note: with closed-loop cores the no-cache DDR5 saturates on memory-bound phases",
			"(the same pressure that yields Fig.12's caching speedups), which can invert",
			"this comparison on high-miss workloads; see EXPERIMENTS.md",
		},
		PaperClaim: "bars are higher in the DRAM cache systems than in the system without a DRAM cache",
	})
}

// Fig3 reproduces the useful/unuseful bandwidth decomposition of the
// tags-with-data designs.
func Fig3(m *Matrix) *Report {
	t := stats.NewTable("workload", "cl-unuseful", "alloy-unuseful", "bear-unuseful")
	var cl, al, be []float64
	for _, wl := range m.CompleteWorkloads() {
		c := m.Get(dramcache.CascadeLake, wl.Name).Cache.Traffic.UnusefulFraction()
		a := m.Get(dramcache.Alloy, wl.Name).Cache.Traffic.UnusefulFraction()
		b := m.Get(dramcache.BEAR, wl.Name).Cache.Traffic.UnusefulFraction()
		cl, al, be = append(cl, c), append(al, a), append(be, b)
		t.AddRow(wl.Name, c, a, b)
	}
	mean := func(vs []float64) float64 {
		if len(vs) == 0 {
			return 0
		}
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	return m.report(&Report{
		ID:    "fig3",
		Title: "Unuseful share of DRAM-cache bus traffic (discarded tag-read data + over-fetch)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("mean unuseful fraction: cascade-lake %.2f, alloy %.2f, bear %.2f",
				mean(cl), mean(al), mean(be)),
		},
		PaperClaim: "wasted movement significant in many workloads; Alloy/BEAR's 80B bursts increase it; BEAR removes the write-hit share",
	})
}

// Fig9 reproduces the tag-check latency comparison.
func Fig9(m *Matrix) *Report {
	t := stats.NewTable("workload", "cascade-lake", "alloy", "bear", "ndc", "tdram", "ideal")
	for _, wl := range m.CompleteWorkloads() {
		row := []any{wl.Name}
		for _, d := range append(compared, dramcache.Ideal) {
			row = append(row, m.Get(d, wl.Name).Cache.TagCheck.Value())
		}
		t.AddRow(row...)
	}
	ratio := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			td := m.Get(dramcache.TDRAM, wl).Cache.TagCheck.Value()
			if td == 0 {
				return 1
			}
			return m.Get(d, wl).Cache.TagCheck.Value() / td
		})
	}
	return m.report(&Report{
		ID:    "fig9",
		Title: "Tag check latency (ns), lower is better",
		Table: t,
		Summary: []string{
			fmt.Sprintf("TDRAM tag check faster by: %.2fx vs cascade-lake, %.2fx vs alloy, %.2fx vs bear, %.2fx vs ndc",
				ratio(dramcache.CascadeLake), ratio(dramcache.Alloy),
				ratio(dramcache.BEAR), ratio(dramcache.NDC)),
		},
		PaperClaim: "TDRAM's tag check is 2.6x/2.65x/2x/1.82x faster than Cascade Lake/Alloy/BEAR/NDC",
	})
}

// Fig10 reproduces the read-buffer queueing delay per design.
func Fig10(m *Matrix) *Report {
	t := stats.NewTable("workload", "cascade-lake", "alloy", "bear", "ndc", "tdram")
	wins := 0
	cells := 0
	for _, wl := range m.CompleteWorkloads() {
		row := []any{wl.Name}
		td := m.Get(dramcache.TDRAM, wl.Name).Cache.ReadQueueing.Value()
		for _, d := range compared {
			v := m.Get(d, wl.Name).Cache.ReadQueueing.Value()
			row = append(row, v)
			if d != dramcache.TDRAM {
				cells++
				if td <= v {
					wins++
				}
			}
		}
		t.AddRow(row...)
	}
	ratio := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			td := m.Get(dramcache.TDRAM, wl).Cache.ReadQueueing.Value()
			if td == 0 {
				return 1
			}
			return m.Get(d, wl).Cache.ReadQueueing.Value() / td
		})
	}
	return m.report(&Report{
		ID:    "fig10",
		Title: "Average queueing delay in the read buffer (ns), lower is better",
		Table: t,
		Summary: []string{
			fmt.Sprintf("TDRAM's queueing at or below the prior design in %d of %d cells", wins, cells),
			fmt.Sprintf("geomean queueing vs TDRAM: cascade-lake %.2fx, alloy %.2fx, bear %.2fx, ndc %.2fx",
				ratio(dramcache.CascadeLake), ratio(dramcache.Alloy),
				ratio(dramcache.BEAR), ratio(dramcache.NDC)),
		},
		PaperClaim: "TDRAM's queueing delay is shorter than all the prior designs",
	})
}

// Fig11 reproduces the speedup normalized to Cascade Lake.
func Fig11(m *Matrix) *Report {
	t := stats.NewTable("workload", "alloy", "bear", "ndc", "tdram", "ideal")
	designs := []dramcache.Design{dramcache.Alloy, dramcache.BEAR, dramcache.NDC, dramcache.TDRAM, dramcache.Ideal}
	for _, wl := range m.CompleteWorkloads() {
		base := float64(m.Get(dramcache.CascadeLake, wl.Name).Runtime)
		row := []any{wl.Name}
		for _, d := range designs {
			row = append(row, base/float64(m.Get(d, wl.Name).Runtime))
		}
		t.AddRow(row...)
	}
	speedup := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			return float64(m.Get(d, wl).Runtime) / float64(m.Get(dramcache.TDRAM, wl).Runtime)
		})
	}
	return m.report(&Report{
		ID:    "fig11",
		Title: "Speedup normalized to Cascade Lake, higher is better",
		Table: t,
		Summary: []string{
			fmt.Sprintf("TDRAM geomean speedup: %.2fx vs cascade-lake, %.2fx vs alloy, %.2fx vs bear, %.2fx vs ndc; ideal is %.2fx above TDRAM",
				speedup(dramcache.CascadeLake), speedup(dramcache.Alloy),
				speedup(dramcache.BEAR), speedup(dramcache.NDC),
				1/speedup(dramcache.Ideal)),
		},
		PaperClaim: "TDRAM: 1.20x vs Cascade Lake, 1.23x vs Alloy, 1.13x vs BEAR, 1.08x vs NDC; close to Ideal",
	})
}

// Fig12 reproduces the speedup normalized to the main-memory-only system.
func Fig12(m *Matrix) *Report {
	t := stats.NewTable("workload", "cascade-lake", "alloy", "bear", "ndc", "tdram")
	for _, wl := range m.CompleteWorkloads() {
		base := float64(m.Get(dramcache.NoCache, wl.Name).Runtime)
		row := []any{wl.Name}
		for _, d := range compared {
			row = append(row, base/float64(m.Get(d, wl.Name).Runtime))
		}
		t.AddRow(row...)
	}
	geo := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 {
			return float64(m.Get(dramcache.NoCache, wl).Runtime) / float64(m.Get(d, wl).Runtime)
		})
	}
	return m.report(&Report{
		ID:    "fig12",
		Title: "Speedup normalized to the system without a DRAM cache",
		Table: t,
		Summary: []string{
			fmt.Sprintf("geomean vs no-cache: cascade-lake %.2fx, alloy %.2fx, bear %.2fx, ndc %.2fx, tdram %.2fx",
				geo(dramcache.CascadeLake), geo(dramcache.Alloy), geo(dramcache.BEAR),
				geo(dramcache.NDC), geo(dramcache.TDRAM)),
		},
		PaperClaim: "Cascade Lake/Alloy/BEAR slow down 8%/10%/2%; NDC 1.03x; TDRAM 1.11x",
	})
}

// Tab4 reproduces the bandwidth-bloat factors by miss band.
func Tab4(m *Matrix) *Report {
	t := stats.NewTable("design", "low-miss", "high-miss")
	bloat := func(d dramcache.Design, band string) float64 {
		var vs []float64
		for _, wl := range m.CompleteWorkloads() {
			if wl.Band.String() != band {
				continue
			}
			vs = append(vs, m.Get(d, wl.Name).Cache.BloatFactor())
		}
		return stats.GeoMean(vs)
	}
	lows := map[dramcache.Design]float64{}
	highs := map[dramcache.Design]float64{}
	for _, d := range compared {
		lows[d] = bloat(d, "low")
		highs[d] = bloat(d, "high")
		t.AddRow(d.String(), lows[d], highs[d])
	}
	red := func(d dramcache.Design, vals map[dramcache.Design]float64) float64 {
		if vals[d] == 0 {
			return 0
		}
		return (vals[d] - vals[dramcache.TDRAM]) / vals[d] * 100
	}
	return m.report(&Report{
		ID:    "tab4",
		Title: "Bandwidth bloat factor (bytes moved per 64 demand bytes), geomean per band",
		Table: t,
		Summary: []string{
			fmt.Sprintf("TDRAM reduction (high band): %.1f%% vs cascade-lake, %.1f%% vs alloy, %.1f%% vs bear, %.1f%% vs ndc",
				red(dramcache.CascadeLake, highs), red(dramcache.Alloy, highs),
				red(dramcache.BEAR, highs), red(dramcache.NDC, highs)),
			fmt.Sprintf("TDRAM reduction (low band): %.1f%% vs cascade-lake, %.1f%% vs alloy, %.1f%% vs bear, %.1f%% vs ndc",
				red(dramcache.CascadeLake, lows), red(dramcache.Alloy, lows),
				red(dramcache.BEAR, lows), red(dramcache.NDC, lows)),
		},
		PaperClaim: "low band: CL 1.35, Alloy 1.68, BEAR 1.41, NDC/TDRAM 1.13; high band: 2.75/3.43/2.40/2.06; reductions 25.1%/39.9%/19.85%/0% (high)",
	})
}

// Fig13 reproduces the relative energy comparison. The paper's power
// model covers the DRAM cache device and its processor interface
// (power x runtime of the caches), so the metric here is the cache
// device's energy; the backing store's is identical across designs to
// first order.
func Fig13(m *Matrix) *Report {
	t := stats.NewTable("workload", "bear", "ndc", "tdram")
	rel := func(d dramcache.Design, wl string) float64 {
		base := m.Get(dramcache.CascadeLake, wl).Energy.Cache.Total()
		return m.Get(d, wl).Energy.Cache.Total() / base
	}
	for _, wl := range m.CompleteWorkloads() {
		t.AddRow(wl.Name, rel(dramcache.BEAR, wl.Name), rel(dramcache.NDC, wl.Name), rel(dramcache.TDRAM, wl.Name))
	}
	geo := func(d dramcache.Design) float64 {
		return m.geoOver(func(wl string) float64 { return rel(d, wl) })
	}
	tdVsBear := m.geoOver(func(wl string) float64 {
		return m.Get(dramcache.TDRAM, wl).Energy.Cache.Total() / m.Get(dramcache.BEAR, wl).Energy.Cache.Total()
	})
	tdSystem := m.geoOver(func(wl string) float64 {
		return m.Get(dramcache.TDRAM, wl).Energy.Total() / m.Get(dramcache.CascadeLake, wl).Energy.Total()
	})
	return m.report(&Report{
		ID:    "fig13",
		Title: "Relative memory-system energy, normalized to Cascade Lake (lower is better)",
		Table: t,
		Summary: []string{
			fmt.Sprintf("geomean energy vs cascade-lake: bear %.2f, ndc %.2f, tdram %.2f (savings %.0f%%)",
				geo(dramcache.BEAR), geo(dramcache.NDC), geo(dramcache.TDRAM),
				(1-geo(dramcache.TDRAM))*100),
			fmt.Sprintf("TDRAM saves %.0f%% vs BEAR; alloy relative energy %.2f (above cascade-lake)",
				(1-tdVsBear)*100, geo(dramcache.Alloy)),
			fmt.Sprintf("including the (design-invariant) DDR5 energy, TDRAM's system-wide saving is %.0f%%",
				(1-tdSystem)*100),
		},
		PaperClaim: "TDRAM saves 21% vs Cascade Lake and 12% vs BEAR; Alloy is much higher than Cascade Lake; NDC ~= TDRAM",
	})
}
