package experiments

import (
	"fmt"

	"tdram/internal/dramcache"
	"tdram/internal/fault"
	"tdram/internal/stats"
	"tdram/internal/system"
)

// Resilience sweeps the deterministic fault injector over TDRAM: each
// workload runs fault-free, then at increasing per-access fault rates,
// and the table reports the runtime cost of the ECC/retry machinery plus
// the injector's accounting (corrected vs detected, retries, exhausted
// budgets, retired sets, bypassed demands). The sweep doubles as an
// end-to-end check that degraded runs still complete: the watchdog is
// armed whenever the scale arms it.
func Resilience(sc Scale) (*Report, error) {
	subset := sc.studySubset(3)
	rates := []float64{1e-4, 1e-3, 1e-2}
	t := stats.NewTable("workload", "rate", "slowdown",
		"injected", "corrected", "detected", "retried", "exhausted", "sets-retired", "bypassed")
	var worst float64 = 1
	var retired uint64
	for _, wl := range subset {
		base, err := system.Run(sc.Config(dramcache.TDRAM, wl))
		if err != nil {
			return nil, err
		}
		for _, rate := range rates {
			cfg := sc.Config(dramcache.TDRAM, wl)
			cfg.Cache.Fault = fault.Config{Rate: rate, Seed: sc.FaultSeed + 1}
			res, err := system.Run(cfg)
			if err != nil {
				return nil, err
			}
			slow := float64(res.Runtime) / float64(base.Runtime)
			if slow > worst {
				worst = slow
			}
			f := res.Cache.Fault
			retired += f.SetsRetired
			t.AddRow(wl.Name, fmt.Sprintf("%g", rate), slow,
				f.Injected, f.Corrected, f.Detected, f.Retries, f.Exhausted, f.SetsRetired, f.Bypasses)
		}
	}
	return &Report{
		ID:    "resilience",
		Title: "fault-injection sweep: TDRAM under increasing per-access fault rates",
		Table: t,
		Summary: []string{
			fmt.Sprintf("worst-case slowdown %.3fx at rate %g; %d set(s) retired across the sweep",
				worst, rates[len(rates)-1], retired),
		},
		PaperClaim: "on-die SECDED + RS(6,4) tag ECC absorb transient faults with correction, not data loss (§III-C5)",
	}, nil
}
