package experiments

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tdram/internal/dramcache"
	"tdram/internal/sim"
	"tdram/internal/system"
)

// fakeRunCell installs a runCell stub for the duration of the test, so
// runner-machinery tests don't pay for real simulations. The warmup
// image builder is stubbed out alongside it (its images would only feed
// real system runs), so every stubbed cell takes the replay path and
// the stub sees all of them. The stub result is a pure function of the
// cell so any schedule yields the same matrix.
func fakeRunCell(t *testing.T, fn func(cfg system.Config) (*system.Result, error)) {
	t.Helper()
	oldRun, oldBuild := runCell, buildImage
	runCell = fn
	buildImage = func(system.Config) (*system.WarmupImage, error) {
		return nil, fmt.Errorf("warmup images disabled with runCell stubbed")
	}
	t.Cleanup(func() { runCell, buildImage = oldRun, oldBuild })
}

func fakeResult(cfg system.Config) *system.Result {
	return &system.Result{
		Design:   cfg.Cache.Design,
		Workload: cfg.Workload.Name,
		Runtime:  sim.Tick(1000 + 13*sim.Tick(len(cfg.Workload.Name))),
		Accesses: uint64(cfg.Cores * cfg.RequestsPerCore),
	}
}

// TestMatrixParallelDeterminism asserts the acceptance criterion: a
// jobs=8 sweep is bit-identical — per-cell Result statistics and every
// rendered report/CSV — to a jobs=1 sweep at the Quick scale. Under the
// race detector the comparison runs on a trimmed matrix (one workload
// per band, fewer requests) so the package fits the go test timeout;
// the full Quick-scale comparison still runs in every non-race pass.
func TestMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("serial quick matrix in -short mode")
	}
	var par, ser *Matrix
	var err error
	if raceEnabled {
		sc := Quick()
		sc.Workloads = sc.studySubset(2)
		sc.RequestsPerCore = 1000
		sc.WarmupPerCore = 200
		if par, err = RunMatrixOpts(sc, MatrixOptions{Jobs: 8}); err != nil {
			t.Fatal(err)
		}
		if ser, err = RunMatrixOpts(sc, MatrixOptions{Jobs: 1}); err != nil {
			t.Fatal(err)
		}
	} else {
		par = quickMatrix(t) // jobs=8 (see experiments_test.go)
		if ser, err = RunMatrixOpts(Quick(), MatrixOptions{Jobs: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if len(ser.Results) != len(par.Results) {
		t.Fatalf("cell count: serial %d, parallel %d", len(ser.Results), len(par.Results))
	}
	for k, sr := range ser.Results {
		pr := par.Results[k]
		if pr == nil {
			t.Fatalf("%s/%v: missing from parallel matrix", k.Workload, k.Design)
		}
		if !reflect.DeepEqual(sr, pr) {
			t.Errorf("%s/%v: serial and parallel results differ:\nserial   %+v\nparallel %+v",
				k.Workload, k.Design, sr, pr)
		}
	}
	serReps, parReps := AllFromMatrix(ser), AllFromMatrix(par)
	for i := range serReps {
		if s, p := serReps[i].String(), parReps[i].String(); s != p {
			t.Errorf("%s: rendered report differs between serial and parallel runs", serReps[i].ID)
		}
		if s, p := serReps[i].CSV(), parReps[i].CSV(); s != p {
			t.Errorf("%s: CSV differs between serial and parallel runs", serReps[i].ID)
		}
	}
}

// TestMatrixFaultIsolation injects a panicking cell and asserts the
// sweep completes every other cell, reports the failure as a CellError,
// and still renders reports over the surviving workloads.
func TestMatrixFaultIsolation(t *testing.T) {
	sc := Quick()
	bad := Key{dramcache.TDRAM, sc.Workloads[1].Name}
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		if cfg.Cache.Design == bad.Design && cfg.Workload.Name == bad.Workload {
			panic("injected cell failure")
		}
		return fakeResult(cfg), nil
	})

	m, err := RunMatrixOpts(sc, MatrixOptions{Jobs: 4})
	if err == nil {
		t.Fatal("no error from a sweep with a panicking cell")
	}
	var cerr *CellError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %T does not unwrap to *CellError: %v", err, err)
	}
	if cerr.Design != bad.Design || cerr.Workload != bad.Workload {
		t.Errorf("CellError names %s/%v, want %s/%v", cerr.Workload, cerr.Design, bad.Workload, bad.Design)
	}
	if !strings.Contains(cerr.Err.Error(), "injected cell failure") {
		t.Errorf("CellError lost the panic value: %v", cerr.Err)
	}

	want := len(sc.Workloads)*len(MatrixDesigns()) - 1
	if len(m.Results) != want {
		t.Errorf("completed cells = %d, want %d (all but the injected failure)", len(m.Results), want)
	}
	if m.Get(bad.Design, bad.Workload) != nil {
		t.Error("failed cell present in the matrix")
	}
	if missing := m.MissingCells(); len(missing) != 1 || missing[0] != bad {
		t.Errorf("MissingCells = %v, want [%v]", missing, bad)
	}
	complete := m.CompleteWorkloads()
	if len(complete) != len(sc.Workloads)-1 {
		t.Errorf("CompleteWorkloads = %d, want %d", len(complete), len(sc.Workloads)-1)
	}
	for _, wl := range complete {
		if wl.Name == bad.Workload {
			t.Errorf("%s complete despite its failed cell", wl.Name)
		}
	}
	// Reports must render from the partial matrix (no nil dereference)
	// and name the skipped workload.
	for _, rep := range AllFromMatrix(m) {
		s := rep.String()
		if !strings.Contains(s, "SKIPPED 1 workload") || !strings.Contains(s, bad.Workload) {
			t.Errorf("%s: partial-matrix report does not name the skipped workload:\n%s", rep.ID, s)
		}
	}
}

// TestMatrixAllCellsFail asserts a sweep where everything fails returns
// an empty-but-usable matrix and one CellError per cell.
func TestMatrixAllCellsFail(t *testing.T) {
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		return nil, fmt.Errorf("boom")
	})
	sc := Quick()
	m, err := RunMatrixOpts(sc, MatrixOptions{Jobs: 3})
	if err == nil {
		t.Fatal("no error from an all-failing sweep")
	}
	if len(m.Results) != 0 {
		t.Errorf("results = %d, want 0", len(m.Results))
	}
	cells := len(sc.Workloads) * len(MatrixDesigns())
	if missing := m.MissingCells(); len(missing) != cells {
		t.Errorf("MissingCells = %d, want %d", len(missing), cells)
	}
	if got := m.geoOver(func(string) float64 { t.Error("geoOver visited a workload"); return 1 }); got != 0 {
		t.Errorf("geoOver over empty matrix = %v, want 0", got)
	}
}

// TestMatrixCancelMidSweep cancels the sweep's context partway through
// and asserts the contract tdserve's deadlines (and tdbench's Ctrl-C)
// rely on: cells that started before the cancellation complete and land
// in the partial Matrix, every remaining cell fails immediately with a
// CellError wrapping ctx.Err(), and the joined error reports the
// cancellation via errors.Is.
func TestMatrixCancelMidSweep(t *testing.T) {
	sc := Quick()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const jobs = 2
	var mu sync.Mutex
	started := 0
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		mu.Lock()
		started++
		if started == 3 {
			cancel()
		}
		mu.Unlock()
		return fakeResult(cfg), nil
	})

	var cellErrs []error
	m, err := RunMatrixOpts(sc, MatrixOptions{
		Jobs:    jobs,
		Context: ctx,
		OnCell: func(k Key, res *system.Result, err error) {
			if err != nil {
				cellErrs = append(cellErrs, err)
			}
		},
	})
	if err == nil {
		t.Fatal("no error from a cancelled sweep")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("joined error does not report context.Canceled: %v", err)
	}
	total := len(sc.Workloads) * len(MatrixDesigns())
	// The cancelling cell and any cell already past the ctx check finish;
	// nothing else starts. With 2 workers at most one extra cell was in
	// flight alongside the cancelling one.
	if len(m.Results) < 3 || len(m.Results) > 3+jobs {
		t.Errorf("completed cells = %d, want 3..%d", len(m.Results), 3+jobs)
	}
	if len(m.Results) == total {
		t.Error("every cell completed despite the cancellation")
	}
	mu.Lock()
	ran := started
	mu.Unlock()
	if ran != len(m.Results) {
		t.Errorf("simulated %d cells but matrix holds %d", ran, len(m.Results))
	}
	// Every missing cell's failure is the cancellation, not a real error.
	if len(cellErrs) != total-len(m.Results) {
		t.Errorf("failed cells = %d, want %d", len(cellErrs), total-len(m.Results))
	}
	for _, e := range cellErrs {
		var cerr *CellError
		if !errors.As(e, &cerr) {
			t.Fatalf("cell failure %T does not unwrap to *CellError: %v", e, e)
		}
		if !errors.Is(cerr.Err, context.Canceled) {
			t.Errorf("cell %s/%v failed with %v, want context.Canceled", cerr.Workload, cerr.Design, cerr.Err)
		}
	}
	if got := len(m.MissingCells()); got != total-len(m.Results) {
		t.Errorf("missing cells = %d, want %d", got, total-len(m.Results))
	}
}

// TestMatrixFilterAndOnCell asserts Filter restricts the sweep to the
// selected cells (no simulation, no progress, no error for the rest) and
// OnCell delivers exactly the run cells in deterministic sweep order —
// the two hooks tdserve's checkpoint-restart is built on.
func TestMatrixFilterAndOnCell(t *testing.T) {
	sc := Quick()
	var mu sync.Mutex
	simulated := map[Key]int{}
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		mu.Lock()
		simulated[Key{cfg.Cache.Design, cfg.Workload.Name}]++
		mu.Unlock()
		return fakeResult(cfg), nil
	})

	keep := func(k Key) bool { return k.Design == dramcache.TDRAM || k.Workload == sc.Workloads[0].Name }
	var onCell []Key
	var progress []string
	m, err := RunMatrixOpts(sc, MatrixOptions{
		Jobs:     4,
		Filter:   keep,
		OnCell:   func(k Key, res *system.Result, err error) { onCell = append(onCell, k) },
		Progress: func(s string) { progress = append(progress, s) },
	})
	if err != nil {
		t.Fatal(err)
	}

	var want []Key
	for _, c := range sweepCells(sc) {
		if keep(Key{c.d, c.wl.Name}) {
			want = append(want, Key{c.d, c.wl.Name})
		}
	}
	if len(m.Results) != len(want) {
		t.Errorf("matrix cells = %d, want %d", len(m.Results), len(want))
	}
	if !reflect.DeepEqual(onCell, want) {
		t.Errorf("OnCell order:\n got %v\nwant %v", onCell, want)
	}
	if len(progress) != len(want) {
		t.Errorf("progress lines = %d, want %d", len(progress), len(want))
	}
	for k, n := range simulated {
		if !keep(k) {
			t.Errorf("filtered-out cell %s/%v was simulated", k.Workload, k.Design)
		}
		if n != 1 {
			t.Errorf("cell %s/%v simulated %d times", k.Workload, k.Design, n)
		}
	}
	if len(simulated) != len(want) {
		t.Errorf("simulated %d cells, want %d", len(simulated), len(want))
	}
}

// TestMatrixProgressOrdering asserts the progress stream is serialized
// and deterministic: a wide pool with scrambled completion times must
// emit exactly the serial sweep's lines, in the serial sweep's order.
func TestMatrixProgressOrdering(t *testing.T) {
	sc := Quick()
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		// Scramble completion order so in-order draining is actually
		// exercised rather than happening by accident.
		time.Sleep(time.Duration((int(cfg.Cache.Design)*7+len(cfg.Workload.Name))%5) * time.Millisecond)
		return fakeResult(cfg), nil
	})

	collect := func(jobs int) []string {
		var lines []string
		if _, err := RunMatrixOpts(sc, MatrixOptions{
			Jobs:     jobs,
			Progress: func(s string) { lines = append(lines, s) },
		}); err != nil {
			t.Fatal(err)
		}
		return lines
	}
	serial := collect(1)
	parallel := collect(8)
	if len(serial) != len(sc.Workloads)*len(MatrixDesigns()) {
		t.Fatalf("serial progress lines = %d", len(serial))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("progress streams differ:\nserial:   %q\nparallel: %q", serial, parallel)
	}
	// Lines are in workload-major sweep order.
	i := 0
	for _, wl := range sc.Workloads {
		for _, d := range MatrixDesigns() {
			if !strings.HasPrefix(serial[i], fmt.Sprintf("%-8s %-12s", wl.Name, d.String())) {
				t.Fatalf("line %d = %q, want %s/%v", i, serial[i], wl.Name, d)
			}
			i++
		}
	}
}
