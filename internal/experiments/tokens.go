package experiments

import (
	"context"
	"runtime"
	"sync"
)

// CPUBudget is a shared pool of CPU tokens that arbitrates matrix
// parallelism across concurrently running sweeps. One token is the
// right to simulate one matrix cell right now; the pool holds ~one
// token per host CPU, so however many sweeps are in flight, the number
// of cells simulating concurrently never oversubscribes the machine.
//
// The split between sweeps is a weighted fair share recomputed as
// leases come and go: a lease may hold up to max(1, total/leases)
// tokens. A lone sweep therefore gets the whole budget (full fan-out);
// when more sweeps join, each sweep's cap shrinks and its surplus
// tokens drain back at cell boundaries — degradation is gradual and
// cell-granular, never a mid-cell preemption — so a deep queue turns
// into many sweeps each making progress instead of one sweep hogging
// every core. The floor of one token per lease guarantees progress for
// every sweep regardless of how contended the pool is.
//
// CPUBudget is safe for concurrent use; its invariant — tokens in use
// never exceed the total — holds at every instant and is pinned by
// TestTokenBudgetConservation.
type CPUBudget struct {
	mu     sync.Mutex
	cond   *sync.Cond
	total  int
	inUse  int
	leases int
}

// NewCPUBudget builds a pool of total tokens; total <= 0 selects
// runtime.GOMAXPROCS(0).
func NewCPUBudget(total int) *CPUBudget {
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	b := &CPUBudget{total: total}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Total reports the pool size.
func (b *CPUBudget) Total() int { return b.total }

// InUse reports how many tokens are currently held (a gauge; the value
// is immediately stale but never exceeds Total).
func (b *CPUBudget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inUse
}

// Leases reports how many sweeps currently share the pool.
func (b *CPUBudget) Leases() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.leases
}

// Lease registers one sweep's claim on the pool. Close it when the
// sweep ends so its share returns to the others.
func (b *CPUBudget) Lease() *CPULease {
	b.mu.Lock()
	b.leases++
	// A new lease shrinks everyone's share; holders past the new cap
	// drain naturally at their next Release.
	b.mu.Unlock()
	return &CPULease{b: b}
}

// shareLocked is the per-lease token cap under the current lease count.
func (b *CPUBudget) shareLocked() int {
	s := b.total / b.leases
	if s < 1 {
		s = 1
	}
	return s
}

// CPULease is one sweep's handle on a CPUBudget. The sweep's workers
// call Acquire before simulating a cell and Release after; held tokens
// count against both the global total and the lease's fair share.
// held is guarded by the budget's mutex.
type CPULease struct {
	b    *CPUBudget
	held int
}

// Acquire blocks until a token is granted or ctx is done. A token is
// granted when the pool has one free and this lease is under its fair
// share; the share is re-read on every wakeup, so a lease that was
// entitled to four tokens when it dozed off may wake entitled to one.
func (l *CPULease) Acquire(ctx context.Context) error {
	b := l.b
	if ctx == nil {
		ctx = context.Background()
	}
	// cond.Wait cannot select on ctx; a cancellation wakes the waiters
	// so the ctx.Err check below can observe it.
	stop := context.AfterFunc(ctx, func() {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	})
	defer stop()
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if b.inUse < b.total && l.held < b.shareLocked() {
			b.inUse++
			l.held++
			return nil
		}
		b.cond.Wait()
	}
}

// Release returns one token to the pool.
func (l *CPULease) Release() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if l.held <= 0 {
		panic("experiments: CPULease.Release without a held token")
	}
	l.held--
	b.inUse--
	b.cond.Broadcast()
}

// Close deregisters the lease, returning any still-held tokens (a
// defensive sweep; a well-behaved sweep released them per cell) and
// growing the remaining leases' shares.
func (l *CPULease) Close() {
	b := l.b
	b.mu.Lock()
	defer b.mu.Unlock()
	b.inUse -= l.held
	l.held = 0
	b.leases--
	b.cond.Broadcast()
}

// Held reports how many tokens the lease currently holds (tests).
func (l *CPULease) Held() int {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return l.held
}
