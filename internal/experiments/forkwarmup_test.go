package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestMatrixForkVsReplayBitIdentical pins the shared-warmup fork's
// acceptance criterion: every (design, workload) cell run from the
// per-workload WarmupImage must be bit-identical — the full Result
// struct, every counter and histogram — to the same cell run with a
// full warmup replay, and the progress stream must say which path each
// cell took. Under -short or the race detector the matrix is trimmed so
// the package fits the 1-CPU race budget; the full band-balanced subset
// runs in every regular pass.
func TestMatrixForkVsReplayBitIdentical(t *testing.T) {
	sc := Quick()
	jobs := 8
	if testing.Short() || raceEnabled {
		sc.Workloads = sc.studySubset(2)
		sc.RequestsPerCore = 1000
		sc.WarmupPerCore = 200
		jobs = 2
	} else {
		sc.Workloads = sc.studySubset(6)
	}

	run := func(replay bool) (*Matrix, []string) {
		var lines []string
		m, err := RunMatrixOpts(sc, MatrixOptions{
			Jobs:         jobs,
			ReplayWarmup: replay,
			Progress:     func(s string) { lines = append(lines, s) },
		})
		if err != nil {
			t.Fatalf("replay=%v: %v", replay, err)
		}
		return m, lines
	}
	forked, forkLines := run(false)
	replayed, replayLines := run(true)

	if len(forked.Results) != len(replayed.Results) {
		t.Fatalf("cell count: forked %d, replayed %d", len(forked.Results), len(replayed.Results))
	}
	for k, rr := range replayed.Results {
		fr := forked.Results[k]
		if fr == nil {
			t.Fatalf("%s/%v: missing from forked matrix", k.Workload, k.Design)
		}
		if !reflect.DeepEqual(rr, fr) {
			t.Errorf("%s/%v: forked and replayed results differ:\nreplay %+v\nfork   %+v",
				k.Workload, k.Design, rr, fr)
		}
		if rs, fs := fmt.Sprintf("%+v", rr), fmt.Sprintf("%+v", fr); rs != fs {
			t.Errorf("%s/%v: result fingerprints differ", k.Workload, k.Design)
		}
	}

	// Every cell's progress line must name its warmup path; in the stock
	// matrix every design shares the image, so all cells fork.
	for i, line := range forkLines {
		if !strings.HasSuffix(line, "warmup=fork") {
			t.Errorf("fork-mode line %d missing warmup=fork: %q", i, line)
		}
	}
	for i, line := range replayLines {
		if !strings.HasSuffix(line, "warmup=replay") {
			t.Errorf("replay-mode line %d missing warmup=replay: %q", i, line)
		}
	}
}
