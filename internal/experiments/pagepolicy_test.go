package experiments

import (
	"strings"
	"testing"
)

func TestPagePolicyAblation(t *testing.T) {
	rep, err := AblationPagePolicy(tinyScale(t))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "row-hit-frac") {
		t.Errorf("malformed:\n%s", s)
	}
}
