// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the access breakdown (Fig. 1), queueing delays
// (Figs. 2, 10), bandwidth decomposition (Fig. 3), tag-check latency
// (Fig. 9), speedups (Figs. 11, 12), bandwidth bloat (Table IV), relative
// energy (Fig. 13), and the §V-D/E/F studies, plus ablation sweeps for
// TDRAM's design choices. Figures 1–3 and 9–13 all derive from one
// matrix of runs (designs x workloads), computed once and shared.
package experiments

import (
	"fmt"
	"strings"

	"tdram/internal/dramcache"
	"tdram/internal/fault"
	"tdram/internal/obs"
	"tdram/internal/sim"
	"tdram/internal/stats"
	"tdram/internal/system"
	"tdram/internal/workload"
)

// Scale selects how much work a reproduction run does. Ratios (miss
// bands, speedups, bloat) are scale-invariant; bigger scales tighten the
// averages.
type Scale struct {
	Name            string
	CacheBytes      uint64
	RequestsPerCore int
	WarmupPerCore   int
	Workloads       []workload.Spec

	// FaultRate, when positive, enables deterministic fault injection
	// (internal/fault) at that per-access probability, seeded by
	// FaultSeed.
	FaultRate float64
	FaultSeed uint64

	// Watchdog arms the no-progress watchdog (zero disables). The default
	// scales arm it: the watchdog only observes, so results are
	// bit-identical, and a wedged cell aborts with a dump instead of
	// hanging the whole sweep.
	Watchdog sim.Tick

	// FlightDepth, when positive, arms the flight recorder at that ring
	// depth in every run the scale configures (zero leaves it off). A
	// watchdog trip or uncorrectable fault then dumps the last journeys
	// and device commands.
	FlightDepth int

	// Obs is installed into every cell's system config. Observability is
	// purely observational — results are bit-identical with it on or off
	// — so a sweep can arm the sampler (tdserve streams its OnSample rows
	// as job progress) without perturbing what the matrix computes.
	// FlightDepth, when set, still overrides the flight-recorder depth.
	Obs obs.Config
}

// defaultWatchdog is the window the stock scales arm: far beyond any
// legitimate retirement gap at these request counts.
const defaultWatchdog = 10 * sim.Millisecond

// Full covers all 28 workloads at the default capacity.
func Full() Scale {
	return Scale{
		Name:            "full",
		CacheBytes:      16 << 20,
		RequestsPerCore: 10000,
		WarmupPerCore:   1000,
		Workloads:       workload.All(),
		Watchdog:        defaultWatchdog,
	}
}

// Quick covers the band-balanced representative subset; it is what the
// testing.B benchmarks run.
func Quick() Scale {
	return Scale{
		Name:            "quick",
		CacheBytes:      8 << 20,
		RequestsPerCore: 4000,
		WarmupPerCore:   500,
		Workloads:       workload.Representative(),
		Watchdog:        defaultWatchdog,
	}
}

// Config builds the system configuration for one (design, workload) cell.
func (sc Scale) Config(d dramcache.Design, wl workload.Spec) system.Config {
	cfg := system.DefaultConfig(d, wl, sc.CacheBytes)
	cfg.RequestsPerCore = sc.RequestsPerCore
	cfg.WarmupPerCore = sc.WarmupPerCore
	cfg.Watchdog = sc.Watchdog
	cfg.Obs = sc.Obs
	if sc.FlightDepth > 0 {
		cfg.Obs.FlightRecorder = sc.FlightDepth
	}
	if sc.FaultRate > 0 && d != dramcache.NoCache {
		cfg.Cache.Fault = fault.Config{Rate: sc.FaultRate, Seed: sc.FaultSeed}
	}
	return cfg
}

// Key addresses one cell of the run matrix.
type Key struct {
	Design   dramcache.Design
	Workload string
}

// Matrix holds the shared runs every figure derives from.
type Matrix struct {
	Scale   Scale
	Results map[Key]*system.Result
}

// MatrixDesigns is the set of configurations the matrix runs per
// workload: the six cache designs plus the main-memory-only system.
func MatrixDesigns() []dramcache.Design {
	return append(dramcache.Designs(), dramcache.NoCache)
}

// RunMatrix executes every (design, workload) cell, fanning cells out
// across runtime.GOMAXPROCS(0) workers; see RunMatrixOpts for the
// parallelism knob, the progress-ordering guarantee and the
// partial-failure semantics. The progress callback, when non-nil,
// receives one line per completed run, always from a single goroutine.
func RunMatrix(sc Scale, progress func(string)) (*Matrix, error) {
	return RunMatrixOpts(sc, MatrixOptions{Progress: progress})
}

// Get returns one cell (nil when the cell failed or never ran).
func (m *Matrix) Get(d dramcache.Design, wl string) *system.Result {
	return m.Results[Key{d, wl}]
}

// CompleteWorkloads returns, in Scale order, the workloads for which
// every matrix design has a result. The figure/table generators iterate
// these so a partially failed sweep still renders every finished
// workload instead of dereferencing a missing cell.
func (m *Matrix) CompleteWorkloads() []workload.Spec {
	var out []workload.Spec
	for _, wl := range m.Scale.Workloads {
		complete := true
		for _, d := range MatrixDesigns() {
			if m.Get(d, wl.Name) == nil {
				complete = false
				break
			}
		}
		if complete {
			out = append(out, wl)
		}
	}
	return out
}

// MissingCells lists, in sweep order, the (design, workload) cells that
// have no result.
func (m *Matrix) MissingCells() []Key {
	var missing []Key
	for _, c := range sweepCells(m.Scale) {
		if m.Get(c.d, c.wl.Name) == nil {
			missing = append(missing, Key{c.d, c.wl.Name})
		}
	}
	return missing
}

// incompleteNote names the workloads a report skipped because one of
// their cells failed; empty when the matrix is complete.
func (m *Matrix) incompleteNote() string {
	complete := make(map[string]bool)
	for _, wl := range m.CompleteWorkloads() {
		complete[wl.Name] = true
	}
	var skipped []string
	for _, wl := range m.Scale.Workloads {
		if !complete[wl.Name] {
			skipped = append(skipped, wl.Name)
		}
	}
	if len(skipped) == 0 {
		return ""
	}
	return fmt.Sprintf("SKIPPED %d workload(s) with failed cells: %s",
		len(skipped), strings.Join(skipped, ", "))
}

// report finalizes a figure/table: on a partial matrix it appends the
// skipped-workload note to the summary.
func (m *Matrix) report(r *Report) *Report {
	if note := m.incompleteNote(); note != "" {
		r.Summary = append(r.Summary, note)
	}
	return r
}

// Report is one regenerated table or figure.
type Report struct {
	ID         string // experiment id from DESIGN.md (fig9, tab4, ...)
	Title      string
	Table      fmt.Stringer
	Summary    []string // the headline numbers, one per line
	PaperClaim string   // what the paper reports, for comparison

	// Artifacts are companion tables (CDFs, breakdowns) written as
	// separate CSV files by tdbench's -csv mode and appended, titled,
	// to the rendered report.
	Artifacts []Artifact
}

// Artifact is one companion table of a report.
type Artifact struct {
	Name  string // file suffix: <report-id>_<name>.csv
	Title string
	Table fmt.Stringer

	// CSVOnly keeps bulk tables (per-bucket CDFs) out of the rendered
	// report; they still reach disk through tdbench -csv.
	CSVOnly bool
}

// CSV renders an artifact's table as CSV (empty when unsupported).
func (a *Artifact) CSV() string {
	if c, ok := a.Table.(interface{ CSV() string }); ok {
		return c.CSV()
	}
	return ""
}

// CSV renders the report's table as CSV (empty when the table does not
// support it).
func (r *Report) CSV() string {
	if c, ok := r.Table.(interface{ CSV() string }); ok {
		return c.CSV()
	}
	return ""
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, a := range r.Artifacts {
		if a.CSVOnly {
			continue
		}
		fmt.Fprintf(&b, "-- %s --\n", a.Title)
		b.WriteString(a.Table.String())
	}
	for _, s := range r.Summary {
		fmt.Fprintf(&b, "%s\n", s)
	}
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	return b.String()
}

// AllFromMatrix regenerates every matrix-derived artifact in paper order.
func AllFromMatrix(m *Matrix) []*Report {
	return []*Report{
		Fig1(m), Fig2(m), Fig3(m), Fig9(m), Fig10(m), Fig11(m), Fig12(m),
		Tab4(m), Fig13(m),
	}
}

// geoOver computes the geometric mean of f over the workloads whose
// cells all completed; failed workloads are skipped (and reported by the
// figures' incomplete note) instead of handing f a nil cell.
func (m *Matrix) geoOver(f func(wl string) float64) float64 {
	var vs []float64
	for _, wl := range m.CompleteWorkloads() {
		vs = append(vs, f(wl.Name))
	}
	return stats.GeoMean(vs)
}
