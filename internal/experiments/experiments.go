// Package experiments regenerates every table and figure of the paper's
// evaluation (§V): the access breakdown (Fig. 1), queueing delays
// (Figs. 2, 10), bandwidth decomposition (Fig. 3), tag-check latency
// (Fig. 9), speedups (Figs. 11, 12), bandwidth bloat (Table IV), relative
// energy (Fig. 13), and the §V-D/E/F studies, plus ablation sweeps for
// TDRAM's design choices. Figures 1–3 and 9–13 all derive from one
// matrix of runs (designs x workloads), computed once and shared.
package experiments

import (
	"fmt"
	"strings"

	"tdram/internal/dramcache"
	"tdram/internal/stats"
	"tdram/internal/system"
	"tdram/internal/workload"
)

// Scale selects how much work a reproduction run does. Ratios (miss
// bands, speedups, bloat) are scale-invariant; bigger scales tighten the
// averages.
type Scale struct {
	Name            string
	CacheBytes      uint64
	RequestsPerCore int
	WarmupPerCore   int
	Workloads       []workload.Spec
}

// Full covers all 28 workloads at the default capacity.
func Full() Scale {
	return Scale{
		Name:            "full",
		CacheBytes:      16 << 20,
		RequestsPerCore: 10000,
		WarmupPerCore:   1000,
		Workloads:       workload.All(),
	}
}

// Quick covers the band-balanced representative subset; it is what the
// testing.B benchmarks run.
func Quick() Scale {
	return Scale{
		Name:            "quick",
		CacheBytes:      8 << 20,
		RequestsPerCore: 4000,
		WarmupPerCore:   500,
		Workloads:       workload.Representative(),
	}
}

// Config builds the system configuration for one (design, workload) cell.
func (sc Scale) Config(d dramcache.Design, wl workload.Spec) system.Config {
	cfg := system.DefaultConfig(d, wl, sc.CacheBytes)
	cfg.RequestsPerCore = sc.RequestsPerCore
	cfg.WarmupPerCore = sc.WarmupPerCore
	return cfg
}

// Key addresses one cell of the run matrix.
type Key struct {
	Design   dramcache.Design
	Workload string
}

// Matrix holds the shared runs every figure derives from.
type Matrix struct {
	Scale   Scale
	Results map[Key]*system.Result
}

// MatrixDesigns is the set of configurations the matrix runs per
// workload: the six cache designs plus the main-memory-only system.
func MatrixDesigns() []dramcache.Design {
	return append(dramcache.Designs(), dramcache.NoCache)
}

// RunMatrix executes every (design, workload) cell. The progress
// callback, when non-nil, receives one line per completed run.
func RunMatrix(sc Scale, progress func(string)) (*Matrix, error) {
	m := &Matrix{Scale: sc, Results: make(map[Key]*system.Result)}
	for _, wl := range sc.Workloads {
		for _, d := range MatrixDesigns() {
			res, err := system.Run(sc.Config(d, wl))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %v: %w", wl.Name, d, err)
			}
			m.Results[Key{d, wl.Name}] = res
			if progress != nil {
				progress(fmt.Sprintf("%-8s %-12s runtime=%-12v missratio=%.2f",
					wl.Name, d.String(), res.Runtime, res.Cache.Outcomes.MissRatio()))
			}
		}
	}
	return m, nil
}

// Get returns one cell.
func (m *Matrix) Get(d dramcache.Design, wl string) *system.Result {
	return m.Results[Key{d, wl}]
}

// Report is one regenerated table or figure.
type Report struct {
	ID         string // experiment id from DESIGN.md (fig9, tab4, ...)
	Title      string
	Table      fmt.Stringer
	Summary    []string // the headline numbers, one per line
	PaperClaim string   // what the paper reports, for comparison
}

// CSV renders the report's table as CSV (empty when the table does not
// support it).
func (r *Report) CSV() string {
	if c, ok := r.Table.(interface{ CSV() string }); ok {
		return c.CSV()
	}
	return ""
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.String())
	}
	for _, s := range r.Summary {
		fmt.Fprintf(&b, "%s\n", s)
	}
	if r.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", r.PaperClaim)
	}
	return b.String()
}

// AllFromMatrix regenerates every matrix-derived artifact in paper order.
func AllFromMatrix(m *Matrix) []*Report {
	return []*Report{
		Fig1(m), Fig2(m), Fig3(m), Fig9(m), Fig10(m), Fig11(m), Fig12(m),
		Tab4(m), Fig13(m),
	}
}

// geoOver computes the geometric mean of f over the matrix workloads.
func (m *Matrix) geoOver(f func(wl string) float64) float64 {
	var vs []float64
	for _, wl := range m.Scale.Workloads {
		vs = append(vs, f(wl.Name))
	}
	return stats.GeoMean(vs)
}
