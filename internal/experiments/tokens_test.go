package experiments

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdram/internal/system"
)

// budgetScale is a trimmed matrix for budget-machinery tests: the cells
// are stubbed, so the matrix only needs enough of them to exercise the
// schedule, not a representative workload set.
func budgetScale() Scale {
	sc := Quick()
	sc.Workloads = sc.studySubset(2)
	sc.RequestsPerCore = 100
	sc.WarmupPerCore = 10
	return sc
}

// TestTokenBudgetConservation pins the CPUBudget invariant under a
// saturated queue: several sweeps hammering one small budget never have
// more cells simulating concurrently than the pool holds, every sweep
// completes, and the pool drains back to zero.
func TestTokenBudgetConservation(t *testing.T) {
	const tokens = 2
	var inFlight, maxInFlight atomic.Int64
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		n := inFlight.Add(1)
		for {
			m := maxInFlight.Load()
			if n <= m || maxInFlight.CompareAndSwap(m, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // widen the overlap window
		inFlight.Add(-1)
		return fakeResult(cfg), nil
	})

	budget := NewCPUBudget(tokens)
	const sweeps = 3
	var wg sync.WaitGroup
	errs := make([]error, sweeps)
	for i := 0; i < sweeps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = RunMatrixOpts(budgetScale(), MatrixOptions{
				Jobs:         4, // fan-out ceiling well past the fair share
				ReplayWarmup: true,
				Budget:       budget,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("sweep %d: %v", i, err)
		}
	}
	if got := maxInFlight.Load(); got > tokens {
		t.Errorf("observed %d concurrent cells, budget holds %d tokens", got, tokens)
	}
	if got := budget.InUse(); got != 0 {
		t.Errorf("tokens still in use after all sweeps closed: %d", got)
	}
	if got := budget.Leases(); got != 0 {
		t.Errorf("leases still registered after all sweeps closed: %d", got)
	}
}

// TestBudgetGatedDeterminism pins the acceptance criterion for the
// budget gate: a sweep squeezed through a 1-token budget produces a
// matrix bit-identical to an ungated parallel sweep. The gate may only
// reorder wall-clock scheduling, never results.
func TestBudgetGatedDeterminism(t *testing.T) {
	fakeRunCell(t, func(cfg system.Config) (*system.Result, error) {
		return fakeResult(cfg), nil
	})
	sc := budgetScale()
	gated, err := RunMatrixOpts(sc, MatrixOptions{
		Jobs: 4, ReplayWarmup: true, Budget: NewCPUBudget(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := RunMatrixOpts(sc, MatrixOptions{Jobs: 4, ReplayWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(gated.Results) != len(free.Results) {
		t.Fatalf("cell count: gated %d, ungated %d", len(gated.Results), len(free.Results))
	}
	for k, fr := range free.Results {
		if gr := gated.Results[k]; !reflect.DeepEqual(fr, gr) {
			t.Errorf("%s/%v: gated result differs from ungated", k.Workload, k.Design)
		}
	}
}

// TestCPULeaseFairShare exercises the share arithmetic directly: a lone
// lease may hold the whole pool; a second lease halves the cap; the
// share floor keeps every lease entitled to one token.
func TestCPULeaseFairShare(t *testing.T) {
	b := NewCPUBudget(4)
	ctx := context.Background()

	l1 := b.Lease()
	for i := 0; i < 4; i++ {
		if err := l1.Acquire(ctx); err != nil {
			t.Fatalf("lone lease acquire %d: %v", i, err)
		}
	}
	if got := l1.Held(); got != 4 {
		t.Fatalf("lone lease holds %d, want the whole pool", got)
	}

	// A second lease shrinks the share to 2. l1 is over cap: its next
	// acquire must block even after it drains down to its own share,
	// while l2 climbs to its share as l1's surplus returns.
	l2 := b.Lease()
	acquired := make(chan error, 1)
	go func() { acquired <- l2.Acquire(ctx) }()
	select {
	case err := <-acquired:
		t.Fatalf("l2 acquired from an exhausted pool: err=%v", err)
	case <-time.After(20 * time.Millisecond):
	}
	l1.Release()
	if err := <-acquired; err != nil {
		t.Fatalf("l2 acquire after l1 release: %v", err)
	}
	// Pool is full again (l1 holds 3, l2 holds 1): a further acquire
	// must time out rather than succeed.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := l2.Acquire(short); err != context.DeadlineExceeded {
		t.Fatalf("acquire on a full pool returned %v, want deadline exceeded", err)
	}
	// Draining l1 to its share lets l2 reach its own share of 2.
	l1.Release()
	if err := l2.Acquire(ctx); err != nil {
		t.Fatalf("l2 acquire up to its share: %v", err)
	}
	if got := l2.Held(); got != 2 {
		t.Fatalf("l2 holds %d, want its fair share of 2", got)
	}
	l1.Close()
	l2.Close()
}

// TestCPULeaseAcquireCancellation pins the cancellation path: a blocked
// Acquire returns the context error instead of waiting forever.
func TestCPULeaseAcquireCancellation(t *testing.T) {
	b := NewCPUBudget(1)
	l1 := b.Lease()
	if err := l1.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	l2 := b.Lease()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l2.Acquire(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("blocked acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	l1.Close()
	l2.Close()

	if got := b.InUse(); got != 0 {
		t.Errorf("tokens in use after closes: %d", got)
	}
}

// TestCPULeaseShareFloor: with more leases than tokens, every lease is
// still entitled to one token (share never rounds to zero), so a
// maximally contended pool serializes instead of deadlocking.
func TestCPULeaseShareFloor(t *testing.T) {
	b := NewCPUBudget(1)
	l1, l2, l3 := b.Lease(), b.Lease(), b.Lease()
	defer l1.Close()
	defer l2.Close()
	defer l3.Close()
	// Each lease in turn can acquire the lone token once the previous
	// holder releases it.
	for _, l := range []*CPULease{l1, l2, l3} {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatalf("floor acquire: %v", err)
		}
		l.Release()
	}
}
