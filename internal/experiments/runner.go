package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"

	"tdram/internal/dramcache"
	"tdram/internal/system"
	"tdram/internal/workload"
)

// MatrixOptions configures a matrix sweep.
type MatrixOptions struct {
	// Jobs bounds how many (design, workload) cells simulate concurrently.
	// Zero or negative selects runtime.GOMAXPROCS(0). Every cell runs on
	// its own sim.Simulator with its own workload RNG state, so results
	// are bit-identical whatever Jobs is.
	Jobs int

	// Progress, when non-nil, receives one line per completed cell. It is
	// invoked from a single goroutine (the RunMatrixOpts caller's), in the
	// same workload-major cell order as a serial sweep regardless of which
	// worker finishes first, so the output of two runs can be diffed.
	Progress func(string)

	// ReplayWarmup disables the shared-warmup fork: every cell replays its
	// own prewarm pass, the pre-fork behaviour. By default (false) the
	// sweep builds one WarmupImage per workload and forks each design cell
	// from it — bit-identical results (the fork point precedes the first
	// timed event) at a fraction of the prewarm cost. Cells whose config
	// an image cannot seed fall back to replay individually; each progress
	// line reports which path ran as warmup=fork or warmup=replay.
	ReplayWarmup bool

	// Context, when non-nil, cancels the sweep between cells: once it is
	// done, no further cell starts simulating — each remaining cell fails
	// immediately with a CellError wrapping ctx.Err() — and RunMatrixOpts
	// returns the partial Matrix of the cells that completed before the
	// cancellation. A cell already simulating finishes (cells are the
	// cancellation granularity), so the longest wait after a cancel is
	// one cell, not the rest of the sweep. A nil Context never cancels.
	Context context.Context

	// Filter, when non-nil, restricts the sweep to the cells for which it
	// returns true. Skipped cells are not simulated, appear in neither
	// the Matrix nor the progress stream, and produce no error — they are
	// simply not part of this run. tdserve's checkpoint-restart resumes a
	// half-finished job by filtering out the cells its checkpoint already
	// holds.
	Filter func(Key) bool

	// OnCell, when non-nil, receives every run cell as it is drained:
	// exactly one call per cell, in the same deterministic workload-major
	// sweep order as Progress, from the caller's goroutine. Failed cells
	// are delivered with a nil Result and the *CellError; completed cells
	// with err == nil. tdserve checkpoints from this hook.
	OnCell func(Key, *system.Result, error)

	// Budget, when non-nil, gates cell simulation on a shared CPU-token
	// pool: the sweep registers one lease for its duration, and every
	// worker acquires a token before simulating a cell and releases it
	// after. Jobs stays the goroutine fan-out ceiling; the budget decides
	// how many of those goroutines may simulate at once, so several
	// sweeps sharing one budget split the host fairly instead of
	// oversubscribing it (see CPUBudget). Gating only reorders wall-clock
	// scheduling between independent cells — results stay bit-identical
	// to an ungated run. A nil Budget never gates.
	Budget *CPUBudget
}

// CellError records the failure of one (design, workload) cell of a
// matrix sweep. RunMatrixOpts aggregates them with errors.Join; callers
// can recover the failed coordinates with errors.As.
type CellError struct {
	Design   dramcache.Design
	Workload string
	Err      error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %s/%v: %v", e.Workload, e.Design, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// runCell executes one cell from a cold start; tests replace it to
// inject faults (which also disables the fork path — see fakeRunCell).
var runCell = func(cfg system.Config) (*system.Result, error) {
	return system.Run(cfg)
}

// buildImage builds one workload's shared warmup image; tests replace it
// alongside runCell.
var buildImage = func(cfg system.Config) (*system.WarmupImage, error) {
	return system.BuildWarmupImage(cfg)
}

// runCellSafe executes one cell, forking from img when one is available
// and compatible, and converts a panicking simulation into a per-cell
// error so one broken cell cannot take down the rest of the sweep (or
// the finished part of it). It reports whether the cell ran from the
// fork or from a full warmup replay.
func runCellSafe(cfg system.Config, img *system.WarmupImage) (res *system.Result, forked bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if img != nil {
		res, err = system.RunWithImage(cfg, img)
		if err == nil {
			return res, true, nil
		}
		if !errors.Is(err, system.ErrIncompatibleImage) {
			return nil, true, err // a real simulation failure, not a fork limitation
		}
		// This design's config cannot be seeded from the shared image;
		// fall back to a full replay for this cell only.
	}
	res, err = runCell(cfg)
	return res, false, err
}

// imageSet lazily builds at most one WarmupImage per workload, on
// whichever worker first reaches a cell of that workload; the other
// workers' cells block on the Once until it is ready. A build failure
// (error or panic) leaves the slot nil and every cell of the workload
// replays its own warmup.
type imageSet struct {
	sc   Scale
	once []sync.Once
	imgs []*system.WarmupImage
}

func newImageSet(sc Scale) *imageSet {
	return &imageSet{sc: sc, once: make([]sync.Once, len(sc.Workloads)), imgs: make([]*system.WarmupImage, len(sc.Workloads))}
}

func (is *imageSet) get(wi int) *system.WarmupImage {
	is.once[wi].Do(func() {
		defer func() { recover() }() // a broken build degrades to replay
		// The image is design-independent; build it under the first matrix
		// design's config (any would do — compatibility is checked per cell).
		cfg := is.sc.Config(MatrixDesigns()[0], is.sc.Workloads[wi])
		if img, err := buildImage(cfg); err == nil {
			is.imgs[wi] = img
		}
	})
	return is.imgs[wi]
}

// cell is one (workload, design) coordinate in sweep order. wlIndex is
// the workload's position in Scale.Workloads — the warmup-image slot —
// carried explicitly so a Filter-trimmed cell list still forks every
// cell from the right image.
type cell struct {
	wl      workload.Spec
	d       dramcache.Design
	wlIndex int
}

// sweepCells enumerates the matrix in the canonical workload-major order
// every progress stream and failure report uses.
func sweepCells(sc Scale) []cell {
	var cells []cell
	for wi, wl := range sc.Workloads {
		for _, d := range MatrixDesigns() {
			cells = append(cells, cell{wl, d, wi})
		}
	}
	return cells
}

// RunMatrixOpts executes every (design, workload) cell of the sweep, up
// to opts.Jobs cells at a time. A failed cell (error or panic) does not
// abort the sweep: the remaining cells still run, the returned Matrix
// holds every completed cell, and the error joins one CellError per
// failure. The Matrix is always non-nil.
func RunMatrixOpts(sc Scale, opts MatrixOptions) (*Matrix, error) {
	cells := sweepCells(sc)
	if opts.Filter != nil {
		kept := cells[:0:0]
		for _, c := range cells {
			if opts.Filter(Key{c.d, c.wl.Name}) {
				kept = append(kept, c)
			}
		}
		cells = kept
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(cells) {
		jobs = len(cells)
	}

	// Workers pull cell indices and publish into per-cell slots; the
	// caller's goroutine drains the slots in sweep order, so Matrix
	// assembly and the Progress callback are single-threaded and the
	// progress stream is deterministic.
	results := make([]*system.Result, len(cells))
	errs := make([]error, len(cells))
	forked := make([]bool, len(cells))
	done := make([]chan struct{}, len(cells))
	for i := range done {
		done[i] = make(chan struct{})
	}
	var images *imageSet
	if !opts.ReplayWarmup {
		images = newImageSet(sc)
	}
	var lease *CPULease
	if opts.Budget != nil {
		lease = opts.Budget.Lease()
		defer lease.Close()
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				c := cells[i]
				if err := ctx.Err(); err != nil {
					// Cancelled between cells: fail the remaining cells
					// without simulating them. Cells already past this
					// check run to completion.
					errs[i] = &CellError{Design: c.d, Workload: c.wl.Name, Err: err}
					close(done[i])
					continue
				}
				if lease != nil {
					// The budget gate: simulation (including the shared
					// warmup-image build below) happens only under a held
					// token. A cancellation while queued for a token fails
					// the cell exactly like the between-cells check above.
					if err := lease.Acquire(ctx); err != nil {
						errs[i] = &CellError{Design: c.d, Workload: c.wl.Name, Err: err}
						close(done[i])
						continue
					}
				}
				var img *system.WarmupImage
				if images != nil {
					img = images.get(c.wlIndex)
				}
				res, fk, err := runCellSafe(sc.Config(c.d, c.wl), img)
				if lease != nil {
					lease.Release()
				}
				if err != nil {
					err = &CellError{Design: c.d, Workload: c.wl.Name, Err: err}
					res = nil
				}
				results[i], errs[i], forked[i] = res, err, fk
				close(done[i])
			}
		}()
	}
	go func() {
		for i := range cells {
			next <- i
		}
		close(next)
	}()

	m := &Matrix{Scale: sc, Results: make(map[Key]*system.Result, len(cells))}
	var cellErrs []error
	for i, c := range cells {
		<-done[i]
		if opts.OnCell != nil {
			opts.OnCell(Key{c.d, c.wl.Name}, results[i], errs[i])
		}
		if err := errs[i]; err != nil {
			cellErrs = append(cellErrs, err)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("%-8s %-12s FAILED: %s",
					c.wl.Name, c.d.String(), firstLine(errors.Unwrap(err).Error())))
			}
			continue
		}
		res := results[i]
		m.Results[Key{c.d, c.wl.Name}] = res
		if opts.Progress != nil {
			warmup := "replay"
			if forked[i] {
				warmup = "fork"
			}
			opts.Progress(fmt.Sprintf("%-8s %-12s runtime=%-12v missratio=%.2f warmup=%s",
				c.wl.Name, c.d.String(), res.Runtime, res.Cache.Outcomes.MissRatio(), warmup))
		}
	}
	wg.Wait()
	return m, errors.Join(cellErrs...)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
