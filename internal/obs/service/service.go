// Package service is the serving-tier counterpart of the simulation
// Observer: a concurrency-safe counter/gauge/histogram registry for
// wall-clock-side code (HTTP handlers, job workers). The Observer is
// deliberately single-goroutine and keyed to simulated time, which is
// exactly wrong for a server: tdserve's handlers run on arbitrary
// goroutines and its latencies are wall durations. This package fills
// that gap with atomic counters, pull-style gauges, and mutex-guarded
// stats.LogHist latency histograms, snapshotted on demand in sorted
// name order so a metrics endpoint's output is deterministic for a
// given state.
//
// The registry never touches the clock itself: callers time their own
// sections (behind their package's annotated wall-clock seam) and hand
// in durations, keeping the determinism analyzer's single-seam
// discipline intact. Unlike the Observer's hooks, a Metrics registry is
// never nil when the server exists — it is construction-time state, not
// an optional subsystem — which is why it lives outside package obs and
// outside the observe-hook (nil-guard) pattern.
package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tdram/internal/sim"
	"tdram/internal/stats"
)

// Metrics is the registry. The zero value is not usable; construct with
// NewMetrics.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() float64
	hists    map[string]*Hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() float64),
		hists:    make(map[string]*Hist),
	}
}

// Counter is a monotonic atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Hist is a concurrency-safe latency histogram over wall durations,
// backed by the same log-linear stats.LogHist the simulator uses for
// its tail latencies (~1% relative error at every magnitude, no
// overflow bucket to saturate the tail).
type Hist struct {
	mu sync.Mutex
	h  *stats.LogHist
}

// Observe records one duration; negative durations clamp to zero.
func (h *Hist) Observe(d time.Duration) {
	h.mu.Lock()
	h.h.AddTick(sim.Tick(d.Nanoseconds()) * sim.Nanosecond)
	h.mu.Unlock()
}

// snapshot reads the histogram's summary under the lock.
func (h *Hist) snapshot() (n uint64, p50, p90, p99, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.h.N() == 0 {
		return 0, 0, 0, 0, 0
	}
	return h.h.N(), h.h.PercentileNS(0.50), h.h.PercentileNS(0.90),
		h.h.PercentileNS(0.99), h.h.Max().Nanoseconds()
}

// Counter returns the counter registered under name, creating it on
// first use. Safe to call from any goroutine; callers should cache the
// result on hot paths.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge registers a pull-style gauge: fn is invoked at snapshot time
// and must be safe to call from any goroutine. Re-registering a name
// replaces its function.
func (m *Metrics) Gauge(name string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = fn
}

// Hist returns the latency histogram registered under name, creating it
// on first use.
func (m *Metrics) Hist(name string) *Hist {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hists[name]
	if !ok {
		h = &Hist{h: stats.NewLogHist()}
		m.hists[name] = h
	}
	return h
}

// Metric is one row of a Snapshot. Exactly one of the value groups is
// meaningful, selected by Kind: counters and gauges fill Value;
// histograms fill Count and the latency percentiles.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"` // "counter" | "gauge" | "hist"
	Value float64 `json:"value,omitempty"`

	Count uint64  `json:"count,omitempty"`
	P50NS float64 `json:"p50_ns,omitempty"`
	P90NS float64 `json:"p90_ns,omitempty"`
	P99NS float64 `json:"p99_ns,omitempty"`
	MaxNS float64 `json:"max_ns,omitempty"`
}

// Snapshot captures every registered metric, sorted by name so the
// output order is deterministic. Gauge functions and histogram locks
// are evaluated outside the registry lock: a gauge that itself reads a
// mutex-guarded value must not be able to deadlock against a
// concurrent Counter/Hist registration.
func (m *Metrics) Snapshot() []Metric {
	m.mu.Lock()
	counterNames := stats.SortedKeys(m.counters)
	gaugeNames := stats.SortedKeys(m.gauges)
	histNames := stats.SortedKeys(m.hists)
	counters := make([]*Counter, len(counterNames))
	for i, n := range counterNames {
		counters[i] = m.counters[n]
	}
	gauges := make([]func() float64, len(gaugeNames))
	for i, n := range gaugeNames {
		gauges[i] = m.gauges[n]
	}
	hists := make([]*Hist, len(histNames))
	for i, n := range histNames {
		hists[i] = m.hists[n]
	}
	m.mu.Unlock()

	rows := make([]Metric, 0, len(counters)+len(gauges)+len(hists))
	for i, c := range counters {
		rows = append(rows, Metric{Name: counterNames[i], Kind: "counter", Value: float64(c.Value())})
	}
	for i, fn := range gauges {
		rows = append(rows, Metric{Name: gaugeNames[i], Kind: "gauge", Value: fn()})
	}
	for i, h := range hists {
		row := Metric{Name: histNames[i], Kind: "hist"}
		row.Count, row.P50NS, row.P90NS, row.P99NS, row.MaxNS = h.snapshot()
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows
}
