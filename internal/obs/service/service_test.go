package service

import (
	"sort"
	"sync"
	"testing"
	"time"
)

func TestCounterRegistryIdempotent(t *testing.T) {
	m := NewMetrics()
	a := m.Counter("serve.hits")
	b := m.Counter("serve.hits")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Inc()
	b.Add(2)
	if got := a.Value(); got != 3 {
		t.Errorf("counter value = %d, want 3", got)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	m := NewMetrics()
	m.Counter("z.last").Inc()
	m.Counter("a.first").Add(5)
	m.Gauge("m.middle", func() float64 { return 7 })
	m.Hist("h.lat").Observe(time.Millisecond)

	rows := m.Snapshot()
	if len(rows) != 4 {
		t.Fatalf("snapshot has %d rows, want 4", len(rows))
	}
	if !sort.SliceIsSorted(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name }) {
		t.Error("snapshot rows are not name-sorted")
	}
	byName := map[string]Metric{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if r := byName["a.first"]; r.Kind != "counter" || r.Value != 5 {
		t.Errorf("a.first = %+v", r)
	}
	if r := byName["m.middle"]; r.Kind != "gauge" || r.Value != 7 {
		t.Errorf("m.middle = %+v", r)
	}
	h := byName["h.lat"]
	if h.Kind != "hist" || h.Count != 1 {
		t.Errorf("h.lat = %+v", h)
	}
	// LogHist is log-linear with ~1% relative error: the 1ms sample
	// must read back within a few percent at every percentile.
	for _, p := range []float64{h.P50NS, h.P99NS, h.MaxNS} {
		if p < 0.9e6 || p > 1.1e6 {
			t.Errorf("1ms observation reads back as %vns", p)
		}
	}
}

func TestHistEmptySnapshot(t *testing.T) {
	m := NewMetrics()
	m.Hist("empty")
	rows := m.Snapshot()
	if len(rows) != 1 || rows[0].Count != 0 || rows[0].P99NS != 0 {
		t.Errorf("empty hist snapshot = %+v", rows)
	}
}

// TestConcurrentUse exercises the registry under the race detector:
// concurrent registration, increments, observations, and snapshots.
func TestConcurrentUse(t *testing.T) {
	m := NewMetrics()
	m.Gauge("g", func() float64 { return 1 })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Counter("c").Inc()
				m.Hist("h").Observe(time.Microsecond)
				if j%50 == 0 {
					m.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	rows := m.Snapshot()
	byName := map[string]Metric{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if got := byName["c"].Value; got != 8*200 {
		t.Errorf("counter = %v, want %d", got, 8*200)
	}
	if got := byName["h"].Count; got != 8*200 {
		t.Errorf("hist count = %v, want %d", got, 8*200)
	}
}
