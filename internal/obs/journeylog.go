package obs

import (
	"tdram/internal/mem"
	"tdram/internal/sim"
	"tdram/internal/stats"
)

// classAgg aggregates completed journeys of one class: the latency
// histogram plus per-phase time sums for the stacked breakdown tables.
type classAgg struct {
	hist   *stats.LogHist
	phases [mem.NumPhases]sim.Tick
	count  uint64
}

// JourneyLog owns the journey ledger pool and the per-class aggregates.
// Journeys are recycled through a freelist — after the pool warms up to
// the in-flight high-water mark, starting and finishing journeys
// allocates nothing, matching the transaction-record discipline in the
// cache controller.
type JourneyLog struct {
	pool    mem.JourneyPool
	nextID  uint64
	resetAt uint64 // journeys started at or before this ID predate the last reset
	classes [mem.NumJourneyClasses]classAgg
}

func newJourneyLog() *JourneyLog {
	jl := &JourneyLog{}
	for i := range jl.classes {
		jl.classes[i].hist = stats.NewLogHist()
	}
	return jl
}

// StartJourney begins attribution for one demand: a pooled ledger with
// the core-queue phase already open at the current simulated time. Nil
// when journey tracking is disabled — callers store the result into
// Request.J unconditionally and every downstream touch nil-checks.
func (o *Observer) StartJourney(core int, line uint64, write bool) *mem.Journey {
	if o == nil || o.journeys == nil {
		return nil
	}
	jl := o.journeys
	j := jl.pool.Get()
	jl.nextID++
	j.ID = jl.nextID
	j.Line = line
	j.Core = core
	if write {
		j.MarkWrite()
	}
	now := o.sim.Now()
	j.Start = now
	j.Enter(mem.PhaseCoreQueue, now)
	return j
}

// FinishJourney classifies and aggregates a completed journey, copies it
// into the flight-recorder ring, and returns the ledger to the pool. The
// caller must clear its own reference first (the controller nils
// Request.J before calling), since the ledger is recycled immediately.
func (o *Observer) FinishJourney(j *mem.Journey, end sim.Tick) {
	if o == nil || o.journeys == nil || j == nil {
		return
	}
	j.End = end
	// Journeys started before the last reset (posted writes straddling
	// the warmup/measured boundary) go to the flight ring but stay out
	// of the measured aggregates, mirroring Controller.ResetStats.
	if j.ID > o.journeys.resetAt {
		agg := &o.journeys.classes[j.Class()]
		agg.count++
		agg.hist.AddTick(j.Total())
		for p, d := range j.Phases {
			agg.phases[p] += d
		}
	}
	if o.flight != nil {
		o.flight.recordJourney(j)
	}
	o.journeys.pool.Put(j)
}

// AbandonJourney returns an unfinished ledger to the pool without
// aggregating it (warmup-phase completions, run teardown).
func (o *Observer) AbandonJourney(j *mem.Journey) {
	if o == nil || o.journeys == nil || j == nil {
		return
	}
	o.journeys.pool.Put(j)
}

// ResetJourneys zeroes the per-class aggregates (the warmup/measured
// boundary) while keeping the ledger pool and flight ring warm.
func (o *Observer) ResetJourneys() {
	if o == nil || o.journeys == nil {
		return
	}
	o.journeys.resetAt = o.journeys.nextID
	for i := range o.journeys.classes {
		agg := &o.journeys.classes[i]
		agg.hist = stats.NewLogHist()
		agg.phases = [mem.NumPhases]sim.Tick{}
		agg.count = 0
	}
}

// JourneyClassCount reports completed journeys of one class.
func (o *Observer) JourneyClassCount(c mem.JourneyClass) uint64 {
	if o == nil || o.journeys == nil {
		return 0
	}
	return o.journeys.classes[c].count
}

// JourneyClassHist reports one class's end-to-end latency histogram
// (nil when journey tracking is disabled).
func (o *Observer) JourneyClassHist(c mem.JourneyClass) *stats.LogHist {
	if o == nil || o.journeys == nil {
		return nil
	}
	return o.journeys.classes[c].hist
}

// JourneyPhaseSum reports the total time one class spent in one phase.
func (o *Observer) JourneyPhaseSum(c mem.JourneyClass, p mem.Phase) sim.Tick {
	if o == nil || o.journeys == nil {
		return 0
	}
	return o.journeys.classes[c].phases[p]
}
