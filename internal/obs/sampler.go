package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"tdram/internal/sim"
)

// Sampler records registered gauges at a fixed simulated-time period. It
// runs on daemon events, so an otherwise-finished simulation still
// drains: sampling can never keep a run alive or change when model
// events fire relative to each other.
type Sampler struct {
	obs      *Observer
	sim      *sim.Simulator
	interval sim.Tick
	max      int

	names  []string
	fns    []func() float64
	tracks []TrackID // lazily created Perfetto counter tracks

	times   []sim.Tick
	values  [][]float64 // values[i] is the column for names[i]
	dropped uint64      // ticks past the row budget (reported, not stored)

	// onSample, when non-nil, receives each captured row (Config.OnSample).
	// row is its reusable argument buffer.
	onSample func(t sim.Tick, names []string, values []float64)
	row      []float64
}

func newSampler(o *Observer, interval sim.Tick, max int) *Sampler {
	return &Sampler{obs: o, interval: interval, max: max}
}

func (sp *Sampler) add(name string, fn func() float64) {
	sp.names = append(sp.names, name)
	sp.fns = append(sp.fns, fn)
	sp.tracks = append(sp.tracks, 0)
	sp.values = append(sp.values, nil)
}

func (sp *Sampler) start(s *sim.Simulator) {
	sp.sim = s
	s.ScheduleDaemonArg(sp.interval, samplerTickEv, sp)
}

// samplerTickEv dispatches a sampling tick without allocating a closure
// per reschedule.
func samplerTickEv(a any, _ sim.Tick) {
	sp := a.(*Sampler)
	sp.tick(sp.sim)
}

func (sp *Sampler) tick(s *sim.Simulator) {
	if len(sp.times) >= sp.max {
		// Budget spent: count the dropped row and keep the daemon schedule
		// alive so the truncation is measured, not silent. Daemon events
		// cannot perturb model timing, so rescheduling is free of risk.
		sp.dropped++
		s.ScheduleDaemonArg(sp.interval, samplerTickEv, sp)
		return
	}
	now := s.Now()
	sp.times = append(sp.times, now)
	if sp.onSample != nil && len(sp.row) != len(sp.fns) {
		// Gauges register lazily as components attach; size the reusable
		// row to the current set each time it changes.
		sp.row = make([]float64, len(sp.fns))
	}
	for i, fn := range sp.fns {
		v := fn()
		sp.values[i] = append(sp.values[i], v)
		if sp.row != nil {
			sp.row[i] = v
		}
		// Mirror each series onto a Perfetto counter track so traces and
		// metrics line up on one timeline.
		if sp.obs.TraceEnabled() {
			if sp.tracks[i] == 0 {
				sp.tracks[i] = sp.obs.Track("metrics", sp.names[i])
			}
			sp.obs.CounterFloat(sp.tracks[i], now, v)
		}
	}
	if sp.onSample != nil {
		sp.onSample(now, sp.names, sp.row)
	}
	s.ScheduleDaemonArg(sp.interval, samplerTickEv, sp)
}

// Samples reports the number of recorded sampling rows.
func (o *Observer) Samples() int {
	if o == nil || o.sampler == nil {
		return 0
	}
	return len(o.sampler.times)
}

// SamplesDropped reports sampling ticks lost to the MaxSamples budget.
func (o *Observer) SamplesDropped() uint64 {
	if o == nil || o.sampler == nil {
		return 0
	}
	return o.sampler.dropped
}

// MetricsInterval reports the sampling period (0 when disabled).
func (o *Observer) MetricsInterval() sim.Tick {
	if o == nil || o.sampler == nil {
		return 0
	}
	return o.sampler.interval
}

// MetricNames returns the registered series names in column order.
func (o *Observer) MetricNames() []string {
	if o == nil || o.sampler == nil {
		return nil
	}
	return append([]string(nil), o.sampler.names...)
}

// MetricSeries returns the recorded samples of one series (nil if
// unknown).
func (o *Observer) MetricSeries(name string) []float64 {
	if o == nil || o.sampler == nil {
		return nil
	}
	for i, n := range o.sampler.names {
		if n == name {
			return append([]float64(nil), o.sampler.values[i]...)
		}
	}
	return nil
}

func fmtSample(v float64) string { return strconv.FormatFloat(v, 'g', 9, 64) }

// WriteMetricsCSV writes the sampled time series as CSV: a time_ns
// column followed by one column per registered gauge, in registration
// order.
func (o *Observer) WriteMetricsCSV(w io.Writer) error {
	if o == nil || o.sampler == nil {
		_, err := io.WriteString(w, "time_ns\n")
		return err
	}
	sp := o.sampler
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("time_ns")
	for _, n := range sp.names {
		bw.WriteString(",")
		bw.WriteString(n)
	}
	bw.WriteString("\n")
	for row, t := range sp.times {
		bw.WriteString(strconv.FormatFloat(t.Nanoseconds(), 'f', 3, 64))
		for i := range sp.names {
			bw.WriteString(",")
			bw.WriteString(fmtSample(sp.values[i][row]))
		}
		bw.WriteString("\n")
	}
	return bw.Flush()
}

// WriteMetricsJSON writes the same series as a column-oriented JSON
// object: {"interval_ns":..., "time_ns":[...], "series":{name:[...]}}.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if o == nil || o.sampler == nil {
		if _, err := bw.WriteString(`{"interval_ns":0,"time_ns":[],"series":{}}`); err != nil {
			return err
		}
		return bw.Flush()
	}
	sp := o.sampler
	fmt.Fprintf(bw, `{"interval_ns":%s,"time_ns":[`, strconv.FormatFloat(sp.interval.Nanoseconds(), 'f', -1, 64))
	for i, t := range sp.times {
		if i > 0 {
			bw.WriteString(",")
		}
		bw.WriteString(strconv.FormatFloat(t.Nanoseconds(), 'f', 3, 64))
	}
	bw.WriteString(`],"series":{`)
	for i, n := range sp.names {
		if i > 0 {
			bw.WriteString(",")
		}
		fmt.Fprintf(bw, "%s:[", strconv.Quote(n))
		for j, v := range sp.values[i] {
			if j > 0 {
				bw.WriteString(",")
			}
			bw.WriteString(fmtSample(v))
		}
		bw.WriteString("]")
	}
	if _, err := bw.WriteString("}}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
