package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"tdram/internal/sim"
)

// The Perfetto exporter emits the Chrome trace-event JSON format
// (https://ui.perfetto.dev loads it directly): an array of events with
// microsecond timestamps. Hardware resources map onto the format's
// process/thread hierarchy — a "process" is a device channel or a
// controller, a "thread" is one serial resource on it (the CA bus, the
// DQ bus, the HM bus, one bank) — so the timeline view reads exactly
// like the paper's Fig. 5-7 diagrams: commands on the CA track, bursts
// on the DQ track, results on the HM track, bank occupancy below.

// TrackID names one registered track. The zero value is invalid; hook
// sites obtain IDs from Observer.Track during wiring.
type TrackID int32

type track struct {
	process string
	name    string
	pid     int
	tid     int
	lastVal float64 // last emitted counter value (dedup)
	hasLast bool
}

type phase byte

const (
	phSlice   phase = 'X'
	phInstant phase = 'i'
	phCounter phase = 'C'
)

type traceEvent struct {
	track TrackID
	ph    phase
	name  string
	start sim.Tick
	dur   sim.Tick // slices only
	value float64  // counters only
}

// Trace is the Perfetto event buffer.
type Trace struct {
	tracks  []track
	pids    map[string]int
	nextTid map[int]int
	events  []traceEvent
	max     int
	dropped uint64
}

func newTrace(max int) *Trace {
	return &Trace{pids: make(map[string]int), nextTid: make(map[int]int), max: max}
}

// Track registers (or finds) the track named name under the given
// process group and returns its ID. Safe on a nil Observer, which
// returns 0 — hook sites may store the zero ID and later emission calls
// are no-ops because the observer itself is nil-checked first.
func (o *Observer) Track(process, name string) TrackID {
	if o == nil || o.trace == nil {
		return 0
	}
	t := o.trace
	for i := range t.tracks {
		if t.tracks[i].process == process && t.tracks[i].name == name {
			return TrackID(i + 1)
		}
	}
	pid, ok := t.pids[process]
	if !ok {
		pid = len(t.pids) + 1
		t.pids[process] = pid
	}
	t.nextTid[pid]++
	t.tracks = append(t.tracks, track{process: process, name: name, pid: pid, tid: t.nextTid[pid]})
	return TrackID(len(t.tracks))
}

func (t *Trace) push(e traceEvent) {
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Slice records a duration event [start, end) on a track.
func (o *Observer) Slice(tr TrackID, name string, start, end sim.Tick) {
	if o == nil || o.trace == nil || tr == 0 {
		return
	}
	if end < start {
		end = start
	}
	o.trace.push(traceEvent{track: tr, ph: phSlice, name: name, start: start, dur: end - start})
}

// Instant records a point event on a track.
func (o *Observer) Instant(tr TrackID, name string, at sim.Tick) {
	if o == nil || o.trace == nil || tr == 0 {
		return
	}
	o.trace.push(traceEvent{track: tr, ph: phInstant, name: name, start: at})
}

// CounterInt records a counter-track update; consecutive updates with an
// unchanged value are merged away, so hook sites may call this
// unconditionally on every scheduling pass.
func (o *Observer) CounterInt(tr TrackID, at sim.Tick, v int64) {
	o.CounterFloat(tr, at, float64(v))
}

// CounterFloat is CounterInt for fractional series.
func (o *Observer) CounterFloat(tr TrackID, at sim.Tick, v float64) {
	if o == nil || o.trace == nil || tr == 0 {
		return
	}
	t := &o.trace.tracks[tr-1]
	if t.hasLast && t.lastVal == v {
		return
	}
	t.lastVal, t.hasLast = v, true
	o.trace.push(traceEvent{track: tr, ph: phCounter, name: t.name, start: at, value: v})
}

// TraceEvents reports recorded and dropped event counts.
func (o *Observer) TraceEvents() (recorded int, dropped uint64) {
	if o == nil || o.trace == nil {
		return 0, 0
	}
	return len(o.trace.events), o.trace.dropped
}

// us renders a tick timestamp in microseconds, the trace-event format's
// time unit, at full picosecond precision.
func us(t sim.Tick) string {
	return strconv.FormatFloat(float64(t)/1e6, 'f', 6, 64)
}

// WriteTrace writes the recorded events as Chrome trace-event JSON. It
// is valid with zero events (an empty run still loads).
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil || o.trace == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ns"}`)
		return err
	}
	t := o.trace
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	// Metadata: process and thread names. Processes are emitted in pid
	// order (registration order), threads in track registration order,
	// so the file is deterministic for a deterministic run.
	procs := make([]string, len(t.pids)+1)
	for name, pid := range t.pids {
		procs[pid] = name
	}
	for pid := 1; pid < len(procs); pid++ {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, strconv.Quote(procs[pid])))
	}
	for _, tr := range t.tracks {
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			tr.pid, tr.tid, strconv.Quote(tr.name)))
	}
	for i := range t.events {
		e := &t.events[i]
		tr := &t.tracks[e.track-1]
		switch e.ph {
		case phSlice:
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%s,"dur":%s}`,
				tr.pid, tr.tid, strconv.Quote(e.name), us(e.start), us(e.dur)))
		case phInstant:
			emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"name":%s,"ts":%s,"s":"t"}`,
				tr.pid, tr.tid, strconv.Quote(e.name), us(e.start)))
		case phCounter:
			emit(fmt.Sprintf(`{"ph":"C","pid":%d,"name":%s,"ts":%s,"args":{"value":%s}}`,
				tr.pid, strconv.Quote(e.name), us(e.start),
				strconv.FormatFloat(e.value, 'g', -1, 64)))
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
