// Package obs is the observability subsystem: structured event tracing
// and time-series metrics for every layer of the simulator. It has three
// outputs:
//
//  1. a Chrome/Perfetto trace-event JSON exporter (perfetto.go) whose
//     tracks are the modeled hardware resources — channels, banks, the
//     CA/DQ/HM buses, controller queues — so any run regenerates the
//     paper's Fig. 5-7-style timing diagrams in ui.perfetto.dev;
//  2. a periodic time-series sampler (sampler.go) recording queue
//     depths, flush-buffer occupancy, bus utilization and miss ratio as
//     CSV or JSON for plotting;
//  3. run-summary counters (command mix, event volumes) that extend —
//     not replace — the scalar aggregates in internal/stats.
//
// Instrumentation follows a nil-check hook pattern: every instrumented
// component holds a *Observer that is nil when observability is off, so
// the disabled hot path costs a single predictable branch. All Observer
// methods are safe on a nil receiver. Observation must never perturb
// simulated timing: hooks only read model state and append to buffers,
// and the sampler runs on daemon events that cannot keep a simulation
// alive or reorder model events relative to each other.
package obs

import (
	"sort"

	"tdram/internal/sim"
)

// Config selects which outputs an Observer produces. The zero value
// disables everything.
type Config struct {
	// Trace records Perfetto trace events (slices, instants, counters).
	Trace bool
	// MetricsInterval, when positive, samples every registered gauge at
	// this period of simulated time.
	MetricsInterval sim.Tick
	// MaxTraceEvents bounds the trace buffer; once reached, further
	// events are dropped (and counted). Zero selects a generous default.
	MaxTraceEvents int
	// MaxSamples bounds the sampler rows. Zero selects a default.
	MaxSamples int
	// Journeys enables per-request phase attribution: every demand
	// carries a pooled ledger and completions feed per-class latency
	// histograms and phase sums.
	Journeys bool
	// FlightRecorder, when positive, keeps a bounded ring of the most
	// recent completed journeys and issued DRAM commands for post-mortem
	// dumps (watchdog trips, uncorrectable faults, set retirement).
	// Implies journey tracking.
	FlightRecorder int

	// OnSample, when non-nil, receives every recorded sampler row as it
	// is captured: the simulated time plus one value per registered gauge
	// (names and values share indices; both slices are reused between
	// calls and must not be retained). It only fires when MetricsInterval
	// is positive, from the goroutine driving the simulation. tdserve
	// streams in-run progress to its clients from this hook; like every
	// observer output it is purely observational — the sampled run's
	// results are bit-identical with and without it.
	OnSample func(t sim.Tick, names []string, values []float64)
}

// Enabled reports whether any output is requested.
func (c Config) Enabled() bool {
	return c.Trace || c.MetricsInterval > 0 || c.Journeys || c.FlightRecorder > 0
}

// Observer collects trace events, time-series samples and summary
// counters from instrumented components. A nil *Observer is the disabled
// subsystem: every method nil-checks the receiver.
type Observer struct {
	sim      *sim.Simulator
	trace    *Trace
	sampler  *Sampler
	journeys *JourneyLog
	flight   *FlightRecorder
	counters map[string]uint64
}

// New builds an Observer on simulator s. Components are attached
// afterwards via their SetObserver methods; the sampler starts its
// daemon schedule immediately (the first sample fires one interval in).
func New(s *sim.Simulator, cfg Config) *Observer {
	o := &Observer{sim: s, counters: make(map[string]uint64)}
	if cfg.Trace {
		max := cfg.MaxTraceEvents
		if max <= 0 {
			max = 1 << 21
		}
		o.trace = newTrace(max)
	}
	if cfg.MetricsInterval > 0 {
		max := cfg.MaxSamples
		if max <= 0 {
			max = 1 << 20
		}
		o.sampler = newSampler(o, cfg.MetricsInterval, max)
		o.sampler.onSample = cfg.OnSample
		o.sampler.start(s)
	}
	if cfg.Journeys || cfg.FlightRecorder > 0 {
		o.journeys = newJourneyLog()
	}
	if cfg.FlightRecorder > 0 {
		o.flight = newFlightRecorder(cfg.FlightRecorder)
	}
	// Kernel wiring: the event kernel's own health is the first thing a
	// stall investigation needs.
	o.Gauge("kernel.pending_events", func() float64 { return float64(s.Pending()) })
	var lastFired uint64
	o.Gauge("kernel.events_fired", func() float64 {
		f := s.Fired()
		d := f - lastFired
		lastFired = f
		return float64(d)
	})
	return o
}

// Now reports the current simulated time (0 on a nil Observer).
func (o *Observer) Now() sim.Tick {
	if o == nil || o.sim == nil {
		return 0
	}
	return o.sim.Now()
}

// TraceEnabled reports whether Perfetto events are being recorded. Hook
// sites that build event arguments guard on this to keep the disabled
// path to one branch.
func (o *Observer) TraceEnabled() bool { return o != nil && o.trace != nil }

// MetricsEnabled reports whether the periodic sampler is running.
func (o *Observer) MetricsEnabled() bool { return o != nil && o.sampler != nil }

// JourneysEnabled reports whether per-request journey attribution is on.
func (o *Observer) JourneysEnabled() bool { return o != nil && o.journeys != nil }

// FlightEnabled reports whether the flight recorder is running.
func (o *Observer) FlightEnabled() bool { return o != nil && o.flight != nil }

// Inc bumps a run-summary counter by one.
func (o *Observer) Inc(name string) {
	if o == nil {
		return
	}
	o.counters[name]++
}

// Count adds delta to a run-summary counter.
func (o *Observer) Count(name string, delta uint64) {
	if o == nil {
		return
	}
	o.counters[name] += delta
}

// Counter is one named run-summary tally.
type Counter struct {
	Name  string
	Value uint64
}

// Counters returns the run-summary counters sorted by name, so output is
// deterministic. Dropped observability data — trace events past
// MaxTraceEvents, sampler rows past MaxSamples — surfaces here as
// synthetic obs.trace_dropped / obs.samples_dropped counters, so
// truncated outputs are never mistaken for complete ones.
func (o *Observer) Counters() []Counter {
	if o == nil {
		return nil
	}
	cs := make([]Counter, 0, len(o.counters)+2)
	for n, v := range o.counters {
		cs = append(cs, Counter{Name: n, Value: v})
	}
	if _, dropped := o.TraceEvents(); dropped > 0 {
		cs = append(cs, Counter{Name: "obs.trace_dropped", Value: dropped})
	}
	if dropped := o.SamplesDropped(); dropped > 0 {
		cs = append(cs, Counter{Name: "obs.samples_dropped", Value: dropped})
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].Name < cs[j].Name })
	return cs
}

// Gauge registers a sampled time series. fn is called once per sampling
// interval and must only read model state. Registration order fixes the
// CSV column order; without a sampler the registration is dropped.
func (o *Observer) Gauge(name string, fn func() float64) {
	if o == nil || o.sampler == nil {
		return
	}
	o.sampler.add(name, fn)
}
