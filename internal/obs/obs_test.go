package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// chromeEvent mirrors the trace-event JSON fields the exporter writes,
// for round-trip checking.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Name string  `json:"name"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	S    string  `json:"s"`
	Args map[string]any
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func TestNilObserverIsSafe(t *testing.T) {
	var o *Observer
	if o.TraceEnabled() || o.MetricsEnabled() {
		t.Error("nil observer claims to be enabled")
	}
	tr := o.Track("p", "t")
	if tr != 0 {
		t.Errorf("nil Track = %d", tr)
	}
	o.Slice(tr, "x", 0, 10)
	o.Instant(tr, "x", 0)
	o.CounterInt(tr, 0, 1)
	o.Inc("c")
	o.Count("c", 3)
	o.Gauge("g", func() float64 { return 0 })
	if cs := o.Counters(); cs != nil {
		t.Errorf("nil Counters = %v", cs)
	}
	if o.JourneysEnabled() || o.FlightEnabled() {
		t.Error("nil observer claims journeys/flight enabled")
	}
	if j := o.StartJourney(0, 0, false); j != nil {
		t.Errorf("nil StartJourney = %v", j)
	}
	o.FinishJourney(nil, 0)
	o.AbandonJourney(nil)
	o.ResetJourneys()
	if n := o.JourneyClassCount(mem.ClassReadHit); n != 0 {
		t.Errorf("nil JourneyClassCount = %d", n)
	}
	if h := o.JourneyClassHist(mem.ClassReadHit); h != nil {
		t.Errorf("nil JourneyClassHist = %v", h)
	}
	if d := o.JourneyPhaseSum(mem.ClassReadHit, mem.PhaseTagCheck); d != 0 {
		t.Errorf("nil JourneyPhaseSum = %v", d)
	}
	o.FlightCommand("u", "Rd", 0, 0, 0)
	o.FlightSnapshot("r")
	if d := o.FlightDepth(); d != 0 {
		t.Errorf("nil FlightDepth = %d", d)
	}
	if s := o.FlightDump(); s != "" {
		t.Errorf("nil FlightDump = %q", s)
	}
	if ss := o.FlightSnapshots(); ss != nil {
		t.Errorf("nil FlightSnapshots = %v", ss)
	}
	if n := o.SamplesDropped(); n != 0 {
		t.Errorf("nil SamplesDropped = %d", n)
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("nil-observer trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Errorf("nil-observer trace has %d events", len(ct.TraceEvents))
	}
}

func TestPerfettoRoundTrip(t *testing.T) {
	s := sim.New()
	o := New(s, Config{Trace: true})
	ca := o.Track("dev.ch0", "ca")
	dq := o.Track("dev.ch0", "dq")
	ev := o.Track("ctl.ch0", "events")
	if ca == dq || ca == 0 || ev == 0 {
		t.Fatalf("track ids: ca=%d dq=%d ev=%d", ca, dq, ev)
	}
	if again := o.Track("dev.ch0", "ca"); again != ca {
		t.Errorf("re-registering returned %d, want %d", again, ca)
	}

	o.Slice(ca, "ActRd", 1500, 2500) // 1.5ns..2.5ns
	o.Slice(dq, "ActRd", 31_500_000, 33_000_000)
	o.Instant(ev, "HM-result read-hit", 16_000_000)
	o.CounterInt(ev, 0, 3)
	o.CounterInt(ev, 1000, 3) // deduped
	o.CounterInt(ev, 2000, 5)

	if n, dropped := o.TraceEvents(); n != 5 || dropped != 0 {
		t.Fatalf("TraceEvents = %d recorded, %d dropped; want 5, 0", n, dropped)
	}

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &ct); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}

	byPhase := map[string][]chromeEvent{}
	for _, e := range ct.TraceEvents {
		byPhase[e.Ph] = append(byPhase[e.Ph], e)
	}
	// Metadata: 2 process names + 3 thread names.
	if got := len(byPhase["M"]); got != 5 {
		t.Errorf("metadata events = %d, want 5", got)
	}
	if got := len(byPhase["X"]); got != 2 {
		t.Errorf("slices = %d, want 2", got)
	}
	if got := len(byPhase["i"]); got != 1 {
		t.Errorf("instants = %d, want 1", got)
	}
	if got := len(byPhase["C"]); got != 2 {
		t.Errorf("counter events = %d, want 2 (dedup)", got)
	}

	sl := byPhase["X"][0]
	if sl.Name != "ActRd" || sl.Ts != 0.0015 || sl.Dur != 0.001 {
		t.Errorf("slice round-trip: name=%q ts=%v dur=%v", sl.Name, sl.Ts, sl.Dur)
	}
	in := byPhase["i"][0]
	if in.Name != "HM-result read-hit" || in.Ts != 16 {
		t.Errorf("instant round-trip: name=%q ts=%v", in.Name, in.Ts)
	}
	if v := byPhase["C"][1].Args["value"]; v != 5.0 {
		t.Errorf("counter value = %v, want 5", v)
	}
	// Slices on different processes carry different pids.
	if byPhase["X"][0].Pid == byPhase["i"][0].Pid {
		t.Error("distinct processes share a pid")
	}
}

func TestTraceBufferCap(t *testing.T) {
	s := sim.New()
	o := New(s, Config{Trace: true, MaxTraceEvents: 3})
	tr := o.Track("p", "t")
	for i := 0; i < 10; i++ {
		o.Instant(tr, "e", sim.Tick(i))
	}
	n, dropped := o.TraceEvents()
	if n != 3 || dropped != 7 {
		t.Errorf("recorded=%d dropped=%d, want 3, 7", n, dropped)
	}
}

func TestCounters(t *testing.T) {
	s := sim.New()
	o := New(s, Config{Trace: true})
	o.Inc("b")
	o.Inc("a")
	o.Count("b", 4)
	cs := o.Counters()
	if len(cs) != 2 || cs[0].Name != "a" || cs[0].Value != 1 || cs[1].Name != "b" || cs[1].Value != 5 {
		t.Errorf("Counters = %v", cs)
	}
}

// runSampled builds an observer with a sampler, registers gauges, and
// runs the simulation for the given span of simulated time.
func runSampled(t *testing.T, interval, span sim.Tick, gauges map[string]func() float64) *Observer {
	t.Helper()
	s := sim.New()
	o := New(s, Config{MetricsInterval: interval})
	for name, fn := range gauges {
		o.Gauge(name, fn)
	}
	s.Run(span)
	return o
}

func TestSamplerSeries(t *testing.T) {
	v := 0.0
	o := runSampled(t, 1000, 5500, map[string]func() float64{
		"ramp": func() float64 { v += 1; return v },
	})
	if o.Samples() != 5 {
		t.Fatalf("samples = %d, want 5", o.Samples())
	}
	got := o.MetricSeries("ramp")
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
	if o.MetricSeries("missing") != nil {
		t.Error("unknown series is non-nil")
	}
	names := o.MetricNames()
	// Kernel gauges register first, then ours.
	if len(names) != 3 || names[2] != "ramp" {
		t.Errorf("names = %v", names)
	}
}

func TestMetricsCSVRoundTrip(t *testing.T) {
	v := 0.0
	o := runSampled(t, 1000, 3500, map[string]func() float64{
		"x": func() float64 { v += 0.5; return v },
	})
	var buf bytes.Buffer
	if err := o.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d, want 4:\n%s", len(lines), buf.String())
	}
	if lines[0] != "time_ns,kernel.pending_events,kernel.events_fired,x" {
		t.Errorf("header = %q", lines[0])
	}
	row := strings.Split(lines[2], ",")
	if row[0] != "2.000" || row[len(row)-1] != "1" {
		t.Errorf("second row = %v", row)
	}
}

func TestMetricsJSONRoundTrip(t *testing.T) {
	v := 0.0
	o := runSampled(t, 2000, 6500, map[string]func() float64{
		"q": func() float64 { v += 2; return v },
	})
	var buf bytes.Buffer
	if err := o.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		IntervalNS float64              `json:"interval_ns"`
		TimeNS     []float64            `json:"time_ns"`
		Series     map[string][]float64 `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if got.IntervalNS != 2 {
		t.Errorf("interval_ns = %v", got.IntervalNS)
	}
	if len(got.TimeNS) != 3 || got.TimeNS[1] != 4 {
		t.Errorf("time_ns = %v", got.TimeNS)
	}
	if q := got.Series["q"]; len(q) != 3 || q[0] != 2 || q[2] != 6 {
		t.Errorf("series q = %v", got.Series["q"])
	}
}

func TestSamplerMaxSamples(t *testing.T) {
	s := sim.New()
	o := New(s, Config{MetricsInterval: 1000, MaxSamples: 4})
	s.Run(50_000)
	if o.Samples() != 4 {
		t.Errorf("samples = %d, want max 4", o.Samples())
	}
}

func TestJourneyLifecycle(t *testing.T) {
	s := sim.New()
	o := New(s, Config{Journeys: true})
	if !o.JourneysEnabled() || o.FlightEnabled() {
		t.Fatal("Journeys config should enable journeys only")
	}
	j := o.StartJourney(2, 0x40, false)
	if j == nil {
		t.Fatal("StartJourney = nil with journeys enabled")
	}
	if j.ID != 1 || j.Core != 2 || j.Line != 0x40 {
		t.Errorf("journey fields: %+v", j)
	}
	j.Exit(mem.PhaseCoreQueue, 10)
	j.Span(mem.PhaseTagCheck, 5)
	j.Note(mem.ReadHit)
	o.FinishJourney(j, 100)

	if n := o.JourneyClassCount(mem.ClassReadHit); n != 1 {
		t.Errorf("read-hit count = %d, want 1", n)
	}
	if h := o.JourneyClassHist(mem.ClassReadHit); h.N() != 1 || h.Max() != 100 {
		t.Errorf("read-hit hist n=%d max=%v", h.N(), h.Max())
	}
	if d := o.JourneyPhaseSum(mem.ClassReadHit, mem.PhaseTagCheck); d != 5 {
		t.Errorf("tag-check phase sum = %v, want 5", d)
	}

	// The pool recycles the finished ledger: the next start must reuse
	// the same allocation, fully reset.
	j2 := o.StartJourney(0, 0x80, true)
	if j2 != j {
		t.Error("finished journey was not recycled through the pool")
	}
	if j2.ID != 2 || !j2.Write || j2.Outcome != 0 || j2.Phases[mem.PhaseTagCheck] != 0 {
		t.Errorf("recycled journey not reset: %+v", j2)
	}
	o.AbandonJourney(j2)
	if n := o.JourneyClassCount(mem.ClassWrite); n != 0 {
		t.Errorf("abandoned journey was aggregated: count=%d", n)
	}

	o.ResetJourneys()
	if n := o.JourneyClassCount(mem.ClassReadHit); n != 0 {
		t.Errorf("count after reset = %d", n)
	}
	if h := o.JourneyClassHist(mem.ClassReadHit); h.N() != 0 {
		t.Errorf("hist after reset: n=%d", h.N())
	}
}

func TestFlightRecorderRings(t *testing.T) {
	s := sim.New()
	o := New(s, Config{FlightRecorder: 4})
	if !o.FlightEnabled() || !o.JourneysEnabled() {
		t.Fatal("FlightRecorder config should imply journeys")
	}
	if d := o.FlightDepth(); d != 4 {
		t.Fatalf("FlightDepth = %d, want 4", d)
	}
	for i := 0; i < 10; i++ {
		j := o.StartJourney(0, uint64(i), false)
		j.Note(mem.ReadHit)
		o.FinishJourney(j, sim.Tick(10*(i+1)))
	}
	for i := 0; i < 300; i++ {
		o.FlightCommand("dev.ch0", "ActRd", i%16, i, sim.Tick(i))
	}
	dump := o.FlightDump()
	if !strings.Contains(dump, "4/4 journeys (10 total)") {
		t.Errorf("journey ring header wrong:\n%s", dump)
	}
	if !strings.Contains(dump, "64/64 commands (300 total)") {
		t.Errorf("command ring header wrong:\n%s", dump)
	}
	// Oldest-first: the surviving journeys are ids 7..10.
	if !strings.Contains(dump, "id=7") || strings.Contains(dump, "id=6 ") {
		t.Errorf("ring retention wrong:\n%s", dump)
	}
	// Oldest surviving command is #236 (300-64).
	if !strings.Contains(dump, "row=236") || strings.Contains(dump, "row=235 ") {
		t.Errorf("command retention wrong:\n%s", dump)
	}

	for i := 0; i < 12; i++ {
		o.FlightSnapshot("reason")
	}
	snaps := o.FlightSnapshots()
	if len(snaps) != 8 {
		t.Fatalf("snapshots = %d, want capped at 8", len(snaps))
	}
	if !strings.Contains(snaps[0], "=== flight snapshot") || !strings.Contains(snaps[0], "reason") {
		t.Errorf("snapshot header: %q", snaps[0])
	}
	// Dropped snapshots surface inside later dumps.
	if !strings.Contains(o.FlightDump(), "4 earlier snapshots dropped") {
		t.Errorf("snapshot drop count missing:\n%s", o.FlightDump())
	}
}

func TestSamplerDroppedCounter(t *testing.T) {
	s := sim.New()
	o := New(s, Config{MetricsInterval: 1000, MaxSamples: 4})
	s.Run(50_000)
	if o.Samples() != 4 {
		t.Fatalf("samples = %d, want 4", o.Samples())
	}
	if o.SamplesDropped() == 0 {
		t.Error("over-budget sampling reported no drops")
	}
	// The synthetic counter surfaces the drops in Counters().
	found := false
	for _, c := range o.Counters() {
		if c.Name == "obs.samples_dropped" && c.Value == o.SamplesDropped() {
			found = true
		}
	}
	if !found {
		t.Errorf("obs.samples_dropped missing from Counters: %v", o.Counters())
	}
}

func TestSamplerMirrorsCountersIntoTrace(t *testing.T) {
	s := sim.New()
	o := New(s, Config{Trace: true, MetricsInterval: 1000})
	o.Gauge("depth", func() float64 { return 7 })
	s.Run(3500)
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"depth"`) {
		t.Errorf("trace lacks mirrored counter track:\n%s", buf.String())
	}
}

// TestSamplerOnSample: the streaming hook receives every captured row —
// time plus one value per gauge, gauge order — and the sampled series
// are unchanged by its presence (the hook observes the same values the
// sampler stores).
func TestSamplerOnSample(t *testing.T) {
	s := sim.New()
	type row struct {
		t      sim.Tick
		values map[string]float64
	}
	var rows []row
	o := New(s, Config{
		MetricsInterval: 1000,
		OnSample: func(tk sim.Tick, names []string, values []float64) {
			if len(names) != len(values) {
				t.Fatalf("names/values length mismatch: %d vs %d", len(names), len(values))
			}
			r := row{t: tk, values: make(map[string]float64, len(names))}
			for i, n := range names {
				r.values[n] = values[i]
			}
			rows = append(rows, r)
		},
	})
	v := 0.0
	o.Gauge("ramp", func() float64 { v += 1; return v })
	s.Run(3500)

	if len(rows) != 3 {
		t.Fatalf("hook fired %d times, want 3", len(rows))
	}
	for i, r := range rows {
		if want := sim.Tick(1000 * (i + 1)); r.t != want {
			t.Errorf("row %d at %v, want %v", i, r.t, want)
		}
		if got := r.values["ramp"]; got != float64(i+1) {
			t.Errorf("row %d ramp = %v, want %d", i, got, i+1)
		}
	}
	// The stored series saw the identical values.
	if got := o.MetricSeries("ramp"); len(got) != 3 || got[2] != 3 {
		t.Errorf("stored series = %v", got)
	}
}
