package obs

import (
	"fmt"
	"strings"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// flightCmd is one issued DRAM command in the flight ring.
type flightCmd struct {
	when sim.Tick
	unit string // precomputed "<device>.chN" — never built on the hot path
	op   string // static mnemonic
	bank int
	row  int
}

// FlightRecorder keeps bounded rings of the most recent completed
// request journeys and issued DRAM commands. Recording is allocation
// free — both rings are pre-sized, journeys are copied by value, and
// the unit/op strings are precomputed statics — so an armed recorder
// never perturbs timing. When a watchdog trip, uncorrectable fault or
// set retirement fires, the rings are rendered into a snapshot: the
// last thing the machine did before it went wrong.
type FlightRecorder struct {
	journeys []mem.Journey // ring, valid entries [0, jn)
	jHead    int
	jn       int
	jTotal   uint64

	cmds   []flightCmd
	cHead  int
	cn     int
	cTotal uint64

	snapshots    []string
	snapshotsCap int
	snapsDropped uint64
}

// flightCmdFactor sizes the command ring as a multiple of the journey
// depth: one journey spans several device commands.
const flightCmdFactor = 4

func newFlightRecorder(depth int) *FlightRecorder {
	cmdDepth := depth * flightCmdFactor
	if cmdDepth < 64 {
		cmdDepth = 64
	}
	return &FlightRecorder{
		journeys:     make([]mem.Journey, depth),
		cmds:         make([]flightCmd, cmdDepth),
		snapshotsCap: 8,
	}
}

func (f *FlightRecorder) recordJourney(j *mem.Journey) {
	slot := &f.journeys[f.jHead]
	*slot = *j // value copy; the ring never follows the freelist link
	f.jHead = (f.jHead + 1) % len(f.journeys)
	if f.jn < len(f.journeys) {
		f.jn++
	}
	f.jTotal++
}

func (f *FlightRecorder) record(unit, op string, bank, row int, at sim.Tick) {
	slot := &f.cmds[f.cHead]
	slot.when, slot.unit, slot.op, slot.bank, slot.row = at, unit, op, bank, row
	f.cHead = (f.cHead + 1) % len(f.cmds)
	if f.cn < len(f.cmds) {
		f.cn++
	}
	f.cTotal++
}

// FlightCommand records one issued DRAM command. unit and op must be
// precomputed/static strings (the device caches its "<name>.chN" label).
func (o *Observer) FlightCommand(unit, op string, bank, row int, at sim.Tick) {
	if o == nil || o.flight == nil {
		return
	}
	o.flight.record(unit, op, bank, row, at)
}

// FlightDepth reports the journey-ring capacity (0 when disabled).
func (o *Observer) FlightDepth() int {
	if o == nil || o.flight == nil {
		return 0
	}
	return len(o.flight.journeys)
}

// FlightDump renders the recorder's current rings, oldest entry first.
func (o *Observer) FlightDump() string {
	if o == nil || o.flight == nil {
		return ""
	}
	return o.flight.dump()
}

// FlightSnapshot renders the rings under a reason header and retains the
// result (bounded; rare crash-path usage, so allocation is fine here).
func (o *Observer) FlightSnapshot(reason string) {
	if o == nil || o.flight == nil {
		return
	}
	f := o.flight
	if len(f.snapshots) >= f.snapshotsCap {
		f.snapsDropped++
		return
	}
	f.snapshots = append(f.snapshots, fmt.Sprintf("=== flight snapshot @%v: %s ===\n%s", o.sim.Now(), reason, f.dump()))
}

// FlightSnapshots returns the retained snapshots in capture order.
func (o *Observer) FlightSnapshots() []string {
	if o == nil || o.flight == nil {
		return nil
	}
	return append([]string(nil), o.flight.snapshots...)
}

func (f *FlightRecorder) dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "flight recorder: %d/%d journeys (%d total), %d/%d commands (%d total)\n",
		f.jn, len(f.journeys), f.jTotal, f.cn, len(f.cmds), f.cTotal)
	for i := 0; i < f.cn; i++ {
		c := &f.cmds[(f.cHead-f.cn+i+len(f.cmds))%len(f.cmds)]
		fmt.Fprintf(&b, "  cmd  %-18s %-6s bank=%-2d row=%-5d at=%v\n", c.unit, c.op, c.bank, c.row, c.when)
	}
	for i := 0; i < f.jn; i++ {
		j := &f.journeys[(f.jHead-f.jn+i+len(f.journeys))%len(f.journeys)]
		fmt.Fprintf(&b, "  jrny id=%-6d core=%d line=%#x class=%-10s total=%v [", j.ID, j.Core, j.Line, j.Class(), j.Total())
		first := true
		for p := 0; p < mem.NumPhases; p++ {
			if d := j.Phases[p]; d > 0 {
				if !first {
					b.WriteString(" ")
				}
				first = false
				fmt.Fprintf(&b, "%s=%v", mem.Phase(p), d)
			}
		}
		b.WriteString("]\n")
	}
	if f.snapsDropped > 0 {
		fmt.Fprintf(&b, "  (%d earlier snapshots dropped)\n", f.snapsDropped)
	}
	return strings.TrimRight(b.String(), "\n")
}
