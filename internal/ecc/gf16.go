// Package ecc implements the error-correction codes the paper's §III-C3
// describes for TDRAM: tags and data carry *separate* ECC, analyzed and
// corrected by on-DRAM-die circuitry. The 16 bits of tag+metadata (14-bit
// tag + valid + dirty for a 1 PB space over a 64 GiB cache) leave 8 bits
// of check storage, which the paper suggests spending on a symbol-based
// Reed-Solomon code — implemented here as RS(6,4) over GF(16): four 4-bit
// data symbols, two check symbols, correcting any single-symbol error
// (any error burst confined to one 4-bit nibble). Data beats use the
// classic SECDED Hamming(72,64).
package ecc

// GF(16) arithmetic with the primitive polynomial x^4 + x + 1 (0x13).
// The field is tiny, so log/antilog tables are built at init.

const (
	gfSize  = 16
	gfPrim  = 0x13 // x^4 + x + 1
	gfAlpha = 2    // generator element
)

var (
	gfExp [2 * gfSize]byte // alpha^i, doubled to avoid mod in mul
	gfLog [gfSize]byte     // log_alpha(x), undefined for 0
)

func init() {
	x := byte(1)
	for i := 0; i < gfSize-1; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x10 != 0 {
			x ^= gfPrim
		}
	}
	for i := gfSize - 1; i < len(gfExp); i++ {
		gfExp[i] = gfExp[i-(gfSize-1)]
	}
}

// gfMul multiplies two GF(16) elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b != 0).
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(16)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+gfSize-1-int(gfLog[b])]
}

// gfPow raises alpha to the given power.
func gfPow(n int) byte {
	n %= gfSize - 1
	if n < 0 {
		n += gfSize - 1
	}
	return gfExp[n]
}
