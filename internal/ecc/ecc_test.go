package ecc

import (
	"testing"
	"testing/quick"
)

func TestGF16Axioms(t *testing.T) {
	// Multiplication agrees with the log tables and is a field: every
	// nonzero element has an inverse, and a*(b+c) = a*b + a*c.
	for a := byte(1); a < 16; a++ {
		inv := gfDiv(1, a)
		if gfMul(a, inv) != 1 {
			t.Fatalf("%x * %x != 1", a, inv)
		}
	}
	for a := byte(0); a < 16; a++ {
		for b := byte(0); b < 16; b++ {
			for c := byte(0); c < 16; c++ {
				if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
					t.Fatalf("distributivity fails at %x,%x,%x", a, b, c)
				}
			}
		}
	}
	if gfPow(0) != 1 || gfPow(15) != 1 || gfPow(-1) != gfPow(14) {
		t.Error("gfPow cycle wrong")
	}
}

func TestGF16DivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	gfDiv(3, 0)
}

func TestTagCheckBudget(t *testing.T) {
	// §III-C5: 16 bits of tag+metadata leave exactly 8 bits for ECC.
	if TagCheckBits() != 8 {
		t.Errorf("check bits = %d, want 8", TagCheckBits())
	}
}

func TestTagRoundTripClean(t *testing.T) {
	for _, w := range []uint16{0, 1, 0xFFFF, 0xA5C3, 0x8000} {
		cw := EncodeTag(w)
		got, corrected, err := DecodeTag(cw)
		if err != nil || corrected || got != w {
			t.Errorf("word %#x: got %#x corrected=%v err=%v", w, got, corrected, err)
		}
	}
}

// Exhaustive: every single-symbol error in every position of many
// codewords is corrected (the RS(6,4) single-symbol guarantee).
func TestTagCorrectsEverySingleSymbolError(t *testing.T) {
	words := []uint16{0, 0xFFFF, 0x1234, 0xDEAD, 0x5555, 0xAAAA}
	for _, w := range words {
		clean := EncodeTag(w)
		for pos := 0; pos < TagCodewordSymbols; pos++ {
			for e := byte(1); e < 16; e++ {
				cw := clean
				cw[pos] ^= e
				got, corrected, err := DecodeTag(cw)
				if err != nil {
					t.Fatalf("word %#x pos %d err %x: %v", w, pos, e, err)
				}
				if !corrected || got != w {
					t.Fatalf("word %#x pos %d err %x: got %#x corrected=%v", w, pos, e, got, corrected)
				}
			}
		}
	}
}

// Property: random words survive random single-symbol corruption.
func TestTagSingleErrorProperty(t *testing.T) {
	f := func(w uint16, pos, e uint8) bool {
		cw := EncodeTag(w)
		cw[int(pos)%TagCodewordSymbols] ^= (e%15 + 1) & 0xF
		got, _, err := DecodeTag(cw)
		return err == nil && got == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTagDetectsManyDoubleErrors(t *testing.T) {
	// Two corrupted symbols exceed RS(6,4)'s correction power: the
	// decoder must either flag the codeword or (unavoidably for some
	// patterns) miscorrect — it must never silently return the original
	// word as "clean".
	clean := EncodeTag(0x1234)
	flagged, miscorrected := 0, 0
	for p1 := 0; p1 < TagCodewordSymbols; p1++ {
		for p2 := p1 + 1; p2 < TagCodewordSymbols; p2++ {
			cw := clean
			cw[p1] ^= 0x5
			cw[p2] ^= 0xA
			got, corrected, err := DecodeTag(cw)
			switch {
			case err != nil:
				flagged++
			case corrected && got != 0x1234:
				miscorrected++
			case !corrected:
				t.Fatalf("double error at %d,%d reported clean", p1, p2)
			case got == 0x1234:
				t.Fatalf("double error at %d,%d silently healed", p1, p2)
			}
		}
	}
	if flagged == 0 {
		t.Error("no double error was ever flagged")
	}
	t.Logf("double errors: %d flagged, %d miscorrected (expected for a distance-3 code)", flagged, miscorrected)
}

func TestDataRoundTripClean(t *testing.T) {
	for _, d := range []uint64{0, ^uint64(0), 0xDEADBEEFCAFEF00D, 1} {
		cw := EncodeData(d)
		got, corrected, err := DecodeData(cw)
		if err != nil || corrected || got != d {
			t.Errorf("data %#x: got %#x corrected=%v err=%v", d, got, corrected, err)
		}
	}
}

func TestDataCorrectsEverySingleBit(t *testing.T) {
	const d = uint64(0x0123456789ABCDEF)
	for i := 0; i < 64; i++ {
		cw := EncodeData(d)
		cw.FlipDataBit(i)
		got, corrected, err := DecodeData(cw)
		if err != nil || !corrected || got != d {
			t.Fatalf("data bit %d: got %#x corrected=%v err=%v", i, got, corrected, err)
		}
	}
	for i := 0; i < 7; i++ {
		cw := EncodeData(d)
		cw.FlipCheckBit(i)
		got, corrected, err := DecodeData(cw)
		if err != nil || !corrected || got != d {
			t.Fatalf("check bit %d: got %#x corrected=%v err=%v", i, got, corrected, err)
		}
	}
	cw := EncodeData(d)
	cw.FlipParity()
	if got, corrected, err := DecodeData(cw); err != nil || !corrected || got != d {
		t.Fatalf("parity flip: got %#x corrected=%v err=%v", got, corrected, err)
	}
}

func TestDataDetectsDoubleBit(t *testing.T) {
	const d = uint64(0xFEEDFACE12345678)
	pairs := [][2]int{{0, 1}, {3, 40}, {62, 63}, {7, 13}}
	for _, p := range pairs {
		cw := EncodeData(d)
		cw.FlipDataBit(p[0])
		cw.FlipDataBit(p[1])
		if _, _, err := DecodeData(cw); err == nil {
			t.Errorf("double flip %v undetected", p)
		}
	}
}

// Property: random single-bit corruption anywhere always corrects.
func TestDataSingleErrorProperty(t *testing.T) {
	f := func(d uint64, which uint8) bool {
		cw := EncodeData(d)
		switch pos := int(which) % 72; {
		case pos < 64:
			cw.FlipDataBit(pos)
		case pos < 71:
			cw.FlipCheckBit(pos - 64)
		default:
			cw.FlipParity()
		}
		got, corrected, err := DecodeData(cw)
		return err == nil && corrected && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeTag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodeTag(uint16(i))
	}
}

func BenchmarkDecodeTagCorrupted(b *testing.B) {
	cw := EncodeTag(0xBEEF)
	cw[3] ^= 0x7
	for i := 0; i < b.N; i++ {
		DecodeTag(cw)
	}
}

func BenchmarkEncodeData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		EncodeData(uint64(i) * 0x9E3779B97F4A7C15)
	}
}
