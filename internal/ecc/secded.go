package ecc

import "fmt"

// Data-beat protection: the classic SECDED Hamming(72,64) used
// throughout DRAM practice — 64 data bits, 7 Hamming check bits and one
// overall parity bit. Single-bit errors are corrected, double-bit errors
// detected (the baseline HBM3 behaviour the paper keeps for data).

// DataCodeword is one protected 64-bit beat.
type DataCodeword struct {
	Data   uint64
	Check  byte // 7 Hamming check bits (bit i covers positions with bit i set)
	Parity byte // overall parity over data+check
}

// dataPositions maps each of the 64 data bits to its Hamming position
// (1..72, skipping the power-of-two slots that hold check bits).
var dataPositions [64]uint8

func init() {
	pos := uint8(1)
	for i := 0; i < 64; i++ {
		for pos&(pos-1) == 0 { // skip powers of two (check-bit slots)
			pos++
		}
		dataPositions[i] = pos
		pos++
	}
}

// hammingChecks computes the 7 check bits over the data bits.
func hammingChecks(data uint64) byte {
	var check byte
	for i := 0; i < 64; i++ {
		if data&(1<<uint(i)) != 0 {
			check ^= dataPositions[i]
		}
	}
	return check & 0x7F
}

// parity64 reduces a word to one parity bit.
func parity64(v uint64) byte {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}

// EncodeData protects one 64-bit beat.
func EncodeData(data uint64) DataCodeword {
	check := hammingChecks(data)
	var cb byte
	for i := 0; i < 7; i++ {
		cb ^= (check >> uint(i)) & 1
	}
	return DataCodeword{
		Data:   data,
		Check:  check,
		Parity: parity64(data) ^ cb,
	}
}

// FlipDataBit flips one data bit (error injection).
func (c *DataCodeword) FlipDataBit(i int) { c.Data ^= 1 << uint(i) }

// FlipCheckBit flips one check bit (error injection).
func (c *DataCodeword) FlipCheckBit(i int) { c.Check ^= 1 << uint(i) }

// FlipParity flips the overall parity bit (error injection).
func (c *DataCodeword) FlipParity() { c.Parity ^= 1 }

// DecodeData corrects a single-bit error and detects double-bit errors.
func DecodeData(c DataCodeword) (data uint64, corrected bool, err error) {
	syndrome := (hammingChecks(c.Data) ^ c.Check) & 0x7F
	var cb byte
	for i := 0; i < 7; i++ {
		cb ^= (c.Check >> uint(i)) & 1
	}
	parityErr := (parity64(c.Data) ^ cb ^ c.Parity) & 1

	switch {
	case syndrome == 0 && parityErr == 0:
		return c.Data, false, nil
	case syndrome == 0 && parityErr == 1:
		// The overall parity bit itself flipped.
		return c.Data, true, nil
	case parityErr == 0:
		// Nonzero syndrome with even overall parity: two bits flipped.
		return c.Data, false, fmt.Errorf("ecc: double-bit error detected (syndrome %#x)", syndrome)
	}
	// Single-bit error at Hamming position `syndrome`.
	if syndrome&(syndrome-1) == 0 {
		// A check-bit slot: the data is intact.
		return c.Data, true, nil
	}
	for i, p := range dataPositions {
		if p == syndrome {
			return c.Data ^ (1 << uint(i)), true, nil
		}
	}
	return c.Data, false, fmt.Errorf("ecc: syndrome %#x addresses no bit", syndrome)
}
