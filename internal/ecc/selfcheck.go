package ecc

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// SelfCheck models the base-die BIST pass the paper describes running at
// startup (§III-C3, which also zeroes the tag mats): it exercises both
// codecs — every single-symbol tag error and every single data bit flip
// across a pattern battery, plus double-error detection spot checks —
// and returns the first inconsistency.
//
// The codecs are pure functions over tables computed at package init, so
// one pass validates them for the whole process. SelfCheck therefore
// runs the sweep exactly once, no matter how many controllers (one per
// matrix cell, many per test binary) call it; later calls return the
// memoized verdict.
func SelfCheck() error {
	selfCheckOnce.Do(func() {
		atomic.AddUint64(&selfCheckRuns, 1)
		selfCheckErr = selfCheck()
	})
	return selfCheckErr
}

var (
	selfCheckOnce sync.Once
	selfCheckErr  error
	selfCheckRuns uint64
)

// SelfCheckRuns reports how many times the underlying sweep actually
// executed (at most once per process; tests assert the once-guard).
func SelfCheckRuns() uint64 { return atomic.LoadUint64(&selfCheckRuns) }

// selfCheck is the unguarded sweep.
func selfCheck() error {
	tagPatterns := []uint16{0x0000, 0xFFFF, 0x5A5A, 0x3FFF, 0xA5C3, 0x0001, 0x8000}
	for _, w := range tagPatterns {
		// Clean round trip.
		if got, corrected, err := DecodeTag(EncodeTag(w)); err != nil || corrected || got != w {
			return fmt.Errorf("ecc: tag self-check: clean decode of %#x failed: %v", w, err)
		}
		// Every single-symbol error in every position corrects.
		clean := EncodeTag(w)
		for pos := 0; pos < TagCodewordSymbols; pos++ {
			for e := byte(1); e < 16; e++ {
				cw := clean
				cw[pos] ^= e
				got, corrected, err := DecodeTag(cw)
				if err != nil || !corrected || got != w {
					return fmt.Errorf("ecc: tag self-check: %#x pos %d err %x not corrected: %v", w, pos, e, err)
				}
			}
		}
		// Double-symbol errors must never decode clean.
		for p1 := 0; p1 < TagCodewordSymbols; p1++ {
			for p2 := p1 + 1; p2 < TagCodewordSymbols; p2++ {
				cw := clean
				cw[p1] ^= 0x5
				cw[p2] ^= 0xA
				got, corrected, err := DecodeTag(cw)
				if err == nil && (!corrected || got == w) {
					return fmt.Errorf("ecc: tag self-check: double error at %d,%d of %#x decoded clean", p1, p2, w)
				}
			}
		}
	}

	dataPatterns := []uint64{0, ^uint64(0), 0x0123456789ABCDEF, 0xAAAAAAAAAAAAAAAA, 0x8000000000000001}
	for _, d := range dataPatterns {
		if got, corrected, err := DecodeData(EncodeData(d)); err != nil || corrected || got != d {
			return fmt.Errorf("ecc: data self-check: clean decode of %#x failed: %v", d, err)
		}
		// Every single data bit flip corrects.
		for i := 0; i < 64; i++ {
			cw := EncodeData(d)
			cw.FlipDataBit(i)
			got, corrected, err := DecodeData(cw)
			if err != nil || !corrected || got != d {
				return fmt.Errorf("ecc: data self-check: %#x bit %d not corrected: %v", d, i, err)
			}
		}
		// A sample of double flips must detect, never miscorrect.
		for i := 0; i < 64; i += 7 {
			for j := i + 1; j < 64; j += 11 {
				cw := EncodeData(d)
				cw.FlipDataBit(i)
				cw.FlipDataBit(j)
				if _, _, err := DecodeData(cw); err == nil {
					return fmt.Errorf("ecc: data self-check: double flip %d,%d of %#x not detected", i, j, d)
				}
			}
		}
	}
	return nil
}
