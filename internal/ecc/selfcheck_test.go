package ecc

import "testing"

// TestSelfCheckOnce: repeated SelfCheck calls return the memoized
// verdict; the sweep itself runs at most once per process no matter how
// many controllers start up.
func TestSelfCheckOnce(t *testing.T) {
	for i := 0; i < 3; i++ {
		if err := SelfCheck(); err != nil {
			t.Fatalf("SelfCheck() call %d: %v", i, err)
		}
	}
	if runs := SelfCheckRuns(); runs != 1 {
		t.Errorf("sweep ran %d times, want exactly 1", runs)
	}
}

// TestSelfCheckSweepIsRepeatable: the unguarded sweep itself is a pure
// function of the codec tables — safe to run again directly.
func TestSelfCheckSweepIsRepeatable(t *testing.T) {
	if err := selfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestDataDetectsEveryDoubleBit: exhaustive SECDED guarantee — all 2016
// distinct double data-bit flips are detected, never silently corrected
// back to the original word.
func TestDataDetectsEveryDoubleBit(t *testing.T) {
	const d = uint64(0xC3A5F00D12345678)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			cw := EncodeData(d)
			cw.FlipDataBit(i)
			cw.FlipDataBit(j)
			got, corrected, err := DecodeData(cw)
			if err == nil {
				t.Fatalf("double flip %d,%d undetected (got %#x corrected=%v)", i, j, got, corrected)
			}
		}
	}
}

// splitmix64 mirrors the fault injector's PRNG so the fuzz below is
// seeded and reproducible without pulling in math/rand.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D649BB133111EB
	return z ^ (z >> 31)
}

// TestTagSeededFuzz: seeded encode/corrupt/decode rounds over random
// words. One corrupted symbol always corrects; two corrupted symbols are
// never silently accepted as the original word.
func TestTagSeededFuzz(t *testing.T) {
	state := uint64(0x1DF0C3)
	for round := 0; round < 20000; round++ {
		w := uint16(splitmix64(&state))
		clean := EncodeTag(w)

		cw := clean
		p := int(splitmix64(&state) % TagCodewordSymbols)
		cw[p] ^= byte(splitmix64(&state)%15) + 1
		got, corrected, err := DecodeTag(cw)
		if err != nil || !corrected || got != w {
			t.Fatalf("round %d: single error at %d of %#x: got %#x corrected=%v err=%v",
				round, p, w, got, corrected, err)
		}

		cw = clean
		p1 := int(splitmix64(&state) % TagCodewordSymbols)
		p2 := int(splitmix64(&state) % (TagCodewordSymbols - 1))
		if p2 >= p1 {
			p2++
		}
		cw[p1] ^= byte(splitmix64(&state)%15) + 1
		cw[p2] ^= byte(splitmix64(&state)%15) + 1
		got, corrected, err = DecodeTag(cw)
		if err == nil && got == w {
			t.Fatalf("round %d: double error at %d,%d of %#x decoded to the original word (corrected=%v)",
				round, p1, p2, w, corrected)
		}
		if err == nil && !corrected {
			t.Fatalf("round %d: double error at %d,%d of %#x reported clean", round, p1, p2, w)
		}
	}
}

// TestDataSeededFuzz: the same seeded fuzz over the SECDED codec —
// random words, one random flip corrects, two distinct flips detect.
func TestDataSeededFuzz(t *testing.T) {
	state := uint64(0x5EC0ED)
	for round := 0; round < 20000; round++ {
		d := splitmix64(&state)
		cw := EncodeData(d)
		cw.FlipDataBit(int(splitmix64(&state) % 64))
		got, corrected, err := DecodeData(cw)
		if err != nil || !corrected || got != d {
			t.Fatalf("round %d: single flip of %#x: got %#x corrected=%v err=%v", round, d, got, corrected, err)
		}

		cw = EncodeData(d)
		i := int(splitmix64(&state) % 64)
		j := int(splitmix64(&state) % 63)
		if j >= i {
			j++
		}
		cw.FlipDataBit(i)
		cw.FlipDataBit(j)
		if _, _, err := DecodeData(cw); err == nil {
			t.Fatalf("round %d: double flip %d,%d of %#x undetected", round, i, j, d)
		}
	}
}
