package ecc

import "fmt"

// TagCode is the paper's tag+metadata protection: RS(6,4) over GF(16).
// A 16-bit word (14-bit tag + valid + dirty) is split into four 4-bit
// symbols; two check symbols (8 bits — exactly the budget §III-C5
// leaves) correct any error confined to a single symbol.

// TagCodewordSymbols is the RS codeword length in 4-bit symbols.
const TagCodewordSymbols = 6

// tagDataSymbols is the message length in symbols.
const tagDataSymbols = 4

// g(x) = (x - a^0)(x - a^1) = x^2 + 3x + 2 over GF(16).
var rsGen = [3]byte{2, 3, 1} // coefficients, lowest degree first

// TagCodeword is an encoded tag+metadata word: symbols[0..1] are the
// check symbols, symbols[2..5] the data, lowest nibble first.
type TagCodeword [TagCodewordSymbols]byte

// EncodeTag produces the RS(6,4) codeword of a 16-bit tag+metadata word.
func EncodeTag(word uint16) TagCodeword {
	var cw TagCodeword
	for i := 0; i < tagDataSymbols; i++ {
		cw[2+i] = byte(word>>(4*i)) & 0xF
	}
	// Systematic encoding: remainder of m(x)*x^2 divided by g(x).
	var rem [2]byte
	for i := tagDataSymbols - 1; i >= 0; i-- {
		factor := cw[2+i] ^ rem[1]
		rem[1] = rem[0] ^ gfMul(factor, rsGen[1])
		rem[0] = gfMul(factor, rsGen[0])
	}
	cw[0], cw[1] = rem[0], rem[1]
	return cw
}

// Word extracts the (possibly corrupted) 16-bit data word.
func (cw TagCodeword) Word() uint16 {
	var w uint16
	for i := 0; i < tagDataSymbols; i++ {
		w |= uint16(cw[2+i]&0xF) << (4 * i)
	}
	return w
}

// syndromes evaluates the codeword at alpha^0 and alpha^1.
func (cw TagCodeword) syndromes() (s0, s1 byte) {
	for j := TagCodewordSymbols - 1; j >= 0; j-- {
		s0 ^= cw[j]
		s1 = gfMul(s1, gfAlpha) ^ cw[j]
	}
	return
}

// DecodeTag corrects up to one symbol error in place and returns the
// recovered word. corrected reports whether a correction happened; an
// error is returned when the syndromes are inconsistent (more than one
// symbol is corrupt).
func DecodeTag(cw TagCodeword) (word uint16, corrected bool, err error) {
	s0, s1 := cw.syndromes()
	if s0 == 0 && s1 == 0 {
		return cw.Word(), false, nil
	}
	if s0 == 0 || s1 == 0 {
		return cw.Word(), false, fmt.Errorf("ecc: uncorrectable tag codeword (syndromes %x,%x)", s0, s1)
	}
	// Single error of value s0 at position log(s1/s0).
	pos := int(gfLog[gfDiv(s1, s0)])
	if pos >= TagCodewordSymbols {
		return cw.Word(), false, fmt.Errorf("ecc: error position %d outside codeword", pos)
	}
	cw[pos] ^= s0
	if rs0, rs1 := cw.syndromes(); rs0 != 0 || rs1 != 0 {
		return cw.Word(), false, fmt.Errorf("ecc: correction did not converge")
	}
	return cw.Word(), true, nil
}

// TagCheckBits reports the check overhead in bits (the paper's budget: 8).
func TagCheckBits() int { return 4 * (TagCodewordSymbols - tagDataSymbols) }
