package dramcache

import (
	"fmt"
	"strings"

	"tdram/internal/backing"
	"tdram/internal/dram"
	"tdram/internal/ecc"
	"tdram/internal/energy"
	"tdram/internal/fault"
	"tdram/internal/mem"
	"tdram/internal/obs"
	"tdram/internal/predict"
	"tdram/internal/sim"
	"tdram/internal/stats"
)

// TrafficBreakdown classifies every byte moved, so both the paper's
// bandwidth-bloat factor (Table IV: all bytes moved per 64 demand bytes)
// and Fig. 3's useful/unuseful split can be derived.
type TrafficBreakdown struct {
	// Cache-device DQ bus.
	DemandBytes   uint64 // hit data to controller, demand write data
	FillBytes     uint64 // miss fills written into the cache
	VictimBytes   uint64 // dirty victims moved to the controller (incl. flush drains)
	DiscardBytes  uint64 // tag-check read data the controller discards
	OverheadBytes uint64 // over-fetch beyond 64 B (80 B TADs, NDC tag beats)
	// Main-memory bus.
	MMDemandBytes    uint64 // backing-store fetches serving demand misses
	MMWritebackBytes uint64 // dirty victims written back
}

// CacheTotal reports all bytes moved on the cache device's DQ bus.
func (t *TrafficBreakdown) CacheTotal() uint64 {
	return t.DemandBytes + t.FillBytes + t.VictimBytes + t.DiscardBytes + t.OverheadBytes
}

// Total reports all bytes moved in the memory system.
func (t *TrafficBreakdown) Total() uint64 {
	return t.CacheTotal() + t.MMDemandBytes + t.MMWritebackBytes
}

// UnusefulFraction reports Fig. 3's metric: the share of cache-bus
// traffic that served no purpose (discarded tag-check data and
// over-fetch).
func (t *TrafficBreakdown) UnusefulFraction() float64 {
	tot := t.CacheTotal()
	if tot == 0 {
		return 0
	}
	return float64(t.DiscardBytes+t.OverheadBytes) / float64(tot)
}

// Stats aggregates one controller's measurements.
type Stats struct {
	DemandReads, DemandWrites uint64

	Outcomes stats.OutcomeCounts

	// TagCheck is the paper's Fig. 9 metric: controller-issue-to-result
	// including queue occupancy, in ns, over all demands.
	TagCheck stats.Mean
	// ReadQueueing is Figs. 2/10: enqueue-to-command-issue of entries in
	// the read buffer (including CL-family write tag-reads).
	ReadQueueing stats.Mean
	// ReadLatency is the full demand-read latency (arrive to data).
	ReadLatency stats.Mean
	// TagCheckHist and ReadLatencyHist resolve the distributions behind
	// the means for tail-latency reporting (p95/p99 and beyond). They are
	// log-bucketed (~1 % relative error from ns to ms), so miss-path and
	// fault-retry samples land in real buckets instead of a linear
	// histogram's overflow.
	TagCheckHist    *stats.LogHist
	ReadLatencyHist *stats.LogHist

	Traffic TrafficBreakdown

	MMReads, MMWrites uint64

	Probes, ProbeMissClean, ProbeHits, ProbeMissDirty uint64

	FlushOccupancy                                            stats.Mean
	FlushMax                                                  int
	FlushStalls                                               uint64
	FlushDrainRefresh, FlushDrainIdleSlot, FlushDrainExplicit uint64

	FillsBypassed   uint64
	WriteTagReads   uint64
	ConflictWaits   uint64
	ConflictRejects uint64
	QueueRejects    uint64

	PredictorMissStarts uint64
	PredictorAccuracy   float64

	PrefetchesIssued, PrefetchesUseful uint64

	// MMReadWaits counts backing-store fetches parked because the read
	// queue was full; MMReadPumps counts the queue-free wakeups that
	// re-offered them (event-driven, not polled).
	MMReadWaits, MMReadPumps uint64

	// Fault aggregates the fault-injection subsystem's counters; all
	// zero when injection is disabled.
	Fault fault.Counters
}

// BloatFactor is Table IV's metric: every byte moved in the memory
// system per 64 demand bytes.
func (s *Stats) BloatFactor() float64 {
	demands := s.DemandReads + s.DemandWrites
	if demands == 0 {
		return 0
	}
	return float64(s.Traffic.Total()) / float64(demands*64)
}

// Controller is the DRAM-cache controller: it accepts 64 B demands from
// the on-chip hierarchy, runs them against the configured design's
// protocol on the cache device, and falls through to the backing store
// on misses.
type Controller struct {
	sim *sim.Simulator
	cfg Config
	dev *dram.Device // nil for NoCache
	mm  *backing.Memory

	tags  *tagStore
	chans []*chanCtl

	// inflight tracks lines with a pending fill: value is the list of
	// demands waiting in the conflicting-request buffer.
	inflight      map[uint64][]*mem.Request
	conflictCount int

	// wbQ holds dirty victims awaiting acceptance by the backing store.
	wbQ        []uint64
	mmReadWait []pendingMM

	// fault is the fault-injection hook; nil (the default) disables it.
	fault *fault.Injector
	// retryingTxns counts transactions parked in a fault-retry backoff
	// (outside any queue but still owed to the device).
	retryingTxns int

	predictor  *predict.MAPI
	prefetcher *predict.StridePrefetcher
	// prefetched tracks lines brought in by the prefetcher and not yet
	// referenced, to score usefulness.
	prefetched map[uint64]struct{}

	// bearPSel is the set-dueling selector for BEAR's bandwidth-aware
	// bypass: misses in bypass-leader sets push it up, misses in
	// fill-leader sets push it down; followers bypass while it stays
	// below the threshold (bypassing is not costing hits).
	bearPSel int

	// obs is the observability hook; nil (the default) disables it.
	obs *obs.Observer

	// Prebound method-value callbacks for backing-fetch completions whose
	// argument is not a *txn (bound once in New, so the per-request hot
	// paths never allocate a method-value closure).
	noCacheDoneFn  func(any, sim.Tick)
	prefetchDoneFn func(any, sim.Tick)

	meter   *energy.Meter // cache device
	mmMeter *energy.Meter
	// Device-counter snapshots at the last ResetStats, so meters report
	// measured-phase activity only.
	devBase   dram.ChannelStats
	mmDevBase dram.ChannelStats

	stats Stats

	// OnDemandRetry is invoked when a previously rejected demand might
	// now be accepted (queue space freed). The system layer uses it to
	// resume stalled cores.
	OnDemandRetry func()

	// OnAccept, when set, observes every accepted demand exactly once —
	// the trace recorder's hook.
	OnAccept func(*mem.Request)
}

// pendingMM is one backing fetch parked behind a full read queue,
// carrying the typed-argument completion it will be re-offered with.
type pendingMM struct {
	line uint64
	fn   func(any, sim.Tick)
	arg  any
}

// New builds a controller for cfg on simulator s against backing store
// mm. The cache device is created internally from the paper's Table III
// parameters.
func New(s *sim.Simulator, cfg Config, mm *backing.Memory) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		sim:      s,
		cfg:      cfg,
		mm:       mm,
		inflight: make(map[uint64][]*mem.Request),
		mmMeter:  energy.NewMeter(energy.DDR5(), mm.Device().Channels()),
		stats:    newStats(),
	}
	c.noCacheDoneFn = c.noCacheDone
	c.prefetchDoneFn = c.prefetchDone
	// Backpressured backing-store traffic rearms from the queues' free
	// events instead of polling.
	mm.OnReadFree = func() {
		if len(c.mmReadWait) == 0 {
			return
		}
		c.stats.MMReadPumps++
		if c.obs != nil {
			c.obs.Inc("cache.mmread.pump")
		}
		c.pumpMMReads()
	}
	mm.OnWriteFree = func() {
		if len(c.wbQ) > 0 {
			c.pumpWritebacks()
		}
	}
	if cfg.Design == NoCache {
		return c, nil
	}
	c.fault = fault.New(cfg.Fault)
	devParams := dram.CacheDeviceParams(cfg.CapacityBytes)
	if cfg.OpenPage {
		devParams.OpenPage = true
		// Tag banks are a TDRAM/NDC feature; the open-page ablation runs
		// tags-with-data designs, which never issue tag-lockstep ops.
		devParams.TRCDTag, devParams.THM, devParams.THMInt, devParams.TRCTag = 0, 0, 0, 0
	}
	dev, err := dram.NewDevice(s, devParams)
	if err != nil {
		return nil, err
	}
	c.dev = dev
	c.tags, err = newTagStore(cfg.CapacityBytes, cfg.Ways)
	if err != nil {
		return nil, err
	}
	if cfg.Design == TDRAM || cfg.Design == NDC {
		// The base-die BIST initializes tags and verifies the on-die ECC
		// paths at startup (§III-C3).
		if err := ecc.SelfCheck(); err != nil {
			return nil, err
		}
	}
	c.meter = energy.NewMeter(energy.HBMCache(), dev.Channels())
	c.chans = make([]*chanCtl, dev.Channels())
	for i := range c.chans {
		cc := &chanCtl{ctl: c, ch: dev.Channel(i), index: i}
		c.chans[i] = cc
		if cfg.Design == TDRAM {
			ch := dev.Channel(i)
			ch.OnRefresh = cc.refreshDrain
		}
	}
	if cfg.UsePredictor {
		c.predictor = predict.NewMAPI(256)
	}
	if cfg.UsePrefetcher {
		deg := cfg.PrefetchDegree
		if deg < 1 {
			deg = 1
		}
		c.prefetcher = predict.NewStridePrefetcher(128, deg)
		c.prefetched = make(map[uint64]struct{})
	}
	return c, nil
}

// maybePrefetch trains the stride prefetcher on a demand read and issues
// confident proposals: each prefetch installs the line (like a read
// miss) and fetches it from the backing store, consuming mm and fill
// bandwidth — the interference the paper's §V-D discusses. Prefetches
// that would displace dirty victims are skipped (they would add a
// victim read on top).
func (c *Controller) maybePrefetch(core int, line uint64) {
	if c.prefetcher == nil {
		return
	}
	for _, target := range c.prefetcher.Observe(core, line) {
		if _, busy := c.inflight[target]; busy {
			continue
		}
		if c.fault != nil && c.tags.isRetired(target) {
			continue // retired sets never fill
		}
		pr := c.tags.probe(target)
		if pr.Hit || pr.Dirty {
			continue
		}
		if !c.mm.ReadQueueFree(target) {
			continue // never let prefetches stall demand fetches
		}
		if len(c.prefetched) > 1<<16 {
			// Bound the usefulness-scoring map; scoring is approximate.
			c.prefetched = make(map[uint64]struct{})
		}
		c.tags.access(target, false, true)
		c.markInflight(target)
		c.prefetched[target] = struct{}{}
		c.stats.PrefetchesIssued++
		c.stats.MMReads++
		c.stats.Traffic.MMDemandBytes += 64
		c.mmMeter.Acts++
		c.mmMeter.Cols++
		c.mmMeter.Bytes += 64
		c.mm.ReadArg(target, c.prefetchDoneFn, target)
	}
}

// prefetchDone completes a prefetcher-issued backing fetch.
func (c *Controller) prefetchDone(a any, _ sim.Tick) {
	line := a.(uint64)
	c.resolveInflight(line)
	c.dispatchFill(line)
}

// scorePrefetch marks a prefetched line as referenced.
func (c *Controller) scorePrefetch(line uint64) {
	if c.prefetched == nil {
		return
	}
	if _, ok := c.prefetched[line]; ok {
		delete(c.prefetched, line)
		c.stats.PrefetchesUseful++
	}
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns the accumulated measurements. Predictor accuracy is
// refreshed on each call.
func (c *Controller) Stats() *Stats {
	if c.predictor != nil {
		c.stats.PredictorAccuracy = c.predictor.Accuracy()
	}
	if c.fault != nil {
		c.stats.Fault = c.fault.Counters()
	}
	return &c.stats
}

// Device exposes the cache DRAM device (nil for NoCache).
func (c *Controller) Device() *dram.Device { return c.dev }

// Meters returns the cache-device and main-memory energy meters; the
// cache meter is nil for NoCache.
func (c *Controller) Meters() (cache, main *energy.Meter) { return c.meter, c.mmMeter }

// Occupancy reports valid/dirty fractions of the cache content.
func (c *Controller) Occupancy() (valid, dirty float64) {
	if c.tags == nil {
		return 0, 0
	}
	return c.tags.occupancy()
}

// newStats builds a Stats with its histograms allocated.
func newStats() Stats {
	return Stats{
		TagCheckHist:    stats.NewLogHist(),
		ReadLatencyHist: stats.NewLogHist(),
	}
}

// sampleTagCheck records one tag-check latency sample.
func (c *Controller) sampleTagCheck(d sim.Tick) {
	c.stats.TagCheck.AddTick(d)
	c.stats.TagCheckHist.AddTick(d)
}

// sampleReadLatency records one completed demand read's latency.
func (c *Controller) sampleReadLatency(d sim.Tick) {
	c.stats.ReadLatency.AddTick(d)
	c.stats.ReadLatencyHist.AddTick(d)
}

// ResetStats clears measurements (after warmup) without touching cache
// content or device state.
func (c *Controller) ResetStats() {
	c.stats = newStats()
	// Counters reset; the injector's PRNG stream deliberately does not
	// (warmup faults happened, only their accounting is discarded).
	if c.fault != nil {
		c.fault.ResetCounters()
	}
	// Likewise the predictor: the learned table persists (it is warmed
	// state), but the accuracy score restarts so PredictorAccuracy covers
	// measured accesses only.
	if c.predictor != nil {
		c.predictor.ResetAccuracy()
	}
	// Drop warmup-issued prefetches from the usefulness scoring map:
	// otherwise measured-phase PrefetchesUseful can count (and even
	// exceed) prefetches whose issue was never measured.
	if c.prefetched != nil && len(c.prefetched) > 0 {
		clear(c.prefetched)
	}
	if c.meter != nil {
		ch := c.meter.Channels
		co := c.meter.Coeffs
		*c.meter = *energy.NewMeter(co, ch)
	}
	*c.mmMeter = *energy.NewMeter(c.mmMeter.Coeffs, c.mmMeter.Channels)
	mmStats := c.mm.Stats()
	*mmStats = backing.Stats{}
	if c.dev != nil {
		c.devBase = c.dev.Stats()
	}
	c.mmDevBase = c.mm.Device().Stats()
}

// DeviceActivity reports the cache device's activity counters since the
// last ResetStats (zero value for NoCache).
func (c *Controller) DeviceActivity() dram.ChannelStats {
	if c.dev == nil {
		return dram.ChannelStats{}
	}
	d := c.dev.Stats()
	return dram.ChannelStats{
		Activates:    d.Activates - c.devBase.Activates,
		TagActivates: d.TagActivates - c.devBase.TagActivates,
		Probes:       d.Probes - c.devBase.Probes,
		Refreshes:    d.Refreshes - c.devBase.Refreshes,
		HMTransfers:  d.HMTransfers - c.devBase.HMTransfers,
		RowHits:      d.RowHits - c.devBase.RowHits,
		Precharges:   d.Precharges - c.devBase.Precharges,
		DQBusyTicks:  d.DQBusyTicks - c.devBase.DQBusyTicks,
		HMBusyTicks:  d.HMBusyTicks - c.devBase.HMBusyTicks,
	}
}

// FinalizeMeters copies device activity counters (activations, tag
// activations, HM transfers, refreshes) accumulated since the last
// ResetStats into the energy meters. Call before rendering energy.
func (c *Controller) FinalizeMeters() {
	if c.dev != nil {
		d := c.dev.Stats()
		c.meter.Acts = d.Activates - c.devBase.Activates
		c.meter.TagActs = d.TagActivates - c.devBase.TagActivates
		c.meter.HMs = d.HMTransfers - c.devBase.HMTransfers
		c.meter.Refreshes = d.Refreshes - c.devBase.Refreshes
	}
	md := c.mm.Device().Stats()
	c.mmMeter.Refreshes = md.Refreshes - c.mmDevBase.Refreshes
}

// Prewarm applies one access to the cache content functionally, with no
// timing: the stand-in for the paper's LoopPoint checkpoints, which start
// every run with warmed SRAM and DRAM caches (§IV-B). Misses install
// immediately (the fill is assumed done); victims are dropped.
func (c *Controller) Prewarm(line uint64, write bool) {
	if c.tags == nil {
		return
	}
	c.tags.access(line, write, true)
	if !write {
		c.tags.fillDone(line)
	}
}

// Enqueue accepts one demand. It reports false when backpressure (full
// queues or conflict buffer) prevents acceptance; the caller must retry
// later. Writes are posted: their Complete fires on acceptance.
func (c *Controller) Enqueue(req *mem.Request) bool {
	req.Arrive = c.sim.Now()
	line := req.Line()

	if c.cfg.Design == NoCache {
		return c.enqueueNoCache(req)
	}

	// Controller-side MSHR check: demands to lines with a pending fill
	// wait in the conflicting-request buffer (Table III: 32 entries).
	if waiters, ok := c.inflight[line]; ok {
		if c.conflictCount >= ConflictDepth {
			c.stats.ConflictRejects++
			return false
		}
		c.inflight[line] = append(waiters, req)
		c.conflictCount++
		c.stats.ConflictWaits++
		if j := req.J; j != nil {
			// Coalesced waiters ride the in-flight fill of a miss; without
			// a resolved outcome of their own they class as clean misses.
			j.Note(mem.ReadMissClean)
			j.Enter(mem.PhaseFill, c.sim.Now())
		}
		c.countDemand(req)
		if req.Kind == mem.Read {
			c.scorePrefetch(line)
		}
		if req.Kind == mem.Write {
			req.Complete()
		}
		return true
	}

	// Graceful degradation: demands to retired sets (too many
	// uncorrectable errors) bypass the cache to backing memory.
	if c.fault != nil && c.tags.isRetired(line) {
		if !c.enqueueNoCache(req) {
			return false
		}
		c.fault.NoteBypass()
		c.observeFault("bypass")
		return true
	}

	chIdx, bank := c.dev.Route(line)
	cc := c.chans[chIdx]

	if req.Kind == mem.Read {
		if !cc.acceptRead(req, bank) {
			c.stats.QueueRejects++
			return false
		}
		c.countDemand(req)
		c.maybePrefetch(req.Core, line)
		return true
	}
	if !cc.acceptWrite(req, bank) {
		c.stats.QueueRejects++
		return false
	}
	c.countDemand(req)
	req.Complete() // posted write
	return true
}

func (c *Controller) countDemand(req *mem.Request) {
	if req.Kind == mem.Read {
		c.stats.DemandReads++
	} else {
		c.stats.DemandWrites++
	}
	if j := req.J; j != nil {
		j.Exit(mem.PhaseCoreQueue, c.sim.Now())
	}
	if c.OnAccept != nil {
		c.OnAccept(req)
	}
}

// finishJourney closes out a request's journey ledger exactly once. The
// field is cleared before the observer recycles the ledger, so a
// late-path double finish can never aggregate a pooled (reused) ledger.
func (c *Controller) finishJourney(req *mem.Request, end sim.Tick) {
	j := req.J
	if j == nil {
		return
	}
	req.J = nil
	if c.obs != nil {
		c.obs.FinishJourney(j, end)
	}
}

// enqueueNoCache routes demands straight to the backing store.
func (c *Controller) enqueueNoCache(req *mem.Request) bool {
	line := req.Line()
	if req.Kind == mem.Read {
		if !c.mm.ReadArg(line, c.noCacheDoneFn, req) {
			c.stats.QueueRejects++
			return false
		}
		c.stats.MMReads++
		c.stats.Traffic.MMDemandBytes += 64
		c.mmMeter.Acts++
		c.mmMeter.Cols++
		c.mmMeter.Bytes += 64
		c.countDemand(req)
		if j := req.J; j != nil {
			j.MarkBypass()
			j.Enter(mem.PhaseMissFetch, c.sim.Now())
		}
		return true
	}
	if !c.mm.Write(line) {
		c.stats.QueueRejects++
		return false
	}
	c.stats.MMWrites++
	c.stats.Traffic.MMWritebackBytes += 64
	c.mmMeter.Acts++
	c.mmMeter.Cols++
	c.mmMeter.Bytes += 64
	c.countDemand(req)
	if j := req.J; j != nil {
		j.MarkBypass()
	}
	c.finishJourney(req, c.sim.Now())
	req.Complete()
	return true
}

// noCacheDone completes a bypassed demand read from the backing store.
// req.Arrive is its enqueue time (set on intake, the same tick the fetch
// started), so the latency sample matches the closure it replaced.
func (c *Controller) noCacheDone(a any, _ sim.Tick) {
	req := a.(*mem.Request)
	now := c.sim.Now()
	c.sampleReadLatency(now - req.Arrive)
	if j := req.J; j != nil {
		j.Exit(mem.PhaseMissFetch, now)
	}
	c.finishJourney(req, now)
	req.Complete()
	c.retryUpstream()
}

// missFetch starts the backing-store read for a demand miss and wires
// the completion: respond to the demand, resolve conflict waiters, and
// enqueue the fill (unless bypassed). The transaction rides along as the
// completion's argument (t.req, t.line, t.fill), so the fetch allocates
// no closure; intake paths with no queued transaction pass a bare
// carrier txn.
func (c *Controller) missFetch(t *txn) {
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.Enter(mem.PhaseMissFetch, c.sim.Now())
		}
	}
	c.stats.MMReads++
	c.stats.Traffic.MMDemandBytes += 64
	c.mmMeter.Acts++
	c.mmMeter.Cols++
	c.mmMeter.Bytes += 64
	if !c.mm.ReadArg(t.line, missDataEv, t) {
		// Backing read queue full: park the fetch. The queue's free
		// event (backing.Memory.OnReadFree) rearms the pump — one wakeup
		// per freed slot instead of a 20 ns polling loop.
		c.parkMMRead(pendingMM{line: t.line, fn: missDataEv, arg: t})
	}
}

// missDataEv completes a demand miss's backing fetch.
func missDataEv(a any, _ sim.Tick) {
	t := a.(*txn)
	c := t.cc.ctl
	if t.req != nil {
		now := c.sim.Now()
		c.sampleReadLatency(now - t.req.Arrive)
		if j := t.req.J; j != nil {
			j.Exit(mem.PhaseMissFetch, now)
		}
		c.finishJourney(t.req, now)
		t.req.Complete()
	}
	// Data is at the controller: conflict-buffer waiters are served
	// from it directly.
	c.resolveInflight(t.line)
	if t.fill {
		c.dispatchFill(t.line)
	}
	c.retryUpstream()
}

func (c *Controller) parkMMRead(p pendingMM) {
	c.mmReadWait = append(c.mmReadWait, p)
	c.stats.MMReadWaits++
	if c.obs != nil {
		c.obs.Inc("cache.mmread.wait")
	}
}

// pumpMMReads re-offers parked backing reads in arrival order.
// Head-of-line blocking is intentional: fetch order is preserved.
func (c *Controller) pumpMMReads() {
	for len(c.mmReadWait) > 0 {
		p := c.mmReadWait[0]
		if !c.mm.ReadArg(p.line, p.fn, p.arg) {
			return
		}
		c.mmReadWait = c.mmReadWait[1:]
	}
}

// markInflight registers a line whose fill is pending.
func (c *Controller) markInflight(line uint64) {
	if _, ok := c.inflight[line]; !ok {
		c.inflight[line] = nil
	}
}

// resolveInflight completes every demand waiting on line's fill data:
// reads are answered from the arriving fill at the controller; writes
// were posted and now set the dirty bit.
func (c *Controller) resolveInflight(line uint64) {
	waiters, ok := c.inflight[line]
	if !ok {
		return
	}
	delete(c.inflight, line)
	c.conflictCount -= len(waiters)
	now := c.sim.Now()
	for _, w := range waiters {
		if j := w.J; j != nil {
			j.Exit(mem.PhaseFill, now)
		}
		c.finishJourney(w, now)
		if w.Kind == mem.Read {
			c.sampleReadLatency(now - w.Arrive)
			w.Complete()
		} else if c.tags != nil {
			c.tags.markDirty(line)
		}
	}
}

// writeback queues a dirty victim for the backing store.
func (c *Controller) writeback(line uint64) {
	c.wbQ = append(c.wbQ, line)
	c.pumpWritebacks()
}

// pumpWritebacks offers queued victims to the backing store; leftovers
// wait for the write queue's free event (backing.Memory.OnWriteFree).
func (c *Controller) pumpWritebacks() {
	for len(c.wbQ) > 0 {
		if !c.mm.Write(c.wbQ[0]) {
			return
		}
		c.wbQ = c.wbQ[1:]
		c.stats.MMWrites++
		c.stats.Traffic.MMWritebackBytes += 64
		c.mmMeter.Acts++
		c.mmMeter.Cols++
		c.mmMeter.Bytes += 64
	}
}

// recordUncorrectable charges one uncorrectable (retry-exhausted) error
// against line's set; a set crossing the retirement threshold is retired:
// its dirty lines are written back and all future demands bypass the
// cache (graceful degradation instead of serving corrupt data).
func (c *Controller) recordUncorrectable(line uint64) {
	if c.fault == nil {
		return
	}
	th := c.fault.RetireThreshold()
	if th <= 0 {
		return
	}
	if c.tags.recordError(line) < th {
		return
	}
	c.fault.NoteRetired()
	c.observeFault("set.retired")
	if o := c.obs; o != nil && o.FlightEnabled() {
		o.FlightSnapshot(fmt.Sprintf("set retired (line %#x)", line))
	}
	for _, v := range c.tags.retire(line) {
		c.writeback(v)
	}
}

// retryUpstream tells the system layer queue space may be available.
func (c *Controller) retryUpstream() {
	if c.OnDemandRetry != nil {
		c.OnDemandRetry()
	}
}

// bearRole classifies a line's set for BEAR's set-dueling: one in 64
// sets always fills (fill leader), one in 64 always bypasses (bypass
// leader), the rest follow the selector.
const (
	bearFollower = iota
	bearFillLeader
	bearBypassLeader
)

const bearPSelMax = 512
const bearPSelThreshold = 0

func (c *Controller) bearRole(line uint64) int {
	set := line % c.tags.sets
	switch set & 31 {
	case 0:
		return bearFillLeader
	case 1:
		return bearBypassLeader
	}
	return bearFollower
}

// bearBypassFill implements BEAR's bandwidth-aware bypass with set
// dueling: leader sets permanently fill or permanently bypass, and the
// miss difference between them steers the followers. Cache-averse
// traffic (bypassing costs no hits) bypasses its fills, saving fill
// bandwidth; traffic with reuse keeps filling.
func (c *Controller) bearBypassFill(line uint64) bool {
	if !c.cfg.BypassAdaptive {
		return false
	}
	switch c.bearRole(line) {
	case bearFillLeader:
		return false
	case bearBypassLeader:
		return true
	}
	return c.bearPSel < bearPSelThreshold
}

// bearObserve trains the duel on every demand outcome. Write misses
// count too: in a tags-with-data design a write-miss costs a full
// tag-read that a write-hit (DCP bypass) avoids, so bypassed fills that
// turn future write-hits into write-misses must show up in the leaders'
// miss counts.
func (c *Controller) bearObserve(line uint64, outcome mem.Outcome) {
	if c.cfg.Design != BEAR {
		return
	}
	if outcome.IsHit() {
		return
	}
	switch c.bearRole(line) {
	case bearFillLeader:
		if c.bearPSel > -bearPSelMax {
			c.bearPSel--
		}
	case bearBypassLeader:
		if c.bearPSel < bearPSelMax {
			c.bearPSel++
		}
	}
}

// DrainResidual switches every channel's flush buffer to forced explicit
// draining and kicks a scheduling pass. TDRAM parks dirty victims for
// opportunistic (free-slot or refresh-window) drains, so when demand
// traffic stops, entries can outlive the last scheduled event; forcing
// the explicit StreamRead path makes the drain self-sustaining through
// the ordinary retry arming until the buffers are empty. Terminal: the
// flag is never cleared, so this must only run after the measured phase.
func (c *Controller) DrainResidual() {
	for _, cc := range c.chans {
		cc.forceDrain = true
		if len(cc.flush) > 0 {
			cc.pass()
		}
	}
}

// Pending reports outstanding internal work (tests and drain checks).
func (c *Controller) Pending() int {
	n := len(c.wbQ) + len(c.mmReadWait) + c.conflictCount + c.retryingTxns
	for _, cc := range c.chans {
		n += len(cc.readQ) + len(cc.writeQ) + len(cc.overflow) + len(cc.flush)
	}
	return n
}

// DebugState renders the controller's queue occupancies and oldest
// outstanding request — the watchdog's diagnostic dump.
func (c *Controller) DebugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conflicts=%d wbq=%d mmwait=%d retrying=%d",
		c.conflictCount, len(c.wbQ), len(c.mmReadWait), c.retryingTxns)
	if c.tags != nil && len(c.tags.retired) > 0 {
		fmt.Fprintf(&b, " retired-sets=%d", len(c.tags.retired))
	}
	now := c.sim.Now()
	for i, cc := range c.chans {
		oldest := sim.Tick(-1)
		for _, q := range [][]*txn{cc.readQ, cc.writeQ, cc.overflow} {
			for _, t := range q {
				if age := now - t.arrive; age > oldest {
					oldest = age
				}
			}
		}
		fmt.Fprintf(&b, "\n  ch%d: readq=%d writeq=%d overflow=%d flush=%d last-commit=%v",
			i, len(cc.readQ), len(cc.writeQ), len(cc.overflow), len(cc.flush), cc.ch.LastCommit())
		if oldest >= 0 {
			fmt.Fprintf(&b, " oldest-age=%v", oldest)
		}
	}
	return b.String()
}

// String describes the controller.
func (c *Controller) String() string {
	return fmt.Sprintf("dramcache(%v, %d MiB, %d-way)", c.cfg.Design, c.cfg.CapacityBytes>>20, c.cfg.Ways)
}
