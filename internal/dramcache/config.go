package dramcache

import (
	"fmt"

	"tdram/internal/fault"
	"tdram/internal/sim"
)

// Design selects which of the paper's evaluated DRAM-cache designs the
// controller models.
type Design int

const (
	// CascadeLake is the evaluation baseline: Intel's commercial
	// block-granule direct-mapped insert-on-miss cache storing tags in
	// the ECC bits of the data, 64 B bursts. Every demand — read or
	// write — starts with a DRAM read for its tag check.
	CascadeLake Design = iota
	// Alloy streams tag-and-data (TAD) units: the same flow with 80 B
	// bursts.
	Alloy
	// BEAR is Alloy plus bandwidth-bloat mitigations: write-hits bypass
	// the tag-check read via DRAM-cache-presence bits, and an adaptive
	// bandwidth-aware bypass skips fills for cache-averse traffic.
	BEAR
	// NDC (Native DRAM Cache) stores tags in separate in-DRAM banks with
	// CAM-like compare tied to the column operation: no early hit/miss,
	// no conditional column op, tag returned over DQ, and a victim
	// buffer drained by explicit RES commands.
	NDC
	// TDRAM is the paper's contribution: lockstep tag/data access
	// (ActRd/ActWr), in-DRAM compare gating the column operation, HM
	// bus, flush buffer, and early tag probing.
	TDRAM
	// Ideal knows hit/miss and metadata in zero time — the upper bound a
	// perfect tags-in-SRAM design could reach.
	Ideal
	// NoCache bypasses the DRAM cache entirely (main memory only); the
	// reference system of Figs. 2 and 12.
	NoCache
)

var designNames = map[Design]string{
	CascadeLake: "cascade-lake",
	Alloy:       "alloy",
	BEAR:        "bear",
	NDC:         "ndc",
	TDRAM:       "tdram",
	Ideal:       "ideal",
	NoCache:     "no-cache",
}

func (d Design) String() string {
	if n, ok := designNames[d]; ok {
		return n
	}
	return fmt.Sprintf("design(%d)", int(d))
}

// Designs lists the cache designs in the paper's comparison order.
func Designs() []Design {
	return []Design{CascadeLake, Alloy, BEAR, NDC, TDRAM, Ideal}
}

// ParseDesign resolves a design name.
func ParseDesign(s string) (Design, error) {
	for d, n := range designNames {
		if n == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("dramcache: unknown design %q", s)
}

// Queue and buffer capacities from Table III.
const (
	ReadQueueDepth  = 64
	WriteQueueDepth = 64
	ConflictDepth   = 32
	// drain hysteresis for the write queue
	writeHiWater = WriteQueueDepth * 3 / 4
	writeLoWater = WriteQueueDepth / 4
)

// Config parameterizes a Controller.
type Config struct {
	Design        Design
	CapacityBytes uint64
	Ways          int // 1 = direct-mapped (the paper's default)

	// Access granularity on the DQ bus. Alloy and BEAR move 80 B TAD
	// units per 64 B demand; NDC appends the tag (2 beats) to read data.
	ReadBurst   sim.Tick
	WriteBurst  sim.Tick
	ReadBytes   uint64 // bytes moved per read access
	WriteBytes  uint64 // bytes moved per write access
	UsefulBytes uint64 // 64: the demand's data

	// FlushEntries sizes TDRAM's flush buffer / NDC's victim buffer.
	FlushEntries int

	// ProbeEnabled turns TDRAM's early tag probing on (ablation hook).
	ProbeEnabled bool
	// ProbeOldest selects the oldest queued read instead of the paper's
	// youngest-first policy (§III-E2 ablation).
	ProbeOldest bool

	// UsePredictor adds a MAP-I hit/miss predictor to Cascade Lake or
	// Alloy (§V-D): predicted-miss reads start the main-memory fetch in
	// parallel with the tag check.
	UsePredictor bool

	// BypassAdaptive enables BEAR's bandwidth-aware fill bypass.
	BypassAdaptive bool

	// UsePrefetcher adds a per-core stride prefetcher at the DRAM-cache
	// controller (the §V-D prefetcher study). Once a core's stride is
	// confident, PrefetchDegree lines ahead are fetched into the cache;
	// zero means 1.
	UsePrefetcher  bool
	PrefetchDegree int

	// OpenPage runs the cache device with an open-page row-buffer policy
	// instead of the paper's close-page auto-precharge. Only meaningful
	// for the tags-with-data designs: TDRAM's and NDC's lockstep
	// commands are defined with auto-precharge.
	OpenPage bool

	// Fault configures deterministic fault injection (internal/fault).
	// The zero value disables it; disabled runs are bit-identical to
	// builds without the subsystem. Ignored for NoCache.
	Fault fault.Config
}

// DefaultConfig returns the paper's configuration of the given design
// for a cache of the given capacity.
func DefaultConfig(d Design, capacityBytes uint64) Config {
	c := Config{
		Design:        d,
		CapacityBytes: capacityBytes,
		Ways:          1,
		ReadBurst:     sim.NS(2),
		WriteBurst:    sim.NS(2),
		ReadBytes:     64,
		WriteBytes:    64,
		UsefulBytes:   64,
		FlushEntries:  16,
	}
	switch d {
	case Alloy:
		c.ReadBurst, c.WriteBurst = sim.NS(2.5), sim.NS(2.5)
		c.ReadBytes, c.WriteBytes = 80, 80
	case BEAR:
		c.ReadBurst, c.WriteBurst = sim.NS(2.5), sim.NS(2.5)
		c.ReadBytes, c.WriteBytes = 80, 80
		c.BypassAdaptive = true
	case NDC:
		// Two extra beats carry the tag back on DQ (§VI).
		c.ReadBurst = sim.NS(2.25)
		c.ReadBytes = 72
	case TDRAM:
		c.ProbeEnabled = true
	}
	return c
}

// Validate rejects inconsistent configurations.
func (c *Config) Validate() error {
	if c.Design == NoCache {
		return nil
	}
	if c.CapacityBytes == 0 {
		return fmt.Errorf("dramcache: zero capacity")
	}
	if c.Ways <= 0 {
		return fmt.Errorf("dramcache: ways = %d", c.Ways)
	}
	if (c.Design == TDRAM || c.Design == NDC) && c.FlushEntries <= 0 {
		return fmt.Errorf("dramcache: %v needs a flush/victim buffer", c.Design)
	}
	if c.UsePredictor && c.Design != CascadeLake && c.Design != Alloy {
		return fmt.Errorf("dramcache: predictor only applies to tags-with-data designs")
	}
	if c.ProbeEnabled && c.Design != TDRAM {
		return fmt.Errorf("dramcache: early tag probing requires TDRAM")
	}
	if c.OpenPage && (c.Design == TDRAM || c.Design == NDC) {
		return fmt.Errorf("dramcache: open-page policy is incompatible with %v's auto-precharging commands", c.Design)
	}
	if c.Fault.Rate < 0 || c.Fault.Rate > 1 || c.Fault.UncorrectableFrac < 0 || c.Fault.UncorrectableFrac > 1 {
		return fmt.Errorf("dramcache: fault rates must be probabilities (rate=%g, uncorrectable=%g)",
			c.Fault.Rate, c.Fault.UncorrectableFrac)
	}
	return nil
}
