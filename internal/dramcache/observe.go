package dramcache

import (
	"fmt"

	"tdram/internal/mem"
	"tdram/internal/obs"
	"tdram/internal/sim"
)

// Observability wiring for the cache controller. Each channel controller
// owns one "cachectl.chN" process group with counter tracks for its read
// queue, write queue and flush-buffer occupancy, plus an instant-event
// track carrying tag-check results, probes and flush-buffer activity —
// the controller-side half of the Fig. 5-7 timelines (the device-side
// half lives in internal/dram).

// SetObserver attaches o to the controller, its cache device, and the
// backing store's device. Pass nil to detach.
func (c *Controller) SetObserver(o *obs.Observer) {
	c.obs = o
	if c.dev != nil {
		c.dev.SetObserver(o)
	}
	for _, cc := range c.chans {
		cc.trkReadQ, cc.trkWriteQ, cc.trkFlush, cc.trkEvents = 0, 0, 0, 0
	}
	if o.TraceEnabled() {
		for _, cc := range c.chans {
			proc := fmt.Sprintf("cachectl.ch%d", cc.index)
			cc.trkReadQ = o.Track(proc, "readq")
			cc.trkWriteQ = o.Track(proc, "writeq")
			cc.trkFlush = o.Track(proc, "flush")
			cc.trkEvents = o.Track(proc, "events")
		}
	}
	// Sampled time series. Gauge is a no-op without the sampler, and
	// every closure only reads model state.
	o.Gauge("cache.miss_ratio", func() float64 { return c.stats.Outcomes.MissRatio() })
	o.Gauge("cache.readq", func() float64 {
		n := 0
		for _, cc := range c.chans {
			n += len(cc.readQ)
		}
		return float64(n)
	})
	o.Gauge("cache.writeq", func() float64 {
		n := 0
		for _, cc := range c.chans {
			n += len(cc.writeQ) + len(cc.overflow)
		}
		return float64(n)
	})
	o.Gauge("cache.flush", func() float64 {
		n := 0
		for _, cc := range c.chans {
			n += len(cc.flush)
		}
		return float64(n)
	})
	o.Gauge("cache.conflict", func() float64 { return float64(c.conflictCount) })
	o.Gauge("cache.mmread_wait", func() float64 { return float64(len(c.mmReadWait)) })
	// Rolling read-latency percentiles. The closures read c.stats (not a
	// captured Stats pointer) so they survive the warmup ResetStats swap.
	o.Gauge("cache.read_latency.p50", func() float64 { return c.stats.ReadLatencyHist.PercentileNS(0.50) })
	o.Gauge("cache.read_latency.p90", func() float64 { return c.stats.ReadLatencyHist.PercentileNS(0.90) })
	o.Gauge("cache.read_latency.p99", func() float64 { return c.stats.ReadLatencyHist.PercentileNS(0.99) })
	if c.dev != nil {
		o.Gauge("cache.dq_util", busUtilGauge(o, c.dev.Channels(), func() uint64 {
			return c.dev.Stats().DQBusyTicks
		}))
		if c.dev.Params().HasTagBanks() {
			o.Gauge("cache.hm_util", busUtilGauge(o, c.dev.Channels(), func() uint64 {
				return c.dev.Stats().HMBusyTicks
			}))
		}
	}
}

// busUtilGauge builds a utilization series from a cumulative busy-tick
// counter: the fraction of the last sampling interval the bus spent
// reserved, averaged over channels.
func busUtilGauge(o *obs.Observer, channels int, busy func() uint64) func() float64 {
	var last uint64
	return func() float64 {
		cur := busy()
		d := cur - last
		last = cur
		iv := o.MetricsInterval()
		if iv <= 0 || channels == 0 {
			return 0
		}
		return float64(d) / (float64(iv) * float64(channels))
	}
}

// observeQueues refreshes the per-channel occupancy counter tracks;
// unchanged values dedup away inside the trace buffer.
func (cc *chanCtl) observeQueues() {
	o := cc.ctl.obs
	if o == nil || cc.trkReadQ == 0 {
		return
	}
	now := cc.now()
	o.CounterInt(cc.trkReadQ, now, int64(len(cc.readQ)))
	o.CounterInt(cc.trkWriteQ, now, int64(len(cc.writeQ)+len(cc.overflow)))
	o.CounterInt(cc.trkFlush, now, int64(len(cc.flush)))
}

// observeOutcome records a tag-check result: a run-summary counter and
// an instant at the time the result reaches the controller — on the HM
// bus for TDRAM/NDC, with the data burst otherwise.
func (cc *chanCtl) observeOutcome(outcome mem.Outcome, at sim.Tick) {
	o := cc.ctl.obs
	if o == nil {
		return
	}
	o.Inc("cache.outcome." + outcome.String())
	if cc.trkEvents != 0 {
		kind := "tag-result "
		if cc.tagDevice() {
			kind = "HM-result "
		}
		o.Instant(cc.trkEvents, kind+outcome.String(), at)
	}
}

// observeProbe records an early tag probe issue (§III-E).
func (cc *chanCtl) observeProbe(at sim.Tick) {
	o := cc.ctl.obs
	if o == nil {
		return
	}
	o.Inc("cache.probe")
	o.Instant(cc.trkEvents, "probe", at)
}

// observeFlushFill records a dirty victim entering the flush buffer.
func (cc *chanCtl) observeFlushFill() {
	o := cc.ctl.obs
	if o == nil {
		return
	}
	o.Inc("cache.flush.fill")
	if cc.trkEvents != 0 {
		now := cc.now()
		o.Instant(cc.trkEvents, "flush-fill", now)
		o.CounterInt(cc.trkFlush, now, int64(len(cc.flush)))
	}
}

// observeFault records a fault-injection event ("retry", "exhausted",
// "bypass", "set.retired", "hm.resend", "flush.retry", ...) as a
// run-summary counter under the "fault." prefix.
func (c *Controller) observeFault(event string) {
	if c.obs != nil {
		c.obs.Inc("fault." + event)
	}
}

// observeFlushDrain records one flush-buffer entry leaving via the given
// mode: "refresh" (tRFC window), "idle-slot" (miss-clean DQ slot) or
// "explicit" (RES command).
func (cc *chanCtl) observeFlushDrain(mode string) {
	o := cc.ctl.obs
	if o == nil {
		return
	}
	o.Inc("cache.flush.drain." + mode)
	if cc.trkEvents != 0 {
		now := cc.now()
		o.Instant(cc.trkEvents, "flush-drain "+mode, now)
		o.CounterInt(cc.trkFlush, now, int64(len(cc.flush)))
	}
}
