package dramcache

import (
	"testing"
	"testing/quick"

	"tdram/internal/mem"
)

func newStore(t *testing.T, lines uint64, ways int) *tagStore {
	t.Helper()
	ts, err := newTagStore(lines*mem.LineSize, ways)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTagStoreErrors(t *testing.T) {
	if _, err := newTagStore(64, 0); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := newTagStore(0, 1); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := newTagStore(64*5, 2); err == nil {
		t.Error("non-divisible capacity accepted")
	}
}

func TestDirectMappedFlow(t *testing.T) {
	ts := newStore(t, 8, 1)
	// Cold read: read to invalid counts as read-miss-clean (Table II).
	out, _, _ := ts.access(3, false, true)
	if out != mem.ReadMissClean {
		t.Fatalf("cold read outcome = %v", out)
	}
	// The fill is pending.
	if pr := ts.probe(3); !pr.Hit || !pr.Inflight {
		t.Fatalf("installed line probe = %+v", pr)
	}
	if !ts.fillDone(3) {
		t.Fatal("fillDone missed the line")
	}
	if pr := ts.probe(3); pr.Inflight {
		t.Fatal("inflight survived fillDone")
	}
	out, _, _ = ts.access(3, false, true)
	if out != mem.ReadHit {
		t.Errorf("second read = %v", out)
	}
	// Write hit dirties.
	out, _, _ = ts.access(3, true, true)
	if out != mem.WriteHit {
		t.Errorf("write = %v", out)
	}
	// Conflicting read (same set, 8 sets): line 11 evicts dirty line 3.
	out, victim, vd := ts.access(11, false, true)
	if out != mem.ReadMissDirty || victim != 3 || !vd {
		t.Errorf("conflict read = %v victim=%d dirty=%v", out, victim, vd)
	}
}

func TestWriteMissOutcomes(t *testing.T) {
	ts := newStore(t, 8, 1)
	out, _, _ := ts.access(5, true, true)
	if out != mem.WriteMissClean {
		t.Fatalf("write to invalid = %v", out)
	}
	// Write demands install full dirty lines, never inflight.
	if pr := ts.probe(5); !pr.Hit || pr.Inflight || !pr.Dirty {
		t.Fatalf("after write install: %+v", pr)
	}
	out, victim, vd := ts.access(13, true, true)
	if out != mem.WriteMissDirty || victim != 5 || !vd {
		t.Errorf("conflicting write = %v victim=%d dirty=%v", out, victim, vd)
	}
}

func TestNoInstallPeek(t *testing.T) {
	ts := newStore(t, 8, 1)
	out, _, _ := ts.access(2, false, false)
	if out != mem.ReadMissClean {
		t.Fatalf("outcome = %v", out)
	}
	if pr := ts.probe(2); pr.Hit {
		t.Error("install=false modified state")
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	ts := newStore(t, 16, 2) // 8 sets, 2 ways
	// Lines 0, 8, 16 share set 0.
	ts.access(0, false, true)
	ts.access(8, false, true)
	ts.access(0, false, true) // 0 MRU
	_, victim, _ := ts.access(16, false, true)
	if victim != 8 {
		t.Errorf("victim = %d, want LRU 8", victim)
	}
	if pr := ts.probe(0); !pr.Hit {
		t.Error("MRU line evicted")
	}
}

func TestMarkDirtyAndOccupancy(t *testing.T) {
	ts := newStore(t, 8, 1)
	ts.access(1, false, true)
	if !ts.markDirty(1) {
		t.Error("markDirty missed resident line")
	}
	if ts.markDirty(99) {
		t.Error("markDirty hit absent line")
	}
	v, d := ts.occupancy()
	if v != 0.125 || d != 0.125 {
		t.Errorf("occupancy = %v/%v", v, d)
	}
}

func TestFillDoneAfterEviction(t *testing.T) {
	ts := newStore(t, 8, 1)
	ts.access(0, false, true)
	ts.access(8, true, true) // evicts 0 before its fill
	if ts.fillDone(0) {
		t.Error("fillDone found evicted line")
	}
}

// Property: outcome classification always matches a reference model of
// the direct-mapped content.
func TestTagStoreReferenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		ts, err := newTagStore(16*mem.LineSize, 1)
		if err != nil {
			return false
		}
		type entry struct {
			line  uint64
			valid bool
			dirty bool
		}
		ref := make([]entry, 16)
		for _, o := range ops {
			line := uint64(o % 64)
			write := o%3 == 0
			set := line % 16
			e := &ref[set]
			var want mem.Outcome
			switch {
			case e.valid && e.line == line:
				want = mem.ReadHit
				if write {
					want = mem.WriteHit
				}
			default:
				kind := mem.Read
				if write {
					kind = mem.Write
				}
				want = mem.ClassifyOutcome(kind, false, e.valid && e.dirty)
			}
			got, _, _ := ts.access(line, write, true)
			if got != want {
				return false
			}
			// Apply to reference.
			if want.IsHit() {
				if write {
					e.dirty = true
				}
			} else {
				*e = entry{line: line, valid: true, dirty: write}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
