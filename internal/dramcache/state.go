// Package dramcache implements the DRAM-cache controller and the six
// evaluated designs from the paper: Intel Cascade Lake-style
// tags-in-ECC caching, Alloy, BEAR, NDC, TDRAM, and an Ideal
// (zero-latency-tag) upper bound, plus a no-DRAM-cache pass-through used
// by Figs. 2 and 12. The controller models per-channel read/write
// queues, FR-FCFS scheduling with write draining, a conflicting-request
// buffer, fills and writebacks against the DDR5 backing store, and the
// TDRAM device behaviours: in-DRAM tag compare, conditional column
// operation, the HM bus, the flush buffer and early tag probing.
package dramcache

import (
	"fmt"
	"math/bits"

	"tdram/internal/mem"
)

// lineState is the metadata of one resident line.
type lineState struct {
	tag      uint64
	valid    bool
	dirty    bool
	inflight bool   // fill from main memory pending
	lru      uint64 // larger = more recently used
}

// tagStore is the functional content state of the DRAM cache: a
// set-associative (ways=1 gives the paper's default direct-mapped)
// insert-on-miss tag array. It tracks only metadata — the simulator never
// moves real data — and is the single source of truth every design's tag
// check consults.
type tagStore struct {
	sets    uint64
	ways    int
	lines   []lineState
	lruTick uint64

	// Power-of-two set decode: replace the modulo/divide pair — which
	// dominates the tag-check cost for the default direct-mapped store —
	// with mask and shift. pow2 false falls back to the general arithmetic.
	pow2  bool
	mask  uint64
	shift uint

	// Graceful degradation under fault injection: errs counts
	// retry-exhausted (uncorrectable) errors per set; sets in retired are
	// out of service — every access misses clean without installing, so
	// the controller serves them from the backing store. Both maps are
	// lazily allocated: fault-free runs never touch them.
	retired map[uint64]bool
	errs    map[uint64]int
}

// newTagStore sizes the store for capacityBytes of 64 B lines.
func newTagStore(capacityBytes uint64, ways int) (*tagStore, error) {
	if ways <= 0 {
		return nil, fmt.Errorf("dramcache: ways = %d", ways)
	}
	lines := capacityBytes / mem.LineSize
	if lines == 0 || lines%uint64(ways) != 0 {
		return nil, fmt.Errorf("dramcache: capacity %d not divisible into %d ways", capacityBytes, ways)
	}
	t := &tagStore{sets: lines / uint64(ways), ways: ways, lines: make([]lineState, lines)}
	if t.sets&(t.sets-1) == 0 {
		t.pow2 = true
		t.mask = t.sets - 1
		t.shift = uint(bits.TrailingZeros64(t.sets))
	}
	return t, nil
}

func (t *tagStore) set(line uint64) (uint64, uint64) {
	if t.pow2 {
		return line & t.mask, line >> t.shift
	}
	return line % t.sets, line / t.sets
}

// setIndex is the set-only half of set, for the retirement bookkeeping.
func (t *tagStore) setIndex(line uint64) uint64 {
	if t.pow2 {
		return line & t.mask
	}
	return line % t.sets
}

// lineOf reconstructs a line address from set and tag.
func (t *tagStore) lineOf(set, tag uint64) uint64 { return tag*t.sets + set }

// probe is a read-only lookup.
type probeResult struct {
	Hit      bool
	Dirty    bool // dirty bit of the hit line, or of the LRU victim on miss
	Inflight bool // the hit line's fill is still pending
	Victim   uint64
}

// isRetired reports whether line's set is out of service.
func (t *tagStore) isRetired(line uint64) bool {
	return t.retired != nil && t.retired[t.setIndex(line)]
}

// recordError charges one uncorrectable error against line's set and
// returns the set's running count (0 once the set is already retired).
func (t *tagStore) recordError(line uint64) int {
	set := t.setIndex(line)
	if t.retired != nil && t.retired[set] {
		return 0
	}
	if t.errs == nil {
		t.errs = make(map[uint64]int)
	}
	t.errs[set]++
	return t.errs[set]
}

// retire takes line's set out of service, invalidating its ways, and
// returns the line addresses of any dirty victims that must still be
// written back. Idempotent.
func (t *tagStore) retire(line uint64) (dirty []uint64) {
	set := t.setIndex(line)
	if t.retired == nil {
		t.retired = make(map[uint64]bool)
	}
	if t.retired[set] {
		return nil
	}
	t.retired[set] = true
	base := set * uint64(t.ways)
	for w := 0; w < t.ways; w++ {
		l := &t.lines[base+uint64(w)]
		if l.valid && l.dirty {
			dirty = append(dirty, t.lineOf(set, l.tag))
		}
		*l = lineState{}
	}
	return dirty
}

func (t *tagStore) probe(line uint64) probeResult {
	if t.isRetired(line) {
		return probeResult{}
	}
	set, tag := t.set(line)
	base := set * uint64(t.ways)
	var victim *lineState
	for w := 0; w < t.ways; w++ {
		l := &t.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			return probeResult{Hit: true, Dirty: l.dirty, Inflight: l.inflight}
		}
		if victim == nil || !l.valid || (victim.valid && l.lru < victim.lru) {
			if victim == nil || victim.valid {
				victim = l
			}
		}
	}
	r := probeResult{}
	if victim.valid {
		r.Dirty = victim.dirty
		r.Victim = t.lineOf(set, victim.tag)
	}
	return r
}

// access performs the tag check and the insert-on-miss state transition
// in one atomic step (the commit point of the access's tag check). It
// returns the paper's Table II outcome and, when a valid victim is
// displaced, its line address and dirty bit.
//
// write=true marks the line dirty (demand writes carry the full 64 B).
// fillPending marks a read miss's new line inflight until the fill
// arrives; writes install complete lines and are never inflight.
// install=false (BEAR's bypassed fills) evaluates the outcome without
// modifying state.
func (t *tagStore) access(line uint64, write, install bool) (out mem.Outcome, victim uint64, victimDirty bool) {
	if t.isRetired(line) {
		// Retired sets never hit and never install: the access behaves as
		// a miss-clean the controller resolves against the backing store.
		kind := mem.Read
		if write {
			kind = mem.Write
		}
		return mem.ClassifyOutcome(kind, false, false), 0, false
	}
	set, tag := t.set(line)
	base := set * uint64(t.ways)
	t.lruTick++
	var slot *lineState
	for w := 0; w < t.ways; w++ {
		l := &t.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			// Hit.
			l.lru = t.lruTick
			if write {
				l.dirty = true
			}
			if write {
				return mem.WriteHit, 0, false
			}
			return mem.ReadHit, 0, false
		}
		if slot == nil || !l.valid || (slot.valid && l.lru < slot.lru) {
			if slot == nil || slot.valid {
				slot = l
			}
		}
	}
	// Miss: classify against the LRU victim, then install.
	kind := mem.Read
	if write {
		kind = mem.Write
	}
	if slot.valid {
		victim = t.lineOf(set, slot.tag)
		victimDirty = slot.dirty
	}
	out = mem.ClassifyOutcome(kind, false, slot.valid && slot.dirty)
	if !install {
		return out, victim, victimDirty
	}
	*slot = lineState{tag: tag, valid: true, dirty: write, inflight: !write, lru: t.lruTick}
	return out, victim, victimDirty
}

// fillDone clears the inflight bit of a previously installed read miss.
// It reports false when the line was displaced before its fill arrived
// (possible under heavy conflict traffic; the fill is then dropped).
func (t *tagStore) fillDone(line uint64) bool {
	set, tag := t.set(line)
	base := set * uint64(t.ways)
	for w := 0; w < t.ways; w++ {
		l := &t.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			l.inflight = false
			return true
		}
	}
	return false
}

// markDirty sets the dirty bit of a resident line (used when a waiting
// write drains from the conflict buffer after its line's fill).
func (t *tagStore) markDirty(line uint64) bool {
	set, tag := t.set(line)
	base := set * uint64(t.ways)
	for w := 0; w < t.ways; w++ {
		l := &t.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			l.dirty = true
			return true
		}
	}
	return false
}

// occupancy reports valid and dirty line fractions (diagnostics).
func (t *tagStore) occupancy() (valid, dirty float64) {
	var v, d int
	for i := range t.lines {
		if t.lines[i].valid {
			v++
			if t.lines[i].dirty {
				d++
			}
		}
	}
	n := float64(len(t.lines))
	return float64(v) / n, float64(d) / n
}
