package dramcache

import (
	"reflect"
	"testing"

	"tdram/internal/ecc"
	"tdram/internal/fault"
	"tdram/internal/mem"
)

// TestSelfCheckNotRepeated: the §III-C3 BIST sweep is memoized — building
// several tag-ECC controllers (one per matrix cell in a sweep) runs it at
// most once per process.
func TestSelfCheckNotRepeated(t *testing.T) {
	_ = defaultHarness(t, TDRAM)
	_ = defaultHarness(t, NDC)
	_ = defaultHarness(t, TDRAM)
	if got := ecc.SelfCheckRuns(); got != 1 {
		t.Errorf("BIST sweep ran %d times across three controllers, want exactly 1", got)
	}
}

func faultHarness(t *testing.T, fc fault.Config) *harness {
	cfg := DefaultConfig(TDRAM, testCapacity)
	cfg.Fault = fc
	return newHarness(t, cfg)
}

// TestFaultRetryThenExhaust: with every fault uncorrectable and a retry
// budget of 2, an access detects, retries twice with backoff, exhausts
// its budget and still completes (degraded, not wedged).
func TestFaultRetryThenExhaust(t *testing.T) {
	h := faultHarness(t, fault.Config{
		Rate: 1, Seed: 5, UncorrectableFrac: 1, RetryBudget: 2, RetireThreshold: -1,
	})
	h.read(100)
	h.drain()
	st := h.ctl.Stats()
	if st.Fault.Injected == 0 || st.Fault.Detected == 0 {
		t.Fatalf("rate-1 run injected nothing: %+v", st.Fault)
	}
	if st.Fault.Retries < 2 {
		t.Errorf("retries = %d, want >= 2 (budget consumed)", st.Fault.Retries)
	}
	if st.Fault.Exhausted == 0 {
		t.Errorf("no access exhausted its budget: %+v", st.Fault)
	}
	if st.Fault.SetsRetired != 0 {
		t.Errorf("retirement disabled but %d set(s) retired", st.Fault.SetsRetired)
	}
	if st.Outcomes.Count(mem.ReadMissClean) != 1 {
		t.Errorf("read did not complete as a miss: %v", st.Outcomes)
	}
}

// TestFaultSetRetirementBypass: with retries disabled and a threshold of
// one, the first uncorrectable error retires the set; later demands to
// that set bypass the cache and still complete.
func TestFaultSetRetirementBypass(t *testing.T) {
	h := faultHarness(t, fault.Config{
		Rate: 1, Seed: 5, UncorrectableFrac: 1, RetryBudget: -1, RetireThreshold: 1,
	})
	h.read(100)
	h.drain()
	st := h.ctl.Stats()
	if st.Fault.Exhausted == 0 {
		t.Fatalf("retries disabled yet nothing exhausted: %+v", st.Fault)
	}
	if st.Fault.SetsRetired == 0 {
		t.Fatalf("threshold 1 crossed but no set retired: %+v", st.Fault)
	}

	before := h.ctl.Stats().MMReads
	h.read(100) // same line, now a retired set
	h.drain()
	st = h.ctl.Stats()
	if st.Fault.Bypasses == 0 {
		t.Errorf("demand to a retired set did not bypass: %+v", st.Fault)
	}
	if st.MMReads <= before {
		t.Errorf("bypassed demand never reached backing memory (mm reads %d -> %d)", before, st.MMReads)
	}
}

// TestFaultSameSeedIdenticalStats: the end-to-end determinism criterion
// at the controller level — two harnesses with the same fault seed and
// the same access pattern finish with identical stats, at the same tick.
func TestFaultSameSeedIdenticalStats(t *testing.T) {
	run := func() (*Stats, int64) {
		h := faultHarness(t, fault.Config{Rate: 0.05, Seed: 99})
		for i := uint64(0); i < 60; i++ {
			h.read(i * 3)
		}
		for i := uint64(0); i < 20; i++ {
			h.write(i * 5)
		}
		h.drain()
		return h.ctl.Stats(), int64(h.s.Now())
	}
	sa, ta := run()
	sb, tb := run()
	if !reflect.DeepEqual(sa, sb) {
		t.Errorf("same seed, different stats:\na: %+v\nb: %+v", sa.Fault, sb.Fault)
	}
	if ta != tb {
		t.Errorf("same seed, different finish time: %d vs %d", ta, tb)
	}
}

// TestFaultCorrectedOnly: a vanishing uncorrectable fraction exercises
// only the corrected path — no retries, no degradation, and the access
// outcomes match a fault-free run (corrected faults are invisible to
// cache semantics).
func TestFaultCorrectedOnly(t *testing.T) {
	drive := func(h *harness) *Stats {
		for i := uint64(0); i < 40; i++ {
			h.read(i)
		}
		h.drain()
		return h.ctl.Stats()
	}
	clean := drive(defaultHarness(t, TDRAM))
	// HM-bus parity faults always force a re-send, so keep this run on
	// the ECC-protected sites only by comparing outcomes, not timing.
	faulty := drive(faultHarness(t, fault.Config{Rate: 0.5, Seed: 2, UncorrectableFrac: 1e-12}))
	if faulty.Fault.Corrected == 0 {
		t.Fatalf("rate-0.5 run corrected nothing: %+v", faulty.Fault)
	}
	// HM parity faults still force re-sends (they are never correctable),
	// so only the degradation counters must stay clean.
	if faulty.Fault.SetsRetired != 0 || faulty.Fault.Bypasses != 0 || faulty.Fault.VictimsLost != 0 {
		t.Errorf("corrected-only run degraded: %+v", faulty.Fault)
	}
	if !reflect.DeepEqual(clean.Outcomes, faulty.Outcomes) {
		t.Errorf("outcomes diverge under corrected-only faults:\nclean:  %v\nfaulty: %v",
			clean.Outcomes, faulty.Outcomes)
	}
}
