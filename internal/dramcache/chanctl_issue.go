package dramcache

import (
	"tdram/internal/dram"
	"tdram/internal/fault"
	"tdram/internal/mem"
	"tdram/internal/sim"
)

// readFault rolls the fault-injection sites of a committed read access:
// the tag-mat readout (RS-protected; tags-with-tag-banks designs only)
// and the DQ data beats (SECDED-protected). It runs BEFORE tags.access
// so a retried transaction never commits tag state twice. It reports
// true when the access must be abandoned for a retry.
func (cc *chanCtl) readFault(t *txn, iss dram.Issue) bool {
	in := cc.ctl.fault
	if in == nil {
		return false
	}
	if cc.tagDevice() && !t.outcomeKnown && in.TagRead() == fault.Detected {
		return cc.faultRetry(t, iss)
	}
	if in.DataBeat() == fault.Detected {
		return cc.faultRetry(t, iss)
	}
	return false
}

// hmRetransmit models parity-detected corruption of TDRAM's HM-bus
// result packets: each corrupted packet is re-sent after tHM. Parity
// detection is certain, so the result is only delayed, never wrong —
// and the tag access itself is never redone.
func (cc *chanCtl) hmRetransmit() sim.Tick {
	in := cc.ctl.fault
	if in == nil || cc.cfg().Design != TDRAM {
		return 0
	}
	var d sim.Tick
	for i := 0; ; i++ {
		if !in.HMPacket() {
			return d
		}
		if i >= in.RetryBudget() {
			in.NoteExhausted()
			cc.ctl.observeFault("hm.exhausted")
			return d
		}
		in.NoteRetry()
		cc.ctl.observeFault("hm.resend")
		d += cc.ch.Params().THM
	}
}

// tagDoneAt reports when the hit/miss result of a committed access is
// available at the controller: on the HM bus for TDRAM (§III-D1), with
// the data/tag burst for every other design.
func (cc *chanCtl) tagDoneAt(iss dram.Issue) sim.Tick {
	if cc.cfg().Design == TDRAM {
		return iss.HMAt
	}
	return iss.DataEnd
}

// recordTag samples the Fig. 9 tag-check latency at its arrival time.
// Only read demands are sampled: their tag check gates the LLC response
// and is the latency the figure compares; write tag activity affects
// reads indirectly through read-buffer contention, which the queueing
// samples capture.
func (cc *chanCtl) recordTag(t *txn, at sim.Tick) {
	if t.kind != txnRead {
		return
	}
	cc.ctl.sim.ScheduleArgAt(at, recordTagEv, t)
}

// recordTagEv samples a tag-check latency at its arrival time.
func recordTagEv(a any, when sim.Tick) {
	t := a.(*txn)
	t.cc.ctl.sampleTagCheck(when - t.arrive)
}

// meterColRead accounts one column read moving bytes to the controller.
func (cc *chanCtl) meterColRead() {
	cc.ctl.meter.Cols++
	cc.ctl.meter.Bytes += cc.cfg().ReadBytes
}

func (cc *chanCtl) meterColWrite() {
	cc.ctl.meter.Cols++
	cc.ctl.meter.Bytes += cc.cfg().WriteBytes
}

// issueRead handles a committed demand-read access.
func (cc *chanCtl) issueRead(t *txn, iss dram.Issue) {
	cfg := cc.cfg()
	tr := &cc.st().Traffic
	if cc.ctl.fault != nil && cc.readFault(t, iss) {
		return
	}
	cc.st().ReadQueueing.AddTick(iss.At - t.arrive)
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.Span(mem.PhaseQueueWait, iss.At-t.arrive)
		}
	}

	if t.outcomeKnown {
		// Ideal read-hit, or a TDRAM access whose outcome a probe fixed.
		switch t.outcome {
		case mem.ReadHit:
			cc.meterColRead()
			tr.DemandBytes += 64
			tr.OverheadBytes += cfg.ReadBytes - 64
			if r := t.req; r != nil {
				if j := r.J; j != nil {
					j.Span(mem.PhaseDQBurst, iss.DataEnd-iss.DataStart)
				}
			}
			cc.completeReadAt(t, iss.DataEnd)
		case mem.ReadMissDirty:
			// Probed miss-dirty: this access fetches the dirty victim;
			// the demand's backing fetch started at probe time.
			cc.meterColRead()
			tr.VictimBytes += 64
			tr.OverheadBytes += cfg.ReadBytes - 64
			cc.ctl.sim.ScheduleArgAt(iss.DataEnd, probedVictimEv, t)
		default:
			panic("dramcache: unexpected pre-known read outcome " + t.outcome.String())
		}
		return
	}

	// The tag check commits with this access.
	install := true
	if cfg.Design == BEAR {
		if pr := cc.ctl.tags.probe(t.line); !pr.Hit && cc.ctl.bearBypassFill(t.line) {
			install = false
			cc.st().FillsBypassed++
		}
	}
	outcome, victim, _ := cc.ctl.tags.access(t.line, false, install)
	t.outcome, t.outcomeKnown, t.victim = outcome, true, victim
	cc.st().Outcomes.Add(outcome)
	cc.ctl.bearObserve(t.line, outcome)
	if cc.ctl.predictor != nil {
		cc.ctl.predictor.Update(t.req.Core, t.line, outcome.IsHit())
	}
	tagAt := cc.tagDoneAt(iss) + cc.hmRetransmit()
	cc.observeOutcome(outcome, tagAt)
	cc.recordTag(t, tagAt)
	cc.journeyTagSpans(t, iss, tagAt)

	switch outcome {
	case mem.ReadHit:
		cc.ctl.scorePrefetch(t.line)
		cc.meterColRead()
		tr.DemandBytes += 64
		tr.OverheadBytes += cfg.ReadBytes - 64
		if r := t.req; r != nil {
			if j := r.J; j != nil {
				j.Span(mem.PhaseDQBurst, iss.DataEnd-iss.DataStart)
			}
		}
		cc.completeReadAt(t, iss.DataEnd)

	case mem.ReadMissClean:
		switch cfg.Design {
		case TDRAM:
			// Conditional column operation: the in-DRAM compare gated the
			// column decode — no column op, no DQ transfer. The reserved
			// DQ slot drains one flush-buffer entry instead (§III-D2).
			cc.drainIdleSlot(iss.DataStart)
		case NDC:
			// NDC always performs the column operation (energy) but
			// transfers nothing on a miss-clean (§VI).
			cc.ctl.meter.Cols++
		default:
			cc.meterColRead()
			tr.DiscardBytes += 64
			tr.OverheadBytes += cfg.ReadBytes - 64
		}
		if install {
			cc.ctl.markInflight(t.line)
		}
		cc.resolveMissRead(t, tagAt, install)

	case mem.ReadMissDirty:
		// Dirty victim streams back with hit timing in every design.
		cc.meterColRead()
		tr.VictimBytes += 64
		tr.OverheadBytes += cfg.ReadBytes - 64
		cc.ctl.markInflight(t.line)
		cc.ctl.sim.ScheduleArgAt(iss.DataEnd, writebackVictimEv, t)
		cc.resolveMissRead(t, tagAt, true)
	}
}

// journeyTagSpans attributes a committed access's tag resolution to the
// demand's journey: the in-DRAM tag access, then (TDRAM) the HM-bus
// result return including parity retransmits. It also records the
// resolved outcome for journey classification.
func (cc *chanCtl) journeyTagSpans(t *txn, iss dram.Issue, tagAt sim.Tick) {
	r := t.req
	if r == nil {
		return
	}
	j := r.J
	if j == nil {
		return
	}
	j.Note(t.outcome)
	if cc.cfg().Design == TDRAM {
		j.Span(mem.PhaseTagCheck, iss.TagInt-iss.At)
		j.Span(mem.PhaseHMBus, tagAt-iss.TagInt)
	} else {
		j.Span(mem.PhaseTagCheck, tagAt-iss.At)
	}
}

// resolveMissRead starts (or joins) the backing fetch for a read miss
// once the controller knows the outcome at tagAt.
func (cc *chanCtl) resolveMissRead(t *txn, tagAt sim.Tick, fill bool) {
	if t.predStarted {
		// §V-D: the predictor already launched the fetch; the demand
		// finishes when both the tag result and the data are in.
		cc.ctl.sim.ScheduleArgAt(tagAt, tagMissResultEv, t)
		return
	}
	t.fill = fill
	cc.ctl.sim.ScheduleArgAt(tagAt, missFetchEv, t)
}

// probedVictimEv finishes a probed miss-dirty's victim readout: the
// victim goes to the writeback queue, and the fill dispatches once the
// backing data has also arrived.
func probedVictimEv(a any, _ sim.Tick) {
	t := a.(*txn)
	cc := t.cc
	cc.ctl.writeback(t.victim)
	t.victimDone = true
	if t.mmArrived {
		cc.ctl.dispatchFill(t.line)
	}
}

// writebackVictimEv queues a read-miss-dirty's victim once its data
// finished streaming to the controller.
func writebackVictimEv(a any, _ sim.Tick) {
	t := a.(*txn)
	t.cc.ctl.writeback(t.victim)
}

// tagMissResultEv delivers a predicted-miss read's tag result (§V-D).
func tagMissResultEv(a any, _ sim.Tick) {
	t := a.(*txn)
	t.tagSaidMiss = true
	if t.predDataAt != 0 {
		t.cc.finishPredictedMiss(t)
	}
}

// missFetchEv starts a read miss's backing fetch once the tag result is
// at the controller.
func missFetchEv(a any, _ sim.Tick) {
	t := a.(*txn)
	t.cc.ctl.missFetch(t)
}

// predictorDataEv records the arrival of a predicted-miss prefetch.
func predictorDataEv(a any, _ sim.Tick) {
	t := a.(*txn)
	t.cc.predictorData(t)
}

// predictorData records the arrival of a predicted-miss prefetch.
func (cc *chanCtl) predictorData(t *txn) {
	t.predDataAt = cc.now()
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.Exit(mem.PhaseMissFetch, t.predDataAt)
		}
	}
	if t.tagSaidMiss {
		cc.finishPredictedMiss(t)
	}
}

func (cc *chanCtl) finishPredictedMiss(t *txn) {
	cc.completeReadAt(t, cc.now())
	cc.ctl.resolveInflight(t.line)
	cc.ctl.dispatchFill(t.line)
	t.tagSaidMiss = false // guard against double finish
	t.predStarted = false
}

// completeReadAt finishes t's demand read at the given time.
func (cc *chanCtl) completeReadAt(t *txn, at sim.Tick) {
	cc.ctl.sim.ScheduleArgAt(at, completeReadEv, t)
}

// completeReadEv responds to a demand read at its data-arrival time.
func completeReadEv(a any, when sim.Tick) {
	t := a.(*txn)
	c := t.cc.ctl
	c.sampleReadLatency(when - t.req.Arrive)
	c.finishJourney(t.req, when)
	t.req.Complete()
	c.retryUpstream()
}

// issueWriteTagRead handles the CL-family tag-check read for a write.
func (cc *chanCtl) issueWriteTagRead(t *txn, iss dram.Issue) {
	cfg := cc.cfg()
	tr := &cc.st().Traffic
	if cc.ctl.fault != nil && cc.ctl.fault.DataBeat() == fault.Detected && cc.faultRetry(t, iss) {
		return
	}
	cc.st().ReadQueueing.AddTick(iss.At - t.arrive)
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			// The CL-family tag read is a full data burst: its queueing and
			// burst time are the write's tag-check cost.
			j.Span(mem.PhaseQueueWait, iss.At-t.arrive)
			j.Span(mem.PhaseTagCheck, iss.DataEnd-iss.At)
		}
	}
	outcome, victim, _ := cc.ctl.tags.access(t.line, true, true)
	cc.st().Outcomes.Add(outcome)
	cc.observeOutcome(outcome, iss.DataEnd)
	cc.ctl.bearObserve(t.line, outcome)
	cc.meterColRead()
	if outcome == mem.WriteMissDirty {
		tr.VictimBytes += 64
	} else {
		// Write-hit and write-miss-clean tag-read data is discarded the
		// moment the comparison completes (§II-B3).
		tr.DiscardBytes += 64
	}
	tr.OverheadBytes += cfg.ReadBytes - 64
	cc.recordTag(t, iss.DataEnd)
	w := &txn{
		cc: cc, kind: txnWrite, req: t.req, line: t.line, bank: t.bank, row: t.row, arrive: cc.now(),
		outcomeKnown: true, outcome: outcome, victim: victim,
	}
	cc.ctl.sim.ScheduleArgAt(iss.DataEnd, writeTagDoneEv, w)
}

// writeTagDoneEv acts on a CL-family write's tag-read result at data
// arrival: a dirty victim heads to the writeback queue, and the demand's
// data write enters the write queue.
func writeTagDoneEv(a any, _ sim.Tick) {
	w := a.(*txn)
	cc := w.cc
	if w.outcome == mem.WriteMissDirty {
		cc.ctl.writeback(w.victim)
	}
	cc.enqueueWriteTxn(w)
}

// enqueueWriteTxn adds a data write, overflowing if the queue is full.
func (cc *chanCtl) enqueueWriteTxn(w *txn) {
	if len(cc.writeQ) >= WriteQueueDepth {
		cc.overflow = append(cc.overflow, w)
		return
	}
	cc.writeQ = append(cc.writeQ, w)
	cc.pass()
}

// issueWrite handles a committed data write (demand write or ActWr).
func (cc *chanCtl) issueWrite(t *txn, iss dram.Issue) {
	cfg := cc.cfg()
	tr := &cc.st().Traffic
	if !t.outcomeKnown {
		// NDC/TDRAM ActWr: the tag check happens in-DRAM at commit. A
		// detected tag-mat error retries the whole ActWr (the compare,
		// hence the conditional write, cannot be trusted).
		if cc.ctl.fault != nil && cc.ctl.fault.TagRead() == fault.Detected && cc.faultRetry(t, iss) {
			return
		}
		outcome, victim, _ := cc.ctl.tags.access(t.line, true, true)
		t.outcome, t.outcomeKnown = outcome, true
		cc.st().Outcomes.Add(outcome)
		tagAt := cc.tagDoneAt(iss) + cc.hmRetransmit()
		cc.observeOutcome(outcome, tagAt)
		cc.recordTag(t, tagAt)
		cc.journeyTagSpans(t, iss, tagAt)
		if outcome == mem.WriteMissDirty {
			// The displaced dirty line moves into the flush buffer with
			// an internal read — no DQ turnaround (§III-D2).
			cc.ctl.meter.Cols++ // internal read column op
			cc.pushFlush(victim)
		}
	}
	cc.meterColWrite()
	tr.DemandBytes += 64
	tr.OverheadBytes += cfg.WriteBytes - 64
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.Exit(mem.PhaseFlushStall, iss.At)
			j.Span(mem.PhaseQueueWait, iss.At-t.arrive)
			j.Span(mem.PhaseDQBurst, iss.DataEnd-iss.DataStart)
		}
	}
	if r := t.req; r != nil {
		cc.ctl.finishJourney(r, iss.DataEnd)
	}
}

// issueFill writes fetched miss data into the cache.
func (cc *chanCtl) issueFill(t *txn, iss dram.Issue) {
	cfg := cc.cfg()
	cc.meterColWrite()
	cc.st().Traffic.FillBytes += 64
	cc.st().Traffic.OverheadBytes += cfg.WriteBytes - 64
	cc.ctl.tags.fillDone(t.line)
	_ = iss
}

// issueVictimRead fetches a dirty victim's data (Ideal design).
func (cc *chanCtl) issueVictimRead(t *txn, iss dram.Issue) {
	cfg := cc.cfg()
	if cc.ctl.fault != nil && cc.ctl.fault.DataBeat() == fault.Detected && cc.faultRetry(t, iss) {
		return
	}
	cc.st().ReadQueueing.AddTick(iss.At - t.arrive)
	cc.meterColRead()
	cc.st().Traffic.VictimBytes += 64
	cc.st().Traffic.OverheadBytes += cfg.ReadBytes - 64
	cc.ctl.sim.ScheduleArgAt(iss.DataEnd, victimReadDoneEv, t)
}

// victimReadDoneEv completes an Ideal-design victim read: the line heads
// to the writeback queue and dependent writes become issuable.
func victimReadDoneEv(a any, _ sim.Tick) {
	t := a.(*txn)
	cc := t.cc
	cc.ctl.writeback(t.line)
	t.done = true
	cc.pass()
}

// dispatchFill enqueues the fill write for a line on its home channel.
func (c *Controller) dispatchFill(line uint64) {
	if c.fault != nil && c.tags.isRetired(line) {
		return // the set was retired while the fetch was in flight
	}
	chIdx, bank := c.dev.Route(line)
	c.chans[chIdx].enqueueFill(line, bank)
}

// tryProbe issues an early tag probe in an otherwise unused slot
// (§III-E): tag bank and HM bus only, no data-bank activity.
func (cc *chanCtl) tryProbe(now sim.Tick) bool {
	var pick *txn
	// The paper's selection policy picks the youngest eligible request
	// (§III-E2), so the scan starts from the queue tail; ProbeOldest
	// reverses it for the ablation. The scan is window-bounded like the
	// MAIN arbiter's.
	checked := 0
	for i := range cc.readQ {
		t := cc.readQ[len(cc.readQ)-1-i]
		if cc.cfg().ProbeOldest {
			t = cc.readQ[i]
		}
		if t.kind != txnRead || t.probed || t.outcomeKnown || t.predStarted {
			continue
		}
		if checked++; checked > schedWindow {
			break
		}
		if cc.ch.Earliest(dram.Op{Kind: dram.OpProbe, Bank: t.bank}, now) != now {
			continue
		}
		pick = t
		break
	}
	if pick == nil {
		return false
	}
	iss := cc.ch.Commit(dram.Op{Kind: dram.OpProbe, Bank: pick.bank}, now)
	cc.st().Probes++
	cc.observeProbe(now)
	pick.probed = true
	outcome, victim, _ := cc.ctl.tags.access(pick.line, false, true)
	pick.outcome, pick.outcomeKnown, pick.victim = outcome, true, victim
	cc.st().Outcomes.Add(outcome)
	cc.observeOutcome(outcome, iss.HMAt)
	if !outcome.IsHit() {
		cc.ctl.markInflight(pick.line)
	}
	hmAt := iss.HMAt + cc.hmRetransmit()
	if r := pick.req; r != nil {
		if j := r.J; j != nil {
			j.Note(outcome)
			j.Span(mem.PhaseTagCheck, iss.TagInt-iss.At)
			j.Span(mem.PhaseHMBus, hmAt-iss.TagInt)
		}
	}
	cc.ctl.sim.ScheduleArgAt(hmAt, probeResultEv, pick)
	return true
}

// probeResultEv delivers a probe's HM-bus result.
func probeResultEv(a any, when sim.Tick) {
	t := a.(*txn)
	t.cc.probeResult(t, when)
}

// probeResult acts on a probe's HM-bus result.
func (cc *chanCtl) probeResult(t *txn, at sim.Tick) {
	cc.ctl.sampleTagCheck(at - t.arrive)
	t.probeResolved = true
	switch t.outcome {
	case mem.ReadHit:
		cc.st().ProbeHits++
		cc.pass() // now eligible for a MAIN slot
	case mem.ReadMissClean:
		// The request leaves the read queue without ever touching the
		// data banks; the backing fetch starts immediately.
		cc.st().ProbeMissClean++
		cc.st().ReadQueueing.AddTick(at - t.arrive)
		if r := t.req; r != nil {
			if j := r.J; j != nil {
				j.Span(mem.PhaseQueueWait, at-t.arrive)
			}
		}
		cc.remove(&cc.readQ, t)
		t.fill = true
		cc.ctl.missFetch(t)
		cc.pass()
	case mem.ReadMissDirty:
		// Start the backing fetch now; the MAIN access still must read
		// the dirty victim before the fill may overwrite it.
		cc.st().ProbeMissDirty++
		if r := t.req; r != nil {
			if j := r.J; j != nil {
				j.Enter(mem.PhaseMissFetch, at)
			}
		}
		cc.ctl.stats.MMReads++
		cc.ctl.stats.Traffic.MMDemandBytes += 64
		cc.ctl.mmMeter.Acts++
		cc.ctl.mmMeter.Cols++
		cc.ctl.mmMeter.Bytes += 64
		if !cc.ctl.mm.ReadArg(t.line, probeMissDataEv, t) {
			cc.ctl.parkMMRead(pendingMM{line: t.line, fn: probeMissDataEv, arg: t})
		}
		cc.pass()
	}
}

// probeMissDataEv completes a probed miss-dirty's backing fetch: the
// demand is answered from the controller, and the fill dispatches once
// the victim has also been read out.
func probeMissDataEv(a any, _ sim.Tick) {
	t := a.(*txn)
	c := t.cc.ctl
	now := c.sim.Now()
	c.sampleReadLatency(now - t.req.Arrive)
	if j := t.req.J; j != nil {
		j.Exit(mem.PhaseMissFetch, now)
	}
	c.finishJourney(t.req, now)
	t.req.Complete()
	c.resolveInflight(t.line)
	t.mmArrived = true
	if t.victimDone {
		c.dispatchFill(t.line)
	}
	c.retryUpstream()
}

// pushFlush parks a dirty victim in the flush buffer.
func (cc *chanCtl) pushFlush(victim uint64) {
	cc.flush = append(cc.flush, flushEntry{line: victim})
	cc.st().FlushOccupancy.Add(float64(len(cc.flush)))
	if len(cc.flush) > cc.st().FlushMax {
		cc.st().FlushMax = len(cc.flush)
	}
	cc.observeFlushFill()
}

// popFlush reads out the head flush-buffer entry, rolling its SECDED
// fault site. ok=false means the drain slot produced nothing: either a
// detected error left the entry parked for a later retry, or (budget
// exhausted) the victim was dropped — a lost writeback, counted but not
// charged to set retirement (the flush buffer is controller-edge SRAM,
// not a tag mat).
func (cc *chanCtl) popFlush() (line uint64, ok bool) {
	e := &cc.flush[0]
	if in := cc.ctl.fault; in != nil && in.FlushEntry() == fault.Detected {
		if int(e.retries) >= in.RetryBudget() {
			cc.flush = cc.flush[1:]
			in.NoteExhausted()
			in.NoteVictimLost()
			cc.ctl.observeFault("flush.lost")
			return 0, false
		}
		e.retries++
		in.NoteRetry()
		cc.ctl.observeFault("flush.retry")
		return 0, false
	}
	line = e.line
	cc.flush = cc.flush[1:]
	return line, true
}

// drainIdleSlot uses a read-miss-clean's unused DQ slot to move one
// flush-buffer entry to the controller.
func (cc *chanCtl) drainIdleSlot(at sim.Tick) {
	if len(cc.flush) == 0 {
		return
	}
	line, ok := cc.popFlush()
	if !ok {
		return
	}
	cc.st().FlushDrainIdleSlot++
	cc.observeFlushDrain("idle-slot")
	cc.st().Traffic.VictimBytes += 64
	cc.ctl.meter.Bytes += 64
	cc.scheduleWriteback(at, line)
}

// lineEv carries a deferred writeback's line through the event kernel;
// records recycle through a per-channel freelist so idle-slot drains
// allocate nothing in steady state.
type lineEv struct {
	cc   *chanCtl
	line uint64
	next *lineEv
}

// scheduleWriteback queues line for the backing store at time at.
func (cc *chanCtl) scheduleWriteback(at sim.Tick, line uint64) {
	ev := cc.lineFree
	if ev == nil {
		ev = &lineEv{cc: cc}
	} else {
		cc.lineFree = ev.next
	}
	ev.line = line
	//tdlint:allow poollife — the scheduled event is the record's only live reference; writebackLineEv recycles it when it fires
	cc.ctl.sim.ScheduleArgAt(at, writebackLineEv, ev)
}

// writebackLineEv fires a deferred writeback and recycles its record.
func writebackLineEv(a any, _ sim.Tick) {
	ev := a.(*lineEv)
	cc, line := ev.cc, ev.line
	ev.next = cc.lineFree
	cc.lineFree = ev
	cc.ctl.writeback(line)
}

// refreshDrain streams flush-buffer entries to the controller during a
// refresh window, when banks are busy but the DQ bus is idle.
func (cc *chanCtl) refreshDrain(start, end sim.Tick) {
	slots := int((end - start) / cc.ch.Params().TBURST)
	for i := 0; i < slots && len(cc.flush) > 0; i++ {
		line, ok := cc.popFlush()
		if !ok {
			continue // the slot is spent either way
		}
		cc.st().FlushDrainRefresh++
		cc.observeFlushDrain("refresh")
		cc.st().Traffic.VictimBytes += 64
		cc.ctl.meter.Bytes += 64
		cc.ctl.writeback(line)
	}
}

// needExplicitDrain reports whether explicit drain commands are due: NDC
// must issue RES commands once its victim buffer passes 3/4 or whenever
// the channel is otherwise idle (it has no opportunistic path, so idle
// entries would never reach main memory); TDRAM drains explicitly only
// when completely full — refresh windows and miss-clean slots cover the
// rest (§III-D2).
func (cc *chanCtl) needExplicitDrain() bool {
	if !cc.tagDevice() || len(cc.flush) == 0 {
		return false
	}
	if cc.forceDrain {
		return true
	}
	if cc.cfg().Design == NDC {
		return len(cc.flush) >= cc.cfg().FlushEntries*3/4 ||
			(len(cc.readQ) == 0 && len(cc.writeQ) == 0)
	}
	return len(cc.flush) >= cc.cfg().FlushEntries
}

// tryExplicitDrain issues one explicit buffer-read command, paying the
// DQ turnaround the opportunistic paths avoid.
func (cc *chanCtl) tryExplicitDrain(now sim.Tick) bool {
	op := dram.Op{Kind: dram.OpStreamRead}
	if cc.ch.Earliest(op, now) != now {
		return false
	}
	cc.ch.Commit(op, now)
	line, ok := cc.popFlush()
	if !ok {
		return true // the command slot was spent regardless
	}
	cc.st().FlushDrainExplicit++
	cc.observeFlushDrain("explicit")
	if cc.cfg().Design == TDRAM {
		cc.st().FlushStalls++
	}
	cc.st().Traffic.VictimBytes += 64
	cc.ctl.meter.Bytes += 64
	cc.ctl.writeback(line)
	return true
}
