package dramcache

import (
	"fmt"

	"tdram/internal/dram"
	"tdram/internal/mem"
	"tdram/internal/obs"
	"tdram/internal/sim"
)

// txnKind identifies the controller-internal transaction types.
type txnKind uint8

const (
	// txnRead is a demand read performing (or having had) a tag check.
	txnRead txnKind = iota
	// txnWriteTagRead is the CL-family DRAM read issued on behalf of a
	// write demand to learn hit/miss and fetch a potential dirty victim.
	txnWriteTagRead
	// txnWrite is a data write: CL-family demand data after its tag
	// read, a BEAR bypassed write-hit, an Ideal write, or an NDC/TDRAM
	// ActWr (which performs its own tag check at commit).
	txnWrite
	// txnFill writes fetched miss data into the cache; no tag-state
	// transition (the miss already installed the line).
	txnFill
	// txnVictimRead fetches a dirty victim's data for writeback (Ideal).
	txnVictimRead
)

// txn is one queued controller transaction. It carries its owning
// channel controller so it can ride through the event kernel as a
// typed-argument callback's argument — the hot completion paths schedule
// (package function, *txn) pairs instead of capturing closures, which
// keeps the per-event allocation count at zero.
// Pointer- and word-sized fields lead and the flag bytes trail so the
// struct packs without interior padding (88 bytes rather than the 112
// the declaration-order layout costs); internal/analysis's fieldalign
// test pins this.
type txn struct {
	cc     *chanCtl
	req    *mem.Request // nil for fills
	dep    *txn         // issue only after dep.done (Ideal write-miss-dirty)
	line   uint64
	victim uint64
	bank   int
	row    int
	arrive sim.Tick

	// predDataAt is predictor bookkeeping (§V-D): a predicted-miss read
	// starts its main-memory fetch in parallel with the tag check.
	predDataAt sim.Tick

	kind    txnKind
	outcome mem.Outcome

	// fill records whether the backing fetch's data should be written
	// into the cache when it arrives (false for BEAR's bypassed fills).
	fill bool

	outcomeKnown bool
	victimDirty  bool

	probed        bool // TDRAM: outcome fixed by an early tag probe
	probeResolved bool // the probe's HM result reached the controller

	done bool

	// Probed miss-dirty coordination: the fill may only be written after
	// the victim was read out and the backing data arrived.
	mmArrived  bool
	victimDone bool

	predStarted bool
	tagSaidMiss bool

	// retries counts ECC-triggered re-issues of this transaction.
	retries uint8
}

// flushEntry is one victim line parked in the on-die flush buffer,
// carrying its own ECC retry count.
type flushEntry struct {
	line    uint64
	retries uint8
}

// chanCtl schedules one cache-device channel: its read and write queues,
// flush/victim buffer, probing, and drain modes.
type chanCtl struct {
	ctl   *Controller
	ch    *dram.Channel
	index int

	readQ    []*txn
	writeQ   []*txn
	overflow []*txn // fills/writes awaiting write-queue space

	flush []flushEntry // victim lines parked in the on-die flush buffer

	draining bool
	// forceDrain makes the explicit StreamRead path eligible whenever the
	// flush buffer is non-empty, regardless of the design's high-water
	// policy — the end-of-run residual drain (Controller.DrainResidual).
	forceDrain bool
	retryAt    sim.Tick
	retryGen   uint64
	retryFree  *retryEv // recycled retry-event records
	lineFree   *lineEv  // recycled deferred-writeback records

	// Perfetto tracks; zero when tracing is off (see observe.go).
	trkReadQ  obs.TrackID
	trkWriteQ obs.TrackID
	trkFlush  obs.TrackID
	trkEvents obs.TrackID
}

func (cc *chanCtl) cfg() *Config    { return &cc.ctl.cfg }
func (cc *chanCtl) now() sim.Tick   { return cc.ctl.sim.Now() }
func (cc *chanCtl) tagDevice() bool { d := cc.cfg().Design; return d == TDRAM || d == NDC }
func (cc *chanCtl) st() *Stats      { return &cc.ctl.stats }

// acceptRead admits a demand read (design-specific intake).
func (cc *chanCtl) acceptRead(req *mem.Request, bank int) bool {
	line := req.Line()
	if cc.cfg().Design == Ideal {
		return cc.acceptReadIdeal(req, line, bank)
	}
	if len(cc.readQ) >= ReadQueueDepth {
		return false
	}
	t := &txn{cc: cc, kind: txnRead, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now()}
	if cc.ctl.predictor != nil {
		if !cc.ctl.predictor.Predict(req.Core, line) && cc.ctl.mm.ReadQueueFree(line) {
			// Predicted miss: start the backing fetch in parallel.
			t.predStarted = true
			cc.st().PredictorMissStarts++
			cc.ctl.stats.MMReads++
			cc.ctl.stats.Traffic.MMDemandBytes += 64
			cc.ctl.mmMeter.Acts++
			cc.ctl.mmMeter.Cols++
			cc.ctl.mmMeter.Bytes += 64
			cc.ctl.mm.ReadArg(line, predictorDataEv, t)
			if j := req.J; j != nil {
				j.Enter(mem.PhaseMissFetch, cc.now())
			}
		}
	}
	cc.readQ = append(cc.readQ, t)
	cc.pass()
	return true
}

// acceptReadIdeal performs the zero-latency tag check at intake.
func (cc *chanCtl) acceptReadIdeal(req *mem.Request, line uint64, bank int) bool {
	// Reads that will need a queue slot must find one.
	if len(cc.readQ) >= ReadQueueDepth {
		return false
	}
	outcome, victim, _ := cc.ctl.tags.access(line, false, true)
	cc.st().Outcomes.Add(outcome)
	cc.observeOutcome(outcome, cc.now())
	cc.ctl.sampleTagCheck(0)
	if j := req.J; j != nil {
		j.Note(outcome)
	}
	switch outcome {
	case mem.ReadHit:
		cc.readQ = append(cc.readQ, &txn{
			cc: cc, kind: txnRead, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now(),
			outcomeKnown: true, outcome: outcome,
		})
		cc.pass()
	case mem.ReadMissClean:
		cc.ctl.markInflight(line)
		cc.ctl.missFetch(&txn{cc: cc, req: req, line: line, fill: true})
	case mem.ReadMissDirty:
		cc.ctl.markInflight(line)
		cc.ctl.missFetch(&txn{cc: cc, req: req, line: line, fill: true})
		vb := cc.bankOf(victim)
		cc.readQ = append(cc.readQ, &txn{
			cc: cc, kind: txnVictimRead, line: victim, bank: vb, row: cc.rowOf(victim), arrive: cc.now(),
		})
		cc.pass()
	}
	return true
}

// acceptWrite admits a (posted) demand write.
func (cc *chanCtl) acceptWrite(req *mem.Request, bank int) bool {
	line := req.Line()
	switch cc.cfg().Design {
	case CascadeLake, Alloy:
		return cc.acceptWriteTagRead(req, line, bank)
	case BEAR:
		// DRAM-cache-presence bits: write-hits skip the tag-check read.
		pr := cc.ctl.tags.probe(line)
		if pr.Hit {
			if len(cc.writeQ) >= WriteQueueDepth {
				return false
			}
			// The DCP bit answers the write-hit without any tag read, so
			// no tag-check latency sample exists for this demand.
			outcome, _, _ := cc.ctl.tags.access(line, true, true)
			cc.st().Outcomes.Add(outcome)
			cc.observeOutcome(outcome, cc.now())
			cc.ctl.bearObserve(line, outcome)
			cc.writeQ = append(cc.writeQ, &txn{
				cc: cc, kind: txnWrite, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now(),
				outcomeKnown: true, outcome: outcome,
			})
			cc.pass()
			return true
		}
		return cc.acceptWriteTagRead(req, line, bank)
	case NDC, TDRAM:
		if len(cc.writeQ) >= WriteQueueDepth {
			return false
		}
		cc.writeQ = append(cc.writeQ, &txn{
			cc: cc, kind: txnWrite, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now(),
		})
		cc.pass()
		return true
	case Ideal:
		if len(cc.writeQ) >= WriteQueueDepth {
			return false
		}
		outcome, victim, _ := cc.ctl.tags.access(line, true, true)
		cc.st().Outcomes.Add(outcome)
		cc.observeOutcome(outcome, cc.now())
		w := &txn{
			cc: cc, kind: txnWrite, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now(),
			outcomeKnown: true, outcome: outcome,
		}
		if outcome == mem.WriteMissDirty {
			if len(cc.readQ) >= ReadQueueDepth {
				return false
			}
			v := &txn{cc: cc, kind: txnVictimRead, line: victim, bank: cc.bankOf(victim), row: cc.rowOf(victim), arrive: cc.now()}
			w.dep = v
			cc.readQ = append(cc.readQ, v)
		}
		cc.writeQ = append(cc.writeQ, w)
		cc.pass()
		return true
	}
	panic("dramcache: unhandled design in acceptWrite")
}

// acceptWriteTagRead queues the CL-family tag-check read for a write.
func (cc *chanCtl) acceptWriteTagRead(req *mem.Request, line uint64, bank int) bool {
	if len(cc.readQ) >= ReadQueueDepth {
		return false
	}
	cc.st().WriteTagReads++
	cc.readQ = append(cc.readQ, &txn{
		cc: cc, kind: txnWriteTagRead, req: req, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now(),
	})
	cc.pass()
	return true
}

// enqueueFill queues the write that installs fetched miss data.
func (cc *chanCtl) enqueueFill(line uint64, bank int) {
	t := &txn{cc: cc, kind: txnFill, line: line, bank: bank, row: cc.rowOf(line), arrive: cc.now()}
	if len(cc.writeQ) >= WriteQueueDepth {
		cc.overflow = append(cc.overflow, t)
		return
	}
	cc.writeQ = append(cc.writeQ, t)
	cc.pass()
}

// bankOf routes a line within this channel (victims share the set, hence
// the channel, of the line that displaced them).
func (cc *chanCtl) bankOf(line uint64) int {
	_, bank := cc.ctl.dev.Route(line)
	return bank
}

// rowOf decodes a line's row (open-page scheduling).
func (cc *chanCtl) rowOf(line uint64) int {
	return cc.ctl.dev.Coord(line).Row
}

// op builds the device operation for a transaction.
func (cc *chanCtl) op(t *txn) dram.Op {
	cfg := cc.cfg()
	switch t.kind {
	case txnRead, txnWriteTagRead, txnVictimRead:
		return dram.Op{Kind: dram.OpRead, Bank: t.bank, Row: t.row, Tag: cc.tagDevice(), Burst: cfg.ReadBurst}
	default: // txnWrite, txnFill
		return dram.Op{Kind: dram.OpWrite, Bank: t.bank, Row: t.row, Tag: cc.tagDevice(), Burst: cfg.WriteBurst}
	}
}

// issuable reports whether t may issue (dependencies and flush-buffer
// space permitting).
func (cc *chanCtl) issuable(t *txn) bool {
	if t.dep != nil && !t.dep.done {
		return false
	}
	if t.probed && !t.probeResolved {
		// The controller acts on the probe's HM result before spending a
		// MAIN slot on a request it may be about to retire.
		return false
	}
	if t.kind == txnWrite && cc.tagDevice() && !t.outcomeKnown {
		// An ActWr that would displace a dirty victim needs flush space.
		pr := cc.ctl.tags.probe(t.line)
		if !pr.Hit && pr.Dirty && len(cc.flush) >= cc.cfg().FlushEntries {
			if r := t.req; r != nil {
				if j := r.J; j != nil {
					// Enter dedups, so repeated scheduling passes keep the
					// first stall tick; issueWrite exits the phase.
					j.Enter(mem.PhaseFlushStall, cc.now())
				}
			}
			return false
		}
	}
	return true
}

// pass is the scheduling loop: issue every command that can start now,
// then arrange a retry at the earliest future opportunity.
func (cc *chanCtl) pass() {
	now := cc.now()
	// Move overflowed fills into freed write-queue slots.
	for len(cc.overflow) > 0 && len(cc.writeQ) < WriteQueueDepth {
		cc.writeQ = append(cc.writeQ, cc.overflow[0])
		cc.overflow = cc.overflow[1:]
	}
	issued := false
	// future is the earliest future issue time seen by the final
	// (non-issuing) scan round below; earlier rounds' values are stale the
	// moment a commit changes the channel state, so each round overwrites.
	future := sim.Tick(-1)
	for {
		if cc.draining {
			if len(cc.writeQ) <= writeLoWater {
				cc.draining = false
			}
		} else if len(cc.writeQ) >= writeHiWater {
			cc.draining = true
		}

		// Forced victim-buffer drains: NDC drains with explicit RES
		// commands once the buffer passes 3/4; TDRAM only when full
		// (it prefers free slots, §III-D2).
		if cc.needExplicitDrain() && cc.tryExplicitDrain(now) {
			issued = true
			continue
		}

		primary, secondary := &cc.readQ, &cc.writeQ
		if cc.draining || len(cc.readQ) == 0 {
			primary, secondary = &cc.writeQ, &cc.readQ
		}
		t, fp := cc.firstIssuable(*primary, now)
		if t != nil {
			cc.remove(primary, t)
			cc.issue(t, now)
			issued = true
			continue
		}
		t, fs := cc.firstIssuable(*secondary, now)
		if t != nil {
			cc.remove(secondary, t)
			cc.issue(t, now)
			issued = true
			continue
		}
		// No MAIN command fits: a TDRAM controller uses the free CA/HM
		// slot for an early tag probe (§III-E).
		if cc.cfg().ProbeEnabled && cc.tryProbe(now) {
			issued = true
			continue
		}
		// Nothing committed this round, so the per-queue futures computed
		// by the two scans above describe the channel's current state —
		// retry arming reuses them rather than re-running both scans.
		future = fp
		if future < 0 || (fs >= 0 && fs < future) {
			future = fs
		}
		break
	}
	cc.scheduleRetry(now, future)
	cc.observeQueues()
	if issued {
		cc.ctl.retryUpstream()
	}
}

// schedWindow caps how deep the FR-FCFS arbiter looks into a queue, as
// real controllers' scheduling windows do; it also bounds the cost of a
// scheduling pass.
const schedWindow = 16

// firstIssuable returns the oldest transaction issuable exactly now,
// looking at most schedWindow candidates deep. Alongside it reports the
// earliest future issue time among the candidates scanned before it
// returned (-1 when none): when no transaction can issue now, that is
// the queue's retry bound, already computed — re-deriving it would
// repeat every Earliest call on unchanged channel state.
func (cc *chanCtl) firstIssuable(q []*txn, now sim.Tick) (*txn, sim.Tick) {
	future := sim.Tick(-1)
	seen := 0
	for _, t := range q {
		if !cc.issuable(t) {
			continue
		}
		if seen++; seen > schedWindow {
			return nil, future
		}
		at := cc.ch.Earliest(cc.op(t), now)
		if at == now {
			return t, future
		}
		if future < 0 || at < future {
			future = at
		}
	}
	return nil, future
}

func (cc *chanCtl) remove(q *[]*txn, t *txn) {
	for i, x := range *q {
		if x == t {
			*q = append((*q)[:i], (*q)[i+1:]...)
			return
		}
	}
	panic("dramcache: transaction not in queue")
}

// scheduleRetry arms a wakeup at the earliest future issue opportunity
// within the scheduling window. best carries the earliest candidate time
// the caller's queue scans already established (-1 when no transaction
// is pending); only the explicit-drain opportunity is probed here.
func (cc *chanCtl) scheduleRetry(now, best sim.Tick) {
	if cc.needExplicitDrain() {
		at := cc.ch.Earliest(dram.Op{Kind: dram.OpStreamRead}, now)
		if best < 0 || at < best {
			best = at
		}
	}
	if best <= now {
		if best == now {
			// A same-tick opportunity can appear when an issuable txn was
			// blocked by ordering; re-run on the next event boundary.
			best = now + 1
		} else {
			return
		}
	}
	if cc.retryAt != 0 && cc.retryAt <= best && cc.retryAt > now {
		return
	}
	// Generation-tagged so superseded retry events die without spawning
	// further retries. The generation rides in a pooled record rather
	// than a captured closure, so arming a retry allocates nothing in
	// steady state.
	cc.retryAt = best
	cc.retryGen++
	ev := cc.retryFree
	if ev == nil {
		ev = &retryEv{cc: cc}
	} else {
		cc.retryFree = ev.next
	}
	ev.gen = cc.retryGen
	cc.ctl.sim.ScheduleArgAt(best, chanRetryEv, ev)
}

// retryEv carries one armed retry's generation through the event kernel;
// records recycle through a per-channel freelist.
type retryEv struct {
	cc   *chanCtl
	gen  uint64
	next *retryEv
}

// chanRetryEv fires an armed retry: stale generations recycle their
// record and die, the live one re-runs the scheduling pass.
func chanRetryEv(a any, _ sim.Tick) {
	ev := a.(*retryEv)
	cc := ev.cc
	live := ev.gen == cc.retryGen
	ev.next = cc.retryFree
	cc.retryFree = ev
	if !live {
		return
	}
	cc.retryAt = 0
	cc.pass()
}

// faultRetry handles a detected (SECDED/RS-uncorrectable) error on t's
// access: within the per-request budget the transaction re-queues after
// an exponential command-slot backoff and reports true (the caller must
// abandon this issue — the tag state was never committed); past the
// budget it reports false, the error is charged against the set, and the
// access proceeds with whatever the (corrupt) device returned so the
// request still completes.
func (cc *chanCtl) faultRetry(t *txn, iss dram.Issue) bool {
	in := cc.ctl.fault
	if in == nil {
		// Unreachable in practice: a Detected outcome implies an armed
		// injector. The guard keeps the hook contract local.
		return false
	}
	if int(t.retries) >= in.RetryBudget() {
		in.NoteExhausted()
		cc.ctl.observeFault("exhausted")
		if o := cc.ctl.obs; o != nil && o.FlightEnabled() {
			o.FlightSnapshot(fmt.Sprintf("uncorrectable fault (line %#x)", t.line))
		}
		cc.ctl.recordUncorrectable(t.line)
		return false
	}
	t.retries++
	in.NoteRetry()
	cc.ctl.observeFault("retry")
	at := iss.DataEnd
	if at < cc.now() {
		at = cc.now()
	}
	backoff := cc.ch.Params().TBURST << (t.retries - 1)
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.MarkRetried()
			j.Enter(mem.PhaseRetryBackoff, at)
		}
	}
	cc.ctl.retryingTxns++
	cc.ctl.sim.ScheduleArgAt(at+backoff, faultRequeueEv, t)
	return true
}

// faultRequeueEv re-queues a transaction after its fault-retry backoff.
// ActWr data writes (txnWrite) return to the write queue; every other
// retried kind is a read-side access.
func faultRequeueEv(a any, when sim.Tick) {
	t := a.(*txn)
	cc := t.cc
	cc.ctl.retryingTxns--
	if r := t.req; r != nil {
		if j := r.J; j != nil {
			j.Exit(mem.PhaseRetryBackoff, when)
		}
	}
	if t.kind == txnWrite {
		cc.writeQ = append(cc.writeQ, t)
	} else {
		cc.readQ = append(cc.readQ, t)
	}
	cc.pass()
}

// issue commits one transaction's device operation and wires its
// completion handling.
func (cc *chanCtl) issue(t *txn, now sim.Tick) {
	iss := cc.ch.Commit(cc.op(t), now)
	switch t.kind {
	case txnRead:
		cc.issueRead(t, iss)
	case txnWriteTagRead:
		cc.issueWriteTagRead(t, iss)
	case txnWrite:
		cc.issueWrite(t, iss)
	case txnFill:
		cc.issueFill(t, iss)
	case txnVictimRead:
		cc.issueVictimRead(t, iss)
	}
}
