package dramcache

import (
	"testing"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// These golden tests pin the unloaded latency of each design's protocol
// flows (the paper's Table II operations and Figs. 5-7 timing), so a
// scheduling change that silently alters protocol timing fails loudly.
//
// Fixed anchors from Table III:
//   plain read:  cmd -> data end     = tRCD(12) + tCL(18) + tBURST(2) = 32 ns
//   TDRAM HM:    cmd -> result       = tRCD_TAG(7.5) + tHM(7.5)       = 15 ns
//   DDR5 read:   cmd -> data end     = tRCD(16) + tCL(16) + tBURST(2) = 34 ns

// run executes one cold read and returns (tag-check ns, completion ns).
func coldRead(t *testing.T, d Design) (float64, float64) {
	t.Helper()
	h := defaultHarness(t, d)
	var doneAt sim.Tick
	req := h.read(77)
	req.OnDone = func(*mem.Request) { h.completed++; doneAt = h.s.Now() }
	h.drain()
	return h.ctl.Stats().TagCheck.Value(), doneAt.Nanoseconds()
}

func TestGoldenReadMissLatency(t *testing.T) {
	cases := []struct {
		d        Design
		tagCheck float64 // ns
		done     float64 // ns: tag check + DDR5 read (34 ns unloaded)
	}{
		// Cascade Lake/Alloy/BEAR: tag+data read, result at data end.
		{CascadeLake, 32, 32 + 34},
		{Alloy, 32.5, 32.5 + 34}, // 80 B burst: +0.5 ns
		{BEAR, 32.5, 32.5 + 34},
		// NDC: HM tied to the column op, +2 tag beats on DQ.
		{NDC, 32.25, 32.25 + 34},
		// TDRAM: HM bus result at 15 ns starts the backing fetch early.
		{TDRAM, 15, 15 + 34},
		// Ideal: zero-latency tag, straight to the backing store.
		{Ideal, 0, 34},
	}
	for _, c := range cases {
		c := c
		t.Run(c.d.String(), func(t *testing.T) {
			tag, done := coldRead(t, c.d)
			if tag != c.tagCheck {
				t.Errorf("tag check = %v ns, want %v", tag, c.tagCheck)
			}
			if done != c.done {
				t.Errorf("completion = %v ns, want %v", done, c.done)
			}
		})
	}
}

func TestGoldenReadHitLatency(t *testing.T) {
	// After a fill, a hit returns data at the plain-read offset.
	cases := []struct {
		d    Design
		want float64
	}{
		{CascadeLake, 32}, {Alloy, 32.5}, {BEAR, 32.5},
		{NDC, 32.25}, {TDRAM, 32}, {Ideal, 32},
	}
	for _, c := range cases {
		c := c
		t.Run(c.d.String(), func(t *testing.T) {
			h := defaultHarness(t, c.d)
			h.read(5)
			h.drain()
			// Let the fill's bank-occupancy window expire so the hit is
			// truly unloaded.
			h.s.Run(h.s.Now() + sim.NS(100))
			start := h.s.Now()
			var doneAt sim.Tick
			req := h.read(5)
			req.OnDone = func(*mem.Request) { h.completed++; doneAt = h.s.Now() }
			h.drain()
			got := (doneAt - start).Nanoseconds()
			if got != c.want {
				t.Errorf("hit latency = %v ns, want %v", got, c.want)
			}
		})
	}
}

func TestGoldenWriteFlowCosts(t *testing.T) {
	// A single write demand must cost: CL-family = one DRAM read (tag
	// check) + one DRAM write; BEAR-miss the same; NDC/TDRAM = one ActWr;
	// Ideal = one write.
	expectCols := map[Design]uint64{
		CascadeLake: 2, Alloy: 2, BEAR: 2, NDC: 1, TDRAM: 1, Ideal: 1,
	}
	for d, want := range expectCols {
		d, want := d, want
		t.Run(d.String(), func(t *testing.T) {
			h := defaultHarness(t, d)
			h.write(3)
			h.drain()
			cm, _ := h.ctl.Meters()
			if cm.Cols != want {
				t.Errorf("column ops = %d, want %d", cm.Cols, want)
			}
		})
	}
}

func TestGoldenWriteMissDirtyCosts(t *testing.T) {
	// Write-miss-dirty: TDRAM keeps everything internal (ActWr + internal
	// read into the flush buffer: 2 column ops, one 64 B DQ transfer for
	// the demand data); Cascade Lake pays tag-read + write per write
	// demand (4 column ops over the two writes, 2 of them reads).
	td := defaultHarness(t, TDRAM)
	td.write(9)
	td.drain()
	td.write(9 + 4096)
	td.drain()
	cm, _ := td.ctl.Meters()
	if cm.Cols != 3 { // write, write, internal victim read
		t.Errorf("TDRAM column ops = %d, want 3", cm.Cols)
	}
	// Demand data only on the DQ bus; the victim moved via a drain slot.
	if got := td.ctl.Stats().Traffic.DemandBytes; got != 128 {
		t.Errorf("TDRAM demand bytes = %d, want 128", got)
	}
	if got := td.ctl.Stats().Traffic.DiscardBytes; got != 0 {
		t.Errorf("TDRAM discarded %d bytes", got)
	}

	cl := defaultHarness(t, CascadeLake)
	cl.write(9)
	cl.drain()
	cl.write(9 + 4096)
	cl.drain()
	cmCL, _ := cl.ctl.Meters()
	if cmCL.Cols != 4 { // (tag-read + write) x 2
		t.Errorf("CascadeLake column ops = %d, want 4", cmCL.Cols)
	}
	// The first tag read is discarded (write to invalid); the second
	// returns the dirty victim (useful).
	if got := cl.ctl.Stats().Traffic.DiscardBytes; got != 64 {
		t.Errorf("CascadeLake discard bytes = %d, want 64", got)
	}
	if got := cl.ctl.Stats().Traffic.VictimBytes; got != 64 {
		t.Errorf("CascadeLake victim bytes = %d, want 64", got)
	}
}

func TestGoldenTDRAMMissCleanNoColumnOp(t *testing.T) {
	// Conditional column operation: a TDRAM read-miss-clean activates the
	// bank but never performs the column op; NDC performs it.
	td := defaultHarness(t, TDRAM)
	td.read(11)
	td.drain()
	cm, _ := td.ctl.Meters()
	// Only the fill writes a column.
	if cm.Cols != 1 {
		t.Errorf("TDRAM column ops on miss-clean = %d, want 1 (the fill)", cm.Cols)
	}
	nd := defaultHarness(t, NDC)
	nd.read(11)
	nd.drain()
	cmN, _ := nd.ctl.Meters()
	if cmN.Cols != 2 {
		t.Errorf("NDC column ops on miss-clean = %d, want 2 (unconditional + fill)", cmN.Cols)
	}
}

func TestGoldenHistogramsPopulated(t *testing.T) {
	h := defaultHarness(t, TDRAM)
	for i := uint64(0); i < 16; i++ {
		h.read(i * 3)
	}
	h.drain()
	st := h.ctl.Stats()
	if st.TagCheckHist.N() != st.TagCheck.N() {
		t.Errorf("tag hist %d samples vs mean %d", st.TagCheckHist.N(), st.TagCheck.N())
	}
	if st.ReadLatencyHist.N() != st.ReadLatency.N() {
		t.Errorf("latency hist %d samples vs mean %d", st.ReadLatencyHist.N(), st.ReadLatency.N())
	}
	if p99 := st.ReadLatencyHist.Percentile(0.99); p99 <= 0 {
		t.Errorf("p99 = %v", p99)
	}
}
