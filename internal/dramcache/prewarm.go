package dramcache

import "fmt"

// This file lets the warmup-image fork share prewarmed DRAM-cache
// content across designs. Controller.Prewarm evolves the tag store
// purely functionally — tags.access + fillDone, no timing, no device
// state — and the resulting content depends only on the store's
// geometry (capacity, ways) and the access sequence, never on the
// design's protocol. A Prewarmer replays that exact transition function
// outside any controller, so one prewarm pass per workload produces a
// TagImage every same-geometry design cell installs instead of
// replaying the pass itself.

// TagImage is a frozen copy of prewarmed cache content. It is immutable
// after Image() returns: installs deep-copy it, so any number of
// controllers can start from the same image.
type TagImage struct {
	sets    uint64
	ways    int
	lines   []lineState
	lruTick uint64
}

// Prewarmer accumulates functional prewarm accesses against a private
// tag store with the same geometry a controller would build.
type Prewarmer struct {
	t *tagStore
}

// NewPrewarmer builds a prewarmer for a cache of capacityBytes split
// into ways (matching Config.CapacityBytes/Config.Ways; a zero ways
// selects the paper's direct-mapped default like Config.Validate does).
func NewPrewarmer(capacityBytes uint64, ways int) (*Prewarmer, error) {
	if ways == 0 {
		ways = 1
	}
	t, err := newTagStore(capacityBytes, ways)
	if err != nil {
		return nil, err
	}
	return &Prewarmer{t: t}, nil
}

// Prewarm applies one functional access — the same transition
// Controller.Prewarm performs: insert on miss, fill assumed done,
// victims dropped.
func (p *Prewarmer) Prewarm(line uint64, write bool) {
	p.t.access(line, write, true)
	if !write {
		p.t.fillDone(line)
	}
}

// Image freezes the current content into an immutable TagImage.
//
//tdlint:copier TagImage
func (p *Prewarmer) Image() *TagImage {
	return &TagImage{
		sets:    p.t.sets,
		ways:    p.t.ways,
		lines:   append([]lineState(nil), p.t.lines...),
		lruTick: p.t.lruTick,
	}
}

// InstallTags overwrites the controller's cache content with a deep
// copy of the image. It fails if the image's geometry does not match
// the controller's tag store — the caller then falls back to replaying
// prewarm. Installing into a NoCache controller (which has no tag
// store) is a no-op. Must be called before any traffic: installed
// content replaces whatever the store held.
func (c *Controller) InstallTags(img *TagImage) error {
	if c.tags == nil {
		return nil
	}
	if img.sets != c.tags.sets || img.ways != c.tags.ways {
		return fmt.Errorf("dramcache: tag image geometry %d sets x %d ways, controller has %d x %d",
			img.sets, img.ways, c.tags.sets, c.tags.ways)
	}
	copy(c.tags.lines, img.lines)
	c.tags.lruTick = img.lruTick
	return nil
}
