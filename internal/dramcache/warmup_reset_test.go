package dramcache

import (
	"math/rand"
	"testing"
)

// ResetStats marks the warmup/measured boundary; these tests pin the
// two counters that used to leak across it.

// PredictorAccuracy must cover measured-phase accesses only: the score
// restarts at the boundary while the learned table persists.
func TestResetStatsRestartsPredictorAccuracy(t *testing.T) {
	cfg := DefaultConfig(CascadeLake, testCapacity)
	cfg.UsePredictor = true
	h := newHarness(t, cfg)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		h.read(uint64(rng.Intn(1 << 20)))
	}
	h.drain()
	if h.ctl.Stats().PredictorAccuracy == 0 {
		t.Fatal("warmup trained nothing")
	}
	h.ctl.ResetStats()
	if acc := h.ctl.Stats().PredictorAccuracy; acc != 0 {
		t.Errorf("accuracy %v right after ResetStats, want 0 (stale warmup score)", acc)
	}
	// Measured-phase traffic scores against the (retained) warmed table.
	for i := 0; i < 300; i++ {
		h.read(uint64(rng.Intn(1 << 20)))
	}
	h.drain()
	if acc := h.ctl.Stats().PredictorAccuracy; acc <= 0 || acc > 1 {
		t.Errorf("post-reset accuracy = %v out of range", acc)
	}
}

// Prefetch usefulness scoring must not span the boundary: a line
// prefetched during warmup and referenced during the measured phase
// would otherwise count as a measured useful prefetch that was never a
// measured issued prefetch (PrefetchesUseful could exceed Issued).
func TestResetStatsClearsPrefetchScoring(t *testing.T) {
	cfg := DefaultConfig(TDRAM, testCapacity)
	cfg.UsePrefetcher = true
	cfg.PrefetchDegree = 2
	h := newHarness(t, cfg)
	for i := uint64(0); i < 64; i++ {
		h.read(1000 + i)
		h.drain()
	}
	if h.ctl.Stats().PrefetchesIssued == 0 {
		t.Fatal("warmup issued no prefetches")
	}
	h.ctl.ResetStats()
	if n := len(h.ctl.prefetched); n != 0 {
		t.Errorf("%d warmup prefetches still pending scoring after ResetStats", n)
	}
	// Keep striding: the lines the warmup prefetcher brought ahead are
	// referenced now, but must not score against the cleared ledger.
	for i := uint64(64); i < 96; i++ {
		h.read(1000 + i)
		h.drain()
	}
	st := h.ctl.Stats()
	if st.PrefetchesUseful > st.PrefetchesIssued {
		t.Errorf("useful %d > issued %d: warmup scoring leaked across ResetStats",
			st.PrefetchesUseful, st.PrefetchesIssued)
	}
}
