package dramcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdram/internal/backing"
	"tdram/internal/dram"
	"tdram/internal/mem"
	"tdram/internal/sim"
)

// testCapacity is 4096 lines (256 KiB): exactly one row-slice of the
// 8-channel, 16-bank, 32-column cache device.
const testCapacity = 256 << 10

type harness struct {
	t         *testing.T
	s         *sim.Simulator
	mm        *backing.Memory
	ctl       *Controller
	nextID    uint64
	completed int
	issued    int
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	s := sim.New()
	mm, err := backing.New(s, dram.DDR5Params())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := New(s, cfg, mm)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, s: s, mm: mm, ctl: ctl}
}

func defaultHarness(t *testing.T, d Design) *harness {
	return newHarness(t, DefaultConfig(d, testCapacity))
}

// demand enqueues one request, stepping the simulation through
// backpressure until accepted.
func (h *harness) demand(line uint64, kind mem.Kind) *mem.Request {
	h.nextID++
	req := &mem.Request{ID: h.nextID, Addr: line * mem.LineSize, Kind: kind}
	if kind == mem.Read {
		req.OnDone = func(*mem.Request) { h.completed++ }
	}
	for i := 0; ; i++ {
		if h.ctl.Enqueue(req) {
			break
		}
		if !h.s.Step() {
			h.t.Fatalf("simulation drained while request %d still rejected", req.ID)
		}
		if i > 1_000_000 {
			h.t.Fatalf("request %d rejected forever", req.ID)
		}
	}
	if kind == mem.Read {
		h.issued++
	}
	return req
}

func (h *harness) read(line uint64) *mem.Request  { return h.demand(line, mem.Read) }
func (h *harness) write(line uint64) *mem.Request { return h.demand(line, mem.Write) }

// drain runs the simulation until every issued read completed and the
// controller has no internal work left. Flush-buffer entries below the
// explicit-drain threshold wait for TDRAM's refresh windows, so after
// regular events run dry the loop pushes time across refresh intervals.
func (h *harness) drain() {
	for i := 0; i < 50; i++ {
		h.s.Run(0)
		if h.completed == h.issued && h.ctl.Pending() == 0 {
			return
		}
		// Advance through daemon-driven work (refresh drains).
		h.s.Run(h.s.Now() + sim.NS(8000))
	}
	h.t.Fatalf("did not drain: %d/%d reads complete, pending=%d", h.completed, h.issued, h.ctl.Pending())
}

func TestConfigValidation(t *testing.T) {
	s := sim.New()
	mm, _ := backing.New(s, dram.DDR5Params())
	bad := DefaultConfig(TDRAM, testCapacity)
	bad.FlushEntries = 0
	if _, err := New(s, bad, mm); err == nil {
		t.Error("TDRAM without flush buffer accepted")
	}
	bad2 := DefaultConfig(CascadeLake, testCapacity)
	bad2.ProbeEnabled = true
	if _, err := New(s, bad2, mm); err == nil {
		t.Error("probing on Cascade Lake accepted")
	}
	bad3 := DefaultConfig(TDRAM, testCapacity)
	bad3.UsePredictor = true
	if _, err := New(s, bad3, mm); err == nil {
		t.Error("predictor on TDRAM accepted")
	}
	if _, err := ParseDesign("tdram"); err != nil {
		t.Error(err)
	}
	if _, err := ParseDesign("bogus"); err == nil {
		t.Error("bogus design parsed")
	}
}

func TestMissThenHitEveryDesign(t *testing.T) {
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			h := defaultHarness(t, d)
			h.read(100)
			h.drain()
			h.read(100)
			h.drain()
			st := h.ctl.Stats()
			if st.Outcomes.Count(mem.ReadMissClean) != 1 {
				t.Errorf("miss count = %d", st.Outcomes.Count(mem.ReadMissClean))
			}
			if st.Outcomes.Count(mem.ReadHit) != 1 {
				t.Errorf("hit count = %d", st.Outcomes.Count(mem.ReadHit))
			}
			if st.MMReads != 1 {
				t.Errorf("mm reads = %d", st.MMReads)
			}
			if st.ReadLatency.N() != 2 {
				t.Errorf("latency samples = %d", st.ReadLatency.N())
			}
		})
	}
}

func TestNoCachePassThrough(t *testing.T) {
	h := defaultHarness(t, NoCache)
	h.read(1)
	h.write(2)
	h.drain()
	st := h.ctl.Stats()
	if st.MMReads != 1 || st.MMWrites != 1 {
		t.Errorf("mm traffic = %d/%d", st.MMReads, st.MMWrites)
	}
	if st.Outcomes.Total() != 0 {
		t.Error("no-cache recorded cache outcomes")
	}
	mmst := h.mm.Stats()
	if mmst.Reads != 1 || mmst.Writes != 1 {
		t.Errorf("backing saw %d/%d", mmst.Reads, mmst.Writes)
	}
}

func TestDirtyVictimWriteback(t *testing.T) {
	// 4096 sets direct-mapped: lines 7 and 7+4096 conflict.
	for _, d := range Designs() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			h := defaultHarness(t, d)
			h.write(7) // write-miss-clean: installs dirty
			h.drain()
			h.read(7 + 4096) // read-miss-dirty: evicts dirty 7
			h.drain()
			st := h.ctl.Stats()
			if got := st.Outcomes.Count(mem.WriteMissClean); got != 1 {
				t.Errorf("write-miss-clean = %d", got)
			}
			if got := st.Outcomes.Count(mem.ReadMissDirty); got != 1 {
				t.Errorf("read-miss-dirty = %d", got)
			}
			if h.mm.Stats().Writes != 1 {
				t.Errorf("victim writebacks at mm = %d", h.mm.Stats().Writes)
			}
		})
	}
}

func TestWriteMissDirtyFlushBuffer(t *testing.T) {
	for _, d := range []Design{TDRAM, NDC} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			h := defaultHarness(t, d)
			h.write(9)
			h.drain()
			h.write(9 + 4096) // displaces dirty 9 into the flush buffer
			h.drain()
			st := h.ctl.Stats()
			if got := st.Outcomes.Count(mem.WriteMissDirty); got != 1 {
				t.Errorf("write-miss-dirty = %d", got)
			}
			if st.FlushMax < 1 {
				t.Error("flush buffer never held the victim")
			}
			drains := st.FlushDrainRefresh + st.FlushDrainIdleSlot + st.FlushDrainExplicit
			if drains != 1 {
				t.Errorf("drains = %d, want 1", drains)
			}
			if h.mm.Stats().Writes != 1 {
				t.Errorf("victim never reached main memory: %d", h.mm.Stats().Writes)
			}
			if d == NDC && st.FlushDrainRefresh > 0 {
				t.Error("NDC drained during refresh; it only has explicit RES commands")
			}
		})
	}
}

func TestUnloadedTagCheckLatency(t *testing.T) {
	// Single unloaded read miss: TDRAM's HM result arrives at 15 ns
	// (tRCD_TAG + tHM); Cascade Lake needs the full data access, 32 ns.
	td := defaultHarness(t, TDRAM)
	td.read(5)
	td.drain()
	if got := td.ctl.Stats().TagCheck.Value(); got != 15 {
		t.Errorf("TDRAM unloaded tag check = %vns, want 15", got)
	}
	cl := defaultHarness(t, CascadeLake)
	cl.read(5)
	cl.drain()
	if got := cl.ctl.Stats().TagCheck.Value(); got != 32 {
		t.Errorf("CascadeLake unloaded tag check = %vns, want 32", got)
	}
	id := defaultHarness(t, Ideal)
	id.read(5)
	id.drain()
	if got := id.ctl.Stats().TagCheck.Value(); got != 0 {
		t.Errorf("Ideal tag check = %vns, want 0", got)
	}
}

func TestTDRAMMissCleanMovesNoData(t *testing.T) {
	h := defaultHarness(t, TDRAM)
	for i := uint64(0); i < 32; i++ {
		h.read(i * 7)
	}
	h.drain()
	tr := &h.ctl.Stats().Traffic
	if tr.DiscardBytes != 0 {
		t.Errorf("TDRAM discarded %d bytes; conditional column op must prevent this", tr.DiscardBytes)
	}
	// All cache-bus traffic is fills (the misses install lines).
	if tr.DemandBytes != 0 {
		t.Errorf("unexpectedly served %d demand bytes from a cold cache", tr.DemandBytes)
	}
	cl := defaultHarness(t, CascadeLake)
	for i := uint64(0); i < 32; i++ {
		cl.read(i * 7)
	}
	cl.drain()
	if cl.ctl.Stats().Traffic.DiscardBytes == 0 {
		t.Error("CascadeLake miss-clean reads must discard fetched data")
	}
}

func TestCLWritesConsumeReadSlots(t *testing.T) {
	cl := defaultHarness(t, CascadeLake)
	for i := uint64(0); i < 16; i++ {
		cl.write(i)
	}
	cl.drain()
	if got := cl.ctl.Stats().WriteTagReads; got != 16 {
		t.Errorf("CL write tag-reads = %d, want 16", got)
	}
	td := defaultHarness(t, TDRAM)
	for i := uint64(0); i < 16; i++ {
		td.write(i)
	}
	td.drain()
	if got := td.ctl.Stats().WriteTagReads; got != 0 {
		t.Errorf("TDRAM write tag-reads = %d, want 0", got)
	}
}

func TestBEARWriteHitBypass(t *testing.T) {
	h := defaultHarness(t, BEAR)
	h.write(3)
	h.drain()
	base := h.ctl.Stats().WriteTagReads // the miss needed a tag read
	h.write(3)                          // hit: DCP bit known, direct write
	h.drain()
	st := h.ctl.Stats()
	if st.WriteTagReads != base {
		t.Errorf("write-hit consumed a tag read (%d -> %d)", base, st.WriteTagReads)
	}
	if st.Outcomes.Count(mem.WriteHit) != 1 {
		t.Errorf("write hits = %d", st.Outcomes.Count(mem.WriteHit))
	}
}

func TestConflictBufferMerge(t *testing.T) {
	h := defaultHarness(t, TDRAM)
	h.read(42)
	h.read(42) // second demand hits the inflight fill: conflict buffer
	h.drain()
	st := h.ctl.Stats()
	if st.ConflictWaits != 1 {
		t.Errorf("conflict waits = %d", st.ConflictWaits)
	}
	if st.MMReads != 1 {
		t.Errorf("mm reads = %d, want 1 (merged)", st.MMReads)
	}
	if h.completed != 2 {
		t.Errorf("completed = %d", h.completed)
	}
}

func TestProbingReducesTagLatency(t *testing.T) {
	run := func(probe bool) (float64, *Stats) {
		cfg := DefaultConfig(TDRAM, testCapacity)
		cfg.ProbeEnabled = probe
		h := newHarness(t, cfg)
		rng := rand.New(rand.NewSource(11))
		// A read burst far larger than the cache's service rate, all
		// misses: queue pressure makes probing matter.
		for i := 0; i < 200; i++ {
			h.read(uint64(rng.Intn(100000)) + 8192)
		}
		h.drain()
		st := h.ctl.Stats()
		return st.TagCheck.Value(), st
	}
	with, stWith := run(true)
	without, _ := run(false)
	if stWith.Probes == 0 {
		t.Fatal("no probes issued under load")
	}
	if stWith.ProbeMissClean == 0 {
		t.Error("no probed miss-cleans")
	}
	if with >= without {
		t.Errorf("probing did not reduce tag-check latency: with=%v without=%v", with, without)
	}
}

func TestQueueBackpressure(t *testing.T) {
	h := defaultHarness(t, CascadeLake)
	rejected := false
	for i := 0; i < ReadQueueDepth*12; i++ {
		req := &mem.Request{ID: uint64(i), Addr: uint64(i*16+1) * 64, Kind: mem.Read,
			OnDone: func(*mem.Request) { h.completed++ }}
		if h.ctl.Enqueue(req) {
			h.issued++
		} else {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Error("flood never rejected")
	}
	if h.ctl.Stats().QueueRejects == 0 {
		t.Error("rejects not counted")
	}
	h.drain()
}

func TestPredictorParallelFetch(t *testing.T) {
	cfg := DefaultConfig(CascadeLake, testCapacity)
	cfg.UsePredictor = true
	h := newHarness(t, cfg)
	// A random miss-heavy stream trains the predictor toward miss.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		h.read(uint64(rng.Intn(1 << 20)))
	}
	h.drain()
	st := h.ctl.Stats()
	if st.PredictorMissStarts == 0 {
		t.Error("predictor never started a parallel fetch")
	}
	// The stream mixes cold misses with reuse hits; the plumbing check
	// here is that accuracy is tracked and non-degenerate.
	if st.PredictorAccuracy <= 0.2 || st.PredictorAccuracy > 1 {
		t.Errorf("predictor accuracy = %v out of plausible range", st.PredictorAccuracy)
	}
}

func TestPrefetcherBringsLinesIn(t *testing.T) {
	cfg := DefaultConfig(TDRAM, testCapacity)
	cfg.UsePrefetcher = true
	cfg.PrefetchDegree = 2
	h := newHarness(t, cfg)
	// A steady unit-stride read stream trains the prefetcher.
	for i := uint64(0); i < 64; i++ {
		h.read(1000 + i)
		h.drain()
	}
	st := h.ctl.Stats()
	if st.PrefetchesIssued == 0 {
		t.Fatal("stride stream issued no prefetches")
	}
	if st.PrefetchesUseful == 0 {
		t.Error("no prefetch was ever referenced")
	}
	// Demands covered by prefetch hit (or wait on the prefetch fill).
	hits := st.Outcomes.Count(mem.ReadHit) + st.ConflictWaits
	if hits < 32 {
		t.Errorf("stride stream saw only %d hits/merges of 64", hits)
	}
}

func TestSetAssociativeController(t *testing.T) {
	cfg := DefaultConfig(TDRAM, testCapacity)
	cfg.Ways = 4
	h := newHarness(t, cfg)
	// 1024 sets now: lines 0, 1024, 2048, 3072, 4096 map to set 0.
	for i := uint64(0); i < 4; i++ {
		h.read(i * 1024)
	}
	h.drain()
	for i := uint64(0); i < 4; i++ {
		h.read(i * 1024) // all still resident in 4 ways
	}
	h.drain()
	st := h.ctl.Stats()
	if got := st.Outcomes.Count(mem.ReadHit); got != 4 {
		t.Errorf("hits with 4 ways = %d, want 4", got)
	}
}

func TestBloatOrdering(t *testing.T) {
	// A high-miss mixed stream: the paper's Table IV ordering must hold:
	// Alloy > CascadeLake > BEAR > NDC ~= TDRAM.
	run := func(d Design) float64 {
		h := defaultHarness(t, d)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 600; i++ {
			line := uint64(rng.Intn(1 << 16))
			if rng.Intn(100) < 30 {
				h.write(line)
			} else {
				h.read(line)
			}
		}
		h.drain()
		return h.ctl.Stats().BloatFactor()
	}
	alloy, cl, bear, ndc, td := run(Alloy), run(CascadeLake), run(BEAR), run(NDC), run(TDRAM)
	t.Logf("bloat: alloy=%.2f cl=%.2f bear=%.2f ndc=%.2f tdram=%.2f", alloy, cl, bear, ndc, td)
	if !(alloy > cl) {
		t.Errorf("Alloy bloat %.2f not above CascadeLake %.2f", alloy, cl)
	}
	// BEAR's set-dueling bypass only sheds fills when that costs no hits;
	// on this reuse-free stream it must undercut Alloy decisively and sit
	// near (our model: at or slightly above) Cascade Lake.
	if !(alloy > bear) {
		t.Errorf("Alloy bloat %.2f not above BEAR %.2f", alloy, bear)
	}
	if bear > cl*1.15 {
		t.Errorf("BEAR bloat %.2f far above CascadeLake %.2f", bear, cl)
	}
	if !(bear > td) {
		t.Errorf("BEAR bloat %.2f not above TDRAM %.2f", bear, td)
	}
	if diff := ndc - td; diff < -0.25 || diff > 0.25 {
		t.Errorf("NDC bloat %.2f far from TDRAM %.2f", ndc, td)
	}
	if td < 1.5 {
		t.Errorf("high-miss TDRAM bloat %.2f implausibly low", td)
	}
}

func TestResetStats(t *testing.T) {
	h := defaultHarness(t, TDRAM)
	h.read(1)
	h.drain()
	h.ctl.ResetStats()
	st := h.ctl.Stats()
	if st.DemandReads != 0 || st.Outcomes.Total() != 0 || st.Traffic.Total() != 0 {
		t.Error("stats survived reset")
	}
	// Content survives: the next read hits.
	h.read(1)
	h.drain()
	if h.ctl.Stats().Outcomes.Count(mem.ReadHit) != 1 {
		t.Error("cache content lost on stats reset")
	}
}

// Property: any interleaving of reads and writes on any design drains
// with every read completed, outcome counts consistent, and the flush
// buffer within bounds.
func TestControllerDrainProperty(t *testing.T) {
	designs := Designs()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := designs[rng.Intn(len(designs))]
		h := defaultHarness(t, d)
		n := 150 + rng.Intn(100)
		for i := 0; i < n; i++ {
			line := uint64(rng.Intn(12000))
			if rng.Intn(100) < 35 {
				h.write(line)
			} else {
				h.read(line)
			}
		}
		h.drain()
		st := h.ctl.Stats()
		if h.completed != h.issued {
			return false
		}
		if st.FlushMax > h.ctl.cfg.FlushEntries {
			return false
		}
		// Every demand that reached the DRAM got an outcome; conflict
		// waiters legitimately bypass the tag check.
		if st.Outcomes.Total()+st.ConflictWaits != st.DemandReads+st.DemandWrites {
			return false
		}
		// Accounting invariants: the energy meters and the traffic
		// breakdown must agree byte-for-byte on both buses.
		cm, mmM := h.ctl.Meters()
		if cm.Bytes != st.Traffic.CacheTotal() {
			t.Logf("cache meter %d bytes vs traffic %d", cm.Bytes, st.Traffic.CacheTotal())
			return false
		}
		if mmM.Bytes != st.Traffic.MMDemandBytes+st.Traffic.MMWritebackBytes {
			t.Logf("mm meter %d bytes vs traffic %d", mmM.Bytes,
				st.Traffic.MMDemandBytes+st.Traffic.MMWritebackBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Error(err)
	}
}

func BenchmarkControllerTDRAM(b *testing.B) {
	s := sim.New()
	mm, _ := backing.New(s, dram.DDR5Params())
	ctl, _ := New(s, DefaultConfig(TDRAM, testCapacity), mm)
	rng := rand.New(rand.NewSource(1))
	completed := 0
	for i := 0; i < b.N; i++ {
		req := &mem.Request{ID: uint64(i), Addr: uint64(rng.Intn(1<<18)) * 64, Kind: mem.Read,
			OnDone: func(*mem.Request) { completed++ }}
		for !ctl.Enqueue(req) {
			s.Step()
		}
	}
	s.Run(0)
}
