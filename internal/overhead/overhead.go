// Package overhead reproduces the paper's analytical cost models: the
// die-area impact of the on-die tag mats (§III-C5) and the interface
// signal-count overhead of the TDRAM channel changes (§III-B, the table
// in Fig. 4A). These are closed-form calculations, reproduced exactly.
package overhead

// AreaModel holds the §III-C5 die-area calculation inputs.
type AreaModel struct {
	// TagMatAreaFactor is the relative area added to a bank by the tag
	// mats when scaling mats by 1/2 in each dimension. The paper takes a
	// pessimistic 24.3% (Son et al. report 19% for a 4x aspect change).
	TagMatAreaFactor float64
	// TaggedBankFraction is the fraction of banks carrying tag mats:
	// tags live only in the even bank group of each pair, so 0.5.
	TaggedBankFraction float64
	// BankAreaFraction is the share of HBM3 die area occupied by banks
	// (mats, BLSAs, sub-wordline drivers): ~66% per the die photo the
	// paper cites.
	BankAreaFraction float64
	// RoutingOverhead is the extra area for routing hit/miss signals
	// from even to odd bank groups.
	RoutingOverhead float64
}

// PaperAreaModel returns the paper's §III-C5 inputs.
func PaperAreaModel() AreaModel {
	return AreaModel{
		TagMatAreaFactor:   0.243,
		TaggedBankFraction: 0.5,
		BankAreaFraction:   0.66,
		RoutingOverhead:    0.0022,
	}
}

// DieAreaImpact reports the total die-area overhead fraction. With the
// paper's inputs: 0.243 x 0.5 x 0.66 + routing = 8.24%.
func (m AreaModel) DieAreaImpact() float64 {
	return m.TagMatAreaFactor*m.TaggedBankFraction*m.BankAreaFraction + m.RoutingOverhead
}

// SignalModel holds the §III-B interface arithmetic (Fig. 4A).
type SignalModel struct {
	Channels int // 32 independent channels after PC conversion

	// Per-channel signal widths.
	DQBits      int // 32 b data
	CABitsHBM3  int // HBM3-equivalent CA share per 32 b pseudo-channel
	CABits      int // TDRAM: 8 b CA per channel (+2 b over the HBM3 share)
	HMBits      int // TDRAM: 4 b unidirectional hit-miss bus
	ChannelMisc int // clocks, strobes, ECC etc. per channel

	// Device-global signals (reset, IEEE1500, ...).
	GlobalMisc int

	// HBM3Signals is the baseline total the paper compares against.
	HBM3Signals int
	// SpareBumps is the unused bump count in the HBM3 package footprint.
	SpareBumps int
}

// PaperSignalModel returns the paper's counts.
func PaperSignalModel() SignalModel {
	return SignalModel{
		Channels:    32,
		DQBits:      32,
		CABitsHBM3:  6, // the paper books +2 b CA per channel over HBM3
		CABits:      8,
		HMBits:      4,
		ChannelMisc: 22,
		GlobalMisc:  52,
		HBM3Signals: 1972,
		SpareBumps:  320,
	}
}

// TDRAMSignals reports the total signal count of the TDRAM interface:
// the paper arrives at 2164.
func (m SignalModel) TDRAMSignals() int {
	perChannel := m.DQBits + m.CABits + m.HMBits + m.ChannelMisc
	return m.Channels*perChannel + m.GlobalMisc
}

// ExtraSignals reports the added signals vs HBM3 (the paper: 192, from
// +2 b CA and +4 b HM per 32-bit channel).
func (m SignalModel) ExtraSignals() int {
	return m.Channels * (m.CABits - m.CABitsHBM3 + m.HMBits)
}

// SignalOverhead reports the fractional pin increase over HBM3 (the
// paper: a 9.7% increase).
func (m SignalModel) SignalOverhead() float64 {
	return float64(m.TDRAMSignals()-m.HBM3Signals) / float64(m.HBM3Signals)
}

// FitsInPackage reports whether the extra signals fit the spare bump
// sites of the HBM3 package footprint (the paper: 192 <= 320).
func (m SignalModel) FitsInPackage() bool {
	return m.ExtraSignals() <= m.SpareBumps
}

// TagStorageModel computes tag/metadata sizing (§II-A, §III-C5).
type TagStorageModel struct {
	CacheBytes        uint64
	LineBytes         uint64
	TagMetadataBytes  uint64 // 3 B per line: tag + valid + dirty + ECC
	AddressSpaceBytes uint64 // the address space the tag width must cover
}

// PaperTagStorage returns the paper's 64 GiB / 1 PB configuration.
func PaperTagStorage() TagStorageModel {
	return TagStorageModel{
		CacheBytes:        64 << 30,
		LineBytes:         64,
		TagMetadataBytes:  3,
		AddressSpaceBytes: 1 << 50,
	}
}

// TagBits reports the tag width needed for a direct-mapped cache over
// the address space (the paper: 14 bits for 1 PB over 64 GiB).
func (m TagStorageModel) TagBits() int {
	ratio := m.AddressSpaceBytes / m.CacheBytes
	bits := 0
	for r := ratio; r > 1; r >>= 1 {
		bits++
	}
	return bits
}

// StorageBytes reports the total tag+metadata storage (the paper: 3 GiB
// for a 64 GiB cache — far beyond any SRAM budget, the scaling argument
// of §II-A).
func (m TagStorageModel) StorageBytes() uint64 {
	return m.CacheBytes / m.LineBytes * m.TagMetadataBytes
}
