package overhead

import (
	"math"
	"testing"
)

func TestDieAreaMatchesPaper(t *testing.T) {
	// §III-C5: 24.3% x 0.5 (even banks only) x 0.66 (bank area) = 8.02%,
	// plus routing = 8.24%.
	m := PaperAreaModel()
	base := m.TagMatAreaFactor * m.TaggedBankFraction * m.BankAreaFraction
	if math.Abs(base-0.0802) > 0.0002 {
		t.Errorf("bank-area overhead = %.4f, want 0.0802", base)
	}
	if got := m.DieAreaImpact(); math.Abs(got-0.0824) > 0.0005 {
		t.Errorf("die area impact = %.4f, want 0.0824 (8.24%%)", got)
	}
}

func TestSignalCountsMatchPaper(t *testing.T) {
	m := PaperSignalModel()
	if got := m.TDRAMSignals(); got != 2164 {
		t.Errorf("TDRAM signals = %d, want 2164", got)
	}
	if got := m.ExtraSignals(); got != 192 {
		t.Errorf("extra signals = %d, want 192", got)
	}
	if got := m.SignalOverhead(); math.Abs(got-0.097) > 0.001 {
		t.Errorf("signal overhead = %.3f, want 0.097 (9.7%%)", got)
	}
	if !m.FitsInPackage() {
		t.Error("192 extra signals must fit the 320 spare bumps")
	}
}

func TestTagStorageMatchesPaper(t *testing.T) {
	m := PaperTagStorage()
	// §III-C5: a 64 GiB direct-mapped cache over 1 PB needs a 14-bit tag.
	if got := m.TagBits(); got != 14 {
		t.Errorf("tag bits = %d, want 14", got)
	}
	// §II-A: 3 B per 64 B line of a 64 GiB cache = 3 GiB of tag store.
	if got := m.StorageBytes(); got != 3<<30 {
		t.Errorf("tag storage = %d, want 3 GiB", got)
	}
}

func TestTagBitsSmallCaches(t *testing.T) {
	m := TagStorageModel{CacheBytes: 1 << 20, LineBytes: 64, TagMetadataBytes: 3, AddressSpaceBytes: 1 << 30}
	if got := m.TagBits(); got != 10 {
		t.Errorf("tag bits = %d, want 10", got)
	}
	same := TagStorageModel{CacheBytes: 1 << 20, AddressSpaceBytes: 1 << 20, LineBytes: 64, TagMetadataBytes: 3}
	if got := same.TagBits(); got != 0 {
		t.Errorf("tag bits for cache == space = %d, want 0", got)
	}
}
