package workload

import (
	"math/bits"
	"testing"

	"tdram/internal/mem"
)

func TestRoster(t *testing.T) {
	all := All()
	if len(all) != 28 {
		t.Fatalf("roster size = %d, want 28 (9 NPB x2 classes + 5 GAPBS x2 inputs)", len(all))
	}
	seen := map[string]bool{}
	low, high := 0, 0
	for _, s := range all {
		if seen[s.Name] {
			t.Errorf("duplicate workload %s", s.Name)
		}
		seen[s.Name] = true
		if s.Suite != "npb" && s.Suite != "gapbs" {
			t.Errorf("%s: unknown suite %q", s.Name, s.Suite)
		}
		if s.Band == LowMiss {
			low++
		} else {
			high++
		}
		if s.FootprintRatio <= 0 || s.WriteFrac < 0 || s.WriteFrac > 1 {
			t.Errorf("%s: implausible parameters %+v", s.Name, s)
		}
		// Low band needs footprints comfortably under capacity; high band
		// comfortably over (Fig. 1 has nothing in the middle).
		if s.Band == LowMiss && s.FootprintRatio > 1 {
			t.Errorf("%s: low band with footprint ratio %v", s.Name, s.FootprintRatio)
		}
		if s.Band == HighMiss && s.FootprintRatio < 2 {
			t.Errorf("%s: high band with footprint ratio %v", s.Name, s.FootprintRatio)
		}
	}
	if low == 0 || high == 0 {
		t.Errorf("bands unbalanced: %d low, %d high", low, high)
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ft.D")
	if err != nil || s.Name != "ft.D" {
		t.Fatalf("ByName: %v %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if len(Names()) != 28 {
		t.Error("Names length")
	}
}

func TestRepresentativeSubset(t *testing.T) {
	rep := Representative()
	if len(rep) < 4 {
		t.Fatalf("representative subset too small: %d", len(rep))
	}
	low, high := 0, 0
	for _, s := range rep {
		if s.Band == LowMiss {
			low++
		} else {
			high++
		}
	}
	if low == 0 || high == 0 {
		t.Error("representative subset not band-balanced")
	}
}

func TestStreamDeterminism(t *testing.T) {
	s, _ := ByName("is.C")
	a := s.NewStream(0, 8, 64<<20, 42)
	b := s.NewStream(0, 8, 64<<20, 42)
	for i := 0; i < 1000; i++ {
		la, wa, ta := a.Next()
		lb, wb, tb := b.Next()
		if la != lb || wa != wb || ta != tb {
			t.Fatalf("streams diverge at access %d", i)
		}
	}
	c := s.NewStream(0, 8, 64<<20, 43)
	same := true
	for i := 0; i < 100; i++ {
		la, _, _ := a.Next()
		lc, _, _ := c.Next()
		if la != lc {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestStreamStaysInRegion(t *testing.T) {
	for _, s := range All() {
		for core := 0; core < 3; core++ {
			st := s.NewStream(core, 8, 64<<20, 7)
			lo := st.Lines() * uint64(core)
			hi := lo + st.Lines()
			for i := 0; i < 2000; i++ {
				line, _, _ := st.Next()
				if line < lo || line >= hi {
					t.Fatalf("%s core %d: line %d outside [%d, %d)", s.Name, core, line, lo, hi)
				}
			}
		}
	}
}

func TestStreamWriteFraction(t *testing.T) {
	s, _ := ByName("is.D") // WriteFrac 0.50
	st := s.NewStream(0, 8, 64<<20, 1)
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, w, _ := st.Next(); w {
			writes++
		}
	}
	got := float64(writes) / n
	if got < 0.45 || got > 0.55 {
		t.Errorf("write fraction = %v, want ~0.50", got)
	}
}

func TestStreamFootprintScales(t *testing.T) {
	s, _ := ByName("pr.25") // ratio 8.0
	st := s.NewStream(0, 8, 64<<20, 1)
	wantLines := uint64(8.0*64<<20) / mem.LineSize / 8
	if st.Lines() != wantLines {
		t.Errorf("per-core lines = %d, want %d", st.Lines(), wantLines)
	}
}

func TestStreamTinyCacheClamp(t *testing.T) {
	s, _ := ByName("ep.C")
	st := s.NewStream(0, 8, 1<<10, 1) // absurdly small cache
	if st.Lines() < 64 {
		t.Errorf("region clamped below minimum: %d", st.Lines())
	}
	for i := 0; i < 100; i++ {
		st.Next() // must not panic or divide by zero
	}
}

func TestScanLocality(t *testing.T) {
	// A scan-heavy spec must produce a large fraction of +1-line strides.
	s := Spec{Name: "scan", FootprintRatio: 2, ScanFrac: 0.9, WriteFrac: 0, HotFrac: 0, HotRatio: 0.1}
	st := s.NewStream(0, 1, 64<<20, 3)
	prev, _, _ := st.Next()
	seq := 0
	const n = 10000
	for i := 0; i < n; i++ {
		cur, _, _ := st.Next()
		if cur == prev+1 {
			seq++
		}
		prev = cur
	}
	if frac := float64(seq) / n; frac < 0.7 {
		t.Errorf("sequential fraction = %v, want > 0.7 for ScanFrac 0.9", frac)
	}
}

func TestHotLocality(t *testing.T) {
	// A hot-heavy spec concentrates accesses in the hot prefix.
	s := Spec{Name: "hot", FootprintRatio: 2, ScanFrac: 0, HotFrac: 0.8, HotRatio: 0.1, WriteFrac: 0}
	st := s.NewStream(0, 1, 64<<20, 3)
	hotEnd := uint64(float64(st.Lines()) * 0.1)
	inHot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		line, _, _ := st.Next()
		if line < hotEnd {
			inHot++
		}
	}
	// 0.8 targeted + ~0.02 of the uniform remainder.
	if frac := float64(inHot) / n; frac < 0.7 {
		t.Errorf("hot fraction = %v, want > 0.7", frac)
	}
}

func TestConflictPattern(t *testing.T) {
	s := Spec{
		Name: "conf", FootprintRatio: 0.5, ConflictFrac: 1.0,
		ConflictSets: 8, ConflictDepth: 4,
	}
	cacheBytes := uint64(1 << 20) // 16384 lines
	st := s.NewStream(0, 1, cacheBytes, 3)
	cacheLines := cacheBytes / mem.LineSize
	seenRings := map[uint64]bool{}
	seenWays := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		line, _, _ := st.Next()
		ring := line % cacheLines
		way := line / cacheLines
		if ring >= 8 {
			t.Fatalf("ring %d out of range", ring)
		}
		if way >= 4 {
			t.Fatalf("way %d out of range", way)
		}
		seenRings[ring] = true
		seenWays[way] = true
	}
	if len(seenRings) != 8 || len(seenWays) != 4 {
		t.Errorf("coverage: %d rings, %d ways", len(seenRings), len(seenWays))
	}
	// All lines of one ring collide in the same set for any ways count
	// that divides the cache (here: check direct-mapped and 4-way of a
	// 16384-line cache).
	for _, sets := range []uint64{16384, 4096} {
		set0 := uint64(3) % sets
		for k := uint64(0); k < 4; k++ {
			if (3+k*cacheLines)%sets != set0 {
				t.Errorf("ring member %d maps to a different set at %d sets", k, sets)
			}
		}
	}
}

func TestNamedWorkloadsHaveNoConflictMode(t *testing.T) {
	for _, s := range All() {
		if s.ConflictFrac != 0 {
			t.Errorf("%s: named workload uses the synthetic conflict mode", s.Name)
		}
	}
}

func TestBurstyThinkTimes(t *testing.T) {
	s, _ := ByName("bt.C") // ThinkNS 10
	st := s.NewStream(0, 8, 64<<20, 1)
	var sum float64
	seen := map[float64]bool{}
	const n = 50000
	for i := 0; i < n; i++ {
		_, _, think := st.Next()
		sum += think
		seen[think] = true
	}
	mean := sum / n
	// The two-phase mix keeps the mean near Spec.ThinkNS.
	if mean < 0.7*s.ThinkNS || mean > 1.3*s.ThinkNS {
		t.Errorf("mean think = %v, spec %v", mean, s.ThinkNS)
	}
	if len(seen) != 2 {
		t.Errorf("distinct think values = %d, want 2 (burst/compute)", len(seen))
	}
}

func TestRNGUniformity(t *testing.T) {
	r := newRNG(9)
	buckets := make([]int, 16)
	const n = 64000
	for i := 0; i < n; i++ {
		buckets[r.intn(16)]++
	}
	for i, b := range buckets {
		if b < n/16*8/10 || b > n/16*12/10 {
			t.Errorf("bucket %d count %d far from uniform %d", i, b, n/16)
		}
	}
	if r.intn(0) != 0 {
		t.Error("intn(0) != 0")
	}
}

// The Lemire bounded draw must be exactly the multiply-shift mapping of
// the accepted raw draws: hi word of x*n, rejecting x whose low word
// falls under (2^64 mod n). Replaying the raw stream through that
// reference must reproduce intn's outputs for awkward (non-power-of-two)
// bounds, including ones where rejection actually fires.
func TestIntnMatchesLemireReference(t *testing.T) {
	for _, n := range []uint64{3, 7, 1000, 1<<63 + 3, 1<<64 - 5} {
		r := newRNG(42)
		ref := newRNG(42)
		thresh := -n % n
		for i := 0; i < 2000; i++ {
			got := r.intn(n)
			var want uint64
			for {
				hi, lo := bits.Mul64(ref.next(), n)
				if lo >= thresh {
					want = hi
					break
				}
			}
			if got != want {
				t.Fatalf("n=%d draw %d: intn=%d reference=%d", n, i, got, want)
			}
		}
	}
}

// Modulo-bias regression: with a bound just under a power of two the
// old r.next()%n mapping makes low values measurably likelier. The
// Lemire draw must keep the low and high halves balanced.
func TestIntnUnbiasedHalves(t *testing.T) {
	// n = 3<<62 wraps 2^64 1.33 times: under modulo reduction, values in
	// [0, 2^62) receive two preimages and the rest one — a 2x skew the
	// halves test below would catch immediately.
	const n = uint64(3) << 62
	r := newRNG(7)
	const draws = 200000
	low := 0
	for i := 0; i < draws; i++ {
		if r.intn(n) < n/2 {
			low++
		}
	}
	frac := float64(low) / draws
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("low-half fraction %.4f, want ~0.50 (modulo bias would give ~0.67)", frac)
	}
}

// A cloned stream must replay the original's exact future and stay
// independent of it afterwards.
func TestStreamClone(t *testing.T) {
	s, _ := ByName("ft.C")
	st := s.NewStream(1, 8, 8<<20, 1)
	for i := 0; i < 1000; i++ {
		st.Next() // advance into a mid-scan, mid-phase state
	}
	cl := st.Clone()
	type draw struct {
		line  uint64
		store bool
		think float64
	}
	var a, b []draw
	for i := 0; i < 2000; i++ {
		l, w, th := st.Next()
		a = append(a, draw{l, w, th})
	}
	for i := 0; i < 2000; i++ {
		l, w, th := cl.Next()
		b = append(b, draw{l, w, th})
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Both advanced the same distance through independent state, so they
	// are back in lockstep; interleaving draws must keep them identical.
	for i := 0; i < 100; i++ {
		l1, w1, t1 := st.Next()
		l2, w2, t2 := cl.Next()
		if l1 != l2 || w1 != w2 || t1 != t2 {
			t.Fatalf("interleaved draw %d diverged", i)
		}
	}
}

func BenchmarkStreamNext(b *testing.B) {
	s, _ := ByName("pr.25")
	st := s.NewStream(0, 8, 64<<20, 1)
	for i := 0; i < b.N; i++ {
		st.Next()
	}
}
