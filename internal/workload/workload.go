// Package workload provides deterministic synthetic address-stream
// generators standing in for the paper's NPB (class C/D) and GAPBS
// (inputs 22/25) benchmarks. The binaries themselves cannot be run inside
// this reproduction, so each named workload is parameterized to land in
// the paper's measured DRAM-cache miss-ratio band (Fig. 1: low < 30 %,
// high > 50 %, nothing in between) with a representative write intensity
// and locality mix. See DESIGN.md §2 for the substitution rationale.
package workload

import (
	"fmt"
	"math/bits"

	"tdram/internal/mem"
)

// Band is the paper's Fig. 1 miss-ratio grouping.
type Band uint8

const (
	LowMiss  Band = iota // DRAM-cache miss ratio below 30 %
	HighMiss             // above 50 %
)

func (b Band) String() string {
	if b == HighMiss {
		return "high"
	}
	return "low"
}

// Spec describes one named workload.
type Spec struct {
	Name  string // e.g. "ft.C", "pr.25"
	Suite string // "npb" or "gapbs"

	// FootprintRatio is total footprint divided by DRAM-cache capacity.
	// Ratios below ~0.6 produce the low band; above ~2 the high band.
	FootprintRatio float64

	// WriteFrac is the store fraction of the core's accesses.
	WriteFrac float64

	// ScanFrac of accesses walk the footprint sequentially; the rest are
	// random, of which HotFrac go to a hot region of HotRatio × footprint.
	ScanFrac, HotFrac, HotRatio float64

	// ThinkNS is the mean per-access compute gap modeled in the core.
	// Streams are bursty, as HPC phases are: runs of accesses at ~0.3x
	// the mean think time alternate with compute stretches at ~3x, so
	// queues see transient pressure without sustained saturation.
	ThinkNS float64

	// Band is the expected miss-ratio band, used to validate calibration.
	Band Band

	// ConflictFrac of accesses walk same-set rings: ConflictSets rings of
	// ConflictDepth lines spaced exactly one cache capacity apart, so the
	// lines of a ring collide in the same set at any associativity. A
	// direct-mapped cache thrashes on them; a cache with at least
	// ConflictDepth ways holds them all. None of the 28 named workloads
	// use this (the paper's HPC codes have negligible conflict misses,
	// §V-F); it exists so the set-associativity study can also show the
	// pattern associativity is for.
	ConflictFrac  float64
	ConflictSets  int
	ConflictDepth int
}

// String implements fmt.Stringer.
func (s Spec) String() string { return s.Name }

// rng is a SplitMix64 generator: tiny, deterministic and plenty good for
// address-stream synthesis.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed*0x9E3779B97F4A7C15 + 0x632BE59BD9B4E019} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform value in [0, n) via Lemire's multiply-shift
// rejection method. The previous r.next() % n carried the classic
// modulo bias: for any n that does not divide 2^64, the low residues
// are (slightly) more likely, which skews address distributions for
// every non-power-of-two footprint. Here the 128-bit product x*n is
// uniform over [0, n) in its high word once the low word clears the
// rejection threshold (2^64 mod n); fewer than one draw in 2^20 is
// rejected at the footprint sizes the workloads use.
func (r *rng) intn(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	hi, lo := bits.Mul64(r.next(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.next(), n)
		}
	}
	return hi
}

// Stream generates one core's line-address stream for a Spec. Each core
// works in its own slice of the footprint, as the multithreaded HPC
// codes the paper uses partition their data.
type Stream struct {
	spec      Spec
	rng       *rng
	base      uint64 // first line of this core's region
	lines     uint64 // region length in lines
	hotLines  uint64
	scanPos   uint64
	scanBurst int // remaining accesses in the current sequential run

	// Burstiness state: memory-intensive runs alternate with compute
	// stretches.
	phaseLeft int
	inBurst   bool

	cacheLines uint64 // ring spacing for the conflict pattern
}

// NewStream builds the stream for one core. cacheBytes is the DRAM-cache
// capacity the footprint ratio refers to; cores is the core count the
// footprint is partitioned over.
func (s Spec) NewStream(core, cores int, cacheBytes uint64, seed uint64) *Stream {
	totalLines := uint64(float64(cacheBytes)*s.FootprintRatio) / mem.LineSize
	per := totalLines / uint64(cores)
	if per < 64 {
		per = 64
	}
	hot := uint64(float64(per) * s.HotRatio)
	if hot < 16 {
		hot = 16
	}
	if hot > per {
		hot = per
	}
	st := &Stream{
		spec:       s,
		rng:        newRNG(seed ^ uint64(core+1)*0x8CB92BA72F3D8DD7),
		base:       uint64(core) * per,
		lines:      per,
		hotLines:   hot,
		cacheLines: cacheBytes / mem.LineSize,
	}
	st.scanPos = st.rng.intn(per)
	return st
}

// Lines reports the per-core region length.
func (st *Stream) Lines() uint64 { return st.lines }

// Clone returns an independent deep copy of the stream: the copy draws
// the exact same future address sequence as the original would, and
// advancing either does not disturb the other. The warmup snapshot/fork
// machinery clones one prewarmed stream per (workload, core) into every
// design's forked run.
//
//tdlint:copier Stream
func (st *Stream) Clone() *Stream {
	c := *st
	r := *st.rng
	c.rng = &r
	return &c
}

// Next returns the next line address, whether it is a store, and the
// compute time (ns) the core spends before issuing it.
func (st *Stream) Next() (line uint64, store bool, thinkNS float64) {
	r := st.rng
	// Two-phase burstiness: ~48-access memory bursts at 0.3x the mean
	// think time, ~16-access compute stretches at 3x. The weighted mean
	// stays at Spec.ThinkNS.
	if st.phaseLeft == 0 {
		if st.inBurst {
			st.inBurst = false
			st.phaseLeft = 8 + int(r.intn(16))
		} else {
			st.inBurst = true
			st.phaseLeft = 24 + int(r.intn(48))
		}
	}
	st.phaseLeft--
	if st.inBurst {
		thinkNS = st.spec.ThinkNS * 0.3
	} else {
		thinkNS = st.spec.ThinkNS * 3.0
	}
	if st.spec.ConflictFrac > 0 && r.float() < st.spec.ConflictFrac {
		// Same-set ring: ring s, way k -> line s + k*cacheLines. These
		// addresses collide in set s of the DRAM cache regardless of its
		// associativity.
		s := r.intn(uint64(st.spec.ConflictSets))
		k := r.intn(uint64(st.spec.ConflictDepth))
		line = s + k*st.cacheLines
		store = r.float() < st.spec.WriteFrac
		return line, store, thinkNS
	}
	switch {
	case st.scanBurst > 0:
		st.scanBurst--
		st.scanPos = (st.scanPos + 1) % st.lines
		line = st.base + st.scanPos
	case r.float() < st.spec.ScanFrac:
		// Start (or continue) a sequential run of 32 lines so scans have
		// the spatial behaviour of the real stencil/FFT codes.
		st.scanBurst = 31
		st.scanPos = (st.scanPos + 1) % st.lines
		line = st.base + st.scanPos
	case r.float() < st.spec.HotFrac:
		line = st.base + r.intn(st.hotLines)
	default:
		line = st.base + r.intn(st.lines)
	}
	store = r.float() < st.spec.WriteFrac
	return line, store, thinkNS
}

// specs is the full 28-workload roster: NPB classes C and D, GAPBS
// inputs 22 and 25. Band assignments follow Fig. 1's grouping: class C /
// input 22 runs mostly fit the 8 GiB cache (low band), class D / input 25
// runs exceed it (high band), with ep tiny in both classes and ft/is/mg
// cache-hostile in both (the paper calls out ft, is, mg, ua for wasted
// movement and high miss traffic).
var specs = []Spec{
	// NPB class C.
	{Name: "bt.C", Suite: "npb", FootprintRatio: 0.45, WriteFrac: 0.35, ScanFrac: 0.55, HotFrac: 0.50, HotRatio: 0.12, ThinkNS: 5.0, Band: LowMiss},
	{Name: "cg.C", Suite: "npb", FootprintRatio: 0.40, WriteFrac: 0.20, ScanFrac: 0.20, HotFrac: 0.55, HotRatio: 0.10, ThinkNS: 4.0, Band: LowMiss},
	{Name: "ep.C", Suite: "npb", FootprintRatio: 0.02, WriteFrac: 0.30, ScanFrac: 0.30, HotFrac: 0.70, HotRatio: 0.30, ThinkNS: 30.0, Band: LowMiss},
	{Name: "ft.C", Suite: "npb", FootprintRatio: 4.0, WriteFrac: 0.45, ScanFrac: 0.70, HotFrac: 0.06, HotRatio: 0.04, ThinkNS: 3.6, Band: HighMiss},
	{Name: "is.C", Suite: "npb", FootprintRatio: 4.5, WriteFrac: 0.50, ScanFrac: 0.15, HotFrac: 0.10, HotRatio: 0.04, ThinkNS: 3.0, Band: HighMiss},
	{Name: "lu.C", Suite: "npb", FootprintRatio: 0.35, WriteFrac: 0.40, ScanFrac: 0.60, HotFrac: 0.50, HotRatio: 0.15, ThinkNS: 5.0, Band: LowMiss},
	{Name: "mg.C", Suite: "npb", FootprintRatio: 3.0, WriteFrac: 0.30, ScanFrac: 0.75, HotFrac: 0.10, HotRatio: 0.05, ThinkNS: 4.5, Band: HighMiss},
	{Name: "sp.C", Suite: "npb", FootprintRatio: 0.50, WriteFrac: 0.38, ScanFrac: 0.55, HotFrac: 0.45, HotRatio: 0.12, ThinkNS: 5.0, Band: LowMiss},
	{Name: "ua.C", Suite: "npb", FootprintRatio: 0.42, WriteFrac: 0.35, ScanFrac: 0.35, HotFrac: 0.50, HotRatio: 0.10, ThinkNS: 5.5, Band: LowMiss},
	// NPB class D.
	{Name: "bt.D", Suite: "npb", FootprintRatio: 3.5, WriteFrac: 0.35, ScanFrac: 0.55, HotFrac: 0.15, HotRatio: 0.04, ThinkNS: 6.0, Band: HighMiss},
	{Name: "cg.D", Suite: "npb", FootprintRatio: 4.0, WriteFrac: 0.20, ScanFrac: 0.20, HotFrac: 0.20, HotRatio: 0.03, ThinkNS: 4.5, Band: HighMiss},
	{Name: "ep.D", Suite: "npb", FootprintRatio: 0.03, WriteFrac: 0.30, ScanFrac: 0.30, HotFrac: 0.70, HotRatio: 0.30, ThinkNS: 30.0, Band: LowMiss},
	{Name: "ft.D", Suite: "npb", FootprintRatio: 6.0, WriteFrac: 0.45, ScanFrac: 0.70, HotFrac: 0.08, HotRatio: 0.02, ThinkNS: 3.6, Band: HighMiss},
	{Name: "is.D", Suite: "npb", FootprintRatio: 5.0, WriteFrac: 0.50, ScanFrac: 0.15, HotFrac: 0.10, HotRatio: 0.02, ThinkNS: 3.0, Band: HighMiss},
	{Name: "lu.D", Suite: "npb", FootprintRatio: 0.55, WriteFrac: 0.40, ScanFrac: 0.60, HotFrac: 0.45, HotRatio: 0.12, ThinkNS: 5.0, Band: LowMiss},
	{Name: "mg.D", Suite: "npb", FootprintRatio: 5.5, WriteFrac: 0.30, ScanFrac: 0.75, HotFrac: 0.10, HotRatio: 0.03, ThinkNS: 4.5, Band: HighMiss},
	{Name: "sp.D", Suite: "npb", FootprintRatio: 3.2, WriteFrac: 0.38, ScanFrac: 0.55, HotFrac: 0.15, HotRatio: 0.04, ThinkNS: 6.0, Band: HighMiss},
	{Name: "ua.D", Suite: "npb", FootprintRatio: 4.2, WriteFrac: 0.35, ScanFrac: 0.35, HotFrac: 0.18, HotRatio: 0.04, ThinkNS: 6.6, Band: HighMiss},
	// GAPBS, synthetic graphs with 2^22 vertices.
	{Name: "bc.22", Suite: "gapbs", FootprintRatio: 0.45, WriteFrac: 0.30, ScanFrac: 0.10, HotFrac: 0.60, HotRatio: 0.08, ThinkNS: 3.0, Band: LowMiss},
	{Name: "bfs.22", Suite: "gapbs", FootprintRatio: 0.40, WriteFrac: 0.15, ScanFrac: 0.15, HotFrac: 0.60, HotRatio: 0.08, ThinkNS: 3.0, Band: LowMiss},
	{Name: "cc.22", Suite: "gapbs", FootprintRatio: 0.42, WriteFrac: 0.20, ScanFrac: 0.20, HotFrac: 0.55, HotRatio: 0.08, ThinkNS: 3.0, Band: LowMiss},
	{Name: "pr.22", Suite: "gapbs", FootprintRatio: 0.50, WriteFrac: 0.15, ScanFrac: 0.30, HotFrac: 0.55, HotRatio: 0.10, ThinkNS: 3.0, Band: LowMiss},
	{Name: "sssp.22", Suite: "gapbs", FootprintRatio: 0.48, WriteFrac: 0.25, ScanFrac: 0.10, HotFrac: 0.58, HotRatio: 0.08, ThinkNS: 3.0, Band: LowMiss},
	// GAPBS, 2^25 vertices: footprints up to ~80 GiB vs the 8 GiB cache.
	{Name: "bc.25", Suite: "gapbs", FootprintRatio: 7.0, WriteFrac: 0.30, ScanFrac: 0.10, HotFrac: 0.25, HotRatio: 0.01, ThinkNS: 3.6, Band: HighMiss},
	{Name: "bfs.25", Suite: "gapbs", FootprintRatio: 6.0, WriteFrac: 0.15, ScanFrac: 0.15, HotFrac: 0.25, HotRatio: 0.01, ThinkNS: 3.0, Band: HighMiss},
	{Name: "cc.25", Suite: "gapbs", FootprintRatio: 6.5, WriteFrac: 0.20, ScanFrac: 0.20, HotFrac: 0.22, HotRatio: 0.01, ThinkNS: 3.0, Band: HighMiss},
	{Name: "pr.25", Suite: "gapbs", FootprintRatio: 8.0, WriteFrac: 0.15, ScanFrac: 0.30, HotFrac: 0.22, HotRatio: 0.01, ThinkNS: 3.0, Band: HighMiss},
	{Name: "sssp.25", Suite: "gapbs", FootprintRatio: 7.5, WriteFrac: 0.25, ScanFrac: 0.10, HotFrac: 0.25, HotRatio: 0.01, ThinkNS: 3.6, Band: HighMiss},
}

// All returns the full 28-workload roster in a fixed order.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// ByName returns the named workload.
func ByName(name string) (Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Names lists all workload names in roster order.
func Names() []string {
	ns := make([]string, len(specs))
	for i, s := range specs {
		ns[i] = s.Name
	}
	return ns
}

// Representative returns a small, band-balanced subset used by quick
// benchmark runs: two low-miss and two high-miss NPB workloads plus one
// of each from GAPBS.
func Representative() []Spec {
	names := []string{"bt.C", "lu.C", "ft.C", "is.D", "bfs.22", "pr.25"}
	out := make([]Spec, 0, len(names))
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, s)
	}
	return out
}
