package trace

import (
	"io"

	"tdram/internal/dramcache"
	"tdram/internal/mem"
)

// Recorder hooks a controller and streams every accepted demand into a
// Writer. Attach it before the measured phase; call Close when done.
type Recorder struct {
	w   *Writer
	err error
}

// NewRecorder attaches to ctl, writing the binary format to w.
func NewRecorder(ctl *dramcache.Controller, w io.Writer) *Recorder {
	r := &Recorder{w: NewWriter(w)}
	ctl.OnAccept = func(req *mem.Request) {
		if r.err != nil {
			return
		}
		r.err = r.w.Append(Event{
			Tick: req.Arrive,
			Core: uint8(req.Core),
			Kind: req.Kind,
			Line: req.Line(),
		})
	}
	return r
}

// Events reports how many demands were recorded.
func (r *Recorder) Events() uint64 { return r.w.Events() }

// Close flushes the stream and reports the first error, if any.
func (r *Recorder) Close() error {
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}
