// Package trace records and replays DRAM-cache demand streams. The
// paper's methodology section (§IV-A) argues that trace-driven
// simulation misses feedback effects — an application's demand timing
// depends on the memory system it runs against — and this package lets
// the repository demonstrate exactly that: record the demand stream of
// one design's execution-driven run, replay it open-loop against
// another design, and compare against the execution-driven result.
//
// The binary format is a compact delta encoding:
//
//	header:  "TDTRACE1"
//	event:   uvarint(tick delta in ps) | byte(kind<<7 | core) | uvarint(line)
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Magic identifies the binary trace format.
const Magic = "TDTRACE1"

// Event is one 64 B demand as it was accepted by the controller.
type Event struct {
	Tick sim.Tick // acceptance time
	Core uint8
	Kind mem.Kind
	Line uint64
}

// Writer streams events to w in the binary format.
type Writer struct {
	w        *bufio.Writer
	lastTick sim.Tick
	events   uint64
	buf      [binary.MaxVarintLen64]byte
	started  bool
}

// NewWriter wraps w; the header is written on the first event (or on
// Flush, whichever comes first).
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (tw *Writer) start() error {
	if tw.started {
		return nil
	}
	tw.started = true
	_, err := tw.w.WriteString(Magic)
	return err
}

// Append encodes one event. Events must be time-ordered.
func (tw *Writer) Append(e Event) error {
	if err := tw.start(); err != nil {
		return err
	}
	if e.Tick < tw.lastTick {
		return fmt.Errorf("trace: event at %v before previous %v", e.Tick, tw.lastTick)
	}
	if e.Core > 127 {
		return fmt.Errorf("trace: core %d exceeds the format's 7-bit field", e.Core)
	}
	n := binary.PutUvarint(tw.buf[:], uint64(e.Tick-tw.lastTick))
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.lastTick = e.Tick
	flags := byte(e.Core)
	if e.Kind == mem.Write {
		flags |= 0x80
	}
	if err := tw.w.WriteByte(flags); err != nil {
		return err
	}
	n = binary.PutUvarint(tw.buf[:], e.Line)
	if _, err := tw.w.Write(tw.buf[:n]); err != nil {
		return err
	}
	tw.events++
	return nil
}

// Events reports how many events were appended.
func (tw *Writer) Events() uint64 { return tw.events }

// Flush writes buffered data (and the header for an empty trace).
func (tw *Writer) Flush() error {
	if err := tw.start(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader streams events back from the binary format.
type Reader struct {
	r        *bufio.Reader
	lastTick sim.Tick
	checked  bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ErrBadMagic reports a stream that is not a TDRAM trace.
var ErrBadMagic = errors.New("trace: bad magic (not a TDTRACE1 stream)")

func (tr *Reader) header() error {
	if tr.checked {
		return nil
	}
	tr.checked = true
	got := make([]byte, len(Magic))
	if _, err := io.ReadFull(tr.r, got); err != nil {
		return fmt.Errorf("trace: reading header: %w", err)
	}
	if string(got) != Magic {
		return ErrBadMagic
	}
	return nil
}

// Next decodes one event; io.EOF signals a clean end of trace.
func (tr *Reader) Next() (Event, error) {
	if err := tr.header(); err != nil {
		return Event{}, err
	}
	delta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: tick: %w", err)
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		return Event{}, fmt.Errorf("trace: flags: %w", err)
	}
	line, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return Event{}, fmt.Errorf("trace: line: %w", err)
	}
	tr.lastTick += sim.Tick(delta)
	e := Event{Tick: tr.lastTick, Core: flags & 0x7F, Kind: mem.Read, Line: line}
	if flags&0x80 != 0 {
		e.Kind = mem.Write
	}
	return e, nil
}

// ReadAll decodes a whole trace into memory.
func ReadAll(r io.Reader) ([]Event, error) {
	tr := NewReader(r)
	var out []Event
	for {
		e, err := tr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// Summary aggregates a trace's shape.
type Summary struct {
	Events        uint64
	Reads, Writes uint64
	Cores         int
	Lines         uint64 // distinct lines
	First, Last   sim.Tick
}

// Summarize scans a trace stream.
func Summarize(r io.Reader) (Summary, error) {
	tr := NewReader(r)
	var s Summary
	seenCores := map[uint8]bool{}
	seenLines := map[uint64]bool{}
	for {
		e, err := tr.Next()
		if errors.Is(err, io.EOF) {
			s.Cores = len(seenCores)
			s.Lines = uint64(len(seenLines))
			return s, nil
		}
		if err != nil {
			return s, err
		}
		if s.Events == 0 {
			s.First = e.Tick
		}
		s.Last = e.Tick
		s.Events++
		if e.Kind == mem.Write {
			s.Writes++
		} else {
			s.Reads++
		}
		seenCores[e.Core] = true
		seenLines[e.Line] = true
	}
}
