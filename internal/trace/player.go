package trace

import (
	"fmt"

	"tdram/internal/dramcache"
	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Player replays a recorded demand stream open-loop against a
// controller: each demand is injected at its recorded time (normalized
// to simulation start), slipping only under controller backpressure.
// This is classic trace-driven simulation — deliberately blind to the
// feedback between memory-system latency and demand timing, which is
// the limitation the paper's methodology avoids (§IV-A).
type Player struct {
	sim    *sim.Simulator
	ctl    *dramcache.Controller
	events []Event

	idx            int
	base           sim.Tick
	openReads      int
	reads          uint64
	injectQueued   bool
	retryScheduled bool
}

// NewPlayer builds a player over events (time-ordered).
func NewPlayer(s *sim.Simulator, ctl *dramcache.Controller, events []Event) *Player {
	p := &Player{sim: s, ctl: ctl, events: events}
	ctl.OnDemandRetry = p.onRetry
	return p
}

// Prewarm applies the first frac of the trace to the cache content
// functionally (no timing) and replays only the remainder — the
// trace-driven analogue of starting from a warmed checkpoint.
func (p *Player) Prewarm(frac float64) {
	if frac <= 0 || len(p.events) == 0 {
		return
	}
	n := int(float64(len(p.events)) * frac)
	if n > len(p.events) {
		n = len(p.events)
	}
	for _, e := range p.events[:n] {
		p.ctl.Prewarm(e.Line, e.Kind == mem.Write)
	}
	p.events = p.events[n:]
}

// Run injects the whole trace and waits for every read to complete. It
// returns the replay's runtime.
func (p *Player) Run() (sim.Tick, error) {
	if len(p.events) == 0 {
		return 0, nil
	}
	p.base = p.events[0].Tick
	start := p.sim.Now()
	p.scheduleNext()
	ok := p.sim.RunUntil(func() bool {
		return p.idx >= len(p.events) && p.openReads == 0
	})
	if !ok {
		// Give daemon-driven drains a chance, then re-check.
		for i := 0; i < 100 && !(p.idx >= len(p.events) && p.openReads == 0); i++ {
			p.sim.Run(p.sim.Now() + sim.NS(8000))
		}
	}
	if p.idx < len(p.events) || p.openReads != 0 {
		return 0, fmt.Errorf("trace: replay stalled at event %d/%d with %d reads outstanding",
			p.idx, len(p.events), p.openReads)
	}
	return p.sim.Now() - start, nil
}

// scheduleNext arms the injection of the next pending event.
func (p *Player) scheduleNext() {
	if p.injectQueued || p.idx >= len(p.events) {
		return
	}
	p.injectQueued = true
	due := p.events[p.idx].Tick - p.base
	now := p.sim.Now()
	delay := due - now
	if delay < 0 {
		delay = 0 // slipped past the recorded time under backpressure
	}
	p.sim.ScheduleArg(delay, playerInjectEv, p)
}

// playerInjectEv fires a scheduled injection point.
func playerInjectEv(a any, _ sim.Tick) {
	p := a.(*Player)
	p.injectQueued = false
	p.inject()
}

// playerRetryEv re-runs injection after a backpressure backoff.
func playerRetryEv(a any, _ sim.Tick) {
	p := a.(*Player)
	p.retryScheduled = false
	p.inject()
}

// inject issues every event that is due, then re-arms.
func (p *Player) inject() {
	now := p.sim.Now()
	for p.idx < len(p.events) {
		e := p.events[p.idx]
		if e.Tick-p.base > now {
			break
		}
		req := &mem.Request{
			ID:   uint64(p.idx + 1),
			Addr: e.Line * mem.LineSize,
			Kind: e.Kind,
			Core: int(e.Core),
		}
		if e.Kind == mem.Read {
			req.OnDone = func(*mem.Request) { p.openReads-- }
		}
		if !p.ctl.Enqueue(req) {
			// Backpressure: wait for the controller's retry signal (with
			// a timed fallback so replay cannot wedge).
			if !p.retryScheduled {
				p.retryScheduled = true
				p.sim.ScheduleArg(sim.NS(50), playerRetryEv, p)
			}
			return
		}
		if e.Kind == mem.Read {
			p.openReads++
			p.reads++
		}
		p.idx++
	}
	p.scheduleNext()
}

// onRetry is the controller's queue-space signal.
func (p *Player) onRetry() {
	if p.idx < len(p.events) && !p.injectQueued {
		p.scheduleNext()
	}
}

// Reads reports the number of read demands injected.
func (p *Player) Reads() uint64 { return p.reads }
