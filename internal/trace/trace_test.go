package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"tdram/internal/backing"
	"tdram/internal/dram"
	"tdram/internal/dramcache"
	"tdram/internal/mem"
	"tdram/internal/sim"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Tick: 100, Core: 0, Kind: mem.Read, Line: 42},
		{Tick: 100, Core: 3, Kind: mem.Write, Line: 1 << 40},
		{Tick: 2500, Core: 7, Kind: mem.Read, Line: 0},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, e := range events {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestWriterRejectsDisorder(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.Append(Event{Tick: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Event{Tick: 50}); err == nil {
		t.Error("out-of-order event accepted")
	}
	if err := w.Append(Event{Tick: 200, Core: 128}); err == nil {
		t.Error("oversized core accepted")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewBufferString("NOTATRACE")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v, %d events", err, len(got))
	}
}

// Property: arbitrary time-ordered event sequences round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var events []Event
		tick := sim.Tick(0)
		for i := 0; i < int(n); i++ {
			tick += sim.Tick(rng.Intn(10000))
			events = append(events, Event{
				Tick: tick,
				Core: uint8(rng.Intn(128)),
				Kind: mem.Kind(rng.Intn(2)),
				Line: rng.Uint64() >> uint(rng.Intn(40)),
			})
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, e := range events {
			if w.Append(e) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(Event{Tick: 10, Core: 0, Kind: mem.Read, Line: 5})
	w.Append(Event{Tick: 20, Core: 1, Kind: mem.Write, Line: 5})
	w.Append(Event{Tick: 30, Core: 1, Kind: mem.Read, Line: 9})
	w.Flush()
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Events: 3, Reads: 2, Writes: 1, Cores: 2, Lines: 2, First: 10, Last: 30}
	if s != want {
		t.Errorf("summary = %+v, want %+v", s, want)
	}
}

func newCtl(t *testing.T, d dramcache.Design) (*sim.Simulator, *dramcache.Controller) {
	t.Helper()
	s := sim.New()
	mm, err := backing.New(s, dram.DDR5Params())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := dramcache.New(s, dramcache.DefaultConfig(d, 256<<10), mm)
	if err != nil {
		t.Fatal(err)
	}
	return s, ctl
}

func TestRecorderCapturesDemands(t *testing.T) {
	s, ctl := newCtl(t, dramcache.TDRAM)
	var buf bytes.Buffer
	rec := NewRecorder(ctl, &buf)
	done := 0
	for i := 0; i < 20; i++ {
		req := &mem.Request{ID: uint64(i), Addr: uint64(i*977) * 64, Kind: mem.Read,
			OnDone: func(*mem.Request) { done++ }}
		if !ctl.Enqueue(req) {
			t.Fatal("rejected")
		}
		s.Run(s.Now() + sim.NS(100))
	}
	s.Run(0)
	if rec.Events() != 20 {
		t.Fatalf("recorded %d events", rec.Events())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events != 20 || sum.Reads != 20 {
		t.Errorf("summary %+v", sum)
	}
}

func TestPlayerReplaysTrace(t *testing.T) {
	// Synthesize a simple trace and replay it on two designs.
	var events []Event
	rng := rand.New(rand.NewSource(4))
	tick := sim.Tick(0)
	for i := 0; i < 300; i++ {
		tick += sim.Tick(rng.Intn(8000))
		kind := mem.Read
		if rng.Intn(100) < 30 {
			kind = mem.Write
		}
		events = append(events, Event{Tick: tick, Core: uint8(i % 8), Kind: kind,
			Line: uint64(rng.Intn(20000))})
	}
	for _, d := range []dramcache.Design{dramcache.TDRAM, dramcache.CascadeLake} {
		s, ctl := newCtl(t, d)
		p := NewPlayer(s, ctl, events)
		runtime, err := p.Run()
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if runtime <= 0 {
			t.Fatalf("%v: runtime %v", d, runtime)
		}
		if p.Reads() == 0 {
			t.Fatalf("%v: no reads injected", d)
		}
		st := ctl.Stats()
		if st.DemandReads+st.DemandWrites != 300 {
			t.Errorf("%v: demands = %d, want 300", d, st.DemandReads+st.DemandWrites)
		}
	}
}

func TestPlayerPrewarm(t *testing.T) {
	// A trace that revisits its lines: with prewarm, the replayed tail
	// must see hits.
	var events []Event
	tick := sim.Tick(0)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			tick += 1000
			events = append(events, Event{Tick: tick, Core: 0, Kind: mem.Read, Line: uint64(i)})
		}
	}
	s, ctl := newCtl(t, dramcache.TDRAM)
	p := NewPlayer(s, ctl, events)
	p.Prewarm(0.5) // the first pass warms; the second replays
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats()
	if st.Outcomes.MissRatio() > 0.05 {
		t.Errorf("miss ratio after prewarm = %.2f, want ~0", st.Outcomes.MissRatio())
	}
	if st.DemandReads != 100 {
		t.Errorf("replayed demands = %d, want 100", st.DemandReads)
	}
}

func TestPlayerEmptyTrace(t *testing.T) {
	s, ctl := newCtl(t, dramcache.TDRAM)
	p := NewPlayer(s, ctl, nil)
	runtime, err := p.Run()
	if err != nil || runtime != 0 {
		t.Errorf("empty replay: %v, %v", runtime, err)
	}
}

func TestRecordThenReplayRoundTrip(t *testing.T) {
	// Record a short run, replay the captured trace, and check the
	// demand counts survive the round trip.
	s, ctl := newCtl(t, dramcache.CascadeLake)
	var buf bytes.Buffer
	rec := NewRecorder(ctl, &buf)
	done := 0
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		kind := mem.Read
		var onDone func(*mem.Request)
		if rng.Intn(100) < 30 {
			kind = mem.Write
		} else {
			onDone = func(*mem.Request) { done++ }
		}
		req := &mem.Request{ID: uint64(i), Addr: uint64(rng.Intn(30000)) * 64, Kind: kind, OnDone: onDone}
		for !ctl.Enqueue(req) {
			s.Step()
		}
		s.Run(s.Now() + sim.NS(20))
	}
	s.Run(0)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 200 {
		t.Fatalf("captured %d events", len(events))
	}
	s2, ctl2 := newCtl(t, dramcache.TDRAM)
	if _, err := NewPlayer(s2, ctl2, events).Run(); err != nil {
		t.Fatal(err)
	}
	st := ctl2.Stats()
	if st.DemandReads+st.DemandWrites != 200 {
		t.Errorf("replayed demands = %d", st.DemandReads+st.DemandWrites)
	}
}
