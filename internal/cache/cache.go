// Package cache implements the on-chip SRAM cache models (private L1 and
// L2 per core, Table III) that sit between the request-generating cores
// and the DRAM cache. They are functional set-associative write-back,
// write-allocate caches with LRU replacement plus a fixed hit latency;
// their purpose in the reproduction is to filter the address stream and
// to generate the dirty writebacks that become the DRAM cache's write
// demands, exactly as LLC writebacks do in the paper's system.
package cache

import (
	"fmt"
	"math/bits"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Config sizes one cache level.
type Config struct {
	Name    string
	Size    uint64   // bytes
	Ways    int      // associativity
	Latency sim.Tick // hit latency contribution of this level
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is one level. It is purely functional: Access returns what
// happened and what was evicted; the caller composes latencies.
type Cache struct {
	cfg     Config
	sets    int
	lines   []line // sets × ways
	lruTick uint64

	// tags mirrors lines for the hit scan only: entry w holds tag+1 when
	// lines[w] is valid and 0 otherwise, so the scan compares one compact
	// word per way (a whole 8-way set fits in one host cache line) instead
	// of walking the 24-byte bookkeeping structs. Invariant: tags[i] != 0
	// exactly when lines[i].valid, and then tags[i] == lines[i].tag+1.
	tags []uint64

	// Power-of-two set decode (the common configuration): index by mask
	// and shift instead of modulo and divide, which dominate the access
	// cost otherwise. pow2 false falls back to the general arithmetic.
	pow2  bool
	mask  uint64
	shift uint

	Hits, Misses, Evictions, DirtyEvictions uint64
}

// New builds a cache level. Size must be a multiple of Ways*LineSize.
func New(cfg Config) (*Cache, error) {
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: ways = %d", cfg.Name, cfg.Ways)
	}
	lines := cfg.Size / mem.LineSize
	if lines == 0 || lines%uint64(cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache %s: size %d not divisible into %d ways of %d B lines",
			cfg.Name, cfg.Size, cfg.Ways, mem.LineSize)
	}
	sets := int(lines) / cfg.Ways
	c := &Cache{cfg: cfg, sets: sets, lines: make([]line, lines), tags: make([]uint64, lines)}
	if sets&(sets-1) == 0 {
		c.pow2 = true
		c.mask = uint64(sets - 1)
		c.shift = uint(bits.TrailingZeros(uint(sets)))
	}
	return c, nil
}

// Config returns the construction parameters.
func (c *Cache) Config() Config { return c.cfg }

// Sets reports the number of sets.
func (c *Cache) Sets() int { return c.sets }

func (c *Cache) set(lineAddr uint64) (int, uint64) {
	if c.pow2 {
		return int(lineAddr & c.mask), lineAddr >> c.shift
	}
	set := int(lineAddr % uint64(c.sets))
	tag := lineAddr / uint64(c.sets)
	return set, tag
}

// Result describes one access.
type Result struct {
	Hit         bool
	Evicted     bool   // a valid victim was displaced (only on miss fills)
	VictimDirty bool   // the victim needs writing back
	VictimLine  uint64 // line address of the victim
}

// Lookup probes without modifying state (used by tests and by warmup
// verification).
func (c *Cache) Lookup(lineAddr uint64) bool {
	set, tag := c.set(lineAddr)
	base := set * c.cfg.Ways
	key := tag + 1
	for _, tv := range c.tags[base : base+c.cfg.Ways] {
		if tv == key {
			return true
		}
	}
	return false
}

// Access performs a load (dirty=false) or store (dirty=true) of one line,
// allocating on miss and evicting LRU. The returned Result tells the
// caller whether a dirty victim must be written back to the next level.
func (c *Cache) Access(lineAddr uint64, dirty bool) Result {
	set, tag := c.set(lineAddr)
	base := set * c.cfg.Ways
	ways := c.lines[base : base+c.cfg.Ways]
	tags := c.tags[base : base+c.cfg.Ways]
	key := tag + 1
	c.lruTick++
	// Hit scan first over the compact tag words — the overwhelmingly
	// common case pays for nothing else; victim selection only runs once
	// the miss is established.
	for w, tv := range tags {
		if tv == key {
			l := &ways[w]
			l.lru = c.lruTick
			if dirty {
				l.dirty = true
			}
			c.Hits++
			return Result{Hit: true}
		}
	}
	// Victim: the first invalid way, else the least recently used (ties
	// break toward the lowest way, matching the original combined scan).
	vw := 0
	if ways[0].valid {
		for w := 1; w < len(ways); w++ {
			l := &ways[w]
			if !l.valid {
				vw = w
				break
			}
			if l.lru < ways[vw].lru {
				vw = w
			}
		}
	}
	victim := &ways[vw]
	c.Misses++
	res := Result{}
	if victim.valid {
		res.Evicted = true
		res.VictimDirty = victim.dirty
		res.VictimLine = victim.tag*uint64(c.sets) + uint64(set)
		c.Evictions++
		if victim.dirty {
			c.DirtyEvictions++
		}
	}
	*victim = line{tag: tag, valid: true, dirty: dirty, lru: c.lruTick}
	tags[vw] = key
	return res
}

// Invalidate drops a line if present, returning whether it was dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	set, tag := c.set(lineAddr)
	base := set * c.cfg.Ways
	key := tag + 1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == key {
			l := &c.lines[base+w]
			present, dirty = true, l.dirty
			l.valid = false
			c.tags[base+w] = 0
			return
		}
	}
	return
}

// MarkDirty sets the dirty bit of a resident line (e.g. a writeback from
// an upper level landing in this one). It reports whether the line was
// resident.
func (c *Cache) MarkDirty(lineAddr uint64) bool {
	set, tag := c.set(lineAddr)
	base := set * c.cfg.Ways
	key := tag + 1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == key {
			l := &c.lines[base+w]
			l.dirty = true
			l.lru = c.lruTick
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the cache: content, LRU state, and hit
// counters all duplicated, so the copy and the original evolve
// independently. The warmup-image fork uses this to hand every design
// cell its own prewarmed SRAM stack.
//
//tdlint:copier Cache
func (c *Cache) Clone() *Cache {
	d := *c
	d.lines = append([]line(nil), c.lines...)
	d.tags = append([]uint64(nil), c.tags...)
	return &d
}

// Occupancy reports the fraction of valid lines (warmup diagnostics).
func (c *Cache) Occupancy() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// Hierarchy is one core's private L1+L2 stack. An access flows through
// both levels functionally; writebacks falling out of L2 are handed to
// the owner via the WriteBack callback (they become DRAM cache write
// demands). Misses in L2 are demand reads for the DRAM cache.
type Hierarchy struct {
	L1, L2 *Cache

	// WriteBack receives dirty L2 victims.
	//tdlint:shared WriteBack — Clone drops it on purpose: it points at the original owner's core and must be rebound by the new owner
	WriteBack func(lineAddr uint64)
}

// NewHierarchy builds the Table III per-core stack: 32 KiB L1 and 512 KiB
// private L2 (the paper's "LLC" for writeback purposes).
func NewHierarchy() *Hierarchy {
	return NewSizedHierarchy(32<<10, 512<<10)
}

// NewSizedHierarchy builds a per-core stack with explicit L1/L2 capacities.
// Scaled-down simulations shrink the on-chip caches along with the DRAM
// cache so the reuse the SRAM levels absorb stays proportionate.
func NewSizedHierarchy(l1Bytes, l2Bytes uint64) *Hierarchy {
	l1, err := New(Config{Name: "l1d", Size: l1Bytes, Ways: 8, Latency: sim.NS(1)})
	if err != nil {
		panic(err)
	}
	l2, err := New(Config{Name: "l2", Size: l2Bytes, Ways: 8, Latency: sim.NS(4)})
	if err != nil {
		panic(err)
	}
	return &Hierarchy{L1: l1, L2: l2}
}

// Clone returns a deep copy of the stack's content and counters. The
// WriteBack callback is NOT carried over — it points at the original
// owner's core; the new owner must rebind it before the first access.
//
//tdlint:copier Hierarchy
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{L1: h.L1.Clone(), L2: h.L2.Clone()}
}

// AccessResult summarizes one core access against the stack.
type AccessResult struct {
	Latency  sim.Tick // on-chip latency (excludes any DRAM access)
	MissLine uint64   // valid when Missed
	Missed   bool     // needs a DRAM-cache read demand for MissLine
}

// Access runs one load/store through L1 then L2. When the access misses
// both levels, the caller must issue a read demand for the returned line
// and call Fill once data returns. Store misses allocate like loads
// (write-allocate); stores mark lines dirty so evictions eventually
// produce write demands downstream.
func (h *Hierarchy) Access(lineAddr uint64, store bool) AccessResult {
	res := AccessResult{Latency: h.L1.cfg.Latency}
	r1 := h.L1.Access(lineAddr, store)
	if r1.Hit {
		return res
	}
	// L1 victim falls into L2 (it is inclusive enough for our purposes:
	// mark dirty there, or install if absent).
	if r1.Evicted && r1.VictimDirty {
		if !h.L2.MarkDirty(r1.VictimLine) {
			h.spillToL2(r1.VictimLine)
		}
	}
	res.Latency += h.L2.cfg.Latency
	r2 := h.L2.Access(lineAddr, false) // dirty bit tracked in L1 until eviction
	if r2.Hit {
		return res
	}
	if r2.Evicted && r2.VictimDirty && h.WriteBack != nil {
		h.WriteBack(r2.VictimLine)
	}
	res.Missed = true
	res.MissLine = lineAddr
	return res
}

// spillToL2 installs a dirty L1 victim that L2 no longer holds.
func (h *Hierarchy) spillToL2(lineAddr uint64) {
	r := h.L2.Access(lineAddr, true)
	if r.Evicted && r.VictimDirty && h.WriteBack != nil {
		h.WriteBack(r.VictimLine)
	}
}
