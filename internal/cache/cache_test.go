package cache

import (
	"testing"
	"testing/quick"

	"tdram/internal/sim"
)

func small(t *testing.T, ways int) *Cache {
	t.Helper()
	c, err := New(Config{Name: "t", Size: uint64(ways) * 4 * 64, Ways: ways, Latency: sim.NS(1)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	if _, err := New(Config{Size: 64, Ways: 0}); err == nil {
		t.Error("zero ways accepted")
	}
	if _, err := New(Config{Size: 100, Ways: 3}); err == nil {
		t.Error("non-divisible size accepted")
	}
	if _, err := New(Config{Size: 0, Ways: 1}); err == nil {
		t.Error("zero size accepted")
	}
}

func TestHitMiss(t *testing.T) {
	c := small(t, 2) // 4 sets, 2 ways
	if r := c.Access(0, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0, false); !r.Hit {
		t.Error("repeat access missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if !c.Lookup(0) || c.Lookup(1) {
		t.Error("Lookup disagrees with contents")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t, 2) // 4 sets
	// Three lines mapping to set 0: 0, 4, 8.
	c.Access(0, false)
	c.Access(4, false)
	c.Access(0, false) // 0 is now MRU
	r := c.Access(8, false)
	if r.Hit || !r.Evicted {
		t.Fatalf("fill result %+v", r)
	}
	if r.VictimLine != 4 {
		t.Errorf("victim = %d, want 4 (LRU)", r.VictimLine)
	}
	if !c.Lookup(0) || c.Lookup(4) || !c.Lookup(8) {
		t.Error("contents after eviction wrong")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := small(t, 1) // direct-mapped, 4 sets
	c.Access(0, true)
	r := c.Access(4, false)
	if !r.Evicted || !r.VictimDirty || r.VictimLine != 0 {
		t.Errorf("dirty eviction result %+v", r)
	}
	if c.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", c.DirtyEvictions)
	}
	// Clean victim: no writeback flag.
	r = c.Access(8, false)
	if r.VictimDirty {
		t.Error("clean victim flagged dirty")
	}
}

func TestStoreMarksDirty(t *testing.T) {
	c := small(t, 1)
	c.Access(0, false)
	c.Access(0, true) // hit-store dirties
	r := c.Access(4, false)
	if !r.VictimDirty {
		t.Error("hit-store did not mark dirty")
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t, 2)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("invalidate = %v,%v", present, dirty)
	}
	if c.Lookup(0) {
		t.Error("line still present")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("second invalidate found line")
	}
}

func TestMarkDirty(t *testing.T) {
	c := small(t, 2)
	c.Access(0, false)
	if !c.MarkDirty(0) {
		t.Error("MarkDirty missed resident line")
	}
	if c.MarkDirty(99) {
		t.Error("MarkDirty hit absent line")
	}
	r := c.Access(4, false)
	_ = r
	c.Access(8, false) // evicts LRU
	if c.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d after MarkDirty eviction", c.DirtyEvictions)
	}
}

func TestPrefersInvalidWay(t *testing.T) {
	c := small(t, 4) // 4 ways, 4 sets
	c.Access(0, false)
	// Three more fills to set 0 must use invalid ways, not evict.
	for _, l := range []uint64{4, 8, 12} {
		if r := c.Access(l, false); r.Evicted {
			t.Errorf("fill of %d evicted despite invalid ways", l)
		}
	}
	if r := c.Access(16, false); !r.Evicted {
		t.Error("full set did not evict")
	}
}

func TestOccupancy(t *testing.T) {
	c := small(t, 2) // 8 lines
	if c.Occupancy() != 0 {
		t.Error("fresh cache occupied")
	}
	c.Access(0, false)
	c.Access(1, false)
	if got := c.Occupancy(); got != 0.25 {
		t.Errorf("occupancy = %v", got)
	}
}

// Property: a cache never holds two copies of one line, and hit/miss
// matches a reference map model.
func TestCacheMatchesReferenceModel(t *testing.T) {
	f := func(addrs []uint16) bool {
		c, err := New(Config{Name: "p", Size: 16 * 64, Ways: 4, Latency: 0})
		if err != nil {
			return false
		}
		// Reference: per-set LRU lists.
		type ref struct{ lines []uint64 }
		refs := make([]ref, c.Sets())
		for _, a := range addrs {
			la := uint64(a % 64)
			set := int(la % uint64(c.Sets()))
			r := &refs[set]
			hit := false
			for i, l := range r.lines {
				if l == la {
					hit = true
					r.lines = append(r.lines[:i], r.lines[i+1:]...)
					r.lines = append(r.lines, la)
					break
				}
			}
			if !hit {
				if len(r.lines) == 4 {
					r.lines = r.lines[1:]
				}
				r.lines = append(r.lines, la)
			}
			got := c.Access(la, false)
			if got.Hit != hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyFiltering(t *testing.T) {
	h := NewHierarchy()
	var wbs []uint64
	h.WriteBack = func(l uint64) { wbs = append(wbs, l) }

	r := h.Access(100, false)
	if !r.Missed || r.MissLine != 100 {
		t.Fatalf("cold access: %+v", r)
	}
	r = h.Access(100, false)
	if r.Missed {
		t.Error("second access missed")
	}
	if r.Latency != sim.NS(1) {
		t.Errorf("L1 hit latency = %v", r.Latency)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy()
	h.Access(100, false)
	// Evict 100 from L1 by filling its set (L1 32KiB/8w/64B = 64 sets):
	// lines 100+64k map to the same L1 set.
	for k := 1; k <= 8; k++ {
		h.Access(100+uint64(k*64), false)
	}
	r := h.Access(100, false)
	if r.Missed {
		t.Error("L2 should have held the line")
	}
	if r.Latency != sim.NS(5) {
		t.Errorf("L1miss+L2hit latency = %v, want 5ns", r.Latency)
	}
}

func TestHierarchyWriteback(t *testing.T) {
	h := NewHierarchy()
	var wbs []uint64
	h.WriteBack = func(l uint64) { wbs = append(wbs, l) }
	// Dirty many distinct lines mapping over L2 (512 KiB = 8192 lines);
	// writing 3x that many lines must force dirty L2 evictions.
	n := 0
	for i := uint64(0); i < 8192*3; i++ {
		r := h.Access(i*7+3, true)
		if r.Missed {
			n++
		}
	}
	if len(wbs) == 0 {
		t.Fatal("no writebacks escaped L2 despite dirty working set 3x its size")
	}
	if n == 0 {
		t.Fatal("no misses")
	}
}

func TestHierarchyStoreDirtyPropagation(t *testing.T) {
	// A store dirties L1; when the line is evicted to L2 and then out of
	// L2, a writeback must appear even though L2 saw a "clean" install.
	h := NewHierarchy()
	var wbs []uint64
	h.WriteBack = func(l uint64) { wbs = append(wbs, l) }
	h.Access(0, true) // dirty in L1
	// Thrash both caches with a large clean scan.
	for i := uint64(1); i < 20000; i++ {
		h.Access(i, false)
	}
	found := false
	for _, w := range wbs {
		if w == 0 {
			found = true
		}
	}
	if !found {
		t.Error("dirtied line never written back through the hierarchy")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy()
	h.WriteBack = func(uint64) {}
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i*13)%100000, i%4 == 0)
	}
}
