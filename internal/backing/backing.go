// Package backing models the system's main memory: the paper's 2-channel
// DDR5 backing store (Table III) behind per-channel read/write queues
// with FR-FCFS scheduling and write draining.
package backing

import (
	"fmt"

	"tdram/internal/dram"
	"tdram/internal/sim"
	"tdram/internal/stats"
)

// QueueDepth is the per-channel read and write buffer depth (Table III).
const QueueDepth = 64

// drain thresholds: the controller switches to write draining when the
// write queue reaches hiWater and back to read-priority at loWater.
const (
	hiWater = QueueDepth * 3 / 4
	loWater = QueueDepth / 4
)

// Stats aggregates backing-store measurements.
type Stats struct {
	Reads, Writes      uint64
	ReadQueueing       stats.Mean // ns from enqueue to command issue
	ReadLatency        stats.Mean // ns from enqueue to data at controller
	BytesRead          uint64
	BytesWritten       uint64
	QueueFullRejects   uint64
	WriteDrainSwitches uint64
}

// Memory is the DDR5 main memory.
type Memory struct {
	sim   *sim.Simulator
	dev   *dram.Device
	chans []*channelCtl
	stats Stats
	free  *mmReq // recycled request records (zero-alloc steady state)

	// OnReadFree / OnWriteFree, when set, are invoked (via a zero-delay
	// event, outside the scheduler loop) after a previously full read or
	// write queue issues a request. Callers that were refused by
	// Read/Write rearm from these instead of polling.
	OnReadFree  func()
	OnWriteFree func()
}

// New builds the backing store on s with the given device parameters
// (usually dram.DDR5Params).
func New(s *sim.Simulator, p dram.Params) (*Memory, error) {
	dev, err := dram.NewDevice(s, p)
	if err != nil {
		return nil, err
	}
	m := &Memory{sim: s, dev: dev}
	m.chans = make([]*channelCtl, dev.Channels())
	for i := range m.chans {
		m.chans[i] = &channelCtl{mem: m, ch: dev.Channel(i)}
	}
	return m, nil
}

// Stats returns the accumulated measurements.
func (m *Memory) Stats() *Stats { return &m.stats }

// Device exposes the underlying DRAM device (for energy accounting).
func (m *Memory) Device() *dram.Device { return m.dev }

// runDone dispatches a classic func() completion stored in arg (the
// convenience Read form). Func values are pointer-shaped, so this boxing
// does not allocate.
func runDone(a any, _ sim.Tick) { a.(func())() }

// Read enqueues a read of one line; done fires when data arrives at the
// controller. It reports false (and does nothing) when the target
// channel's read queue is full — the caller must retry.
func (m *Memory) Read(line uint64, done func()) bool {
	if done == nil {
		return m.ReadArg(line, nil, nil)
	}
	return m.ReadArg(line, runDone, done)
}

// ReadArg is Read with the kernel's typed-argument callback form:
// fn(arg, when) fires when data arrives. The controllers' miss path uses
// it with their transaction as arg so a backing fetch allocates no
// completion closure.
func (m *Memory) ReadArg(line uint64, fn func(any, sim.Tick), arg any) bool {
	co := m.dev.Coord(line)
	c := m.chans[co.Channel]
	if len(c.readQ) >= QueueDepth {
		m.stats.QueueFullRejects++
		return false
	}
	r := m.getReq()
	r.bank, r.row, r.write, r.arrive, r.fn, r.arg = co.Bank, co.Row, false, m.sim.Now(), fn, arg
	//tdlint:allow poollife — the queue is the record's single owner: service removes it and putReq recycles it in the same tick loop
	c.readQ = append(c.readQ, r)
	c.schedule()
	return true
}

// Write enqueues a posted write of one line (a DRAM-cache fill's eviction
// or writeback). It reports false when the write queue is full.
func (m *Memory) Write(line uint64) bool {
	co := m.dev.Coord(line)
	c := m.chans[co.Channel]
	if len(c.writeQ) >= QueueDepth {
		m.stats.QueueFullRejects++
		return false
	}
	r := m.getReq()
	r.bank, r.row, r.write, r.arrive = co.Bank, co.Row, true, m.sim.Now()
	//tdlint:allow poollife — the queue is the record's single owner: service removes it and putReq recycles it in the same tick loop
	c.writeQ = append(c.writeQ, r)
	c.schedule()
	return true
}

// ReadQueueFree reports whether the read queue routing line has space.
func (m *Memory) ReadQueueFree(line uint64) bool {
	ch, _ := m.dev.Route(line)
	return len(m.chans[ch].readQ) < QueueDepth
}

type mmReq struct {
	bank   int
	row    int
	write  bool
	arrive sim.Tick
	fn     func(any, sim.Tick)
	arg    any
	next   *mmReq // freelist link while pooled
}

// getReq pops a pooled request record (or allocates the pool's first).
// Records recycle through the freelist once issued, so steady-state
// traffic allocates none.
func (m *Memory) getReq() *mmReq {
	r := m.free
	if r == nil {
		return &mmReq{}
	}
	m.free = r.next
	r.next = nil
	return r
}

// putReq clears a finished request record and returns it to the pool.
func (m *Memory) putReq(r *mmReq) {
	*r = mmReq{next: m.free}
	m.free = r
}

// channelCtl schedules one DDR5 channel.
type channelCtl struct {
	mem      *Memory
	ch       *dram.Channel
	readQ    []*mmReq
	writeQ   []*mmReq
	draining bool
	retryAt  sim.Tick // earliest pending retry event, 0 = none
	retryGen uint64   // invalidates superseded retry events

	retryFree *retryEv // recycled retry-event records
}

// retryEv carries one armed retry's generation through the event queue
// without a capturing closure; records recycle through a per-channel
// freelist so retries allocate nothing in steady state.
type retryEv struct {
	c    *channelCtl
	gen  uint64
	next *retryEv
}

// schedule issues every command that can start now and arranges a retry
// at the earliest future feasible time otherwise.
func (c *channelCtl) schedule() {
	now := c.mem.sim.Now()
	for {
		// Drain-mode hysteresis.
		if c.draining {
			if len(c.writeQ) <= loWater {
				c.draining = false
			}
		} else if len(c.writeQ) >= hiWater {
			c.draining = true
			c.mem.stats.WriteDrainSwitches++
		}

		q := &c.readQ
		if c.draining || len(c.readQ) == 0 {
			q = &c.writeQ
		}
		if len(*q) == 0 {
			return
		}

		// FR-FCFS over a close-page stream degenerates to "oldest request
		// whose bank is ready": find the first queue entry issuable now;
		// otherwise remember the earliest future time. The scan is capped
		// at a 16-entry scheduling window, as in real controllers.
		best := -1
		bestAt := sim.Tick(-1)
		for i, r := range *q {
			if i >= 16 {
				break
			}
			op := dram.Op{Kind: dram.OpRead, Bank: r.bank, Row: r.row}
			if r.write {
				op.Kind = dram.OpWrite
			}
			at := c.ch.Earliest(op, now)
			if at == now {
				best = i
				bestAt = at
				break
			}
			if bestAt < 0 || at < bestAt {
				bestAt = at
			}
		}
		if best < 0 {
			c.retry(bestAt)
			return
		}

		r := (*q)[best]
		wasFull := len(*q) >= QueueDepth
		*q = append((*q)[:best], (*q)[best+1:]...)
		if wasFull {
			// The queue just transitioned from full: wake the free-event
			// subscriber on a fresh event so its re-offers cannot re-enter
			// this scheduling loop.
			cb := c.mem.OnWriteFree
			if !r.write {
				cb = c.mem.OnReadFree
			}
			if cb != nil {
				c.mem.sim.Schedule(0, cb)
			}
		}
		op := dram.Op{Kind: dram.OpRead, Bank: r.bank, Row: r.row}
		if r.write {
			op.Kind = dram.OpWrite
		}
		iss := c.ch.Commit(op, bestAt)
		st := &c.mem.stats
		if r.write {
			st.Writes++
			st.BytesWritten += 64
		} else {
			st.Reads++
			st.BytesRead += 64
			st.ReadQueueing.AddTick(bestAt - r.arrive)
			st.ReadLatency.AddTick(iss.DataEnd - r.arrive)
			if r.fn != nil {
				c.mem.sim.ScheduleArgAt(iss.DataEnd, r.fn, r.arg)
			}
		}
		c.mem.putReq(r)
	}
}

func (c *channelCtl) retry(at sim.Tick) {
	if at <= c.mem.sim.Now() {
		panic(fmt.Sprintf("backing: retry at %v not in the future", at))
	}
	if c.retryAt != 0 && c.retryAt <= at {
		return // an earlier retry is already scheduled
	}
	// Each armed retry supersedes any previously scheduled one; stale
	// events check the generation and die silently, so retries cannot
	// multiply.
	c.retryAt = at
	c.retryGen++
	ev := c.retryFree
	if ev == nil {
		ev = &retryEv{c: c}
	} else {
		c.retryFree = ev.next
	}
	ev.gen = c.retryGen
	c.mem.sim.ScheduleArgAt(at, channelRetry, ev)
}

// channelRetry fires an armed retry: stale generations recycle their
// record and die, the live one re-runs the scheduling loop.
func channelRetry(a any, _ sim.Tick) {
	ev := a.(*retryEv)
	c := ev.c
	live := ev.gen == c.retryGen
	ev.next = c.retryFree
	c.retryFree = ev
	if !live {
		return
	}
	c.retryAt = 0
	c.schedule()
}

// Pending reports queued requests across channels (tests/diagnostics).
func (m *Memory) Pending() (reads, writes int) {
	for _, c := range m.chans {
		reads += len(c.readQ)
		writes += len(c.writeQ)
	}
	return
}

// DebugState renders per-channel queue occupancies and the oldest queued
// request's age — the watchdog's diagnostic dump.
func (m *Memory) DebugState() string {
	s := ""
	now := m.sim.Now()
	for i, c := range m.chans {
		oldest := sim.Tick(-1)
		for _, q := range [][]*mmReq{c.readQ, c.writeQ} {
			for _, r := range q {
				if age := now - r.arrive; age > oldest {
					oldest = age
				}
			}
		}
		if i > 0 {
			s += "\n"
		}
		s += fmt.Sprintf("  ch%d: readq=%d writeq=%d draining=%v", i, len(c.readQ), len(c.writeQ), c.draining)
		if oldest >= 0 {
			s += fmt.Sprintf(" oldest-age=%v", oldest)
		}
	}
	return s
}
