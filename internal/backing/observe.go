package backing

import (
	"tdram/internal/obs"
)

// SetObserver attaches o to the backing store: the DDR5 device's channel
// tracks plus sampled gauges for queue occupancy and DQ utilization.
func (m *Memory) SetObserver(o *obs.Observer) {
	m.dev.SetObserver(o)
	o.Gauge("mm.readq", func() float64 {
		n := 0
		for _, c := range m.chans {
			n += len(c.readQ)
		}
		return float64(n)
	})
	o.Gauge("mm.writeq", func() float64 {
		n := 0
		for _, c := range m.chans {
			n += len(c.writeQ)
		}
		return float64(n)
	})
	var last uint64
	o.Gauge("mm.dq_util", func() float64 {
		s := m.dev.Stats()
		d := s.DQBusyTicks - last
		last = s.DQBusyTicks
		iv := o.MetricsInterval()
		if iv <= 0 {
			return 0
		}
		return float64(d) / (float64(iv) * float64(m.dev.Channels()))
	})
}
