package backing

import (
	"testing"

	"tdram/internal/dram"
	"tdram/internal/sim"
)

func newMem(t *testing.T) (*sim.Simulator, *Memory) {
	t.Helper()
	s := sim.New()
	m, err := New(s, dram.DDR5Params())
	if err != nil {
		t.Fatal(err)
	}
	return s, m
}

func TestSingleReadLatency(t *testing.T) {
	s, m := newMem(t)
	var doneAt sim.Tick
	if !m.Read(0, func() { doneAt = s.Now() }) {
		t.Fatal("read rejected")
	}
	s.RunUntil(func() bool { return doneAt != 0 })
	// Unloaded: tRCD(16) + tCL(16) + tBURST(2) = 34ns.
	if doneAt != sim.NS(34) {
		t.Errorf("unloaded read latency = %v, want 34ns", doneAt)
	}
	if m.Stats().Reads != 1 {
		t.Errorf("reads = %d", m.Stats().Reads)
	}
}

func TestReadsCompleteInOrderPerChannel(t *testing.T) {
	s, m := newMem(t)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		// Same channel (stride 2 lines keeps channel 0), distinct banks.
		if !m.Read(uint64(i*2), func() { order = append(order, i) }) {
			t.Fatal("rejected")
		}
	}
	s.Run(0)
	if len(order) != 10 {
		t.Fatalf("completed %d of 10", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-channel FCFS order violated: %v", order)
		}
	}
}

func TestChannelsParallel(t *testing.T) {
	s, m := newMem(t)
	var times []sim.Tick
	for i := 0; i < 2; i++ {
		if !m.Read(uint64(i), func() { times = append(times, s.Now()) }) {
			t.Fatal("rejected")
		}
	}
	s.Run(0)
	if len(times) != 2 || times[0] != times[1] {
		t.Errorf("two channels did not serve in parallel: %v", times)
	}
}

func TestQueueFull(t *testing.T) {
	_, m := newMem(t)
	accepted := 0
	for i := 0; i < QueueDepth*3; i++ {
		if m.Read(uint64(i*2), nil) { // all to channel 0
			accepted++
		}
	}
	// The first request issues immediately at t=0 and leaves the queue,
	// so QueueDepth+1 are accepted before backpressure.
	if accepted != QueueDepth+1 {
		t.Errorf("accepted %d, want %d", accepted, QueueDepth+1)
	}
	if m.Stats().QueueFullRejects == 0 {
		t.Error("no rejects recorded")
	}
	if m.ReadQueueFree(0) {
		t.Error("ReadQueueFree on full queue")
	}
}

func TestWriteDraining(t *testing.T) {
	s, m := newMem(t)
	// Fill writes beyond hiWater on channel 0; they must eventually issue.
	for i := 0; i < hiWater+4; i++ {
		if !m.Write(uint64(i * 2)) {
			t.Fatalf("write %d rejected", i)
		}
	}
	s.Run(0)
	if got := m.Stats().Writes; got != uint64(hiWater+4) {
		t.Errorf("writes issued = %d, want %d", got, hiWater+4)
	}
	if m.Stats().WriteDrainSwitches == 0 {
		t.Error("drain mode never engaged")
	}
	r, w := m.Pending()
	if r != 0 || w != 0 {
		t.Errorf("pending after drain: %d reads %d writes", r, w)
	}
}

func TestReadsPreferredOverWrites(t *testing.T) {
	s, m := newMem(t)
	// A few writes (below hiWater) then a read: the read must not wait
	// for all writes.
	for i := 0; i < 8; i++ {
		m.Write(uint64(i * 2))
	}
	var readDone sim.Tick
	m.Read(100, func() { readDone = s.Now() }) // channel 0
	s.Run(0)
	if readDone == 0 {
		t.Fatal("read never completed")
	}
	// If the read had waited for all 8 writes it would finish well after
	// 8 write-bank-times; it should finish much sooner.
	if readDone > sim.NS(200) {
		t.Errorf("read completed at %v; writes were preferred", readDone)
	}
}

func TestQueueingStats(t *testing.T) {
	s, m := newMem(t)
	for i := 0; i < 20; i++ {
		m.Read(uint64(i*2), nil) // same channel: queueing builds up
	}
	s.Run(0)
	st := m.Stats()
	if st.ReadQueueing.N() != 20 {
		t.Fatalf("queueing samples = %d", st.ReadQueueing.N())
	}
	if st.ReadQueueing.Value() <= 0 {
		t.Error("no queueing delay measured despite same-channel burst")
	}
	if st.ReadLatency.Value() <= st.ReadQueueing.Value() {
		t.Error("latency not larger than queueing")
	}
	if st.BytesRead != 20*64 {
		t.Errorf("bytes read = %d", st.BytesRead)
	}
}

func TestThroughputBound(t *testing.T) {
	// A saturating same-channel read stream must approach but not exceed
	// the 32 GiB/s channel peak (64 B / 2 ns).
	s, m := newMem(t)
	completed := 0
	var last sim.Tick
	issued := 0
	var pump func()
	pump = func() {
		for issued < 512 && m.Read(uint64(issued*2), func() { completed++; last = s.Now() }) {
			issued++
		}
		if issued < 512 {
			s.Schedule(sim.NS(50), pump)
		}
	}
	pump()
	s.Run(0)
	if completed != 512 {
		t.Fatalf("completed %d", completed)
	}
	gbps := float64(512*64) / last.Nanoseconds() // bytes per ns = GB/s
	if gbps > 32.5 {
		t.Errorf("channel exceeded peak: %.1f GB/s", gbps)
	}
	if gbps < 20 {
		t.Errorf("saturated channel only reached %.1f GB/s", gbps)
	}
}

func BenchmarkBackingReadStream(b *testing.B) {
	s := sim.New()
	m, err := New(s, dram.DDR5Params())
	if err != nil {
		b.Fatal(err)
	}
	done := 0
	for i := 0; i < b.N; i++ {
		for !m.Read(uint64(i), func() { done++ }) {
			s.Step()
		}
	}
	s.Run(0)
}
