package predict

// StridePrefetcher is a classic per-core stride detector with confidence
// thresholding, used for the paper's §V-D prefetcher study: on each
// demand read it learns the core's stride and, once confident, proposes
// the next PrefetchDegree lines. The paper finds DRAM-cache prefetching
// gains little — prefetch fills interfere with demands and consume
// bandwidth — and the reproduction's study shows the same.
type StridePrefetcher struct {
	degree int
	cores  []strideState

	Issued uint64 // proposals returned to the controller
}

type strideState struct {
	last       uint64
	stride     int64
	confidence int
	valid      bool
}

// NewStridePrefetcher builds a prefetcher proposing degree lines ahead.
func NewStridePrefetcher(cores, degree int) *StridePrefetcher {
	if degree < 1 {
		degree = 1
	}
	return &StridePrefetcher{degree: degree, cores: make([]strideState, cores)}
}

// Observe trains on a demand read and returns the lines to prefetch
// (empty until the core's stride is confident).
func (p *StridePrefetcher) Observe(core int, line uint64) []uint64 {
	if core < 0 || core >= len(p.cores) {
		return nil
	}
	st := &p.cores[core]
	if !st.valid {
		st.last, st.valid = line, true
		return nil
	}
	stride := int64(line) - int64(st.last)
	st.last = line
	if stride == 0 {
		return nil
	}
	if stride == st.stride {
		if st.confidence < 4 {
			st.confidence++
		}
	} else {
		st.stride = stride
		st.confidence = 0
		return nil
	}
	if st.confidence < 2 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	next := int64(line)
	for i := 0; i < p.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	p.Issued += uint64(len(out))
	return out
}
