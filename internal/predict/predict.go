// Package predict implements a MAP-I-style DRAM-cache hit/miss predictor
// (Qureshi & Loh, "Fundamental Latency Trade-off in Architecting DRAM
// Caches", MICRO'12), used for the paper's §V-D study. MAP-I indexes a
// table of saturating counters by instruction address; the synthetic
// workloads here carry no PCs, so the table is indexed by a hash of the
// originating core and the address region, which captures the same
// per-access-stream bias the instruction address proxies for.
package predict

// MAPI is the predictor: a table of 2-bit saturating counters.
// Counter >= 2 predicts hit.
type MAPI struct {
	counters []uint8
	mask     uint64

	predictions      uint64
	updates, correct uint64
}

// NewMAPI builds a predictor with the given table size (rounded up to a
// power of two; MAP-I uses 256 entries).
func NewMAPI(size int) *MAPI {
	n := 1
	for n < size {
		n <<= 1
	}
	c := make([]uint8, n)
	for i := range c {
		c[i] = 2 // weakly predict hit, as MAP-I initializes
	}
	return &MAPI{counters: c, mask: uint64(n - 1)}
}

// index hashes (core, region) into the table. Regions are 16 KiB so the
// counter tracks the stream touching that neighbourhood.
func (p *MAPI) index(core int, line uint64) uint64 {
	region := line >> 8
	h := region*0x9E3779B97F4A7C15 + uint64(core)*0x517CC1B727220A95
	h ^= h >> 29
	return h & p.mask
}

// Predict returns true when a DRAM-cache hit is predicted.
func (p *MAPI) Predict(core int, line uint64) bool {
	p.predictions++
	return p.counters[p.index(core, line)] >= 2
}

// Update trains the predictor with the actual outcome, scoring what the
// table would have predicted for this access.
func (p *MAPI) Update(core int, line uint64, hit bool) {
	i := p.index(core, line)
	p.updates++
	if (p.counters[i] >= 2) == hit {
		p.correct++
	}
	if hit {
		if p.counters[i] < 3 {
			p.counters[i]++
		}
	} else if p.counters[i] > 0 {
		p.counters[i]--
	}
}

// ResetAccuracy clears the accuracy accounting (updates, correct,
// predictions) while keeping the learned counter table — called at the
// warmup/measured boundary so reported accuracy covers only measured
// accesses, trained by a warmed table.
func (p *MAPI) ResetAccuracy() {
	p.predictions, p.updates, p.correct = 0, 0, 0
}

// Accuracy reports the fraction of trained accesses the table state
// predicted correctly.
func (p *MAPI) Accuracy() float64 {
	if p.updates == 0 {
		return 0
	}
	return float64(p.correct) / float64(p.updates)
}

// Predictions reports how many predictions were made.
func (p *MAPI) Predictions() uint64 { return p.predictions }
