package predict

import "testing"

func TestTableSizing(t *testing.T) {
	p := NewMAPI(200)
	if len(p.counters) != 256 {
		t.Errorf("table size = %d, want 256", len(p.counters))
	}
}

func TestInitiallyPredictsHit(t *testing.T) {
	p := NewMAPI(256)
	if !p.Predict(0, 12345) {
		t.Error("fresh MAP-I must weakly predict hit")
	}
	if p.Predictions() != 1 {
		t.Error("prediction not counted")
	}
}

func TestLearnsConsistentStream(t *testing.T) {
	p := NewMAPI(256)
	// Train one region to always miss.
	for i := 0; i < 10; i++ {
		p.Update(1, 1000, false)
	}
	if p.Predict(1, 1000) {
		t.Error("did not learn a consistent miss stream")
	}
	// Another (core, region) pair is independent with high probability.
	if !p.Predict(2, 999_999_999) {
		t.Error("unrelated stream polluted (likely index clash; adjust hash)")
	}
	// Retrains toward hits.
	for i := 0; i < 10; i++ {
		p.Update(1, 1000, true)
	}
	if !p.Predict(1, 1000) {
		t.Error("did not retrain to hits")
	}
}

func TestAccuracyTracking(t *testing.T) {
	p := NewMAPI(256)
	if p.Accuracy() != 0 {
		t.Error("accuracy before training nonzero")
	}
	for i := 0; i < 100; i++ {
		p.Update(0, 7, true) // initial state predicts hit: all correct
	}
	if p.Accuracy() != 1.0 {
		t.Errorf("accuracy = %v on consistent hit stream", p.Accuracy())
	}
	p2 := NewMAPI(256)
	for i := 0; i < 100; i++ {
		p2.Update(0, 7, false)
	}
	// Only the first update mispredicts (counter 2 predicts hit; it then
	// drops to 1, which already predicts miss).
	if got := p2.Accuracy(); got != 0.99 {
		t.Errorf("accuracy = %v, want 0.99", got)
	}
	// ResetAccuracy restarts the score but keeps the learned table: the
	// miss-trained counter still predicts miss, scored from zero.
	p2.ResetAccuracy()
	if p2.Accuracy() != 0 || p2.Predictions() != 0 {
		t.Errorf("after reset: accuracy=%v predictions=%d", p2.Accuracy(), p2.Predictions())
	}
	if p2.Predict(0, 7) {
		t.Error("reset dropped the learned table")
	}
	p2.Update(0, 7, false)
	if got := p2.Accuracy(); got != 1.0 {
		t.Errorf("post-reset accuracy = %v, want 1.0 (warmed table, fresh score)", got)
	}
}

func TestSaturation(t *testing.T) {
	p := NewMAPI(16)
	for i := 0; i < 100; i++ {
		p.Update(0, 0, true)
	}
	i := p.index(0, 0)
	if p.counters[i] != 3 {
		t.Errorf("counter = %d, want saturated 3", p.counters[i])
	}
	for i := 0; i < 100; i++ {
		p.Update(0, 0, false)
	}
	if p.counters[i] != 0 {
		t.Errorf("counter = %d, want 0", p.counters[i])
	}
}

func TestStridePrefetcherLearns(t *testing.T) {
	p := NewStridePrefetcher(8, 2)
	// Sequential stream: first access sets last, second sets stride,
	// next two build confidence, then proposals flow.
	var got []uint64
	for i := uint64(0); i < 8; i++ {
		got = p.Observe(0, 100+i*4)
	}
	if len(got) != 2 {
		t.Fatalf("proposals = %v, want 2", got)
	}
	if got[0] != 100+7*4+4 || got[1] != 100+7*4+8 {
		t.Errorf("proposals = %v", got)
	}
	if p.Issued == 0 {
		t.Error("issued not counted")
	}
}

func TestStridePrefetcherResetsOnStrideChange(t *testing.T) {
	p := NewStridePrefetcher(4, 1)
	for i := uint64(0); i < 6; i++ {
		p.Observe(1, i*2)
	}
	if out := p.Observe(1, 1000); len(out) != 0 {
		t.Errorf("stride break still proposed %v", out)
	}
	if out := p.Observe(1, 1001); len(out) != 0 {
		t.Errorf("confidence 0 proposed %v", out)
	}
}

func TestStridePrefetcherPerCoreIsolation(t *testing.T) {
	p := NewStridePrefetcher(4, 1)
	for i := uint64(0); i < 6; i++ {
		p.Observe(0, i*8)
	}
	// Core 1 is untrained.
	if out := p.Observe(1, 64); len(out) != 0 {
		t.Errorf("untrained core proposed %v", out)
	}
	if out := p.Observe(3+100, 0); out != nil { // out-of-range core
		t.Errorf("out-of-range core proposed %v", out)
	}
}

func TestStridePrefetcherRandomStreamQuiet(t *testing.T) {
	p := NewStridePrefetcher(1, 2)
	rngState := uint64(12345)
	proposals := 0
	for i := 0; i < 2000; i++ {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		proposals += len(p.Observe(0, rngState>>33))
	}
	if frac := float64(proposals) / 2000; frac > 0.05 {
		t.Errorf("random stream triggered %.2f proposals/access", frac)
	}
}

func TestRegionGranularity(t *testing.T) {
	p := NewMAPI(1 << 16)
	// Lines in the same 16 KiB region share a counter.
	for i := 0; i < 8; i++ {
		p.Update(0, 256*10, false)
	}
	if p.Predict(0, 256*10+100) {
		t.Error("same-region line not covered by trained counter")
	}
}
