package fault

import (
	"reflect"
	"testing"
)

// TestNilInjectorIsInert: the nil-check hook pattern — every method on a
// nil *Injector is safe and a disabled config builds nil.
func TestNilInjectorIsInert(t *testing.T) {
	if in := New(Config{}); in != nil {
		t.Fatal("zero config built a live injector")
	}
	if in := New(Config{Rate: 0, Seed: 42}); in != nil {
		t.Fatal("rate-0 config built a live injector")
	}
	var in *Injector
	if in.DataBeat() != None || in.TagRead() != None || in.FlushEntry() != None {
		t.Error("nil injector injected")
	}
	if in.HMPacket() {
		t.Error("nil injector injected an HM fault")
	}
	if in.RetryBudget() != 0 || in.RetireThreshold() != 0 {
		t.Error("nil injector reports a nonzero budget")
	}
	in.NoteRetry()
	in.NoteExhausted()
	in.NoteRetired()
	in.NoteBypass()
	in.NoteVictimLost()
	in.ResetCounters()
	if in.Counters() != (Counters{}) {
		t.Error("nil injector accumulated counters")
	}
}

func TestConfigDefaults(t *testing.T) {
	in := New(Config{Rate: 0.5})
	if in.RetryBudget() != 3 {
		t.Errorf("default retry budget = %d, want 3", in.RetryBudget())
	}
	if in.RetireThreshold() != 4 {
		t.Errorf("default retire threshold = %d, want 4", in.RetireThreshold())
	}
	if in.cfg.UncorrectableFrac != 1.0/8 {
		t.Errorf("default uncorrectable frac = %v, want 1/8", in.cfg.UncorrectableFrac)
	}
	// Negative values disable, not default.
	in = New(Config{Rate: 0.5, RetryBudget: -1, RetireThreshold: -1})
	if in.RetryBudget() != 0 {
		t.Errorf("negative retry budget = %d, want 0", in.RetryBudget())
	}
	if in.RetireThreshold() != 0 {
		t.Errorf("negative retire threshold = %d, want 0", in.RetireThreshold())
	}
}

// exercise drives every hook in a fixed mixed pattern and returns the
// resulting counters.
func exercise(in *Injector, n int) Counters {
	for i := 0; i < n; i++ {
		in.DataBeat()
		in.TagRead()
		in.HMPacket()
		in.FlushEntry()
	}
	return in.Counters()
}

// TestSameSeedSameStream: the acceptance criterion — a fixed seed yields
// bit-identical fault sequences, so two injectors with the same config
// produce identical counters.
func TestSameSeedSameStream(t *testing.T) {
	cfg := Config{Rate: 0.3, Seed: 12345}
	a := exercise(New(cfg), 5000)
	b := exercise(New(cfg), 5000)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different counters:\na: %+v\nb: %+v", a, b)
	}
	if a.Injected == 0 {
		t.Error("rate 0.3 over 20000 opportunities injected nothing")
	}
}

// TestCounterConsistency: every injected fault is classified exactly
// once, and the per-site counts partition Injected.
func TestCounterConsistency(t *testing.T) {
	c := exercise(New(Config{Rate: 0.4, Seed: 7}), 4000)
	if got := c.Corrected + c.Detected; got != c.Injected {
		t.Errorf("corrected %d + detected %d = %d, want injected %d",
			c.Corrected, c.Detected, got, c.Injected)
	}
	if got := c.DataFaults + c.TagFaults + c.HMFaults + c.FlushFaults; got != c.Injected {
		t.Errorf("site counts sum to %d, want injected %d", got, c.Injected)
	}
	for _, site := range []struct {
		name string
		n    uint64
	}{{"data", c.DataFaults}, {"tag", c.TagFaults}, {"hm", c.HMFaults}, {"flush", c.FlushFaults}} {
		if site.n == 0 {
			t.Errorf("no %s faults injected over 4000 rounds at rate 0.4", site.name)
		}
	}
	if c.Miscorrected > c.Detected {
		t.Errorf("miscorrected %d exceeds detected %d", c.Miscorrected, c.Detected)
	}
}

// TestUncorrectableFracExtremes: a vanishing fraction yields only
// corrected faults; fraction 1 yields only detected ones (SECDED double
// flips and RS double-symbol errors are never silently healed).
func TestUncorrectableFracExtremes(t *testing.T) {
	// HMPacket always detects, so drive only the ECC-protected sites.
	in := New(Config{Rate: 1, Seed: 3, UncorrectableFrac: 1e-12})
	for i := 0; i < 500; i++ {
		in.DataBeat()
		in.TagRead()
		in.FlushEntry()
	}
	if c := in.Counters(); c.Detected != 0 || c.Corrected != c.Injected || c.Injected != 1500 {
		t.Errorf("frac~0 without HM: %+v, want 1500 injected all corrected", c)
	}
	in = New(Config{Rate: 1, Seed: 3, UncorrectableFrac: 1})
	for i := 0; i < 500; i++ {
		in.DataBeat()
		in.TagRead()
		in.FlushEntry()
	}
	if c := in.Counters(); c.Corrected != 0 || c.Detected != c.Injected || c.Injected != 1500 {
		t.Errorf("frac=1: %+v, want 1500 injected all detected", c)
	}
}

func TestHMPacketAlwaysDetects(t *testing.T) {
	in := New(Config{Rate: 1, Seed: 9})
	for i := 0; i < 100; i++ {
		if !in.HMPacket() {
			t.Fatal("rate-1 HMPacket did not inject")
		}
	}
	c := in.Counters()
	if c.HMFaults != 100 || c.Detected != 100 || c.Corrected != 0 {
		t.Errorf("HM counters %+v, want 100 injected/detected", c)
	}
}

// TestResetCountersKeepsStream: ResetCounters zeroes accounting but the
// PRNG keeps advancing — the post-reset stream differs from a fresh one
// (the warmup-boundary semantics the controller relies on).
func TestResetCountersKeepsStream(t *testing.T) {
	cfg := Config{Rate: 0.5, Seed: 11}
	in := New(cfg)
	exercise(in, 1000)
	in.ResetCounters()
	if in.Counters() != (Counters{}) {
		t.Fatal("counters survive reset")
	}
	after := exercise(in, 1000)

	// A fresh injector replaying rounds 0..999 must match the original's
	// first epoch, not the post-reset epoch (streams are positional).
	fresh := exercise(New(cfg), 1000)
	whole := exercise(New(cfg), 2000)
	if got := fresh.Injected + after.Injected; got != whole.Injected {
		t.Errorf("epoch injections %d + %d != whole-run %d",
			fresh.Injected, after.Injected, whole.Injected)
	}
}

func TestOutcomeString(t *testing.T) {
	for _, tc := range []struct {
		o    Outcome
		want string
	}{{None, "none"}, {Corrected, "corrected"}, {Detected, "detected"}} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.o, got, tc.want)
		}
	}
}
