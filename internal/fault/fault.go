// Package fault is the seeded, deterministic fault-injection subsystem.
// An Injector is attached to the DRAM-cache controller the same way an
// obs.Observer is: a nil pointer disables it, every hook method is
// nil-safe, and a disabled injector costs exactly one branch per site —
// zero-fault runs are bit-identical to runs without the package.
//
// Each hook models one physical fault site of the tag-enhanced memory
// system and decides the outcome by actually exercising the codec that
// protects the site (internal/ecc), not by sampling an abstract
// corrected/detected split:
//
//   - DataBeat: a transient bit flip on a DQ data beat, protected by
//     SECDED(72,64). Single flips are corrected in flight; double flips
//     are detected and force a controller retry.
//   - TagRead: corruption of a tag-mat read, protected by RS(6,4) over
//     GF(16). Single-symbol errors are corrected; two-symbol errors are
//     detected (or, unavoidably for a distance-3 code, miscorrected —
//     counted separately and treated as detected, since the controller's
//     address cross-check catches the mismatch).
//   - HMPacket: a parity error on a Hit-Miss bus result packet. Parity
//     always detects the single-beat flip; the packet is re-sent.
//   - FlushEntry: corruption of a buffered flush/victim entry, protected
//     like data by SECDED.
//
// The PRNG is splitmix64 seeded from Config.Seed, so a fixed seed gives
// bit-identical fault sequences (and therefore identical counters and
// timing) across runs.
package fault

import (
	"fmt"

	"tdram/internal/ecc"
)

// Config parameterizes an Injector. The zero value disables injection.
type Config struct {
	// Rate is the per-opportunity injection probability applied at every
	// fault site (each data burst, tag-mat read, HM packet and flush
	// drain is one opportunity). Zero disables the injector.
	Rate float64
	// Seed seeds the injector's deterministic PRNG.
	Seed uint64
	// UncorrectableFrac is the fraction of injected faults that exceed
	// the protecting code's correction capability (double bit flips,
	// two-symbol tag errors). Zero selects the default of 1/8.
	UncorrectableFrac float64
	// RetryBudget bounds how often the controller reissues an access
	// whose fault was detected but not corrected. Zero selects the
	// default of 3; negative disables retries.
	RetryBudget int
	// RetireThreshold is the number of retry-exhausted (uncorrectable)
	// errors a cache set tolerates before it is retired: subsequent
	// accesses to a retired set bypass the cache to backing memory.
	// Zero selects the default of 4; negative disables retirement.
	RetireThreshold int
}

// Enabled reports whether this configuration injects any faults.
func (c Config) Enabled() bool { return c.Rate > 0 }

// Outcome classifies one injection opportunity.
type Outcome uint8

const (
	// None: no fault was injected at this opportunity.
	None Outcome = iota
	// Corrected: a fault was injected and the protecting code corrected
	// it in flight; no timing impact.
	Corrected
	// Detected: a fault was injected and detected but not corrected;
	// the controller must retry (or give up and degrade).
	Detected
)

func (o Outcome) String() string {
	switch o {
	case Corrected:
		return "corrected"
	case Detected:
		return "detected"
	}
	return "none"
}

// Counters aggregates injection and recovery activity. It is a plain
// comparable struct so it can be embedded in dramcache.Stats and
// compared with reflect.DeepEqual in determinism tests.
type Counters struct {
	// Injected counts every fault injected, over all sites.
	Injected uint64
	// Per-site injection counts (they sum to Injected).
	DataFaults, TagFaults, HMFaults, FlushFaults uint64

	// Corrected counts faults the protecting code fixed in flight.
	Corrected uint64
	// Detected counts faults flagged but not corrected, including HM
	// parity errors and tag miscorrections.
	Detected uint64
	// Miscorrected counts two-symbol tag errors the RS decoder silently
	// "corrected" to a wrong word (possible for a distance-3 code); the
	// controller's address cross-check converts them to detections.
	Miscorrected uint64

	// Retries counts controller reissues (accesses, HM re-sends and
	// flush-drain reattempts) triggered by detected faults.
	Retries uint64
	// Exhausted counts accesses that consumed their whole retry budget
	// and proceeded with an uncorrectable error recorded.
	Exhausted uint64
	// SetsRetired counts cache sets retired for crossing the
	// uncorrectable-error threshold.
	SetsRetired uint64
	// Bypasses counts demands routed straight to backing memory because
	// their set was retired.
	Bypasses uint64
	// VictimsLost counts flush-buffer entries dropped after exhausting
	// their drain retries (the victim's writeback is lost).
	VictimsLost uint64
}

// String renders the counters compactly for diagnostic dumps (the
// flight recorder's fault context, watchdog reports).
func (c Counters) String() string {
	return fmt.Sprintf(
		"injected=%d (data=%d tag=%d hm=%d flush=%d) corrected=%d detected=%d miscorrected=%d retries=%d exhausted=%d retired=%d bypasses=%d victims-lost=%d",
		c.Injected, c.DataFaults, c.TagFaults, c.HMFaults, c.FlushFaults,
		c.Corrected, c.Detected, c.Miscorrected,
		c.Retries, c.Exhausted, c.SetsRetired, c.Bypasses, c.VictimsLost)
}

// Injector injects faults. A nil *Injector is valid and injects nothing.
type Injector struct {
	cfg Config
	rng uint64
	ctr Counters
}

// New builds an injector, applying Config defaults. It returns nil for a
// disabled configuration so callers keep the nil-check hook pattern.
func New(cfg Config) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.UncorrectableFrac == 0 {
		cfg.UncorrectableFrac = 1.0 / 8
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 3
	}
	if cfg.RetireThreshold == 0 {
		cfg.RetireThreshold = 4
	}
	return &Injector{cfg: cfg, rng: cfg.Seed}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.rng += 0x9E3779B97F4A7C15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D649BB133111EB
	return z ^ (z >> 31)
}

// rollP draws a uniform [0,1) variate and compares it against p.
func (in *Injector) rollP(p float64) bool {
	return float64(in.next()>>11)/(1<<53) < p
}

// roll decides whether this opportunity injects a fault.
func (in *Injector) roll() bool { return in.rollP(in.cfg.Rate) }

// uncorrectable decides whether an injected fault exceeds the code.
func (in *Injector) uncorrectable() bool { return in.rollP(in.cfg.UncorrectableFrac) }

// RetryBudget reports the per-access retry bound (0 when disabled).
func (in *Injector) RetryBudget() int {
	if in == nil || in.cfg.RetryBudget < 0 {
		return 0
	}
	return in.cfg.RetryBudget
}

// RetireThreshold reports the per-set uncorrectable-error bound before
// retirement (0 disables retirement).
func (in *Injector) RetireThreshold() int {
	if in == nil || in.cfg.RetireThreshold < 0 {
		return 0
	}
	return in.cfg.RetireThreshold
}

// DataBeat is the DQ data-burst fault site (SECDED-protected).
func (in *Injector) DataBeat() Outcome {
	if in == nil || !in.roll() {
		return None
	}
	in.ctr.DataFaults++
	return in.secdedFault()
}

// FlushEntry is the flush/victim-buffer entry fault site
// (SECDED-protected like data).
func (in *Injector) FlushEntry() Outcome {
	if in == nil || !in.roll() {
		return None
	}
	in.ctr.FlushFaults++
	return in.secdedFault()
}

// secdedFault encodes a pseudorandom word, flips one or two data bits,
// and classifies by what the SECDED decoder actually does.
func (in *Injector) secdedFault() Outcome {
	in.ctr.Injected++
	data := in.next()
	cw := ecc.EncodeData(data)
	if in.uncorrectable() {
		// Two distinct bit flips: SECDED detects, never corrects.
		i := int(in.next() % 64)
		j := int(in.next() % 63)
		if j >= i {
			j++
		}
		cw.FlipDataBit(i)
		cw.FlipDataBit(j)
		got, corrected, err := ecc.DecodeData(cw)
		if err == nil && (!corrected || got == data) {
			// Would be a codec bug; ecc's tests forbid it. Stay safe.
			in.ctr.Miscorrected++
		}
		in.ctr.Detected++
		return Detected
	}
	cw.FlipDataBit(int(in.next() % 64))
	got, corrected, err := ecc.DecodeData(cw)
	if err != nil || !corrected || got != data {
		in.ctr.Detected++
		return Detected
	}
	in.ctr.Corrected++
	return Corrected
}

// TagRead is the tag-mat read fault site (RS(6,4)-protected).
func (in *Injector) TagRead() Outcome {
	if in == nil || !in.roll() {
		return None
	}
	in.ctr.Injected++
	in.ctr.TagFaults++
	word := uint16(in.next())
	clean := ecc.EncodeTag(word)
	cw := clean
	if in.uncorrectable() {
		// Two corrupted symbols exceed the single-symbol guarantee: the
		// decoder flags the codeword or miscorrects it to a wrong word.
		p1 := int(in.next() % ecc.TagCodewordSymbols)
		p2 := int(in.next() % (ecc.TagCodewordSymbols - 1))
		if p2 >= p1 {
			p2++
		}
		cw[p1] ^= byte(in.next()%15) + 1
		cw[p2] ^= byte(in.next()%15) + 1
		got, corrected, err := ecc.DecodeTag(cw)
		if err == nil && corrected && got != word {
			// Silent miscorrection: the controller's cross-check of the
			// decoded tag against the request address exposes it.
			in.ctr.Miscorrected++
		}
		in.ctr.Detected++
		return Detected
	}
	cw[int(in.next()%ecc.TagCodewordSymbols)] ^= byte(in.next()%15) + 1
	got, corrected, err := ecc.DecodeTag(cw)
	if err != nil || !corrected || got != word {
		in.ctr.Detected++
		return Detected
	}
	in.ctr.Corrected++
	return Corrected
}

// HMPacket is the Hit-Miss bus result-packet fault site. Per-packet
// parity always detects the single-beat flip; the packet is re-sent, so
// the caller models a re-transfer delay rather than an access retry.
// It reports whether a fault was injected.
func (in *Injector) HMPacket() bool {
	if in == nil || !in.roll() {
		return false
	}
	in.ctr.Injected++
	in.ctr.HMFaults++
	in.ctr.Detected++
	return true
}

// NoteRetry records one controller retry caused by a detected fault.
func (in *Injector) NoteRetry() {
	if in != nil {
		in.ctr.Retries++
	}
}

// NoteExhausted records an access that ran out of retry budget.
func (in *Injector) NoteExhausted() {
	if in != nil {
		in.ctr.Exhausted++
	}
}

// NoteRetired records a cache-set retirement.
func (in *Injector) NoteRetired() {
	if in != nil {
		in.ctr.SetsRetired++
	}
}

// NoteBypass records a demand bypassed to backing memory because its
// set was retired.
func (in *Injector) NoteBypass() {
	if in != nil {
		in.ctr.Bypasses++
	}
}

// NoteVictimLost records a flush entry dropped after exhausting retries.
func (in *Injector) NoteVictimLost() {
	if in != nil {
		in.ctr.VictimsLost++
	}
}

// Counters returns a snapshot of the accumulated counters.
func (in *Injector) Counters() Counters {
	if in == nil {
		return Counters{}
	}
	return in.ctr
}

// ResetCounters zeroes the counters without touching the PRNG stream
// (warmup faults stay injected; only their accounting is discarded).
func (in *Injector) ResetCounters() {
	if in != nil {
		in.ctr = Counters{}
	}
}
