// Package mem defines the memory-system primitives shared by every model
// in the repository: requests, access kinds, cache-access outcomes, and
// the DRAM address mapping.
package mem

import (
	"fmt"

	"tdram/internal/sim"
)

// LineSize is the cache-line (and memory access) granularity in bytes.
// CPUs from Intel and AMD operate on 64 B lines; the modeled devices pair
// banks to provide 64 B access granularity (paper §III-C1).
const LineSize = 64

// LineShift is log2(LineSize).
const LineShift = 6

// Kind distinguishes reads from writes at the memory-demand level.
type Kind uint8

const (
	Read Kind = iota
	Write
)

func (k Kind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Request is one 64 B memory demand travelling from the LLC towards the
// DRAM cache and, on a miss, the backing store.
type Request struct {
	ID   uint64
	Addr uint64 // byte address; always line-aligned by the time it reaches a controller
	Kind Kind
	Core int // originating core, used by stats and predictors

	// Arrive is set by each controller when the request enters its
	// queues, and is the reference point for queueing-delay statistics.
	Arrive sim.Tick

	// TagDone is set when the hit/miss result for this demand is known at
	// the controller (the paper's "tag check latency" endpoint).
	TagDone sim.Tick

	// OnDone, when non-nil, is invoked exactly once when the demand is
	// fully serviced (data returned for reads; write accepted and ordered
	// for writes).
	OnDone func(*Request)

	// J, when non-nil, is the request's journey ledger: per-phase time
	// attribution recorded by the controller and finished (classified,
	// aggregated, pooled) by the observer. Nil whenever journey tracking
	// is disabled — every touch point nil-checks it, hookguard-enforced.
	J *Journey

	done bool
}

// Line reports the line address (byte address >> LineShift).
func (r *Request) Line() uint64 { return r.Addr >> LineShift }

// Complete invokes OnDone exactly once. Further calls panic: a demand
// being completed twice means a controller model has a double-response
// bug, which must not be masked.
func (r *Request) Complete() {
	if r.done {
		panic(fmt.Sprintf("mem: request %d completed twice", r.ID))
	}
	r.done = true
	if r.OnDone != nil {
		r.OnDone(r)
	}
}

// Completed reports whether Complete has run.
func (r *Request) Completed() bool { return r.done }

// Outcome classifies a DRAM-cache access, following the paper's Table II.
type Outcome uint8

const (
	ReadHit       Outcome = iota
	ReadMissClean         // includes reads to invalid lines
	ReadMissDirty
	WriteHit
	WriteMissClean // includes writes to invalid lines
	WriteMissDirty
	numOutcomes
)

// NumOutcomes is the number of distinct Outcome values.
const NumOutcomes = int(numOutcomes)

func (o Outcome) String() string {
	switch o {
	case ReadHit:
		return "read-hit"
	case ReadMissClean:
		return "read-miss-clean"
	case ReadMissDirty:
		return "read-miss-dirty"
	case WriteHit:
		return "write-hit"
	case WriteMissClean:
		return "write-miss-clean"
	case WriteMissDirty:
		return "write-miss-dirty"
	}
	return fmt.Sprintf("outcome(%d)", uint8(o))
}

// IsRead reports whether the outcome belongs to a read demand.
func (o Outcome) IsRead() bool { return o <= ReadMissDirty }

// IsHit reports whether the outcome is a cache hit.
func (o Outcome) IsHit() bool { return o == ReadHit || o == WriteHit }

// IsMissDirty reports whether the outcome displaces dirty data.
func (o Outcome) IsMissDirty() bool { return o == ReadMissDirty || o == WriteMissDirty }

// ClassifyOutcome maps (kind, hit, dirty-victim) to an Outcome.
func ClassifyOutcome(kind Kind, hit, victimDirty bool) Outcome {
	switch {
	case kind == Read && hit:
		return ReadHit
	case kind == Read && victimDirty:
		return ReadMissDirty
	case kind == Read:
		return ReadMissClean
	case hit:
		return WriteHit
	case victimDirty:
		return WriteMissDirty
	default:
		return WriteMissClean
	}
}
