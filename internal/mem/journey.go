package mem

import (
	"fmt"

	"tdram/internal/sim"
)

// Phase identifies one segment of a request's journey through the
// memory system. Phases are not mutually exclusive in wall-clock terms
// (a probe can overlap a queue wait); each accumulates its own span so
// a breakdown table shows where the nanoseconds went, not a partition
// of the end-to-end latency.
type Phase uint8

const (
	// PhaseCoreQueue: from core issue until the controller accepts the
	// demand into a channel queue (includes conflict-wait and retried
	// Enqueue attempts under backpressure).
	PhaseCoreQueue Phase = iota
	// PhaseQueueWait: controller read/write-queue residency until the
	// transaction first issues to the device.
	PhaseQueueWait
	// PhaseTagCheck: command start until the tag result is known at the
	// device (tag mat access; the full burst for tags-with-data designs).
	PhaseTagCheck
	// PhaseHMBus: hit/miss-result return on TDRAM's HM bus, including
	// parity retransmits.
	PhaseHMBus
	// PhaseDQBurst: the demand's own data burst on the DQ pins.
	PhaseDQBurst
	// PhaseMissFetch: DDR5 backing-store fetch on the miss path
	// (includes waiting for a free backing slot).
	PhaseMissFetch
	// PhaseFill: waiting on an in-flight fill of the same line
	// (secondary-miss coalescing).
	PhaseFill
	// PhaseFlushStall: write blocked because the flush buffer is full.
	PhaseFlushStall
	// PhaseRetryBackoff: fault-retry backoff after a detected ECC error.
	PhaseRetryBackoff

	numPhases
)

// NumPhases is the number of distinct journey phases.
const NumPhases = int(numPhases)

func (p Phase) String() string {
	switch p {
	case PhaseCoreQueue:
		return "core-queue"
	case PhaseQueueWait:
		return "queue-wait"
	case PhaseTagCheck:
		return "tag-check"
	case PhaseHMBus:
		return "hm-bus"
	case PhaseDQBurst:
		return "dq-burst"
	case PhaseMissFetch:
		return "miss-fetch"
	case PhaseFill:
		return "fill-wait"
	case PhaseFlushStall:
		return "flush-stall"
	case PhaseRetryBackoff:
		return "retry-backoff"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// JourneyClass buckets completed journeys for the latency histograms.
type JourneyClass uint8

const (
	ClassReadHit JourneyClass = iota
	ClassCleanMiss
	ClassDirtyMiss
	ClassWrite
	ClassBypass
	ClassRetried

	numJourneyClasses
)

// NumJourneyClasses is the number of distinct JourneyClass values.
const NumJourneyClasses = int(numJourneyClasses)

func (c JourneyClass) String() string {
	switch c {
	case ClassReadHit:
		return "read-hit"
	case ClassCleanMiss:
		return "clean-miss"
	case ClassDirtyMiss:
		return "dirty-miss"
	case ClassWrite:
		return "write"
	case ClassBypass:
		return "bypass"
	case ClassRetried:
		return "retried"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Journey is one request's phase ledger. Journeys are pooled by the
// observer (freelist discipline, like dramcache's transaction records):
// the hot path never allocates. All methods are safe on a nil receiver,
// so instrumentation sites can run unguarded once the field itself has
// been nil-checked.
type Journey struct {
	next *Journey // freelist link, owned by the observer pool

	ID   uint64
	Line uint64
	Core int

	Start, End sim.Tick

	// Phases accumulates the total span attributed to each phase; mark
	// holds the entry tick of currently-open phases, entered the bitmask
	// of which phases are open.
	Phases  [NumPhases]sim.Tick
	mark    [NumPhases]sim.Tick
	entered uint16

	Outcome Outcome // valid only when the controller resolved one
	Write   bool
	Bypass  bool
	Retried bool
}

// Enter opens a phase at now. Re-entering an open phase is a no-op, so
// retried attempts don't reset the original entry point.
func (j *Journey) Enter(p Phase, now sim.Tick) {
	if j == nil || j.entered&(1<<p) != 0 {
		return
	}
	j.entered |= 1 << p
	j.mark[p] = now
}

// Exit closes a phase at now, accumulating its span. Exiting a phase
// that is not open is a no-op.
func (j *Journey) Exit(p Phase, now sim.Tick) {
	if j == nil || j.entered&(1<<p) == 0 {
		return
	}
	j.entered &^= 1 << p
	if d := now - j.mark[p]; d > 0 {
		j.Phases[p] += d
	}
}

// Span directly attributes a duration to a phase (for spans whose
// endpoints a single event already knows). Negative durations clamp.
func (j *Journey) Span(p Phase, d sim.Tick) {
	if j == nil || d <= 0 {
		return
	}
	j.Phases[p] += d
}

// MarkRetried flags the journey as having taken a fault retry.
func (j *Journey) MarkRetried() {
	if j != nil {
		j.Retried = true
	}
}

// MarkBypass flags the journey as having bypassed the cache.
func (j *Journey) MarkBypass() {
	if j != nil {
		j.Bypass = true
	}
}

// MarkWrite flags the journey as a write demand.
func (j *Journey) MarkWrite() {
	if j != nil {
		j.Write = true
	}
}

// Note records the controller's resolved outcome.
func (j *Journey) Note(o Outcome) {
	if j != nil {
		j.Outcome = o
	}
}

// Class reports the journey's histogram class. Retried and bypass
// journeys class as such regardless of outcome (their latency shape is
// what makes them interesting); then writes; then reads by outcome.
func (j *Journey) Class() JourneyClass {
	switch {
	case j.Retried:
		return ClassRetried
	case j.Bypass:
		return ClassBypass
	case j.Write:
		return ClassWrite
	case j.Outcome == ReadHit:
		return ClassReadHit
	case j.Outcome == ReadMissDirty:
		return ClassDirtyMiss
	default:
		return ClassCleanMiss
	}
}

// Total reports the end-to-end latency.
func (j *Journey) Total() sim.Tick { return j.End - j.Start }

// Reset clears the ledger for reuse, preserving the freelist link.
func (j *Journey) Reset() {
	next := j.next
	*j = Journey{}
	j.next = next
}

// JourneyPool recycles ledgers through an intrusive freelist; once
// warmed to the in-flight high-water mark, Get/Put allocate nothing.
type JourneyPool struct {
	free *Journey
}

// Get pops a zeroed ledger (allocating only when the pool is empty).
func (p *JourneyPool) Get() *Journey {
	j := p.free
	if j == nil {
		return &Journey{}
	}
	p.free = j.next
	j.Reset()
	return j
}

// Put returns a ledger to the pool. The caller must have dropped every
// other reference: the ledger is recycled on the next Get.
func (p *JourneyPool) Put(j *Journey) {
	if j == nil {
		return
	}
	j.next = p.free
	p.free = j
}
