package mem

import "testing"

func TestJourneyNilReceiverSafe(t *testing.T) {
	var j *Journey
	j.Enter(PhaseTagCheck, 5)
	j.Exit(PhaseTagCheck, 10)
	j.Span(PhaseDQBurst, 3)
	j.MarkRetried()
	j.MarkBypass()
	j.MarkWrite()
	j.Note(ReadHit)
}

func TestJourneyEnterExitAccumulates(t *testing.T) {
	j := &Journey{}
	j.Enter(PhaseQueueWait, 10)
	j.Enter(PhaseQueueWait, 50) // re-enter: no-op, keeps the original mark
	j.Exit(PhaseQueueWait, 30)
	if j.Phases[PhaseQueueWait] != 20 {
		t.Errorf("span = %v, want 20 (re-enter must not reset the mark)", j.Phases[PhaseQueueWait])
	}
	j.Exit(PhaseQueueWait, 99) // exit while closed: no-op
	if j.Phases[PhaseQueueWait] != 20 {
		t.Errorf("closed exit accumulated: %v", j.Phases[PhaseQueueWait])
	}
	j.Enter(PhaseQueueWait, 100)
	j.Exit(PhaseQueueWait, 140)
	if j.Phases[PhaseQueueWait] != 60 {
		t.Errorf("second open/close span = %v, want 60", j.Phases[PhaseQueueWait])
	}
	// A backdated exit must not subtract.
	j.Enter(PhaseFill, 100)
	j.Exit(PhaseFill, 90)
	if j.Phases[PhaseFill] != 0 {
		t.Errorf("negative span accumulated: %v", j.Phases[PhaseFill])
	}
}

func TestJourneySpanClampsNegative(t *testing.T) {
	j := &Journey{}
	j.Span(PhaseHMBus, -5)
	j.Span(PhaseHMBus, 0)
	if j.Phases[PhaseHMBus] != 0 {
		t.Errorf("non-positive span accumulated: %v", j.Phases[PhaseHMBus])
	}
	j.Span(PhaseHMBus, 7)
	if j.Phases[PhaseHMBus] != 7 {
		t.Errorf("span = %v, want 7", j.Phases[PhaseHMBus])
	}
}

func TestJourneyClassPrecedence(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Journey)
		want JourneyClass
	}{
		// The zero Outcome is ReadHit, so read-path instrumentation must
		// Note() an outcome on every non-hit journey (the controller does
		// at tag resolution and conflict-buffer admission).
		{"zero value is read hit", func(j *Journey) {}, ClassReadHit},
		{"clean miss", func(j *Journey) { j.Note(ReadMissClean) }, ClassCleanMiss},
		{"dirty miss", func(j *Journey) { j.Note(ReadMissDirty) }, ClassDirtyMiss},
		{"write", func(j *Journey) { j.MarkWrite(); j.Note(WriteHit) }, ClassWrite},
		{"bypass beats write", func(j *Journey) { j.MarkWrite(); j.MarkBypass() }, ClassBypass},
		{"retried beats all", func(j *Journey) { j.MarkWrite(); j.MarkBypass(); j.MarkRetried() }, ClassRetried},
	}
	for _, tc := range cases {
		j := &Journey{}
		tc.mut(j)
		if got := j.Class(); got != tc.want {
			t.Errorf("%s: Class() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJourneyPoolReuse(t *testing.T) {
	var p JourneyPool
	j := p.Get()
	j.ID = 7
	j.MarkRetried()
	j.Enter(PhaseTagCheck, 10)
	p.Put(j)
	j2 := p.Get()
	if j2 != j {
		t.Error("pool did not recycle the freed ledger")
	}
	if j2.ID != 0 || j2.Retried || j2.Phases[PhaseTagCheck] != 0 {
		t.Errorf("recycled ledger not reset: %+v", j2)
	}
	// Exit on the recycled ledger must not see the old open phase.
	j2.Exit(PhaseTagCheck, 99)
	if j2.Phases[PhaseTagCheck] != 0 {
		t.Errorf("stale entered bit survived reset: %v", j2.Phases[PhaseTagCheck])
	}
	p.Put(nil) // nil-safe
	if got := p.Get(); got != j2 && got == nil {
		t.Error("Get after Put(nil) returned nil")
	}
}
