package mem

import "fmt"

// AddrMap decodes line addresses into DRAM coordinates using the paper's
// RoCoRaBaCh interleaving (Table III): reading the field order from the
// least-significant line-address bits upward — channel, bank, rank,
// column, row. Single-rank devices are modeled, so the rank field is
// omitted (width zero).
type AddrMap struct {
	Channels int // independent channels on the device
	Banks    int // logical banks per channel (bank pairs count once, §III-C1)
	Columns  int // 64 B columns per row
	Rows     int // rows per bank
}

// Coord is a fully decoded DRAM location.
type Coord struct {
	Channel int
	Bank    int
	Column  int
	Row     int
}

// Validate checks all dimensions are positive powers of two, which the
// decode relies on only for addressing density (modulo arithmetic is used,
// so non-powers also work); it still rejects non-positive sizes.
func (m AddrMap) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{{"channels", m.Channels}, {"banks", m.Banks}, {"columns", m.Columns}, {"rows", m.Rows}} {
		if d.v <= 0 {
			return fmt.Errorf("mem: addrmap %s = %d, want > 0", d.name, d.v)
		}
	}
	return nil
}

// Lines reports the total number of 64 B lines the mapped device holds.
func (m AddrMap) Lines() uint64 {
	return uint64(m.Channels) * uint64(m.Banks) * uint64(m.Columns) * uint64(m.Rows)
}

// Bytes reports the mapped capacity in bytes.
func (m AddrMap) Bytes() uint64 { return m.Lines() * LineSize }

// Decode maps a line address to its coordinates. Line addresses beyond the
// device capacity wrap (the cache indexes modulo capacity anyway).
func (m AddrMap) Decode(line uint64) Coord {
	var c Coord
	c.Channel = int(line % uint64(m.Channels))
	line /= uint64(m.Channels)
	c.Bank = int(line % uint64(m.Banks))
	line /= uint64(m.Banks)
	c.Column = int(line % uint64(m.Columns))
	line /= uint64(m.Columns)
	c.Row = int(line % uint64(m.Rows))
	return c
}

// Encode is the inverse of Decode for in-range coordinates.
func (m AddrMap) Encode(c Coord) uint64 {
	line := uint64(c.Row)
	line = line*uint64(m.Columns) + uint64(c.Column)
	line = line*uint64(m.Banks) + uint64(c.Bank)
	line = line*uint64(m.Channels) + uint64(c.Channel)
	return line
}
