package mem

import (
	"testing"
	"testing/quick"
)

func TestRequestLine(t *testing.T) {
	r := Request{Addr: 0x1234_0000 + 128}
	if r.Line() != (0x1234_0000+128)/64 {
		t.Errorf("Line = %d", r.Line())
	}
}

func TestCompleteOnce(t *testing.T) {
	n := 0
	r := &Request{OnDone: func(*Request) { n++ }}
	r.Complete()
	if n != 1 || !r.Completed() {
		t.Fatalf("n=%d completed=%v", n, r.Completed())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Complete did not panic")
		}
	}()
	r.Complete()
}

func TestCompleteNilCallback(t *testing.T) {
	r := &Request{}
	r.Complete() // must not panic
	if !r.Completed() {
		t.Error("Completed = false")
	}
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		kind        Kind
		hit, dirty  bool
		want        Outcome
		read, isHit bool
	}{
		{Read, true, false, ReadHit, true, true},
		{Read, true, true, ReadHit, true, true}, // hit to dirty is still a read hit
		{Read, false, false, ReadMissClean, true, false},
		{Read, false, true, ReadMissDirty, true, false},
		{Write, true, false, WriteHit, false, true},
		{Write, true, true, WriteHit, false, true},
		{Write, false, false, WriteMissClean, false, false},
		{Write, false, true, WriteMissDirty, false, false},
	}
	for _, c := range cases {
		got := ClassifyOutcome(c.kind, c.hit, c.dirty)
		if got != c.want {
			t.Errorf("Classify(%v,%v,%v) = %v, want %v", c.kind, c.hit, c.dirty, got, c.want)
		}
		if got.IsRead() != c.read {
			t.Errorf("%v.IsRead() = %v", got, got.IsRead())
		}
		if got.IsHit() != c.isHit {
			t.Errorf("%v.IsHit() = %v", got, got.IsHit())
		}
	}
	if !ReadMissDirty.IsMissDirty() || !WriteMissDirty.IsMissDirty() || ReadMissClean.IsMissDirty() {
		t.Error("IsMissDirty misclassifies")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for o := ReadHit; o < Outcome(NumOutcomes); o++ {
		if o.String() == "" {
			t.Errorf("empty string for %d", o)
		}
	}
	if Kind(Read).String() != "read" || Kind(Write).String() != "write" {
		t.Error("Kind strings wrong")
	}
}

func testMap() AddrMap { return AddrMap{Channels: 8, Banks: 16, Columns: 32, Rows: 64} }

func TestAddrMapValidate(t *testing.T) {
	if err := testMap().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testMap()
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rows validated")
	}
}

func TestAddrMapSizes(t *testing.T) {
	m := testMap()
	wantLines := uint64(8 * 16 * 32 * 64)
	if m.Lines() != wantLines {
		t.Errorf("Lines = %d, want %d", m.Lines(), wantLines)
	}
	if m.Bytes() != wantLines*64 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
}

func TestAddrMapChannelInterleave(t *testing.T) {
	// Consecutive lines must hit consecutive channels (Ch is the
	// least-significant field of RoCoRaBaCh).
	m := testMap()
	for i := uint64(0); i < 16; i++ {
		if got := m.Decode(i).Channel; got != int(i%8) {
			t.Errorf("line %d channel = %d, want %d", i, got, i%8)
		}
	}
}

func TestAddrMapRoundTrip(t *testing.T) {
	m := testMap()
	f := func(line uint64) bool {
		line %= m.Lines()
		c := m.Decode(line)
		if c.Channel < 0 || c.Channel >= m.Channels || c.Bank < 0 || c.Bank >= m.Banks ||
			c.Column < 0 || c.Column >= m.Columns || c.Row < 0 || c.Row >= m.Rows {
			return false
		}
		return m.Encode(c) == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAddrMapBijective(t *testing.T) {
	// Small exhaustive check: no two in-range lines decode identically.
	m := AddrMap{Channels: 2, Banks: 4, Columns: 4, Rows: 4}
	seen := map[Coord]uint64{}
	for line := uint64(0); line < m.Lines(); line++ {
		c := m.Decode(line)
		if prev, dup := seen[c]; dup {
			t.Fatalf("lines %d and %d both decode to %+v", prev, line, c)
		}
		seen[c] = line
	}
}
