package system

import (
	"errors"
	"fmt"

	"tdram/internal/cache"
	"tdram/internal/dramcache"
	"tdram/internal/workload"
)

// This file implements the shared-warmup fork. The prewarm phase is
// functional — zero simulated time, no events, no device state — and its
// evolution (workload stream positions, SRAM hierarchy content, DRAM
// cache content) depends only on the workload, seed, core count, and the
// cache geometries, never on the design's timing protocol: every design
// sees the identical access sequence and applies the identical
// insert-on-miss transition. A WarmupImage captures that post-prewarm
// state once per workload; each (design, workload) cell then installs a
// deep copy instead of replaying the prewarm pass, and runs its timed
// warmup + measured phases from there. Because the fork point precedes
// the first timed event, a forked cell's event sequence — and hence its
// Result — is bit-identical to a full-replay cell's.

// ErrIncompatibleImage reports that a WarmupImage cannot seed the given
// configuration (different workload, seed, topology, or cache geometry).
// Callers fall back to a full prewarm replay.
var ErrIncompatibleImage = errors.New("system: warmup image incompatible with config")

// WarmupImage is frozen post-prewarm state shared by every design cell
// of one workload. It is immutable once built: installs deep-copy the
// streams and hierarchies and the controller copies the tag content, so
// concurrent cells can fork from the same image.
type WarmupImage struct {
	// The parameters the prewarm evolution depends on; a config must
	// match all of them for the image to seed it.
	workload string
	cores    int
	seed     uint64
	prewarmN int    // resolved accesses per core (0 when prewarming is disabled)
	capacity uint64 // normalized stream-footprint capacity
	l1, l2   uint64 // normalized SRAM sizes

	streams []*workload.Stream
	hiers   []*cache.Hierarchy
	tags    *dramcache.TagImage // nil when the config has no tag store
}

// normalized mirrors New's defaulting of the sizing knobs so an image
// built from one design's config matches another design's.
func (cfg *Config) normalized() (capacity, l1, l2 uint64) {
	capacity = cfg.Cache.CapacityBytes
	if capacity == 0 {
		capacity = 64 << 20
	}
	l1, l2 = cfg.L1Bytes, cfg.L2Bytes
	if l1 == 0 {
		l1 = 4 << 10
	}
	if l2 == 0 {
		l2 = 64 << 10
	}
	return capacity, l1, l2
}

// prewarmCount resolves PrewarmPerCore against a core-0 stream: negative
// disables, zero selects the automatic footprint-doubling default.
func prewarmCount(cfg *Config, s *workload.Stream) int {
	n := cfg.PrewarmPerCore
	if n < 0 {
		return 0
	}
	if n == 0 {
		n = int(2 * s.Lines())
		if n < 4096 {
			n = 4096
		}
	}
	return n
}

// BuildWarmupImage runs the functional prewarm pass once for cfg's
// workload and freezes the result. The image seeds any config that
// matches the workload/seed/topology parameters — in the experiment
// matrix, every design cell of the workload.
//
//tdlint:copier WarmupImage
func BuildWarmupImage(cfg Config) (*WarmupImage, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capacity, l1, l2 := cfg.normalized()
	img := &WarmupImage{
		workload: cfg.Workload.Name,
		cores:    cfg.Cores,
		seed:     cfg.Seed,
		capacity: capacity,
		l1:       l1,
		l2:       l2,
	}
	var pw *dramcache.Prewarmer
	if cfg.Cache.CapacityBytes > 0 {
		var err error
		if pw, err = dramcache.NewPrewarmer(cfg.Cache.CapacityBytes, cfg.Cache.Ways); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Cores; i++ {
		st := cfg.Workload.NewStream(i, cfg.Cores, capacity, cfg.Seed)
		hier := cache.NewSizedHierarchy(l1, l2)
		if pw != nil {
			// Same hook wiring as a live core while prewarming: dirty L2
			// victims reach Prewarm during the access, before the miss does.
			hier.WriteBack = func(line uint64) { pw.Prewarm(line, true) }
		}
		if i == 0 {
			img.prewarmN = prewarmCount(&cfg, st)
		}
		for a := 0; a < img.prewarmN; a++ {
			line, store, _ := st.Next()
			res := hier.Access(line, store)
			if res.Missed && pw != nil {
				pw.Prewarm(res.MissLine, false)
			}
		}
		hier.WriteBack = nil
		img.streams = append(img.streams, st)
		img.hiers = append(img.hiers, hier)
	}
	if pw != nil {
		img.tags = pw.Image()
	}
	return img, nil
}

// CompatibleWith reports whether the image can seed cfg; the error
// (wrapping ErrIncompatibleImage) names the first mismatched parameter.
func (img *WarmupImage) CompatibleWith(cfg Config) error {
	mismatch := func(what string, img, cfg any) error {
		return fmt.Errorf("%w: %s %v vs %v", ErrIncompatibleImage, what, img, cfg)
	}
	if img.workload != cfg.Workload.Name {
		return mismatch("workload", img.workload, cfg.Workload.Name)
	}
	if img.cores != cfg.Cores {
		return mismatch("cores", img.cores, cfg.Cores)
	}
	if img.seed != cfg.Seed {
		return mismatch("seed", img.seed, cfg.Seed)
	}
	capacity, l1, l2 := cfg.normalized()
	if img.capacity != capacity {
		return mismatch("stream capacity", img.capacity, capacity)
	}
	if img.l1 != l1 || img.l2 != l2 {
		return mismatch("sram sizes", fmt.Sprintf("%d/%d", img.l1, img.l2), fmt.Sprintf("%d/%d", l1, l2))
	}
	// The resolved prewarm length must match; resolving the automatic
	// default needs a throwaway core-0 stream for its footprint.
	n := cfg.PrewarmPerCore
	if n <= 0 {
		n = prewarmCount(&cfg, cfg.Workload.NewStream(0, cfg.Cores, capacity, cfg.Seed))
	}
	if img.prewarmN != n {
		return mismatch("prewarm accesses", img.prewarmN, n)
	}
	if img.tags == nil && cfg.Cache.CapacityBytes > 0 && cfg.Cache.Design != dramcache.NoCache {
		return fmt.Errorf("%w: image has no cache content but config has a tag store", ErrIncompatibleImage)
	}
	return nil
}

// NewWithImage builds the machine like New and seeds it from the image
// instead of leaving prewarm to Run: streams and SRAM hierarchies are
// deep-copied per core, the DRAM-cache content is installed into the
// controller (geometry mismatches surface as ErrIncompatibleImage), and
// Run's prewarm pass is skipped.
func NewWithImage(cfg Config, img *WarmupImage) (*System, error) {
	if img == nil {
		return New(cfg)
	}
	if err := img.CompatibleWith(cfg); err != nil {
		return nil, err
	}
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if img.tags != nil {
		if err := sys.ctl.InstallTags(img.tags); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrIncompatibleImage, err)
		}
	}
	for i, c := range sys.cores {
		c.stream = img.streams[i].Clone()
		c.hier = img.hiers[i].Clone()
		c.hier.WriteBack = c.emitWriteback
	}
	sys.prewarmed = true
	return sys, nil
}

// RunWithImage builds from the image and runs in one call.
func RunWithImage(cfg Config, img *WarmupImage) (*Result, error) {
	sys, err := NewWithImage(cfg, img)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}
