package system

import (
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/workload"
)

// smallConfig keeps unit-test runs fast: a 16 MiB cache and short phases.
func smallConfig(t *testing.T, d dramcache.Design, wl string) Config {
	t.Helper()
	spec, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(d, spec, 16<<20)
	cfg.WarmupPerCore = 1500
	cfg.RequestsPerCore = 2500
	return cfg
}

func TestValidate(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "bt.C")
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero cores accepted")
	}
	cfg = smallConfig(t, dramcache.TDRAM, "bt.C")
	cfg.RequestsPerCore = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestRunCompletesEveryDesign(t *testing.T) {
	for _, d := range append(dramcache.Designs(), dramcache.NoCache) {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Run(smallConfig(t, d, "is.C"))
			if err != nil {
				t.Fatal(err)
			}
			if res.Runtime <= 0 {
				t.Fatal("non-positive runtime")
			}
			if res.Accesses != 8*2500 {
				t.Errorf("accesses = %d", res.Accesses)
			}
			if d != dramcache.NoCache {
				if res.Cache.DemandReads == 0 {
					t.Error("no demand reads reached the DRAM cache")
				}
				if res.Cache.DemandWrites == 0 {
					t.Error("no writebacks reached the DRAM cache (is.C writes heavily)")
				}
			}
			if res.Throughput() <= 0 {
				t.Error("zero throughput")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(smallConfig(t, dramcache.TDRAM, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(t, dramcache.TDRAM, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Errorf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
	}
	if a.Cache.Outcomes != b.Cache.Outcomes {
		t.Errorf("outcome counts differ")
	}
	if a.Cache.Traffic != b.Cache.Traffic {
		t.Errorf("traffic differs")
	}
}

func TestMissBandsRealized(t *testing.T) {
	// The workload calibration contract: low-band workloads measure
	// < 30 % DRAM-cache miss ratio, high-band > 50 % (Fig. 1). Checked on
	// a representative subset here; the experiments package covers all.
	for _, name := range []string{"bt.C", "lu.C", "ft.C", "is.D", "bfs.22", "pr.25"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := smallConfig(t, dramcache.CascadeLake, name)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mr := res.Cache.Outcomes.MissRatio()
			spec, _ := workload.ByName(name)
			if spec.Band == workload.LowMiss && mr >= 0.30 {
				t.Errorf("%s: miss ratio %.2f outside low band", name, mr)
			}
			if spec.Band == workload.HighMiss && mr <= 0.50 {
				t.Errorf("%s: miss ratio %.2f outside high band", name, mr)
			}
		})
	}
}

func TestEnergyPopulated(t *testing.T) {
	res, err := Run(smallConfig(t, dramcache.TDRAM, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy.Cache.Total() <= 0 || res.Energy.Main.Total() <= 0 {
		t.Errorf("energy not populated: %+v", res.Energy)
	}
	if res.Energy.Cache.IO <= 0 {
		t.Error("no IO energy despite traffic")
	}
	if res.Energy.Cache.Tag <= 0 {
		t.Error("TDRAM recorded no tag-mat energy")
	}
}

func TestTDRAMFasterThanCascadeLakeHighMiss(t *testing.T) {
	// The paper's headline: on high-miss workloads TDRAM outperforms
	// Cascade Lake (Fig. 11) with a much faster tag check (Fig. 9).
	td, err := Run(smallConfig(t, dramcache.TDRAM, "pr.25"))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Run(smallConfig(t, dramcache.CascadeLake, "pr.25"))
	if err != nil {
		t.Fatal(err)
	}
	if td.Runtime >= cl.Runtime {
		t.Errorf("TDRAM runtime %v not below CascadeLake %v", td.Runtime, cl.Runtime)
	}
	if td.Cache.TagCheck.Value() >= cl.Cache.TagCheck.Value() {
		t.Errorf("TDRAM tag check %.1fns not below CascadeLake %.1fns",
			td.Cache.TagCheck.Value(), cl.Cache.TagCheck.Value())
	}
}

func TestIdealUpperBound(t *testing.T) {
	id, err := Run(smallConfig(t, dramcache.Ideal, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	td, err := Run(smallConfig(t, dramcache.TDRAM, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	// Ideal must not be slower than TDRAM beyond noise (2 %).
	if float64(id.Runtime) > float64(td.Runtime)*1.02 {
		t.Errorf("Ideal runtime %v above TDRAM %v", id.Runtime, td.Runtime)
	}
}
