package system

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"tdram/internal/dramcache"
)

// The fork soundness property: a cell seeded from a WarmupImage must
// produce a Result bit-identical to the same cell run with a full
// prewarm replay — for every design, since the image is built once per
// workload and shared across them. reflect.DeepEqual covers every
// counter, histogram bucket, energy meter, and traffic byte in the
// Result; the %+v comparison is the same fingerprint the kernel golden
// test pins.
func TestForkedWarmupBitIdentical(t *testing.T) {
	designs := append(dramcache.Designs(), dramcache.NoCache)
	if testing.Short() {
		designs = []dramcache.Design{dramcache.TDRAM, dramcache.CascadeLake, dramcache.NoCache}
	}
	for _, wl := range []string{"is.C", "cc.25"} {
		cfg := smallConfig(t, dramcache.TDRAM, wl)
		img, err := BuildWarmupImage(cfg)
		if err != nil {
			t.Fatalf("%s: BuildWarmupImage: %v", wl, err)
		}
		for _, d := range designs {
			cfg := smallConfig(t, d, wl)
			replayed, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%v: replay run: %v", wl, d, err)
			}
			forked, err := RunWithImage(cfg, img)
			if err != nil {
				t.Fatalf("%s/%v: forked run: %v", wl, d, err)
			}
			if !reflect.DeepEqual(replayed, forked) {
				t.Errorf("%s/%v: forked result differs from replayed:\nreplay %+v\nfork   %+v",
					wl, d, replayed, forked)
			}
			if rs, fs := fmt.Sprintf("%+v", replayed), fmt.Sprintf("%+v", forked); rs != fs {
				t.Errorf("%s/%v: result fingerprints differ", wl, d)
			}
		}
	}
}

// An image must refuse to seed configs whose prewarm evolution it does
// not describe, naming ErrIncompatibleImage so callers fall back to
// replay.
func TestWarmupImageCompatibility(t *testing.T) {
	base := smallConfig(t, dramcache.TDRAM, "is.C")
	img, err := BuildWarmupImage(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.CompatibleWith(base); err != nil {
		t.Fatalf("image rejects its own config: %v", err)
	}
	// Same workload, different design: compatible (the matrix case).
	other := smallConfig(t, dramcache.Alloy, "is.C")
	if err := img.CompatibleWith(other); err != nil {
		t.Fatalf("image rejects sibling design: %v", err)
	}

	mutations := map[string]func(*Config){
		"workload": func(c *Config) { c.Workload.Name = "other" },
		"cores":    func(c *Config) { c.Cores = 4 },
		"seed":     func(c *Config) { c.Seed = 99 },
		"capacity": func(c *Config) { c.Cache.CapacityBytes = 1 << 20 },
		"l2":       func(c *Config) { c.L2Bytes = 128 << 10 },
		"prewarm":  func(c *Config) { c.PrewarmPerCore = 7 },
	}
	for name, mutate := range mutations {
		cfg := smallConfig(t, dramcache.TDRAM, "is.C")
		mutate(&cfg)
		err := img.CompatibleWith(cfg)
		if !errors.Is(err, ErrIncompatibleImage) {
			t.Errorf("%s mutation: err = %v, want ErrIncompatibleImage", name, err)
		}
		if _, err := NewWithImage(cfg, img); !errors.Is(err, ErrIncompatibleImage) {
			t.Errorf("%s mutation: NewWithImage err = %v, want ErrIncompatibleImage", name, err)
		}
	}

	// nil image degrades to plain New.
	if sys, err := NewWithImage(base, nil); err != nil || sys.prewarmed {
		t.Errorf("NewWithImage(nil): err=%v prewarmed=%v", err, sys.prewarmed)
	}
}

// An image is reusable: two cells forked from it must not interfere
// through shared stream/hierarchy/tag state.
func TestWarmupImageReusable(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "is.C")
	cfg.RequestsPerCore = 500
	cfg.WarmupPerCore = 100
	img, err := BuildWarmupImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := RunWithImage(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunWithImage(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("two forks of the same image diverge:\nfirst  %+v\nsecond %+v", first, second)
	}
}
