package system

import (
	"tdram/internal/cache"
	"tdram/internal/mem"
	"tdram/internal/sim"
	"tdram/internal/workload"
)

// core is one request-generating CPU: an in-order front end with
// non-blocking misses up to MaxOutstanding, the paper's stand-in for an
// out-of-order core's memory-level parallelism. Each access pays a think
// time (modeling the non-memory instructions between memory operations)
// plus the on-chip cache latency; L2 misses become DRAM-cache read
// demands and dirty L2 victims become write demands.
type core struct {
	sys    *System
	id     int
	stream *workload.Stream
	hier   *cache.Hierarchy
	think  sim.Tick

	target      int
	executed    int
	outstanding int
	misses      uint64

	// Backpressure bookkeeping.
	pendingWBs  []*mem.Request // writebacks rejected by the controller
	pendingRead *mem.Request   // demand read rejected by the controller
	waitRetry   bool
	wakeQueued  bool
	blocked     bool // at MaxOutstanding, waiting for a completion
	tickQueued  bool
	prewarming  bool // writebacks go to Prewarm instead of the controller

	// onMiss is the read-completion callback, bound once at construction
	// so issuing a demand read does not allocate a fresh closure.
	onMiss func(*mem.Request)

	reqID uint64
}

// missDone is the prebound OnDone target for this core's demand reads.
func (c *core) missDone(*mem.Request) { c.completeMiss() }

// beginPhase arms the core for n more accesses.
func (c *core) beginPhase(n int) {
	c.target = n
	c.executed = 0
}

// idle reports whether the core finished its phase with no loose ends.
func (c *core) idle() bool {
	return c.executed >= c.target && c.outstanding == 0 &&
		len(c.pendingWBs) == 0 && c.pendingRead == nil
}

// emitWriteback receives dirty L2 victims from the hierarchy.
func (c *core) emitWriteback(line uint64) {
	if c.prewarming {
		c.sys.ctl.Prewarm(line, true)
		return
	}
	c.reqID++
	req := &mem.Request{ID: c.reqID, Addr: line * mem.LineSize, Kind: mem.Write, Core: c.id}
	if o := c.sys.obs; o != nil {
		req.J = o.StartJourney(c.id, line, true)
	}
	if len(c.pendingWBs) > 0 || !c.sys.ctl.Enqueue(req) {
		c.pendingWBs = append(c.pendingWBs, req)
		c.waitRetry = true
	}
}

// scheduleTick arms the next access after delay.
func (c *core) scheduleTick(delay sim.Tick) {
	if c.tickQueued {
		return
	}
	c.tickQueued = true
	c.sys.sim.ScheduleArg(delay, coreTickEv, c)
}

// coreTickEv fires a core's next access without allocating a closure per
// scheduled tick — the single hottest event in every experiment.
func coreTickEv(a any, _ sim.Tick) {
	c := a.(*core)
	c.tickQueued = false
	c.tick()
}

// tick executes one access (or clears backpressure) and schedules the
// next.
func (c *core) tick() {
	// Drain rejected work first, in order.
	for len(c.pendingWBs) > 0 {
		if !c.sys.ctl.Enqueue(c.pendingWBs[0]) {
			c.waitRetry = true
			return
		}
		c.pendingWBs = c.pendingWBs[1:]
	}
	if c.pendingRead != nil {
		if !c.sys.ctl.Enqueue(c.pendingRead) {
			c.waitRetry = true
			return
		}
		c.outstanding++
		c.pendingRead = nil
		c.scheduleTick(c.think)
		return
	}
	if c.executed >= c.target {
		return
	}
	if c.outstanding >= c.sys.cfg.MaxOutstanding {
		c.blocked = true
		return
	}

	line, store, thinkNS := c.stream.Next()
	res := c.hier.Access(line, store)
	c.executed++
	c.sys.wd.Progress()
	delay := sim.NS(thinkNS) + res.Latency

	if res.Missed {
		c.misses++
		c.reqID++
		req := &mem.Request{
			ID: c.reqID, Addr: res.MissLine * mem.LineSize, Kind: mem.Read, Core: c.id,
			OnDone: c.onMiss,
		}
		if o := c.sys.obs; o != nil {
			req.J = o.StartJourney(c.id, res.MissLine, false)
		}
		if c.sys.ctl.Enqueue(req) {
			c.outstanding++
		} else {
			c.pendingRead = req
			c.waitRetry = true
			return
		}
	}
	c.scheduleTick(delay)
}

// completeMiss handles a returning DRAM-cache read.
func (c *core) completeMiss() {
	c.outstanding--
	c.sys.wd.Progress()
	if c.blocked {
		c.blocked = false
		c.scheduleTick(0)
	}
}
