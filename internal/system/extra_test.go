package system

import (
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/workload"
)

func TestOpenPageSystemRuns(t *testing.T) {
	spec, _ := workload.ByName("ft.C")
	cfg := DefaultConfig(dramcache.CascadeLake, spec, 8<<20)
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 300
	cfg.Cache.OpenPage = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheRowHits == 0 {
		t.Error("open-page system recorded no row hits on a scan-heavy workload")
	}
	if res.CacheActivates == 0 {
		t.Error("no activates recorded")
	}
}

func TestOpenPageRejectsTDRAM(t *testing.T) {
	spec, _ := workload.ByName("ft.C")
	cfg := DefaultConfig(dramcache.TDRAM, spec, 8<<20)
	cfg.Cache.OpenPage = true
	if _, err := New(cfg); err == nil {
		t.Fatal("open-page TDRAM accepted; ActRd/ActWr auto-precharge forbids it")
	}
}

func TestPrefetcherSystemRuns(t *testing.T) {
	spec, _ := workload.ByName("mg.C") // scan-heavy: strides to learn
	cfg := DefaultConfig(dramcache.TDRAM, spec, 8<<20)
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 300
	cfg.Cache.UsePrefetcher = true
	cfg.Cache.PrefetchDegree = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.PrefetchesIssued == 0 {
		t.Error("no prefetches issued on a scan-heavy workload")
	}
}
