package system

import (
	"strings"
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/fault"
	"tdram/internal/obs"
	"tdram/internal/sim"
)

// faultConfig is smallConfig trimmed further under -short, so the race
// CI pass stays inside its single-core time budget.
func faultConfig(t *testing.T, d dramcache.Design, wl string) Config {
	cfg := smallConfig(t, d, wl)
	if testing.Short() {
		cfg.WarmupPerCore = 200
		cfg.RequestsPerCore = 800
	}
	return cfg
}

// TestFaultSeededDeterminism is the acceptance criterion for the
// injector: two runs with the same -fault-seed produce identical
// runtimes, outcomes and fault counters.
func TestFaultSeededDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := faultConfig(t, dramcache.TDRAM, "ft.C")
		cfg.Cache.Fault = fault.Config{Rate: 1e-2, Seed: 7}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Runtime != b.Runtime {
		t.Errorf("runtimes differ: %v vs %v", a.Runtime, b.Runtime)
	}
	if a.Cache.Outcomes != b.Cache.Outcomes {
		t.Error("outcome counts differ")
	}
	if a.Cache.Traffic != b.Cache.Traffic {
		t.Error("traffic differs")
	}
	if a.Cache.Fault != b.Cache.Fault {
		t.Errorf("fault counters differ:\na: %+v\nb: %+v", a.Cache.Fault, b.Cache.Fault)
	}
	if a.Cache.Fault.Injected == 0 {
		t.Error("rate 1e-2 injected nothing over a full run")
	}
}

// TestFaultDisabledAndWatchdogInert: a zero fault rate plus an armed
// watchdog must be bit-identical to a plain run — both subsystems are
// nil/observe-only when idle.
func TestFaultDisabledAndWatchdogInert(t *testing.T) {
	plain, err := Run(faultConfig(t, dramcache.TDRAM, "ft.C"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultConfig(t, dramcache.TDRAM, "ft.C")
	cfg.Cache.Fault = fault.Config{Rate: 0, Seed: 999} // rate 0: disabled
	cfg.Watchdog = 10 * sim.Millisecond
	armed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != armed.Runtime {
		t.Errorf("runtime differs: plain %v, armed %v", plain.Runtime, armed.Runtime)
	}
	if plain.Cache.Outcomes != armed.Cache.Outcomes {
		t.Error("outcomes differ under an armed watchdog")
	}
	if plain.Cache.Traffic != armed.Cache.Traffic {
		t.Error("traffic differs under an armed watchdog")
	}
	if armed.Cache.Fault != (fault.Counters{}) {
		t.Errorf("disabled injector accumulated counters: %+v", armed.Cache.Fault)
	}
}

// TestFaultInjectedRunCompletes: a realistic fault rate corrects most
// faults in flight and the run finishes with consistent accounting.
func TestFaultInjectedRunCompletes(t *testing.T) {
	cfg := faultConfig(t, dramcache.TDRAM, "ft.C")
	cfg.Cache.Fault = fault.Config{Rate: 1e-3, Seed: 3}
	cfg.Watchdog = 10 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Cache.Fault
	if f.Injected == 0 || f.Corrected == 0 {
		t.Fatalf("nothing injected/corrected: %+v", f)
	}
	if f.Corrected+f.Detected != f.Injected {
		t.Errorf("corrected %d + detected %d != injected %d", f.Corrected, f.Detected, f.Injected)
	}
	if got := f.DataFaults + f.TagFaults + f.HMFaults + f.FlushFaults; got != f.Injected {
		t.Errorf("site counts sum to %d, want %d", got, f.Injected)
	}
}

// TestFaultDegradedRunCompletes: a hostile configuration — every other
// fault uncorrectable, sets retired on the first exhausted access —
// degrades (retired sets, bypassed demands) but still terminates.
func TestFaultDegradedRunCompletes(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "is.C")
	// A small cache (few sets) keeps the odds high that the access stream
	// re-touches a retired set, so the bypass path is reliably exercised.
	cfg.Cache = dramcache.DefaultConfig(dramcache.TDRAM, 1<<20)
	cfg.RequestsPerCore = 800
	cfg.WarmupPerCore = 100
	cfg.Cache.Fault = fault.Config{
		Rate: 0.1, Seed: 11, UncorrectableFrac: 0.5, RetryBudget: 1, RetireThreshold: 1,
	}
	cfg.Watchdog = 10 * sim.Millisecond
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Cache.Fault
	if f.Exhausted == 0 {
		t.Errorf("no exhausted retries under 50%% uncorrectable faults: %+v", f)
	}
	if f.SetsRetired == 0 {
		t.Errorf("threshold 1 never retired a set: %+v", f)
	}
	if f.Bypasses == 0 {
		t.Errorf("retired sets never bypassed a demand: %+v", f)
	}
}

// TestWatchdogAbortsDrainedQueue: a phantom in-flight request (its
// completion will never arrive) leaves a core busy forever; once the
// event queue drains, the run must abort with the drained-queue
// diagnosis instead of reporting a silent short result.
func TestWatchdogAbortsDrainedQueue(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "ft.C")
	cfg.RequestsPerCore = 200
	cfg.WarmupPerCore = 0
	cfg.PrewarmPerCore = -1
	cfg.Watchdog = 10 * sim.Microsecond
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.cores[0].outstanding = 1 // phantom request, never completes
	_, err = sys.Run()
	if err == nil {
		t.Fatal("run with a wedged core reported success")
	}
	for _, want := range []string{"watchdog:", "outstanding", "cachectl:", "cores:"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("abort diagnostic lacks %q:\n%v", want, err)
		}
	}
}

// TestWatchdogAbortsLivelock is the acceptance criterion: an induced
// livelock — a wedged core plus an event source that keeps simulated
// time advancing without retiring anything — is caught by the window
// check and aborted with a dump, rather than hanging the run.
func TestWatchdogAbortsLivelock(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "ft.C")
	cfg.RequestsPerCore = 200
	cfg.WarmupPerCore = 0
	cfg.PrewarmPerCore = -1
	cfg.Watchdog = 10 * sim.Microsecond
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.cores[0].outstanding = 1
	var spin func()
	spin = func() { sys.Simulator().Schedule(sim.Nanosecond, spin) }
	sys.Simulator().Schedule(0, spin)
	_, err = sys.Run()
	if err == nil {
		t.Fatal("livelocked run reported success")
	}
	if !strings.Contains(err.Error(), "no request retired within") {
		t.Errorf("abort diagnostic lacks the no-progress reason:\n%v", err)
	}
}

// TestBackpressurePumpsOnFree asserts the event-driven missFetch rearm
// (satellite of the fault-injection PR): on a workload that saturates
// the backing read queues, demands park (MMReadWaits), are pumped by the
// queue's free event (MMReadPumps), and the run still drains completely.
func TestBackpressurePumpsOnFree(t *testing.T) {
	cfg := smallConfig(t, dramcache.TDRAM, "is.D")
	cfg.Cache = dramcache.DefaultConfig(dramcache.TDRAM, 4<<20)
	cfg.MaxOutstanding = 64
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 200
	if testing.Short() {
		cfg.RequestsPerCore = 600
		cfg.WarmupPerCore = 100
	}
	cfg.Obs = obs.Config{MetricsInterval: 500_000}
	cfg.Watchdog = 10 * sim.Millisecond
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache.MMReadWaits == 0 || res.Cache.MMReadPumps == 0 {
		t.Errorf("saturating run never parked/pumped a backing read: waits=%d pumps=%d",
			res.Cache.MMReadWaits, res.Cache.MMReadPumps)
	}
	if sys.Controller().Pending() != 0 {
		t.Errorf("controller still pending after drain: %d", sys.Controller().Pending())
	}
	counts := map[string]uint64{}
	for _, c := range sys.Observer().Counters() {
		counts[c.Name] = c.Value
	}
	if counts["cache.mmread.wait"] == 0 || counts["cache.mmread.pump"] == 0 {
		t.Errorf("obs counters missing the wait/pump events: %v", counts)
	}
}
