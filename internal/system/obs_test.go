package system

import (
	"reflect"
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/obs"
	"tdram/internal/workload"
)

// TestObservabilityDeterminism is the tracing-never-perturbs-timing
// guard: for every design, a run with full observability (tracing and
// metrics sampling) must produce bit-identical final statistics to a run
// without it. Hooks only read model state, and the sampler runs on
// daemon events that cannot reorder model events relative to each other.
func TestObservabilityDeterminism(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	designs := append(dramcache.Designs(), dramcache.NoCache)
	for _, d := range designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			run := func(oc obs.Config) *Result {
				cfg := DefaultConfig(d, wl, 4<<20)
				cfg.RequestsPerCore = 400
				cfg.WarmupPerCore = 100
				cfg.Obs = oc
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := run(obs.Config{})
			observed := run(obs.Config{Trace: true, MetricsInterval: 500_000})

			if plain.Runtime != observed.Runtime {
				t.Errorf("runtime differs: %v without obs, %v with", plain.Runtime, observed.Runtime)
			}
			// Compare everything the run measures. The histograms live
			// behind pointers, so compare their contents and then the
			// remaining value fields.
			if !reflect.DeepEqual(*plain.Cache.TagCheckHist, *observed.Cache.TagCheckHist) {
				t.Error("tag-check histogram differs under observation")
			}
			if !reflect.DeepEqual(*plain.Cache.ReadLatencyHist, *observed.Cache.ReadLatencyHist) {
				t.Error("read-latency histogram differs under observation")
			}
			pc, oc2 := plain.Cache, observed.Cache
			pc.TagCheckHist, pc.ReadLatencyHist = nil, nil
			oc2.TagCheckHist, oc2.ReadLatencyHist = nil, nil
			if !reflect.DeepEqual(pc, oc2) {
				t.Errorf("cache stats differ under observation:\nwithout: %+v\nwith:    %+v", pc, oc2)
			}
			if !reflect.DeepEqual(plain.MM, observed.MM) {
				t.Errorf("backing-store stats differ under observation:\nwithout: %+v\nwith:    %+v", plain.MM, observed.MM)
			}
			if !reflect.DeepEqual(plain.Energy, observed.Energy) {
				t.Error("energy report differs under observation")
			}
		})
	}
}

// TestObserverOutputsPopulated sanity-checks that an observed run
// actually records something on every output.
func TestObserverOutputsPopulated(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(dramcache.TDRAM, wl, 4<<20)
	cfg.RequestsPerCore = 400
	cfg.WarmupPerCore = 100
	cfg.Obs = obs.Config{Trace: true, MetricsInterval: 500_000}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	o := sys.Observer()
	if o == nil {
		t.Fatal("observer not attached")
	}
	if n, _ := o.TraceEvents(); n == 0 {
		t.Error("no trace events recorded")
	}
	if o.Samples() == 0 {
		t.Error("no metric samples recorded")
	}
	found := map[string]bool{}
	for _, c := range o.Counters() {
		found[c.Name] = true
	}
	for _, want := range []string{"hbm3-cache.cmd.ActRd", "hbm3-cache.cmd.ActWr", "cache.flush.fill"} {
		if !found[want] {
			t.Errorf("counter %q missing (have %v)", want, found)
		}
	}
}
