package system

import (
	"reflect"
	"strings"
	"testing"

	"tdram/internal/dramcache"
	"tdram/internal/mem"
	"tdram/internal/obs"
	"tdram/internal/sim"
	"tdram/internal/workload"
)

// TestObservabilityDeterminism is the tracing-never-perturbs-timing
// guard: for every design, a run with full observability (tracing and
// metrics sampling) must produce bit-identical final statistics to a run
// without it. Hooks only read model state, and the sampler runs on
// daemon events that cannot reorder model events relative to each other.
func TestObservabilityDeterminism(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	designs := append(dramcache.Designs(), dramcache.NoCache)
	for _, d := range designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			run := func(oc obs.Config) *Result {
				cfg := DefaultConfig(d, wl, 4<<20)
				cfg.RequestsPerCore = 400
				cfg.WarmupPerCore = 100
				cfg.Obs = oc
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			plain := run(obs.Config{})
			observed := run(obs.Config{Trace: true, MetricsInterval: 500_000, Journeys: true, FlightRecorder: 64})

			if plain.Runtime != observed.Runtime {
				t.Errorf("runtime differs: %v without obs, %v with", plain.Runtime, observed.Runtime)
			}
			// Compare everything the run measures. The histograms live
			// behind pointers, so compare their contents and then the
			// remaining value fields.
			if !reflect.DeepEqual(*plain.Cache.TagCheckHist, *observed.Cache.TagCheckHist) {
				t.Error("tag-check histogram differs under observation")
			}
			if !reflect.DeepEqual(*plain.Cache.ReadLatencyHist, *observed.Cache.ReadLatencyHist) {
				t.Error("read-latency histogram differs under observation")
			}
			pc, oc2 := plain.Cache, observed.Cache
			pc.TagCheckHist, pc.ReadLatencyHist = nil, nil
			oc2.TagCheckHist, oc2.ReadLatencyHist = nil, nil
			if !reflect.DeepEqual(pc, oc2) {
				t.Errorf("cache stats differ under observation:\nwithout: %+v\nwith:    %+v", pc, oc2)
			}
			if !reflect.DeepEqual(plain.MM, observed.MM) {
				t.Errorf("backing-store stats differ under observation:\nwithout: %+v\nwith:    %+v", plain.MM, observed.MM)
			}
			if !reflect.DeepEqual(plain.Energy, observed.Energy) {
				t.Error("energy report differs under observation")
			}
		})
	}
}

// TestObserverOutputsPopulated sanity-checks that an observed run
// actually records something on every output.
func TestObserverOutputsPopulated(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(dramcache.TDRAM, wl, 4<<20)
	cfg.RequestsPerCore = 400
	cfg.WarmupPerCore = 100
	cfg.Obs = obs.Config{Trace: true, MetricsInterval: 500_000}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	o := sys.Observer()
	if o == nil {
		t.Fatal("observer not attached")
	}
	if n, _ := o.TraceEvents(); n == 0 {
		t.Error("no trace events recorded")
	}
	if o.Samples() == 0 {
		t.Error("no metric samples recorded")
	}
	found := map[string]bool{}
	for _, c := range o.Counters() {
		found[c.Name] = true
	}
	for _, want := range []string{"hbm3-cache.cmd.ActRd", "hbm3-cache.cmd.ActWr", "cache.flush.fill"} {
		if !found[want] {
			t.Errorf("counter %q missing (have %v)", want, found)
		}
	}
}

// TestJourneyAccountingMatchesOutcomes cross-checks the journey
// aggregates against the controller's own demand accounting: every
// measured-phase demand read must finish exactly one journey, and the
// read-hit class must agree with the outcome counters. Writes are
// posted — the controller counts them at accept while the journey
// finishes at the DQ data burst — so a handful of measured-phase writes
// may still sit in write queues when the run ends and never finish
// their journeys. Reads must match exactly; writes may only fall short,
// and only by a small in-flight window.
func TestJourneyAccountingMatchesOutcomes(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	designs := append(dramcache.Designs(), dramcache.NoCache)
	for _, d := range designs {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(d, wl, 4<<20)
			cfg.RequestsPerCore = 400
			cfg.WarmupPerCore = 100
			cfg.Obs = obs.Config{Journeys: true}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.Run()
			if err != nil {
				t.Fatal(err)
			}
			o := sys.Observer()
			var journeys, reads, writes uint64
			for c := 0; c < mem.NumJourneyClasses; c++ {
				n := o.JourneyClassCount(mem.JourneyClass(c))
				journeys += n
				switch mem.JourneyClass(c) {
				case mem.ClassWrite:
					writes += n
				case mem.ClassBypass, mem.ClassRetried:
					// Mixed read/write; counted in the total only.
				default:
					reads += n
				}
			}
			const writeSlack = 64 // posted writes still queued at run end
			demands := res.Cache.DemandReads + res.Cache.DemandWrites
			if journeys > demands || demands-journeys > writeSlack {
				t.Errorf("journeys=%d, demand reads+writes=%d", journeys, demands)
			}
			if d == dramcache.NoCache {
				return
			}
			if hits := res.Cache.Outcomes.Count(mem.ReadHit); o.JourneyClassCount(mem.ClassReadHit) != hits {
				t.Errorf("read-hit journeys=%d, read-hit outcomes=%d",
					o.JourneyClassCount(mem.ClassReadHit), hits)
			}
			if reads != res.Cache.DemandReads {
				t.Errorf("journey reads=%d, controller reads=%d", reads, res.Cache.DemandReads)
			}
			if writes > res.Cache.DemandWrites || res.Cache.DemandWrites-writes > writeSlack {
				t.Errorf("journey writes=%d, controller writes=%d", writes, res.Cache.DemandWrites)
			}
			// Every completed read carries end-to-end latency; the class
			// histogram totals must cover the controller's read count.
			var histN uint64
			for c := 0; c < mem.NumJourneyClasses; c++ {
				histN += o.JourneyClassHist(mem.JourneyClass(c)).N()
			}
			if histN != journeys {
				t.Errorf("histogram samples=%d, journeys=%d", histN, journeys)
			}
		})
	}
}

// TestWatchdogTripDumpsFlightRecorder forces the drained-queue trip and
// checks the report carries the flight-recorder section with the last
// journeys, plus the snapshot taken at trip time.
func TestWatchdogTripDumpsFlightRecorder(t *testing.T) {
	wl, err := workload.ByName("ft.C")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(dramcache.TDRAM, wl, 4<<20)
	cfg.RequestsPerCore = 200
	cfg.WarmupPerCore = 0
	cfg.Watchdog = 10 * sim.Millisecond
	cfg.Obs = obs.Config{FlightRecorder: 16}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	sys.wd.TripDrained(3)
	report := sys.wd.Report()
	if !strings.Contains(report, "flight: flight recorder: 16/16 journeys") {
		t.Errorf("report lacks the flight dump:\n%s", report)
	}
	if !strings.Contains(report, "jrny id=") || !strings.Contains(report, "cmd  hbm3-cache.ch") {
		t.Errorf("flight dump lacks journeys/commands:\n%s", report)
	}
	snaps := sys.Observer().FlightSnapshots()
	if len(snaps) != 1 || !strings.Contains(snaps[0], "watchdog: event queue drained with 3 request(s) outstanding") {
		t.Errorf("trip snapshot missing or wrong: %q", snaps)
	}
}
