// Package system wires the full modeled machine together: eight
// request-generating cores, each with a private L1/L2 SRAM stack, a
// shared DRAM-cache controller in one of the paper's six designs (or no
// cache at all), and the DDR5 backing store. It runs a warmup phase —
// the stand-in for the paper's LoopPoint checkpoints with warmed caches
// — followed by a measured phase whose duration is the workload runtime
// the speedup figures compare.
package system

import (
	"fmt"

	"tdram/internal/backing"
	"tdram/internal/cache"
	"tdram/internal/dram"
	"tdram/internal/dramcache"
	"tdram/internal/energy"
	"tdram/internal/obs"
	"tdram/internal/sim"
	"tdram/internal/workload"
)

// Config describes one simulated run.
type Config struct {
	Workload workload.Spec
	Cache    dramcache.Config

	// Obs selects observability outputs (tracing, metrics sampling). The
	// zero value runs without an observer: no overhead beyond one nil
	// check per hook site.
	Obs obs.Config

	Cores          int // Table III: 8
	MaxOutstanding int // per-core in-flight DRAM-cache reads (MSHR-style MLP)

	// L1Bytes/L2Bytes size the per-core SRAM stack. The defaults are the
	// Table III sizes scaled down along with the DRAM cache capacity, so
	// the SRAM levels absorb a proportionate share of reuse.
	L1Bytes, L2Bytes uint64

	// PrewarmPerCore runs this many accesses per core through the SRAM
	// hierarchy and the cache content functionally (zero simulated time)
	// before anything is timed — the stand-in for the paper's warmed
	// LoopPoint checkpoints. Zero selects an automatic value covering
	// the per-core footprint twice; negative disables prewarming.
	PrewarmPerCore int
	// WarmupPerCore accesses are then simulated with timing but excluded
	// from measurement, warming queues and device state.
	WarmupPerCore int
	// RequestsPerCore accesses are measured.
	RequestsPerCore int

	// Watchdog, when positive, arms a no-progress watchdog on the event
	// kernel: a run that stops retiring requests for this much simulated
	// time (or livelocks within one tick) aborts with a diagnostic dump
	// instead of hanging. Zero disables it. The watchdog only observes —
	// an armed run's results are bit-identical to an unarmed one.
	Watchdog sim.Tick

	Seed uint64
}

// DefaultConfig sizes a run for the given design, workload and cache
// capacity with the paper's topology.
func DefaultConfig(d dramcache.Design, wl workload.Spec, cacheBytes uint64) Config {
	return Config{
		Workload:        wl,
		Cache:           dramcache.DefaultConfig(d, cacheBytes),
		Cores:           8,
		MaxOutstanding:  8,
		L1Bytes:         4 << 10,
		L2Bytes:         64 << 10,
		WarmupPerCore:   1000,
		RequestsPerCore: 12000,
		Seed:            1,
	}
}

// Validate rejects inconsistent run configurations.
func (c *Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("system: cores = %d", c.Cores)
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("system: max outstanding = %d", c.MaxOutstanding)
	}
	if c.RequestsPerCore <= 0 {
		return fmt.Errorf("system: requests per core = %d", c.RequestsPerCore)
	}
	return c.Cache.Validate()
}

// EnergyReport carries the rendered energy model outputs.
type EnergyReport struct {
	Cache energy.Breakdown
	Main  energy.Breakdown
}

// Total reports system memory energy in joules.
func (e EnergyReport) Total() float64 { return e.Cache.Total() + e.Main.Total() }

// Result is one run's measurements.
type Result struct {
	Design   dramcache.Design
	Workload string

	Runtime  sim.Tick // measured-phase duration
	Accesses uint64   // core accesses executed in the measured phase

	Cache dramcache.Stats
	MM    backing.Stats

	Energy EnergyReport

	// L2MissRate is the fraction of core accesses that reached the DRAM
	// cache (diagnostics for workload calibration).
	L2MissRate float64
	// CacheActivates/CacheRowHits summarize cache-device row behaviour
	// (row hits only occur under the open-page ablation policy).
	CacheActivates, CacheRowHits uint64
	// CacheOccupancy/CacheDirty are content fractions at run end.
	CacheOccupancy, CacheDirty float64
}

// Throughput reports accesses per microsecond — the per-run performance
// measure speedups are built from.
func (r *Result) Throughput() float64 {
	if r.Runtime <= 0 {
		return 0
	}
	return float64(r.Accesses) / (float64(r.Runtime) / float64(sim.Microsecond))
}

// System is a fully wired machine. A System owns its event kernel,
// controller, backing store and cores outright, and no package under it
// keeps mutable global state (the ecc and workload tables are computed
// once at init and only read afterwards), so independent Systems may Run
// concurrently — the parallel matrix runner in internal/experiments
// depends on this. A single System is not safe for concurrent use.
type System struct {
	cfg   Config
	sim   *sim.Simulator
	mm    *backing.Memory
	ctl   *dramcache.Controller
	obs   *obs.Observer
	wd    *sim.Watchdog
	cores []*core

	// prewarmed marks a system seeded from a WarmupImage: Run skips the
	// prewarm pass because the installed state already reflects it.
	prewarmed bool
}

// New builds the machine.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := sim.New()
	mm, err := backing.New(s, dram.DDR5Params())
	if err != nil {
		return nil, err
	}
	ctl, err := dramcache.New(s, cfg.Cache, mm)
	if err != nil {
		return nil, err
	}
	sys := &System{cfg: cfg, sim: s, mm: mm, ctl: ctl}
	ctl.OnDemandRetry = sys.wakeStalled
	if cfg.Obs.Enabled() {
		sys.obs = obs.New(s, cfg.Obs)
		ctl.SetObserver(sys.obs)
		mm.SetObserver(sys.obs)
	}
	if cfg.Watchdog > 0 {
		wd := sim.NewWatchdog(s, cfg.Watchdog)
		wd.SetOutstanding(sys.outstandingWork)
		wd.AddDump("cores", sys.describeStall)
		wd.AddDump("cachectl", ctl.DebugState)
		wd.AddDump("backing", mm.DebugState)
		if o := sys.obs; o != nil && o.FlightEnabled() {
			wd.AddDump("flight", o.FlightDump)
			wd.SetOnTrip(func(reason string) {
				o.FlightSnapshot("watchdog: " + reason)
			})
		}
		sys.wd = wd
	}
	// Workload footprints scale against the nominal cache capacity even
	// in the no-cache configuration, so runtimes are comparable.
	capacity := cfg.Cache.CapacityBytes
	if capacity == 0 {
		capacity = 64 << 20
	}
	l1, l2 := cfg.L1Bytes, cfg.L2Bytes
	if l1 == 0 {
		l1 = 4 << 10
	}
	if l2 == 0 {
		l2 = 64 << 10
	}
	for i := 0; i < cfg.Cores; i++ {
		c := &core{
			sys:    sys,
			id:     i,
			stream: cfg.Workload.NewStream(i, cfg.Cores, capacity, cfg.Seed),
			hier:   cache.NewSizedHierarchy(l1, l2),
			think:  sim.NS(cfg.Workload.ThinkNS),
		}
		c.hier.WriteBack = c.emitWriteback
		c.onMiss = c.missDone
		sys.cores = append(sys.cores, c)
	}
	return sys, nil
}

// prewarm pushes accesses through the SRAM hierarchy and cache content
// functionally so the measured phase starts from steady state.
func (sys *System) prewarm() {
	n := prewarmCount(&sys.cfg, sys.cores[0].stream)
	if n == 0 {
		return
	}
	for _, c := range sys.cores {
		c.prewarming = true
		for i := 0; i < n; i++ {
			line, store, _ := c.stream.Next()
			res := c.hier.Access(line, store)
			if res.Missed {
				sys.ctl.Prewarm(res.MissLine, false)
			}
		}
		c.prewarming = false
	}
}

// Controller exposes the DRAM-cache controller (inspection, examples).
func (sys *System) Controller() *dramcache.Controller { return sys.ctl }

// Simulator exposes the event kernel.
func (sys *System) Simulator() *sim.Simulator { return sys.sim }

// Observer exposes the observability subsystem (nil when disabled).
func (sys *System) Observer() *obs.Observer { return sys.obs }

// wakeStalled reschedules every core waiting on controller backpressure.
func (sys *System) wakeStalled() {
	for _, c := range sys.cores {
		if c.waitRetry && !c.wakeQueued {
			c.wakeQueued = true
			sys.sim.ScheduleArg(0, coreWakeEv, c)
		}
	}
}

// coreWakeEv resumes a core stalled on controller backpressure.
func coreWakeEv(a any, _ sim.Tick) {
	c := a.(*core)
	c.wakeQueued = false
	c.waitRetry = false
	c.tick()
}

// outstandingWork counts cores that still owe work in the current phase
// — the watchdog's liveness signal.
func (sys *System) outstandingWork() int {
	n := 0
	for _, c := range sys.cores {
		if !c.idle() {
			n++
		}
	}
	return n
}

// phase runs every core for n accesses and blocks until all are idle.
func (sys *System) phase(n int) error {
	for _, c := range sys.cores {
		c.beginPhase(n)
	}
	for _, c := range sys.cores {
		c.tick()
	}
	done := func() bool {
		for _, c := range sys.cores {
			if !c.idle() {
				return false
			}
		}
		return true
	}
	abort := func() error { return sys.tripError("phase aborted") }
	for i := 0; i < 1000; i++ {
		sys.sim.RunUntil(done)
		if sys.wd.Tripped() {
			return abort()
		}
		if done() {
			return nil
		}
		// Only daemon events remain (refresh-driven flush drains);
		// advance across a few refresh intervals and retry.
		sys.sim.Run(sys.sim.Now() + sim.NS(8000))
		if sys.wd.Tripped() {
			return abort()
		}
		if sys.sim.Pending() == 0 {
			break
		}
	}
	if !done() {
		if sys.wd != nil {
			sys.wd.TripDrained(sys.outstandingWork())
			return abort()
		}
		return fmt.Errorf("system: phase deadlocked at %v: %s", sys.sim.Now(), sys.describeStall())
	}
	return nil
}

// tripError wraps the watchdog's structured *sim.TripError into a run
// error. The message carries the full diagnostic dump (the CLIs print
// it), while errors.As recovers the TripError so a programmatic caller —
// a service failing a job — can take the one-line reason and file the
// diagnostics where they belong instead of echoing them.
func (sys *System) tripError(what string) error {
	return fmt.Errorf("system: %s at %v: %w\n%s", what, sys.sim.Now(), sys.wd.Err(), sys.wd.Report())
}

func (sys *System) describeStall() string {
	s := ""
	for _, c := range sys.cores {
		if !c.idle() {
			s += fmt.Sprintf("[core %d: exec %d/%d outstanding %d stalled %v] ",
				c.id, c.executed, c.target, c.outstanding, c.waitRetry)
		}
	}
	return s
}

// Run executes prewarm and warmup, then the measured phase, and collects
// results.
func (sys *System) Run() (*Result, error) {
	if !sys.prewarmed {
		sys.prewarm()
	}
	if sys.cfg.WarmupPerCore > 0 {
		if err := sys.phase(sys.cfg.WarmupPerCore); err != nil {
			return nil, err
		}
	}
	sys.ctl.ResetStats()
	if o := sys.obs; o != nil {
		o.ResetJourneys()
	}
	start := sys.sim.Now()
	for _, c := range sys.cores {
		c.misses = 0
	}
	if err := sys.phase(sys.cfg.RequestsPerCore); err != nil {
		return nil, err
	}
	runtime := sys.sim.Now() - start

	res := &Result{
		Design:   sys.cfg.Cache.Design,
		Workload: sys.cfg.Workload.Name,
		Runtime:  runtime,
		Accesses: uint64(sys.cfg.Cores * sys.cfg.RequestsPerCore),
		Cache:    *sys.ctl.Stats(),
		MM:       *sys.mm.Stats(),
	}
	var misses uint64
	for _, c := range sys.cores {
		misses += c.misses
	}
	res.L2MissRate = float64(misses) / float64(res.Accesses)
	res.CacheOccupancy, res.CacheDirty = sys.ctl.Occupancy()
	act := sys.ctl.DeviceActivity()
	res.CacheActivates, res.CacheRowHits = act.Activates, act.RowHits
	sys.ctl.FinalizeMeters()
	cm, mmM := sys.ctl.Meters()
	if cm != nil {
		res.Energy.Cache = cm.Render(runtime)
	}
	res.Energy.Main = mmM.Render(runtime)
	if err := sys.drainResidual(); err != nil {
		return nil, err
	}
	return res, nil
}

// drainResidual empties the controller's background work after the
// measured phase. Cores going idle ends a phase, but dirty victims can
// still sit in the flush buffers waiting for an opportunistic drain that
// will never come once demand traffic stops — with no demand events left
// the kernel goes quiet and the entries strand (whether any remain at
// the final request's completion depends on the workload stream, so a
// stream change can surface it). The result snapshot is taken before
// this runs: the measured window covers exactly RequestsPerCore accesses
// either way, and the trailing write-back drain happens off the books,
// as it does in a real machine.
func (sys *System) drainResidual() error {
	if sys.ctl.Pending() == 0 {
		return nil
	}
	sys.ctl.DrainResidual()
	for i := 0; i < 256 && sys.ctl.Pending() > 0; i++ {
		sys.sim.Run(sys.sim.Now() + sim.NS(8000))
		if sys.wd != nil && sys.wd.Tripped() {
			return sys.tripError("residual drain aborted")
		}
	}
	if n := sys.ctl.Pending(); n > 0 {
		return fmt.Errorf("system: %d transactions still pending after residual drain at %v: %s",
			n, sys.sim.Now(), sys.ctl.DebugState())
	}
	return nil
}

// Run builds and runs a system in one call.
func Run(cfg Config) (*Result, error) {
	sys, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return sys.Run()
}
