package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader. Upstream analysis drivers lean on golang.org/x/tools/go/
// packages; this one asks the go command directly: a single
// `go list -e -export -deps -json` invocation yields every package
// matching the patterns plus the full dependency closure with compiled
// export data (from the build cache), and go/importer's gc importer
// reads that export data through a lookup callback. Only the matched
// packages themselves are parsed and type-checked from source — imports,
// including sibling packages in this module, resolve through export
// data, which keeps a whole-tree run in the couple-of-seconds range the
// single-core CI budget demands.

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Allow is the parsed //tdlint:allow index for the package's files.
	Allow *AllowIndex
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
	DepsErrors []struct{ Err string }
}

// goList runs `go list -e -export -deps -json` in dir over patterns.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,GoFiles,Standard,DepOnly,Error,DepsErrors",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ListExports returns import path → export-data file for patterns and
// their whole dependency closure. Used by the analysistest harness to
// resolve fixture packages' standard-library imports.
func ListExports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves imports from gc
// export-data files. Paths missing from exports fail, except "unsafe",
// which the gc importer resolves itself.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Load type-checks every non-test package matching patterns (go list
// syntax, e.g. "./...") under dir and returns them in go list order.
// Parse or type errors in any matched package fail the whole load: the
// analyzers' results are only meaningful on a tree that compiles.
func Load(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*Package
	var loadErrs []error
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err))
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		parseOK := true
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				loadErrs = append(loadErrs, err)
				parseOK = false
				continue
			}
			files = append(files, f)
		}
		if !parseOK {
			continue
		}
		info := NewInfo()
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			loadErrs = append(loadErrs, fmt.Errorf("%s: %w", p.ImportPath, errors.Join(typeErrs...)))
			continue
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
			Allow:      BuildAllowIndex(fset, files),
		})
	}
	if len(loadErrs) > 0 {
		return out, errors.Join(loadErrs...)
	}
	return out, nil
}
