// Package analysistest runs an analyzer over GOPATH-style fixture
// packages and checks its diagnostics against in-source expectations,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <dir>/src/<importpath>/. A line expecting one or
// more diagnostics carries a trailing comment of Go string literals,
// each a regexp the diagnostic message must match:
//
//	rand.Intn(6) // want `math/rand global`
//
// Every diagnostic must be matched by a want on its line and every want
// must be matched by a diagnostic; //tdlint:allow filtering is applied
// before matching, so fixtures exercise the escape hatch by carrying an
// allow comment and no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tdram/internal/analysis"
)

// Run applies analyzer a to each fixture package (by import path,
// relative to dir/src) and reports expectation mismatches on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	env, err := envFor(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, path := range pkgs {
		runOne(t, env, a, path)
	}
}

// Findings applies analyzer a to one fixture package and returns the
// findings after //tdlint:allow filtering, without matching want
// expectations. Seeded-mutation tests use it: copy real source into a
// fixture, delete one load-bearing line, and assert the analyzer
// notices.
func Findings(t *testing.T, dir string, a *analysis.Analyzer, path string) []analysis.Finding {
	t.Helper()
	env, err := envFor(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	tpkg, files, info, err := env.check(path)
	if err != nil {
		t.Fatalf("%v", err)
	}
	env.memo[path] = tpkg
	pkg := &analysis.Package{
		ImportPath: path,
		Dir:        filepath.Join(env.src, path),
		Fset:       env.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Allow:      analysis.BuildAllowIndex(env.fset, files),
	}
	findings, err := pkg.Run(a)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, path, err)
	}
	return findings
}

// TestData returns the canonical fixture root for the caller's package:
// the testdata directory next to the test source.
func TestData() string {
	d, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return d
}

// env caches per-fixture-root state: the FileSet shared by every package
// checked under that root, the importer, and checked-package memos.
type env struct {
	src  string // <dir>/src
	fset *token.FileSet
	std  types.Importer
	memo map[string]*types.Package
}

var (
	envMu   sync.Mutex
	envMemo = make(map[string]*env)
)

func envFor(dir string) (*env, error) {
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envMemo[dir]; ok {
		return e, nil
	}
	src := filepath.Join(dir, "src")
	ext, err := externalImports(src)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	e := &env{src: src, fset: fset, memo: make(map[string]*types.Package)}
	if len(ext) > 0 {
		exports, err := analysis.ListExports(dir, ext...)
		if err != nil {
			return nil, err
		}
		e.std = analysis.ExportImporter(fset, exports)
	}
	envMemo[dir] = e
	return e, nil
}

// externalImports scans every fixture file under src and returns the
// imports that do not resolve to fixture packages — the set whose export
// data must come from the go command.
func externalImports(src string) ([]string, error) {
	seen := make(map[string]bool)
	var ext []string
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			if fi, err := os.Stat(filepath.Join(src, p)); err == nil && fi.IsDir() {
				continue // fixture-local package
			}
			ext = append(ext, p)
		}
		return nil
	})
	sort.Strings(ext)
	return ext, err
}

// Import resolves fixture-local packages from source and everything else
// through export data, memoizing both.
func (e *env) Import(path string) (*types.Package, error) {
	if pkg, ok := e.memo[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(e.src, path)
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		pkg, _, _, err := e.check(path)
		if err != nil {
			return nil, err
		}
		e.memo[path] = pkg
		return pkg, nil
	}
	if e.std == nil {
		return nil, fmt.Errorf("analysistest: no importer for %q", path)
	}
	return e.std.Import(path)
}

// check parses and type-checks fixture package path with full info.
func (e *env) check(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(e.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(e.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	info := analysis.NewInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: e,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(path, e.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, nil, nil, fmt.Errorf("analysistest: type-checking %s: %v", path, typeErrs)
	}
	return pkg, files, info, nil
}

func runOne(t *testing.T, e *env, a *analysis.Analyzer, path string) {
	t.Helper()
	tpkg, files, info, err := e.check(path)
	if err != nil {
		t.Errorf("%v", err)
		return
	}
	e.memo[path] = tpkg

	pkg := &analysis.Package{
		ImportPath: path,
		Dir:        filepath.Join(e.src, path),
		Fset:       e.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Allow:      analysis.BuildAllowIndex(e.fset, files),
	}
	findings, err := pkg.Run(a)
	if err != nil {
		t.Errorf("analysistest: running %s on %s: %v", a.Name, path, err)
		return
	}
	wants := collectWants(t, e.fset, files)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// A want is one expected-diagnostic pattern at a file:line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants extracts `// want "re" ...` expectations from comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitLiterals(strings.TrimPrefix(text, "want ")) {
					s, err := strconv.Unquote(lit)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						continue
					}
					re, err := regexp.Compile(s)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, s, err)
						continue
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitLiterals splits a space-separated sequence of Go string literals
// ("..." or `...`), tolerating spaces inside the literals.
func splitLiterals(s string) []string {
	var lits []string
	for i := 0; i < len(s); {
		switch s[i] {
		case ' ', '\t':
			i++
		case '"', '`':
			q := s[i]
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' && q == '"' {
					j += 2
					continue
				}
				if s[j] == q {
					break
				}
				j++
			}
			if j >= len(s) {
				lits = append(lits, s[i:])
				return lits
			}
			lits = append(lits, s[i:j+1])
			i = j + 1
		default:
			// Not a literal: stop (trailing prose after wants).
			return lits
		}
	}
	return lits
}
