// Package poollife defines an Analyzer that checks the lifecycle of
// freelist-pooled records: no use after release, and no pooled pointer
// escaping into longer-lived state without a generation tag.
//
// The hot paths pool their per-event records (dramcache's retry and
// writeback events, backing's memory requests, mem's Journey records)
// on intrusive freelists: a struct T with a "next *T" link field,
// pushed back by a put/free/release method or by a direct assignment to
// a free/pool-named field. That convention is also how this analyzer
// recognizes a pooled type — no annotation needed.
//
// Two hazards are flagged:
//
//   - Use after release: a read or write of a pooled record after the
//     statement that returned it to the freelist, within the same
//     statement list. The next Get may hand the same memory to an
//     unrelated request; the write corrupts it silently and
//     deterministically-wrongly. Reassigning the variable from the
//     pool again ends the taint.
//
//   - Untagged escape: a pooled pointer stored into a field, a slice
//     (append), an indexed element, or passed to a Schedule* call,
//     when the record type carries no generation field (gen,
//     generation, id, or seq). The stored reference can outlive the
//     record's lease; a generation tag checked at use is the pooled
//     idiom that makes such references safe (see dramcache's retryEv).
//
// //tdlint:allow poollife documents the deliberate exceptions — e.g. a
// record type whose single outstanding reference is the scheduled
// event that will release it.
package poollife

import (
	"go/ast"
	"go/types"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poollife",
	Doc: "check pooled-record lifecycles: no use after release, no untagged escape\n\n" +
		"A pooled type is a struct with an intrusive freelist link (next *T). After\n" +
		"a record is released (put/free/release/recycle call, or assignment to a\n" +
		"free/pool-named field) it must not be touched; pooled pointers stored into\n" +
		"longer-lived structures or Schedule* calls need a generation field.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkReleases(pass, fn.Body)
			checkEscapes(pass, fn.Body)
		}
	}
	return nil, nil
}

// pooledType returns the named struct type behind t when t is a pointer
// to a freelist-pooled struct: one with a "next" field of its own
// pointer type and no matching "prev". The singly-linked shape is what
// distinguishes an intrusive freelist from a doubly-linked container
// node (container/list.Element has next AND prev and is not a pool).
func pooledType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	selfLink := func(name string) bool {
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() != name {
				continue
			}
			if fp, ok := f.Type().Underlying().(*types.Pointer); ok {
				if fn, ok := fp.Elem().(*types.Named); ok && fn.Obj() == named.Obj() {
					return true
				}
			}
		}
		return false
	}
	if !selfLink("next") || selfLink("prev") {
		return nil
	}
	return named
}

// genTagged reports whether the pooled struct carries a generation
// field — the tag that makes an outstanding reference checkable.
func genTagged(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		switch strings.ToLower(st.Field(i).Name()) {
		case "gen", "generation", "id", "seq":
			return true
		}
	}
	return false
}

// freeish matches the freelist-head naming convention.
func freeish(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "free") || strings.Contains(l, "pool")
}

// releaseName matches the conventional names of functions that return a
// record to its pool.
func releaseName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range []string{"put", "free", "release", "recycle"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

// checkReleases walks every statement list in body and, for each
// statement that releases a pooled variable, flags any use of that
// variable in the statements that follow it.
func checkReleases(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			for _, v := range releasedVars(pass, stmt) {
				flagUseAfter(pass, v, list[i+1:])
			}
		}
		return true
	})
}

// releasedVars returns the pooled variables that stmt returns to a
// freelist: arguments of a put/free/release/recycle call, or the value
// assigned to a free/pool-named field of pointer type.
func releasedVars(pass *analysis.Pass, stmt ast.Stmt) []*types.Var {
	var out []*types.Var
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
		if fn == nil || !releaseName(fn.Name()) {
			return nil
		}
		for _, arg := range call.Args {
			if v := pooledIdent(pass, arg); v != nil {
				out = append(out, v)
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			if len(s.Rhs) != len(s.Lhs) {
				break
			}
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok || !freeish(sel.Sel.Name) {
				continue
			}
			if v := pooledIdent(pass, s.Rhs[i]); v != nil {
				out = append(out, v)
			}
		}
	}
	return out
}

// pooledIdent returns the variable behind e when e is a plain
// identifier of pooled-pointer type.
func pooledIdent(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || pooledType(v.Type()) == nil {
		return nil
	}
	return v
}

// flagUseAfter reports the first use of v in rest, stopping early if v
// is reassigned (the variable then names a fresh record).
func flagUseAfter(pass *analysis.Pass, v *types.Var, rest []ast.Stmt) {
	for _, stmt := range rest {
		if reassigns(pass, stmt, v) {
			return
		}
		var use *ast.Ident
		ast.Inspect(stmt, func(n ast.Node) bool {
			if use != nil {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == v {
				use = id
			}
			return true
		})
		if use != nil {
			pass.Reportf(use.Pos(), "pooled record %s is used after being released to its freelist", v.Name())
			return
		}
	}
}

// reassigns reports whether stmt assigns a new value to v itself (not
// to a field of it).
func reassigns(pass *analysis.Pass, stmt ast.Stmt, v *types.Var) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == v || pass.TypesInfo.Defs[id] == v {
				return true
			}
		}
	}
	return false
}

// checkEscapes flags pooled pointers stored into longer-lived
// structures — fields, slice appends, indexed elements, Schedule*
// calls — when the record type has no generation tag.
func checkEscapes(pass *analysis.Pass, body *ast.BlockStmt) {
	report := func(pos ast.Node, named *types.Named, how string) {
		if genTagged(named) {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos: pos.Pos(),
			Message: "pooled *" + named.Obj().Name() + " " + how +
				" without a generation tag; a stale reference may touch a recycled record",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "add a gen/seq field to " + named.Obj().Name() + " and check it at use, or //tdlint:allow poollife with the ownership argument",
			}},
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				named := pooledType(pass.TypesInfo.TypeOf(n.Rhs[i]))
				if named == nil {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					// Freelist heads and the intrusive link itself are the
					// pool's own plumbing, not escapes.
					if freeish(l.Sel.Name) {
						continue
					}
					if l.Sel.Name == "next" && pooledType(pass.TypesInfo.TypeOf(l.X)) != nil {
						continue
					}
					if s := pass.TypesInfo.Selections[l]; s != nil && s.Kind() == types.FieldVal {
						report(n.Rhs[i], named, "stored into field "+l.Sel.Name)
					}
				case *ast.IndexExpr:
					report(n.Rhs[i], named, "stored into an element")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin && id.Name == "append" {
					for _, arg := range n.Args[1:] {
						if named := pooledType(pass.TypesInfo.TypeOf(arg)); named != nil {
							report(arg, named, "appended to a slice")
						}
					}
					return true
				}
			}
			if fn := analysis.FuncOf(pass.TypesInfo, n.Fun); fn != nil && strings.HasPrefix(fn.Name(), "Schedule") {
				for _, arg := range n.Args {
					if named := pooledType(pass.TypesInfo.TypeOf(arg)); named != nil {
						report(arg, named, "passed to "+fn.Name())
					}
				}
			}
		}
		return true
	})
}
