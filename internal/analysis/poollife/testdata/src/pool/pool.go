// Package pool exercises poollife: use-after-release of freelist
// records and untagged escapes of pooled pointers.
package pool

// sched stands in for sim.Simulator's scheduling surface.
type sched struct{}

func (s *sched) ScheduleArgAt(at int, fn func(any), arg any) {}

// rec is a pooled record: the intrusive next link marks it.
type rec struct {
	val  int
	next *rec
}

// taggedRec carries a generation field, so outstanding references are
// checkable and escapes are fine.
type taggedRec struct {
	val  int
	gen  uint64
	next *taggedRec
}

// plain has no freelist link: not pooled, never flagged.
type plain struct{ val int }

// node is doubly-linked — a container shape, not a freelist. Never
// flagged (container/list.Element must not look pooled).
type node struct {
	val  int
	next *node
	prev *node
}

type owner struct {
	free  *rec
	tfree *taggedRec
	q     []*rec
	tq    []*taggedRec
	slot  *rec
	s     sched
}

func (o *owner) get() *rec {
	r := o.free
	if r == nil {
		return &rec{}
	}
	o.free = r.next
	r.val = 0
	return r
}

func (o *owner) put(r *rec) {
	r.next = o.free
	o.free = r
}

// ---- firing: reads and writes after the release call ----

func (o *owner) useAfterPut(r *rec) int {
	o.put(r)
	return r.val // want `pooled record r is used after being released`
}

func (o *owner) writeAfterPush(r *rec) {
	r.next = o.free
	o.free = r
	r.val = 1 // want `pooled record r is used after being released`
}

// ---- passing: save what you need before releasing ----

func (o *owner) saveThenPut(r *rec) int {
	v := r.val
	o.put(r)
	return v
}

// ---- passing: reacquiring from the pool ends the taint ----

func (o *owner) recycleTwice() {
	r := o.get()
	o.put(r)
	r = o.get()
	r.val = 2
	o.put(r)
}

// ---- passing: release as the last statement of a loop body ----

func (o *owner) drainLoop() {
	for i := 0; i < 4; i++ {
		r := o.get()
		r.val = i
		o.put(r)
	}
}

// ---- firing: untagged escapes ----

func (o *owner) stash(r *rec) {
	o.slot = r // want `pooled \*rec stored into field slot without a generation tag`
}

func (o *owner) enqueue(r *rec) {
	o.q = append(o.q, r) // want `pooled \*rec appended to a slice without a generation tag`
}

func (o *owner) schedule(r *rec) {
	o.s.ScheduleArgAt(1, nil, r) // want `pooled \*rec passed to ScheduleArgAt without a generation tag`
}

// ---- passing: the same escapes with a generation-tagged record ----

func (o *owner) scheduleTagged(r *taggedRec) {
	o.tq = append(o.tq, r)
	o.s.ScheduleArgAt(1, nil, r)
}

// ---- passing: non-pooled types escape freely ----

func (o *owner) schedulePlain(p *plain, ps []*plain) {
	o.s.ScheduleArgAt(1, nil, p)
	_ = append(ps, p)
}

func storeNode(m map[int]*node, n *node) {
	m[n.val] = n
	n.next = nil
}

// ---- passing: the pool's own plumbing is not an escape ----

func (o *owner) plumbing(r *rec) *rec {
	r.next = o.free // intrusive link
	o.free = r      // freelist head
	return nil
}

// ---- allow: a documented single-owner escape ----

func (o *owner) allowedEscape(r *rec) {
	//tdlint:allow poollife — the scheduled event is the only live reference and releases on fire
	o.s.ScheduleArgAt(1, nil, r)
}
