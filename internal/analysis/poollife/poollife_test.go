package poollife_test

import (
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/poollife"
)

func TestPoolLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), poollife.Analyzer, "pool")
}
