package analysis

import (
	"go/types"
	"runtime"
	"sort"
	"testing"
)

// hotStructs names the per-event and per-transaction records the
// simulator allocates (or pools) on its hottest paths. Each must pack
// with no interior padding: its laid-out size has to equal the best
// achievable by reordering its fields. A field added in the wrong spot
// grows every queued event/transaction and fails this test.
var hotStructs = map[string][]string{
	"./internal/sim":       {"event"},
	"./internal/dramcache": {"txn"},
	"./internal/backing":   {"mmReq"},
}

func TestHotStructsPacked(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks three packages; skipped in -short runs")
	}
	patterns := make([]string, 0, len(hotStructs))
	for p := range hotStructs {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	pkgs, err := Load("../..", patterns...)
	if err != nil {
		t.Fatal(err)
	}
	byBase := make(map[string]*Package)
	for _, p := range pkgs {
		byBase[PathBase(p.ImportPath)] = p
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		t.Fatalf("no gc sizes for GOARCH %s", runtime.GOARCH)
	}
	for _, pat := range patterns {
		pkg := byBase[PathBase(pat)]
		if pkg == nil {
			t.Fatalf("%s: package not loaded", pat)
		}
		for _, name := range hotStructs[pat] {
			obj := pkg.Types.Scope().Lookup(name)
			if obj == nil {
				t.Errorf("%s: struct %s not found (renamed? update hotStructs)", pat, name)
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				t.Errorf("%s.%s: not a struct", pat, name)
				continue
			}
			actual := sizes.Sizeof(obj.Type())
			best := packedSize(st, sizes)
			if actual != best {
				t.Errorf("%s.%s is %d bytes laid out but packs to %d: reorder its fields (wide fields first, flag bytes last)",
					pat, name, actual, best)
			}
		}
	}
}

// packedSize computes the struct size achievable by sorting fields by
// decreasing alignment, which eliminates all interior padding.
func packedSize(st *types.Struct, sizes types.Sizes) int64 {
	fields := make([]types.Type, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i).Type()
	}
	sort.SliceStable(fields, func(i, j int) bool {
		return sizes.Alignof(fields[i]) > sizes.Alignof(fields[j])
	})
	var off, maxAlign int64 = 0, 1
	for _, ft := range fields {
		a := sizes.Alignof(ft)
		if a > maxAlign {
			maxAlign = a
		}
		if r := off % a; r != 0 {
			off += a - r
		}
		off += sizes.Sizeof(ft)
	}
	if r := off % maxAlign; r != 0 {
		off += maxAlign - r
	}
	return off
}
