package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The in-source escape hatch. A comment of the form
//
//	//tdlint:allow schedcapture — cold setup path, runs once per config
//	//tdlint:allow determinism,hookguard — reason covering both
//
// suppresses findings from the named analyzers on the comment's own line
// and on the line directly below it (so it works both as a trailing
// comment and as a directive above the flagged statement). The reason
// text after the dash is mandatory: an allow without a justification is
// itself reported by the driver as a malformed directive.

const allowPrefix = "tdlint:allow"

// allowEntry is one analyzer name granted at one directive. The used
// flag is set when the entry actually suppresses a finding, so the
// driver can report directives that no longer suppress anything.
type allowEntry struct {
	name string
	pos  token.Position // the directive comment's position
	used bool
}

// AllowIndex records, per file and line, which analyzers are exempted.
type AllowIndex struct {
	// byLine maps filename → line → allow entries granted there.
	byLine map[string]map[int][]*allowEntry
	// Malformed lists tdlint:allow directives missing a name or reason;
	// the driver reports these as findings so broken exemptions cannot
	// silently suppress nothing (or everything).
	Malformed []Finding
}

// allows reports whether analyzer name is exempted at pos, marking the
// matching entry as used.
func (ai *AllowIndex) allows(name string, pos token.Position) bool {
	if ai == nil || ai.byLine == nil {
		return false
	}
	lines := ai.byLine[pos.Filename]
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, e := range lines[l] {
			if e.name == name {
				e.used = true
				return true
			}
		}
	}
	return false
}

// Unused reports allow entries that suppressed nothing during the run.
// known is the set of analyzer names that actually ran: entries naming
// an analyzer outside that set are skipped (an -only run must not flag
// exemptions for analyzers it never executed), except that entries
// naming an analyzer unknown to the full registry are reported as
// typos. Call after Run; results are in directive order per file.
func (ai *AllowIndex) Unused(known map[string]bool) []Finding {
	if ai == nil {
		return nil
	}
	// Deterministic order: files, then lines, then entry order.
	files := make([]string, 0, len(ai.byLine))
	for f := range ai.byLine {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Finding
	for _, f := range files {
		lines := ai.byLine[f]
		nos := make([]int, 0, len(lines))
		for l := range lines {
			nos = append(nos, l)
		}
		sort.Ints(nos)
		for _, l := range nos {
			for _, e := range lines[l] {
				if e.used {
					continue
				}
				msg := "unused tdlint:allow " + e.name + ": suppresses no finding; delete the directive"
				if !known[e.name] {
					msg = "tdlint:allow names unknown analyzer " + e.name
				}
				out = append(out, Finding{Analyzer: "tdlint", Pos: e.pos, Message: msg})
			}
		}
	}
	return out
}

// BuildAllowIndex scans the comments of files for tdlint:allow
// directives. Directive comments must be line comments ("//..."); the
// gofmt convention for directives (no space after "//") is accepted as
// well as the spaced form.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	ai := &AllowIndex{byLine: make(map[string]map[int][]*allowEntry)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason := parseAllow(text)
				if len(names) == 0 || reason == "" {
					ai.Malformed = append(ai.Malformed, Finding{
						Analyzer: "tdlint",
						Pos:      pos,
						Message:  "malformed tdlint:allow directive: want //tdlint:allow <analyzer>[,<analyzer>...] — <reason>",
					})
					continue
				}
				m := ai.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]*allowEntry)
					ai.byLine[pos.Filename] = m
				}
				for _, n := range names {
					m[pos.Line] = append(m[pos.Line], &allowEntry{name: n, pos: pos})
				}
			}
		}
	}
	return ai
}

// parseAllow splits "tdlint:allow a,b — reason" into names and reason.
func parseAllow(text string) (names []string, reason string) {
	return SplitDirective(strings.TrimPrefix(text, allowPrefix))
}

// SplitDirective splits the payload of a tdlint directive — "a,b —
// reason" — into comma/space-separated names and the reason text. The
// separator may be an em dash, en dash, "--", or a single "-"
// surrounded by spaces. Shared by the allow index and by analyzers with
// their own directives (copydrift's //tdlint:shared).
func SplitDirective(rest string) (names []string, reason string) {
	rest = strings.TrimSpace(rest)
	namePart := rest
	for _, sep := range []string{"—", "–", " -- ", " - "} {
		if i := strings.Index(rest, sep); i >= 0 {
			namePart, reason = rest[:i], strings.TrimSpace(rest[i+len(sep):])
			break
		}
	}
	for _, n := range strings.FieldsFunc(namePart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, n)
	}
	return names, strings.TrimSpace(reason)
}
