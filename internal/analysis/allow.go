package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The in-source escape hatch. A comment of the form
//
//	//tdlint:allow schedcapture — cold setup path, runs once per config
//	//tdlint:allow determinism,hookguard — reason covering both
//
// suppresses findings from the named analyzers on the comment's own line
// and on the line directly below it (so it works both as a trailing
// comment and as a directive above the flagged statement). The reason
// text after the dash is mandatory: an allow without a justification is
// itself reported by the driver as a malformed directive.

const allowPrefix = "tdlint:allow"

// AllowIndex records, per file and line, which analyzers are exempted.
type AllowIndex struct {
	// byLine maps filename → line → analyzer names allowed there.
	byLine map[string]map[int][]string
	// Malformed lists tdlint:allow directives missing a name or reason;
	// the driver reports these as findings so broken exemptions cannot
	// silently suppress nothing (or everything).
	Malformed []Finding
}

// allows reports whether analyzer name is exempted at pos.
func (ai *AllowIndex) allows(name string, pos token.Position) bool {
	if ai == nil || ai.byLine == nil {
		return false
	}
	lines := ai.byLine[pos.Filename]
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, n := range lines[l] {
			if n == name {
				return true
			}
		}
	}
	return false
}

// BuildAllowIndex scans the comments of files for tdlint:allow
// directives. Directive comments must be line comments ("//..."); the
// gofmt convention for directives (no space after "//") is accepted as
// well as the spaced form.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	ai := &AllowIndex{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason := parseAllow(text)
				if len(names) == 0 || reason == "" {
					ai.Malformed = append(ai.Malformed, Finding{
						Analyzer: "tdlint",
						Pos:      pos,
						Message:  "malformed tdlint:allow directive: want //tdlint:allow <analyzer>[,<analyzer>...] — <reason>",
					})
					continue
				}
				m := ai.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ai.byLine[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], names...)
			}
		}
	}
	return ai
}

// parseAllow splits "tdlint:allow a,b — reason" into names and reason.
// The separator may be an em dash, en dash, "--", or a single "-"
// surrounded by spaces.
func parseAllow(text string) (names []string, reason string) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, allowPrefix))
	namePart := rest
	for _, sep := range []string{"—", "–", " -- ", " - "} {
		if i := strings.Index(rest, sep); i >= 0 {
			namePart, reason = rest[:i], strings.TrimSpace(rest[i+len(sep):])
			break
		}
	}
	for _, n := range strings.FieldsFunc(namePart, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		names = append(names, n)
	}
	return names, strings.TrimSpace(reason)
}
