// Package tickconv flags raw integer literals converted to sim.Tick
// outside the two places timing values are allowed to originate: the
// sim package itself (unit constants, parsing) and the DRAM timing
// tables in internal/dram/params.go.
//
// The paper's Table III parameters (tRCD, tHM_int, tBURST, ...) must
// flow through named parameters so that every design variant derives
// its timing from one audited table; a bare sim.Tick(1250) scattered in
// a controller silently forks the timing model. The literals 0 (zero
// initialization) and -1 (the conventional "unset time" sentinel) are
// exempt — they are not timing values.
package tickconv

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "tickconv",
	Doc: "flag raw integer literals converted to sim.Tick\n\n" +
		"Timing values must come from named parameters (internal/dram/params.go),\n" +
		"sim unit constants (sim.Nanosecond, ...) or sim.NS; 0 and -1 are exempt.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	if analysis.PathBase(pass.Pkg.Path()) == "sim" {
		return nil, nil
	}
	paramsFile := analysis.PathBase(pass.Pkg.Path()) == "dram"
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		if paramsFile && filepath.Base(pass.Fset.Position(f.Pos()).Filename) == "params.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() || !isSimTick(tv.Type) {
				return true
			}
			lit, neg := literalArg(call.Args[0])
			if lit == nil || lit.Kind != token.INT {
				return true
			}
			if lit.Value == "0" || (neg && lit.Value == "1") {
				return true // zero init and the -1 sentinel are not timing values
			}
			text := lit.Value
			if neg {
				text = "-" + text
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "raw integer literal " + text + " converted to sim.Tick: timing values " +
					"must flow from named parameters",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "use a parameter from internal/dram/params.go, sim.NS(...), or a multiple of sim.Nanosecond",
				}},
			})
			return true
		})
	}
	return nil, nil
}

// isSimTick reports whether t is the named type Tick from a package
// whose import-path base is "sim".
func isSimTick(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Tick" && obj.Pkg() != nil && analysis.PathBase(obj.Pkg().Path()) == "sim"
}

// literalArg unwraps parens and a single unary +/- around a basic
// literal, reporting whether the sign was negative.
func literalArg(e ast.Expr) (*ast.BasicLit, bool) {
	e = ast.Unparen(e)
	neg := false
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		neg = u.Op == token.SUB
		e = ast.Unparen(u.X)
	}
	lit, _ := e.(*ast.BasicLit)
	return lit, neg
}
