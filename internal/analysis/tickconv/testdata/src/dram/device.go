package dram

import "sim"

var rowCycle = sim.Tick(45000) // want `raw integer literal 45000 converted to sim\.Tick`

func next(t sim.Tick) sim.Tick {
	if t < 0 {
		t = sim.Tick(0) // zero initialization is exempt
	}
	return t + TRCD
}
