// The timing-parameter table: the one file outside sim where raw
// literal Tick conversions are the point.
package dram

import "sim"

var (
	TRCD   = sim.Tick(13750)
	TBURST = sim.Tick(2500)
)
