// Package sim is a fixture mirror of the kernel's Tick type. Raw
// literal conversions are allowed inside this package.
package sim

type Tick int64

const (
	Picosecond Tick = 1
	Nanosecond Tick = 1000
)

// NS converts nanoseconds to ticks; conversions here are exempt.
func NS(ns float64) Tick { return Tick(ns*float64(Nanosecond) + 0.5) }

var epoch = Tick(1000)
