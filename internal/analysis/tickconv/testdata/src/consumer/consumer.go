// Package consumer models controller code that must take its timing
// from named parameters rather than raw literals.
package consumer

import (
	"dram"
	"sim"
)

var unset = sim.Tick(-1) // the conventional "unset time" sentinel is exempt

func schedule(now sim.Tick) sim.Tick {
	d := sim.Tick(2500) // want `raw integer literal 2500 converted to sim\.Tick`
	_ = d

	e := sim.NS(2.5)         // blessed: unit-converting constructor
	f := 3 * sim.Nanosecond  // blessed: named unit constant
	g := dram.TRCD           // blessed: named parameter
	neg := sim.Tick(-812500) // want `raw integer literal -812500 converted to sim\.Tick`
	h := sim.Tick(7500)      //tdlint:allow tickconv — one-off ablation constant pending a params entry

	return now + e + f + g + h + neg
}
