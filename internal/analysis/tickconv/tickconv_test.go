package tickconv_test

import (
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/tickconv"
)

func TestTickConv(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), tickconv.Analyzer, "sim", "dram", "consumer")
}
