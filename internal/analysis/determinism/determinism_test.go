package determinism_test

import (
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), determinism.Analyzer, "determ")
}
