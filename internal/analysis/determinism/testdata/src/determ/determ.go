// Package determ exercises every determinism rule: wall-clock reads,
// global math/rand draws, and order-sensitive map-iteration sinks.
package determ

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the wall clock`
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func globalRand() int {
	r := rand.New(rand.NewSource(42)) // locally seeded generator: the fix, not the problem
	_ = r.Intn(6)
	return rand.Intn(6) // want `math/rand global Intn draws from the shared process-wide source`
}

// sortedKeys is the blessed idiom: the append target is sorted after
// the loop, so iteration order never escapes.
func sortedKeys(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func unsortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `appending to ks while ranging over a map without sorting afterwards`
	}
	return ks
}

func dumpCSV(w *csv.Writer, m map[string]string) {
	for k, v := range m {
		w.Write([]string{k, v}) // want `map iteration feeds a csv\.Writer`
	}
}

func dumpJSON(enc *json.Encoder, m map[string]int) {
	for k := range m {
		enc.Encode(k) // want `map iteration feeds a json\.Encoder`
	}
}

func buildString(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration feeds a strings\.Builder`
	}
	return b.String()
}

func printAll(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `map iteration feeds fmt\.Fprintf`
	}
}

func meanLatency(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation in map-iteration order`
	}
	return sum / float64(len(m))
}

// Integer accumulation is exact and order-free: not flagged.
func histTotal(m map[string]uint64) uint64 {
	var n uint64
	for _, v := range m {
		n += v
	}
	return n
}

// Indexed stores land each element in a key-determined slot: the
// result is independent of iteration order. Not flagged.
func indexedFill(m map[string]int, procs []string) {
	for name, pid := range m {
		procs[pid] = name
	}
}

// --- snapshot/fork capture shapes ---

// A warmup-image capture that serializes a scoring map into a slice
// inherits the map's randomized iteration order: runs forked from the
// image would diverge from a straight-line run.
func captureScores(m map[uint64]int) []uint64 {
	var lines []uint64
	for line := range m {
		lines = append(lines, line) // want `appending to lines while ranging over a map without sorting afterwards`
	}
	return lines
}

// Map-to-map cloning stores each entry in a key-determined slot, so
// iteration order never escapes: the snapshot deep-copy idiom is order-
// free and must not be flagged.
func cloneScores(m map[uint64]int) map[uint64]int {
	d := make(map[uint64]int, len(m))
	for k, v := range m {
		d[k] = v
	}
	return d
}

func allowedAppend(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) //tdlint:allow determinism — consumer treats the result as an unordered set
	}
	return ks
}

// --- service-layer shapes: content addressing and result documents ---

// A content address derived by feeding map entries to the hash input in
// iteration order changes between runs: the same request would hash to
// a different store key each time, turning every lookup into a miss.
func contentAddress(params map[string]string) []byte {
	var b bytes.Buffer
	for k, v := range params {
		b.WriteString(k) // want `map iteration feeds a bytes\.Buffer`
		b.WriteString(v) // want `map iteration feeds a bytes\.Buffer`
	}
	return b.Bytes()
}

// The canonical form: collect and sort the keys, then feed the hash
// input in that fixed order. Iteration order never reaches the bytes.
func canonicalAddress(params map[string]string) []byte {
	ks := make([]string, 0, len(params))
	for k := range params {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	var b bytes.Buffer
	for _, k := range ks {
		b.WriteString(k)
		b.WriteString(params[k])
	}
	return b.Bytes()
}

// A checkpoint's per-cell map flattened into a result document follows
// the sorted-keys idiom — append inside the range, sort after — so the
// stored document is byte-identical across runs. Must not be flagged.
func flattenCells(cells map[string]float64) []string {
	rows := make([]string, 0, len(cells))
	for key := range cells {
		rows = append(rows, key)
	}
	sort.Strings(rows)
	return rows
}
