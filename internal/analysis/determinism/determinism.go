// Package determinism flags sources of run-to-run nondeterminism in
// simulator packages: wall-clock reads, draws from math/rand's shared
// global source, and map iteration feeding order-sensitive sinks.
//
// The reproduction's comparisons (the paper's Figs. 5–7, the design
// matrix, the kernel goldens) are asserted bit-identical across designs
// and job counts; that only holds if no code path observes the host
// clock, the process-global RNG, or Go's randomized map iteration
// order. Map iteration is only flagged when the loop body emits to
// something order-sensitive — appending to a slice that is never
// sorted, writing through a CSV writer / JSON encoder / string builder
// / formatted-print call, or accumulating floats (whose addition is not
// associative, so map order changes the low bits). Appends whose target
// is later passed to sort or slices are the blessed sorted-keys idiom
// and are not flagged.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, global math/rand draws, and unsorted map iteration feeding output\n\n" +
		"Simulator packages must be bit-identical run to run: no time.Now/time.Since,\n" +
		"no math/rand global-source draws, and no map-range bodies that append without\n" +
		"a later sort, write to CSV/JSON/string-builder/print sinks, or accumulate floats.",
	Run: run,
}

// randConstructors are the math/rand entry points that build a locally
// seeded generator — the fix, not the problem.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// fmtPrinters are the fmt functions that emit formatted output.
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[rng.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRange(pass, fd.Body, rng)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// checkCall flags wall-clock reads and global-source math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	switch fn.Pkg().Path() {
	case "time":
		if sig != nil && sig.Recv() == nil && (fn.Name() == "Now" || fn.Name() == "Since") {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock and is nondeterministic across runs; simulated time must come from sim.Tick",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"math/rand global %s draws from the shared process-wide source; use a locally seeded generator (rand.New(rand.NewSource(seed)))",
				fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive sinks inside a range-over-map
// body. encl is the enclosing function body, scanned for the
// sorted-afterwards exemption.
func checkMapRange(pass *analysis.Pass, encl *ast.BlockStmt, rng *ast.RangeStmt) {
	// First pass: find `s = append(s, ...)` assignments so the append
	// can be tied to its destination variable (claimed appends are not
	// re-reported by the generic walk below).
	claimed := make(map[*ast.CallExpr]bool)
	type pendingAppend struct {
		target *types.Var
		pos    token.Pos
	}
	var appends []pendingAppend
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass.TypesInfo, call) {
				continue
			}
			claimed[call] = true
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := objOf(pass.TypesInfo, id).(*types.Var); ok {
					appends = append(appends, pendingAppend{target: v, pos: call.Pos()})
					continue
				}
			}
			// Append into something unnameable: cannot prove a later
			// sort, so flag it outright.
			reportAppend(pass, call.Pos(), "the result")
		}
		return true
	})
	for _, pa := range appends {
		if !sortedLater(pass.TypesInfo, encl, pa.target) {
			reportAppend(pass, pa.pos, pa.target.Name())
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkFloatAccum(pass, n)
		case *ast.CallExpr:
			if isBuiltinAppend(pass.TypesInfo, n) {
				if !claimed[n] {
					reportAppend(pass, n.Pos(), "the result")
				}
				return true
			}
			if sink := sinkName(pass.TypesInfo, n); sink != "" {
				pass.Reportf(n.Pos(),
					"map iteration feeds %s: iteration order is randomized, so the output is nondeterministic; iterate sorted keys instead",
					sink)
			}
		}
		return true
	})
}

func reportAppend(pass *analysis.Pass, pos token.Pos, target string) {
	pass.Reportf(pos,
		"appending to %s while ranging over a map without sorting afterwards: element order is randomized across runs; sort the slice or iterate sorted keys",
		target)
}

// checkFloatAccum flags compound floating-point accumulation, whose
// result depends on map iteration order (float addition is not
// associative).
func checkFloatAccum(pass *analysis.Pass, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	for _, lhs := range as.Lhs {
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			pass.Reportf(as.Pos(),
				"floating-point accumulation in map-iteration order is nondeterministic (float addition is not associative); iterate sorted keys or accumulate integers")
			return
		}
	}
}

// sinkName classifies a call as an order-sensitive output sink.
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := analysis.FuncOf(info, call.Fun)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	recvNamed := ""
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			recvNamed = named.Obj().Name()
		}
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "fmt":
		if recvNamed == "" && fmtPrinters[name] {
			return "fmt." + name
		}
	case "encoding/csv":
		if recvNamed == "Writer" && (name == "Write" || name == "WriteAll") {
			return "a csv.Writer"
		}
	case "encoding/json":
		if recvNamed == "Encoder" && name == "Encode" {
			return "a json.Encoder"
		}
	case "strings":
		if recvNamed == "Builder" && strings.HasPrefix(name, "Write") {
			return "a strings.Builder"
		}
	case "bytes":
		if recvNamed == "Buffer" && strings.HasPrefix(name, "Write") {
			return "a bytes.Buffer"
		}
	}
	return ""
}

// sortedLater reports whether v is passed (possibly nested in a
// conversion or address-of) to any sort or slices function somewhere in
// the enclosing function body — the sorted-keys idiom.
func sortedLater(info *types.Info, encl *ast.BlockStmt, v *types.Var) bool {
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncOf(info, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesVar(info, arg, v) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// usesVar reports whether expr references v anywhere.
func usesVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	used := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objOf(info, id) == v {
			used = true
			return false
		}
		return !used
	})
	return used
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// objOf resolves an identifier through both Uses and Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
