// Package analysis is a small, dependency-free static-analysis framework
// modeled on golang.org/x/tools/go/analysis. The container this repository
// builds in has no module proxy access and no vendored x/tools, so the
// subset of the upstream API that tdlint needs — Analyzer, Pass,
// Diagnostic, suggested fixes, and a package loader with full type
// information — is reimplemented here on the standard library alone
// (go/ast, go/types, go/importer, and the go command for package and
// export-data discovery). The analyzer sources are written against the
// upstream API shapes, so migrating to the real x/tools multichecker if
// the dependency ever becomes available is a mechanical import swap.
//
// Two conventions differ deliberately from upstream:
//
//   - Findings are suppressed with an in-source escape hatch,
//     "//tdlint:allow <analyzer> — <reason>", on the flagged line or the
//     line above it (see allow.go). Upstream has no equivalent; the
//     simulator's invariants want documented exemptions, not silence.
//   - Only non-test Go files are loaded and analyzed. The determinism,
//     hot-path, and hook invariants tdlint enforces apply to the
//     simulator proper; tests are free to use wall clocks, closures and
//     unsorted maps.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis: a named rule with documentation
// and a Run function applied once per loaded package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tdlint:allow comments. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail. The first line shows up in `tdlint -help`.
	Doc string

	// Run applies the analyzer to a package, reporting findings via
	// pass.Report / pass.Reportf. The any result exists for API symmetry
	// with upstream; tdlint's analyzers return nil.
	Run func(*Pass) (any, error)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The framework fills it in before Run
	// is invoked; analyzers never assign it.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// SuggestedFixes carries remediation hints. tdlint prints them as
	// indented follow-up lines; it does not rewrite source.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is a human-readable remediation hint.
type SuggestedFix struct {
	Message string
}

// A Finding is a Diagnostic resolved to a concrete position and tagged
// with the analyzer that produced it — the driver-facing result form.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies each analyzer to pkg, filters the findings through the
// package's //tdlint:allow index, and returns them sorted by position.
// An analyzer returning an error aborts the run.
func (pkg *Package) Run(analyzers ...*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if pkg.Allow.allows(a.Name, pos) {
				continue
			}
			f := Finding{Analyzer: a.Name, Pos: pos, Message: d.Message}
			for _, fix := range d.SuggestedFixes {
				f.Fixes = append(f.Fixes, fix.Message)
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// NewInfo returns a types.Info with every map analyzers rely on
// allocated. Shared by the loader and the analysistest harness so both
// populate identical type information.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
