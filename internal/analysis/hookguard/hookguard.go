// Package hookguard enforces the simulator's observe-hook pattern:
// every call through an observability or fault-injection hook field
// must be dominated by a nil check.
//
// Instrumented components hold hook fields — `obs *obs.Observer`,
// `fault *fault.Injector`, or a func-typed `OnX` callback field — that
// are nil when the subsystem is disabled, so the disabled hot path
// costs exactly one predictable branch. The analyzer flags calls
// through such fields (or through locals assigned from them) unless the
// call is guarded by one of the established shapes:
//
//	if c.obs != nil { c.obs.Inc(...) }                   // direct guard
//	o := cc.ctl.obs; if o == nil { return }; o.Inc(...)  // alias + early return
//	if in := c.fault; in != nil && in.DataBeat() ... {}  // guard conjunct
//	cb := m.OnReadFree; if cb != nil { cb() }            // func-field hook
//	if o.TraceEnabled() { ... }                          // nil-safe predicate
//
// The obs and fault packages themselves are exempt: their internals are
// the subsystem, not hook call sites.
package hookguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hookguard",
	Doc: "flag calls through obs/fault hook fields not dominated by a nil check\n\n" +
		"Calls through *obs.Observer / *fault.Injector struct fields, func-typed\n" +
		"OnX callback fields, or locals assigned from them must be guarded by a\n" +
		"nil check (direct, alias early-return, or condition conjunct).",
	Run: run,
}

// guardMethods are nil-safe boolean predicates whose truth implies the
// receiver is non-nil; a call guarded by one counts as checked.
var guardMethods = map[string]bool{
	"TraceEnabled":    true,
	"MetricsEnabled":  true,
	"Enabled":         true,
	"JourneysEnabled": true,
	"FlightEnabled":   true,
}

func run(pass *analysis.Pass) (any, error) {
	switch analysis.PathBase(pass.Pkg.Path()) {
	case "obs", "fault":
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	aliases := collectAliases(pass, fd.Body)
	analysis.WithStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		target, kind := hookCallTarget(pass, aliases, call)
		if target == "" || guarded(target, stack, call) {
			return true
		}
		if kind == funcHook {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "hook callback " + target + " invoked without a dominating nil check",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "guard the call: if " + target + " != nil { " + target + "(...) }",
				}},
			})
		} else {
			pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "call through hook field " + target + " is not dominated by a nil check (observe-hook pattern)",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "guard with if " + target + " != nil, or load into a local and early-return when nil",
				}},
			})
		}
		return true
	})
}

// hookKind classifies a hook expression.
type hookKind int

const (
	notHook  hookKind = iota
	ptrHook           // field of type *obs.Observer / *fault.Injector
	funcHook          // func-typed OnX callback field
)

// hookCallTarget returns the expression string that must be nil-checked
// for this call to conform, or "" if the call is not through a hook.
func hookCallTarget(pass *analysis.Pass, aliases map[*types.Var]hookKind, call *ast.CallExpr) (string, hookKind) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		// The callback field itself being called: m.OnReadFree().
		if kind := hookFieldKind(pass, fun); kind == funcHook {
			return types.ExprString(fun), funcHook
		}
		// A method call whose receiver is a hook pointer field or alias.
		// The nil-safe predicates are the entrance to the pattern (`if
		// o.TraceEnabled() { ... }`), not a violation.
		if guardMethods[fun.Sel.Name] {
			return "", notHook
		}
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			switch recv := ast.Unparen(fun.X).(type) {
			case *ast.SelectorExpr:
				if hookFieldKind(pass, recv) == ptrHook {
					return types.ExprString(recv), ptrHook
				}
			case *ast.Ident:
				if v, ok := objOf(pass.TypesInfo, recv).(*types.Var); ok && aliases[v] == ptrHook {
					return recv.Name, ptrHook
				}
			}
		}
	case *ast.Ident:
		// An aliased callback being called: cb().
		if v, ok := objOf(pass.TypesInfo, fun).(*types.Var); ok && aliases[v] == funcHook {
			return fun.Name, funcHook
		}
	}
	return "", notHook
}

// hookFieldKind reports whether sel selects a hook field: a struct
// field of type pointer-to-named-type from an obs or fault package, or
// a func-typed field whose name starts with "On".
func hookFieldKind(pass *analysis.Pass, sel *ast.SelectorExpr) hookKind {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return notHook
	}
	return hookTypeKind(s.Obj().Name(), s.Type())
}

func hookTypeKind(name string, t types.Type) hookKind {
	switch tt := types.Unalias(t).(type) {
	case *types.Pointer:
		if named, ok := types.Unalias(tt.Elem()).(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil {
				switch analysis.PathBase(pkg.Path()) {
				case "obs", "fault":
					return ptrHook
				case "mem":
					// Only the journey ledger is a hook in package mem;
					// matching every mem pointer would flag ordinary
					// *mem.Request fields.
					if named.Obj().Name() == "Journey" {
						return ptrHook
					}
				}
			}
		}
	case *types.Signature:
		if strings.HasPrefix(name, "On") {
			return funcHook
		}
	}
	return notHook
}

// collectAliases finds local variables every one of whose assignments
// loads a hook field; guarding such an alias is equivalent to guarding
// the field.
func collectAliases(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]hookKind {
	assigns := make(map[*types.Var][]hookKind)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, ok := objOf(pass.TypesInfo, id).(*types.Var)
		if !ok || v.IsField() || v.Parent() == pass.Pkg.Scope() {
			return
		}
		kind := notHook
		if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok {
			kind = hookFieldKind(pass, sel)
		}
		assigns[v] = append(assigns[v], kind)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	aliases := make(map[*types.Var]hookKind)
	for v, kinds := range assigns {
		kind := kinds[0]
		for _, k := range kinds[1:] {
			if k != kind {
				kind = notHook
			}
		}
		if kind != notHook {
			aliases[v] = kind
		}
	}
	return aliases
}

// guarded reports whether the call is dominated by a nil check on the
// expression rendered as target: an enclosing if/&& whose condition
// guarantees non-nil, an else branch of a nil test, or an earlier
// early-return nil guard in an enclosing block.
func guarded(target string, stack []ast.Node, call ast.Node) bool {
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.BinaryExpr:
			if p.Op == token.LAND && p.Y == child && guarantees(p.X, target) {
				return true
			}
			if p.Op == token.LOR && p.Y == child && nilImplies(p.X, target) {
				return true
			}
		case *ast.IfStmt:
			if p.Body == child && guarantees(p.Cond, target) {
				return true
			}
			if p.Else == child && nilImplies(p.Cond, target) {
				return true
			}
		case *ast.BlockStmt:
			if earlyReturnGuard(p.List, child, target) {
				return true
			}
		case *ast.CaseClause:
			if earlyReturnGuard(p.Body, child, target) {
				return true
			}
		case *ast.CommClause:
			if earlyReturnGuard(p.Body, child, target) {
				return true
			}
		}
		child = stack[i]
	}
	return false
}

// earlyReturnGuard scans the statements before the one containing the
// call for `if <nil-implying cond> { return/panic/continue/... }`.
func earlyReturnGuard(stmts []ast.Stmt, child ast.Node, target string) bool {
	for _, st := range stmts {
		if st == child {
			return false
		}
		if ifst, ok := st.(*ast.IfStmt); ok && ifst.Init == nil &&
			nilImplies(ifst.Cond, target) && analysis.Terminates(ifst.Body) {
			return true
		}
	}
	return false
}

// guarantees reports whether cond being true guarantees target != nil.
func guarantees(cond ast.Expr, target string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LAND {
			return guarantees(c.X, target) || guarantees(c.Y, target)
		}
		if c.Op == token.NEQ {
			return nilCompare(c, target)
		}
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
			return guardMethods[sel.Sel.Name] && types.ExprString(ast.Unparen(sel.X)) == target
		}
	}
	return false
}

// nilImplies reports whether target == nil guarantees cond is true —
// equivalently, cond being false guarantees target != nil.
func nilImplies(cond ast.Expr, target string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if c.Op == token.LOR {
			return nilImplies(c.X, target) || nilImplies(c.Y, target)
		}
		if c.Op == token.EQL {
			return nilCompare(c, target)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if call, ok := ast.Unparen(c.X).(*ast.CallExpr); ok {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					return guardMethods[sel.Sel.Name] && types.ExprString(ast.Unparen(sel.X)) == target
				}
			}
		}
	}
	return false
}

// nilCompare reports whether b compares target against nil.
func nilCompare(b *ast.BinaryExpr, target string) bool {
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNil(y) {
		return types.ExprString(x) == target
	}
	if isNil(x) {
		return types.ExprString(y) == target
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// objOf resolves an identifier through both Uses and Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
