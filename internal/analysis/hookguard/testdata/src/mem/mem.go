// Package mem is a fixture mirror of the request/journey types: the
// Journey ledger is a hook (nil when tracking is disabled), the Request
// that carries it is not.
package mem

type Journey struct{ n int }

func (j *Journey) Enter(p int) {
	if j == nil {
		return
	}
	j.n++
}

func (j *Journey) Span(p, d int) {
	if j == nil {
		return
	}
	j.n += d
}

type Request struct {
	Addr uint64
	J    *Journey
}

func (r *Request) Complete() {}
