// Package obs is a fixture mirror of the observability subsystem's
// nil-check hook pattern.
package obs

type Observer struct{ n int }

func (o *Observer) Inc(name string) {
	if o == nil {
		return
	}
	o.n++
}

func (o *Observer) Instant(name string) {
	if o == nil {
		return
	}
	o.n++
}

func (o *Observer) TraceEnabled() bool { return o != nil }

func (o *Observer) JourneysEnabled() bool { return o != nil }

func (o *Observer) FlightEnabled() bool { return o != nil }
