// Package fault is a fixture mirror of the fault-injection subsystem's
// nil-safe injector.
package fault

type Outcome int

const (
	None Outcome = iota
	Detected
)

type Injector struct{ n int }

func (in *Injector) DataBeat() Outcome {
	if in == nil {
		return None
	}
	return Detected
}

func (in *Injector) RetryBudget() int {
	if in == nil {
		return 0
	}
	return 3
}
