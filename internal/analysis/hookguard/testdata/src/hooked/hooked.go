// Package hooked exercises every guard shape hookguard accepts and the
// violations it must flag.
package hooked

import (
	"fault"
	"mem"
	"obs"
)

type buses struct {
	OnReadFree  func()
	OnWriteFree func()
}

type ctl struct {
	obs   *obs.Observer
	fault *fault.Injector
	mem   *buses
	req   *mem.Request
}

// --- accepted guard shapes ---

func (c *ctl) directGuard() {
	if c.obs != nil {
		c.obs.Inc("ok")
	}
}

func (c *ctl) aliasEarlyReturn() {
	o := c.obs
	if o == nil {
		return
	}
	o.Inc("ok")
	o.Instant("ok")
}

func (c *ctl) aliasEarlyReturnDisjunct(busy bool) {
	o := c.obs
	if o == nil || busy {
		return
	}
	o.Inc("ok")
}

func (c *ctl) conjunctGuard() bool {
	return c.fault != nil && c.fault.DataBeat() == fault.Detected
}

func (c *ctl) ifInitAliasGuard() bool {
	if in := c.fault; in != nil && in.DataBeat() == fault.Detected {
		return true
	}
	return false
}

func (c *ctl) elseBranch() {
	if c.obs == nil {
		return
	} else {
		c.obs.Inc("ok")
	}
}

func (c *ctl) predicateGuard() {
	// The nil-safe predicate is the entrance to the pattern; the calls
	// it dominates are guarded.
	if c.obs.TraceEnabled() {
		c.obs.Instant("ok")
	}
}

func (c *ctl) predicateEarlyReturn() {
	o := c.obs
	if !o.TraceEnabled() {
		return
	}
	o.Instant("ok")
}

func (c *ctl) funcFieldGuard() {
	if c.mem.OnReadFree != nil {
		c.mem.OnReadFree()
	}
	cb := c.mem.OnWriteFree
	if cb != nil {
		cb()
	}
}

func (c *ctl) funcFieldAliasSwitch(isRead bool) {
	cb := c.mem.OnWriteFree
	if isRead {
		cb = c.mem.OnReadFree
	}
	if cb != nil {
		cb()
	}
}

func (c *ctl) journeyGuard() {
	if j := c.req.J; j != nil {
		j.Enter(1)
		j.Span(2, 3)
	}
}

func (c *ctl) journeyEarlyReturn() {
	j := c.req.J
	if j == nil {
		return
	}
	j.Enter(1)
}

// Request itself is not a hook: only the Journey ledger it carries is.
func (c *ctl) requestNotHook() { c.req.Complete() }

func (c *ctl) journeysPredicate() {
	// The new nil-safe predicates admit their dominated calls.
	if c.obs.JourneysEnabled() {
		c.obs.Inc("ok")
	}
	if c.obs.FlightEnabled() {
		c.obs.Inc("ok")
	}
}

// --- violations ---

func (c *ctl) unguardedJourney() {
	c.req.J.Enter(1) // want `call through hook field c\.req\.J is not dominated by a nil check`
}

func (c *ctl) unguardedJourneyAlias() {
	j := c.req.J
	j.Span(1, 2) // want `call through hook field j is not dominated by a nil check`
}

func (c *ctl) unguardedDirect() {
	c.obs.Inc("bad") // want `call through hook field c\.obs is not dominated by a nil check`
}

func (c *ctl) unguardedChain() bool {
	return c.fault.RetryBudget() > 0 // want `call through hook field c\.fault is not dominated by a nil check`
}

func (c *ctl) unguardedAlias() {
	o := c.obs
	o.Inc("bad") // want `call through hook field o is not dominated by a nil check`
}

func (c *ctl) unguardedFuncField() {
	c.mem.OnWriteFree() // want `hook callback c\.mem\.OnWriteFree invoked without a dominating nil check`
}

func (c *ctl) unguardedFuncFieldAlias() {
	cb := c.mem.OnReadFree
	cb() // want `hook callback cb invoked without a dominating nil check`
}

func (c *ctl) wrongGuard(other *obs.Observer) {
	if other != nil {
		c.obs.Inc("bad") // want `call through hook field c\.obs is not dominated by a nil check`
	}
}

// --- snapshot/fork path ---

// Rebinding hook fields while cloning state is assignment, not
// invocation: a fork's new owner installs its own hooks, and the copy
// itself needs no guard.
func (c *ctl) cloneRebind(dst *ctl) {
	dst.obs = c.obs
	dst.mem.OnWriteFree = c.mem.OnWriteFree
}

// A restore that notifies subscribers must still guard the callback it
// just copied — having assigned the field does not prove it non-nil.
func (c *ctl) restoreAndNotify(src *ctl) {
	c.mem.OnReadFree = src.mem.OnReadFree
	if cb := c.mem.OnReadFree; cb != nil {
		cb()
	}
	c.mem.OnWriteFree = src.mem.OnWriteFree
	c.mem.OnWriteFree() // want `hook callback c\.mem\.OnWriteFree invoked without a dominating nil check`
}

// --- out of scope ---

type helper struct{ n int }

func (h *helper) bump() { h.n++ }

type plain struct{ h *helper }

// Non-hook field types are not the analyzer's business.
func (p *plain) ok() { p.h.bump() }

// Parameters are cold-path wiring, not hook fields: nil-safe methods
// may be called directly (the real SetObserver pattern).
func wire(o *obs.Observer) { o.Inc("setup") }

func (c *ctl) allowedCold() {
	c.obs.Inc("cold") //tdlint:allow hookguard — one-time setup, Observer methods are nil-safe
}

// --- service-layer shapes: streaming-progress callbacks ---

// A job-service options struct carries optional streaming callbacks;
// like the memory buses' OnX fields they are nil when streaming is off,
// so every invocation must be guarded.
type serveHooks struct {
	OnSample func(tick int64, values []float64)
	OnCell   func(key string)
}

type jobRunner struct{ hooks *serveHooks }

func (j *jobRunner) guardedSample(t int64, vs []float64) {
	if j.hooks.OnSample != nil {
		j.hooks.OnSample(t, vs)
	}
}

func (j *jobRunner) guardedCellAlias(key string) {
	cb := j.hooks.OnCell
	if cb == nil {
		return
	}
	cb(key)
}

func (j *jobRunner) unguardedSample(t int64, vs []float64) {
	j.hooks.OnSample(t, vs) // want `hook callback j\.hooks\.OnSample invoked without a dominating nil check`
}

func (j *jobRunner) unguardedCellAlias(key string) {
	cb := j.hooks.OnCell
	cb(key) // want `hook callback cb invoked without a dominating nil check`
}
