package hookguard_test

import (
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/hookguard"
)

func TestHookGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), hookguard.Analyzer, "hooked")
}
