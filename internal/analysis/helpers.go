package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PathBase returns the last element of an import path — the conventional
// way tdlint's analyzers recognize the simulator's packages, so the same
// rules bind both the real tree ("tdram/internal/sim") and the
// analysistest fixtures ("sim").
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The tdlint driver never loads test files, but analyzers check anyway
// so they behave identically under analysistest fixtures that include
// them.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// FuncOf returns the *types.Func a call's function expression resolves
// to (following method selections), or nil.
func FuncOf(info *types.Info, fun ast.Expr) *types.Func {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// WithStack walks root in depth-first order, invoking fn with each node
// and the stack of its ancestors (outermost first, excluding the node
// itself). Returning false skips the node's children.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// Terminates reports whether a block always transfers control out of the
// surrounding statement sequence: its last statement is a return, a
// branch (break/continue/goto), or a panic call.
func Terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
