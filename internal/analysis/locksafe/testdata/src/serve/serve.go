// Package serve exercises locksafe: mu-guarded fields accessed without
// the lock, the Locked-suffix and constructor exemptions, the closure
// boundary, and the atomic-field rule.
package serve

import (
	"sync"
	"sync/atomic"
)

type server struct {
	name string // before mu: not guarded
	busy atomic.Int64

	mu     sync.Mutex
	jobs   map[string]int
	closed bool
}

// ---- firing: unguarded reads and writes ----

func (s *server) badRead() int {
	return s.jobs["a"] // want `field server\.jobs is guarded by mu but accessed without holding it`
}

func (s *server) badWrite() {
	s.closed = true // want `field server\.closed is guarded by mu but accessed without holding it`
}

// ---- passing: plain Lock/Unlock bracketing ----

func (s *server) goodWrite(id string, n int) {
	s.mu.Lock()
	s.jobs[id] = n
	s.mu.Unlock()
}

// ---- passing: deferred unlock keeps the section open ----

func (s *server) goodDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	return len(s.jobs)
}

// ---- firing: access after the unlock ----

func (s *server) badAfterUnlock() int {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	return n + len(s.jobs) // want `field server\.jobs is guarded by mu`
}

// ---- passing: lock dominates nested statements ----

func (s *server) goodNested(ids []string) int {
	total := 0
	s.mu.Lock()
	for _, id := range ids {
		if n, ok := s.jobs[id]; ok {
			total += n
		}
	}
	s.mu.Unlock()
	return total
}

// ---- passing: the caller-holds convention ----

func (s *server) sizeLocked() int {
	return len(s.jobs)
}

func (s *server) viaLocked() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizeLocked()
}

// ---- passing: constructor exemption ----

func newServer() *server {
	s := &server{jobs: make(map[string]int)}
	s.jobs["seed"] = 1
	return s
}

// ---- firing: a closure is a goroutine boundary ----

func (s *server) badClosure() func() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() int {
		return len(s.jobs) // want `field server\.jobs is guarded by mu`
	}
}

// ---- passing: the closure takes its own lock ----

func (s *server) goodClosure() func() int {
	return func() int {
		s.mu.Lock()
		defer s.mu.Unlock()
		return len(s.jobs)
	}
}

// ---- atomic fields: methods only ----

func (s *server) goodAtomic() int64 {
	s.busy.Add(1)
	return s.busy.Load()
}

func (s *server) badAtomic() int64 {
	n := s.busy // want `atomic field server\.busy accessed non-atomically`
	return n.Load()
}

// ---- RWMutex: RLock counts as holding ----

type table struct {
	mu   sync.RWMutex
	rows map[string]string
}

func (t *table) get(k string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// ---- allow: a documented exemption ----

func (s *server) allowedPeek() bool {
	//tdlint:allow locksafe — racy read is acceptable for the debug endpoint
	return s.closed
}
