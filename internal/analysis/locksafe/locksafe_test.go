package locksafe_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/locksafe"
)

func TestLockSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), locksafe.Analyzer, "serve")
}

// TestSeededMutation proves the analyzer catches a dropped lock in real
// code: it copies internal/serve/drain.go (self-contained: one
// mutex-guarded struct, stdlib imports only) into a fixture, strips the
// d.mu.Lock() from note(), and asserts the now-unguarded field access
// is reported.
func TestSeededMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks real source")
	}
	const victim = "d.mu.Lock()"

	src, err := os.ReadFile(filepath.Join("..", "..", "serve", "drain.go"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(src), "\n")
	kept := lines[:0]
	mutated := false
	for _, l := range lines {
		if !mutated && strings.TrimSpace(l) == victim {
			mutated = true
			continue
		}
		kept = append(kept, l)
	}
	if !mutated {
		t.Fatalf("mutation target %q not found in internal/serve/drain.go", victim)
	}

	// The fixture root lives next to testdata/src so the go command
	// still resolves standard-library export data from inside the module.
	root, err := os.MkdirTemp(analysistest.TestData(), "tmp-mutation-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(root) })
	dst := filepath.Join(root, "src", "serve")
	if err := os.MkdirAll(dst, 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dst, "drain.go"), []byte(strings.Join(kept, "\n")), 0o666); err != nil {
		t.Fatal(err)
	}

	findings := analysistest.Findings(t, root, locksafe.Analyzer, "serve")
	found := false
	for _, f := range findings {
		if strings.Contains(f.Message, "guarded by mu but accessed without holding it") {
			found = true
		}
	}
	if !found {
		var b strings.Builder
		for _, f := range findings {
			b.WriteString("  " + f.String() + "\n")
		}
		t.Errorf("stripping %q from note() went undetected; findings:\n%s", victim, b.String())
	}
}
