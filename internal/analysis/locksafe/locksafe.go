// Package locksafe defines an Analyzer that enforces the serving
// tier's lock discipline: struct fields guarded by a mu sibling are
// only touched with the mutex held, and atomic fields are only touched
// atomically.
//
// Scope: packages whose import path ends in "serve" or "service" — the
// wall-clock, multi-goroutine side of the tree. The simulator proper is
// single-goroutine by construction and stays out of scope.
//
// The guarded-field convention mirrors the codebase's struct layout:
// in a struct with a field named mu of type sync.Mutex or sync.RWMutex,
// every field declared after mu is guarded by it. Fields that must not
// be guarded (immutable after construction, self-synchronized channels,
// atomics) belong above mu. A guarded field may be accessed:
//
//   - in a statement dominated by <base>.mu.Lock() or .RLock() in an
//     enclosing statement list, with no intervening .Unlock()/.RUnlock()
//     (a deferred Unlock does not end the critical section);
//   - in a function whose name ends in "Locked" (the caller-holds-mu
//     convention, e.g. publishLocked);
//   - on a value the function itself constructed from a composite
//     literal (the constructor exemption: nothing else can see it yet).
//
// A function literal is a boundary: it may run on another goroutine, so
// a lock held where the closure is created proves nothing where it
// runs — the closure needs its own Lock.
//
// Fields of sync/atomic types (atomic.Int64, atomic.Uint64, ...) are
// checked everywhere in the scoped packages: the only legal access is
// calling a method on the field (Load/Store/Add/...); copying it or
// taking its address defeats the atomicity.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "check mu-guarded and atomic struct fields in the serving packages\n\n" +
		"In internal/serve and internal/obs/service, fields declared after a mu\n" +
		"sync.Mutex sibling must be accessed under <base>.mu.Lock() domination,\n" +
		"from a *Locked function, or on a freshly-constructed value; sync/atomic\n" +
		"fields must only be accessed through their methods.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	base := analysis.PathBase(pass.Pkg.Path())
	if base != "serve" && base != "service" {
		return nil, nil
	}
	fields := classifyFields(pass)
	if len(fields.guarded) == 0 && len(fields.atomics) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn, fields)
		}
	}
	return nil, nil
}

// fieldSets classifies the package's struct fields: guarded holds the
// mu-guarded ones, atomics the sync/atomic-typed ones, and owner names
// the declaring struct for diagnostics.
type fieldSets struct {
	guarded map[*types.Var]bool
	atomics map[*types.Var]bool
	owner   map[*types.Var]string
}

// classifyFields scans the package's struct types and returns the
// mu-guarded fields (declared after a mu sync.Mutex/RWMutex sibling,
// atomics excluded) and the sync/atomic-typed fields.
func classifyFields(pass *analysis.Pass) fieldSets {
	fields := fieldSets{
		guarded: make(map[*types.Var]bool),
		atomics: make(map[*types.Var]bool),
		owner:   make(map[*types.Var]string),
	}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		muIndex := -1
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isAtomicType(f.Type()) {
				fields.atomics[f] = true
				fields.owner[f] = tn.Name()
				continue
			}
			if f.Name() == "mu" && isMutexType(f.Type()) {
				muIndex = i
				continue
			}
			if muIndex >= 0 {
				fields.guarded[f] = true
				fields.owner[f] = tn.Name()
			}
		}
	}
	return fields
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, fields fieldSets) {
	callerHolds := strings.HasSuffix(fn.Name.Name, "Locked")
	fresh := constructedVars(pass, fn.Body)

	analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		desc := fields.owner[f] + "." + f.Name()
		switch {
		case fields.atomics[f]:
			if !isMethodReceiver(sel, stack) {
				pass.Reportf(sel.Sel.Pos(), "atomic field %s accessed non-atomically; use its Load/Store/Add methods", desc)
			}
		case fields.guarded[f]:
			if callerHolds || isFresh(pass, sel.X, fresh) {
				return true
			}
			if !lockHeld(pass, sel, stack) {
				pass.Report(analysis.Diagnostic{
					Pos:     sel.Sel.Pos(),
					Message: "field " + desc + " is guarded by mu but accessed without holding it",
					SuggestedFixes: []analysis.SuggestedFix{{
						Message: "lock " + types.ExprString(sel.X) + ".mu around the access, move the access into a *Locked helper, or move the field above mu if it is self-synchronized",
					}},
				})
			}
		}
		return true
	})
}

// constructedVars returns the variables the function initializes from a
// composite literal — values no other goroutine can reach yet.
func constructedVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	fromLit := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
			e = ast.Unparen(u.X)
		}
		_, ok := e.(*ast.CompositeLit)
		return ok
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !fromLit(n.Rhs[i]) {
					continue
				}
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					fresh[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				if i < len(n.Values) && fromLit(n.Values[i]) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

// isFresh reports whether the access base is a constructor-exempt
// variable.
func isFresh(pass *analysis.Pass, base ast.Expr, fresh map[types.Object]bool) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	return fresh[pass.TypesInfo.Uses[id]]
}

// isMethodReceiver reports whether sel is immediately used as the
// receiver of a method call: parent is a SelectorExpr selecting the
// method, grandparent the call.
func isMethodReceiver(sel *ast.SelectorExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-1].(*ast.SelectorExpr)
	if !ok || parent.X != sel {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	return ok && call.Fun == parent
}

// lockHeld reports whether the access is dominated by
// <base>.mu.Lock()/.RLock() with no intervening Unlock. It scans each
// enclosing statement list linearly over the statements preceding the
// access; a function literal on the way up is a boundary (the closure
// may run on another goroutine).
func lockHeld(pass *analysis.Pass, sel *ast.SelectorExpr, stack []ast.Node) bool {
	baseStr := types.ExprString(ast.Unparen(sel.X))
	child := ast.Node(sel)
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			if held, known := scanList(a.List, child, baseStr); known {
				return held
			}
		case *ast.CaseClause:
			if held, known := scanList(a.Body, child, baseStr); known {
				return held
			}
		case *ast.CommClause:
			if held, known := scanList(a.Body, child, baseStr); known {
				return held
			}
		}
		child = stack[i]
	}
	return false
}

// scanList scans the statements of one list that precede the one
// containing child, tracking the last Lock/Unlock on base's mu. known
// is false when the list says nothing about the lock.
func scanList(list []ast.Stmt, child ast.Node, baseStr string) (held, known bool) {
	for _, stmt := range list {
		if stmt == child {
			break
		}
		switch op := muCallIn(stmt, baseStr); op {
		case "Lock", "RLock":
			held, known = true, true
		case "Unlock", "RUnlock":
			held, known = false, true
		}
	}
	return held, known
}

// muCallIn returns the mutex method name when stmt is exactly
// <base>.mu.<op>() for the given base. Deferred unlocks do not end the
// critical section and are ignored.
func muCallIn(stmt ast.Stmt, baseStr string) string {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return ""
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	m, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch m.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	mu, ok := ast.Unparen(m.X).(*ast.SelectorExpr)
	if !ok || mu.Sel.Name != "mu" {
		return ""
	}
	if types.ExprString(ast.Unparen(mu.X)) != baseStr {
		return ""
	}
	return m.Sel.Name
}
