package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
	}{
		{"tdlint:allow schedcapture — cold setup path", []string{"schedcapture"}, "cold setup path"},
		{"tdlint:allow determinism,hookguard — covers both", []string{"determinism", "hookguard"}, "covers both"},
		{"tdlint:allow tickconv -- ascii dashes work too", []string{"tickconv"}, "ascii dashes work too"},
		{"tdlint:allow tickconv - single dash works", []string{"tickconv"}, "single dash works"},
		{"tdlint:allow hookguard", []string{"hookguard"}, ""}, // missing reason → malformed
		{"tdlint:allow — reason but no analyzer", nil, "reason but no analyzer"},
	}
	for _, c := range cases {
		names, reason := parseAllow(c.text)
		if len(names) != len(c.names) {
			t.Errorf("parseAllow(%q) names = %v, want %v", c.text, names, c.names)
			continue
		}
		for i := range names {
			if names[i] != c.names[i] {
				t.Errorf("parseAllow(%q) names = %v, want %v", c.text, names, c.names)
			}
		}
		if reason != c.reason {
			t.Errorf("parseAllow(%q) reason = %q, want %q", c.text, reason, c.reason)
		}
	}
}

const allowSrc = `package p

//tdlint:allow determinism — directive above the flagged line
var a = 1

var b = 2 //tdlint:allow hookguard,tickconv — trailing directive

//tdlint:allow schedcapture
var c = 3
`

func TestAllowIndex(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ai := BuildAllowIndex(fset, []*ast.File{f})

	check := func(name string, line int, want bool) {
		t.Helper()
		got := ai.allows(name, token.Position{Filename: "p.go", Line: line})
		if got != want {
			t.Errorf("allows(%s, line %d) = %v, want %v", name, line, got, want)
		}
	}
	check("determinism", 3, true)  // the directive's own line
	check("determinism", 4, true)  // the line below
	check("determinism", 5, false) // two lines below: out of range
	check("hookguard", 6, true)
	check("tickconv", 6, true)
	check("schedcapture", 6, false) // not named on that line

	// The reason-less directive is rejected: recorded as malformed,
	// suppressing nothing.
	check("schedcapture", 9, false)
	if len(ai.Malformed) != 1 {
		t.Fatalf("got %d malformed directives, want 1", len(ai.Malformed))
	}
	if ai.Malformed[0].Pos.Line != 8 {
		t.Errorf("malformed directive reported at line %d, want 8", ai.Malformed[0].Pos.Line)
	}
}
