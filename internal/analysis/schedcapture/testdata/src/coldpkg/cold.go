// Package coldpkg is not on the hot-package list: capturing closures
// are fine here.
package coldpkg

import "sim"

type runner struct {
	s *sim.Simulator
	n int
}

func (r *runner) setup(delay sim.Tick) {
	t := r.n
	r.s.Schedule(delay, func() { r.n = t }) // cold package: not flagged
}
