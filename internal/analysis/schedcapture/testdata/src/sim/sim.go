// Package sim is a fixture mirror of the real event kernel's Schedule
// API surface; the analyzer matches it by import-path base.
package sim

type Tick int64

type Simulator struct{}

func (s *Simulator) Schedule(delay Tick, fn func())       { fn() }
func (s *Simulator) ScheduleAt(when Tick, fn func())      { fn() }
func (s *Simulator) ScheduleDaemon(delay Tick, fn func()) { fn() }

func (s *Simulator) ScheduleArg(delay Tick, fn func(any, Tick), arg any)       { fn(arg, delay) }
func (s *Simulator) ScheduleArgAt(when Tick, fn func(any, Tick), arg any)      { fn(arg, when) }
func (s *Simulator) ScheduleDaemonArg(delay Tick, fn func(any, Tick), arg any) { fn(arg, delay) }
