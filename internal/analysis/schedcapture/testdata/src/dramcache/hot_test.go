// Test files are exempt even inside hot packages.
package dramcache

import "sim"

func (c *ctl) demandForTest(delay sim.Tick) {
	t := c.n
	c.s.Schedule(delay, func() { c.n = t }) // capture in a _test.go file: not flagged
}
