// Package dramcache is a hot-package fixture: capturing Schedule
// callbacks here must be flagged.
package dramcache

import "sim"

var pending int

type ctl struct {
	s *sim.Simulator
	n int
}

// runTxn is the blessed prebound-callback form.
func runTxn(a any, now sim.Tick) { a.(*ctl).n++ }

func (c *ctl) demand(delay sim.Tick) {
	t := c.n
	c.s.Schedule(delay, func() { c.n = t })        // want `sim\.Schedule callback captures c, t: closure allocates per event on a hot path`
	c.s.ScheduleAt(delay, func() { _ = t })        // want `sim\.ScheduleAt callback captures t`
	c.s.ScheduleDaemon(delay, func() { c.tick() }) // want `sim\.ScheduleDaemon callback captures c`

	// A literal that only touches package-level state compiles to a
	// static function: no per-event allocation, not flagged.
	c.s.Schedule(delay, func() { pending++ })

	// The typed-argument variants are the fix.
	c.s.ScheduleArg(delay, runTxn, c)
	c.s.ScheduleDaemonArg(delay, runTxn, c)

	//tdlint:allow schedcapture — cold setup path, runs once per configuration
	c.s.Schedule(delay, func() { c.n = 0 })
}

func (c *ctl) tick() {}
