// Package schedcapture flags event-kernel Schedule calls whose callback
// is a variable-capturing closure inside the simulator's hot packages.
//
// PR 4's allocation-free timing wheel only stays allocation-free if hot
// call sites use the typed-argument ScheduleArg/ScheduleArgAt/
// ScheduleDaemonArg variants with a prebound package-level function: a
// closure that captures local state forces a heap allocation per
// scheduled event, which is exactly the regression that cost the kernel
// its 8.5× win before the conversion. The analyzer encodes that
// convention: within the hot packages (dramcache, backing, system,
// dram, trace), sim.Schedule/ScheduleAt/ScheduleDaemon must not be
// handed a func literal that captures variables. Non-capturing literals
// compile to static functions and are fine; cold setup paths keep the
// closure form with a //tdlint:allow schedcapture annotation.
package schedcapture

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "schedcapture",
	Doc: "flag capturing-closure Schedule callbacks in hot packages\n\n" +
		"In dramcache, backing, system, dram and trace, callbacks passed to\n" +
		"sim.Schedule/ScheduleAt/ScheduleDaemon must not capture variables;\n" +
		"use the ScheduleArg variants with a prebound function instead.",
	Run: run,
}

// hotPackages are the packages whose Schedule sites sit on the
// simulation hot path (matched by import-path base).
var hotPackages = map[string]bool{
	"dramcache": true,
	"backing":   true,
	"system":    true,
	"dram":      true,
	"trace":     true,
}

// argVariant maps each closure-based Schedule entry point to its
// typed-argument replacement.
var argVariant = map[string]string{
	"Schedule":       "ScheduleArg",
	"ScheduleAt":     "ScheduleArgAt",
	"ScheduleDaemon": "ScheduleDaemonArg",
}

func run(pass *analysis.Pass) (any, error) {
	if !hotPackages[analysis.PathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			variant, ok := argVariant[sel.Sel.Name]
			if !ok || len(call.Args) < 2 {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call.Fun)
			if fn == nil || fn.Pkg() == nil || analysis.PathBase(fn.Pkg().Path()) != "sim" {
				return true
			}
			lit, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			caps := captured(pass.TypesInfo, pass.Pkg, lit)
			if len(caps) == 0 {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Args[1].Pos(),
				Message: "sim." + sel.Sel.Name + " callback captures " + strings.Join(caps, ", ") +
					": closure allocates per event on a hot path",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "use sim." + variant + " with a package-level func(any, sim.Tick) and the captured state as arg",
				}},
			})
			return true
		})
	}
	return nil, nil
}

// captured returns the names of variables the func literal closes over:
// non-field variables declared in an enclosing function scope (package-
// level variables and the literal's own parameters/locals are free).
func captured(info *types.Info, pkg *types.Package, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}
