package schedcapture_test

import (
	"testing"

	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/schedcapture"
)

func TestSchedCapture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), schedcapture.Analyzer, "dramcache", "coldpkg")
}
