package copydrift_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdram/internal/analysis"
	"tdram/internal/analysis/analysistest"
	"tdram/internal/analysis/copydrift"
)

func TestCopyDrift(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), copydrift.Analyzer, "snap")
}

// TestDirectiveHygiene checks that broken directives are findings, not
// silent no-ops. These diagnostics land on the directive comments
// themselves, so they are asserted by content rather than // want.
func TestDirectiveHygiene(t *testing.T) {
	findings := analysistest.Findings(t, analysistest.TestData(), copydrift.Analyzer, "snapbad")
	wants := []string{
		"tdlint:shared on orphan.fn, but orphan has no //tdlint:copier function",
		"malformed tdlint:shared directive",
		"tdlint:shared names unknown field nosuchfield of hasBad",
		"tdlint:copier names notAType, which is not a type in this package",
		"tdlint:copier names scalar, which is not a struct type",
		"malformed tdlint:copier directive",
	}
	for _, want := range wants {
		if !hasFinding(findings, want) {
			t.Errorf("missing diagnostic containing %q in:\n%s", want, render(findings))
		}
	}
	if len(findings) != len(wants) {
		t.Errorf("got %d findings, want %d:\n%s", len(findings), len(wants), render(findings))
	}
}

// TestSeededMutation proves the analyzer catches real drift: it copies
// the real internal/sim sources (directives included) into a fixture,
// checks they are clean, then deletes the one line of copyWheel that
// copies the consume head and asserts the omission is reported.
func TestSeededMutation(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks a real package")
	}
	const victim = "dst.head = src.head"

	// The fixture root lives next to testdata/src so the go command
	// still resolves standard-library export data from inside the
	// module.
	root, err := os.MkdirTemp(analysistest.TestData(), "tmp-mutation-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(root) })
	dst := filepath.Join(root, "src", "sim")
	if err := os.MkdirAll(dst, 0o777); err != nil {
		t.Fatal(err)
	}

	simDir := filepath.Join("..", "..", "sim")
	entries, err := os.ReadDir(simDir)
	if err != nil {
		t.Fatal(err)
	}
	mutated := false
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(simDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if name == "snapshot.go" {
			lines := strings.Split(string(data), "\n")
			kept := lines[:0]
			for _, l := range lines {
				if strings.Contains(l, victim) {
					mutated = true
					continue
				}
				kept = append(kept, l)
			}
			data = []byte(strings.Join(kept, "\n"))
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}
	if !mutated {
		t.Fatalf("mutation target %q not found in internal/sim/snapshot.go", victim)
	}

	findings := analysistest.Findings(t, root, copydrift.Analyzer, "sim")
	if !hasFinding(findings, "field wheel.head is not copied by designated copier copyWheel") {
		t.Errorf("deleting %q went undetected; findings:\n%s", victim, render(findings))
	}
}

func hasFinding(fs []analysis.Finding, substr string) bool {
	for _, f := range fs {
		if strings.Contains(f.Message, substr) {
			return true
		}
	}
	return false
}

func render(fs []analysis.Finding) string {
	var b strings.Builder
	for _, f := range fs {
		b.WriteString("  " + f.String() + "\n")
	}
	return b.String()
}
