// Package copydrift defines an Analyzer that proves snapshot/fork copy
// functions complete: every field of a copied struct is either covered
// by its designated copier or explicitly annotated as shared.
//
// The simulator's determinism story leans on deep-copy forking —
// sim.Snapshot/Restore, system.WarmupImage, the cache and workload
// Clone methods. Adding a field to one of those structs without
// updating its copier silently breaks bit-identical replay, and the
// goldens only catch it when the new field happens to perturb a
// measured number. This analyzer turns the omission into a lint error.
//
// Grammar. A function is designated as the copier for a struct type
// with a doc-comment directive:
//
//	//tdlint:copier wheel
//	func copyWheel(dst, src *wheel) { ... }
//
// A field that the copier deliberately aliases (callback pointers,
// environment handles) is annotated on its declaration — the field's
// line or the line above:
//
//	fn func(any, Tick) //tdlint:shared fn — callbacks are code+model state; see package comment
//
// The reason after the dash is mandatory, as with //tdlint:allow.
//
// Coverage is computed from the writes the copier performs:
//
//   - dst.f = <expr> covers f: shallowly when <expr> is the same field
//     of another value of the type, deeply otherwise (a call, an
//     allocation, an append).
//   - dst.f[i] = <expr> and &dst.f passed to a call cover f deeply
//     (per-element copy loops, fill-through-pointer helpers).
//   - T{f: v, ...} composite literals cover their keyed (or
//     positional) fields under the same shallow/deep rule.
//   - d := *src, *dst = *src, append(dst[:0], src...) over []T, and
//     copy(dst, src) over []T cover every field, shallowly.
//
// A field with no coverage and no annotation is reported. A field with
// only shallow coverage is reported when its type can share memory with
// the source (pointers, slices, maps, chans, funcs, interfaces —
// recursively through arrays and structs; strings are immutable and
// exempt). An annotation on a field the copier in fact deep-copies is
// reported as stale, so the exemptions rot loudly.
package copydrift

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"tdram/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "copydrift",
	Doc: "check that designated struct copiers cover every field\n\n" +
		"For each type named by a //tdlint:copier directive, every field must be\n" +
		"assigned or copied in the designated function(s), deep-copied if it can\n" +
		"share memory, or annotated //tdlint:shared <field> — <reason>.",
	Run: run,
}

const (
	copierPrefix = "tdlint:copier"
	sharedPrefix = "tdlint:shared"
)

// Coverage levels, ordered: a deep copy subsumes a shallow one.
const (
	covNone = iota
	covShallow
	covDeep
)

// sharedAnn is one //tdlint:shared directive on a struct field.
type sharedAnn struct {
	pos  token.Pos
	used bool
}

// target is one struct type with designated copiers.
type target struct {
	obj     *types.TypeName
	st      *types.Struct
	copiers []string       // function names, declaration order
	cover   map[string]int // field name → coverage level
}

func run(pass *analysis.Pass) (any, error) {
	// Pass 1: collect struct declarations, //tdlint:shared annotations,
	// and //tdlint:copier designations from every non-test file.
	targets := make(map[*types.TypeName]*target)
	shared := make(map[*types.TypeName]map[string]*sharedAnn)
	var copiers []*ast.FuncDecl // designated copier decls, with their types
	copierTypes := make(map[*ast.FuncDecl][]*types.TypeName)

	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					obj, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
					if obj == nil {
						continue
					}
					collectShared(pass, obj, st, shared)
				}
			case *ast.FuncDecl:
				names := directiveNames(d.Doc, copierPrefix)
				if names == nil {
					continue
				}
				if len(names) == 0 {
					pass.Reportf(d.Pos(), "malformed tdlint:copier directive: want //tdlint:copier <Type>[,<Type>...]")
					continue
				}
				var resolved []*types.TypeName
				for _, name := range names {
					tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName)
					if !ok {
						pass.Reportf(d.Pos(), "tdlint:copier names %s, which is not a type in this package", name)
						continue
					}
					st, ok := tn.Type().Underlying().(*types.Struct)
					if !ok {
						pass.Reportf(d.Pos(), "tdlint:copier names %s, which is not a struct type", name)
						continue
					}
					tgt := targets[tn]
					if tgt == nil {
						tgt = &target{obj: tn, st: st, cover: make(map[string]int)}
						targets[tn] = tgt
					}
					tgt.copiers = append(tgt.copiers, d.Name.Name)
					resolved = append(resolved, tn)
				}
				if len(resolved) > 0 {
					copiers = append(copiers, d)
					copierTypes[d] = resolved
				}
			}
		}
	}

	// Pass 2: compute each copier's field coverage for its target types.
	for _, fn := range copiers {
		for _, tn := range copierTypes[fn] {
			coverCopier(pass, fn, targets[tn])
		}
	}

	// Pass 3: report. Deterministic order: types by position.
	var tns []*types.TypeName
	for tn := range targets {
		tns = append(tns, tn)
	}
	for tn := range shared {
		if _, ok := targets[tn]; !ok {
			tns = append(tns, tn)
		}
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i].Pos() < tns[j].Pos() })

	for _, tn := range tns {
		tgt := targets[tn]
		anns := shared[tn]
		if tgt == nil {
			// Annotated fields on a type with no designated copier: the
			// annotation asserts nothing and will not rot loudly.
			for _, name := range sortedAnnNames(anns) {
				pass.Reportf(anns[name].pos, "tdlint:shared on %s.%s, but %s has no //tdlint:copier function", tn.Name(), name, tn.Name())
			}
			continue
		}
		who := strings.Join(tgt.copiers, ", ")
		for i := 0; i < tgt.st.NumFields(); i++ {
			f := tgt.st.Field(i)
			if f.Name() == "_" {
				continue
			}
			ann := anns[f.Name()]
			level := tgt.cover[f.Name()]
			switch {
			case ann != nil && level == covDeep:
				ann.used = true
				pass.Reportf(f.Pos(), "stale tdlint:shared: %s.%s is deep-copied by %s; delete the directive", tn.Name(), f.Name(), who)
			case ann != nil:
				ann.used = true
			case level == covNone:
				pass.Report(analysis.Diagnostic{
					Pos:     f.Pos(),
					Message: fmt.Sprintf("field %s.%s is not copied by designated copier %s", tn.Name(), f.Name(), who),
					SuggestedFixes: []analysis.SuggestedFix{{
						Message: fmt.Sprintf("copy %s in %s, or annotate the field //tdlint:shared %s — <reason>", f.Name(), who, f.Name()),
					}},
				})
			case level == covShallow && sharesMemory(f.Type(), nil):
				pass.Report(analysis.Diagnostic{
					Pos:     f.Pos(),
					Message: fmt.Sprintf("field %s.%s is shallow-copied by %s but its type %s can share memory with the source", tn.Name(), f.Name(), who, f.Type()),
					SuggestedFixes: []analysis.SuggestedFix{{
						Message: fmt.Sprintf("deep-copy %s, or annotate the field //tdlint:shared %s — <reason>", f.Name(), f.Name()),
					}},
				})
			}
		}
		// Annotations naming fields the struct does not have.
		for _, name := range sortedAnnNames(anns) {
			if ann := anns[name]; !ann.used {
				if fieldIndex(tgt.st, name) < 0 {
					pass.Reportf(ann.pos, "tdlint:shared names unknown field %s of %s", name, tn.Name())
				}
			}
		}
	}
	return nil, nil
}

// collectShared records //tdlint:shared annotations from a struct's
// field doc and trailing comments.
func collectShared(pass *analysis.Pass, obj *types.TypeName, st *ast.StructType, shared map[*types.TypeName]map[string]*sharedAnn) {
	record := func(cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, sharedPrefix) {
				continue
			}
			names, reason := analysis.SplitDirective(strings.TrimPrefix(text, sharedPrefix))
			if len(names) == 0 || reason == "" {
				pass.Reportf(c.Pos(), "malformed tdlint:shared directive: want //tdlint:shared <field>[,<field>...] — <reason>")
				continue
			}
			m := shared[obj]
			if m == nil {
				m = make(map[string]*sharedAnn)
				shared[obj] = m
			}
			for _, n := range names {
				if _, dup := m[n]; dup {
					pass.Reportf(c.Pos(), "duplicate tdlint:shared for field %s of %s", n, obj.Name())
					continue
				}
				m[n] = &sharedAnn{pos: c.Pos()}
			}
		}
	}
	for _, field := range st.Fields.List {
		record(field.Doc)
		record(field.Comment)
	}
}

// directiveNames extracts the names from a doc-comment directive line
// with the given prefix. It returns nil when the doc has no such
// directive, and an empty (non-nil) slice when the directive is present
// but names nothing. Indented lines are skipped: a directive quoted in
// prose (as in this package's own documentation) is not a designation.
func directiveNames(doc *ast.CommentGroup, prefix string) []string {
	if doc == nil {
		return nil
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		trimmed := strings.TrimSpace(rest)
		if !strings.HasPrefix(trimmed, prefix) || strings.HasPrefix(rest, "//\t") || strings.HasPrefix(rest, "// \t") {
			continue
		}
		names, _ := analysis.SplitDirective(strings.TrimPrefix(trimmed, prefix))
		if names == nil {
			names = []string{}
		}
		return names
	}
	return nil
}

// coverCopier walks one copier's body and raises tgt.cover for every
// field write it performs.
func coverCopier(pass *analysis.Pass, fn *ast.FuncDecl, tgt *target) {
	if fn.Body == nil {
		return
	}
	T := tgt.obj.Type()

	isT := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.Identical(t, T)
	}
	typeOf := func(e ast.Expr) types.Type { return pass.TypesInfo.TypeOf(e) }

	raise := func(name string, level int) {
		if tgt.cover[name] < level {
			tgt.cover[name] = level
		}
	}
	raiseAll := func(level int) {
		for i := 0; i < tgt.st.NumFields(); i++ {
			raise(tgt.st.Field(i).Name(), level)
		}
	}
	// valueLevel classifies the copied value: reading the same field of
	// another value of the type is a shallow copy; anything else (a
	// call, a fresh allocation, arithmetic) counts as deep.
	valueLevel := func(name string, rhs ast.Expr) int {
		if rhs == nil {
			return covDeep
		}
		if sel, ok := ast.Unparen(rhs).(*ast.SelectorExpr); ok && sel.Sel.Name == name && isT(typeOf(sel.X)) {
			return covShallow
		}
		return covDeep
	}
	// fieldOf returns the field name when e is a selection of a field of
	// T (through a value or pointer).
	fieldOf := func(e ast.Expr) (string, bool) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !isT(typeOf(sel.X)) {
			return "", false
		}
		if s := pass.TypesInfo.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
			return "", false
		}
		return sel.Sel.Name, true
	}
	coverWrite := func(lhs, rhs ast.Expr) {
		lhs = ast.Unparen(lhs)
		if name, ok := fieldOf(lhs); ok {
			raise(name, valueLevel(name, rhs))
			return
		}
		switch l := lhs.(type) {
		case *ast.IndexExpr:
			// dst.f[i] = ... — a per-element copy loop.
			if name, ok := fieldOf(l.X); ok {
				raise(name, covDeep)
			}
		case *ast.StarExpr:
			// *dst = *src — a whole-value copy through the pointer.
			if isT(typeOf(l.X)) {
				raiseAll(covShallow)
			}
		default:
			// d := *src (or d := src) — a whole-value copy into a local.
			if isT(typeOf(lhs)) && rhs != nil && isT(typeOf(rhs)) {
				switch ast.Unparen(rhs).(type) {
				case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr:
					raiseAll(covShallow)
				}
			}
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				coverWrite(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if len(n.Values) == len(n.Names) {
					rhs = n.Values[i]
				}
				coverWrite(name, rhs)
			}
		case *ast.CompositeLit:
			if !types.Identical(typeOf(n), T) {
				return true
			}
			for i, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						raise(key.Name, valueLevel(key.Name, kv.Value))
					}
					continue
				}
				if i < tgt.st.NumFields() {
					name := tgt.st.Field(i).Name()
					raise(name, valueLevel(name, elt))
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, builtin := pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
					switch id.Name {
					case "append":
						// append(dst[:0], src...) over []T replaces dst's
						// contents with a shallow copy of every element.
						if n.Ellipsis.IsValid() && len(n.Args) >= 2 && isSliceOfT(typeOf(n.Args[len(n.Args)-1]), T) {
							raiseAll(covShallow)
						}
					case "copy":
						if len(n.Args) == 2 && isSliceOfT(typeOf(n.Args[0]), T) {
							raiseAll(covShallow)
						}
					}
					return true
				}
			}
			// &dst.f passed to a call: the callee fills the field.
			for _, arg := range n.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
					if name, ok := fieldOf(u.X); ok {
						raise(name, covDeep)
					}
				}
			}
		}
		return true
	})
}

// isSliceOfT reports whether t is []T (elements by value).
func isSliceOfT(t types.Type, T types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && types.Identical(s.Elem(), T)
}

// sharesMemory reports whether a value of type t can alias memory with
// the value it was shallow-copied from: pointers, slices, maps, chans,
// funcs, and interfaces, recursively through arrays and structs.
// Strings are immutable and exempt.
func sharesMemory(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		if seen == nil {
			seen = make(map[types.Type]bool)
		}
		seen[t] = true
		return sharesMemory(u.Elem(), seen)
	case *types.Struct:
		if seen == nil {
			seen = make(map[types.Type]bool)
		}
		seen[t] = true
		for i := 0; i < u.NumFields(); i++ {
			if sharesMemory(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// fieldIndex returns the index of the named field in st, or -1.
func fieldIndex(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return i
		}
	}
	return -1
}

// sortedAnnNames returns the annotation map's keys in sorted order so
// diagnostics are deterministic.
func sortedAnnNames(anns map[string]*sharedAnn) []string {
	names := make([]string, 0, len(anns))
	for n := range anns {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
