// Package snap exercises copydrift: designated copiers must cover
// every field of their struct, deep-copying anything that can share
// memory unless the field carries a //tdlint:shared annotation.
package snap

// ---- passing: assignment-style copier covering every field ----

type good struct {
	n   int
	buf []byte
	fn  func() //tdlint:shared fn — callbacks are code, not state; shared by design
}

//tdlint:copier good
func copyGood(dst, src *good) {
	dst.n = src.n
	dst.buf = append(dst.buf[:0], src.buf...)
}

// ---- firing: a field the copier never touches ----

type missing struct {
	n   int
	buf []byte // want `field missing\.buf is not copied by designated copier copyMissing`
}

//tdlint:copier missing
func copyMissing(dst, src *missing) {
	dst.n = src.n
}

// ---- firing: shallow copy of a field that shares memory ----

type aliased struct {
	n int
	m map[int]int // want `field aliased\.m is shallow-copied by copyAliased but its type map\[int\]int can share memory`
}

//tdlint:copier aliased
func copyAliased(dst, src *aliased) {
	dst.n = src.n
	dst.m = src.m
}

// ---- whole-value copy: d := *src covers every field shallowly ----

type whole struct {
	n int
	p *int // want `field whole\.p is shallow-copied by cloneWhole but its type \*int can share memory`
}

//tdlint:copier whole
func cloneWhole(src *whole) *whole {
	d := *src
	return &d
}

type wholeFixed struct {
	n int
	p *int
}

//tdlint:copier wholeFixed
func cloneWholeFixed(src *wholeFixed) *wholeFixed {
	d := *src
	if src.p != nil {
		v := *src.p
		d.p = &v
	}
	return &d
}

// ---- composite-literal copier, deep via helper call and append ----

type built struct {
	a  int
	b  string
	cs []int
}

//tdlint:copier built
func build(src *built) *built {
	return &built{a: src.a, b: src.b, cs: append([]int(nil), src.cs...)}
}

// ---- slab-reusing slice copier: append(dst[:0], src...) over []T ----

type elem struct {
	when int
	fn   func() //tdlint:shared fn — event callbacks are shared, never copied
}

//tdlint:copier elem
func copyElems(dst, src []elem) []elem {
	return append(dst[:0], src...)
}

type elemBad struct {
	when int
	fn   func() // want `field elemBad\.fn is shallow-copied by copyElemsBad but its type func\(\) can share memory`
}

//tdlint:copier elemBad
func copyElemsBad(dst, src []elemBad) []elemBad {
	return append(dst[:0], src...)
}

// ---- fill-through-pointer: &dst.f as a call argument is a deep copy ----

type nested struct {
	a int
	w []int
}

//tdlint:copier nested
func snapNested(src *nested) *nested {
	d := &nested{a: src.a}
	fillInts(&d.w, src.w)
	return d
}

func fillInts(dst *[]int, src []int) {
	*dst = append((*dst)[:0], src...)
}

// ---- per-element loop: dst.f[i] = ... is a deep copy of f ----

type bucketed struct {
	n  int
	bs [4][]int
}

//tdlint:copier bucketed
func copyBucketed(dst, src *bucketed) {
	dst.n = src.n
	for i := range src.bs {
		dst.bs[i] = append(dst.bs[i][:0], src.bs[i]...)
	}
}

// ---- stale annotation: the copier deep-copies the field after all ----

type stale struct {
	n int
	//tdlint:shared buf — historical; the copy below postdates it
	buf []byte // want `stale tdlint:shared: stale\.buf is deep-copied by copyStale`
}

//tdlint:copier stale
func copyStale(dst, src *stale) {
	dst.n = src.n
	dst.buf = append([]byte(nil), src.buf...)
}

// ---- allow: the escape hatch suppresses a genuine finding ----

type allowed struct {
	n int
	//tdlint:allow copydrift — transitional: copier lands in the next change
	m map[int]int
}

//tdlint:copier allowed
func copyAllowed(dst, src *allowed) {
	dst.n = src.n
	dst.m = src.m
}
