// Package snapbad exercises copydrift's directive hygiene: malformed
// and misaimed //tdlint:copier and //tdlint:shared directives are
// findings themselves, not silent no-ops. The diagnostics land on the
// directive comments, so this package is checked by message content
// (analysistest.Findings) rather than // want comments.
package snapbad

type orphan struct {
	n int
	//tdlint:shared fn — annotated, but nothing is designated to copy this type
	fn func()
}

type hasBad struct {
	n int
	//tdlint:shared nosuchfield — names a field that does not exist
	m map[int]int
	//tdlint:shared m
	m2 map[int]int
}

//tdlint:copier hasBad
func copyHasBad(dst, src *hasBad) {
	dst.n = src.n
	dst.m = append0(src.m)
	dst.m2 = append0(src.m2)
}

func append0(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

//tdlint:copier notAType
func badTarget() {}

type scalar int

//tdlint:copier scalar
func badKind() {}

//tdlint:copier
func noName() {}
