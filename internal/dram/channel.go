package dram

import (
	"fmt"

	"tdram/internal/obs"
	"tdram/internal/sim"
)

// OpKind selects the command sequence an access issues on a channel.
type OpKind uint8

const (
	// OpRead is a close-page read access (ACT+RD+auto-PRE, or the
	// combined ActRd on tag-enhanced devices when Op.Tag is set).
	OpRead OpKind = iota
	// OpWrite is a close-page write access (ActWr when Op.Tag is set).
	OpWrite
	// OpProbe touches only the tag bank and the HM bus — the paper's
	// early tag probing (§III-E). Requires a tag-enhanced device.
	OpProbe
	// OpStreamRead occupies the DQ bus in the read direction without
	// touching any bank — draining the on-die flush/victim buffer to the
	// controller with explicit commands.
	OpStreamRead
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpProbe:
		return "probe"
	case OpStreamRead:
		return "stream"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op describes one access for Earliest/Commit.
type Op struct {
	Kind  OpKind
	Bank  int      // data bank (and paired tag bank); ignored by OpStreamRead
	Row   int      // row address; used by the open-page policy only
	Tag   bool     // also activate the tag bank and use the HM bus
	Burst sim.Tick // DQ occupancy; 0 means the device default (no DQ for OpProbe)
}

// Issue reports the committed timing of one access.
type Issue struct {
	At        sim.Tick // command time on the CA bus
	TagInt    sim.Tick // internal hit/miss known (gates column decode); 0 if no tag access
	HMAt      sim.Tick // hit/miss result at the controller on the HM bus; 0 if no tag access
	DataStart sim.Tick // first DQ tick; 0 if no data reservation
	DataEnd   sim.Tick // one past the last DQ tick; 0 if no data reservation
	BankFree  sim.Tick // when the data bank may be activated again; 0 for probes/streams
}

// ChannelStats counts device activity for reporting and the energy model.
type ChannelStats struct {
	Activates    uint64 // data-bank activations
	TagActivates uint64 // tag-bank activations (incl. probes)
	Probes       uint64
	Refreshes    uint64
	HMTransfers  uint64
	RowHits      uint64 // open-page policy: column ops to an open row
	Precharges   uint64 // open-page policy: explicit row-conflict precharges
	DQBusyTicks  uint64 // cumulative DQ-bus reservation, in ticks (utilization)
	HMBusyTicks  uint64 // cumulative HM-bus reservation, in ticks
}

// Channel is one independent channel of a device: its CA/DQ/HM buses and
// bank timing state. All methods must be called from the simulation
// goroutine.
type Channel struct {
	sim   *sim.Simulator
	p     *Params
	index int

	ca *sim.Timeline
	dq *DQBus
	hm *sim.Timeline

	bankNext   []sim.Tick // earliest next ACT per data bank
	tagNext    []sim.Tick // earliest next ACT per tag bank
	lastAct    sim.Tick   // tRRD reference
	lastTagAct sim.Tick   // tRRD_TAG reference
	// actWindow holds the last eight ACT times as a ring. The paper's
	// tXAW (Table III: 16 ns) is modeled as an eight-activate window, as
	// in gem5's HBM configurations: a four-activate window of 16 ns would
	// cap the channel at half its 32 GiB/s peak, which contradicts the
	// device's stated bandwidth.
	actWindow   [8]sim.Tick
	actWindowAt int

	lastCommit sim.Tick
	commits    uint64

	// open holds per-bank row-buffer state when the open-page policy is
	// enabled (see openpage.go); nil under close-page.
	open []openBank

	stats ChannelStats

	// obs is the observability hook; nil (the default) disables
	// instrumentation at the cost of one branch per commit.
	obs    *obs.Observer
	tracks channelTracks
	// flightUnit names this channel in flight-recorder command lines
	// ("tdram.ch0"); precomputed at SetObserver so the per-commit hook
	// never formats.
	flightUnit string

	// OnRefresh, when set, is invoked at the start of each refresh with
	// the window during which banks are unavailable but the DQ bus is
	// idle — the flush-buffer drain opportunity (§III-D2).
	OnRefresh func(start, end sim.Tick)
}

// NewChannel builds a channel for the given device parameters and starts
// its refresh schedule.
func NewChannel(s *sim.Simulator, p *Params, index int) *Channel {
	const distantPast = sim.Tick(-1) << 40
	c := &Channel{
		sim:        s,
		p:          p,
		index:      index,
		ca:         sim.NewTimeline(fmt.Sprintf("%s.ca%d", p.Name, index)),
		dq:         NewDQBus(p.TRTW, p.TWTR),
		hm:         sim.NewTimeline(fmt.Sprintf("%s.hm%d", p.Name, index)),
		bankNext:   make([]sim.Tick, p.Banks),
		tagNext:    make([]sim.Tick, p.Banks),
		lastAct:    distantPast,
		lastTagAct: distantPast,
	}
	for i := range c.actWindow {
		c.actWindow[i] = distantPast
	}
	if p.TREFI > 0 && p.TRFC > 0 {
		c.sim.ScheduleDaemonArg(p.TREFI, refreshEv, c)
	}
	return c
}

// Params exposes the device parameters.
func (c *Channel) Params() *Params { return c.p }

// Stats returns a copy of the activity counters.
func (c *Channel) Stats() ChannelStats { return c.stats }

// DQ exposes the data bus (for idle-slot inspection by controllers).
func (c *Channel) DQ() *DQBus { return c.dq }

// LastCommit reports the time of the most recent committed command
// (watchdog diagnostics: a stale value pinpoints a silent channel).
func (c *Channel) LastCommit() sim.Tick { return c.lastCommit }

// refresh performs an all-bank refresh and reschedules itself.
func (c *Channel) refresh() {
	now := c.sim.Now()
	end := now + c.p.TRFC
	for i := range c.bankNext {
		if c.bankNext[i] < end {
			c.bankNext[i] = end
		}
	}
	for i := range c.tagNext {
		if c.tagNext[i] < end {
			c.tagNext[i] = end
		}
	}
	c.refreshOpen(end)
	c.stats.Refreshes++
	if c.obs != nil {
		c.obs.Slice(c.tracks.refresh, "refresh", now, end)
	}
	if c.OnRefresh != nil {
		c.OnRefresh(now, end)
	}
	c.sim.ScheduleDaemonArg(c.p.TREFI, refreshEv, c)
}

// refreshEv dispatches the periodic refresh without allocating a
// method-value closure on every self-reschedule.
func refreshEv(a any, _ sim.Tick) { a.(*Channel).refresh() }

// burst returns the DQ occupancy for op.
func (c *Channel) burst(op Op) sim.Tick {
	if op.Kind == OpProbe {
		return 0
	}
	if op.Burst > 0 {
		return op.Burst
	}
	return c.p.TBURST
}

// dataOffset returns the fixed command-to-DQ offset for op, and the
// transfer direction.
func (c *Channel) dataOffset(op Op) (sim.Tick, Dir) {
	switch op.Kind {
	case OpWrite:
		return c.p.WriteDataOffset(), DirWrite
	case OpStreamRead:
		return 0, DirRead
	default:
		return c.p.ReadDataOffset(), DirRead
	}
}

// usesTag reports whether op touches the tag bank and HM bus.
func (c *Channel) usesTag(op Op) bool {
	return op.Kind == OpProbe || (op.Tag && c.p.HasTagBanks())
}

// fawBound returns the earliest ACT time satisfying the activate window.
func (c *Channel) fawBound() sim.Tick {
	if c.p.TFAW <= 0 {
		return 0
	}
	// The oldest tracked ACT bounds the next one.
	oldest := c.actWindow[c.actWindowAt]
	return oldest + c.p.TFAW
}

// Earliest computes the earliest command time >= after at which op can be
// issued with every resource available. It does not reserve anything.
func (c *Channel) Earliest(op Op, after sim.Tick) sim.Tick {
	if op.Kind == OpProbe && !c.p.HasTagBanks() {
		panic("dram: probe on device without tag banks")
	}
	if c.p.OpenPage && (op.Kind == OpRead || op.Kind == OpWrite) {
		return c.earliestOpen(op, after)
	}
	t := after
	burst := c.burst(op)
	off, dir := c.dataOffset(op)
	tag := c.usesTag(op)
	// Bank-state bounds are static lower bounds: the search below only
	// ever advances t, so once applied here they can never re-bind and
	// need not be rechecked inside the bus-convergence loop.
	if op.Kind == OpRead || op.Kind == OpWrite {
		if b := c.bankNext[op.Bank]; t < b {
			t = b
		}
		if b := c.lastAct + c.p.TRRD; t < b {
			t = b
		}
		if b := c.fawBound(); t < b {
			t = b
		}
	}
	var tagOff sim.Tick
	if tag {
		if b := c.tagNext[op.Bank]; t < b {
			t = b
		}
		if b := c.lastTagAct + c.p.TRRDTag; t < b {
			t = b
		}
		tagOff = c.p.TagInternalOffset()
	}
	for iter := 0; ; iter++ {
		if iter > 256 {
			panic(fmt.Sprintf("dram: %s: Earliest did not converge for %v", c.p.Name, op.Kind))
		}
		start := t
		// CA slot.
		if at := c.ca.FirstFree(t, c.p.TCMD); at > t {
			t = at
		}
		// DQ slot at fixed offset.
		if burst > 0 {
			if s := c.dq.FirstFree(t+off, burst, dir); s > t+off {
				t = s - off
			}
		}
		// HM slot.
		if tag {
			hmAt := t + tagOff
			if s := c.hm.FirstFree(hmAt, c.p.THMBus); s > hmAt {
				t += s - hmAt
			}
		}
		if t == start {
			return t
		}
	}
}

// Commit reserves all resources for op at command time at, which must be
// feasible (use Earliest first) and must not precede any earlier commit —
// controllers issue commands in simulation-time order.
func (c *Channel) Commit(op Op, at sim.Tick) Issue {
	if at < c.lastCommit {
		panic(fmt.Sprintf("dram: %s: commit at %v before previous commit %v", c.p.Name, at, c.lastCommit))
	}
	if got := c.Earliest(op, at); got != at {
		panic(fmt.Sprintf("dram: %s: commit %v at infeasible time %v (earliest %v)", c.p.Name, op.Kind, at, got))
	}
	c.lastCommit = at
	c.commits++
	c.ca.Release(at)
	c.dq.Release(at)
	c.hm.Release(at)

	if c.p.OpenPage && (op.Kind == OpRead || op.Kind == OpWrite) {
		iss := c.commitOpen(op, at)
		if c.obs != nil {
			c.observeCommit(op, iss)
		}
		return iss
	}

	iss := Issue{At: at}
	c.ca.Reserve(at, c.p.TCMD)

	burst := c.burst(op)
	off, dir := c.dataOffset(op)
	if burst > 0 {
		c.dq.Reserve(at+off, burst, dir)
		iss.DataStart = at + off
		iss.DataEnd = at + off + burst
		c.stats.DQBusyTicks += uint64(burst)
	}

	switch op.Kind {
	case OpRead:
		c.bankNext[op.Bank] = at + c.p.ReadBankBusy()
		iss.BankFree = c.bankNext[op.Bank]
		c.recordAct(at)
	case OpWrite:
		c.bankNext[op.Bank] = at + c.p.WriteBankBusy()
		iss.BankFree = c.bankNext[op.Bank]
		c.recordAct(at)
	}

	if c.usesTag(op) {
		c.tagNext[op.Bank] = at + c.p.TRCTag
		c.lastTagAct = at
		c.stats.TagActivates++
		hmAt := at + c.p.TagInternalOffset()
		c.hm.Reserve(hmAt, c.p.THMBus)
		c.stats.HMTransfers++
		c.stats.HMBusyTicks += uint64(c.p.THMBus)
		iss.TagInt = hmAt
		iss.HMAt = at + c.p.HMOffset()
		if op.Kind == OpProbe {
			c.stats.Probes++
		}
	}
	if c.obs != nil {
		c.observeCommit(op, iss)
	}
	return iss
}

func (c *Channel) recordAct(at sim.Tick) {
	c.lastAct = at
	c.actWindow[c.actWindowAt] = at
	c.actWindowAt = (c.actWindowAt + 1) % len(c.actWindow)
	c.stats.Activates++
}
