package dram

import (
	"fmt"

	"tdram/internal/sim"
)

// Open-page row-buffer policy. The paper's devices run close-page with
// auto-precharge (ActRd/ActWr close their row, §III-D); this optional
// policy keeps rows open so accesses with row locality skip tRCD, pay a
// precharge on conflicts, and let FR-FCFS exploit row hits — the classic
// trade-off the tags-with-data literature (e.g. Retagger) plays with.
// It applies to plain reads and writes only: the combined tag-lockstep
// commands are defined with auto-precharge and always run close-page.
//
// Approximation: a row conflict's PRE+ACT pair is issued as one compound
// command occupying a single CA slot; its data lands at
// tRP + tRCD + tCL(/tCWL) after the command.

// rowCategory classifies an open-page access.
type rowCategory uint8

const (
	rowHit rowCategory = iota
	rowClosed
	rowConflict
)

// openBank is the per-bank row-buffer state (allocated only when the
// policy is enabled).
type openBank struct {
	row      int      // open row, -1 closed
	nextCol  sim.Tick // earliest next column op to the open row
	preReady sim.Tick // earliest allowed precharge
	actReady sim.Tick // earliest allowed activate once precharged
}

// openState returns the open-page bookkeeping, allocating lazily.
func (c *Channel) openState() []openBank {
	if c.open == nil {
		c.open = make([]openBank, c.p.Banks)
		for i := range c.open {
			c.open[i].row = -1
		}
	}
	return c.open
}

// category classifies op against the bank's row buffer.
func (c *Channel) category(op Op) rowCategory {
	b := &c.openState()[op.Bank]
	switch {
	case b.row == op.Row:
		return rowHit
	case b.row == -1:
		return rowClosed
	default:
		return rowConflict
	}
}

// openColOffset is the command-to-DQ offset of a column-only access.
func (c *Channel) openColOffset(op Op) sim.Tick {
	if op.Kind == OpWrite {
		return c.p.TCWL
	}
	return c.p.TCL
}

// earliestOpen computes the earliest feasible command time for a plain
// read/write under the open-page policy.
func (c *Channel) earliestOpen(op Op, after sim.Tick) sim.Tick {
	if op.Kind != OpRead && op.Kind != OpWrite {
		panic(fmt.Sprintf("dram: open-page earliest for %v", op.Kind))
	}
	banks := c.openState()
	b := &banks[op.Bank]
	cat := c.category(op)
	burst := c.burst(op)
	dir := DirRead
	if op.Kind == OpWrite {
		dir = DirWrite
	}
	t := after
	for iter := 0; ; iter++ {
		if iter > 256 {
			panic("dram: open-page Earliest did not converge")
		}
		start := t
		var off sim.Tick
		switch cat {
		case rowHit:
			if t < b.nextCol {
				t = b.nextCol
			}
			off = c.openColOffset(op)
		case rowClosed:
			if t < b.actReady {
				t = b.actReady
			}
			if v := c.lastAct + c.p.TRRD; t < v {
				t = v
			}
			if v := c.fawBound(); t < v {
				t = v
			}
			off = c.p.TRCD + c.openColOffset(op)
		case rowConflict:
			// The compound PRE+ACT may not issue before the precharge is
			// permitted.
			if t < b.preReady {
				t = b.preReady
			}
			if v := c.lastAct + c.p.TRRD; t < v {
				t = v
			}
			if v := c.fawBound(); t < v {
				t = v
			}
			off = c.p.TRP + c.p.TRCD + c.openColOffset(op)
		}
		if at := c.ca.FirstFree(t, c.p.TCMD); at > t {
			t = at
		}
		if s := c.dq.FirstFree(t+off, burst, dir); s > t+off {
			t = s - off
		}
		if t == start {
			return t
		}
	}
}

// commitOpen reserves resources for an open-page read/write at time at.
func (c *Channel) commitOpen(op Op, at sim.Tick) Issue {
	banks := c.openState()
	b := &banks[op.Bank]
	cat := c.category(op)
	burst := c.burst(op)
	dir := DirRead
	if op.Kind == OpWrite {
		dir = DirWrite
	}

	iss := Issue{At: at}
	c.ca.Reserve(at, c.p.TCMD)

	var colAt sim.Tick // time of the column command's effect
	switch cat {
	case rowHit:
		colAt = at
	case rowClosed:
		colAt = at + c.p.TRCD
		b.row = op.Row
		c.recordAct(at)
		b.preReady = at + c.p.TRAS
	case rowConflict:
		actAt := at + c.p.TRP
		colAt = actAt + c.p.TRCD
		b.row = op.Row
		c.recordAct(actAt)
		b.preReady = actAt + c.p.TRAS
		c.stats.Precharges++
	}
	if cat == rowHit {
		c.stats.RowHits++
	}

	off := c.openColOffset(op)
	iss.DataStart = colAt + off
	iss.DataEnd = iss.DataStart + burst
	c.dq.Reserve(iss.DataStart, burst, dir)
	c.stats.DQBusyTicks += uint64(burst)

	// Column cadence and precharge constraints.
	b.nextCol = colAt + c.p.TBURST
	if op.Kind == OpRead {
		if v := colAt + c.p.TRTP; v > b.preReady {
			b.preReady = v
		}
	} else {
		if v := iss.DataEnd + c.p.TWR; v > b.preReady {
			b.preReady = v
		}
	}
	iss.BankFree = b.preReady + c.p.TRP
	return iss
}

// refreshOpen closes every row at refresh.
func (c *Channel) refreshOpen(end sim.Tick) {
	if c.open == nil {
		return
	}
	for i := range c.open {
		c.open[i].row = -1
		if c.open[i].actReady < end {
			c.open[i].actReady = end
		}
		if c.open[i].nextCol < end {
			c.open[i].nextCol = end
		}
		if c.open[i].preReady < end {
			c.open[i].preReady = end
		}
	}
}
