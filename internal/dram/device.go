package dram

import (
	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Device is a multi-channel DRAM device: the channels plus the address
// mapping that routes line addresses to (channel, bank) coordinates.
type Device struct {
	p     Params
	amap  mem.AddrMap
	chans []*Channel
}

// NewDevice validates p and builds its channels on s.
func NewDevice(s *sim.Simulator, p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	d := &Device{p: p, amap: p.AddrMap()}
	d.chans = make([]*Channel, p.Channels)
	for i := range d.chans {
		d.chans[i] = NewChannel(s, &d.p, i)
	}
	return d, nil
}

// Params returns the device parameters.
func (d *Device) Params() *Params { return &d.p }

// Channels reports the channel count.
func (d *Device) Channels() int { return len(d.chans) }

// Channel returns channel i.
func (d *Device) Channel(i int) *Channel { return d.chans[i] }

// Route decodes a line address to its channel index and bank.
func (d *Device) Route(line uint64) (channel, bank int) {
	c := d.amap.Decode(line)
	return c.Channel, c.Bank
}

// Coord decodes a line address fully (open-page callers need the row).
func (d *Device) Coord(line uint64) mem.Coord { return d.amap.Decode(line) }

// Stats aggregates activity counters across channels.
func (d *Device) Stats() ChannelStats {
	var total ChannelStats
	for _, c := range d.chans {
		s := c.Stats()
		total.Activates += s.Activates
		total.TagActivates += s.TagActivates
		total.Probes += s.Probes
		total.Refreshes += s.Refreshes
		total.HMTransfers += s.HMTransfers
		total.RowHits += s.RowHits
		total.Precharges += s.Precharges
		total.DQBusyTicks += s.DQBusyTicks
		total.HMBusyTicks += s.HMBusyTicks
	}
	return total
}
