package dram

import (
	"fmt"

	"tdram/internal/obs"
)

// Observability wiring. Each channel owns a set of Perfetto tracks laid
// out like the paper's Fig. 5-7 timing diagrams: the CA command bus on
// top, the DQ data bus and the HM result bus below it, then one track
// per bank (and per tag bank on tag-enhanced devices) showing busy
// windows, and a refresh track showing the tRFC blackout. Tracks are
// registered once at SetObserver time (bank tracks lazily, since a
// 16-bank channel that only ever touches four banks should not clutter
// the view with twelve empty rows).

// channelTracks caches the per-channel track IDs.
type channelTracks struct {
	ca      obs.TrackID
	dq      obs.TrackID
	hm      obs.TrackID
	refresh obs.TrackID
	bank    []obs.TrackID // lazily registered per data bank
	tag     []obs.TrackID // lazily registered per tag bank
}

// SetObserver attaches o to the channel. Pass nil to detach. Tracing
// hooks fire only while an observer with an active trace is attached;
// the disabled path costs one nil check per commit.
func (c *Channel) SetObserver(o *obs.Observer) {
	c.obs = o
	c.tracks = channelTracks{}
	c.flightUnit = fmt.Sprintf("%s.ch%d", c.p.Name, c.index)
	if !o.TraceEnabled() {
		return
	}
	proc := c.flightUnit
	c.tracks.ca = o.Track(proc, "ca")
	c.tracks.dq = o.Track(proc, "dq")
	if c.p.HasTagBanks() {
		c.tracks.hm = o.Track(proc, "hm")
	}
	c.tracks.refresh = o.Track(proc, "refresh")
	c.tracks.bank = make([]obs.TrackID, c.p.Banks)
	c.tracks.tag = make([]obs.TrackID, c.p.Banks)
}

// SetObserver attaches o to every channel of the device.
func (d *Device) SetObserver(o *obs.Observer) {
	for _, c := range d.chans {
		c.SetObserver(o)
	}
}

// bankTrack returns (registering on first use) the busy track for a
// data bank.
func (c *Channel) bankTrack(bank int) obs.TrackID {
	if c.tracks.bank[bank] == 0 {
		o := c.obs
		if o == nil {
			return 0
		}
		proc := fmt.Sprintf("%s.ch%d", c.p.Name, c.index)
		c.tracks.bank[bank] = o.Track(proc, fmt.Sprintf("bank%02d", bank))
	}
	return c.tracks.bank[bank]
}

// tagTrack is bankTrack for the paired tag bank.
func (c *Channel) tagTrack(bank int) obs.TrackID {
	if c.tracks.tag[bank] == 0 {
		o := c.obs
		if o == nil {
			return 0
		}
		proc := fmt.Sprintf("%s.ch%d", c.p.Name, c.index)
		c.tracks.tag[bank] = o.Track(proc, fmt.Sprintf("tag%02d", bank))
	}
	return c.tracks.tag[bank]
}

// opMnemonic names a committed command the way the paper does: the
// combined tag+data activates are ActRd/ActWr (Fig. 4), a tag-only
// access is a probe (§III-E), and an explicit flush-buffer drain is the
// RES (restore) stream command (§III-D2).
func (c *Channel) opMnemonic(op Op) string {
	tag := c.usesTag(op)
	switch op.Kind {
	case OpRead:
		if tag {
			return "ActRd"
		}
		return "Rd"
	case OpWrite:
		if tag {
			return "ActWr"
		}
		return "Wr"
	case OpProbe:
		return "Probe"
	case OpStreamRead:
		return "RES"
	}
	return op.Kind.String()
}

// observeCommit emits the trace events and command-mix counters for one
// committed access. Callers nil-check c.obs first.
func (c *Channel) observeCommit(op Op, iss Issue) {
	o := c.obs
	if o == nil {
		return
	}
	mn := c.opMnemonic(op)
	o.Inc(c.p.Name + ".cmd." + mn)
	if o.FlightEnabled() {
		o.FlightCommand(c.flightUnit, mn, op.Bank, op.Row, iss.At)
	}
	if !o.TraceEnabled() {
		return
	}
	o.Slice(c.tracks.ca, mn, iss.At, iss.At+c.p.TCMD)
	if iss.DataEnd > iss.DataStart {
		o.Slice(c.tracks.dq, mn, iss.DataStart, iss.DataEnd)
	}
	if iss.BankFree > 0 {
		o.Slice(c.bankTrack(op.Bank), fmt.Sprintf("row act b%d", op.Bank), iss.At, iss.BankFree)
	}
	if iss.TagInt > 0 {
		// Tag bank busy for its full cycle; the HM bus carries the
		// hit/miss result tHM_bus wide starting when the tag comparison
		// completes internally.
		o.Slice(c.tagTrack(op.Bank), "tag act", iss.At, iss.At+c.p.TRCTag)
		o.Slice(c.tracks.hm, "HM", iss.TagInt, iss.TagInt+c.p.THMBus)
	}
}
