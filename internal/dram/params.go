// Package dram implements the cycle-level DRAM device engine shared by
// the HBM3-like cache device and the DDR5 backing store: per-channel CA
// and DQ buses, close-page bank timing state machines, activation-window
// constraints (tRRD/tFAW), refresh, and — for tag-enhanced devices — the
// separate low-latency tag banks and the Hit-Miss bus from the paper.
package dram

import (
	"fmt"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Params holds the geometry and timing of one DRAM device type. Timing
// values for the cache device are the paper's Table III, verbatim.
type Params struct {
	Name string

	// Geometry. Banks counts logical (paired) banks providing 64 B
	// access granularity (§III-C1).
	Channels int
	Banks    int
	Columns  int // 64 B columns per row
	Rows     int

	// Command & data timing.
	TCMD   sim.Tick // CA bus occupancy of one command
	TBURST sim.Tick // DQ occupancy of one 64 B transfer
	TRCD   sim.Tick // ACT to internal RD
	TRCDWR sim.Tick // ACT to internal WR
	TRP    sim.Tick // precharge
	TRAS   sim.Tick // ACT to precharge-allowed
	TCL    sim.Tick // RD to data
	TCWL   sim.Tick // WR to data
	TWR    sim.Tick // write recovery before precharge
	TRRD   sim.Tick // ACT-to-ACT, channel
	TFAW   sim.Tick // four-activate window (the paper's tXAW)
	TRTP   sim.Tick // read-to-precharge (open-page policy)
	TRTW   sim.Tick // DQ read-to-write turnaround margin
	TWTR   sim.Tick // DQ write-to-read turnaround margin

	// OpenPage keeps rows open between plain accesses instead of the
	// paper's close-page auto-precharge. Incompatible with tag banks:
	// ActRd/ActWr are defined with auto-precharge.
	OpenPage bool

	// Refresh.
	TREFI sim.Tick // refresh interval
	TRFC  sim.Tick // refresh cycle (banks unavailable)

	// Tag-bank extension (TDRAM / NDC devices; zero TRCTag disables).
	TRCDTag sim.Tick // ACT to tag ready in the tag mats
	THMInt  sim.Tick // tag-ready to internal hit/miss (gates column decode)
	THM     sim.Tick // tag-ready to result available at the controller
	TRCTag  sim.Tick // tag bank cycle time
	TRRDTag sim.Tick // tag-bank ACT-to-ACT, channel
	THMBus  sim.Tick // HM bus occupancy per result (6 beats of a 4 b bus at 8 Gb/s)
}

// HasTagBanks reports whether this device has the separate tag storage.
func (p *Params) HasTagBanks() bool { return p.TRCTag > 0 }

// Validate rejects non-positive geometry or obviously inconsistent
// timing.
func (p *Params) Validate() error {
	if p.Channels <= 0 || p.Banks <= 0 || p.Columns <= 0 || p.Rows <= 0 {
		return fmt.Errorf("dram: %s: non-positive geometry", p.Name)
	}
	if p.TBURST <= 0 || p.TRCD <= 0 || p.TCL <= 0 || p.TRAS <= 0 || p.TRP <= 0 {
		return fmt.Errorf("dram: %s: non-positive core timing", p.Name)
	}
	if p.HasTagBanks() && (p.TRCDTag <= 0 || p.THM <= 0 || p.THMInt <= 0) {
		return fmt.Errorf("dram: %s: tag banks enabled with incomplete tag timing", p.Name)
	}
	if p.OpenPage && p.HasTagBanks() {
		return fmt.Errorf("dram: %s: open-page policy is incompatible with tag-lockstep commands", p.Name)
	}
	if p.OpenPage && p.TRTP <= 0 {
		return fmt.Errorf("dram: %s: open-page policy needs tRTP", p.Name)
	}
	return nil
}

// AddrMap returns the RoCoRaBaCh mapping for this geometry.
func (p *Params) AddrMap() mem.AddrMap {
	return mem.AddrMap{Channels: p.Channels, Banks: p.Banks, Columns: p.Columns, Rows: p.Rows}
}

// ReadBankBusy reports how long a bank is occupied by one close-page read
// access (ACT … auto-precharge completed).
func (p *Params) ReadBankBusy() sim.Tick { return p.TRAS + p.TRP }

// WriteBankBusy reports the close-page write occupancy, including write
// recovery.
func (p *Params) WriteBankBusy() sim.Tick {
	core := p.TRCDWR + p.TCWL + p.TBURST + p.TWR
	if core < p.TRAS {
		core = p.TRAS
	}
	return core + p.TRP
}

// ReadDataOffset is the fixed command-to-DQ offset for reads.
func (p *Params) ReadDataOffset() sim.Tick { return p.TRCD + p.TCL }

// WriteDataOffset is the fixed command-to-DQ offset for writes.
func (p *Params) WriteDataOffset() sim.Tick { return p.TRCDWR + p.TCWL }

// HMOffset is the fixed command-to-HM-result offset (result at the
// controller), tRCD_TAG + tHM (§III-C4: 15 ns).
func (p *Params) HMOffset() sim.Tick { return p.TRCDTag + p.THM }

// TagInternalOffset is when the in-DRAM comparator output gates the data
// mats' column decode, tRCD_TAG + tHM_int (§III-C4: 10 ns < tRCD = 12 ns,
// hiding tag access behind data-mat activation).
func (p *Params) TagInternalOffset() sim.Tick { return p.TRCDTag + p.THMInt }

// CacheDeviceParams returns the HBM3-based TDRAM-capable cache-device
// parameters from Table III for the given total capacity. The device has
// 8 channels of 32 GiB/s (64 B per 2 ns burst).
func CacheDeviceParams(capacityBytes uint64) Params {
	p := Params{
		Name:     "hbm3-cache",
		Channels: 8,
		Banks:    16,
		Columns:  32,

		TCMD:   sim.NS(0.5),
		TBURST: sim.NS(2),
		TRCD:   sim.NS(12),
		TRCDWR: sim.NS(6),
		TRP:    sim.NS(14),
		TRAS:   sim.NS(28),
		TCL:    sim.NS(18),
		TCWL:   sim.NS(7),
		TWR:    sim.NS(14),
		TRRD:   sim.NS(2),
		TFAW:   sim.NS(16),
		TRTP:   sim.NS(7.5),
		TRTW:   sim.NS(3),
		TWTR:   sim.NS(3),
		TREFI:  sim.NS(3900),
		TRFC:   sim.NS(260),

		TRCDTag: sim.NS(7.5),
		THMInt:  sim.NS(2.5),
		THM:     sim.NS(7.5),
		TRCTag:  sim.NS(12),
		TRRDTag: sim.NS(2),
		THMBus:  sim.NS(0.75),
	}
	p.Rows = rowsFor(capacityBytes, p)
	return p
}

// DDR5Params returns the 2-channel, 32 GiB/s-per-channel DDR5 backing
// store (Table III) with representative DDR5-6400 core timings.
func DDR5Params() Params {
	p := Params{
		Name:     "ddr5-main",
		Channels: 2,
		Banks:    32,
		Columns:  64,

		TCMD:   sim.NS(1),
		TBURST: sim.NS(2),
		TRCD:   sim.NS(16),
		TRCDWR: sim.NS(16),
		TRP:    sim.NS(16),
		TRAS:   sim.NS(32),
		TCL:    sim.NS(16),
		TCWL:   sim.NS(14),
		TWR:    sim.NS(30),
		// The engine models close-page (one column op per activation).
		// Real DDR5 reaches its rated bandwidth with open rows and long
		// bursts; to let this close-page approximation sustain the
		// paper's 32 GiB/s per channel we use bank-group-interleaved
		// activate pacing matching the 2 ns burst rate.
		TRRD:  sim.NS(2),
		TFAW:  sim.NS(16),
		TRTW:  sim.NS(4),
		TWTR:  sim.NS(6),
		TREFI: sim.NS(3900),
		TRFC:  sim.NS(295),
	}
	// The backing store accepts the whole physical address space; rows
	// only size the address wrap, so give it a large fixed depth.
	p.Rows = 1 << 16
	return p
}

// rowsFor sizes the row dimension so the device holds capacityBytes.
func rowsFor(capacityBytes uint64, p Params) int {
	linesPerRowSlice := uint64(p.Channels) * uint64(p.Banks) * uint64(p.Columns)
	rows := capacityBytes / mem.LineSize / linesPerRowSlice
	if rows == 0 {
		rows = 1
	}
	return int(rows)
}
