package dram

import (
	"fmt"

	"tdram/internal/sim"
)

// Dir is a DQ transfer direction.
type Dir uint8

const (
	DirRead  Dir = iota // device -> controller
	DirWrite            // controller -> device
)

func (d Dir) String() string {
	if d == DirWrite {
		return "wr"
	}
	return "rd"
}

// dqInterval is one reserved transfer on the data bus.
type dqInterval struct {
	start, end sim.Tick
	dir        Dir
}

// DQBus models the bidirectional data bus of one channel. Unlike a plain
// Timeline it is direction-aware: a turnaround margin must separate
// transfers of opposite direction. These turnaround bubbles are exactly
// the cost the paper's flush buffer avoids on write-miss-dirty.
type DQBus struct {
	rtw, wtr sim.Tick // read->write and write->read margins
	busy     []dqInterval
	prune    sim.Tick
	// turnarounds counts direction switches committed, for stats.
	turnarounds uint64
}

// NewDQBus returns a bus with the given turnaround margins.
func NewDQBus(rtw, wtr sim.Tick) *DQBus { return &DQBus{rtw: rtw, wtr: wtr} }

// Turnarounds reports how many direction switches have been reserved.
func (b *DQBus) Turnarounds() uint64 { return b.turnarounds }

// gapBefore returns the margin needed after an interval of direction
// prev before one of direction next may start.
func (b *DQBus) gapBefore(prev, next Dir) sim.Tick {
	if prev == next {
		return 0
	}
	if prev == DirRead {
		return b.rtw
	}
	return b.wtr
}

// FirstFree returns the earliest start >= earliest at which a transfer of
// the given length and direction fits, honoring turnaround margins
// against both neighbours.
func (b *DQBus) FirstFree(earliest, dur sim.Tick, dir Dir) sim.Tick {
	if dur <= 0 {
		return earliest
	}
	// Tail fast path: command streams mostly move forward, so most queries
	// start after every tracked transfer — only the turnaround margin
	// against the last one can still constrain them.
	if n := len(b.busy); n == 0 {
		return earliest
	} else if last := &b.busy[n-1]; earliest >= last.end+b.gapBefore(last.dir, dir) {
		return earliest
	}
	start := earliest
	for i := 0; i <= len(b.busy); i++ {
		// Margin required after the previous interval.
		if i > 0 {
			prev := b.busy[i-1]
			if min := prev.end + b.gapBefore(prev.dir, dir); start < min {
				start = min
			}
		}
		if i == len(b.busy) {
			return start
		}
		next := b.busy[i]
		// Fits before next (with margin toward next)?
		if start+dur+b.gapBefore(dir, next.dir) <= next.start {
			return start
		}
		// Otherwise continue past next.
		if start < next.end {
			start = next.end
		}
	}
	return start
}

// FreeAt reports whether a dir-transfer may occupy [start, start+dur).
func (b *DQBus) FreeAt(start, dur sim.Tick, dir Dir) bool {
	return b.FirstFree(start, dur, dir) == start
}

// Reserve commits the transfer. It panics on conflict, as Timeline does.
func (b *DQBus) Reserve(start, dur sim.Tick, dir Dir) {
	if dur <= 0 {
		return
	}
	if !b.FreeAt(start, dur, dir) {
		panic(fmt.Sprintf("dram: dq bus: conflicting %v reservation at %v+%v", dir, start, dur))
	}
	i := 0
	for i < len(b.busy) && b.busy[i].start < start {
		i++
	}
	if i > 0 && b.busy[i-1].dir != dir {
		b.turnarounds++
	}
	if i < len(b.busy) && b.busy[i].dir != dir {
		b.turnarounds++
	}
	end := start + dur
	// Merge with same-direction abutting neighbours so a saturated
	// stream keeps the busy list short.
	if i > 0 && b.busy[i-1].dir == dir && b.busy[i-1].end == start {
		b.busy[i-1].end = end
		if i < len(b.busy) && b.busy[i].dir == dir && b.busy[i].start == end {
			b.busy[i-1].end = b.busy[i].end
			b.busy = append(b.busy[:i], b.busy[i+1:]...)
		}
		return
	}
	if i < len(b.busy) && b.busy[i].dir == dir && b.busy[i].start == end {
		b.busy[i].start = start
		return
	}
	b.busy = append(b.busy, dqInterval{})
	copy(b.busy[i+1:], b.busy[i:])
	b.busy[i] = dqInterval{start, end, dir}
}

// Release drops bookkeeping for transfers ending at or before now, but
// always keeps the most recent interval so turnaround margins against the
// past remain enforced.
func (b *DQBus) Release(now sim.Tick) {
	if now <= b.prune {
		return
	}
	b.prune = now
	i := 0
	for i < len(b.busy)-1 && b.busy[i+1].end <= now {
		i++
	}
	if i > 0 {
		// Compact in place to keep the slice anchored at the array's
		// start; re-slicing forward would leak append capacity and force
		// a reallocation on nearly every future Reserve.
		n := copy(b.busy, b.busy[i:])
		b.busy = b.busy[:n]
	}
}

// Intervals reports tracked reservations (tests).
func (b *DQBus) Intervals() int { return len(b.busy) }

// BusyUntil reports the end of the latest reservation.
func (b *DQBus) BusyUntil() sim.Tick {
	if len(b.busy) == 0 {
		return 0
	}
	return b.busy[len(b.busy)-1].end
}
