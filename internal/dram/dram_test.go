package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdram/internal/sim"
)

func cacheParams() Params { return CacheDeviceParams(64 << 20) }

func TestParamsValidate(t *testing.T) {
	p := cacheParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	d := DDR5Params()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cacheParams()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Error("zero channels validated")
	}
	incomplete := cacheParams()
	incomplete.THM = 0
	if incomplete.Validate() == nil {
		t.Error("tag banks without tHM validated")
	}
}

func TestTableIIIValues(t *testing.T) {
	// The paper's published relationships must hold in our encoded
	// parameters (§III-C4).
	p := cacheParams()
	if got := p.TagInternalOffset(); got != sim.NS(10) {
		t.Errorf("tRCD_TAG+tHM_int = %v, want 10ns", got)
	}
	if got := p.HMOffset(); got != sim.NS(15) {
		t.Errorf("tRCD_TAG+tHM = %v, want 15ns", got)
	}
	if p.TagInternalOffset() >= p.TRCD {
		t.Error("tag access not hidden behind tRCD: internal HM must precede column-op point")
	}
	if !p.HasTagBanks() {
		t.Error("cache device must have tag banks")
	}
	ddr5 := DDR5Params()
	if ddr5.HasTagBanks() {
		t.Error("DDR5 must not have tag banks")
	}
}

func TestParamsCapacity(t *testing.T) {
	p := CacheDeviceParams(64 << 20)
	if got := p.AddrMap().Bytes(); got != 64<<20 {
		t.Errorf("capacity = %d, want %d", got, 64<<20)
	}
	tiny := CacheDeviceParams(1) // under one row-slice: clamps to 1 row
	if tiny.Rows != 1 {
		t.Errorf("tiny rows = %d", tiny.Rows)
	}
}

func TestBankOccupancies(t *testing.T) {
	p := cacheParams()
	if got := p.ReadBankBusy(); got != sim.NS(42) {
		t.Errorf("read bank busy = %v, want tRAS+tRP = 42ns", got)
	}
	// write: max(tRAS=28, 6+7+2+14=29) + 14 = 43
	if got := p.WriteBankBusy(); got != sim.NS(43) {
		t.Errorf("write bank busy = %v, want 43ns", got)
	}
	if got := p.ReadDataOffset(); got != sim.NS(30) {
		t.Errorf("read data offset = %v, want tRCD+tCL = 30ns", got)
	}
	if got := p.WriteDataOffset(); got != sim.NS(13) {
		t.Errorf("write data offset = %v, want tRCD_WR+tCWL = 13ns", got)
	}
}

func TestDQBusSameDirection(t *testing.T) {
	b := NewDQBus(sim.NS(3), sim.NS(3))
	b.Reserve(100, 20, DirRead)
	if got := b.FirstFree(100, 20, DirRead); got != 120 {
		t.Errorf("back-to-back same dir = %v, want 120", got)
	}
	if b.Turnarounds() != 0 {
		t.Errorf("turnarounds = %d", b.Turnarounds())
	}
}

func TestDQBusTurnaround(t *testing.T) {
	b := NewDQBus(sim.NS(3), sim.NS(3))
	b.Reserve(100, 20, DirRead)
	// A write after a read must leave the RTW margin.
	if got := b.FirstFree(100, 20, DirWrite); got != 120+sim.NS(3) {
		t.Errorf("write after read = %v, want 123ns-point", got)
	}
	b.Reserve(120+sim.NS(3), 20, DirWrite)
	if b.Turnarounds() != 1 {
		t.Errorf("turnarounds = %d", b.Turnarounds())
	}
	// A read after that write needs WTR (querying from inside the write's
	// slot; the gap before the first read is legitimately free).
	want := 120 + sim.NS(3) + 20 + sim.NS(3)
	if got := b.FirstFree(120, 10, DirRead); got != want {
		t.Errorf("read after write = %v, want %v", got, want)
	}
	if got := b.FirstFree(0, 10, DirRead); got != 0 {
		t.Errorf("read in leading gap = %v, want 0", got)
	}
}

func TestDQBusGapWithMargins(t *testing.T) {
	b := NewDQBus(10, 10)
	b.Reserve(0, 10, DirRead)
	b.Reserve(100, 10, DirRead)
	// A write between two reads needs margin on both sides: [20, 90].
	if got := b.FirstFree(0, 70, DirWrite); got != 20 {
		t.Errorf("write in gap = %v, want 20", got)
	}
	if got := b.FirstFree(0, 71, DirWrite); got <= 100 {
		t.Errorf("oversized write placed at %v inside gap", got)
	}
}

func TestDQBusConflictPanics(t *testing.T) {
	b := NewDQBus(3, 3)
	b.Reserve(0, 10, DirRead)
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting reserve did not panic")
		}
	}()
	b.Reserve(5, 10, DirRead)
}

func TestDQBusReleaseKeepsLast(t *testing.T) {
	b := NewDQBus(10, 10)
	b.Reserve(0, 10, DirRead)
	b.Release(1000)
	// The last interval must survive so turnaround vs. the past holds.
	if got := b.FirstFree(0, 5, DirWrite); got != 20 {
		t.Errorf("write after released read = %v, want 20 (margin kept)", got)
	}
}

// Property: random direction-annotated first-fit reservations never
// violate turnaround margins.
func TestDQBusMarginProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewDQBus(5, 7)
		type iv struct {
			s, e sim.Tick
			d    Dir
		}
		var placed []iv
		for i := 0; i < 60; i++ {
			dir := Dir(rng.Intn(2))
			dur := sim.Tick(1 + rng.Intn(10))
			at := b.FirstFree(sim.Tick(rng.Intn(300)), dur, dir)
			b.Reserve(at, dur, dir)
			placed = append(placed, iv{at, at + dur, dir})
		}
		for i := range placed {
			for j := range placed {
				if i == j {
					continue
				}
				a, c := placed[i], placed[j]
				if a.s >= c.e || c.s >= a.e {
					// Disjoint: check margin when opposite direction and adjacent order a->c.
					if a.e <= c.s && a.d != c.d {
						margin := sim.Tick(5)
						if a.d == DirWrite {
							margin = 7
						}
						if c.s-a.e < margin && c.s-a.e >= 0 {
							// Must not be violated... unless another interval sits between.
							between := false
							for k := range placed {
								if k != i && k != j && placed[k].s >= a.e && placed[k].e <= c.s {
									between = true
								}
							}
							if !between {
								return false
							}
						}
					}
					continue
				}
				return false // overlap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func newTestChannel(t *testing.T) (*sim.Simulator, *Channel) {
	t.Helper()
	s := sim.New()
	p := cacheParams()
	p.TREFI = 0 // disable refresh unless a test wants it
	return s, NewChannel(s, &p, 0)
}

func TestChannelReadTiming(t *testing.T) {
	s, c := newTestChannel(t)
	at := c.Earliest(Op{Kind: OpRead, Bank: 0}, s.Now())
	if at != 0 {
		t.Fatalf("first read earliest = %v, want 0", at)
	}
	iss := c.Commit(Op{Kind: OpRead, Bank: 0}, at)
	if iss.DataStart != sim.NS(30) || iss.DataEnd != sim.NS(32) {
		t.Errorf("data window = [%v, %v), want [30ns, 32ns)", iss.DataStart, iss.DataEnd)
	}
	if iss.BankFree != sim.NS(42) {
		t.Errorf("bank free = %v, want 42ns", iss.BankFree)
	}
	if iss.HMAt != 0 {
		t.Errorf("plain read got HM time %v", iss.HMAt)
	}
}

func TestChannelActRdTiming(t *testing.T) {
	s, c := newTestChannel(t)
	iss := c.Commit(Op{Kind: OpRead, Bank: 3, Tag: true}, c.Earliest(Op{Kind: OpRead, Bank: 3, Tag: true}, s.Now()))
	if iss.TagInt != sim.NS(10) {
		t.Errorf("internal tag result = %v, want 10ns", iss.TagInt)
	}
	if iss.HMAt != sim.NS(15) {
		t.Errorf("HM at controller = %v, want 15ns", iss.HMAt)
	}
	if iss.DataStart != sim.NS(30) {
		t.Errorf("data start = %v, want 30ns", iss.DataStart)
	}
	st := c.Stats()
	if st.Activates != 1 || st.TagActivates != 1 || st.HMTransfers != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestChannelSameBankSerialized(t *testing.T) {
	s, c := newTestChannel(t)
	c.Commit(Op{Kind: OpRead, Bank: 0}, 0)
	got := c.Earliest(Op{Kind: OpRead, Bank: 0}, s.Now())
	if got != sim.NS(42) {
		t.Errorf("same-bank second read = %v, want 42ns (tRAS+tRP)", got)
	}
}

func TestChannelOtherBankPipelines(t *testing.T) {
	s, c := newTestChannel(t)
	c.Commit(Op{Kind: OpRead, Bank: 0}, 0)
	got := c.Earliest(Op{Kind: OpRead, Bank: 1}, s.Now())
	// Limited by tRRD (2ns): DQ next free is 32ns but data offset puts it
	// at 2+30 = 32ns exactly.
	if got != sim.NS(2) {
		t.Errorf("other-bank read = %v, want 2ns (tRRD then DQ pipelining)", got)
	}
}

func TestChannelDQSerializesStreams(t *testing.T) {
	// Back-to-back reads to different banks are limited by DQ slots.
	s, c := newTestChannel(t)
	var last Issue
	for i := 0; i < 8; i++ {
		op := Op{Kind: OpRead, Bank: i}
		at := c.Earliest(op, s.Now())
		last = c.Commit(op, at)
	}
	// 8 transfers of 2ns each must be contiguous at steady state:
	// first data at 30ns; but tRRD (2ns) paces ACTs at exactly the burst
	// rate, so final data ends at 30 + 8*2 = 46ns.
	if last.DataEnd != sim.NS(46) {
		t.Errorf("8th read data end = %v, want 46ns", last.DataEnd)
	}
}

func TestChannelFAW(t *testing.T) {
	s := sim.New()
	p := cacheParams()
	p.TREFI = 0
	p.TRRD = sim.NS(1) // make tFAW the binding constraint
	c := NewChannel(s, &p, 0)
	var times []sim.Tick
	for i := 0; i < 9; i++ {
		op := Op{Kind: OpRead, Bank: i}
		at := c.Earliest(op, 0)
		c.Commit(op, at)
		times = append(times, at)
	}
	// tXAW is modeled as an eight-activate window: the 9th ACT must wait.
	if times[8]-times[0] < p.TFAW {
		t.Errorf("9th ACT at %v, 1st at %v: violates tXAW %v", times[8], times[0], p.TFAW)
	}
}

func TestChannelWriteReadTurnaround(t *testing.T) {
	s, c := newTestChannel(t)
	w := c.Commit(Op{Kind: OpWrite, Bank: 0}, 0)
	if w.DataStart != sim.NS(13) {
		t.Fatalf("write data start = %v", w.DataStart)
	}
	// A read to another bank: its data must wait for write data end + tWTR.
	rOp := Op{Kind: OpRead, Bank: 1}
	at := c.Earliest(rOp, s.Now())
	r := c.Commit(rOp, at)
	if r.DataStart < w.DataEnd+sim.NS(3) {
		t.Errorf("read data at %v too close to write end %v", r.DataStart, w.DataEnd)
	}
}

func TestChannelProbe(t *testing.T) {
	s, c := newTestChannel(t)
	iss := c.Commit(Op{Kind: OpProbe, Bank: 2}, c.Earliest(Op{Kind: OpProbe, Bank: 2}, s.Now()))
	if iss.HMAt != sim.NS(15) {
		t.Errorf("probe HM = %v, want 15ns", iss.HMAt)
	}
	if iss.DataStart != 0 || iss.BankFree != 0 {
		t.Errorf("probe reserved data resources: %+v", iss)
	}
	// Probe occupies the tag bank for tRC_TAG; a following ActRd to the
	// same bank must wait for it, but the data bank is untouched.
	got := c.Earliest(Op{Kind: OpRead, Bank: 2, Tag: true}, s.Now())
	if got != sim.NS(12) {
		t.Errorf("ActRd after probe same bank = %v, want 12ns (tRC_TAG)", got)
	}
	// Only the CA slot (tCMD = 0.5 ns) delays a plain read to another bank.
	if got := c.Earliest(Op{Kind: OpRead, Bank: 5}, s.Now()); got != sim.NS(0.5) {
		t.Errorf("plain read other bank after probe = %v, want 0.5ns", got)
	}
}

func TestChannelProbeOnPlainDevicePanics(t *testing.T) {
	s := sim.New()
	p := DDR5Params()
	c := NewChannel(s, &p, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("probe on DDR5 did not panic")
		}
	}()
	c.Earliest(Op{Kind: OpProbe, Bank: 0}, 0)
}

func TestChannelStreamRead(t *testing.T) {
	s, c := newTestChannel(t)
	iss := c.Commit(Op{Kind: OpStreamRead}, c.Earliest(Op{Kind: OpStreamRead}, s.Now()))
	if iss.DataStart != 0 || iss.DataEnd != sim.NS(2) {
		t.Errorf("stream data window [%v, %v)", iss.DataStart, iss.DataEnd)
	}
	if iss.BankFree != 0 {
		t.Error("stream read touched a bank")
	}
}

func TestChannelCommitInfeasiblePanics(t *testing.T) {
	_, c := newTestChannel(t)
	c.Commit(Op{Kind: OpRead, Bank: 0}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible commit did not panic")
		}
	}()
	c.Commit(Op{Kind: OpRead, Bank: 0}, sim.NS(1))
}

func TestChannelRefresh(t *testing.T) {
	s := sim.New()
	p := cacheParams()
	c := NewChannel(s, &p, 0)
	var windows int
	c.OnRefresh = func(start, end sim.Tick) {
		windows++
		if end-start != p.TRFC {
			t.Errorf("refresh window %v", end-start)
		}
	}
	s.Run(sim.NS(3900 * 4.5))
	if windows != 4 {
		t.Errorf("refresh windows in 4.5 tREFI = %d, want 4", windows)
	}
	if c.Stats().Refreshes != 4 {
		t.Errorf("refresh count = %d", c.Stats().Refreshes)
	}
	// A read right after a refresh must wait out tRFC.
	got := c.Earliest(Op{Kind: OpRead, Bank: 0}, sim.NS(3900))
	if got < sim.NS(3900)+p.TRFC {
		t.Errorf("read during refresh at %v", got)
	}
}

func TestAlloyBurst(t *testing.T) {
	// Alloy's 80 B access stretches the DQ occupancy to 2.5 ns.
	s, c := newTestChannel(t)
	op := Op{Kind: OpRead, Bank: 0, Burst: sim.NS(2.5)}
	iss := c.Commit(op, c.Earliest(op, s.Now()))
	if iss.DataEnd-iss.DataStart != sim.NS(2.5) {
		t.Errorf("burst = %v", iss.DataEnd-iss.DataStart)
	}
}

func TestDevice(t *testing.T) {
	s := sim.New()
	d, err := NewDevice(s, cacheParams())
	if err != nil {
		t.Fatal(err)
	}
	if d.Channels() != 8 {
		t.Fatalf("channels = %d", d.Channels())
	}
	ch0, bank0 := d.Route(0)
	ch1, _ := d.Route(1)
	if ch0 == ch1 {
		t.Error("consecutive lines mapped to same channel")
	}
	_, bank8 := d.Route(8)
	if bank0 == bank8 {
		t.Error("lines a channel-stride apart mapped to same bank")
	}
	bad := cacheParams()
	bad.Banks = 0
	if _, err := NewDevice(s, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

// Property: Earliest is idempotent — committing at the returned time
// always succeeds, across random op sequences.
func TestEarliestCommitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New()
		p := cacheParams()
		c := NewChannel(s, &p, 0)
		now := sim.Tick(0)
		for i := 0; i < 200; i++ {
			var op Op
			switch rng.Intn(4) {
			case 0:
				op = Op{Kind: OpRead, Bank: rng.Intn(p.Banks), Tag: rng.Intn(2) == 0}
			case 1:
				op = Op{Kind: OpWrite, Bank: rng.Intn(p.Banks), Tag: rng.Intn(2) == 0}
			case 2:
				op = Op{Kind: OpProbe, Bank: rng.Intn(p.Banks)}
			case 3:
				op = Op{Kind: OpStreamRead}
			}
			at := c.Earliest(op, now)
			if at < now {
				return false
			}
			c.Commit(op, at) // panics on failure
			now = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkChannelReadStream(b *testing.B) {
	s := sim.New()
	p := cacheParams()
	p.TREFI = 0
	c := NewChannel(s, &p, 0)
	now := sim.Tick(0)
	for i := 0; i < b.N; i++ {
		op := Op{Kind: OpRead, Bank: i % p.Banks, Tag: true}
		at := c.Earliest(op, now)
		c.Commit(op, at)
		now = at
	}
}
