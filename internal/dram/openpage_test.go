package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tdram/internal/sim"
)

func openParams() Params {
	p := CacheDeviceParams(64 << 20)
	// Strip the tag banks; open-page is a tags-with-data ablation.
	p.TRCDTag, p.THM, p.THMInt, p.TRCTag = 0, 0, 0, 0
	p.OpenPage = true
	p.TREFI = 0
	return p
}

func TestOpenPageValidation(t *testing.T) {
	p := CacheDeviceParams(64 << 20)
	p.OpenPage = true
	if p.Validate() == nil {
		t.Error("open-page with tag banks validated")
	}
	q := openParams()
	q.TRTP = 0
	if q.Validate() == nil {
		t.Error("open-page without tRTP validated")
	}
	ok := openParams()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenPageRowHitSkipsTRCD(t *testing.T) {
	s := sim.New()
	p := openParams()
	c := NewChannel(s, &p, 0)
	first := c.Commit(Op{Kind: OpRead, Bank: 0, Row: 7}, 0)
	// Cold bank: activate + column: data at tRCD + tCL = 30 ns.
	if first.DataStart != sim.NS(30) {
		t.Fatalf("cold read data at %v, want 30ns", first.DataStart)
	}
	op := Op{Kind: OpRead, Bank: 0, Row: 7}
	at := c.Earliest(op, sim.NS(40))
	hit := c.Commit(op, at)
	// Row hit: column only, data at cmd + tCL = 18 ns later.
	if got := hit.DataStart - hit.At; got != sim.NS(18) {
		t.Errorf("row-hit data offset = %v, want tCL = 18ns", got)
	}
	if c.Stats().RowHits != 1 {
		t.Errorf("row hits = %d", c.Stats().RowHits)
	}
	if c.Stats().Activates != 1 {
		t.Errorf("activates = %d, want 1 (hit must not activate)", c.Stats().Activates)
	}
}

func TestOpenPageConflictPaysPrecharge(t *testing.T) {
	s := sim.New()
	p := openParams()
	c := NewChannel(s, &p, 0)
	c.Commit(Op{Kind: OpRead, Bank: 0, Row: 1}, 0)
	op := Op{Kind: OpRead, Bank: 0, Row: 2}
	at := c.Earliest(op, 0)
	// The conflict may not precharge before tRAS (28 ns) and, after the
	// read's column op at tRCD=12, not before tRCD+tRTP (19.5 ns): so
	// the compound PRE+ACT issues at 28 ns.
	if at != p.TRAS {
		t.Fatalf("conflict command at %v, want tRAS = %v", at, p.TRAS)
	}
	iss := c.Commit(op, at)
	// Data at PRE + tRP + tRCD + tCL = 28 + 14 + 12 + 18 = 72 ns.
	if iss.DataStart != sim.NS(72) {
		t.Errorf("conflict data at %v, want 72ns", iss.DataStart)
	}
	if c.Stats().Precharges != 1 {
		t.Errorf("precharges = %d", c.Stats().Precharges)
	}
}

func TestOpenPageWriteRecoveryBeforeConflict(t *testing.T) {
	s := sim.New()
	p := openParams()
	c := NewChannel(s, &p, 0)
	w := c.Commit(Op{Kind: OpWrite, Bank: 0, Row: 1}, 0)
	op := Op{Kind: OpRead, Bank: 0, Row: 9}
	at := c.Earliest(op, 0)
	// Precharge must wait for write recovery: data end + tWR.
	if at < w.DataEnd+p.TWR {
		t.Errorf("conflict at %v before write recovery %v", at, w.DataEnd+p.TWR)
	}
}

func TestOpenPageRefreshClosesRows(t *testing.T) {
	s := sim.New()
	p := openParams()
	p.TREFI = sim.NS(3900)
	p.TRFC = sim.NS(260)
	c := NewChannel(s, &p, 0)
	c.Commit(Op{Kind: OpRead, Bank: 0, Row: 3}, 0)
	s.Run(sim.NS(4000)) // cross one refresh
	op := Op{Kind: OpRead, Bank: 0, Row: 3}
	at := c.Earliest(op, s.Now())
	iss := c.Commit(op, at)
	// The refresh closed the row: this is an activate again (tRCD+tCL
	// offset), not a column-only hit.
	if got := iss.DataStart - iss.At; got != sim.NS(30) {
		t.Errorf("post-refresh access offset = %v, want 30ns (row closed)", got)
	}
}

func TestOpenPageStreamBandwidth(t *testing.T) {
	// Same-row streaming must sustain one 64 B column per tBURST.
	s := sim.New()
	p := openParams()
	c := NewChannel(s, &p, 0)
	var last Issue
	for i := 0; i < 32; i++ {
		op := Op{Kind: OpRead, Bank: 0, Row: 5}
		at := c.Earliest(op, 0)
		last = c.Commit(op, at)
	}
	// First data at 30 ns; 32 back-to-back bursts end at 30 + 32*2 = 94.
	if last.DataEnd != sim.NS(94) {
		t.Errorf("stream end = %v, want 94ns", last.DataEnd)
	}
	if c.Stats().RowHits != 31 {
		t.Errorf("row hits = %d, want 31", c.Stats().RowHits)
	}
}

// Property: random open-page op sequences always commit at their
// Earliest time (the two paths agree), with no bus conflicts.
func TestOpenPageEarliestCommitProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New()
		p := openParams()
		p.TREFI = sim.NS(3900)
		p.TRFC = sim.NS(260)
		c := NewChannel(s, &p, 0)
		now := sim.Tick(0)
		for i := 0; i < 300; i++ {
			kind := OpRead
			if rng.Intn(2) == 1 {
				kind = OpWrite
			}
			op := Op{Kind: kind, Bank: rng.Intn(4), Row: rng.Intn(3)}
			at := c.Earliest(op, now)
			if at < now {
				return false
			}
			s.Run(at) // let refresh daemons fire up to the issue time
			at2 := c.Earliest(op, at)
			c.Commit(op, at2) // panics on disagreement or double-booking
			now = at2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
