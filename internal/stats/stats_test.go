package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Error("empty mean nonzero")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Add(v)
	}
	if m.Value() != 2.5 || m.N() != 4 || m.Sum() != 10 || m.Max() != 4 {
		t.Errorf("mean=%v n=%d sum=%v max=%v", m.Value(), m.N(), m.Sum(), m.Max())
	}
	m.AddTick(sim.NS(5))
	if m.Value() != 3 {
		t.Errorf("after AddTick mean=%v", m.Value())
	}
}

func TestMeanMinMax(t *testing.T) {
	var m Mean
	if m.Min() != 0 || m.Max() != 0 {
		t.Errorf("empty extrema: min=%v max=%v", m.Min(), m.Max())
	}
	// All-negative samples: the extrema must seed from the first sample,
	// not from zero.
	for _, v := range []float64{-3, -1, -7} {
		m.Add(v)
	}
	if m.Max() != -1 {
		t.Errorf("all-negative max = %v, want -1", m.Max())
	}
	if m.Min() != -7 {
		t.Errorf("all-negative min = %v, want -7", m.Min())
	}

	var p Mean
	for _, v := range []float64{5, 2, 9} {
		p.Add(v)
	}
	if p.Min() != 2 || p.Max() != 9 {
		t.Errorf("positive extrema: min=%v max=%v, want 2, 9", p.Min(), p.Max())
	}

	var one Mean
	one.Add(4.5)
	if one.Min() != 4.5 || one.Max() != 4.5 {
		t.Errorf("single-sample extrema: min=%v max=%v", one.Min(), one.Max())
	}
}

func TestHist(t *testing.T) {
	h := NewHist(10, 1.0)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if h.N() != 100 {
		t.Fatalf("N=%d", h.N())
	}
	if got := h.Percentile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if math.Abs(h.Mean()-5.0) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	h.Add(1e9) // overflow bucket
	if h.Percentile(1.0) != 1e9 {
		t.Errorf("p100 with overflow = %v", h.Percentile(1.0))
	}
}

func TestHistPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHist(0, ...) did not panic")
		}
	}()
	NewHist(0, 1)
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{0, -1, 3}); math.Abs(g-3) > 1e-9 {
		t.Errorf("GeoMean ignoring nonpositive = %v", g)
	}
}

// Property: geomean of ratios a/b equals geomean(a)/geomean(b).
func TestGeoMeanRatioProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var a, b, r []float64
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := float64(raw[i])+1, float64(raw[i+1])+1
			a = append(a, x)
			b = append(b, y)
			r = append(r, x/y)
		}
		want := GeoMean(a) / GeoMean(b)
		got := GeoMean(r)
		return math.Abs(got-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOutcomeCounts(t *testing.T) {
	var o OutcomeCounts
	o.Add(mem.ReadHit)
	o.Add(mem.ReadHit)
	o.Add(mem.ReadMissClean)
	o.Add(mem.ReadMissDirty)
	o.Add(mem.WriteHit)
	o.Add(mem.WriteMissClean)
	if o.Total() != 6 {
		t.Fatalf("Total=%d", o.Total())
	}
	if got := o.MissRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MissRatio = %v", got)
	}
	if got := o.ReadMissRatio(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("ReadMissRatio = %v", got)
	}
	fr := o.Fractions()
	var sum float64
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", sum)
	}
	if o.Count(mem.ReadHit) != 2 {
		t.Errorf("Count(ReadHit) = %d", o.Count(mem.ReadHit))
	}
}

func TestOutcomeCountsEmpty(t *testing.T) {
	var o OutcomeCounts
	if o.MissRatio() != 0 || o.ReadMissRatio() != 0 {
		t.Error("empty ratios nonzero")
	}
}

func TestTraffic(t *testing.T) {
	var tr Traffic
	if tr.BloatFactor() != 0 {
		t.Error("empty bloat nonzero")
	}
	tr.AddUseful(64)
	tr.AddUnuseful(64)
	if tr.BloatFactor() != 2 {
		t.Errorf("bloat = %v", tr.BloatFactor())
	}
	if tr.UnusefulFraction() != 0.5 {
		t.Errorf("unuseful fraction = %v", tr.UnusefulFraction())
	}
	if tr.Total() != 128 {
		t.Errorf("total = %d", tr.Total())
	}
}

// Property: bloat factor is always >= 1 when useful traffic exists.
func TestBloatAtLeastOne(t *testing.T) {
	f := func(useful, unuseful uint16) bool {
		tr := Traffic{UsefulBytes: uint64(useful) + 1, UnusefulBytes: uint64(unuseful)}
		return tr.BloatFactor() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("design", "speedup")
	tb.AddRow("tdram", 1.23456)
	tb.AddRow("alloy", 0.9)
	s := tb.String()
	if !strings.Contains(s, "tdram") || !strings.Contains(s, "1.235") {
		t.Errorf("table output:\n%s", s)
	}
	if lines := strings.Count(s, "\n"); lines != 4 {
		t.Errorf("line count = %d:\n%s", lines, s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x", 1.5)
	tb.AddRow("y", 2.0)
	want := "a,b\nx,1.500\ny,2.000\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"c": 1, "a": 2, "b": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[2] != "c" {
		t.Errorf("SortedKeys = %v", ks)
	}
}
