package stats

import (
	"math"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"tdram/internal/sim"
)

// Every sample must land in a bucket whose bounds contain it, and the
// bucket's relative width must stay within the advertised ~1.6 % (1/64).
func TestLogHistBucketBounds(t *testing.T) {
	vals := []uint64{0, 1, 63, 64, 65, 127, 128, 129, 1000, 27000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range vals {
		i := logBucket(v)
		lo, hi := logBucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %d mapped to bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
		if v >= logHistSub {
			if rel := float64(hi-lo) / float64(lo); rel > 1.0/logHistSub+1e-12 {
				t.Errorf("value %d: bucket width %d at lo %d gives relative error %v", v, hi-lo, lo, rel)
			}
		}
	}
}

func TestLogHistBucketRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v >>= 1 // keep within int64 so bucket indexes stay in range
		i := logBucket(v)
		lo, hi := logBucketBounds(i)
		return lo <= v && v < hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLogHistPercentile(t *testing.T) {
	h := NewLogHist()
	if h.Percentile(0.5) != 0 || h.N() != 0 {
		t.Error("empty histogram not zero")
	}
	// 1..1000 ticks: p50 ≈ 500, p99 ≈ 990 within 1/64 relative error.
	for v := uint64(1); v <= 1000; v++ {
		h.Add(v)
	}
	cases := []struct {
		frac float64
		want float64
	}{{0.50, 500}, {0.90, 900}, {0.99, 990}, {1.0, 1000}}
	for _, c := range cases {
		got := float64(h.Percentile(c.frac))
		if math.Abs(got-c.want)/c.want > 2.0/logHistSub {
			t.Errorf("p%g = %v, want ~%v", c.frac*100, got, c.want)
		}
	}
	if h.Max() != 1000 || h.Min() != 1 {
		t.Errorf("extrema: min=%v max=%v", h.Min(), h.Max())
	}
	if mean := float64(h.Mean()); math.Abs(mean-500.5) > 1 {
		t.Errorf("mean = %v", mean)
	}
}

// The exact-bucket off-by-one fix: sub-octave buckets hold exactly one
// tick value, so percentiles there must report the value itself, not the
// bucket's exclusive upper bound; and no percentile may exceed Max().
func TestLogHistPercentileExactBuckets(t *testing.T) {
	cases := []struct {
		name    string
		samples []uint64
		frac    float64
		want    sim.Tick
	}{
		{"all-100 p99", repeatVal(100, 1000), 0.99, 100},
		{"all-100 p100", repeatVal(100, 1000), 1.0, 100},
		{"all-zero p50", repeatVal(0, 10), 0.50, 0},
		{"single-1 p100", []uint64{1}, 1.0, 1},
		{"exact-boundary 63", repeatVal(63, 5), 0.5, 63},
		{"mixed exact bucket", []uint64{7, 7, 7, 1 << 20}, 0.5, 7},
		// One sample in a wide bucket: the exclusive upper bound clamps
		// to the sample (the histogram's max) instead of overshooting.
		{"wide bucket clamps to max", []uint64{1000}, 1.0, 1000},
		{"wide bucket tail clamps", append(repeatVal(10, 99), 100000), 1.0, 100000},
	}
	for _, c := range cases {
		h := NewLogHist()
		for _, v := range c.samples {
			h.Add(v)
		}
		if got := h.Percentile(c.frac); got != c.want {
			t.Errorf("%s: p%g = %v, want %v", c.name, c.frac*100, got, c.want)
		}
		if p := h.Percentile(1.0); p > h.Max() {
			t.Errorf("%s: p100 = %v exceeds max %v", c.name, p, h.Max())
		}
	}
}

func repeatVal(v uint64, n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// Percentiles must be monotone in frac even across octave boundaries.
func TestLogHistPercentileMonotone(t *testing.T) {
	h := NewLogHist()
	for v := uint64(1); v < 100000; v += 7 {
		h.Add(v)
	}
	prev := sim.Tick(-1)
	for frac := 0.01; frac <= 1.0; frac += 0.01 {
		p := h.Percentile(frac)
		if p < prev {
			t.Fatalf("percentile not monotone: p(%v) = %v < %v", frac, p, prev)
		}
		prev = p
	}
}

// Unlike the linear Hist, the tail must stay resolved: a millisecond
// outlier among nanosecond samples reports distinct p99 vs p100.
func TestLogHistTailResolved(t *testing.T) {
	h := NewLogHist()
	for i := 0; i < 999; i++ {
		h.AddTick(sim.NS(30))
	}
	h.AddTick(sim.Millisecond)
	p99 := h.PercentileNS(0.99)
	p100 := h.PercentileNS(1.0)
	if p99 > 35 {
		t.Errorf("p99 = %v ns, want ~30", p99)
	}
	if rel := math.Abs(p100-1e6) / 1e6; rel > 2.0/logHistSub {
		t.Errorf("p100 = %v ns, want ~1e6", p100)
	}
}

func TestLogHistAddTickClampsNegative(t *testing.T) {
	h := NewLogHist()
	h.AddTick(-5)
	if h.N() != 1 || h.Max() != 0 {
		t.Errorf("negative tick: n=%d max=%v", h.N(), h.Max())
	}
}

func TestLogHistMerge(t *testing.T) {
	a, b := NewLogHist(), NewLogHist()
	for v := uint64(1); v <= 100; v++ {
		a.Add(v)
	}
	for v := uint64(1000); v <= 2000; v += 10 {
		b.Add(v)
	}
	whole := NewLogHist()
	whole.Merge(a)
	whole.Merge(b)
	whole.Merge(nil)          // nil-safe
	whole.Merge(NewLogHist()) // empty-safe
	if whole.N() != a.N()+b.N() {
		t.Fatalf("merged N = %d", whole.N())
	}
	if whole.Min() != 1 || whole.Max() != 2000 {
		t.Errorf("merged extrema: min=%v max=%v", whole.Min(), whole.Max())
	}
	// Merging must be exact: same buckets as adding every sample directly.
	direct := NewLogHist()
	for v := uint64(1); v <= 100; v++ {
		direct.Add(v)
	}
	for v := uint64(1000); v <= 2000; v += 10 {
		direct.Add(v)
	}
	if whole.String() != direct.String() {
		t.Errorf("merge differs from direct:\n%s\n%s", whole, direct)
	}
}

// testSplitMix is a tiny local PRNG so the property test is seeded and
// deterministic (no global math/rand).
type testSplitMix uint64

func (s *testSplitMix) next() uint64 {
	*s += 0x9E3779B97F4A7C15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Property test against a sorted-slice oracle: for random sample sets —
// added directly or split across two histograms and merged — every
// percentile must bracket the oracle's order statistic from above,
// within one bucket width, exactly for sub-octave values, and never
// above the recorded max.
func TestLogHistPercentilePropertyOracle(t *testing.T) {
	rng := testSplitMix(0x1234)
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		n := 1 + int(rng.next()%400)
		samples := make([]uint64, n)
		a, b, merged := NewLogHist(), NewLogHist(), NewLogHist()
		for i := range samples {
			// Mix magnitudes: exact-bucket ticks, mid-range, and huge.
			v := rng.next()
			switch v % 3 {
			case 0:
				v = v % logHistSub
			case 1:
				v = v % 100000
			default:
				v = v % (1 << 40)
			}
			samples[i] = v
			if i%2 == 0 {
				a.Add(v)
			} else {
				b.Add(v)
			}
		}
		merged.Merge(a)
		merged.Merge(b)
		sorted := append([]uint64(nil), samples...)
		slices.Sort(sorted)
		for _, frac := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1.0} {
			rank := int(math.Ceil(frac*float64(n))) - 1
			if rank < 0 {
				rank = 0
			}
			oracle := sorted[rank]
			got := uint64(merged.Percentile(frac))
			if got < oracle {
				t.Fatalf("round %d: p%g = %d below oracle %d", round, frac*100, got, oracle)
			}
			if got > sorted[n-1] {
				t.Fatalf("round %d: p%g = %d above max sample %d", round, frac*100, got, sorted[n-1])
			}
			if oracle < logHistSub {
				if got != oracle {
					t.Fatalf("round %d: exact bucket p%g = %d, oracle %d", round, frac*100, got, oracle)
				}
			} else if width := oracle / logHistSub; got > oracle+width+1 {
				t.Fatalf("round %d: p%g = %d overshoots oracle %d by more than a bucket", round, frac*100, got, oracle)
			}
		}
		if uint64(merged.Max()) != sorted[n-1] || uint64(merged.Min()) != sorted[0] {
			t.Fatalf("round %d: extrema %v/%v vs oracle %d/%d", round, merged.Min(), merged.Max(), sorted[0], sorted[n-1])
		}
	}
}

func TestLogHistEach(t *testing.T) {
	h := NewLogHist()
	h.Add(3)
	h.Add(3)
	h.Add(200)
	var total uint64
	var last sim.Tick = -1
	h.Each(func(lo, hi sim.Tick, count uint64) {
		if lo <= last {
			t.Errorf("buckets out of order: lo %v after %v", lo, last)
		}
		if hi <= lo {
			t.Errorf("degenerate bucket [%v, %v)", lo, hi)
		}
		last = lo
		total += count
	})
	if total != 3 {
		t.Errorf("Each visited %d samples, want 3", total)
	}
}

func TestLogHistString(t *testing.T) {
	h := NewLogHist()
	h.Add(2)
	h.Add(2)
	h.Add(70)
	s := h.String()
	if !strings.Contains(s, "n=3") || !strings.Contains(s, "2:2") {
		t.Errorf("String = %q", s)
	}
	if s != h.String() {
		t.Error("String not deterministic")
	}
}

// The overflow-percentile fix: percentiles landing past the linear
// range interpolate by rank instead of all collapsing onto Max().
func TestHistOverflowPercentiles(t *testing.T) {
	h := NewHist(10, 1.0) // covers [0, 10)
	for i := 0; i < 50; i++ {
		h.Add(5)
	}
	// 50 overflow samples up to 110.
	for i := 1; i <= 50; i++ {
		h.Add(10 + float64(i*2))
	}
	cases := []struct {
		frac float64
		want float64
	}{
		{0.25, 6},   // still in the linear range
		{0.50, 6},   // the whole linear half sits in bucket 5
		{0.75, 60},  // rank 25 of 50 overflow: 10 + 100*25/50
		{1.00, 110}, // the max sample
		{0.755, 62}, // rank 26: 10 + 100*26/50 (was Max() before the fix)
	}
	for _, c := range cases {
		if got := h.Percentile(c.frac); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%g = %v, want %v", c.frac*100, got, c.want)
		}
	}
	// Must stay monotone through the boundary.
	prev := -1.0
	for frac := 0.05; frac <= 1.0; frac += 0.05 {
		p := h.Percentile(frac)
		if p < prev {
			t.Fatalf("overflow percentile not monotone at %v: %v < %v", frac, p, prev)
		}
		prev = p
	}
}
