// Package stats provides the measurement machinery shared by the
// simulator: running means, histograms, geometric means, per-outcome
// counters and the bandwidth-bloat accounting defined by BEAR (and used by
// the paper's Table IV).
package stats

import (
	"fmt"
	"math"
	"sort"

	"tdram/internal/mem"
	"tdram/internal/sim"
)

// Mean accumulates a running arithmetic mean without storing samples.
type Mean struct {
	n        uint64
	sum      float64
	min, max float64
}

// Add records one sample. The extrema seed from the first sample rather
// than zero, so they are correct for all-negative and all-positive
// sample sets alike.
func (m *Mean) Add(v float64) {
	if m.n == 0 || v > m.max {
		m.max = v
	}
	if m.n == 0 || v < m.min {
		m.min = v
	}
	m.n++
	m.sum += v
}

// AddTick records a tick-valued sample in nanoseconds.
func (m *Mean) AddTick(t sim.Tick) { m.Add(t.Nanoseconds()) }

// N reports the sample count.
func (m *Mean) N() uint64 { return m.n }

// Sum reports the total of all samples.
func (m *Mean) Sum() float64 { return m.sum }

// Max reports the largest sample seen (0 when empty).
func (m *Mean) Max() float64 { return m.max }

// Min reports the smallest sample seen (0 when empty).
func (m *Mean) Min() float64 { return m.min }

// Value reports the mean, or 0 when no samples were recorded.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// Hist is a fixed-bucket histogram over [0, bucketWidth*len(counts)) with
// an overflow bucket.
type Hist struct {
	width    float64
	counts   []uint64
	overflow uint64
	mean     Mean
}

// NewHist returns a histogram with n buckets of the given width.
func NewHist(n int, width float64) *Hist {
	if n <= 0 || width <= 0 {
		panic("stats: histogram needs positive buckets and width")
	}
	return &Hist{width: width, counts: make([]uint64, n)}
}

// Add records a sample.
func (h *Hist) Add(v float64) {
	h.mean.Add(v)
	i := int(v / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// String renders the histogram's full content (width, per-bucket
// counts, overflow, moments). Besides debugging, this is what makes a
// reflected dump of a stats tree (fmt %+v) deterministic: without it,
// nested *Hist fields print as heap addresses, which vary run to run.
func (h *Hist) String() string {
	return fmt.Sprintf("hist{w=%g counts=%v overflow=%d mean=%+v}", h.width, h.counts, h.overflow, h.mean)
}

// N reports the sample count.
func (h *Hist) N() uint64 { return h.mean.N() }

// Mean reports the sample mean.
func (h *Hist) Mean() float64 { return h.mean.Value() }

// Percentile reports the value below which frac of samples fall,
// resolved to bucket granularity. frac must be in (0, 1]. Percentiles
// landing in the overflow bucket interpolate linearly between the
// histogram's upper boundary and the largest sample by overflow rank,
// rather than silently saturating at Max(): with the overflow region
// unresolved, rank position is the only information available, and an
// explicit estimate keeps p50 < p90 < p99 ordering instead of
// collapsing every overflowed percentile onto one value.
func (h *Hist) Percentile(frac float64) float64 {
	if h.mean.N() == 0 {
		return 0
	}
	target := uint64(math.Ceil(frac * float64(h.mean.N())))
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	// The target rank lies among the overflow samples.
	bound := float64(len(h.counts)) * h.width
	if h.overflow == 0 {
		return bound // unreachable: the loop covers all non-overflow ranks
	}
	rank := target - (h.mean.N() - h.overflow) // 1-based rank within overflow
	return bound + (h.mean.Max()-bound)*float64(rank)/float64(h.overflow)
}

// GeoMean returns the geometric mean of vs, ignoring non-positive,
// NaN and infinite values (degenerate ratios from empty measurements).
// It returns 0 for an empty input.
func GeoMean(vs []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vs {
		if !(v > 0) || math.IsInf(v, 1) {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// OutcomeCounts tallies DRAM-cache accesses by Outcome (the paper's
// Fig. 1 breakdown).
type OutcomeCounts struct {
	counts [mem.NumOutcomes]uint64
}

// Add records one access outcome.
func (o *OutcomeCounts) Add(out mem.Outcome) { o.counts[out]++ }

// Count reports the tally for one outcome.
func (o *OutcomeCounts) Count(out mem.Outcome) uint64 { return o.counts[out] }

// Total reports all recorded accesses.
func (o *OutcomeCounts) Total() uint64 {
	var t uint64
	for _, c := range o.counts {
		t += c
	}
	return t
}

// MissRatio reports misses / total across reads and writes.
func (o *OutcomeCounts) MissRatio() float64 {
	t := o.Total()
	if t == 0 {
		return 0
	}
	miss := t - o.counts[mem.ReadHit] - o.counts[mem.WriteHit]
	return float64(miss) / float64(t)
}

// ReadMissRatio reports read misses / read demands.
func (o *OutcomeCounts) ReadMissRatio() float64 {
	reads := o.counts[mem.ReadHit] + o.counts[mem.ReadMissClean] + o.counts[mem.ReadMissDirty]
	if reads == 0 {
		return 0
	}
	return float64(o.counts[mem.ReadMissClean]+o.counts[mem.ReadMissDirty]) / float64(reads)
}

// Fractions reports each outcome's share of the total, in Outcome order.
func (o *OutcomeCounts) Fractions() [mem.NumOutcomes]float64 {
	var f [mem.NumOutcomes]float64
	t := o.Total()
	if t == 0 {
		return f
	}
	for i, c := range o.counts {
		f[i] = float64(c) / float64(t)
	}
	return f
}

// Traffic accounts bytes moved between a controller and a DRAM device,
// split into useful and unuseful movement as defined by BEAR: bytes whose
// transfer served the demand (hit data, dirty victims needing writeback,
// demand write data, fills) are useful; tag-check reads whose data the
// controller immediately discards (write-hits and miss-cleans in
// tags-with-data designs) and over-fetch beyond 64 B (80 B bursts) are
// unuseful.
type Traffic struct {
	UsefulBytes   uint64
	UnusefulBytes uint64
}

// AddUseful records bytes that served the demand.
func (t *Traffic) AddUseful(b uint64) { t.UsefulBytes += b }

// AddUnuseful records discarded or over-fetched bytes.
func (t *Traffic) AddUnuseful(b uint64) { t.UnusefulBytes += b }

// Total reports all bytes moved.
func (t *Traffic) Total() uint64 { return t.UsefulBytes + t.UnusefulBytes }

// BloatFactor reports total moved / useful moved (>= 1). With no useful
// traffic it reports 0.
func (t *Traffic) BloatFactor() float64 {
	if t.UsefulBytes == 0 {
		return 0
	}
	return float64(t.Total()) / float64(t.UsefulBytes)
}

// UnusefulFraction reports the unuseful share of total traffic.
func (t *Traffic) UnusefulFraction() float64 {
	tot := t.Total()
	if tot == 0 {
		return 0
	}
	return float64(t.UnusefulBytes) / float64(tot)
}

// Table is a small fixed-column text table formatter used by the CLI and
// experiment harness output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := ""
	line := func(cells []string) string {
		s := ""
		for i, c := range cells {
			if i > 0 {
				s += "  "
			}
			s += fmt.Sprintf("%-*s", widths[min(i, len(widths)-1)], c)
		}
		return s + "\n"
	}
	out += line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = repeat('-', widths[i])
	}
	out += line(sep)
	for _, r := range t.rows {
		out += line(r)
	}
	return out
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed: cells
// are numbers and identifiers).
func (t *Table) CSV() string {
	out := join(t.header) + "\n"
	for _, r := range t.rows {
		out += join(r) + "\n"
	}
	return out
}

func join(cells []string) string {
	s := ""
	for i, c := range cells {
		if i > 0 {
			s += ","
		}
		s += c
	}
	return s
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// SortedKeys returns the sorted keys of a string-keyed map, for
// deterministic result iteration.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
