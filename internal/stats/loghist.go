package stats

import (
	"fmt"
	"math"
	"math/bits"
	"strings"

	"tdram/internal/sim"
)

// LogHist is a log-linear histogram over non-negative tick values: each
// octave is split into 2^logHistSubBits linear sub-buckets, so the
// relative quantization error is bounded by 2^-logHistSubBits (< 1.6 %,
// < 0.8 % to the bucket midpoint) at every magnitude from picoseconds to
// milliseconds. Values below one full octave (< 2^logHistSubBits ticks)
// get exact one-tick buckets. Unlike the linear Hist, it has no overflow
// bucket to swallow the tail: any tick value maps to a real bucket, so
// tail percentiles (p99, p99.9) stay resolved no matter how slow the
// slowest request was.
//
// The counts slice grows lazily to the highest bucket touched, additions
// are O(1) with no floating-point involved, and two histograms merge
// bucket-by-bucket, so per-(design, class) histograms can be built
// per-run and combined afterwards without losing resolution.
type LogHist struct {
	counts   []uint64
	n        uint64
	sum      uint64 // total ticks, for the mean
	min, max uint64 // extreme samples, in ticks
}

// logHistSubBits sets the sub-buckets per octave (64), hence the ~1 %
// relative error the latency tables quote.
const logHistSubBits = 6
const logHistSub = 1 << logHistSubBits

// NewLogHist returns an empty histogram.
func NewLogHist() *LogHist { return &LogHist{} }

// logBucket maps a sample to its bucket index.
func logBucket(v uint64) int {
	if v < logHistSub {
		return int(v)
	}
	exp := bits.Len64(v) - logHistSubBits - 1
	return (exp+1)*logHistSub + int(v>>exp) - logHistSub
}

// logBucketBounds reports bucket i's half-open value range [lo, hi).
func logBucketBounds(i int) (lo, hi uint64) {
	if i < logHistSub {
		return uint64(i), uint64(i) + 1
	}
	exp := uint(i/logHistSub - 1)
	lo = (uint64(i%logHistSub) + logHistSub) << exp
	return lo, lo + 1<<exp
}

// Add records one sample (in ticks).
func (h *LogHist) Add(v uint64) {
	i := logBucket(v)
	if i >= len(h.counts) {
		grown := make([]uint64, i+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// AddTick records a tick-valued sample; negative durations clamp to zero
// (they indicate a measurement taken at the same event boundary).
func (h *LogHist) AddTick(t sim.Tick) {
	if t < 0 {
		t = 0
	}
	h.Add(uint64(t))
}

// N reports the sample count.
func (h *LogHist) N() uint64 { return h.n }

// Max reports the largest sample (0 when empty).
func (h *LogHist) Max() sim.Tick { return sim.Tick(h.max) }

// Min reports the smallest sample (0 when empty).
func (h *LogHist) Min() sim.Tick { return sim.Tick(h.min) }

// Mean reports the sample mean in ticks (0 when empty).
func (h *LogHist) Mean() sim.Tick {
	if h.n == 0 {
		return 0
	}
	return sim.Tick(h.sum / h.n)
}

// MeanNS reports the sample mean in nanoseconds.
func (h *LogHist) MeanNS() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n) / float64(sim.Nanosecond)
}

// Percentile reports the value below or at which frac of the samples
// fall. frac must be in (0, 1]; an empty histogram reports 0. Because
// every sample lands in a real bucket, tail percentiles are resolved to
// the bucket's ~1 % width — never saturated at an overflow boundary.
//
// For the exact one-tick sub-octave buckets the answer is the sample
// value itself (the bucket's inclusive bound hi-1, not its exclusive
// upper bound — a histogram of all-100-tick samples reports p99 = 100,
// not 101). Wider buckets report their exclusive upper bound, clamped
// to the largest recorded sample so no percentile ever exceeds Max().
func (h *LogHist) Percentile(frac float64) sim.Tick {
	if h.n == 0 {
		return 0
	}
	target := uint64(math.Ceil(frac * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			_, hi := logBucketBounds(i)
			if i < logHistSub {
				hi-- // exact bucket: [v, v+1) holds only v
			}
			if hi > h.max {
				hi = h.max
			}
			return sim.Tick(hi)
		}
	}
	return sim.Tick(h.max) // unreachable: counts always sum to n
}

// PercentileNS is Percentile in nanoseconds.
func (h *LogHist) PercentileNS(frac float64) float64 {
	return h.Percentile(frac).Nanoseconds()
}

// Merge adds every sample of o into h.
func (h *LogHist) Merge(o *LogHist) {
	if o == nil || o.n == 0 {
		return
	}
	if len(o.counts) > len(h.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, h.counts)
		h.counts = grown
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// Each calls fn for every non-empty bucket in ascending value order with
// the bucket's tick range and count — the CDF/CCDF export primitive.
func (h *LogHist) Each(fn func(lo, hi sim.Tick, count uint64)) {
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := logBucketBounds(i)
		fn(sim.Tick(lo), sim.Tick(hi), c)
	}
}

// String renders the histogram's full content with a sparse bucket list.
// Like Hist.String, this is what keeps a reflected stats dump (fmt %+v)
// deterministic: a nested *LogHist renders its values, not its address.
func (h *LogHist) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loghist{n=%d sum=%d min=%d max=%d b=[", h.n, h.sum, h.min, h.max)
	first := true
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if !first {
			b.WriteString(" ")
		}
		first = false
		fmt.Fprintf(&b, "%d:%d", i, c)
	}
	b.WriteString("]}")
	return b.String()
}
