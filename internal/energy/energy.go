// Package energy implements the analytic DRAM energy model used for the
// paper's Fig. 13. The paper scales a proprietary HBM2 power model to
// HBM3; here the coefficients are drawn from public HBM literature
// (O'Connor et al., "Fine-Grained DRAM", MICRO'17, and the HBM power
// breakdown the paper itself cites: ~62.6 % of HBM power is data
// movement between core and controller). The reproduction targets
// relative energy between designs, which is dominated by the counted
// events — activations, column operations, and above all bits moved on
// the DQ bus — so the component structure matters more than the exact
// picojoule values.
package energy

import "tdram/internal/sim"

// Coeffs are per-event energies (joules) and background power (watts).
type Coeffs struct {
	ActJ        float64 // one data-bank activate+precharge
	TagActJ     float64 // one tag-mat activate (TDRAM's small mats)
	ColJ        float64 // one 64 B internal column operation
	BitJ        float64 // one bit transferred on the DQ interface
	HMJ         float64 // one HM-bus result transfer (24 bits + strobes)
	RefreshJ    float64 // one all-bank refresh of one channel
	BackgroundW float64 // static power per channel
}

// HBMCache returns coefficients for the on-package HBM3-class cache
// device. IO energy ~3.5 pJ/bit (on-interposer), activation ~0.9 nJ for
// a paired-bank 64 B access.
func HBMCache() Coeffs {
	return Coeffs{
		ActJ:        0.9e-9,
		TagActJ:     0.12e-9, // quarter-size mats, ~1/8 the row energy
		ColJ:        0.35e-9,
		BitJ:        3.5e-12,
		HMJ:         0.1e-9,
		RefreshJ:    25e-9,
		BackgroundW: 0.080,
	}
}

// DDR5 returns coefficients for the off-package DDR5 backing store; its
// IO crosses the board (~15 pJ/bit system energy).
func DDR5() Coeffs {
	return Coeffs{
		ActJ:        1.6e-9,
		ColJ:        0.5e-9,
		BitJ:        15e-12,
		RefreshJ:    80e-9,
		BackgroundW: 0.100,
	}
}

// Meter accumulates event counts for one device and renders them into a
// Breakdown. Controllers bump the counters as they commit operations —
// notably, TDRAM's conditional column operation simply never bumps Col
// or Bytes on a read-miss-clean, which is where its energy saving
// appears.
type Meter struct {
	Coeffs   Coeffs
	Channels int

	Acts      uint64
	TagActs   uint64
	Cols      uint64
	Bytes     uint64
	HMs       uint64
	Refreshes uint64
}

// NewMeter builds a meter for a device with the given channel count.
func NewMeter(c Coeffs, channels int) *Meter { return &Meter{Coeffs: c, Channels: channels} }

// Breakdown is the energy decomposition in joules.
type Breakdown struct {
	Act, Tag, Col, IO, HM, Refresh, Background float64
}

// Total sums all components.
func (b Breakdown) Total() float64 {
	return b.Act + b.Tag + b.Col + b.IO + b.HM + b.Refresh + b.Background
}

// Render computes the breakdown for a run of the given length.
func (m *Meter) Render(runtime sim.Tick) Breakdown {
	sec := float64(runtime) * 1e-12
	return Breakdown{
		Act:        float64(m.Acts) * m.Coeffs.ActJ,
		Tag:        float64(m.TagActs) * m.Coeffs.TagActJ,
		Col:        float64(m.Cols) * m.Coeffs.ColJ,
		IO:         float64(m.Bytes) * 8 * m.Coeffs.BitJ,
		HM:         float64(m.HMs) * m.Coeffs.HMJ,
		Refresh:    float64(m.Refreshes) * m.Coeffs.RefreshJ,
		Background: sec * m.Coeffs.BackgroundW * float64(m.Channels),
	}
}
