package energy

import (
	"math"
	"testing"
	"testing/quick"

	"tdram/internal/sim"
)

func TestBreakdownComponents(t *testing.T) {
	m := NewMeter(HBMCache(), 8)
	m.Acts = 1000
	m.Cols = 900
	m.Bytes = 900 * 64
	m.TagActs = 1000
	m.HMs = 1000
	m.Refreshes = 10
	b := m.Render(sim.Tick(1e9)) // 1 ms
	if b.Act <= 0 || b.Col <= 0 || b.IO <= 0 || b.Tag <= 0 || b.HM <= 0 || b.Refresh <= 0 || b.Background <= 0 {
		t.Fatalf("zero component: %+v", b)
	}
	want := b.Act + b.Tag + b.Col + b.IO + b.HM + b.Refresh + b.Background
	if math.Abs(b.Total()-want) > 1e-18 {
		t.Errorf("Total = %v, want %v", b.Total(), want)
	}
	// IO: 900*64 bytes * 8 * 3.5pJ ≈ 1.6128e-6 J.
	if math.Abs(b.IO-900*64*8*3.5e-12) > 1e-15 {
		t.Errorf("IO = %v", b.IO)
	}
	// Background: 1e-3 s * 0.08 W * 8 channels = 0.64 mJ.
	if math.Abs(b.Background-0.64e-3) > 1e-9 {
		t.Errorf("Background = %v", b.Background)
	}
}

func TestIODominatesForBloatedTraffic(t *testing.T) {
	// The paper (§V-C) notes ~62.6 % of HBM power is data movement; our
	// coefficients must keep IO the dominant dynamic component for a
	// traffic-heavy profile so bloat reduction translates into energy.
	m := NewMeter(HBMCache(), 8)
	m.Acts = 1_000_000
	m.Cols = 1_000_000
	m.Bytes = 1_000_000 * 64
	b := m.Render(sim.Tick(1e9))
	if b.IO < b.Act || b.IO < b.Col {
		t.Errorf("IO %.3e not dominant (act %.3e, col %.3e)", b.IO, b.Act, b.Col)
	}
}

func TestDDR5MoreExpensivePerBit(t *testing.T) {
	if DDR5().BitJ <= HBMCache().BitJ {
		t.Error("off-package DDR5 must cost more per bit than on-package HBM")
	}
}

func TestTagMatCheaperThanDataMat(t *testing.T) {
	c := HBMCache()
	if c.TagActJ >= c.ActJ {
		t.Error("quarter-size tag mats must cost less than data-bank activation")
	}
}

// Property: energy is monotone in every counter.
func TestMonotoneProperty(t *testing.T) {
	f := func(acts, cols, bytes uint16, extraActs uint8) bool {
		a := NewMeter(HBMCache(), 8)
		a.Acts, a.Cols, a.Bytes = uint64(acts), uint64(cols), uint64(bytes)
		b := NewMeter(HBMCache(), 8)
		b.Acts, b.Cols, b.Bytes = uint64(acts)+uint64(extraActs), uint64(cols), uint64(bytes)
		rt := sim.Tick(1e6)
		return b.Render(rt).Total() >= a.Render(rt).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
