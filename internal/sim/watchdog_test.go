package sim

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"
)

func TestWatchdogNilIsInert(t *testing.T) {
	var w *Watchdog
	w.Progress()
	w.TripDrained(3)
	if w.Tripped() {
		t.Error("nil watchdog tripped")
	}
	if got := w.Report(); got != "watchdog: not armed" {
		t.Errorf("nil Report() = %q", got)
	}
}

func TestWatchdogNegativeWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewWatchdog(New(), -1)
}

// TestWatchdogWindowTrip: time advances, events keep firing, but no
// request retires — the periodic check trips and Run returns early.
func TestWatchdogWindowTrip(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 100*Nanosecond)
	// A self-rescheduling non-daemon event: the machine is "busy" (by the
	// kernel's nonDaemon signal) and simulated time advances 1 ns at a
	// time, but Progress is never called.
	var spin func()
	spin = func() { s.Schedule(Nanosecond, spin) }
	s.Schedule(0, spin)
	end := s.Run(Millisecond)
	if !w.Tripped() {
		t.Fatal("watchdog did not trip on a no-progress spin")
	}
	if end >= Millisecond {
		t.Errorf("run continued to %v despite the trip", end)
	}
	if r := w.Report(); !strings.Contains(r, "no request retired within") {
		t.Errorf("report lacks the window reason: %q", r)
	}
}

// TestWatchdogWindowHealthy: the same spin with Progress called every
// event never trips, and the armed watchdog's daemon check does not keep
// a drained simulation alive.
func TestWatchdogWindowHealthy(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 100*Nanosecond)
	n := 0
	var spin func()
	spin = func() {
		w.Progress()
		if n++; n < 1000 {
			s.Schedule(Nanosecond, spin)
		}
	}
	s.Schedule(0, spin)
	s.Run(0)
	if w.Tripped() {
		t.Fatalf("watchdog tripped on a healthy run: %s", w.Report())
	}
	if n != 1000 {
		t.Errorf("run stopped after %d events", n)
	}
	// Only the watchdog's own daemon check can remain queued; Run(0) must
	// have stopped at the last real event, not idled on the daemon.
	if s.nonDaemon != 0 {
		t.Errorf("nonDaemon = %d after drain", s.nonDaemon)
	}
}

// TestWatchdogOutstanding: with an outstanding callback registered, an
// idle machine (outstanding 0) never trips even while daemon-like event
// chatter continues.
func TestWatchdogOutstanding(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 10*Nanosecond)
	w.SetOutstanding(func() int { return 0 })
	n := 0
	var spin func()
	spin = func() {
		if n++; n < 200 {
			s.Schedule(Nanosecond, spin)
		}
	}
	s.Schedule(0, spin)
	s.Run(0)
	if w.Tripped() {
		t.Fatalf("watchdog tripped with zero outstanding: %s", w.Report())
	}
}

// TestWatchdogEventBudget: zero-delay events rescheduling each other
// never advance the clock, so the window check cannot fire; the event
// budget catches the same-tick livelock.
func TestWatchdogEventBudget(t *testing.T) {
	s := New()
	w := NewWatchdog(s, Millisecond)
	w.SetEventBudget(1000)
	var spin func()
	spin = func() { s.Schedule(0, spin) }
	s.Schedule(0, spin)
	s.Run(0)
	if !w.Tripped() {
		t.Fatal("event budget did not trip on a same-tick spin")
	}
	if s.Now() != 0 {
		t.Errorf("clock advanced to %v in a same-tick spin", s.Now())
	}
	if r := w.Report(); !strings.Contains(r, "events fired without a request retiring") {
		t.Errorf("report lacks the budget reason: %q", r)
	}
	if s.fired > 1100 {
		t.Errorf("%d events fired before the 1000-event budget tripped", s.fired)
	}
}

func TestWatchdogTripDrained(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 0)
	w.TripDrained(7)
	if !w.Tripped() {
		t.Fatal("TripDrained did not trip")
	}
	if r := w.Report(); !strings.Contains(r, "drained with 7 request(s) outstanding") {
		t.Errorf("report lacks the drained reason: %q", r)
	}
}

// TestWatchdogReportDumps: registered dumps render in Report with their
// names, plus the kernel line.
func TestWatchdogReportDumps(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 0)
	w.AddDump("cores", func() string { return "core0 stalled" })
	w.AddDump("queues", func() string { return "readq=5" })
	w.TripDrained(1)
	r := w.Report()
	for _, want := range []string{"kernel:", "cores: core0 stalled", "queues: readq=5"} {
		if !strings.Contains(r, want) {
			t.Errorf("report lacks %q:\n%s", want, r)
		}
	}
}

// TestWatchdogRunUntilAborts: RunUntil returns false (instead of
// spinning forever) once the watchdog trips.
func TestWatchdogRunUntilAborts(t *testing.T) {
	s := New()
	w := NewWatchdog(s, 50*Nanosecond)
	var spin func()
	spin = func() { s.Schedule(Nanosecond, spin) }
	s.Schedule(0, spin)
	if s.RunUntil(func() bool { return false }) {
		t.Fatal("RunUntil reported cond satisfied")
	}
	if !w.Tripped() {
		t.Fatal("RunUntil drained without the watchdog tripping")
	}
}

// TestWatchdogDeterminism: an armed watchdog is purely observational — a
// healthy run fires the same events at the same times with and without
// it.
func TestWatchdogDeterminism(t *testing.T) {
	run := func(arm bool) (Tick, uint64) {
		s := New()
		var w *Watchdog
		if arm {
			w = NewWatchdog(s, 100*Nanosecond)
		}
		n := 0
		var spin func()
		spin = func() {
			w.Progress()
			if n++; n < 5000 {
				s.Schedule(3*Nanosecond, spin)
			}
		}
		s.Schedule(0, spin)
		end := s.Run(0)
		// Subtract the daemon checks the armed run fires.
		return end, uint64(n)
	}
	armedEnd, armedN := run(true)
	plainEnd, plainN := run(false)
	if armedEnd != plainEnd || armedN != plainN {
		t.Errorf("armed run (%v, %d events) differs from plain run (%v, %d events)",
			armedEnd, armedN, plainEnd, plainN)
	}
}

// TestWatchdogErrStructured: a trip is recoverable as a *TripError whose
// Reason is the one-line diagnosis and whose Diagnostics carry the full
// Report() dump, and an untripped (or nil) watchdog's Err() is nil — the
// programmatic trip result a service job consumes.
func TestWatchdogErrStructured(t *testing.T) {
	var nilWd *Watchdog
	if err := nilWd.Err(); err != nil {
		t.Errorf("nil watchdog Err() = %v", err)
	}

	s := New()
	w := NewWatchdog(s, 100*Nanosecond)
	if err := w.Err(); err != nil {
		t.Errorf("untripped Err() = %v", err)
	}
	var spin func()
	spin = func() { s.Schedule(Nanosecond, spin) }
	s.Schedule(0, spin)
	s.Run(Millisecond)
	if !w.Tripped() {
		t.Fatal("spin did not trip the watchdog")
	}
	err := w.Err()
	var trip *TripError
	if !errors.As(err, &trip) {
		t.Fatalf("Err() = %T, want *TripError", err)
	}
	if !strings.Contains(trip.Reason, "no request retired within") {
		t.Errorf("Reason = %q", trip.Reason)
	}
	if strings.Contains(trip.Error(), "\n") {
		t.Errorf("Error() is not one line: %q", trip.Error())
	}
	if !strings.Contains(trip.Diagnostics, "kernel:") || !strings.Contains(trip.Diagnostics, trip.Reason) {
		t.Errorf("Diagnostics lack the kernel dump or reason:\n%s", trip.Diagnostics)
	}
}

// TestWatchdogTripHandlerNoStderr: with a trip handler installed the
// trip path is fully programmatic — nothing in the kernel writes to
// stderr; the handler and the structured Err() are the only outputs. A
// service that installs a handler therefore fails the job cleanly with
// no diagnostic spray from library code.
func TestWatchdogTripHandlerNoStderr(t *testing.T) {
	old := os.Stderr
	r, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = pw
	defer func() { os.Stderr = old }()

	s := New()
	w := NewWatchdog(s, 100*Nanosecond)
	handled := ""
	w.SetOnTrip(func(reason string) { handled = reason })
	var spin func()
	spin = func() { s.Schedule(Nanosecond, spin) }
	s.Schedule(0, spin)
	s.Run(Millisecond)

	pw.Close()
	os.Stderr = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Tripped() || handled == "" {
		t.Fatal("trip handler did not run")
	}
	if len(out) != 0 {
		t.Errorf("trip wrote %d bytes to stderr with a handler installed:\n%s", len(out), out)
	}
}
