package sim

import (
	"fmt"
	"strings"
)

// Watchdog detects a simulation that has stopped making forward progress
// and aborts it with a diagnostic dump instead of letting it hang or
// silently under-report. Two failure modes are covered:
//
//   - Time-window livelock: simulated time advances (events keep firing)
//     but no request retires within a configurable window. Detected by a
//     periodic daemon check.
//   - Same-tick livelock: zero-delay events reschedule each other so the
//     clock never advances and the window check never fires. Detected by
//     an event budget — a bound on events fired since the last retire.
//
// A third condition, the event queue draining while requests remain
// outstanding, cannot be observed from inside the kernel (the queue is
// simply empty); the driving layer reports it via TripDrained.
//
// The model layers call Progress() whenever a request retires, and may
// register dump functions describing their queues; Report() renders the
// kernel state plus every dump when the watchdog trips. All methods are
// safe on a nil *Watchdog, so callers keep the nil-check hook pattern.
type Watchdog struct {
	s      *Simulator
	window Tick

	// budget bounds events fired without progress (same-tick livelock).
	budget uint64

	// outstanding, when set, reports in-flight requests; the watchdog
	// only trips while it is positive. Without it the kernel's
	// non-daemon event count is the (coarser) liveness signal.
	outstanding func() int

	dumps []watchdogDump

	progress        uint64 // retires observed
	progAtCheck     uint64 // progress at the last window check
	firedAtProgress uint64 // kernel event count at the last retire

	// onTrip, when set, runs once at the moment the watchdog first
	// trips — before any Report() call, so a flight recorder can
	// snapshot its rings while they still describe the hang.
	onTrip func(reason string)

	tripped bool
	reason  string
}

type watchdogDump struct {
	name string
	fn   func() string
}

// TripError is the structured result of a watchdog trip. Error() is the
// one-line reason; the full multi-line Report() text rides along in
// Diagnostics so a programmatic consumer (a service failing a job, a
// harness filing a structured failure) can log the reason cheaply and
// attach the dump where it belongs instead of every caller printing the
// whole machine state to stderr. Recover it from a run's error chain
// with errors.As.
type TripError struct {
	Reason      string // the one-line trip reason
	Diagnostics string // the full Report() dump at trip observation time
}

func (e *TripError) Error() string { return "watchdog tripped: " + e.Reason }

// Err returns nil while the watchdog has not tripped, and a *TripError
// carrying the trip reason plus the current Report() diagnostics once it
// has. Nil-receiver safe, like every Watchdog method.
func (w *Watchdog) Err() error {
	if w == nil || !w.tripped {
		return nil
	}
	return &TripError{Reason: w.reason, Diagnostics: w.Report()}
}

// defaultEventBudget bounds events between retires. Real configurations
// fire at most a few thousand events per retirement; a runaway same-tick
// loop crosses this in well under a second of wall time.
const defaultEventBudget = 4 << 20

// NewWatchdog attaches a watchdog to s. A positive window arms the
// periodic no-progress check at that simulated-time granularity; a zero
// window leaves only the event-budget check armed. Only one watchdog per
// simulator; attaching a second replaces the first.
func NewWatchdog(s *Simulator, window Tick) *Watchdog {
	if window < 0 {
		panic(fmt.Sprintf("sim: negative watchdog window %v", window))
	}
	w := &Watchdog{s: s, window: window, budget: defaultEventBudget}
	s.watchdog = w
	if window > 0 {
		s.ScheduleDaemonArg(window, watchdogCheck, w)
	}
	return w
}

// watchdogCheck dispatches the periodic check without allocating a
// method-value closure per reschedule.
func watchdogCheck(a any, _ Tick) { a.(*Watchdog).check() }

// SetEventBudget overrides the events-without-progress bound (tests).
func (w *Watchdog) SetEventBudget(n uint64) { w.budget = n }

// SetOutstanding registers the in-flight request count the liveness
// checks consult; the watchdog only trips while it is positive.
func (w *Watchdog) SetOutstanding(fn func() int) { w.outstanding = fn }

// AddDump registers a named diagnostic renderer included in Report().
func (w *Watchdog) AddDump(name string, fn func() string) {
	w.dumps = append(w.dumps, watchdogDump{name, fn})
}

// SetOnTrip registers a callback invoked once when the watchdog first
// trips (any trip path: window, event budget, or drained queue).
func (w *Watchdog) SetOnTrip(fn func(reason string)) {
	if w != nil {
		w.onTrip = fn
	}
}

// Progress records one retired request. Model layers call it on every
// demand completion; it resets both liveness checks.
func (w *Watchdog) Progress() {
	if w == nil {
		return
	}
	w.progress++
	w.firedAtProgress = w.s.fired
}

// Tripped reports whether the watchdog has fired.
func (w *Watchdog) Tripped() bool { return w != nil && w.tripped }

// busy reports whether requests are outstanding.
func (w *Watchdog) busy() bool {
	if w.outstanding != nil {
		return w.outstanding() > 0
	}
	return w.s.nonDaemon > 0
}

func (w *Watchdog) trip(reason string) {
	if !w.tripped {
		w.tripped = true
		w.reason = reason
		if w.onTrip != nil {
			w.onTrip(reason)
		}
	}
}

// TripDrained records the drained-queue failure mode: the driving layer
// found the event queue empty while requests remain outstanding.
func (w *Watchdog) TripDrained(outstanding int) {
	if w != nil {
		w.trip(fmt.Sprintf("event queue drained with %d request(s) outstanding", outstanding))
	}
}

// check is the periodic window check (a daemon event, so an armed
// watchdog never keeps an otherwise-finished simulation alive).
func (w *Watchdog) check() {
	if w.tripped {
		return
	}
	if w.progress == w.progAtCheck && w.busy() {
		w.trip(fmt.Sprintf("no request retired within a %v window", w.window))
		return
	}
	w.progAtCheck = w.progress
	w.s.ScheduleDaemonArg(w.window, watchdogCheck, w)
}

// onStep is the event-budget check, run by the kernel after each event.
func (w *Watchdog) onStep() {
	if w.tripped || w.s.fired-w.firedAtProgress <= w.budget {
		return
	}
	if !w.busy() {
		w.firedAtProgress = w.s.fired
		return
	}
	w.trip(fmt.Sprintf("%d events fired without a request retiring", w.s.fired-w.firedAtProgress))
}

// Report renders the trip reason, kernel state and every registered
// dump. It answers "what was the machine doing" without a debugger:
// queue depths, oldest request ages and timeline cursors come from the
// dump functions the model layers registered.
func (w *Watchdog) Report() string {
	if w == nil {
		return "watchdog: not armed"
	}
	var b strings.Builder
	reason := w.reason
	if reason == "" {
		reason = "not tripped"
	}
	fmt.Fprintf(&b, "watchdog: %s\n", reason)
	fmt.Fprintf(&b, "  kernel: now=%v fired=%d pending=%d retired=%d",
		w.s.now, w.s.fired, w.s.Pending(), w.progress)
	if when, ok := w.s.peekNext(); ok {
		fmt.Fprintf(&b, " next-event=%v", when)
	}
	b.WriteString("\n")
	for _, d := range w.dumps {
		fmt.Fprintf(&b, "  %s: %s\n", d.name, d.fn())
	}
	return strings.TrimRight(b.String(), "\n")
}
