// Package sim provides the discrete-event simulation kernel used by every
// timing model in this repository: a picosecond tick clock, an event queue
// with deterministic ordering, and interval-reservation timelines used to
// model shared buses.
package sim

import (
	"fmt"
	"math"
	"strconv"
)

// Tick is a point in simulated time, measured in picoseconds. Picosecond
// resolution lets the fractional-nanosecond timing parameters from the
// paper's Table III (e.g. tHM_int = 2.5 ns, tRCD_TAG = 7.5 ns) be
// represented exactly as integers.
type Tick int64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * Nanosecond
	Millisecond Tick = 1000 * Microsecond
)

// NS converts a floating-point nanosecond quantity to ticks, rounding to
// the nearest picosecond.
func NS(ns float64) Tick {
	if ns < 0 {
		panic(fmt.Sprintf("sim: negative duration %gns", ns))
	}
	return Tick(ns*float64(Nanosecond) + 0.5)
}

// Nanoseconds reports t as a float64 nanosecond count.
func (t Tick) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds reports t as a float64 microsecond count — the time unit
// of the Chrome/Perfetto trace-event format.
func (t Tick) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String renders t as a nanosecond count with three decimals ("2.500ns").
// It sits on the obs/trace hot path, so it formats with integer
// arithmetic and strconv.AppendInt rather than fmt.Sprintf("%.3f") —
// no reflection, no float rounding, exact for the full Tick range.
func (t Tick) String() string {
	var buf [24]byte
	b := buf[:0]
	ps := int64(t)
	neg := ps < 0
	if neg {
		b = append(b, '-')
		ps = -ps
	}
	b = strconv.AppendInt(b, ps/1000, 10)
	frac := ps % 1000
	b = append(b, '.', byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	b = append(b, 'n', 's')
	return string(b)
}

// ParseTick parses a duration string with a unit suffix — "500ps",
// "2.5ns", "1us", "3ms" — into ticks. It exists so CLI flags can accept
// human-friendly intervals without importing time (whose Duration cannot
// represent sub-nanosecond model steps).
func ParseTick(s string) (Tick, error) {
	units := []struct {
		suffix string
		mult   Tick
	}{
		{"ps", Picosecond}, {"ns", Nanosecond}, {"us", Microsecond}, {"ms", Millisecond},
	}
	for _, u := range units {
		n := len(s) - len(u.suffix)
		if n <= 0 || s[n:] != u.suffix {
			continue
		}
		// strconv.ParseFloat consumes the whole numeric prefix, so junk
		// like "1.2.3ns" or "5x7us" is rejected instead of silently
		// prefix-matching the way fmt.Sscanf("%g") would.
		v, err := strconv.ParseFloat(s[:n], 64)
		if err != nil {
			return 0, fmt.Errorf("sim: bad duration %q: %v", s, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Errorf("sim: non-finite duration %q", s)
		}
		if v < 0 {
			return 0, fmt.Errorf("sim: negative duration %q", s)
		}
		return Tick(v*float64(u.mult) + 0.5), nil
	}
	return 0, fmt.Errorf("sim: duration %q needs a ps/ns/us/ms suffix", s)
}

// event is a scheduled callback, stored inline in the wheel's bucket
// slabs. Every event is a (fn, arg) pair: the typed-argument Schedule
// variants store the caller's prebound function and argument directly
// (zero allocations for pointer args), while the classic closure-based
// variants store the closure as arg behind a static dispatcher.
// Insertion order within a tick IS the deterministic tie-break order, so
// no per-event sequence number is stored.
type event struct {
	when Tick
	//tdlint:shared fn, arg — callbacks are code plus reachable model state; the kernel cannot deep-copy them (see snapshot.go's disciplines)
	fn     func(any, Tick)
	arg    any
	daemon bool // does not keep the simulation alive on its own
}

// runClosure dispatches a classic func() callback stored in arg. Func
// values are pointer-shaped, so boxing one into arg does not allocate.
func runClosure(a any, _ Tick) { a.(func())() }

// Simulator owns the clock and the event queue. The zero value is ready to
// use. Simulator is not safe for concurrent use; all models run on the
// simulation goroutine, in event order.
type Simulator struct {
	now       Tick
	w         wheel
	fired     uint64
	nonDaemon int // queued events that keep the simulation alive

	// watchdog, when armed via NewWatchdog, aborts Run/RunUntil on
	// detected livelock; nil costs one branch per Step.
	//tdlint:shared watchdog — deliberately not captured by Restore: an armed watchdog is bound to its own Simulator
	watchdog *Watchdog
}

// New returns a Simulator with time zero and an empty queue.
func New() *Simulator { return &Simulator{} }

// Now reports the current simulated time.
func (s *Simulator) Now() Tick { return s.now }

// Fired reports the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports the number of events still queued.
func (s *Simulator) Pending() int { return s.w.count }

// Schedule runs fn after delay ticks. A zero delay runs fn after all
// previously scheduled events at the current tick. Negative delays panic:
// models that compute a start time in the past have a timing bug.
func (s *Simulator) Schedule(delay Tick, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past at %v", delay, s.now))
	}
	s.nonDaemon++
	s.place(event{when: s.now + delay, fn: runClosure, arg: fn})
}

// ScheduleAt runs fn at absolute time when (>= Now).
func (s *Simulator) ScheduleAt(when Tick, fn func()) {
	if when < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, s.now))
	}
	s.nonDaemon++
	s.place(event{when: when, fn: runClosure, arg: fn})
}

// ScheduleDaemon runs fn after delay like Schedule, but the event does
// not keep the simulation alive: Run and RunUntil stop once only daemon
// events remain. Perpetual self-rescheduling activities — DRAM refresh —
// use this so a simulation "drains" when real work finishes.
func (s *Simulator) ScheduleDaemon(delay Tick, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past at %v", delay, s.now))
	}
	s.place(event{when: s.now + delay, fn: runClosure, arg: fn, daemon: true})
}

// ScheduleArg runs fn(arg, when) after delay ticks. Unlike Schedule with
// a capturing closure, it allocates nothing when arg is pointer-shaped:
// the controllers' per-request hot paths pass their transaction as arg
// and a package-level function as fn.
func (s *Simulator) ScheduleArg(delay Tick, fn func(any, Tick), arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past at %v", delay, s.now))
	}
	s.nonDaemon++
	s.place(event{when: s.now + delay, fn: fn, arg: arg})
}

// ScheduleArgAt runs fn(arg, when) at absolute time when (>= Now), with
// the same allocation discipline as ScheduleArg.
func (s *Simulator) ScheduleArgAt(when Tick, fn func(any, Tick), arg any) {
	if when < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", when, s.now))
	}
	s.nonDaemon++
	s.place(event{when: when, fn: fn, arg: arg})
}

// ScheduleDaemonArg is ScheduleDaemon with the typed-argument callback
// form — for perpetual activities (refresh, watchdog checks, samplers)
// that would otherwise allocate a fresh method-value closure on every
// self-reschedule.
func (s *Simulator) ScheduleDaemonArg(delay Tick, fn func(any, Tick), arg any) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: schedule %v in the past at %v", delay, s.now))
	}
	s.place(event{when: s.now + delay, fn: fn, arg: arg, daemon: true})
}

// Step executes the next event, advancing the clock to its timestamp. It
// reports false when the queue is empty.
func (s *Simulator) Step() bool {
	i, ok := s.nextL0()
	if !ok {
		return false
	}
	b := s.w.l0[i]
	e := b[s.w.head]
	s.w.head++
	if s.w.head == len(b) {
		// Bucket drained: clear references for the GC, keep the slab's
		// capacity for reuse, and drop its occupancy bit.
		clear(b)
		s.w.l0[i] = b[:0]
		s.w.head = 0
		s.w.l0bits[i>>6] &^= 1 << uint(i&63)
	}
	s.w.count--
	if !e.daemon {
		s.nonDaemon--
	}
	s.now = s.w.l0base + Tick(i)
	s.fired++
	e.fn(e.arg, e.when)
	if s.watchdog != nil {
		s.watchdog.onStep()
	}
	return true
}

// Run executes events until the queue drains or until an event would fire
// after limit; it returns the time of the last executed event. A limit of
// zero means no limit. A tripped watchdog stops the run immediately.
func (s *Simulator) Run(limit Tick) Tick {
	for {
		if s.watchdog != nil && s.watchdog.tripped {
			return s.now
		}
		when, ok := s.peekNext()
		if !ok || (limit == 0 && s.nonDaemon == 0) {
			return s.now
		}
		if limit > 0 && when > limit {
			// Advance (never rewind) the clock to the limit.
			if limit > s.now {
				s.now = limit
			}
			return s.now
		}
		s.Step()
	}
}

// RunUntil executes events while cond() remains false, returning true if
// cond became true and false if the event queue drained first (or a
// tripped watchdog aborted the run).
func (s *Simulator) RunUntil(cond func() bool) bool {
	for !cond() {
		if s.watchdog != nil && s.watchdog.tripped {
			return false
		}
		if s.nonDaemon == 0 || !s.Step() {
			return false
		}
	}
	return true
}
