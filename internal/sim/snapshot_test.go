package sim

import (
	"math/rand"
	"testing"
)

// This file fuzzes Snapshot/Restore against the only correctness
// definition that matters: a kernel restored from a snapshot must fire
// the exact (id, when) event sequence — and land on the exact final
// clock/accounting — that the original kernel fires from the same
// point. The generated programs exercise every queue shape: same-tick
// bursts (insertion-order tie-breaks), daemons (nonDaemon accounting
// decides when Run drains), overflow-tier events past the wheel's
// horizon, and scheduling from inside callbacks. Callbacks schedule
// through a swappable environment pointer — the fork discipline the
// snapshot API documents.

// snapEnv is the shared model state behind every fuzz callback. The
// harness re-aims s at whichever simulator is being driven before
// resuming it; trace collects (id, now) pairs.
type snapEnv struct {
	s     *Simulator
	trace []snapFire
}

type snapFire struct {
	id uint64
	at Tick
}

// snapMix hashes an event id into the deterministic per-event decision
// stream (children, delays, daemon flags) so behaviour depends only on
// the id, never on execution history — the property that makes the
// forked and straight-line runs comparable.
func snapMix(v uint64) uint64 {
	v ^= v >> 33
	v *= 0xFF51AFD7ED558CCD
	v ^= v >> 33
	v *= 0xC4CEB9FE1A85EC53
	return v ^ (v >> 33)
}

// snapDelays are the child delays the fuzz programs draw from: same-tick
// bursts, near ticks, a mid-wheel hop, a level-1 hop, and two past the
// l1Span horizon so the overflow tier is exercised (including one far
// enough to stay in overflow across several window advances).
var snapDelays = []Tick{0, 0, 1, 3, 64, 5000, l1Span / 2, l1Span + 17, 5 * l1Span}

// snapEvent fires one fuzz event: record the trace entry, then derive
// children from the id hash and schedule them into env.s through every
// schedule variant.
func snapEvent(env *snapEnv, id uint64, depth int) func() {
	return func() {
		env.trace = append(env.trace, snapFire{id, env.s.Now()})
		if depth >= 4 {
			return
		}
		h := snapMix(id)
		kids := int(h % 4) // 0..3 children
		for k := 0; k < kids; k++ {
			kh := snapMix(id + uint64(k+1)*0x9E3779B97F4A7C15)
			delay := snapDelays[kh%uint64(len(snapDelays))]
			kid := kh | 1
			switch kh >> 60 & 3 {
			case 0:
				env.s.Schedule(delay, snapEvent(env, kid, depth+1))
			case 1:
				env.s.ScheduleAt(env.s.Now()+delay, snapEvent(env, kid, depth+1))
			case 2:
				env.s.ScheduleArg(delay, snapArgEvent, &snapArg{env, kid, depth + 1})
			default:
				// Daemon child: fires only while non-daemon work remains.
				env.s.ScheduleDaemon(delay, snapEvent(env, kid, depth+1))
			}
		}
	}
}

type snapArg struct {
	env   *snapEnv
	id    uint64
	depth int
}

func snapArgEvent(a any, _ Tick) {
	sa := a.(*snapArg)
	snapEvent(sa.env, sa.id, sa.depth)()
}

// seedProgram schedules the initial event population for one fuzz round.
func seedProgram(env *snapEnv, rng *rand.Rand) {
	n := 4 + rng.Intn(24)
	for i := 0; i < n; i++ {
		delay := snapDelays[rng.Intn(len(snapDelays))]
		id := snapMix(uint64(i)+rng.Uint64()) | 1
		if rng.Intn(5) == 0 {
			env.s.ScheduleDaemon(delay, snapEvent(env, id, 0))
		} else {
			env.s.Schedule(delay, snapEvent(env, id, 0))
		}
	}
}

// kernelFingerprint summarizes the observable end state compared across
// the straight-line and forked runs.
type kernelFingerprint struct {
	now      Tick
	fired    uint64
	pending  int
	overflow int
}

func fingerprint(s *Simulator) kernelFingerprint {
	return kernelFingerprint{s.Now(), s.Fired(), s.Pending(), s.OverflowPending()}
}

func TestSnapshotForkMatchesStraightLine(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	for seed := int64(0); seed < int64(rounds); seed++ {
		// Straight-line reference: seed, step a prefix, run to drain.
		ref := &snapEnv{s: New()}
		rng := rand.New(rand.NewSource(seed))
		seedProgram(ref, rng)
		prefix := rng.Intn(2 * ref.s.Pending())
		for i := 0; i < prefix && ref.s.Step(); i++ {
		}
		refMid := len(ref.trace)
		ref.s.Run(0)
		refEnd := fingerprint(ref.s)

		// Forked run: identical seed and prefix, then snapshot and resume
		// twice — once on the original kernel, once on a restored copy.
		env := &snapEnv{s: New()}
		rng = rand.New(rand.NewSource(seed))
		seedProgram(env, rng)
		prefix = rng.Intn(2 * env.s.Pending())
		for i := 0; i < prefix && env.s.Step(); i++ {
		}
		if got, want := len(env.trace), refMid; got != want {
			t.Fatalf("seed %d: prefix fired %d events, reference %d", seed, got, want)
		}
		snap := env.s.Snapshot()
		if snap.Now() != env.s.Now() || snap.Pending() != env.s.Pending() {
			t.Fatalf("seed %d: snapshot reports now=%v pending=%d, kernel %v/%d",
				seed, snap.Now(), snap.Pending(), env.s.Now(), env.s.Pending())
		}

		// Branch A: the original kernel keeps running past the snapshot.
		env.trace = env.trace[:0]
		env.s.Run(0)
		tailA := append([]snapFire(nil), env.trace...)
		endA := fingerprint(env.s)

		// Branch B, twice: fresh kernels restored from the same snapshot.
		for branch := 0; branch < 2; branch++ {
			fresh := New()
			fresh.Restore(snap)
			env.s = fresh // re-aim the shared environment (fork discipline)
			env.trace = env.trace[:0]
			fresh.Run(0)
			if got, want := len(env.trace), len(tailA); got != want {
				t.Fatalf("seed %d branch %d: restored run fired %d events, original %d",
					seed, branch, got, want)
			}
			for i := range tailA {
				if env.trace[i] != tailA[i] {
					t.Fatalf("seed %d branch %d: event %d diverged: restored %+v original %+v",
						seed, branch, i, env.trace[i], tailA[i])
				}
			}
			if end := fingerprint(fresh); end != endA {
				t.Fatalf("seed %d branch %d: end state %+v, original %+v", seed, branch, end, endA)
			}
		}

		// The straight-line reference must equal prefix + tail.
		if refMid+len(tailA) != len(ref.trace) {
			t.Fatalf("seed %d: straight-line fired %d events, prefix %d + tail %d",
				seed, len(ref.trace), refMid, len(tailA))
		}
		for i, f := range tailA {
			if ref.trace[refMid+i] != f {
				t.Fatalf("seed %d: tail event %d diverged from straight-line: %+v vs %+v",
					seed, i, f, ref.trace[refMid+i])
			}
		}
		if endA != refEnd {
			t.Fatalf("seed %d: forked end state %+v, straight-line %+v", seed, endA, refEnd)
		}
	}
}

// A snapshot must stay valid after the source kernel moves on: restoring
// it rewinds to the captured point even though the original has since
// drained and mutated its buckets.
func TestSnapshotSurvivesSourceMutation(t *testing.T) {
	env := &snapEnv{s: New()}
	rng := rand.New(rand.NewSource(99))
	seedProgram(env, rng)
	for i := 0; i < 5; i++ {
		env.s.Step()
	}
	snap := env.s.Snapshot()
	wantNow, wantPend := snap.Now(), snap.Pending()

	// Mutate the source heavily: drain it, then schedule fresh events.
	env.s.Run(0)
	env.s.Schedule(123, func() {})
	env.s.Run(0)

	if snap.Now() != wantNow || snap.Pending() != wantPend {
		t.Fatalf("snapshot mutated by source activity: now=%v pending=%d, want %v/%d",
			snap.Now(), snap.Pending(), wantNow, wantPend)
	}
	fresh := New()
	fresh.Restore(snap)
	env.s = fresh
	env.trace = env.trace[:0]
	fresh.Run(0)
	if fresh.Now() < wantNow || len(env.trace) == 0 {
		t.Fatalf("restored kernel did not resume: now=%v fired %d trace events",
			fresh.Now(), len(env.trace))
	}
}

// Restoring an empty-kernel snapshot (the warmup-image fork point) must
// carry the clock and accounting and leave the queue empty.
func TestSnapshotEmptyKernel(t *testing.T) {
	s := New()
	s.Schedule(1500, func() {})
	s.Run(0)
	snap := s.Snapshot()
	if snap.Pending() != 0 {
		t.Fatalf("pending = %d", snap.Pending())
	}
	fresh := New()
	fresh.Restore(snap)
	if fresh.Now() != 1500 || fresh.Pending() != 0 || fresh.Fired() != 1 {
		t.Fatalf("restored: now=%v pending=%d fired=%d", fresh.Now(), fresh.Pending(), fresh.Fired())
	}
	// The restored kernel must be fully functional for new work.
	ran := false
	fresh.Schedule(10, func() { ran = true })
	fresh.Run(0)
	if !ran || fresh.Now() != 1510 {
		t.Fatalf("restored kernel not runnable: ran=%v now=%v", ran, fresh.Now())
	}
}
