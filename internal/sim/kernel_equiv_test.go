package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// This file keeps the seed kernel's container/heap event queue alive as a
// test-only reference implementation and checks, over seeded random
// schedule/fire programs, that the timing wheel fires events in exactly
// the same deterministic (when, seq) order. The reference stores an
// explicit sequence number; the wheel encodes the same order structurally
// (per-tick buckets appended in scheduling order, stable cascades, and
// upper-bound insertion in the overflow tier).

type refEvent struct {
	when   Tick
	seq    uint64
	daemon bool
	fn     func()
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// refSim is the seed kernel: a (when, seq) binary heap.
type refSim struct {
	tnow   Tick
	seq    uint64
	events refHeap
}

func (r *refSim) schedule(delay Tick, fn func(), daemon bool, variant int) {
	r.seq++
	heap.Push(&r.events, refEvent{when: r.tnow + delay, seq: r.seq, daemon: daemon, fn: fn})
}

func (r *refSim) step() bool {
	if len(r.events) == 0 {
		return false
	}
	e := heap.Pop(&r.events).(refEvent)
	r.tnow = e.when
	e.fn()
	return true
}

func (r *refSim) now() Tick { return r.tnow }

// eqKernel abstracts the two kernels for the equivalence driver.
type eqKernel interface {
	schedule(delay Tick, fn func(), daemon bool, variant int)
	step() bool
	now() Tick
}

// wheelKernel adapts *Simulator, spreading the program across all the
// schedule variants (closure and typed-argument, relative and absolute)
// so their interleavings are covered too. Every variant must land in the
// same total order.
type wheelKernel struct{ s *Simulator }

func (w wheelKernel) schedule(delay Tick, fn func(), daemon bool, variant int) {
	switch {
	case daemon && variant%2 == 0:
		w.s.ScheduleDaemon(delay, fn)
	case daemon:
		w.s.ScheduleDaemonArg(delay, runClosure, fn)
	case variant == 0:
		w.s.Schedule(delay, fn)
	case variant == 1:
		w.s.ScheduleAt(w.s.Now()+delay, fn)
	case variant == 2:
		w.s.ScheduleArg(delay, runClosure, fn)
	default:
		w.s.ScheduleArgAt(w.s.Now()+delay, runClosure, fn)
	}
}

func (w wheelKernel) step() bool { return w.s.Step() }
func (w wheelKernel) now() Tick  { return w.s.Now() }

// runKernelProgram executes one seeded random program against k and
// returns the firing trace. Delays mix same-tick ties, near-future
// level-0 targets, level-1 cascade targets, and overflow-tier targets;
// fired events recursively schedule children, so insertion happens both
// from outside and from inside the dispatch loop. The rng is consumed in
// schedule order and firing order, so any ordering divergence between two
// kernels also desynchronizes the traces and is caught by comparison.
func runKernelProgram(k eqKernel, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var trace []string
	nextID := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		id := nextID
		nextID++
		var delay Tick
		switch rng.Intn(6) {
		case 0:
			delay = 0
		case 1:
			delay = Tick(rng.Intn(4)) // same-tick bursts and near ties
		case 2:
			delay = Tick(rng.Intn(256))
		case 3:
			delay = Tick(rng.Intn(2 * l0Size)) // spans the level-0/level-1 boundary
		case 4:
			delay = Tick(rng.Int63n(int64(l1Span))) // cascade territory
		case 5:
			delay = l1Span + Tick(rng.Int63n(int64(3*l1Span))) // overflow tier
		}
		daemon := rng.Intn(8) == 0
		variant := rng.Intn(4)
		k.schedule(delay, func() {
			trace = append(trace, fmt.Sprintf("%d@%d", id, k.now()))
			if depth < 3 {
				for n := rng.Intn(3); n > 0; n-- {
					schedule(depth + 1)
				}
			}
		}, daemon, variant)
	}
	for i := 0; i < 48; i++ {
		schedule(0)
	}
	for k.step() {
	}
	return trace
}

func TestWheelMatchesHeapReference(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		s := New()
		got := runKernelProgram(wheelKernel{s}, seed)
		want := runKernelProgram(&refSim{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d events, heap fired %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d diverges: wheel %s, heap %s", seed, i, got[i], want[i])
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("seed %d: %d events left pending", seed, s.Pending())
		}
		if s.Fired() != uint64(len(got)) {
			t.Fatalf("seed %d: Fired = %d, trace length %d", seed, s.Fired(), len(got))
		}
	}
}

// TestOverflowDrainsIntoWheel checks the overflow tier's containment: far
// events park there, migrate back into the wheel as the window advances,
// and all fire.
func TestOverflowDrainsIntoWheel(t *testing.T) {
	s := New()
	const n = 64
	fired := 0
	for i := 0; i < n; i++ {
		s.Schedule(l1Span+Tick(i)*l1Span/8, func() { fired++ })
	}
	if s.OverflowPending() == 0 {
		t.Fatal("far-future events did not land in the overflow tier")
	}
	s.Run(0)
	if fired != n {
		t.Fatalf("fired %d of %d overflow events", fired, n)
	}
	if s.OverflowPending() != 0 {
		t.Fatalf("overflow tier still holds %d events after drain", s.OverflowPending())
	}
}

// TestOverflowDaemonBounded is the no-unbounded-growth guarantee: a
// perpetual far-future self-rescheduling daemon (the refresh/sampler
// pattern) keeps at most its own single event in the overflow tier, no
// matter how long the simulation runs.
func TestOverflowDaemonBounded(t *testing.T) {
	s := New()
	const rounds = 50
	ticks := 0
	var rearm func()
	rearm = func() {
		ticks++
		if ticks < rounds {
			s.ScheduleDaemon(3*l1Span, rearm)
		}
	}
	s.ScheduleDaemon(3*l1Span, rearm)
	peak := 0
	for s.Step() {
		if p := s.OverflowPending(); p > peak {
			peak = p
		}
	}
	if ticks != rounds {
		t.Fatalf("daemon fired %d times, want %d", ticks, rounds)
	}
	if peak > 1 {
		t.Fatalf("overflow tier grew to %d events; the drain must bound it at 1", peak)
	}
}
