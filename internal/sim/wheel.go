package sim

import "math/bits"

// This file implements the kernel's event queue as a two-level timing
// wheel with a sorted overflow tier, replacing the original
// container/heap priority queue. The heap cost O(log n) comparisons plus
// an interface{} boxing allocation per Push/Pop; the wheel schedules and
// fires in O(1) amortized with events stored inline in reusable bucket
// slabs, so the steady-state schedule/fire path allocates nothing.
//
// Geometry:
//
//	level 0:  l0Size one-tick buckets covering [l0base, l0base+l0Size)
//	          — about 4 ns at picosecond resolution. One bucket per tick
//	          means events in a bucket are already in (when, seq) order:
//	          appends happen in scheduling order and never need sorting.
//	level 1:  l1Size buckets of l0Size ticks each covering
//	          [l0base+l0Size, l0base+l1Span) — about 4.2 µs, enough for
//	          every DRAM timing parameter including tREFI. A bucket
//	          cascades wholesale into level 0 when the window reaches it;
//	          the cascade scan is stable, so per-tick FIFO order (and
//	          with it the deterministic (when, seq) firing order the
//	          models rely on) survives the move.
//	overflow: events at or beyond l0base+l1Span (watchdog windows,
//	          sampler intervals), kept sorted by when with same-when ties
//	          in scheduling order via upper-bound insertion. The prefix
//	          that fits drains back into the wheel on every window
//	          advance, so far-future self-rescheduling daemons cannot
//	          grow it without bound.
//
// Two invariants make the index arithmetic exact:
//
//   - l0base is always l0Size-aligned, so a level-0 index is
//     when-l0base and a level-1 index is (when>>l0Bits)&l1Mask.
//   - Now() never lags l0base when user code runs: the window only
//     advances inside Step, which immediately fires an event at or past
//     the new base. Schedule therefore never sees a target before the
//     window (ScheduleAt already panics for when < Now()).
const (
	l0Bits  = 12
	l0Size  = 1 << l0Bits
	l0Mask  = l0Size - 1
	l0Words = l0Size / 64

	l1Bits  = 10
	l1Size  = 1 << l1Bits
	l1Mask  = l1Size - 1
	l1Words = l1Size / 64
)

// l1Span is the total horizon the two wheel levels cover past l0base.
const l1Span = Tick(l1Size) << l0Bits

// wheel is the event store. Bucket slabs keep their capacity across
// reuse (len is reset, elements cleared for the GC), so after warmup the
// schedule path stops allocating.
type wheel struct {
	l0     [l0Size][]event
	l0bits [l0Words]uint64
	l0hint int // lowest level-0 bitmap word that can be non-zero

	l1     [l1Size][]event
	l1bits [l1Words]uint64

	overflow []event

	l0base Tick // start of the level-0 window, l0Size-aligned
	head   int  // consume offset into the front-most occupied l0 bucket
	count  int  // total queued events
}

// place routes one event into the wheel level (or overflow tier) its
// timestamp belongs to and counts it.
func (s *Simulator) place(e event) {
	s.w.count++
	s.placeWheel(e)
}

// placeWheel routes without counting — shared by place and the overflow
// drain (which only moves already-counted events).
func (s *Simulator) placeWheel(e event) {
	w := &s.w
	switch {
	case e.when < w.l0base+l0Size:
		i := int(e.when - w.l0base)
		w.l0[i] = append(w.l0[i], e)
		w.l0bits[i>>6] |= 1 << uint(i&63)
		if i>>6 < w.l0hint {
			w.l0hint = i >> 6
		}
	case e.when < w.l0base+l1Span:
		i := int(e.when>>l0Bits) & l1Mask
		w.l1[i] = append(w.l1[i], e)
		w.l1bits[i>>6] |= 1 << uint(i&63)
	default:
		// Sorted upper-bound insert: same-when events stay in scheduling
		// order, preserving the (when, seq) total order through the tier.
		o := w.overflow
		lo, hi := 0, len(o)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if o[mid].when <= e.when {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		o = append(o, event{})
		copy(o[lo+1:], o[lo:])
		o[lo] = e
		w.overflow = o
	}
}

// scanL0 finds the lowest occupied level-0 bucket. The hint skips bitmap
// words already known empty; buckets behind the front never repopulate
// (events cannot be scheduled before Now()), so advancing it is safe.
func (s *Simulator) scanL0() (int, bool) {
	w := &s.w
	for i := w.l0hint; i < l0Words; i++ {
		if word := w.l0bits[i]; word != 0 {
			w.l0hint = i
			return i<<6 + bits.TrailingZeros64(word), true
		}
	}
	w.l0hint = l0Words
	return 0, false
}

// scanL1 finds the first occupied level-1 bucket in ring order starting
// just past the block the level-0 window occupies. Ring order equals
// time order across the level's validity window, so the first occupied
// bucket holds the earliest level-1 events.
func (s *Simulator) scanL1() (int, bool) {
	w := &s.w
	start := (int(s.w.l0base>>l0Bits) + 1) & l1Mask
	wd := start >> 6
	if word := w.l1bits[wd] >> uint(start&63); word != 0 {
		return start + bits.TrailingZeros64(word), true
	}
	// Remaining words, wrapping. The final iteration re-checks word wd:
	// its high bits were seen empty above, so only the wrapped-around low
	// bits can match.
	for k := 1; k <= l1Words; k++ {
		i := (wd + k) % l1Words
		if word := w.l1bits[i]; word != 0 {
			return i<<6 + bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// advance moves the level-0 window forward to the next pending events:
// either a cascade of the earliest occupied level-1 bucket, or (both
// levels empty) a jump straight to the first overflow event. Callers
// guarantee at least one event is queued and level 0 is empty.
func (s *Simulator) advance() {
	if i, ok := s.scanL1(); ok {
		s.cascade(i)
		return
	}
	s.w.l0base = s.w.overflow[0].when &^ Tick(l0Mask)
	s.w.l0hint = 0
	s.drainOverflow()
}

// cascade redistributes level-1 bucket i into level 0, advancing l0base
// to that bucket's block. The scan is stable: same-tick events keep
// their scheduling order in the target bucket.
func (s *Simulator) cascade(i int) {
	w := &s.w
	cur := int(w.l0base>>l0Bits) & l1Mask
	d := (i - cur) & l1Mask
	w.l0base = ((w.l0base >> l0Bits) + Tick(d)) << l0Bits
	w.l0hint = 0
	b := w.l1[i]
	for _, e := range b {
		j := int(e.when & l0Mask)
		w.l0[j] = append(w.l0[j], e)
		w.l0bits[j>>6] |= 1 << uint(j&63)
	}
	clear(b)
	w.l1[i] = b[:0]
	w.l1bits[i>>6] &^= 1 << uint(i&63)
	s.drainOverflow()
}

// drainOverflow migrates the sorted-prefix of overflow events that now
// fit under the advanced window back into the wheel, keeping the tier's
// invariant that its head is always at or past l0base+l1Span.
func (s *Simulator) drainOverflow() {
	o := s.w.overflow
	end := s.w.l0base + l1Span
	n := 0
	for n < len(o) && o[n].when < end {
		n++
	}
	if n == 0 {
		return
	}
	for _, e := range o[:n] {
		s.placeWheel(e)
	}
	rest := copy(o, o[n:])
	clear(o[rest:])
	s.w.overflow = o[:rest]
}

// nextL0 returns the level-0 index of the earliest pending event,
// advancing the window as needed. It reports false on an empty queue.
func (s *Simulator) nextL0() (int, bool) {
	if s.w.count == 0 {
		return 0, false
	}
	for {
		if i, ok := s.scanL0(); ok {
			return i, true
		}
		s.advance()
	}
}

// peekNext reports the earliest pending event's time without firing
// anything or advancing the window (Run's limit check must not move
// l0base past Now(), or a schedule issued after an early return could
// target a tick behind the window).
func (s *Simulator) peekNext() (Tick, bool) {
	if s.w.count == 0 {
		return 0, false
	}
	if i, ok := s.scanL0(); ok {
		return s.w.l0base + Tick(i), true
	}
	if i, ok := s.scanL1(); ok {
		b := s.w.l1[i]
		min := b[0].when
		for _, e := range b[1:] {
			if e.when < min {
				min = e.when
			}
		}
		return min, true
	}
	return s.w.overflow[0].when, true
}

// OverflowPending reports the number of events parked in the overflow
// tier (tests: the tier must drain as the window advances).
func (s *Simulator) OverflowPending() int { return len(s.w.overflow) }
