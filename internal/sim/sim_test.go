package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTickNS(t *testing.T) {
	cases := []struct {
		ns   float64
		want Tick
	}{
		{0, 0}, {1, 1000}, {2.5, 2500}, {7.5, 7500}, {0.5, 500}, {0.75, 750},
	}
	for _, c := range cases {
		if got := NS(c.ns); got != c.want {
			t.Errorf("NS(%g) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestTickString(t *testing.T) {
	cases := []struct {
		t    Tick
		want string
	}{
		{0, "0.000ns"},
		{1, "0.001ns"},        // single picosecond
		{999, "0.999ns"},      // just below the ns boundary
		{1000, "1.000ns"},     // exactly 1 ns
		{1001, "1.001ns"},     // just past it
		{NS(2.5), "2.500ns"},  // fractional Table III parameter
		{999999, "999.999ns"}, // just below 1 us
		{Microsecond, "1000.000ns"},
		{Millisecond + 1, "1000000.001ns"},
		{-1, "-0.001ns"},
		{-999, "-0.999ns"},
		{-1000, "-1.000ns"},
		{NS(2.5) * -1, "-2.500ns"},
		{math.MaxInt64, "9223372036854775.807ns"},
		{math.MinInt64 + 1, "-9223372036854775.807ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Tick(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestNSNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NS(-1) did not panic")
		}
	}()
	NS(-1)
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	s.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %v, want 30", s.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-tick events reordered: %v", got)
		}
	}
}

func TestScheduleFromEvent(t *testing.T) {
	s := New()
	var fired []Tick
	s.Schedule(10, func() {
		fired = append(fired, s.Now())
		s.Schedule(5, func() { fired = append(fired, s.Now()) })
	})
	s.Run(0)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(10, func() {})
	s.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(5, func() {})
}

func TestRunLimit(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Tick(i)*100, func() { count++ })
	}
	s.Run(500)
	if count != 5 {
		t.Errorf("events fired by 500 = %d, want 5", count)
	}
	if s.Now() != 500 {
		t.Errorf("Now = %v, want 500", s.Now())
	}
	s.Run(0)
	if count != 10 {
		t.Errorf("total fired = %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	n := 0
	for i := 1; i <= 5; i++ {
		s.Schedule(Tick(i), func() { n++ })
	}
	if !s.RunUntil(func() bool { return n >= 3 }) {
		t.Fatal("RunUntil returned false before condition met")
	}
	if n != 3 {
		t.Errorf("n = %d, want 3", n)
	}
	if s.RunUntil(func() bool { return n >= 100 }) {
		t.Error("RunUntil reported success after queue drained")
	}
}

func TestDaemonDoesNotKeepRunAlive(t *testing.T) {
	s := New()
	ticks := 0
	var daemon func()
	daemon = func() {
		ticks++
		s.ScheduleDaemon(10, daemon) // perpetual, like refresh
	}
	s.ScheduleDaemon(10, daemon)
	fired := false
	s.Schedule(35, func() { fired = true })
	s.Run(0)
	if !fired {
		t.Fatal("regular event did not fire")
	}
	// Daemons at 10, 20, 30 run before the regular event at 35; the
	// daemon at 40 must not.
	if ticks != 3 {
		t.Errorf("daemon ticks = %d, want 3", ticks)
	}
}

func TestDaemonDoesNotKeepRunUntilAlive(t *testing.T) {
	s := New()
	var daemon func()
	daemon = func() { s.ScheduleDaemon(10, daemon) }
	s.ScheduleDaemon(10, daemon)
	if s.RunUntil(func() bool { return false }) {
		t.Fatal("RunUntil returned true")
	}
}

func TestDaemonHonoredWithLimit(t *testing.T) {
	s := New()
	ticks := 0
	var daemon func()
	daemon = func() { ticks++; s.ScheduleDaemon(10, daemon) }
	s.ScheduleDaemon(10, daemon)
	s.Run(45)
	if ticks != 4 {
		t.Errorf("daemon ticks under explicit limit = %d, want 4", ticks)
	}
}

func TestStepEmpty(t *testing.T) {
	s := New()
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
}

func TestFiredPending(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d", s.Pending())
	}
	s.Step()
	if s.Fired() != 1 || s.Pending() != 1 {
		t.Errorf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Tick
		for _, d := range delays {
			s.Schedule(Tick(d), func() { fired = append(fired, s.Now()) })
		}
		s.Run(0)
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimelineBasic(t *testing.T) {
	tl := NewTimeline("dq")
	if got := tl.FirstFree(100, 10); got != 100 {
		t.Errorf("FirstFree on empty = %v", got)
	}
	tl.Reserve(100, 10)
	if tl.FreeAt(105, 2) {
		t.Error("overlap reported free")
	}
	if !tl.FreeAt(110, 5) {
		t.Error("adjacent after reported busy")
	}
	if !tl.FreeAt(90, 10) {
		t.Error("adjacent before reported busy")
	}
	if got := tl.FirstFree(100, 5); got != 110 {
		t.Errorf("FirstFree during busy = %v, want 110", got)
	}
}

func TestTimelineGapFit(t *testing.T) {
	tl := NewTimeline("ca")
	tl.Reserve(0, 10)
	tl.Reserve(30, 10)
	if got := tl.FirstFree(0, 20); got != 10 {
		t.Errorf("gap fit = %v, want 10", got)
	}
	if got := tl.FirstFree(0, 21); got != 40 {
		t.Errorf("too-large gap = %v, want 40", got)
	}
}

func TestTimelineOutOfOrderReserve(t *testing.T) {
	tl := NewTimeline("dq")
	tl.Reserve(100, 10)
	tl.Reserve(50, 10) // earlier than existing: the write-offset case
	if got := tl.FirstFree(0, 100); got != 110 {
		t.Errorf("FirstFree(0,100) = %v, want 110", got)
	}
	if got := tl.FirstFree(60, 40); got != 60 {
		t.Errorf("FirstFree in gap = %v, want 60", got)
	}
}

func TestTimelineOverlapPanics(t *testing.T) {
	tl := NewTimeline("dq")
	tl.Reserve(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Reserve did not panic")
		}
	}()
	tl.Reserve(5, 10)
}

func TestTimelineRelease(t *testing.T) {
	tl := NewTimeline("dq")
	for i := 0; i < 100; i++ {
		tl.Reserve(Tick(i*20), 10)
	}
	tl.Release(1000)
	if tl.Intervals() >= 100 {
		t.Errorf("Release did not prune: %d intervals", tl.Intervals())
	}
	// Reservations after the prune point are preserved.
	if tl.FreeAt(1980, 10) {
		t.Error("reservation after prune point lost")
	}
}

func TestTimelineMerge(t *testing.T) {
	tl := NewTimeline("dq")
	tl.Reserve(0, 10)
	tl.Reserve(10, 10)
	tl.Reserve(20, 10)
	if tl.Intervals() != 1 {
		t.Errorf("abutting intervals not merged: %d", tl.Intervals())
	}
	if tl.BusyUntil() != 30 {
		t.Errorf("BusyUntil = %v", tl.BusyUntil())
	}
}

// TestTimelineBridgeMerge fills the gap between two intervals in one
// Reserve, which must merge backward and forward in the same call.
func TestTimelineBridgeMerge(t *testing.T) {
	tl := NewTimeline("dq")
	tl.Reserve(0, 10)
	tl.Reserve(20, 10)
	tl.Reserve(10, 10) // bridges both neighbours
	if tl.Intervals() != 1 {
		t.Errorf("bridge reserve left %d intervals, want 1", tl.Intervals())
	}
	if tl.BusyUntil() != 30 {
		t.Errorf("BusyUntil = %v, want 30", tl.BusyUntil())
	}
	if got := tl.FirstFree(0, 1); got != 30 {
		t.Errorf("FirstFree(0,1) = %v, want 30", got)
	}
}

// TestTimelineReleaseMidInterval prunes with a cutoff falling inside a
// reservation: the straddling interval must survive intact.
func TestTimelineReleaseMidInterval(t *testing.T) {
	tl := NewTimeline("dq")
	tl.Reserve(0, 10)
	tl.Reserve(20, 10)
	tl.Reserve(40, 10)
	tl.Release(25) // inside [20,30)
	if tl.Intervals() != 2 {
		t.Errorf("Release(25) left %d intervals, want 2", tl.Intervals())
	}
	if tl.FreeAt(20, 10) || tl.FreeAt(40, 10) {
		t.Error("Release dropped a live reservation")
	}
	if !tl.FreeAt(10, 10) {
		t.Error("pruned region still reported busy")
	}
	// Release is monotonic: a stale smaller cutoff is a no-op.
	tl.Release(5)
	if tl.Intervals() != 2 {
		t.Errorf("stale Release changed state: %d intervals", tl.Intervals())
	}
}

// Property: a randomized sequence of first-fit reservations never
// overlaps, and FirstFree always returns a slot at or after the earliest
// requested time.
func TestTimelineNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := NewTimeline("p")
		type iv struct{ s, e Tick }
		var placed []iv
		for i := 0; i < 100; i++ {
			earliest := Tick(rng.Intn(500))
			dur := Tick(1 + rng.Intn(20))
			at := tl.FirstFree(earliest, dur)
			if at < earliest {
				return false
			}
			tl.Reserve(at, dur)
			placed = append(placed, iv{at, at + dur})
		}
		sort.Slice(placed, func(i, j int) bool { return placed[i].s < placed[j].s })
		for i := 1; i < len(placed); i++ {
			if placed[i].s < placed[i-1].e {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEventQueue(b *testing.B) {
	s := New()
	for i := 0; i < b.N; i++ {
		s.Schedule(Tick(i%64), func() {})
		if s.Pending() > 1024 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	s.Run(0)
}

// BenchmarkTimelineReserve is the forward-moving command-stream pattern
// that the tail fast paths in FirstFree and Reserve serve: queries land
// at or after the last busy interval, so neither scans.
func BenchmarkTimelineReserve(b *testing.B) {
	tl := NewTimeline("bench")
	var now Tick
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := tl.FirstFree(now, 4)
		tl.Reserve(at, 4)
		now = at
		if i%64 == 0 {
			tl.Release(now)
		}
	}
}

// BenchmarkTimelineOutOfOrder alternates between two offset streams so
// half the reservations take the ordered-insert slow path — the bound on
// what the write-offset case costs.
func BenchmarkTimelineOutOfOrder(b *testing.B) {
	tl := NewTimeline("bench")
	var now Tick
	b.ReportAllocs()
	for i := 0; i < b.N; i += 2 {
		tl.Reserve(now+20, 4) // far slot first
		tl.Reserve(now+8, 4)  // then the earlier one: ordered insert
		now += 32
		if i%64 == 0 {
			tl.Release(now)
		}
	}
}

func TestParseTick(t *testing.T) {
	good := []struct {
		in   string
		want Tick
	}{
		{"500ps", 500},
		{"2.5ns", 2500},
		{"1us", Microsecond},
		{"3ms", 3 * Millisecond},
		{"0ns", 0},
		{"1e3ns", Microsecond},
		{".5ns", 500},
		{"+2ns", 2000},
	}
	for _, c := range good {
		got, err := ParseTick(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseTick(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	// Junk numeric prefixes used to be silently prefix-matched by
	// fmt.Sscanf ("1.2.3ns" parsed as 1.2ns); they must now error.
	bad := []string{
		"", "ns", "5", "1.2.3ns", "5x7us", "1.2ns3", "0x5zns", "--2ns",
		"-3ns", "1 ns", "NaNns", "Infus", "-Infms", "1e999ns", "1..ns",
	}
	for _, in := range bad {
		if got, err := ParseTick(in); err == nil {
			t.Errorf("ParseTick(%q) = %v, want error", in, got)
		}
	}
}
