package sim

import "fmt"

// Timeline models a shared serial resource (a CA bus, a DQ bus, the HM
// bus) on which occupancy intervals are reserved. Reservations may be made
// out of arrival order — a write's DQ interval starts at a different fixed
// offset from its command than a read's — so a single next-free cursor is
// not enough; Timeline keeps the set of busy intervals and answers
// first-fit queries.
//
// Intervals are half-open: [start, start+dur).
type Timeline struct {
	name  string
	busy  []interval // sorted by start, non-overlapping
	prune Tick       // intervals ending before this may be discarded
}

type interval struct {
	start, end Tick
}

// NewTimeline returns an empty timeline. The name is used in panic
// messages only.
func NewTimeline(name string) *Timeline { return &Timeline{name: name} }

// FirstFree returns the earliest start >= earliest at which a reservation
// of length dur fits.
func (t *Timeline) FirstFree(earliest Tick, dur Tick) Tick {
	if dur <= 0 {
		return earliest
	}
	// Tail fast path: command streams mostly move forward, so most
	// queries land at or after the last busy interval — no scan needed.
	if n := len(t.busy); n == 0 || earliest >= t.busy[n-1].end {
		return earliest
	}
	start := earliest
	for _, iv := range t.busy {
		if iv.end <= start {
			continue
		}
		if iv.start >= start+dur {
			break // gap before iv fits
		}
		start = iv.end
	}
	return start
}

// FreeAt reports whether [start, start+dur) is unreserved.
func (t *Timeline) FreeAt(start, dur Tick) bool {
	return t.FirstFree(start, dur) == start
}

// Reserve marks [start, start+dur) busy. It panics if the interval
// overlaps an existing reservation: callers must query FirstFree/FreeAt
// first, and a violation means a protocol model double-booked a bus.
func (t *Timeline) Reserve(start, dur Tick) {
	if dur <= 0 {
		return
	}
	if !t.FreeAt(start, dur) {
		panic(fmt.Sprintf("sim: timeline %q: overlapping reservation at %v+%v", t.name, start, dur))
	}
	end := start + dur
	// Tail fast path: an append-at-end reservation (the common case once
	// FirstFree picked the slot) skips the ordered-insert scan entirely.
	if n := len(t.busy); n == 0 || start >= t.busy[n-1].end {
		if n > 0 && t.busy[n-1].end == start {
			t.busy[n-1].end = end
			return
		}
		t.busy = append(t.busy, interval{start, end})
		return
	}
	// Insert keeping order; merge with abutting neighbours to bound growth.
	i := 0
	for i < len(t.busy) && t.busy[i].start < start {
		i++
	}
	t.busy = append(t.busy, interval{})
	copy(t.busy[i+1:], t.busy[i:])
	t.busy[i] = interval{start, end}
	// merge backward
	if i > 0 && t.busy[i-1].end == start {
		t.busy[i-1].end = end
		t.busy = append(t.busy[:i], t.busy[i+1:]...)
		i--
	}
	// merge forward
	if i+1 < len(t.busy) && t.busy[i].end == t.busy[i+1].start {
		t.busy[i].end = t.busy[i+1].end
		t.busy = append(t.busy[:i+1], t.busy[i+2:]...)
	}
}

// Release discards bookkeeping for intervals that end at or before now.
// Models call this periodically (e.g. on each scheduling pass) so the
// busy list stays short.
func (t *Timeline) Release(now Tick) {
	if now <= t.prune {
		return
	}
	t.prune = now
	i := 0
	for i < len(t.busy) && t.busy[i].end <= now {
		i++
	}
	if i > 0 {
		// Compact in place rather than re-slicing forward: keeping the
		// slice anchored at the array's start preserves append capacity,
		// so a long-running timeline stops allocating once warm.
		n := copy(t.busy, t.busy[i:])
		t.busy = t.busy[:n]
	}
}

// BusyUntil reports the end of the latest reservation, or 0 when empty.
func (t *Timeline) BusyUntil() Tick {
	if len(t.busy) == 0 {
		return t.prune
	}
	return t.busy[len(t.busy)-1].end
}

// Intervals reports the number of tracked busy intervals (for tests).
func (t *Timeline) Intervals() int { return len(t.busy) }
