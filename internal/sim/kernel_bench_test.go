package sim

import "testing"

// Kernel microbenchmarks: steady-state schedule/fire throughput of the
// timing wheel against the seed heap kernel (refSim, kept in
// kernel_equiv_test.go). Each benchmark primes the wheel first so slab
// growth is out of the measured region — the acceptance numbers are the
// steady state, where the typed-argument path allocates nothing.

func nopEv(any, Tick) {}

// BenchmarkKernelScheduleFire is the controller pattern: a rolling window
// of near-future events, scheduled with the typed-argument variant and
// drained in batches.
func BenchmarkKernelScheduleFire(b *testing.B) {
	s := New()
	for i := 0; i < 4096; i++ {
		s.ScheduleArg(Tick(i%64), nopEv, nil)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleArg(Tick(i%64), nopEv, nil)
		if s.Pending() > 1024 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	for s.Pending() > 0 {
		s.Step()
	}
}

// BenchmarkKernelScheduleFireClosure is the same churn through the
// classic closure API (func values are pointer-shaped, so boxing them
// into the event's arg slot still does not allocate).
func BenchmarkKernelScheduleFireClosure(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		s.Schedule(Tick(i%64), fn)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(Tick(i%64), fn)
		if s.Pending() > 1024 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	for s.Pending() > 0 {
		s.Step()
	}
}

// BenchmarkKernelSameTickBurst measures the tie-ordering path: bursts of
// events on one tick, fired in FIFO order from a single bucket slab.
func BenchmarkKernelSameTickBurst(b *testing.B) {
	s := New()
	for i := 0; i < 64; i++ {
		s.ScheduleArg(8, nopEv, nil)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		for j := 0; j < 64; j++ {
			s.ScheduleArg(8, nopEv, nil)
		}
		for s.Pending() > 0 {
			s.Step()
		}
	}
}

// BenchmarkKernelCascade targets delays past the level-0 window, so every
// event is placed in level 1 and cascaded into level 0 before firing.
func BenchmarkKernelCascade(b *testing.B) {
	s := New()
	delay := Tick(4 * l0Size)
	for i := 0; i < 256; i++ {
		s.ScheduleArg(delay, nopEv, nil)
	}
	for s.Pending() > 0 {
		s.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleArg(delay, nopEv, nil)
		if s.Pending() > 256 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	for s.Pending() > 0 {
		s.Step()
	}
}

// BenchmarkKernelOverflow parks every event beyond the wheel horizon, so
// scheduling exercises the sorted overflow tier and firing exercises the
// drain — the watchdog/sampler pattern, far off any per-request path.
func BenchmarkKernelOverflow(b *testing.B) {
	s := New()
	delay := 2 * l1Span
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleArg(delay, nopEv, nil)
		if s.Pending() > 64 {
			for s.Pending() > 0 {
				s.Step()
			}
		}
	}
	for s.Pending() > 0 {
		s.Step()
	}
}

// BenchmarkKernelHeapReference is the seed kernel under the
// BenchmarkKernelScheduleFire workload — the before number for the ≥5x
// schedule/fire acceptance criterion.
func BenchmarkKernelHeapReference(b *testing.B) {
	r := &refSim{}
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.schedule(Tick(i%64), fn, false, 0)
		if len(r.events) > 1024 {
			for r.step() {
			}
		}
	}
	for r.step() {
	}
}
