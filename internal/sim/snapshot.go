package sim

// This file implements kernel checkpointing: a deep copy of the
// simulator's clock and timing-wheel event queue that can later be
// restored — into the same Simulator or a fresh one — so a run can fork
// from a warmed midpoint instead of replaying it. The experiment matrix
// uses this to share per-workload warmup across designs; the same
// machinery is the seed for tdserve resume.
//
// What a snapshot owns outright: the clock (now), the fired/non-daemon
// accounting, and every queued event record — level-0 and level-1 bucket
// contents, occupancy bitmaps, the consume head, the window base, and
// the sorted overflow tier. There is no per-event sequence counter to
// capture: insertion order within a tick IS the deterministic tie-break,
// and the copy preserves bucket order verbatim, so a restored kernel
// fires the exact event interleaving the original would have.
//
// What a snapshot shares: the fn and arg values stored in each event.
// Callbacks are code plus whatever model state arg (or a closure's
// captured variables) reaches — the kernel cannot deep-copy that. A
// snapshot is therefore only as independent as the model state behind
// its callbacks. The supported disciplines are:
//
//   - restore into the same Simulator after the model state has been
//     reset or re-seeded (replay/rewind), or
//   - snapshot at a quiescent point and route callbacks through a
//     swappable environment pointer the harness re-aims before resuming
//     (the fork pattern; see the snapshot fuzz test), or
//   - snapshot an empty kernel (Pending() == 0) where no callbacks are
//     captured at all — the warmup-image fork in internal/experiments
//     does this.
//
// The watchdog is deliberately not captured: an armed watchdog's check
// daemon holds a pointer to its own Simulator, so a snapshot of a
// watchdog-armed kernel must only be restored into that same Simulator.

// Snapshot is a frozen deep copy of a Simulator's clock and event queue.
// It stays valid across any number of Restore calls and across further
// mutation of the simulator it was taken from.
type Snapshot struct {
	now       Tick
	fired     uint64
	nonDaemon int
	w         wheel
}

// Now reports the simulated time at which the snapshot was taken.
func (sn *Snapshot) Now() Tick { return sn.now }

// Pending reports the number of events frozen in the snapshot.
func (sn *Snapshot) Pending() int { return sn.w.count }

// Snapshot captures the kernel's current clock and queue. Event fn/arg
// values are shared, not copied — see the package comment above for the
// disciplines that make a restore sound.
//
//tdlint:copier Snapshot
func (s *Simulator) Snapshot() *Snapshot {
	sn := &Snapshot{now: s.now, fired: s.fired, nonDaemon: s.nonDaemon}
	copyWheel(&sn.w, &s.w)
	return sn
}

// Restore overwrites s's clock and queue with the snapshot's state. The
// snapshot is deep-copied again on the way in, so it remains reusable
// and the restored kernel never aliases its buckets. Any events queued
// in s are discarded; the watchdog pointer is left untouched.
//
//tdlint:copier Simulator
func (s *Simulator) Restore(sn *Snapshot) {
	s.now = sn.now
	s.fired = sn.fired
	s.nonDaemon = sn.nonDaemon
	copyWheel(&s.w, &sn.w)
}

// copyWheel deep-copies src's queue into dst, reusing dst's bucket
// slabs where capacity allows and clearing stale event references so
// dropped callbacks don't linger for the GC.
//
//tdlint:copier wheel
func copyWheel(dst, src *wheel) {
	dst.l0bits = src.l0bits
	dst.l0hint = src.l0hint
	dst.l1bits = src.l1bits
	dst.l0base = src.l0base
	dst.head = src.head
	dst.count = src.count
	for i := range src.l0 {
		dst.l0[i] = copyEvents(dst.l0[i], src.l0[i])
	}
	for i := range src.l1 {
		dst.l1[i] = copyEvents(dst.l1[i], src.l1[i])
	}
	dst.overflow = copyEvents(dst.overflow, src.overflow)
}

// copyEvents replaces dst's contents with src's, keeping dst's slab.
//
//tdlint:copier event
func copyEvents(dst, src []event) []event {
	if cap(dst) > 0 {
		clear(dst[:cap(dst)])
	}
	return append(dst[:0], src...)
}
