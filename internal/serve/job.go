package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"tdram/internal/experiments"
	"tdram/internal/system"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued: admitted, checkpointed, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating its cells.
	StateRunning State = "running"
	// StateDone: the result landed in the store.
	StateDone State = "done"
	// StateFailed: the job cannot produce a result (bad cell, deadline,
	// worker panic). The error is in Job.Status().Error.
	StateFailed State = "failed"
	// StateInterrupted: shutdown cancelled the job mid-run; its
	// checkpoint holds the finished cells and a restarted server will
	// resume it.
	StateInterrupted State = "interrupted"
)

// CellResult is the curated, deterministic summary of one (design,
// workload) cell. It holds only values that are bit-identical between a
// fresh run and a checkpoint-resumed one — in particular nothing about
// which warmup path (fork vs replay) produced them — so the final
// document is byte-identical however the job got to completion.
type CellResult struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`

	RuntimeTicks int64  `json:"runtime_ticks"`
	Accesses     uint64 `json:"accesses"`

	Throughput    float64 `json:"throughput_apus"` // accesses per microsecond
	MissRatio     float64 `json:"miss_ratio"`
	TagCheckNS    float64 `json:"tag_check_ns"`
	ReadLatencyNS float64 `json:"read_latency_ns"`
	BloatFactor   float64 `json:"bloat_factor"`
	EnergyJ       float64 `json:"energy_j"`
}

func cellResultFrom(k experiments.Key, res *system.Result) CellResult {
	return CellResult{
		Design:        k.Design.String(),
		Workload:      k.Workload,
		RuntimeTicks:  int64(res.Runtime),
		Accesses:      res.Accesses,
		Throughput:    res.Throughput(),
		MissRatio:     res.Cache.Outcomes.MissRatio(),
		TagCheckNS:    res.Cache.TagCheck.Value(),
		ReadLatencyNS: res.Cache.ReadLatency.Value(),
		BloatFactor:   res.Cache.BloatFactor(),
		EnergyJ:       res.Energy.Total(),
	}
}

// cellKey names one cell inside a checkpoint.
func cellKey(k experiments.Key) string { return k.Workload + "|" + k.Design.String() }

// Checkpoint is a job's durable restart state: the canonical request
// plus every cell completed so far. It is written at admission (empty,
// so a queued-but-unstarted job survives a crash too: accepted is never
// silently dropped) and rewritten after each completed cell. Because
// the simulator is deterministic, completed-cell results ARE a
// sufficient checkpoint — resuming means filtering those cells out of
// the sweep, not replaying a simulator snapshot.
type Checkpoint struct {
	Request Request               `json:"request"`
	Cells   map[string]CellResult `json:"cells"`
}

func loadCheckpoint(payload []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	if ck.Cells == nil {
		ck.Cells = make(map[string]CellResult)
	}
	// The stored request is already canonical, but re-canonicalizing is
	// cheap and guards against a hand-edited store directory.
	if err := ck.Request.Canonicalize(); err != nil {
		return nil, fmt.Errorf("serve: checkpoint: %w", err)
	}
	return &ck, nil
}

func (ck *Checkpoint) marshal() []byte {
	// Cells is a map, but encoding/json sorts object keys, so the
	// checkpoint bytes are deterministic too.
	b, err := json.Marshal(ck)
	if err != nil {
		panic(fmt.Sprintf("serve: checkpoint does not marshal: %v", err))
	}
	return b
}

// ResultDoc is the response document for a completed job. Its encoding
// is canonical — cells in (workload, design) sweep order, struct fields
// in declaration order — so every run of the same configuration under
// the same code version produces the same bytes, and the store can be
// compared byte-for-byte across restarts.
type ResultDoc struct {
	ID          string       `json:"id"`
	CodeVersion string       `json:"code_version"`
	Request     Request      `json:"request"`
	Cells       []CellResult `json:"cells"`
}

// buildDoc assembles the canonical result document from a completed
// checkpoint. Cancellation can leave a checkpoint's cells in any subset
// order (a cell in flight at the cancel still lands), so the document
// sorts them into canonical (workload, design) sweep order rather than
// trusting insertion history.
func buildDoc(id, version string, ck *Checkpoint) ([]byte, error) {
	designPos := make(map[string]int)
	for i, d := range experiments.MatrixDesigns() {
		designPos[d.String()] = i
	}
	wlPos := make(map[string]int)
	for i, name := range ck.Request.Workloads {
		wlPos[name] = i
	}
	cells := make([]CellResult, 0, len(ck.Cells))
	for _, c := range ck.Cells { // sorted below; order-insensitive append
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		if wlPos[cells[i].Workload] != wlPos[cells[j].Workload] {
			return wlPos[cells[i].Workload] < wlPos[cells[j].Workload]
		}
		return designPos[cells[i].Design] < designPos[cells[j].Design]
	})
	doc := ResultDoc{ID: id, CodeVersion: version, Request: ck.Request, Cells: cells}
	b, err := json.Marshal(&doc)
	if err != nil {
		return nil, fmt.Errorf("serve: result doc: %w", err)
	}
	return b, nil
}

// Event is one progress notification on a job's stream: a state change,
// a completed cell, or a sampler row forwarded from internal/obs.
type Event struct {
	Type   string    `json:"type"` // "state" | "cell" | "sample"
	State  State     `json:"state,omitempty"`
	Cell   string    `json:"cell,omitempty"`  // "workload|design", type "cell"
	Done   int       `json:"done,omitempty"`  // cells finished so far
	Total  int       `json:"total,omitempty"` // cells in the job
	Error  string    `json:"error,omitempty"`
	TimeNS float64   `json:"time_ns,omitempty"` // simulated time, type "sample"
	Names  []string  `json:"names,omitempty"`
	Values []float64 `json:"values,omitempty"`
}

// Status is a job's externally visible state snapshot.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Error string `json:"error,omitempty"`

	// Diagnostics carries the watchdog's structured dump when the job
	// failed on a trip, so a wedged configuration is diagnosable from
	// the API without grepping server logs.
	Diagnostics string `json:"diagnostics,omitempty"`
}

// Job is one admitted simulation request. Everything above mu is
// immutable after newJob returns; everything below it is guarded.
type Job struct {
	id    string
	req   Request
	total int // cells in the job; fixed by the canonical request

	mu          sync.Mutex
	state       State
	done        int
	err         string
	diagnostics string
	subs        map[chan Event]struct{}
}

func newJob(id string, req Request) *Job {
	return &Job{
		id:    id,
		req:   req,
		state: StateQueued,
		total: req.Cells(),
		subs:  make(map[chan Event]struct{}),
	}
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.id, State: j.state, Done: j.done, Total: j.total,
		Error: j.err, Diagnostics: j.diagnostics,
	}
}

// Subscribe attaches a progress listener. The returned channel is
// buffered; a subscriber that stops draining loses events rather than
// blocking the simulation (slow clients are a fault the server must
// absorb, see publish). Cancel with the returned func.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	j.mu.Lock()
	// Late subscribers immediately learn the current state. Sent under
	// the lock (the fresh buffer cannot block) so a concurrent terminal
	// publish cannot close ch between registration and this send. A job
	// already in a terminal state closes the stream right away instead
	// of registering a subscriber no publish will ever reach.
	ch <- Event{Type: "state", State: j.state, Done: j.done, Total: j.total, Error: j.err}
	if j.state == StateDone || j.state == StateFailed || j.state == StateInterrupted {
		close(ch)
	} else {
		j.subs[ch] = struct{}{}
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// publish fans an event out to subscribers. Sends never block: a full
// subscriber buffer (slow SSE client) drops the event for that
// subscriber only. Terminal states close the channels.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(ev)
}

func (j *Job) publishLocked(ev Event) {
	terminal := ev.Type == "state" &&
		(ev.State == StateDone || ev.State == StateFailed || ev.State == StateInterrupted)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default: // slow client: drop, never stall the publisher
		}
		if terminal {
			close(ch)
		}
	}
	if terminal {
		j.subs = make(map[chan Event]struct{})
	}
}

func (j *Job) setState(st State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = st
	j.publishLocked(Event{Type: "state", State: st, Done: j.done, Total: j.total, Error: j.err})
}

func (j *Job) setDone(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done = n
}

func (j *Job) cellDone(key string, done int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done = done
	j.publishLocked(Event{Type: "cell", Cell: key, Done: done, Total: j.total})
}

func (j *Job) fail(err string, diagnostics string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.err = err
	j.diagnostics = diagnostics
	j.publishLocked(Event{Type: "state", State: StateFailed, Done: j.done, Total: j.total, Error: err})
}
