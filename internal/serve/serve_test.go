package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdram/internal/experiments"
)

// tinyRequest is the smallest job the tests run: one workload, seven
// design cells, a few thousand simulated accesses.
func tinyRequest() Request {
	return Request{
		Workloads:       []string{"bt.C"},
		CacheMB:         1,
		RequestsPerCore: 50,
		WarmupPerCore:   10,
	}
}

// slowRequest runs long enough (tens of ms per cell when serial) that
// the resume test can shut the server down after the first cell with
// several cells' worth of margin before the job could finish.
func slowRequest() Request {
	r := tinyRequest()
	r.RequestsPerCore = 8000
	r.WarmupPerCore = 200
	return r
}

func newTestServer(t *testing.T, dir string, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Dir: dir, Version: "test", QueueDepth: 4}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

// waitTerminal drains a job's event stream until a terminal state.
func waitTerminal(t *testing.T, j *Job) State {
	t.Helper()
	ch, cancel := j.Subscribe()
	defer cancel()
	deadline := time.After(120 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("job %s did not reach a terminal state (now %+v)", j.id, j.Status())
		case ev, ok := <-ch:
			if !ok {
				return j.Status().State
			}
			if ev.Type == "state" &&
				(ev.State == StateDone || ev.State == StateFailed || ev.State == StateInterrupted) {
				return ev.State
			}
		}
	}
}

func TestRequestCanonicalization(t *testing.T) {
	a := Request{Workloads: []string{"pr.25", "bt.C", "bt.C"}}
	b := Request{Workloads: []string{"bt.C", "pr.25"}}
	if err := a.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if a.ID() != b.ID() {
		t.Errorf("permuted/deduped workload sets hash differently: %s vs %s", a.ID(), b.ID())
	}
	if a.CacheMB != 8 || a.RequestsPerCore != 4000 || a.WarmupPerCore != 500 {
		t.Errorf("defaults not applied: %+v", a)
	}

	var def Request
	if err := def.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	if len(def.Workloads) == 0 {
		t.Error("empty request did not select the representative workloads")
	}

	for _, bad := range []Request{
		{Workloads: []string{"no-such-workload"}},
		{CacheMB: maxCacheMB + 1},
		{RequestsPerCore: maxRequestsPerCore + 1},
		{WarmupPerCore: -1},
		{FaultRate: 1.5},
	} {
		r := bad
		if err := r.Canonicalize(); err == nil {
			t.Errorf("request %+v canonicalized without error", bad)
		}
	}
}

func TestStoreCrashSafetyAndCorruption(t *testing.T) {
	st, err := OpenStore(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"hello":"world"}`)
	if err := st.PutResult("job1", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := st.GetResult("job1")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: got %q ok=%v", got, ok)
	}

	path := filepath.Join(st.Dir(), "job1.res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped payload byte must read as a miss, not as data.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)-3] ^= 0xff
	os.WriteFile(path, corrupt, 0o644)
	if _, ok := st.GetResult("job1"); ok {
		t.Error("corrupted entry was served")
	}

	// Truncation (torn write survived a crash) is also a miss.
	os.WriteFile(path, raw[:len(raw)-4], 0o644)
	if _, ok := st.GetResult("job1"); ok {
		t.Error("truncated entry was served")
	}

	// A foreign file under the entry name is a miss.
	os.WriteFile(path, []byte("not a store entry"), 0o644)
	if _, ok := st.GetResult("job1"); ok {
		t.Error("foreign file was served")
	}

	// Checkpoint listing sees exactly the checkpoints.
	st.PutCheckpoint("b", []byte("x"))
	st.PutCheckpoint("a", []byte("y"))
	ids := st.Checkpoints()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("Checkpoints() = %v", ids)
	}
	st.DeleteCheckpoint("a")
	if ids := st.Checkpoints(); len(ids) != 1 || ids[0] != "b" {
		t.Errorf("after delete, Checkpoints() = %v", ids)
	}
}

func TestSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	j := newJob("x", tinyRequest())
	ch, cancel := j.Subscribe()
	defer cancel()
	// Publish far past the subscriber's buffer without draining it: the
	// publisher must drop, not block (a slow SSE client cannot stall the
	// simulation). The test would time out if publish blocked.
	for i := 0; i < 10*cap(ch); i++ {
		j.publish(Event{Type: "cell", Done: i})
	}
	j.setState(StateDone)
	n := 0
	for range ch { // closed by the terminal publish
		n++
	}
	if n == 0 || n > cap(ch) {
		t.Errorf("subscriber saw %d events, want 1..%d (drops, not blocking)", n, cap(ch))
	}
	// A post-terminal subscriber gets the state and an immediate close.
	ch2, cancel2 := j.Subscribe()
	defer cancel2()
	ev, ok := <-ch2
	if !ok || ev.State != StateDone {
		t.Fatalf("late subscriber first event = %+v ok=%v", ev, ok)
	}
	if _, ok := <-ch2; ok {
		t.Error("late subscriber channel not closed after terminal state")
	}
}

func TestServeCacheHitIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(tinyRequest())
	resp1, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := readAll(t, resp1)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %d %s", resp1.StatusCode, first)
	}

	// Second submission with a permuted-but-equal body: served from the
	// store, byte-identical, without a simulator run.
	resp2, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	second, _ := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %d %s", resp2.StatusCode, second)
	}
	if tier := resp2.Header.Get("Tdserve-Cache"); tier != "mem" && tier != "disk" {
		t.Errorf("second submit not served from a cache tier (Tdserve-Cache=%q)", tier)
	}
	if resp2.Header.Get("ETag") == "" {
		t.Error("cached result response carries no ETag")
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cache hit is not byte-identical:\n%s\nvs\n%s", first, second)
	}

	var doc ResultDoc
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("result does not parse: %v", err)
	}
	if len(doc.Cells) != tinyRequestCells(t) {
		t.Errorf("result has %d cells, want %d", len(doc.Cells), tinyRequestCells(t))
	}
	for _, c := range doc.Cells {
		if c.Accesses == 0 {
			t.Errorf("cell %s/%s reports zero accesses", c.Workload, c.Design)
		}
	}
}

func tinyRequestCells(t *testing.T) int {
	t.Helper()
	r := tinyRequest()
	if err := r.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	return r.Cells()
}

func TestResumeFromCheckpointByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	req := slowRequest()
	if err := req.Canonicalize(); err != nil {
		t.Fatal(err)
	}
	id := req.ID()

	// Reference: one uninterrupted run in its own store.
	refDir := t.TempDir()
	ref := newTestServer(t, refDir, nil)
	j, err := ref.Admit(id, req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != StateDone {
		t.Fatalf("reference job ended %s: %+v", st, j.Status())
	}
	want, ok := ref.Store().GetResult(id)
	if !ok {
		t.Fatal("reference result missing from store")
	}

	// Interrupted run: serial cells, shut the server down right after
	// the first cell completes. With six more cells pending, the cancel
	// lands mid-job deterministically.
	dir := t.TempDir()
	s1, err := NewServer(Config{Dir: dir, Version: "test", SimJobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := s1.Admit(id, req)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancelSub := j1.Subscribe()
	gotCell := false
	deadline := time.After(120 * time.Second)
wait:
	for {
		select {
		case <-deadline:
			t.Fatalf("no cell completed: %+v", j1.Status())
		case ev := <-ch:
			if ev.Type == "cell" {
				gotCell = true
				break wait
			}
		}
	}
	cancelSub()
	if !gotCell {
		t.Fatal("subscription closed before any cell event")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s1.Close(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	if st := j1.Status().State; st != StateInterrupted {
		t.Fatalf("interrupted job state = %s, want %s", st, StateInterrupted)
	}
	if _, ok := s1.Store().GetCheckpoint(id); !ok {
		t.Fatal("interrupted job left no checkpoint")
	}

	// Restart over the same directory: recovery must re-queue the job
	// and finish it from the checkpoint, not from tick 0.
	s2 := newTestServer(t, dir, nil)
	j2, ok := s2.Job(id)
	if !ok {
		t.Fatal("restarted server did not recover the interrupted job")
	}
	if j2.Status().Done == 0 {
		t.Error("recovered job lost its checkpointed progress")
	}
	if st := waitTerminal(t, j2); st != StateDone {
		t.Fatalf("recovered job ended %s: %+v", st, j2.Status())
	}
	got, ok := s2.Store().GetResult(id)
	if !ok {
		t.Fatal("recovered job produced no result")
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed result differs from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	if _, ok := s2.Store().GetCheckpoint(id); ok {
		t.Error("checkpoint not cleaned up after completion")
	}
}

func TestQueueSaturationRejectsWith429(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// Hold the worker on its current job until released, so the
	// saturation window is deterministic instead of a race against the
	// simulator's speed. Released jobs run the real sweep.
	release := make(chan struct{})
	started := make(chan string, 8)
	real := runMatrix
	runMatrix = func(sc experiments.Scale, opts experiments.MatrixOptions) (*experiments.Matrix, error) {
		started <- sc.Name
		select {
		case <-release:
		case <-opts.Context.Done():
		}
		return real(sc, opts)
	}
	defer func() { runMatrix = real }()

	// One worker so "the worker is held" saturates the whole pool.
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.QueueDepth = 1; c.Workers = 1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(r Request) *http.Response {
		body, _ := json.Marshal(r)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Job A occupies the worker...
	ra := tinyRequest()
	respA, _ := readAll(t, submit(ra))
	var ackA submitAck
	json.Unmarshal(respA, &ackA)
	jA, ok := s.Job(ackA.ID)
	if !ok {
		t.Fatalf("job A not admitted: %s", respA)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("job A never reached the worker")
	}

	// ...job B fills the depth-1 queue...
	rb := tinyRequest()
	rb.RequestsPerCore = 60 // distinct content address
	respB := submit(rb)
	if respB.StatusCode != http.StatusAccepted {
		b, _ := readAll(t, respB)
		t.Fatalf("job B: %d %s", respB.StatusCode, b)
	}
	readAll(t, respB)

	// ...so job C must bounce with explicit backpressure.
	rc := tinyRequest()
	rc.RequestsPerCore = 70
	respC := submit(rc)
	bodyC, _ := readAll(t, respC)
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: %d %s, want 429", respC.StatusCode, bodyC)
	}
	if respC.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Accepted jobs are checkpointed before acknowledgement: even the
	// still-queued B survives a crash. C left nothing behind.
	rb2 := rb
	rb2.Canonicalize()
	if _, ok := s.Store().GetCheckpoint(rb2.ID()); !ok {
		t.Error("queued job B has no checkpoint")
	}
	rc2 := rc
	rc2.Canonicalize()
	if _, ok := s.Store().GetCheckpoint(rc2.ID()); ok {
		t.Error("rejected job C left a checkpoint")
	}

	// Release the worker: the queue drains and both admitted jobs
	// complete for real.
	close(release)
	if st := waitTerminal(t, jA); st != StateDone {
		t.Fatalf("job A ended %s", st)
	}
	jB, ok := s.Job(rb2.ID())
	if !ok {
		t.Fatal("job B vanished")
	}
	if st := waitTerminal(t, jB); st != StateDone {
		t.Fatalf("job B ended %s", st)
	}
}

func TestCorruptResultIsMissAndRecomputed(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// The memory tier is disabled so the test exercises the disk
	// contract; a mem-resident entry would (correctly — the bytes are
	// immutable by determinism) keep serving after on-disk corruption.
	s := newTestServer(t, t.TempDir(), func(c *Config) { c.MemCacheBytes = -1 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := tinyRequest()
	req.Canonicalize()
	id := req.ID()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, want)
	}

	// Corrupt the stored result in place.
	path := filepath.Join(s.Store().Dir(), id+".res")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	// Reads degrade to a miss — 404, never a 500.
	st, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := readAll(t, st)
	if st.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt result read: %d %s, want 404", st.StatusCode, b)
	}

	// Re-submission re-simulates and reproduces the identical document.
	resp2, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(t, resp2)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("re-submit: %d %s", resp2.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recomputed result differs from the original:\n%s\nvs\n%s", got, want)
	}
}

func TestJobDeadlineFailsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, t.TempDir(), func(c *Config) {
		c.SimJobs = 1
		c.JobDeadline = time.Millisecond
	})
	req := tinyRequest()
	req.Canonicalize()
	j, err := s.Admit(req.ID(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j); st != StateFailed {
		t.Fatalf("deadline job ended %s: %+v", st, j.Status())
	}
	if msg := j.Status().Error; !strings.Contains(msg, "deadline exceeded") {
		t.Errorf("failure does not name the deadline: %q", msg)
	}
	if _, ok := s.Store().GetCheckpoint(req.ID()); ok {
		t.Error("failed job left a checkpoint behind")
	}
}

// TestConcurrentSubmitRunsOneSimulation pins the collapse property end
// to end: N clients racing to submit one configuration cause exactly one
// simulation, and every client reads byte-identical result documents.
func TestConcurrentSubmitRunsOneSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	var sims atomic.Int64
	real := runMatrix
	runMatrix = func(sc experiments.Scale, opts experiments.MatrixOptions) (*experiments.Matrix, error) {
		sims.Add(1)
		return real(sc, opts)
	}
	defer func() { runMatrix = real }()

	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(tinyRequest())
	const clients = 12
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			b, _ := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: %d %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	if got := sims.Load(); got != 1 {
		t.Errorf("%d concurrent submissions ran %d simulations, want 1", clients, got)
	}
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d response differs from client 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
}

// TestResultServedFromMemoryAfterDiskLoss: once a result is resident in
// the memory tier, repeat reads are served from memory — the disk file
// can vanish entirely and the hit path never notices. Also pins the
// If-None-Match → 304 revalidation contract.
func TestResultServedFromMemoryAfterDiskLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := newTestServer(t, t.TempDir(), nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := tinyRequest()
	req.Canonicalize()
	id := req.ID()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, want)
	}

	// The write-through put the result in memory; remove the disk copy.
	if err := os.Remove(filepath.Join(s.Store().Dir(), id+".res")); err != nil {
		t.Fatal(err)
	}

	get, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(t, get)
	if get.StatusCode != http.StatusOK {
		t.Fatalf("read after disk loss: %d %s", get.StatusCode, got)
	}
	if tier := get.Header.Get("Tdserve-Cache"); tier != "mem" {
		t.Errorf("Tdserve-Cache = %q, want mem", tier)
	}
	if !bytes.Equal(got, want) {
		t.Error("memory-tier read is not byte-identical to the original response")
	}
	if cl := get.Header.Get("Content-Length"); cl != strconv.Itoa(len(want)) {
		t.Errorf("Content-Length = %q, want %d", cl, len(want))
	}
	etag := get.Header.Get("ETag")
	if etag == "" {
		t.Fatal("result response carries no ETag")
	}

	// Revalidation: matching If-None-Match short-circuits to a bodyless 304.
	reval, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+id+"/result", nil)
	if err != nil {
		t.Fatal(err)
	}
	reval.Header.Set("If-None-Match", etag)
	r304, err := http.DefaultClient.Do(reval)
	if err != nil {
		t.Fatal(err)
	}
	b304, _ := readAll(t, r304)
	if r304.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation: %d %s, want 304", r304.StatusCode, b304)
	}
	if len(b304) != 0 {
		t.Errorf("304 carried a %d-byte body", len(b304))
	}
}

// TestMultiWorkerMatchesSingleWorker pins the throughput tier's
// determinism criterion: a pool of workers racing several jobs through
// a shared token budget stores results byte-identical to a one-worker,
// one-token server given the same configurations.
func TestMultiWorkerMatchesSingleWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = tinyRequest()
		reqs[i].RequestsPerCore = 50 + 10*i // distinct content addresses
		if err := reqs[i].Canonicalize(); err != nil {
			t.Fatal(err)
		}
	}

	run := func(mutate func(*Config)) map[string][]byte {
		s := newTestServer(t, t.TempDir(), mutate)
		jobs := make([]*Job, len(reqs))
		for i, r := range reqs {
			j, err := s.Admit(r.ID(), r)
			if err != nil {
				t.Fatalf("admit %s: %v", r.ID(), err)
			}
			jobs[i] = j
		}
		out := make(map[string][]byte)
		for i, j := range jobs {
			if st := waitTerminal(t, j); st != StateDone {
				t.Fatalf("job %s ended %s", j.id, st)
			}
			b, ok := s.Store().GetResult(reqs[i].ID())
			if !ok {
				t.Fatalf("job %s has no stored result", j.id)
			}
			out[reqs[i].ID()] = b
		}
		return out
	}

	serial := run(func(c *Config) { c.Workers = 1; c.SimJobs = 1; c.SimTokens = 1 })
	pooled := run(func(c *Config) { c.Workers = 3; c.SimJobs = 4; c.SimTokens = 2 })
	for id, want := range serial {
		if got := pooled[id]; !bytes.Equal(got, want) {
			t.Errorf("job %s: pooled result differs from serial:\n%s\nvs\n%s", id, got, want)
		}
	}
}

func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	ch, cancel := j.Subscribe()
	defer cancel()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatalf("job %s never reached %s: %+v", j.id, want, j.Status())
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("job %s terminal before %s: %+v", j.id, want, j.Status())
			}
			if ev.Type == "state" && ev.State == want {
				return
			}
		}
	}
}

func readAll(t *testing.T, resp *http.Response) ([]byte, error) {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
