package serve

import (
	"testing"
	"time"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		name   string
		queued int
		rate   float64
		want   int
	}{
		{"no history", 10, 0, 2},
		{"no backlog", 0, 5, 2},
		{"simple division", 100, 10, 10},
		{"rounds up", 101, 10, 11},
		{"floor at 1s", 1, 1000, 1},
		{"ceiling at 300s", 1_000_000, 1, 300},
		{"negative rate", 10, -1, 2},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.rate); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%d, %v) = %d, want %d", c.name, c.queued, c.rate, got, c.want)
		}
	}
}

func TestDrainWindowRate(t *testing.T) {
	var d drainWindow
	base := time.Unix(1000, 0)
	if got := d.cellsPerSec(base); got != 0 {
		t.Errorf("empty window rate = %v, want 0", got)
	}
	d.note(base)
	if got := d.cellsPerSec(base.Add(time.Second)); got != 0 {
		t.Errorf("single-sample rate = %v, want 0 (not enough history)", got)
	}
	// Ten cells over nine seconds, measured one second after the last:
	// 10 samples across a 10s span.
	for i := 0; i < 10; i++ {
		d.note(base.Add(time.Duration(i) * time.Second))
	}
	now := base.Add(10 * time.Second)
	got := d.cellsPerSec(now)
	if got < 1.0 || got > 1.2 {
		t.Errorf("rate = %v cells/sec, want ~1.1 (11 samples over 10s)", got)
	}

	// The ring keeps only the newest 64 completions: a long-ago burst
	// does not inflate the rate forever.
	var d2 drainWindow
	for i := 0; i < 200; i++ {
		d2.note(base.Add(time.Duration(i) * time.Millisecond))
	}
	// 64 samples spanning ~63ms, measured 10 minutes later: the stale
	// window divides by the full elapsed span, so the advertised rate
	// decays toward zero instead of claiming 1000 cells/sec.
	stale := d2.cellsPerSec(base.Add(10 * time.Minute))
	if stale > 1 {
		t.Errorf("stale rate = %v cells/sec, want decayed (<1)", stale)
	}
}
