package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Store is the persistent result store: one directory per code version,
// one checksummed file per entry. Every write is crash-safe — payload to
// a temp file, fsync, atomic rename into place, fsync the directory —
// so a SIGKILL at any instant leaves either the old entry, the new
// entry, or a stray temp file, never a half-written entry under a live
// name. Reads verify the embedded SHA-256: a corrupt or truncated entry
// (torn disk, operator accident) is indistinguishable from a miss to
// callers, so the job simply re-simulates; corruption is never a 500.
type Store struct {
	dir string // <root>/v-<codeversion>
}

// storeMagic versions the on-disk entry framing.
const storeMagic = "tdstore1"

// OpenStore opens (creating if needed) the store rooted at dir for the
// given code version.
func OpenStore(dir, version string) (*Store, error) {
	vdir := filepath.Join(dir, "v-"+version)
	if err := os.MkdirAll(vdir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Store{dir: vdir}, nil
}

// Dir reports the store's version directory (diagnostics, tests).
func (s *Store) Dir() string { return s.dir }

func (s *Store) resultPath(id string) string     { return filepath.Join(s.dir, id+".res") }
func (s *Store) checkpointPath(id string) string { return filepath.Join(s.dir, id+".ckpt") }

// GetResult returns the stored result payload for id, or ok=false on a
// miss — including the corrupt-entry case.
func (s *Store) GetResult(id string) (payload []byte, ok bool) {
	return readVerified(s.resultPath(id))
}

// PutResult persists a result payload crash-safely.
func (s *Store) PutResult(id string, payload []byte) error {
	return writeVerified(s.resultPath(id), payload)
}

// GetCheckpoint returns the stored checkpoint payload for id, or
// ok=false when there is none (or it is corrupt: a bad checkpoint
// degrades to restarting the job from tick 0, exactly like no
// checkpoint at all).
func (s *Store) GetCheckpoint(id string) (payload []byte, ok bool) {
	return readVerified(s.checkpointPath(id))
}

// PutCheckpoint persists a job checkpoint crash-safely.
func (s *Store) PutCheckpoint(id string, payload []byte) error {
	return writeVerified(s.checkpointPath(id), payload)
}

// DeleteCheckpoint removes id's checkpoint (after its result landed).
func (s *Store) DeleteCheckpoint(id string) {
	os.Remove(s.checkpointPath(id))
}

// Checkpoints lists the job IDs with a checkpoint on disk, sorted — the
// jobs a restarted server must resume.
func (s *Store) Checkpoints() []string {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.ckpt"))
	if err != nil {
		return nil
	}
	ids := make([]string, 0, len(names))
	for _, n := range names {
		ids = append(ids, strings.TrimSuffix(filepath.Base(n), ".ckpt"))
	}
	// Glob sorts, but do not depend on it: restart order feeds the queue.
	sortStrings(ids)
	return ids
}

// readVerified reads a framed entry and verifies its checksum and
// length. Any mismatch — truncation, corruption, a foreign file — is
// reported as a miss.
func readVerified(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	nl := strings.IndexByte(string(data), '\n')
	if nl < 0 {
		return nil, false
	}
	var magic, sumHex string
	var n int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %s %d", &magic, &sumHex, &n); err != nil || magic != storeMagic {
		return nil, false
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != sumHex {
		return nil, false
	}
	return payload, true
}

// writeVerified writes a framed entry crash-safely: temp file in the
// same directory, fsync, rename over the final name, fsync the
// directory so the rename itself is durable.
func writeVerified(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: store write: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", storeMagic, hex.EncodeToString(sum[:]), len(payload))
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(payload)
	}
	if err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: store close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: store rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// sortStrings is sort.Strings without dragging sort into every file.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
