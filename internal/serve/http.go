package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// maxRequestBytes bounds a submission body; a service that decodes
// unbounded client JSON is one curl away from OOM.
const maxRequestBytes = 1 << 20

// Handler builds the HTTP API:
//
//	POST /jobs              submit a configuration (202, or 200 on a store hit)
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  the result document (200 done, 202 pending, 409 failed)
//	GET  /jobs/{id}/events  server-sent progress events
//	GET  /healthz           liveness + code version + queue/worker/token occupancy
//	GET  /metricz           serving-tier metrics snapshot (counters, gauges, latency hists)
//
// POST /jobs?wait=1 blocks until the job reaches a terminal state and
// responds like GET .../result — the one-call mode loadtest and the CI
// smoke test use.
//
// Result responses carry the zero-copy hit framing: a strong ETag
// derived from the content address and code version (If-None-Match
// revalidates to 304 without a body), an explicit Content-Length, the
// stored bytes verbatim, and a Tdserve-Cache header naming the tier
// that answered — "mem", "disk", or "miss" (a fresh simulation).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.instrument("submit", s.handleSubmit))
	mux.HandleFunc("GET /jobs/{id}", s.instrument("status", s.handleStatus))
	mux.HandleFunc("GET /jobs/{id}/result", s.instrument("result", s.handleResult))
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents) // SSE: open-ended, not latency-histogrammed
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /metricz", s.instrument("metricz", s.handleMetrics))
	return mux
}

// instrument wraps a handler with its per-endpoint latency histogram
// (http.<name> in /metricz).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.Hist("http." + name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := wallNow()
		h(w, r)
		hist.Observe(wallSince(start))
	}
}

// submitAck is the 202 body for an admitted (or joined) job.
type submitAck struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := req.Canonicalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := req.ID()

	// The fast path the whole design exists for: a known configuration
	// is served from the memory tier (or read through from disk, once,
	// however many clients ask concurrently) without touching a
	// simulator — or a worker, or the disk, when the entry is hot.
	if e, tier, ok := s.lookupResult(id); ok {
		s.writeResultEntry(w, r, e, tier)
		return
	}
	s.cMisses.Inc()

	j, err := s.Admit(id, req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Explicit backpressure: bounded memory, and the client knows
		// when to come back rather than hammering — the hint tracks the
		// live drain rate, not a constant.
		s.cRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.cAdmitted.Inc()

	if r.URL.Query().Get("wait") != "" {
		s.waitAndServeResult(w, r, j)
		return
	}
	w.Header().Set("Tdserve-Cache", "miss")
	writeJSON(w, http.StatusAccepted, submitAck{
		ID: id, State: j.Status().State, Cells: j.Status().Total,
		StatusURL: "/jobs/" + id,
		ResultURL: "/jobs/" + id + "/result",
		EventsURL: "/jobs/" + id + "/events",
	})
}

// lookupResult resolves id through the two-tier store and bumps the
// per-tier hit counters. ok=false is a full miss (no counter; the
// caller decides whether it is a submission miss or a pending read).
func (s *Server) lookupResult(id string) (*memEntry, string, bool) {
	e, tier, ok := s.tier.GetOrLoad(id, s.version, func() ([]byte, bool) {
		return s.store.GetResult(id)
	})
	if !ok {
		return nil, "", false
	}
	if tier == "mem" {
		s.cMemHits.Inc()
	} else {
		s.cDiskHits.Inc()
	}
	return e, tier, true
}

// writeResultEntry is the zero-copy hit path: the cached entry's bytes
// go to the socket verbatim under precomputed framing. An If-None-Match
// revalidation match short-circuits to 304 with no body at all — the
// cheapest hit there is.
func (s *Server) writeResultEntry(w http.ResponseWriter, r *http.Request, e *memEntry, tier string) {
	h := w.Header()
	h.Set("Tdserve-Cache", tier)
	h.Set("ETag", e.etag)
	if etagMatch(r.Header.Get("If-None-Match"), e.etag) {
		s.c304s.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", e.clen)
	w.Write(e.payload)
}

// etagMatch reports whether an If-None-Match header value matches etag.
// Results are content-addressed, so a weak-comparison match (W/ prefix)
// is as good as a strong one.
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag || part == "*" {
			return true
		}
	}
	return false
}

// waitAndServeResult blocks on the job's event stream until a terminal
// state, then responds exactly like GET /jobs/{id}/result — except that
// a completed job is reported as Tdserve-Cache: miss, because this
// response paid for a simulation, whichever tier the bytes came back
// through.
func (s *Server) waitAndServeResult(w http.ResponseWriter, r *http.Request, j *Job) {
	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return // client gave up; the job keeps running
		case ev, ok := <-ch:
			if !ok {
				s.serveResult(w, r, j.id, "miss")
				return
			}
			if ev.Type == "state" &&
				(ev.State == StateDone || ev.State == StateFailed || ev.State == StateInterrupted) {
				s.serveResult(w, r, j.id, "miss")
				return
			}
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.Job(id); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	// The process restarted since this job ran; the store remembers.
	if _, _, ok := s.lookupResult(id); ok {
		writeJSON(w, http.StatusOK, Status{ID: id, State: StateDone})
		return
	}
	httpError(w, http.StatusNotFound, "unknown job "+id)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.serveResult(w, r, r.PathValue("id"), "")
}

// serveResult serves id's result through the two-tier store. tierOverride
// forces the Tdserve-Cache header ("miss" for a response that paid for
// its simulation); empty reports the tier that actually answered.
func (s *Server) serveResult(w http.ResponseWriter, r *http.Request, id string, tierOverride string) {
	if e, tier, ok := s.lookupResult(id); ok {
		if tierOverride != "" {
			tier = tierOverride
		}
		s.writeResultEntry(w, r, e, tier)
		return
	}
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	st := j.Status()
	switch st.State {
	case StateFailed:
		writeJSON(w, http.StatusConflict, st)
	case StateDone:
		// Done but both tiers missed: the entry was corrupted after the
		// fact and is not memory-resident. Per the store contract that
		// is a miss, not a 500 — report the job as gone so the client
		// re-submits (determinism guarantees the re-run reproduces the
		// same document).
		httpError(w, http.StatusNotFound, "result for "+id+" is no longer readable; re-submit")
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":               true,
		"code_version":     s.version,
		"queue_len":        s.QueueLen(),
		"queue_depth":      s.QueueDepth(),
		"workers":          s.workers,
		"workers_busy":     s.busy.Load(),
		"tokens_total":     s.budget.Total(),
		"tokens_inflight":  s.budget.InUse(),
		"memcache_bytes":   s.tier.Bytes(),
		"memcache_entries": s.tier.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
