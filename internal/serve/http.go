package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBytes bounds a submission body; a service that decodes
// unbounded client JSON is one curl away from OOM.
const maxRequestBytes = 1 << 20

// Handler builds the HTTP API:
//
//	POST /jobs              submit a configuration (202, or 200 on a store hit)
//	GET  /jobs/{id}         job status
//	GET  /jobs/{id}/result  the result document (200 done, 202 pending, 409 failed)
//	GET  /jobs/{id}/events  server-sent progress events
//	GET  /healthz           liveness + code version + queue occupancy
//
// POST /jobs?wait=1 blocks until the job reaches a terminal state and
// responds like GET .../result — the one-call mode loadtest and the CI
// smoke test use.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// submitAck is the 202 body for an admitted (or joined) job.
type submitAck struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Cells     int    `json:"cells"`
	StatusURL string `json:"status_url"`
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	if err := req.Canonicalize(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := req.ID()

	// The fast path the whole design exists for: a known configuration
	// is served from the store verbatim, without touching a simulator.
	if payload, ok := s.store.GetResult(id); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Tdserve-Cache", "hit")
		w.Write(payload)
		return
	}

	j, err := s.Admit(id, req)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Explicit backpressure: bounded memory, and the client knows
		// when to come back rather than hammering.
		w.Header().Set("Retry-After", "2")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	if r.URL.Query().Get("wait") != "" {
		s.waitAndServeResult(w, r, j)
		return
	}
	w.Header().Set("Tdserve-Cache", "miss")
	writeJSON(w, http.StatusAccepted, submitAck{
		ID: id, State: j.Status().State, Cells: j.Status().Total,
		StatusURL: "/jobs/" + id,
		ResultURL: "/jobs/" + id + "/result",
		EventsURL: "/jobs/" + id + "/events",
	})
}

// waitAndServeResult blocks on the job's event stream until a terminal
// state, then responds exactly like GET /jobs/{id}/result.
func (s *Server) waitAndServeResult(w http.ResponseWriter, r *http.Request, j *Job) {
	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return // client gave up; the job keeps running
		case ev, ok := <-ch:
			if !ok {
				s.serveResult(w, j.id)
				return
			}
			if ev.Type == "state" &&
				(ev.State == StateDone || ev.State == StateFailed || ev.State == StateInterrupted) {
				s.serveResult(w, j.id)
				return
			}
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.Job(id); ok {
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	// The process restarted since this job ran; the store remembers.
	if _, ok := s.store.GetResult(id); ok {
		writeJSON(w, http.StatusOK, Status{ID: id, State: StateDone})
		return
	}
	httpError(w, http.StatusNotFound, "unknown job "+id)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	s.serveResult(w, r.PathValue("id"))
}

func (s *Server) serveResult(w http.ResponseWriter, id string) {
	if payload, ok := s.store.GetResult(id); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
		return
	}
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	st := j.Status()
	switch st.State {
	case StateFailed:
		writeJSON(w, http.StatusConflict, st)
	case StateDone:
		// Done but the store read missed: the entry was corrupted after
		// the fact. Per the store contract that is a miss, not a 500 —
		// report the job as gone so the client re-submits (determinism
		// guarantees the re-run reproduces the same document).
		httpError(w, http.StatusNotFound, "result for "+id+" is no longer readable; re-submit")
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := j.Subscribe()
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":           true,
		"code_version": s.version,
		"queue_len":    s.QueueLen(),
		"queue_depth":  s.QueueDepth(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
