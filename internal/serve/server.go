package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"tdram/internal/experiments"
	"tdram/internal/obs"
	"tdram/internal/sim"
	"tdram/internal/system"
)

// Config configures a Server. The zero value of every field selects a
// default.
type Config struct {
	// Dir roots the persistent store (required).
	Dir string

	// QueueDepth bounds the admission queue (default 8). A full queue
	// rejects with ErrQueueFull — 429 at the HTTP tier — so load spikes
	// cost clients a retry, never the server its memory. Admitted jobs
	// are checkpointed before they are acknowledged, so "accepted" can
	// never degrade to "silently dropped".
	QueueDepth int

	// SimJobs bounds the matrix parallelism inside one job (default
	// runtime.GOMAXPROCS(0), the runner's own default).
	SimJobs int

	// JobDeadline bounds one job's wall-clock run (default 10 minutes).
	// The deadline cancels the matrix sweep between cells; the job fails
	// with an explicit deadline error instead of pinning a worker.
	JobDeadline time.Duration

	// MetricsInterval, when positive, arms the internal/obs sampler in
	// every cell and streams its rows to the job's event subscribers
	// (simulated time, not wall time). Purely observational: results are
	// bit-identical with streaming on or off, which is why it lives here
	// and not in the content-addressed Request.
	MetricsInterval sim.Tick

	// Version overrides the code-version namespace (tests). Empty
	// selects CodeVersion(), the running executable's hash.
	Version string
}

// runMatrix is the sweep entry point; tests replace it to hold the
// worker on a job deterministically (the same seam idiom as the
// runner's own runCell/buildImage).
var runMatrix = experiments.RunMatrixOpts

// Sentinel admission errors; the HTTP tier maps them to 429 and 503.
var (
	ErrQueueFull = errors.New("serve: admission queue is full")
	ErrClosed    = errors.New("serve: server is shutting down")
)

// Server owns the job queue, the worker, and the persistent store. See
// the package comment for the robustness contract.
type Server struct {
	cfg     Config
	store   *Store
	version string

	ctx    context.Context // cancelled by Close; parents every job context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	queue chan *Job
	wg    sync.WaitGroup
}

// NewServer opens the store, recovers every checkpointed job from a
// previous process into the queue, and starts the worker. Recovery is
// what makes SIGKILL survivable: each recovered job resumes from its
// completed cells, not from tick 0, and a job whose result already
// landed (killed between the result write and the checkpoint delete)
// completes instantly.
func NewServer(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.JobDeadline <= 0 {
		cfg.JobDeadline = 10 * time.Minute
	}
	version := cfg.Version
	if version == "" {
		version = CodeVersion()
	}
	store, err := OpenStore(cfg.Dir, version)
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, store: store, version: version, jobs: make(map[string]*Job)}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	recovered := s.recover()
	// Size the queue so every recovered job enqueues without blocking,
	// on top of the configured admission depth for new work.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.queue <- j
	}
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

// recover scans the store for checkpoints left by a previous process
// and rebuilds their jobs. A corrupt or foreign checkpoint is skipped —
// its job's identity is unrecoverable, so the client re-submits (and,
// per the determinism contract, gets the same result it would have).
func (s *Server) recover() []*Job {
	var jobs []*Job
	for _, id := range s.store.Checkpoints() {
		payload, ok := s.store.GetCheckpoint(id)
		if !ok {
			continue // corrupt: treated exactly like no checkpoint
		}
		ck, err := loadCheckpoint(payload)
		if err != nil || ck.Request.ID() != id {
			continue // foreign or tampered entry
		}
		if _, done := s.store.GetResult(id); done {
			// Killed after the result landed but before the checkpoint
			// delete; finish the bookkeeping now.
			s.store.DeleteCheckpoint(id)
			continue
		}
		j := newJob(id, ck.Request)
		j.done = len(ck.Cells)
		jobs = append(jobs, j)
	}
	return jobs
}

// Version reports the code-version namespace the server stores under.
func (s *Server) Version() string { return s.version }

// Store exposes the result store (the HTTP tier serves hits from it).
func (s *Server) Store() *Store { return s.store }

// QueueDepth reports the configured admission bound.
func (s *Server) QueueDepth() int { return s.cfg.QueueDepth }

// QueueLen reports how many jobs are waiting (diagnostics).
func (s *Server) QueueLen() int { return len(s.queue) }

// Job looks up an admitted job by content address.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Admit enqueues a canonicalized request under its content address.
// Submitting a configuration that is already queued or running joins
// the existing job instead of duplicating the work — content addressing
// dedupes in flight, not just at rest. Returns ErrQueueFull when the
// bounded queue is at capacity and ErrClosed during shutdown.
func (s *Server) Admit(id string, req Request) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		switch j.Status().State {
		case StateQueued, StateRunning:
			// Content addressing dedupes in flight: join, don't duplicate.
			return j, nil
		}
		// Terminal record. The HTTP tier only reaches Admit after a store
		// miss, so a "done" job here means its stored result has since
		// been lost or corrupted — re-admit and re-simulate (determinism
		// reproduces the same bytes). Failed jobs may be retried too.
	}
	// Durable-before-acknowledged: the empty checkpoint makes a
	// queued-but-unstarted job survive a crash. Skip the write when a
	// previous incarnation already checkpointed progress for this id.
	_, hadCheckpoint := s.store.GetCheckpoint(id)
	if !hadCheckpoint {
		ck := &Checkpoint{Request: req, Cells: make(map[string]CellResult)}
		if err := s.store.PutCheckpoint(id, ck.marshal()); err != nil {
			return nil, err
		}
	}
	j := newJob(id, req)
	select {
	case s.queue <- j:
	default:
		// Rejected is the opposite of accepted: leave no trace a future
		// recovery would mistake for an admitted job.
		if !hadCheckpoint {
			s.store.DeleteCheckpoint(id)
		}
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	return j, nil
}

// worker drains the queue one job at a time (each job parallelizes
// internally across matrix cells). It exits when Close cancels the
// server context; queued jobs stay checkpointed for the next process.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.runJobSupervised(j)
		}
	}
}

// runJobSupervised is the supervisor boundary: a panicking job —
// whether from a simulation bug the runner's own recovery missed or
// from the serve layer itself — becomes a failed-job state with the
// stack attached, and the worker survives to run the next job.
func (s *Server) runJobSupervised(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.store.DeleteCheckpoint(j.id)
			j.fail(fmt.Sprintf("worker panic: %v", r), string(debug.Stack()))
		}
	}()
	s.runJob(j)
}

func (s *Server) runJob(j *Job) {
	// A previous incarnation may have finished this configuration
	// already; serving it beats re-simulating it.
	if _, ok := s.store.GetResult(j.id); ok {
		s.store.DeleteCheckpoint(j.id)
		j.setState(StateDone)
		return
	}

	ck := &Checkpoint{Request: j.req, Cells: make(map[string]CellResult)}
	if payload, ok := s.store.GetCheckpoint(j.id); ok {
		if loaded, err := loadCheckpoint(payload); err == nil {
			ck = loaded // resume: completed cells are skipped below
		}
	}
	j.setDone(len(ck.Cells))
	j.setState(StateRunning)

	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.JobDeadline)
	defer cancel()

	sc := j.req.Scale()
	if s.cfg.MetricsInterval > 0 {
		sc.Obs = obs.Config{
			MetricsInterval: s.cfg.MetricsInterval,
			OnSample: func(t sim.Tick, names []string, values []float64) {
				// The sampler reuses its slices; copy before they escape
				// to subscriber channels.
				j.publish(Event{
					Type:   "sample",
					TimeNS: t.Nanoseconds(),
					Names:  append([]string(nil), names...),
					Values: append([]float64(nil), values...),
				})
			},
		}
	}

	opts := experiments.MatrixOptions{
		Jobs:    s.cfg.SimJobs,
		Context: ctx,
		Filter: func(k experiments.Key) bool {
			_, done := ck.Cells[cellKey(k)]
			return !done
		},
		OnCell: func(k experiments.Key, res *system.Result, err error) {
			if err != nil {
				return // cancellation or a cell failure; classified after the sweep
			}
			ck.Cells[cellKey(k)] = cellResultFrom(k, res)
			// Per-cell durability: a SIGKILL from here on loses at most
			// the cell currently in flight. A failed write degrades the
			// checkpoint, not the job — ck still holds the cell in
			// memory, so an uninterrupted run completes normally.
			_ = s.store.PutCheckpoint(j.id, ck.marshal())
			j.cellDone(cellKey(k), len(ck.Cells))
		},
	}
	_, runErr := runMatrix(sc, opts)

	if len(ck.Cells) == j.total {
		doc, err := buildDoc(j.id, s.version, ck)
		if err != nil {
			s.store.DeleteCheckpoint(j.id)
			j.fail(err.Error(), "")
			return
		}
		if err := s.store.PutResult(j.id, doc); err != nil {
			j.fail(err.Error(), "")
			return
		}
		s.store.DeleteCheckpoint(j.id)
		j.setState(StateDone)
		return
	}

	if runErr == nil {
		// Impossible by the runner contract (every non-filtered cell
		// either lands in OnCell or errors), but fail loudly over
		// pretending completeness.
		s.store.DeleteCheckpoint(j.id)
		j.fail("incomplete matrix without error", "")
		return
	}
	if s.ctx.Err() != nil {
		// Shutdown cancelled the sweep between cells. The checkpoint
		// holds every finished cell; the next process resumes it.
		j.setState(StateInterrupted)
		return
	}
	var trip *sim.TripError
	diagnostics := ""
	if errors.As(runErr, &trip) {
		diagnostics = trip.Diagnostics
	}
	s.store.DeleteCheckpoint(j.id)
	if errors.Is(runErr, context.DeadlineExceeded) {
		j.fail(fmt.Sprintf("deadline exceeded after %d/%d cells (limit %v)",
			len(ck.Cells), j.total, s.cfg.JobDeadline), "")
		return
	}
	j.fail(runErr.Error(), diagnostics)
}

// Close stops admission, cancels the running job at its next cell
// boundary (its finished cells are already checkpointed), and waits for
// the worker to exit — bounded by ctx. Queued and interrupted jobs stay
// on disk for the next process; nothing in flight is lost.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown did not drain in time: %w", ctx.Err())
	}
}
