package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"tdram/internal/experiments"
	"tdram/internal/obs"
	"tdram/internal/obs/service"
	"tdram/internal/sim"
	"tdram/internal/system"
)

// Config configures a Server. The zero value of every field selects a
// default.
type Config struct {
	// Dir roots the persistent store (required).
	Dir string

	// QueueDepth bounds the admission queue (default 8). A full queue
	// rejects with ErrQueueFull — 429 at the HTTP tier — so load spikes
	// cost clients a retry, never the server its memory. Admitted jobs
	// are checkpointed before they are acknowledged, so "accepted" can
	// never degrade to "silently dropped".
	QueueDepth int

	// Workers sets the job worker-pool size (default max(2,
	// runtime.GOMAXPROCS(0))). Each worker runs one job at a time; the
	// pool's aggregate simulation parallelism is governed by the shared
	// CPU-token budget, not by Workers, so extra workers cost queue
	// concurrency, never host oversubscription.
	Workers int

	// SimJobs bounds the matrix fan-out ceiling inside one job (default
	// runtime.GOMAXPROCS(0), the runner's own default). How much of that
	// fan-out actually simulates at once is decided per cell by the
	// token budget.
	SimJobs int

	// SimTokens sizes the shared CPU-token budget every job's matrix
	// parallelism draws from (default runtime.GOMAXPROCS(0)): a lone job
	// gets its full SimJobs fan-out, a deep queue degrades each job's
	// fan-out toward its fair share so many jobs progress concurrently.
	SimTokens int

	// MemCacheBytes bounds the in-memory result tier above the disk
	// store. Zero selects the 64 MiB default; negative disables the
	// tier (reads fall through to disk, still singleflight-collapsed).
	MemCacheBytes int64

	// JobDeadline bounds one job's wall-clock run (default 10 minutes).
	// The deadline cancels the matrix sweep between cells; the job fails
	// with an explicit deadline error instead of pinning a worker.
	JobDeadline time.Duration

	// MetricsInterval, when positive, arms the internal/obs sampler in
	// every cell and streams its rows to the job's event subscribers
	// (simulated time, not wall time). Purely observational: results are
	// bit-identical with streaming on or off, which is why it lives here
	// and not in the content-addressed Request.
	MetricsInterval sim.Tick

	// Version overrides the code-version namespace (tests). Empty
	// selects CodeVersion(), the running executable's hash.
	Version string
}

// runMatrix is the sweep entry point; tests replace it to hold the
// worker on a job deterministically (the same seam idiom as the
// runner's own runCell/buildImage).
var runMatrix = experiments.RunMatrixOpts

// Sentinel admission errors; the HTTP tier maps them to 429 and 503.
var (
	ErrQueueFull = errors.New("serve: admission queue is full")
	ErrClosed    = errors.New("serve: server is shutting down")
)

// Server owns the job queue, the worker pool, the two-tier result
// store (memory LRU over the crash-safe disk store), and the shared
// CPU-token budget. See the package comment for the robustness
// contract.
type Server struct {
	cfg     Config
	store   *Store
	tier    *memTier
	version string
	workers int

	budget *experiments.CPUBudget

	metrics *service.Metrics
	drain   drainWindow
	busy    atomic.Int64 // workers currently running a job

	// Cached hot-path metric counters (Counter() takes the registry
	// lock; the handlers should not).
	cMemHits, cDiskHits, cMisses  *service.Counter
	cAdmitted, cRejected, cCells  *service.Counter
	cJobsDone, cJobsFailed, c304s *service.Counter

	ctx    context.Context // cancelled by Close; parents every job context
	cancel context.CancelFunc

	// Self-synchronized, not mu-guarded: queue is created in NewServer
	// before any worker starts and never reassigned (channel ops carry
	// their own synchronization), and WaitGroup is internally atomic.
	queue chan *Job
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool
}

// NewServer opens the store, recovers every checkpointed job from a
// previous process into the queue, and starts the worker. Recovery is
// what makes SIGKILL survivable: each recovered job resumes from its
// completed cells, not from tick 0, and a job whose result already
// landed (killed between the result write and the checkpoint delete)
// completes instantly.
func NewServer(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.JobDeadline <= 0 {
		cfg.JobDeadline = 10 * time.Minute
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
		if cfg.Workers < 2 {
			cfg.Workers = 2
		}
	}
	memBytes := cfg.MemCacheBytes
	switch {
	case memBytes == 0:
		memBytes = 64 << 20
	case memBytes < 0:
		memBytes = 0
	}
	version := cfg.Version
	if version == "" {
		version = CodeVersion()
	}
	store, err := OpenStore(cfg.Dir, version)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		tier:    newMemTier(memBytes),
		version: version,
		workers: cfg.Workers,
		budget:  experiments.NewCPUBudget(cfg.SimTokens),
		metrics: service.NewMetrics(),
		jobs:    make(map[string]*Job),
	}
	s.initMetrics()
	s.ctx, s.cancel = context.WithCancel(context.Background())

	recovered := s.recover()
	// Size the queue so every recovered job enqueues without blocking,
	// on top of the configured admission depth for new work.
	s.queue = make(chan *Job, cfg.QueueDepth+len(recovered))
	for _, j := range recovered {
		s.jobs[j.id] = j
		s.queue <- j
	}
	s.wg.Add(s.workers)
	for i := 0; i < s.workers; i++ {
		go s.worker()
	}
	return s, nil
}

// initMetrics registers the serving-tier counters and gauges: per-tier
// hit/miss tallies, admission outcomes, queue and token occupancy, and
// the memory tier's residency.
func (s *Server) initMetrics() {
	m := s.metrics
	s.cMemHits = m.Counter("serve.hits_mem")
	s.cDiskHits = m.Counter("serve.hits_disk")
	s.cMisses = m.Counter("serve.misses")
	s.cAdmitted = m.Counter("serve.jobs_admitted")
	s.cRejected = m.Counter("serve.jobs_rejected_429")
	s.cCells = m.Counter("serve.cells_done")
	s.cJobsDone = m.Counter("serve.jobs_done")
	s.cJobsFailed = m.Counter("serve.jobs_failed")
	s.c304s = m.Counter("serve.revalidated_304")
	m.Gauge("serve.queue_len", func() float64 { return float64(s.QueueLen()) })
	m.Gauge("serve.queue_depth", func() float64 { return float64(s.QueueDepth()) })
	m.Gauge("serve.workers", func() float64 { return float64(s.workers) })
	m.Gauge("serve.workers_busy", func() float64 { return float64(s.busy.Load()) })
	m.Gauge("serve.tokens_total", func() float64 { return float64(s.budget.Total()) })
	m.Gauge("serve.tokens_inflight", func() float64 { return float64(s.budget.InUse()) })
	m.Gauge("serve.memcache_bytes", func() float64 { return float64(s.tier.Bytes()) })
	m.Gauge("serve.memcache_entries", func() float64 { return float64(s.tier.Len()) })
}

// recover scans the store for checkpoints left by a previous process
// and rebuilds their jobs. A corrupt or foreign checkpoint is skipped —
// its job's identity is unrecoverable, so the client re-submits (and,
// per the determinism contract, gets the same result it would have).
func (s *Server) recover() []*Job {
	var jobs []*Job
	for _, id := range s.store.Checkpoints() {
		payload, ok := s.store.GetCheckpoint(id)
		if !ok {
			continue // corrupt: treated exactly like no checkpoint
		}
		ck, err := loadCheckpoint(payload)
		if err != nil || ck.Request.ID() != id {
			continue // foreign or tampered entry
		}
		if _, done := s.store.GetResult(id); done {
			// Killed after the result landed but before the checkpoint
			// delete; finish the bookkeeping now.
			s.store.DeleteCheckpoint(id)
			continue
		}
		j := newJob(id, ck.Request)
		j.setDone(len(ck.Cells))
		jobs = append(jobs, j)
	}
	return jobs
}

// Version reports the code-version namespace the server stores under.
func (s *Server) Version() string { return s.version }

// Store exposes the result store (the HTTP tier serves hits from it).
func (s *Server) Store() *Store { return s.store }

// QueueDepth reports the configured admission bound.
func (s *Server) QueueDepth() int { return s.cfg.QueueDepth }

// QueueLen reports how many jobs are waiting (diagnostics).
func (s *Server) QueueLen() int { return len(s.queue) }

// Workers reports the worker-pool size.
func (s *Server) Workers() int { return s.workers }

// Budget exposes the shared CPU-token budget (gauges, tests).
func (s *Server) Budget() *experiments.CPUBudget { return s.budget }

// Metrics exposes the serving-tier metric registry (the /metricz
// endpoint renders its snapshot).
func (s *Server) Metrics() *service.Metrics { return s.metrics }

// queuedCells totals the unfinished cells of every queued or running
// job — the backlog a 429'd client is waiting behind.
func (s *Server) queuedCells() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, j := range s.jobs {
		st := j.Status()
		if st.State == StateQueued || st.State == StateRunning {
			total += st.Total - st.Done
		}
	}
	return total
}

// retryAfter derives the 429 Retry-After (seconds) from the live drain
// rate: recent cells/sec against the committed backlog, with a sane
// floor and ceiling (see retryAfterSeconds).
func (s *Server) retryAfter() int {
	return retryAfterSeconds(s.queuedCells(), s.drain.cellsPerSec(wallNow()))
}

// Job looks up an admitted job by content address.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Admit enqueues a canonicalized request under its content address.
// Submitting a configuration that is already queued or running joins
// the existing job instead of duplicating the work — content addressing
// dedupes in flight, not just at rest. Returns ErrQueueFull when the
// bounded queue is at capacity and ErrClosed during shutdown.
func (s *Server) Admit(id string, req Request) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if j, ok := s.jobs[id]; ok {
		switch j.Status().State {
		case StateQueued, StateRunning:
			// Content addressing dedupes in flight: join, don't duplicate.
			return j, nil
		}
		// Terminal record. The HTTP tier only reaches Admit after a store
		// miss, so a "done" job here means its stored result has since
		// been lost or corrupted — re-admit and re-simulate (determinism
		// reproduces the same bytes). Failed jobs may be retried too.
	}
	// Durable-before-acknowledged: the empty checkpoint makes a
	// queued-but-unstarted job survive a crash. Skip the write when a
	// previous incarnation already checkpointed progress for this id.
	_, hadCheckpoint := s.store.GetCheckpoint(id)
	if !hadCheckpoint {
		ck := &Checkpoint{Request: req, Cells: make(map[string]CellResult)}
		if err := s.store.PutCheckpoint(id, ck.marshal()); err != nil {
			return nil, err
		}
	}
	j := newJob(id, req)
	select {
	case s.queue <- j:
	default:
		// Rejected is the opposite of accepted: leave no trace a future
		// recovery would mistake for an admitted job.
		if !hadCheckpoint {
			s.store.DeleteCheckpoint(id)
		}
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	return j, nil
}

// worker is one member of the pool: it drains the queue one job at a
// time (each job parallelizes internally across matrix cells, gated by
// the shared token budget). It exits when Close cancels the server
// context; queued jobs stay checkpointed for the next process.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case j := <-s.queue:
			s.busy.Add(1)
			s.runJobSupervised(j)
			s.busy.Add(-1)
		}
	}
}

// runJobSupervised is the supervisor boundary: a panicking job —
// whether from a simulation bug the runner's own recovery missed or
// from the serve layer itself — becomes a failed-job state with the
// stack attached, and the worker survives to run the next job.
func (s *Server) runJobSupervised(j *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.store.DeleteCheckpoint(j.id)
			s.cJobsFailed.Inc()
			j.fail(fmt.Sprintf("worker panic: %v", r), string(debug.Stack()))
		}
	}()
	s.runJob(j)
}

func (s *Server) runJob(j *Job) {
	// A previous incarnation may have finished this configuration
	// already; serving it beats re-simulating it.
	if _, ok := s.store.GetResult(j.id); ok {
		s.store.DeleteCheckpoint(j.id)
		s.cJobsDone.Inc()
		j.setState(StateDone)
		return
	}

	ck := &Checkpoint{Request: j.req, Cells: make(map[string]CellResult)}
	if payload, ok := s.store.GetCheckpoint(j.id); ok {
		if loaded, err := loadCheckpoint(payload); err == nil {
			ck = loaded // resume: completed cells are skipped below
		}
	}
	j.setDone(len(ck.Cells))
	j.setState(StateRunning)

	ctx, cancel := context.WithTimeout(s.ctx, s.cfg.JobDeadline)
	defer cancel()

	sc := j.req.Scale()
	if s.cfg.MetricsInterval > 0 {
		sc.Obs = obs.Config{
			MetricsInterval: s.cfg.MetricsInterval,
			OnSample: func(t sim.Tick, names []string, values []float64) {
				// The sampler reuses its slices; copy before they escape
				// to subscriber channels.
				j.publish(Event{
					Type:   "sample",
					TimeNS: t.Nanoseconds(),
					Names:  append([]string(nil), names...),
					Values: append([]float64(nil), values...),
				})
			},
		}
	}

	opts := experiments.MatrixOptions{
		Jobs:    s.cfg.SimJobs,
		Budget:  s.budget,
		Context: ctx,
		Filter: func(k experiments.Key) bool {
			_, done := ck.Cells[cellKey(k)]
			return !done
		},
		OnCell: func(k experiments.Key, res *system.Result, err error) {
			if err != nil {
				return // cancellation or a cell failure; classified after the sweep
			}
			ck.Cells[cellKey(k)] = cellResultFrom(k, res)
			// Per-cell durability: a SIGKILL from here on loses at most
			// the cell currently in flight. A failed write degrades the
			// checkpoint, not the job — ck still holds the cell in
			// memory, so an uninterrupted run completes normally.
			_ = s.store.PutCheckpoint(j.id, ck.marshal())
			s.drain.note(wallNow())
			s.cCells.Inc()
			j.cellDone(cellKey(k), len(ck.Cells))
		},
	}
	_, runErr := runMatrix(sc, opts)

	if len(ck.Cells) == j.total {
		doc, err := buildDoc(j.id, s.version, ck)
		if err != nil {
			s.store.DeleteCheckpoint(j.id)
			s.cJobsFailed.Inc()
			j.fail(err.Error(), "")
			return
		}
		if err := s.store.PutResult(j.id, doc); err != nil {
			s.cJobsFailed.Inc()
			j.fail(err.Error(), "")
			return
		}
		// Write-through: the first GET after a simulation is already a
		// memory hit, and the bytes it serves are the bytes just stored.
		s.tier.Put(j.id, s.version, doc)
		s.store.DeleteCheckpoint(j.id)
		s.cJobsDone.Inc()
		j.setState(StateDone)
		return
	}

	if runErr == nil {
		// Impossible by the runner contract (every non-filtered cell
		// either lands in OnCell or errors), but fail loudly over
		// pretending completeness.
		s.store.DeleteCheckpoint(j.id)
		s.cJobsFailed.Inc()
		j.fail("incomplete matrix without error", "")
		return
	}
	if s.ctx.Err() != nil {
		// Shutdown cancelled the sweep between cells. The checkpoint
		// holds every finished cell; the next process resumes it.
		j.setState(StateInterrupted)
		return
	}
	var trip *sim.TripError
	diagnostics := ""
	if errors.As(runErr, &trip) {
		diagnostics = trip.Diagnostics
	}
	s.store.DeleteCheckpoint(j.id)
	s.cJobsFailed.Inc()
	if errors.Is(runErr, context.DeadlineExceeded) {
		j.fail(fmt.Sprintf("deadline exceeded after %d/%d cells (limit %v)",
			len(ck.Cells), j.total, s.cfg.JobDeadline), "")
		return
	}
	j.fail(runErr.Error(), diagnostics)
}

// Close stops admission, cancels the running job at its next cell
// boundary (its finished cells are already checkpointed), and waits for
// the worker to exit — bounded by ctx. Queued and interrupted jobs stay
// on disk for the next process; nothing in flight is lost.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown did not drain in time: %w", ctx.Err())
	}
}
