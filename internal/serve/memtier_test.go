package serve

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func tierPayload(n int) []byte {
	return bytes.Repeat([]byte("x"), n)
}

func TestMemTierLRUEvictionAtByteBound(t *testing.T) {
	tier := newMemTier(100)
	tier.Put("a", "v", tierPayload(40))
	tier.Put("b", "v", tierPayload(40))
	if got := tier.Bytes(); got != 80 {
		t.Fatalf("resident bytes = %d, want 80", got)
	}
	// c pushes the tier past 100 bytes; a is the least recently used.
	tier.Put("c", "v", tierPayload(40))
	if _, ok := tier.Get("a"); ok {
		t.Error("a survived eviction past the byte bound")
	}
	if _, ok := tier.Get("b"); !ok {
		t.Error("b evicted while under the bound")
	}
	if got := tier.Bytes(); got > 100 {
		t.Errorf("resident bytes = %d, exceeds the 100-byte bound", got)
	}

	// Touching b (the Get above) made c the LRU entry: d must evict c.
	tier.Put("d", "v", tierPayload(40))
	if _, ok := tier.Get("c"); ok {
		t.Error("c survived; eviction is not recency-ordered")
	}
	if _, ok := tier.Get("b"); !ok {
		t.Error("recently used b was evicted")
	}

	// An entry larger than the whole bound is served but never cached.
	tier.Put("huge", "v", tierPayload(200))
	if _, ok := tier.Get("huge"); ok {
		t.Error("oversized entry was cached")
	}
	if got := tier.Bytes(); got > 100 {
		t.Errorf("resident bytes = %d after oversized put", got)
	}
}

func TestMemTierEntryFraming(t *testing.T) {
	tier := newMemTier(1 << 20)
	tier.Put("abc", "v9", []byte(`{"k":1}`))
	e, ok := tier.Get("abc")
	if !ok {
		t.Fatal("entry not resident")
	}
	if e.etag != `"abc.v9"` {
		t.Errorf("etag = %s, want quoted id.version", e.etag)
	}
	if e.clen != "7" {
		t.Errorf("clen = %s, want 7", e.clen)
	}
}

// TestMemTierSingleflight pins the read-through collapse: any number of
// concurrent misses for one id trigger exactly one load, and every
// caller shares the loaded entry.
func TestMemTierSingleflight(t *testing.T) {
	tier := newMemTier(1 << 20)
	var loads atomic.Int64
	gate := make(chan struct{})
	load := func() ([]byte, bool) {
		loads.Add(1)
		<-gate // hold every caller in the singleflight window
		return []byte("payload"), true
	}

	const callers = 16
	var wg sync.WaitGroup
	entries := make([]*memEntry, callers)
	tiers := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, tr, ok := tier.GetOrLoad("id1", "v", load)
			if !ok {
				t.Errorf("caller %d: load missed", i)
				return
			}
			entries[i], tiers[i] = e, tr
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Errorf("%d loads for %d concurrent callers, want singleflight collapse to 1", got, callers)
	}
	for i := 1; i < callers; i++ {
		if entries[i] != entries[0] {
			t.Fatalf("caller %d got a different entry instance", i)
		}
	}
	// The next read is a pure memory hit.
	if _, tr, ok := tier.GetOrLoad("id1", "v", func() ([]byte, bool) {
		t.Error("resident entry reloaded from disk")
		return nil, false
	}); !ok || tr != "mem" {
		t.Errorf("post-flight read: tier=%q ok=%v, want mem hit", tr, ok)
	}
}

// TestMemTierDisabledKeepsSingleflight: a disabled tier (bound <= 0)
// caches nothing but still collapses concurrent loads. Unlike the
// resident-tier test, followers that arrive after the leader finishes
// legitimately re-load (nothing stays cached), so the leader is pinned
// in flight before any follower starts.
func TestMemTierDisabledKeepsSingleflight(t *testing.T) {
	tier := newMemTier(-1)
	var loads atomic.Int64
	gate := make(chan struct{})
	inLoad := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // the leader: registers the flight, blocks in its load
		defer wg.Done()
		_, _, ok := tier.GetOrLoad("id1", "v", func() ([]byte, bool) {
			loads.Add(1)
			close(inLoad)
			<-gate
			return []byte("p"), true
		})
		if !ok {
			t.Error("leader load missed")
		}
	}()
	<-inLoad // the flight entry exists from here until the gate opens

	const followers = 7
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, ok := tier.GetOrLoad("id1", "v", func() ([]byte, bool) {
				loads.Add(1)
				return []byte("p"), true
			})
			if !ok {
				t.Error("follower load missed")
			}
		}()
	}
	// Give the followers a beat to join the flight, then release the
	// leader. A follower scheduled late at worst re-loads; the assertion
	// below tolerates stragglers while still failing if collapsing is
	// broken outright (every follower loading for itself).
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := loads.Load(); got > 2 {
		t.Errorf("disabled tier ran %d loads for %d concurrent callers, want collapse", got, followers+1)
	}
	if got := tier.Len(); got != 0 {
		t.Errorf("disabled tier cached %d entries", got)
	}
	// Every subsequent read re-loads (no residency).
	if _, _, ok := tier.GetOrLoad("id1", "v", func() ([]byte, bool) {
		loads.Add(1)
		return []byte("p"), true
	}); !ok {
		t.Error("second load missed")
	}
}

func TestMemTierLoadMiss(t *testing.T) {
	tier := newMemTier(1 << 20)
	if _, _, ok := tier.GetOrLoad("nope", "v", func() ([]byte, bool) { return nil, false }); ok {
		t.Error("miss reported as hit")
	}
	if got := tier.Len(); got != 0 {
		t.Errorf("miss left %d resident entries", got)
	}
}

func TestMemTierPutIsIdempotentPerID(t *testing.T) {
	tier := newMemTier(1 << 20)
	tier.Put("a", "v", tierPayload(10))
	tier.Put("a", "v", tierPayload(10)) // same id: determinism says same bytes
	if got := tier.Bytes(); got != 10 {
		t.Errorf("double put of one id accounts %d bytes, want 10", got)
	}
	if got := tier.Len(); got != 1 {
		t.Errorf("double put of one id yields %d entries", got)
	}
}

func TestMemTierRemove(t *testing.T) {
	tier := newMemTier(1 << 20)
	for i := 0; i < 4; i++ {
		tier.Put(fmt.Sprintf("id%d", i), "v", tierPayload(8))
	}
	tier.Remove("id2")
	if _, ok := tier.Get("id2"); ok {
		t.Error("removed entry still resident")
	}
	if got, want := tier.Bytes(), int64(24); got != want {
		t.Errorf("bytes after remove = %d, want %d", got, want)
	}
}
