// Package serve implements tdserve: a fault-tolerant HTTP/JSON job
// service over the experiment matrix with content-addressed result
// caching and checkpoint-restart.
//
// A request is a canonicalized simulation configuration (workloads x
// designs x scale) hashed to a content address. The repo's bit-identical
// determinism invariant — identical configs produce identical results,
// enforced by tdlint and the golden tests — is what makes memoization
// sound: a configuration is only ever simulated once per code version,
// and every later submission is served from the persistent store in
// microseconds, byte-identical to the first response.
//
// The robustness layer runs through every tier: a bounded admission
// queue with explicit 429 + Retry-After backpressure, per-job deadlines
// via context cancellation in the matrix runner, a supervisor that
// converts worker panics into failed-job states, per-cell
// checkpoint-restart so a killed server resumes in-flight jobs instead
// of restarting them from tick 0, crash-safe store writes (temp file +
// fsync + atomic rename; corrupt entries are detected by checksum and
// treated as misses, never 500s), and graceful shutdown that drains or
// checkpoints in-flight jobs within a deadline.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"tdram/internal/experiments"
	"tdram/internal/sim"
	"tdram/internal/workload"
)

// Request is one simulation configuration as submitted by a client. The
// zero value of every field selects a default, so `{}` is a valid job
// (the representative workload set at quick scale). Fields deliberately
// cover only simulation content: transport choices (progress streaming,
// metrics) live outside the Request so they cannot fracture the content
// address of identical configurations.
type Request struct {
	// Workloads names the workload axis (empty selects the band-balanced
	// representative subset). Order and duplicates do not matter:
	// canonicalization sorts and dedupes, so permutations of the same
	// set share one content address.
	Workloads []string `json:"workloads"`

	// CacheMB is the DRAM-cache capacity in MiB (default 8).
	CacheMB int `json:"cache_mb"`

	// RequestsPerCore / WarmupPerCore size the measured and timed-warmup
	// phases (defaults 4000 / 500).
	RequestsPerCore int `json:"requests_per_core"`
	WarmupPerCore   int `json:"warmup_per_core"`

	// FaultRate, when positive, enables deterministic fault injection at
	// that per-access probability, seeded by FaultSeed.
	FaultRate float64 `json:"fault_rate"`
	FaultSeed uint64  `json:"fault_seed"`
}

// Request bounds: a public what-if API must reject configurations that
// would pin a worker for hours or exhaust memory, with a 4xx instead of
// an operator page.
const (
	maxRequestsPerCore = 200000
	maxWarmupPerCore   = 50000
	maxCacheMB         = 1024
	maxWorkloads       = 64
)

// Canonicalize validates r and rewrites it into its canonical form:
// defaults applied, workloads sorted and deduped, bounds enforced. Two
// requests describing the same simulation canonicalize to equal values
// and therefore hash to the same content address.
func (r *Request) Canonicalize() error {
	if len(r.Workloads) == 0 {
		for _, wl := range workload.Representative() {
			r.Workloads = append(r.Workloads, wl.Name)
		}
	}
	if len(r.Workloads) > maxWorkloads {
		return fmt.Errorf("serve: %d workloads exceeds the limit of %d", len(r.Workloads), maxWorkloads)
	}
	sort.Strings(r.Workloads)
	deduped := r.Workloads[:0]
	for i, name := range r.Workloads {
		if i > 0 && name == r.Workloads[i-1] {
			continue
		}
		if _, err := workload.ByName(name); err != nil {
			return fmt.Errorf("serve: %v", err)
		}
		deduped = append(deduped, name)
	}
	r.Workloads = deduped

	if r.CacheMB == 0 {
		r.CacheMB = 8
	}
	if r.CacheMB < 1 || r.CacheMB > maxCacheMB {
		return fmt.Errorf("serve: cache_mb %d out of range [1, %d]", r.CacheMB, maxCacheMB)
	}
	if r.RequestsPerCore == 0 {
		r.RequestsPerCore = 4000
	}
	if r.RequestsPerCore < 1 || r.RequestsPerCore > maxRequestsPerCore {
		return fmt.Errorf("serve: requests_per_core %d out of range [1, %d]", r.RequestsPerCore, maxRequestsPerCore)
	}
	if r.WarmupPerCore == 0 {
		r.WarmupPerCore = 500
	}
	if r.WarmupPerCore < 0 || r.WarmupPerCore > maxWarmupPerCore {
		return fmt.Errorf("serve: warmup_per_core %d out of range [0, %d]", r.WarmupPerCore, maxWarmupPerCore)
	}
	if r.FaultRate < 0 || r.FaultRate > 1 {
		return fmt.Errorf("serve: fault_rate %g is not a probability", r.FaultRate)
	}
	return nil
}

// ID returns the request's content address: the hex form of the first
// 16 bytes of SHA-256 over the canonical JSON encoding. The encoding is
// deterministic — struct fields marshal in declaration order and the
// workload list is canonically sorted — so equal configurations address
// equal store entries. Call Canonicalize first.
func (r *Request) ID() string {
	// Struct-field marshaling never ranges over a map, so the encoding
	// is byte-stable; this is exactly the property the determinism
	// analyzer guards in this package.
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("serve: canonical request does not marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// Scale builds the experiment-matrix scale the request describes. Every
// job arms the no-progress watchdog: a wedged cell must fail the job
// with a structured diagnosis, never hang a worker forever.
func (r *Request) Scale() experiments.Scale {
	specs := make([]workload.Spec, 0, len(r.Workloads))
	for _, name := range r.Workloads {
		wl, err := workload.ByName(name)
		if err != nil {
			panic(fmt.Sprintf("serve: canonicalized workload vanished: %v", err))
		}
		specs = append(specs, wl)
	}
	return experiments.Scale{
		Name:            "serve",
		CacheBytes:      uint64(r.CacheMB) << 20,
		RequestsPerCore: r.RequestsPerCore,
		WarmupPerCore:   r.WarmupPerCore,
		Workloads:       specs,
		FaultRate:       r.FaultRate,
		FaultSeed:       r.FaultSeed,
		Watchdog:        10 * sim.Millisecond,
	}
}

// Cells reports how many (design, workload) cells the request spans.
func (r *Request) Cells() int {
	return len(r.Workloads) * len(experiments.MatrixDesigns())
}

var (
	codeVersionOnce sync.Once
	codeVersion     string
)

// CodeVersion identifies the simulator build serving the store: the hex
// prefix of SHA-256 over the running executable. Results are cached per
// (config-hash, code-version), so a rebuilt binary — which may
// legitimately change bit-exact results — starts a fresh namespace
// instead of serving stale entries, while a restart of the same binary
// (checkpoint-restart) keeps its namespace and resumes its jobs.
func CodeVersion() string {
	codeVersionOnce.Do(func() {
		codeVersion = "dev"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		codeVersion = hex.EncodeToString(h.Sum(nil))[:12]
	})
	return codeVersion
}
