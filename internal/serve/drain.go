package serve

import (
	"math"
	"sync"
	"time"
)

// drainRate estimates the service's live cell throughput from a ring of
// recent cell-completion timestamps, so 429 backpressure can tell the
// client when the queue will actually have room instead of quoting a
// constant. The window spans the last drainWindow completions measured
// against "now", so an idle burst from minutes ago decays instead of
// advertising stale throughput.
type drainWindow struct {
	mu    sync.Mutex
	times [64]time.Time
	n     int // total completions recorded
}

// note records one completed cell.
func (d *drainWindow) note(t time.Time) {
	d.mu.Lock()
	d.times[d.n%len(d.times)] = t
	d.n++
	d.mu.Unlock()
}

// cellsPerSec reports the recent drain rate, or 0 when there is not
// enough history to estimate one.
func (d *drainWindow) cellsPerSec(now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	samples := d.n
	if samples > len(d.times) {
		samples = len(d.times)
	}
	if samples < 2 {
		return 0
	}
	oldest := d.times[(d.n-samples)%len(d.times)]
	span := now.Sub(oldest).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(samples) / span
}

// retryAfterSeconds derives the 429 Retry-After from the live drain
// rate and the work already committed: queuedCells at cellsPerSec is
// when the queue plausibly has room. Floor 1s (an instant retry under
// load is just another rejection), ceiling 300s (past that the estimate
// is noise and clients should poll, not sleep).
func retryAfterSeconds(queuedCells int, rate float64) int {
	const floor, ceiling = 1, 300
	if rate <= 0 || queuedCells <= 0 {
		return 2 // no history yet: the old constant is the best guess
	}
	secs := int(math.Ceil(float64(queuedCells) / rate))
	if secs < floor {
		return floor
	}
	if secs > ceiling {
		return ceiling
	}
	return secs
}
