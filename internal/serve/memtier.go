package serve

import (
	"container/list"
	"strconv"
	"sync"
)

// memTier is the bytes-bounded in-memory result cache that sits above
// the crash-safe disk Store. The disk store made repeat submissions
// cheap — microseconds of simulation amortized to a file read — but a
// file read, checksum verification, and response re-framing on every
// hit is still the wrong cost model for a hot configuration: the paper's
// core argument is that hit latency is decided by what sits on the
// critical path, and for tdserve the critical path of a hot hit should
// be one map lookup and one socket write.
//
// Entries hold the stored result bytes verbatim plus the precomputed
// response framing (ETag, Content-Length string), so the HTTP tier
// serves a memory hit zero-copy: no disk read, no re-hash, no
// re-marshal — the cached byte slice is handed straight to the
// ResponseWriter. Payloads are immutable by contract (the store never
// rewrites a result in place under one code version; a new code version
// is a new Server and a new tier), which is what makes sharing the
// slice across requests sound, and why the tier needs no per-version
// invalidation beyond dying with its Server.
//
// Reads go through GetOrLoad with singleflight collapsing: any number
// of concurrent requests for one absent id trigger exactly one disk
// read; the followers block on the leader's call and share its entry.
// The tier is bounded in payload bytes with LRU eviction; maxBytes == 0
// disables caching but keeps the singleflight collapse (concurrent
// misses still coalesce their disk reads).
type memTier struct {
	mu       sync.Mutex
	maxBytes int64
	size     int64
	entries  map[string]*list.Element // id -> element holding *memEntry
	lru      list.List                // front = most recently used
	flight   map[string]*flightCall
}

// memEntry is one cached result: the stored bytes plus the framing the
// HTTP tier would otherwise recompute per request.
type memEntry struct {
	id      string
	payload []byte
	etag    string // strong ETag: "<id>.<code-version>", quoted
	clen    string // strconv.Itoa(len(payload)), precomputed
}

// flightCall is one in-progress load; followers wait on done.
type flightCall struct {
	done chan struct{}
	e    *memEntry // nil when the load missed
}

func newMemTier(maxBytes int64) *memTier {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &memTier{
		maxBytes: maxBytes,
		entries:  make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
}

func newMemEntry(id, version string, payload []byte) *memEntry {
	return &memEntry{
		id:      id,
		payload: payload,
		etag:    `"` + id + "." + version + `"`,
		clen:    strconv.Itoa(len(payload)),
	}
}

// Get returns the resident entry for id, refreshing its recency. It
// never touches disk.
func (t *memTier) Get(id string) (*memEntry, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	el, ok := t.entries[id]
	if !ok {
		return nil, false
	}
	t.lru.MoveToFront(el)
	return el.Value.(*memEntry), true
}

// GetOrLoad returns the entry for id, reading through to load on a
// memory miss. The returned tier names who answered: "mem" for a
// resident entry, "disk" for a read-through (leader or follower of the
// same singleflight). ok=false means the load itself missed — the
// result exists in neither tier.
func (t *memTier) GetOrLoad(id, version string, load func() ([]byte, bool)) (e *memEntry, tier string, ok bool) {
	t.mu.Lock()
	if el, hit := t.entries[id]; hit {
		t.lru.MoveToFront(el)
		e = el.Value.(*memEntry)
		t.mu.Unlock()
		return e, "mem", true
	}
	if c, inflight := t.flight[id]; inflight {
		t.mu.Unlock()
		<-c.done
		if c.e == nil {
			return nil, "disk", false
		}
		return c.e, "disk", true
	}
	c := &flightCall{done: make(chan struct{})}
	t.flight[id] = c
	t.mu.Unlock()

	// The load runs outside the lock: a slow disk read must not stall
	// memory hits for other ids.
	payload, loaded := load()
	if loaded {
		c.e = newMemEntry(id, version, payload)
	}
	t.mu.Lock()
	delete(t.flight, id)
	if c.e != nil {
		t.insertLocked(c.e)
	}
	t.mu.Unlock()
	close(c.done)
	if c.e == nil {
		return nil, "disk", false
	}
	return c.e, "disk", true
}

// Put inserts a freshly produced result (write-through from the job
// worker), so the first GET after a simulation is already a memory hit.
func (t *memTier) Put(id, version string, payload []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.insertLocked(newMemEntry(id, version, payload))
}

// Remove drops id from the tier (tests, and operator-forced refresh).
func (t *memTier) Remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el, ok := t.entries[id]; ok {
		t.removeLocked(el)
	}
}

// insertLocked caches e, evicting least-recently-used entries past the
// byte bound. An entry larger than the whole bound is not cached at all
// (it would evict everything and then be evicted by the next insert);
// the caller still serves it, just without residency.
func (t *memTier) insertLocked(e *memEntry) {
	if t.maxBytes == 0 || int64(len(e.payload)) > t.maxBytes {
		return
	}
	if el, ok := t.entries[e.id]; ok {
		// Same id, same bytes (determinism); keep the resident entry.
		t.lru.MoveToFront(el)
		return
	}
	t.entries[e.id] = t.lru.PushFront(e)
	t.size += int64(len(e.payload))
	for t.size > t.maxBytes {
		back := t.lru.Back()
		if back == nil {
			break
		}
		t.removeLocked(back)
	}
}

func (t *memTier) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	t.lru.Remove(el)
	delete(t.entries, e.id)
	t.size -= int64(len(e.payload))
}

// Bytes reports the resident payload bytes (gauge).
func (t *memTier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Len reports the resident entry count (gauge).
func (t *memTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}
