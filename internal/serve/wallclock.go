package serve

import "time"

// wallNow and wallSince isolate the serve tier's legitimate wall-clock
// reads — endpoint latency measurement and queue drain-rate estimation,
// never simulated time — behind one annotated seam so the determinism
// analyzer covers the rest of the package (the same pattern as tdbench
// and cmd/tdserve).
func wallNow() time.Time {
	return time.Now() //tdlint:allow determinism — service wall-clock timing, not simulated time
}

func wallSince(t time.Time) time.Duration {
	return time.Since(t) //tdlint:allow determinism — service wall-clock timing, not simulated time
}
