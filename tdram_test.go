package tdram_test

import (
	"strings"
	"testing"

	"tdram"
)

func TestPublicRoster(t *testing.T) {
	if got := len(tdram.Workloads()); got != 28 {
		t.Errorf("Workloads() = %d, want 28", got)
	}
	if got := len(tdram.Designs()); got != 6 {
		t.Errorf("Designs() = %d, want 6", got)
	}
	if _, err := tdram.WorkloadByName("ft.C"); err != nil {
		t.Error(err)
	}
	if _, err := tdram.WorkloadByName("bogus"); err == nil {
		t.Error("bogus workload resolved")
	}
	d, err := tdram.ParseDesign("tdram")
	if err != nil || d != tdram.TDRAM {
		t.Errorf("ParseDesign: %v %v", d, err)
	}
}

func TestMustWorkloadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWorkload(bogus) did not panic")
		}
	}()
	tdram.MustWorkload("bogus")
}

func TestPublicRun(t *testing.T) {
	cfg := tdram.NewSystemConfig(tdram.TDRAM, tdram.MustWorkload("bt.C"), 8<<20)
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 300
	res, err := tdram.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 || res.Cache.DemandReads == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.Cache.Outcomes.MissRatio() >= 0.30 {
		t.Errorf("bt.C miss ratio %.2f outside low band", res.Cache.Outcomes.MissRatio())
	}
}

func TestScales(t *testing.T) {
	q, f := tdram.QuickScale(), tdram.FullScale()
	if len(q.Workloads) >= len(f.Workloads) {
		t.Error("quick scale not smaller than full")
	}
	if len(f.Workloads) != 28 {
		t.Errorf("full scale workloads = %d", len(f.Workloads))
	}
	// Scale configs must validate for every design.
	for _, d := range tdram.Designs() {
		cfg := q.Config(d, q.Workloads[0])
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}

func TestTinyMatrixAndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	sc := tdram.Scale{
		Name:            "tiny",
		CacheBytes:      8 << 20,
		RequestsPerCore: 1200,
		WarmupPerCore:   200,
		Workloads:       []tdram.Workload{tdram.MustWorkload("lu.C"), tdram.MustWorkload("is.D")},
	}
	m, err := tdram.RunMatrix(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	reps := tdram.ReproduceFigures(m)
	if len(reps) != 9 {
		t.Fatalf("figure count = %d", len(reps))
	}
	for _, r := range reps {
		if !strings.Contains(r.String(), r.Title) {
			t.Errorf("%s: title missing from rendering", r.ID)
		}
	}
}
