// Golden-stats pin for the simulation kernel: every design's full
// Result (outcome counts, latency means and histograms, traffic and
// energy breakdowns) must be bit-identical run over run AND match the
// committed fingerprints in testdata/kernel_golden.json.
//
// The fingerprints were generated with the original container/heap event
// queue; the timing-wheel kernel that replaced it must preserve the
// exact (when, seq) firing order, so any divergence here means the
// kernel reordered events. Intentional *model* changes that move timing
// are expected to shift these values — regenerate with:
//
//	go test -run TestKernelStatsGolden -update-golden .
package tdram_test

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"tdram"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/kernel_golden.json")

const goldenPath = "testdata/kernel_golden.json"

// goldenDesigns are all five cached designs plus the NoCache baseline,
// so both controller paths (cache protocol and straight-to-backing) are
// pinned.
var goldenDesigns = []tdram.Design{
	tdram.CascadeLake, tdram.Alloy, tdram.BEAR, tdram.NDC, tdram.TDRAM, tdram.NoCache,
}

// goldenCell runs one micro-scale simulation and fingerprints the full
// Result via its reflected rendering (covers every exported and
// unexported stat field, histograms included).
func goldenCell(t testing.TB, d tdram.Design) string {
	t.Helper()
	cfg := tdram.NewSystemConfig(d, tdram.MustWorkload("ft.C"), 8<<20)
	cfg.RequestsPerCore = 1500
	cfg.WarmupPerCore = 300
	res, err := tdram.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(fmt.Sprintf("%+v", res))))
}

// TestKernelStatsDeterminism runs every design twice on fresh kernels
// and requires bit-identical stats: the event queue must impose a total
// deterministic order, never a heap-shape- or map-order-dependent one.
func TestKernelStatsDeterminism(t *testing.T) {
	designs := goldenDesigns
	if testing.Short() {
		designs = []tdram.Design{tdram.TDRAM, tdram.CascadeLake}
	}
	for _, d := range designs {
		if a, b := goldenCell(t, d), goldenCell(t, d); a != b {
			t.Errorf("%v: stats differ between identical runs: %s vs %s", d, a, b)
		}
	}
}

// TestKernelStatsGolden compares each design's fingerprint against the
// committed golden file.
func TestKernelStatsGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("golden cells cover all designs; skipped under -short")
	}
	got := make(map[string]string, len(goldenDesigns))
	for _, d := range goldenDesigns {
		got[d.String()] = goldenCell(t, d)
	}
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	for d, h := range got {
		if want[d] != h {
			t.Errorf("%s: stats fingerprint %s does not match golden %s — the kernel reordered events (or a model change moved timing; regenerate with -update-golden if intentional)", d, h, want[d])
		}
	}
}
