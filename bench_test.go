// Benchmarks regenerating every table and figure of the paper's
// evaluation at a micro scale: each BenchmarkFigXX / BenchmarkTabXX runs
// the minimal set of full-system simulations that artifact needs and
// reports its headline number as a custom metric. `go test -bench=.`
// therefore exercises the complete reproduction pipeline end to end;
// `cmd/tdbench -scale full` produces the publication-scale numbers.
package tdram_test

import (
	"math"
	"testing"

	"tdram"
)

// benchWorkloads is a tiny band-balanced subset (one low-miss and one
// high-miss from each suite).
func benchWorkloads() []tdram.Workload {
	return []tdram.Workload{
		tdram.MustWorkload("bt.C"),
		tdram.MustWorkload("ft.C"),
		tdram.MustWorkload("bfs.22"),
		tdram.MustWorkload("pr.25"),
	}
}

const (
	benchCapacity = 8 << 20
	benchRequests = 1500
)

// benchRun executes one cell at micro scale.
func benchRun(b *testing.B, d tdram.Design, wl tdram.Workload) *tdram.Result {
	b.Helper()
	cfg := tdram.NewSystemConfig(d, wl, benchCapacity)
	cfg.RequestsPerCore = benchRequests
	cfg.WarmupPerCore = 300
	res, err := tdram.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// geomean over a slice.
func geomean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// BenchmarkKernelSystem is the event-kernel end-to-end cell: one
// TDRAM-design run of a single workload, so the measurement is dominated
// by schedule/fire churn on the simulation core rather than by figure
// bookkeeping. Its ns/op and allocs/op are the full-system numbers
// recorded in BENCH_kernel.json.
func BenchmarkKernelSystem(b *testing.B) {
	wl := tdram.MustWorkload("ft.C")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchRun(b, tdram.TDRAM, wl)
	}
}

// BenchmarkFig01Breakdown regenerates the Fig. 1 access breakdown.
func BenchmarkFig01Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inBand := 0
		for _, wl := range benchWorkloads() {
			res := benchRun(b, tdram.CascadeLake, wl)
			mr := res.Cache.Outcomes.MissRatio()
			if (wl.Band.String() == "low") == (mr < 0.30) {
				inBand++
			}
		}
		b.ReportMetric(float64(inBand)/float64(len(benchWorkloads())), "band-hit-rate")
	}
}

// BenchmarkFig02Queueing regenerates the Fig. 2 queueing comparison.
func BenchmarkFig02Queueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cacheQ, baseQ []float64
		for _, wl := range benchWorkloads() {
			cacheQ = append(cacheQ, benchRun(b, tdram.CascadeLake, wl).Cache.ReadQueueing.Value())
			baseQ = append(baseQ, benchRun(b, tdram.NoCache, wl).MM.ReadQueueing.Value())
		}
		b.ReportMetric(mean(cacheQ), "cl-queueing-ns")
		b.ReportMetric(mean(baseQ), "nocache-queueing-ns")
	}
}

// BenchmarkFig03Bloat regenerates the Fig. 3 unuseful-traffic split.
func BenchmarkFig03Bloat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var fr []float64
		for _, wl := range benchWorkloads() {
			fr = append(fr, benchRun(b, tdram.Alloy, wl).Cache.Traffic.UnusefulFraction())
		}
		b.ReportMetric(mean(fr), "alloy-unuseful-frac")
	}
}

// BenchmarkFig09TagCheck regenerates the Fig. 9 tag-check comparison.
func BenchmarkFig09TagCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, wl := range benchWorkloads() {
			cl := benchRun(b, tdram.CascadeLake, wl).Cache.TagCheck.Value()
			td := benchRun(b, tdram.TDRAM, wl).Cache.TagCheck.Value()
			ratios = append(ratios, cl/td)
		}
		b.ReportMetric(geomean(ratios), "tagcheck-speedup-vs-cl")
	}
}

// BenchmarkFig10ReadQueueing regenerates Fig. 10.
func BenchmarkFig10ReadQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var td, ndc []float64
		for _, wl := range benchWorkloads() {
			td = append(td, benchRun(b, tdram.TDRAM, wl).Cache.ReadQueueing.Value())
			ndc = append(ndc, benchRun(b, tdram.NDC, wl).Cache.ReadQueueing.Value())
		}
		b.ReportMetric(mean(td), "tdram-queueing-ns")
		b.ReportMetric(mean(ndc), "ndc-queueing-ns")
	}
}

// BenchmarkFig11Speedup regenerates the Fig. 11 headline speedup.
func BenchmarkFig11Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var sp []float64
		for _, wl := range benchWorkloads() {
			cl := benchRun(b, tdram.CascadeLake, wl)
			td := benchRun(b, tdram.TDRAM, wl)
			sp = append(sp, float64(cl.Runtime)/float64(td.Runtime))
		}
		b.ReportMetric(geomean(sp), "speedup-vs-cl")
	}
}

// BenchmarkFig12VsNoCache regenerates Fig. 12.
func BenchmarkFig12VsNoCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var tdSp, clSp []float64
		for _, wl := range benchWorkloads() {
			base := benchRun(b, tdram.NoCache, wl)
			tdSp = append(tdSp, float64(base.Runtime)/float64(benchRun(b, tdram.TDRAM, wl).Runtime))
			clSp = append(clSp, float64(base.Runtime)/float64(benchRun(b, tdram.CascadeLake, wl).Runtime))
		}
		b.ReportMetric(geomean(tdSp), "tdram-vs-nocache")
		b.ReportMetric(geomean(clSp), "cl-vs-nocache")
	}
}

// BenchmarkTab04Bloat regenerates the Table IV bloat factors.
func BenchmarkTab04Bloat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var cl, td []float64
		for _, wl := range benchWorkloads() {
			if wl.Band.String() != "high" {
				continue
			}
			cl = append(cl, benchRun(b, tdram.CascadeLake, wl).Cache.BloatFactor())
			td = append(td, benchRun(b, tdram.TDRAM, wl).Cache.BloatFactor())
		}
		b.ReportMetric(geomean(cl), "cl-bloat-high")
		b.ReportMetric(geomean(td), "tdram-bloat-high")
	}
}

// BenchmarkFig13Energy regenerates the Fig. 13 relative energy.
func BenchmarkFig13Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rel []float64
		for _, wl := range benchWorkloads() {
			cl := benchRun(b, tdram.CascadeLake, wl).Energy.Cache.Total()
			td := benchRun(b, tdram.TDRAM, wl).Energy.Cache.Total()
			rel = append(rel, td/cl)
		}
		b.ReportMetric(geomean(rel), "tdram-energy-vs-cl")
	}
}

// BenchmarkSecVDPredictor regenerates the §V-D predictor study.
func BenchmarkSecVDPredictor(b *testing.B) {
	wl := tdram.MustWorkload("pr.25")
	for i := 0; i < b.N; i++ {
		base := benchRun(b, tdram.CascadeLake, wl)
		cfg := tdram.NewSystemConfig(tdram.CascadeLake, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.UsePredictor = true
		pred, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(base.Runtime)/float64(pred.Runtime), "predictor-speedup")
	}
}

// BenchmarkSecVEFlushBuffer regenerates the §V-E sensitivity points.
func BenchmarkSecVEFlushBuffer(b *testing.B) {
	wl := tdram.MustWorkload("is.D")
	for i := 0; i < b.N; i++ {
		cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.FlushEntries = 16
		res, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Cache.FlushOccupancy.Value(), "avg-occupancy")
		b.ReportMetric(float64(res.Cache.FlushMax), "max-occupancy")
		b.ReportMetric(float64(res.Cache.FlushStalls), "stalls")
	}
}

// BenchmarkSecVFSetAssoc regenerates the §V-F associativity points.
func BenchmarkSecVFSetAssoc(b *testing.B) {
	wl := tdram.MustWorkload("bt.C")
	for i := 0; i < b.N; i++ {
		var runtimes []float64
		for _, ways := range []int{1, 4, 16} {
			cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, benchCapacity)
			cfg.RequestsPerCore = benchRequests
			cfg.WarmupPerCore = 300
			cfg.Cache.Ways = ways
			res, err := tdram.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			runtimes = append(runtimes, float64(res.Runtime))
		}
		b.ReportMetric(maxF(runtimes)/minF(runtimes), "ways-runtime-spread")
	}
}

// BenchmarkAblationProbing measures the early-tag-probing ablation.
func BenchmarkAblationProbing(b *testing.B) {
	wl := tdram.MustWorkload("pr.25")
	for i := 0; i < b.N; i++ {
		on := benchRun(b, tdram.TDRAM, wl)
		cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.ProbeEnabled = false
		off, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(off.Cache.TagCheck.Value()/on.Cache.TagCheck.Value(), "probe-tagcheck-gain")
	}
}

// BenchmarkAblationProbePolicy measures youngest- vs oldest-first probing.
func BenchmarkAblationProbePolicy(b *testing.B) {
	wl := tdram.MustWorkload("ft.C")
	for i := 0; i < b.N; i++ {
		young := benchRun(b, tdram.TDRAM, wl)
		cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.ProbeOldest = true
		old, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(old.Cache.ReadQueueing.Value()/young.Cache.ReadQueueing.Value(), "oldest-vs-youngest-queueing")
	}
}

// BenchmarkAblationFlushBuffer measures the flush buffer's value.
func BenchmarkAblationFlushBuffer(b *testing.B) {
	wl := tdram.MustWorkload("is.D")
	for i := 0; i < b.N; i++ {
		full := benchRun(b, tdram.TDRAM, wl)
		cfg := tdram.NewSystemConfig(tdram.TDRAM, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.FlushEntries = 1
		tiny, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(tiny.Runtime)/float64(full.Runtime), "no-buffer-slowdown")
	}
}

// BenchmarkAblationPagePolicy measures close-page vs open-page rows.
func BenchmarkAblationPagePolicy(b *testing.B) {
	wl := tdram.MustWorkload("ft.C")
	for i := 0; i < b.N; i++ {
		closed := benchRun(b, tdram.CascadeLake, wl)
		cfg := tdram.NewSystemConfig(tdram.CascadeLake, wl, benchCapacity)
		cfg.RequestsPerCore = benchRequests
		cfg.WarmupPerCore = 300
		cfg.Cache.OpenPage = true
		open, err := tdram.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(closed.Runtime)/float64(open.Runtime), "openpage-speedup")
		hitFrac := 0.0
		if acts := open.CacheRowHits + open.CacheActivates; acts > 0 {
			hitFrac = float64(open.CacheRowHits) / float64(acts)
		}
		b.ReportMetric(hitFrac, "row-hit-frac")
	}
}

// BenchmarkAblationCondColumn measures the conditional column operation.
func BenchmarkAblationCondColumn(b *testing.B) {
	wl := tdram.MustWorkload("pr.25")
	for i := 0; i < b.N; i++ {
		td := benchRun(b, tdram.TDRAM, wl)
		nd := benchRun(b, tdram.NDC, wl)
		b.ReportMetric(nd.Energy.Cache.Col/td.Energy.Cache.Col, "ndc-colop-energy-ratio")
	}
}

func mean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func minF(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v < m {
			m = v
		}
	}
	return m
}

func maxF(vs []float64) float64 {
	m := vs[0]
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
