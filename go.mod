module tdram

go 1.22
