// Package tdram is a cycle-level reproduction of "Efficient Caching with
// A Tag-enhanced DRAM" (HPCA 2025): a discrete-event memory-system
// simulator with the paper's TDRAM device — on-die tag mats, in-DRAM tag
// comparison with conditional column operation, a Hit-Miss bus, a flush
// buffer, and early tag probing — alongside the designs it is evaluated
// against (Cascade Lake-style tags-in-ECC, Alloy, BEAR, NDC, and an
// ideal zero-latency-tag cache), an 8-core front end with private SRAM
// caches, a DDR5 backing store, the 28 NPB/GAPBS workload stand-ins,
// and a harness regenerating every table and figure of the paper's
// evaluation.
//
// The package is a thin facade over the internal packages; everything a
// downstream user needs is re-exported here.
//
// Quick start:
//
//	cfg := tdram.NewSystemConfig(tdram.TDRAM, tdram.MustWorkload("ft.C"), 16<<20)
//	res, err := tdram.Run(cfg)
//	// res.Runtime, res.Cache.TagCheck, res.Cache.Outcomes, res.Energy ...
package tdram

import (
	"tdram/internal/dramcache"
	"tdram/internal/experiments"
	"tdram/internal/fault"
	"tdram/internal/obs"
	"tdram/internal/sim"
	"tdram/internal/system"
	"tdram/internal/workload"
)

// Design identifies one of the modeled DRAM-cache designs.
type Design = dramcache.Design

// The modeled designs (§IV-A).
const (
	// CascadeLake models Intel's commercial tags-in-ECC DRAM cache, the
	// paper's evaluation baseline.
	CascadeLake = dramcache.CascadeLake
	// Alloy streams 80 B tag-and-data units.
	Alloy = dramcache.Alloy
	// BEAR adds bandwidth-bloat mitigations to Alloy.
	BEAR = dramcache.BEAR
	// NDC stores tags in DRAM with compare tied to the column operation.
	NDC = dramcache.NDC
	// TDRAM is the paper's contribution.
	TDRAM = dramcache.TDRAM
	// Ideal is the zero-latency-tag upper bound.
	Ideal = dramcache.Ideal
	// NoCache is the main-memory-only reference system.
	NoCache = dramcache.NoCache
)

// Designs lists the cache designs in the paper's comparison order.
func Designs() []Design { return dramcache.Designs() }

// ParseDesign resolves a design by name ("tdram", "cascade-lake", ...).
func ParseDesign(name string) (Design, error) { return dramcache.ParseDesign(name) }

// CacheConfig parameterizes the DRAM-cache controller and device.
type CacheConfig = dramcache.Config

// DefaultCacheConfig returns the paper's configuration of a design.
func DefaultCacheConfig(d Design, capacityBytes uint64) CacheConfig {
	return dramcache.DefaultConfig(d, capacityBytes)
}

// Workload is a named synthetic stand-in for one of the paper's NPB or
// GAPBS benchmarks.
type Workload = workload.Spec

// Workloads returns the full 28-workload roster.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks a workload up ("ft.C", "pr.25", ...).
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// MustWorkload is WorkloadByName, panicking on unknown names; convenient
// in examples and tests.
func MustWorkload(name string) Workload {
	w, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// RepresentativeWorkloads returns the band-balanced quick subset.
func RepresentativeWorkloads() []Workload { return workload.Representative() }

// SystemConfig describes one full-system run.
type SystemConfig = system.Config

// Result carries one run's measurements.
type Result = system.Result

// Tick is simulated time in picoseconds.
type Tick = sim.Tick

// NewSystemConfig builds the paper's 8-core topology around the given
// design, workload and cache capacity.
func NewSystemConfig(d Design, wl Workload, cacheBytes uint64) SystemConfig {
	return system.DefaultConfig(d, wl, cacheBytes)
}

// Run executes one full-system simulation.
func Run(cfg SystemConfig) (*Result, error) { return system.Run(cfg) }

// System is a fully wired machine; use it instead of Run when the run's
// observer outputs (traces, metrics) are needed afterwards.
type System = system.System

// NewSystem builds a machine without running it.
func NewSystem(cfg SystemConfig) (*System, error) { return system.New(cfg) }

// ObsConfig selects observability outputs: Perfetto command tracing
// and/or periodic metrics sampling (SystemConfig.Obs).
type ObsConfig = obs.Config

// Observer is the attached observability subsystem of a running system;
// it writes Chrome/Perfetto traces and sampled time series.
type Observer = obs.Observer

// ParseTick parses a duration like "500ps", "2.5ns" or "1us" into
// simulated ticks (for ObsConfig.MetricsInterval and similar knobs).
func ParseTick(s string) (Tick, error) { return sim.ParseTick(s) }

// Scale selects the reproduction effort (Quick or Full).
type Scale = experiments.Scale

// QuickScale is the band-balanced six-workload subset.
func QuickScale() Scale { return experiments.Quick() }

// FullScale covers all 28 workloads.
func FullScale() Scale { return experiments.Full() }

// Matrix is the shared set of (design x workload) runs the figures
// derive from.
type Matrix = experiments.Matrix

// Report is one regenerated table or figure.
type Report = experiments.Report

// MatrixOptions configures a matrix sweep: the worker-pool width (Jobs)
// and the single-threaded, deterministically ordered progress callback.
type MatrixOptions = experiments.MatrixOptions

// CellError records the failure of one (design, workload) cell; a
// partially failed RunMatrix returns an errors.Join of these.
type CellError = experiments.CellError

// RunMatrix executes every (design, workload) cell of the evaluation,
// fanning cells out across runtime.GOMAXPROCS(0) workers. Results are
// bit-identical to a serial sweep. On per-cell failures it returns the
// partial Matrix of completed cells plus the joined CellErrors.
func RunMatrix(sc Scale, progress func(string)) (*Matrix, error) {
	return experiments.RunMatrix(sc, progress)
}

// RunMatrixOpts is RunMatrix with an explicit worker count.
func RunMatrixOpts(sc Scale, opts MatrixOptions) (*Matrix, error) {
	return experiments.RunMatrixOpts(sc, opts)
}

// ReproduceFigures regenerates every matrix-derived artifact (Figs. 1-3,
// 9-13 and Table IV) in paper order.
func ReproduceFigures(m *Matrix) []*Report { return experiments.AllFromMatrix(m) }

// Individual matrix-derived experiments.
var (
	Fig1  = experiments.Fig1
	Fig2  = experiments.Fig2
	Fig3  = experiments.Fig3
	Fig9  = experiments.Fig9
	Fig10 = experiments.Fig10
	Fig11 = experiments.Fig11
	Fig12 = experiments.Fig12
	Tab4  = experiments.Tab4
	Fig13 = experiments.Fig13
)

// FaultConfig parameterizes deterministic fault injection
// (CacheConfig.Fault); the zero value disables it.
type FaultConfig = fault.Config

// FaultCounters aggregates an injected run's fault accounting
// (Result.Cache.Fault).
type FaultCounters = fault.Counters

// Standalone studies (each runs its own sweeps).
var (
	// PredictorStudy reproduces §V-D (MAP-I on Cascade Lake and Alloy).
	PredictorStudy = experiments.SecVD
	// Resilience sweeps fault-injection rates over TDRAM.
	Resilience = experiments.Resilience
	// LatencyStudy attributes per-request latency to journey phases and
	// reports per-class tail percentiles, breakdowns and CDFs.
	LatencyStudy = experiments.Latency
	// PrefetcherStudy reproduces §V-D's prefetcher discussion.
	PrefetcherStudy = experiments.Prefetcher
	// FlushBufferStudy reproduces §V-E (buffer size sensitivity).
	FlushBufferStudy = experiments.SecVE
	// SetAssocStudy reproduces §V-F (direct-mapped vs set-associative).
	SetAssocStudy = experiments.SecVF
	// Ablations of TDRAM's design choices.
	AblationProbing     = experiments.AblationProbing
	AblationProbePolicy = experiments.AblationProbePolicy
	AblationFlushBuffer = experiments.AblationFlushBuffer
	AblationCondColumn  = experiments.AblationCondColumn
	// AblationPagePolicy compares close-page vs open-page row policies.
	AblationPagePolicy = experiments.AblationPagePolicy
)
